#!/usr/bin/env bash
# Distributed-campaign smoke (registered as the `smoke_distributed` ctest
# case). Proves the ISSUE-level acceptance property with real processes and
# real SIGKILLs:
#
#   1. reference bytes: the supervised smoke sweep, single host;
#   2. socket backend: --serve=0 with four --worker processes, one of which
#      MEMTIS_KILL_WORKER-exits hard while holding a lease — the merged
#      output must be byte-identical to the reference;
#   3. file backend: --serve=DIR with two workers; the coordinator is
#      SIGKILLed mid-campaign and restarted on the same directory — the
#      recovered output must again be byte-identical.
set -euo pipefail

MEMTIS_RUN="${1:?usage: smoke_distributed.sh <path-to-memtis_run>}"
WORK="$(mktemp -d)"
cleanup() {
  # Kill any straggling coordinator/worker from a failed run.
  [ -z "${PIDS:-}" ] || kill -9 ${PIDS} 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
PIDS=""

fail() {
  echo "smoke_distributed: FAIL: $*" >&2
  exit 1
}

REF="$WORK/ref.json"
"$MEMTIS_RUN" --smoke --quiet --supervise --out="$REF" \
  || fail "single-host supervised reference failed"

# --- socket backend: 4 workers, one killed hard mid-campaign -------------
SOCK_OUT="$WORK/sock.json"
PORT_FILE="$WORK/port.txt"
"$MEMTIS_RUN" --smoke --quiet --supervise --serve=0 --port-file="$PORT_FILE" \
  --lease-timeout-ms=2000 --out="$SOCK_OUT" &
COORD=$!
PIDS="$COORD"
for _ in $(seq 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || fail "coordinator never wrote --port-file"
PORT="$(cat "$PORT_FILE")"

WPIDS=""
# Worker 0 exits hard (no result, no FIN) while holding its second lease.
MEMTIS_KILL_WORKER=1 "$MEMTIS_RUN" --worker="$PORT" --quiet &
WPIDS="$WPIDS $!"
for i in 1 2 3; do
  "$MEMTIS_RUN" --worker="$PORT" --quiet --worker-name="sock$i" &
  WPIDS="$WPIDS $!"
done
PIDS="$PIDS$WPIDS"
for W in $WPIDS; do
  wait "$W" || true  # the killed worker reports nonzero by design
done
wait "$COORD" || fail "socket coordinator exited nonzero"
PIDS=""
cmp -s "$REF" "$SOCK_OUT" \
  || fail "socket campaign output differs from single-host reference"

# --- file backend: SIGKILL the coordinator mid-campaign, restart ---------
QDIR="$WORK/queue"
FILE_OUT="$WORK/file.json"
"$MEMTIS_RUN" --smoke --quiet --supervise --serve="$QDIR" \
  --lease-timeout-ms=2000 --out="$FILE_OUT" &
COORD=$!
PIDS="$COORD"
for i in 1 2; do
  "$MEMTIS_RUN" --worker="$QDIR" --quiet --worker-name="file$i" &
  PIDS="$PIDS $!"
done

# Let at least one result land, then kill the coordinator without mercy.
for _ in $(seq 200); do
  if ls "$QDIR"/results-*.jsonl >/dev/null 2>&1 \
      && [ -s "$(ls "$QDIR"/results-*.jsonl | head -1)" ]; then
    break
  fi
  sleep 0.05
done
kill -9 "$COORD" 2>/dev/null || true
wait "$COORD" 2>/dev/null || true
[ ! -f "$QDIR/DONE" ] || fail "campaign finished before the coordinator kill"

# Restart on the same directory: decided cells reload from the per-worker
# results files, in-flight claims expire and re-issue; the workers left
# running keep pulling cells from the recovered queue.
"$MEMTIS_RUN" --smoke --quiet --supervise --serve="$QDIR" \
  --lease-timeout-ms=2000 --out="$FILE_OUT" \
  || fail "restarted file coordinator failed"
wait  # workers exit once DONE appears
PIDS=""
cmp -s "$REF" "$FILE_OUT" \
  || fail "recovered file campaign output differs from single-host reference"

echo "smoke_distributed: OK"
