#!/usr/bin/env python3
"""Guard the tracked perf trajectory: diff a fresh hotpath_bench run against
the committed BENCH_hotpath.json and fail on regressions.

Usage:
    scripts/compare_bench.py BASELINE.json FRESH.json [--threshold=0.15]
                             [--accept]

A benchmark regresses when its fresh ns_per_op exceeds the baseline's by more
than the threshold (default 15%). Benchmarks present on only one side are
reported but never fail the run (new benches land with no history; retired
ones leave it). Exit codes: 0 = no regressions (or --accept), 1 = regressions
without --accept, 2 = usage/schema error.

--accept is the explicit escape hatch for intentional slowdowns (e.g. a
correctness fix on a hot path): regressions are still printed, marked
ACCEPTED, and the exit code is forced to 0 so the caller (scripts/bench.sh)
goes on to overwrite the baseline.
"""

import json
import sys

DEFAULT_THRESHOLD = 0.15


def load_benchmarks(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.stderr.write(f"compare_bench: cannot read {path}: {err}\n")
        sys.exit(2)
    if doc.get("schema") != "memtis-hotpath-bench":
        sys.stderr.write(f"compare_bench: {path} is not a hotpath-bench file\n")
        sys.exit(2)
    if doc.get("smoke"):
        sys.stderr.write(
            f"compare_bench: {path} is a --smoke run; its numbers are "
            "meaningless for tracking\n")
        sys.exit(2)
    out = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name")
        ns = bench.get("ns_per_op")
        if not name or not isinstance(ns, (int, float)) or ns <= 0:
            sys.stderr.write(f"compare_bench: malformed entry in {path}\n")
            sys.exit(2)
        out[name] = float(ns)
    return out


def main(argv):
    threshold = DEFAULT_THRESHOLD
    accept = False
    paths = []
    for arg in argv[1:]:
        if arg == "--accept":
            accept = True
        elif arg.startswith("--threshold="):
            try:
                threshold = float(arg.split("=", 1)[1])
            except ValueError:
                sys.stderr.write(f"compare_bench: bad threshold '{arg}'\n")
                return 2
            if threshold <= 0:
                sys.stderr.write("compare_bench: threshold must be > 0\n")
                return 2
        elif arg.startswith("-"):
            sys.stderr.write(__doc__)
            return 0 if arg in ("-h", "--help") else 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.stderr.write(__doc__)
        return 2

    baseline = load_benchmarks(paths[0])
    fresh = load_benchmarks(paths[1])

    regressions = []
    for name in sorted(set(baseline) | set(fresh)):
        if name not in fresh:
            print(f"  {name:28s} retired (baseline {baseline[name]:8.1f} ns/op)")
            continue
        if name not in baseline:
            print(f"  {name:28s} new      ({fresh[name]:8.1f} ns/op, no history)")
            continue
        base, now = baseline[name], fresh[name]
        delta = (now - base) / base
        marker = ""
        if delta > threshold:
            regressions.append(name)
            marker = "  << REGRESSION" + (" (ACCEPTED)" if accept else "")
        print(f"  {name:28s} {base:8.1f} -> {now:8.1f} ns/op "
              f"({delta:+7.1%}){marker}")

    if regressions and not accept:
        sys.stderr.write(
            f"compare_bench: {len(regressions)} benchmark(s) regressed more "
            f"than {threshold:.0%}: {', '.join(regressions)}\n"
            "compare_bench: rerun with --accept to take the new numbers "
            "anyway\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
