#!/usr/bin/env bash
# Hot-path perf tracking: builds the Release tree, runs bench/perf's
# hotpath_bench, and updates BENCH_hotpath.json at the repo root (the tracked
# perf trajectory — see README "Performance"). Usage:
#
#   scripts/bench.sh [--accept] [build-dir] [-- extra hotpath_bench args]
#
# The fresh run is diffed against the committed BENCH_hotpath.json by
# scripts/compare_bench.py: a tracked benchmark slowing down by more than 15%
# fails the script and leaves the baseline untouched (the fresh numbers stay
# in BENCH_hotpath.json.new for inspection). Pass --accept to take an
# intentional regression and overwrite the baseline anyway.
#
# Tracked numbers must come from an optimized build: this script configures
# -DCMAKE_BUILD_TYPE=Release and refuses a pre-existing build dir whose
# CMakeCache says otherwise (hotpath_bench itself double-checks via an
# embedded build-type string).
#
# Env: JOBS overrides build parallelism (default: nproc).

set -euo pipefail
cd "$(dirname "$0")/.."

ACCEPT=()
if [[ $# -gt 0 && "$1" == "--accept" ]]; then
  ACCEPT=(--accept)
  shift
fi
BUILD_DIR="build-release"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR="$1"
  shift
fi
EXTRA_ARGS=()
if [[ $# -gt 0 ]]; then
  if [[ "$1" != "--" ]]; then
    echo "usage: scripts/bench.sh [build-dir] [-- extra hotpath_bench args]" >&2
    exit 2
  fi
  shift
  EXTRA_ARGS=("$@")
fi
JOBS="${JOBS:-$(nproc)}"

if [[ -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cached_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")"
  if [[ "$cached_type" != "Release" ]]; then
    echo "bench.sh: $BUILD_DIR is configured as '${cached_type:-<unset>}', not" >&2
    echo "Release; tracked perf numbers would be meaningless. Point bench.sh" >&2
    echo "at a fresh directory or remove $BUILD_DIR first." >&2
    exit 1
  fi
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$JOBS" --target hotpath_bench

# Write the fresh numbers next to the baseline, gate on compare_bench, and
# only promote them over BENCH_hotpath.json when the gate passes. Best-of-5
# per benchmark rejects scheduler/frequency noise on shared hosts.
"$BUILD_DIR/bench/hotpath_bench" --repeat=5 --out=BENCH_hotpath.json.new \
    "${EXTRA_ARGS[@]}"
if [[ -f BENCH_hotpath.json ]]; then
  if ! python3 scripts/compare_bench.py "${ACCEPT[@]}" \
      BENCH_hotpath.json BENCH_hotpath.json.new; then
    echo "bench.sh: regression gate failed; baseline left untouched" >&2
    echo "bench.sh: fresh numbers kept in BENCH_hotpath.json.new" >&2
    echo "bench.sh: rerun as scripts/bench.sh --accept ... to take them" >&2
    exit 1
  fi
fi
mv BENCH_hotpath.json.new BENCH_hotpath.json
echo "wrote BENCH_hotpath.json"
