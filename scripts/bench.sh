#!/usr/bin/env bash
# Hot-path perf tracking: builds the Release tree, runs bench/perf's
# hotpath_bench, and writes BENCH_hotpath.json at the repo root (the tracked
# perf trajectory — see README "Performance"). Usage:
#
#   scripts/bench.sh [build-dir] [-- extra hotpath_bench args]
#
# Tracked numbers must come from an optimized build: this script configures
# -DCMAKE_BUILD_TYPE=Release and refuses a pre-existing build dir whose
# CMakeCache says otherwise (hotpath_bench itself double-checks via an
# embedded build-type string).
#
# Env: JOBS overrides build parallelism (default: nproc).

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build-release"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR="$1"
  shift
fi
EXTRA_ARGS=()
if [[ $# -gt 0 ]]; then
  if [[ "$1" != "--" ]]; then
    echo "usage: scripts/bench.sh [build-dir] [-- extra hotpath_bench args]" >&2
    exit 2
  fi
  shift
  EXTRA_ARGS=("$@")
fi
JOBS="${JOBS:-$(nproc)}"

if [[ -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cached_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")"
  if [[ "$cached_type" != "Release" ]]; then
    echo "bench.sh: $BUILD_DIR is configured as '${cached_type:-<unset>}', not" >&2
    echo "Release; tracked perf numbers would be meaningless. Point bench.sh" >&2
    echo "at a fresh directory or remove $BUILD_DIR first." >&2
    exit 1
  fi
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$JOBS" --target hotpath_bench
"$BUILD_DIR/bench/hotpath_bench" --out=BENCH_hotpath.json "${EXTRA_ARGS[@]}"
