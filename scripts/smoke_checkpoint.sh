#!/usr/bin/env bash
# Checkpointed-cell smoke (registered as the `smoke_checkpoint` ctest case).
# Proves the checkpoint plane's acceptance property with real processes and
# real SIGKILLs:
#
#   1. reference bytes: the supervised smoke sweep, checkpointing off;
#   2. checkpointing on, uninterrupted: byte-identical to the reference;
#   3. kill/resume: every supervised child SIGKILLs itself right after its
#      first snapshot (MEMTIS_KILL_AFTER_CHECKPOINTS=1); the supervisor
#      restores each from its newest snapshot and the finished sweep is
#      byte-identical to the reference;
#   4. the same kill/resume under --faults=storm with the invariant auditor
#      on (MEMTIS_AUDIT=1) and an --audit-json sink: result AND audit
#      document both byte-identical to their uninterrupted twins;
#   5. distributed: a --serve=0 socket campaign with --checkpoint-ns and four
#      workers sharing a snapshot directory — every child self-SIGKILLs after
#      its first snapshot, and one worker is additionally kill -9'd while
#      holding a lease so a peer resumes its cell — merged output
#      byte-identical to the reference.
set -euo pipefail

MEMTIS_RUN="${1:?usage: smoke_checkpoint.sh <path-to-memtis_run>}"
WORK="$(mktemp -d)"
cleanup() {
  [ -z "${PIDS:-}" ] || kill -9 ${PIDS} 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
PIDS=""

fail() {
  echo "smoke_checkpoint: FAIL: $*" >&2
  exit 1
}

CKPT_NS=200000  # dense enough that every smoke cell writes several snapshots

REF="$WORK/ref.json"
"$MEMTIS_RUN" --smoke --quiet --supervise --out="$REF" \
  || fail "supervised reference failed"

# --- checkpointing on, uninterrupted -------------------------------------
ON_OUT="$WORK/on.json"
"$MEMTIS_RUN" --smoke --quiet --supervise --checkpoint-ns="$CKPT_NS" \
  --checkpoint-dir="$WORK/ckpt-on" --out="$ON_OUT" \
  || fail "uninterrupted checkpointed sweep failed"
cmp -s "$REF" "$ON_OUT" \
  || fail "checkpointing on != off (uninterrupted)"

# --- kill/resume: children SIGKILL after their first snapshot ------------
KILL_OUT="$WORK/kill.json"
MEMTIS_KILL_AFTER_CHECKPOINTS=1 \
  "$MEMTIS_RUN" --smoke --quiet --supervise --checkpoint-ns="$CKPT_NS" \
  --checkpoint-dir="$WORK/ckpt-kill" --out="$KILL_OUT" \
  || fail "kill/resume sweep failed"
cmp -s "$REF" "$KILL_OUT" \
  || fail "SIGKILLed+resumed sweep differs from uninterrupted reference"
# The kill hook only fires after a snapshot exists, so snapshots were written.
ls "$WORK/ckpt-kill"/*.s[01] >/dev/null 2>&1 \
  || fail "kill/resume run left no snapshot files"

# --- kill/resume under storm + auditor, audit document compared ----------
STORM_REF="$WORK/storm_ref.json"
STORM_REF_AUDIT="$WORK/storm_ref_audit.json"
MEMTIS_AUDIT=1 \
  "$MEMTIS_RUN" --smoke --quiet --supervise --faults=storm \
  --out="$STORM_REF" --audit-json="$STORM_REF_AUDIT" \
  || fail "storm reference failed"
STORM_OUT="$WORK/storm.json"
STORM_AUDIT="$WORK/storm_audit.json"
MEMTIS_AUDIT=1 MEMTIS_KILL_AFTER_CHECKPOINTS=1 \
  "$MEMTIS_RUN" --smoke --quiet --supervise --faults=storm \
  --checkpoint-ns="$CKPT_NS" --checkpoint-dir="$WORK/ckpt-storm" \
  --out="$STORM_OUT" --audit-json="$STORM_AUDIT" \
  || fail "storm kill/resume sweep failed"
cmp -s "$STORM_REF" "$STORM_OUT" \
  || fail "storm kill/resume result differs"
cmp -s "$STORM_REF_AUDIT" "$STORM_AUDIT" \
  || fail "storm kill/resume audit document differs"

# --- distributed: 4 workers, self-SIGKILLs + one worker kill -9'd --------
DIST_OUT="$WORK/dist.json"
PORT_FILE="$WORK/port.txt"
CKDIR="$WORK/ckpt-dist"
"$MEMTIS_RUN" --smoke --quiet --supervise --serve=0 --port-file="$PORT_FILE" \
  --checkpoint-ns="$CKPT_NS" --lease-timeout-ms=2000 --out="$DIST_OUT" &
COORD=$!
PIDS="$COORD"
for _ in $(seq 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || fail "coordinator never wrote --port-file"
PORT="$(cat "$PORT_FILE")"

WPIDS=""
for i in 0 1 2 3; do
  MEMTIS_KILL_AFTER_CHECKPOINTS=1 \
    "$MEMTIS_RUN" --worker="$PORT" --quiet --worker-name="ck$i" \
    --checkpoint-dir="$CKDIR" &
  WPIDS="$WPIDS $!"
done
PIDS="$PIDS$WPIDS"

# SIGKILL one worker outright while the campaign runs: its lease expires and
# a peer resumes the cell from the shared snapshot directory.
VICTIM="$(echo $WPIDS | awk '{print $1}')"
sleep 0.5
kill -9 "$VICTIM" 2>/dev/null || true

for W in $WPIDS; do
  wait "$W" 2>/dev/null || true  # the killed worker reports nonzero by design
done
wait "$COORD" || fail "checkpointed socket coordinator exited nonzero"
PIDS=""
cmp -s "$REF" "$DIST_OUT" \
  || fail "checkpointed distributed campaign differs from reference"

echo "smoke_checkpoint: OK"
