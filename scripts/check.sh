#!/usr/bin/env bash
# Sanitized build + full test sweep: configures a separate build tree with
# ASan/UBSan, builds everything — including the bench/ targets, so perf
# harness bitrot fails here too — and runs ctest (which includes the
# memtis_run --smoke runner case and the hotpath_bench --smoke perf smoke) —
# first plain, then again with MEMTIS_AUDIT=1 so every engine-driven test
# runs under the abort-on-violation invariant auditor (src/audit/), and
# finally a targeted MEMTIS_FAULTS=storm pass that drives the fault-injection
# stress tests (src/fault/) under the dense all-site preset. Usage:
#
#   scripts/check.sh [build-dir]
#
# Env: JOBS overrides the parallelism (default: nproc).

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"
echo "== second pass: MEMTIS_AUDIT=1 (runtime invariant auditing) =="
MEMTIS_AUDIT=1 ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"
echo "== third pass: MEMTIS_FAULTS=storm (fault-injection stress, audited) =="
MEMTIS_AUDIT=1 MEMTIS_FAULTS=storm ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -j"$JOBS" -R '(Fault|Fuzz|memtis_run_smoke)'
