#!/usr/bin/env bash
# Sanitized build + full test sweep: configures a separate build tree with
# ASan/UBSan, builds everything — including the bench/ targets, so perf
# harness bitrot fails here too — and runs ctest (which includes the
# memtis_run --smoke runner case and the hotpath_bench --smoke perf smoke) —
# first plain, then again with MEMTIS_AUDIT=1 so every engine-driven test
# runs under the abort-on-violation invariant auditor (src/audit/), then a
# targeted MEMTIS_FAULTS=storm pass that drives the fault-injection stress
# tests (src/fault/) under the dense all-site preset, and finally a
# crash-injection sweep that SIM_CHECK-aborts one supervised cell
# (MEMTIS_CRASH_CELL) and asserts the sweep completes around it, a fifth
# pass running a 3-tenant churn colocation (src/tenant/) under MEMTIS_AUDIT=1
# so the per-tenant conservation/quota invariants are exercised end to end,
# and a sixth pass storming the exchange-abort fault site through every
# exchange-capable policy under the auditor (the exchange-accounting and
# frame-conservation invariants certify each two-sided rollback), and a
# seventh pass building the sharded-engine tests under ThreadSanitizer (a
# separate build tree — TSan and ASan cannot share one) and running the
# shard-identity suite with real worker threads, since ShardedEngine is the
# repo's first intra-cell threading, and an eighth pass re-running the
# distributed-campaign chaos/differential suite (multi-worker byte-identity,
# killed/hung workers, coordinator SIGKILL + restart, wire/claim-file fuzz)
# under the sanitizers, since the coordinator/worker layer is the repo's
# first socket and multi-process I/O, and a ninth pass driving the snapshot
# plane's kill-storm (kill-anywhere differentials, snapshot-loader corruption
# fuzzers, real-SIGKILL checkpoint smoke) under the same sanitizers.
# Usage:
#
#   scripts/check.sh [build-dir]
#
# Env: JOBS overrides the parallelism (default: nproc).

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"
echo "== second pass: MEMTIS_AUDIT=1 (runtime invariant auditing) =="
MEMTIS_AUDIT=1 ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"
echo "== third pass: MEMTIS_FAULTS=storm (fault-injection stress, audited) =="
MEMTIS_AUDIT=1 MEMTIS_FAULTS=storm ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -j"$JOBS" -R '(Fault|Fuzz|memtis_run_smoke)'
echo "== fourth pass: crash-injection sweep (supervised cell isolation) =="
MEMTIS_RUN="$BUILD_DIR/src/runner/memtis_run"
CRASH_FP="$("$MEMTIS_RUN" --smoke --list-cells | awk '{print $1; exit}')"
CRASH_OUT="$BUILD_DIR/crash_injection_sweep.json"
if MEMTIS_CRASH_CELL="$CRASH_FP" "$MEMTIS_RUN" --smoke --quiet \
    --supervise --keep-going --out="$CRASH_OUT"; then
  echo "check.sh: FAIL: crash-injected sweep exited 0" >&2
  exit 1
fi
grep -q '"cells_failed":1' "$CRASH_OUT" || {
  echo "check.sh: FAIL: expected exactly one failed cell" >&2
  exit 1
}
grep -q '"kind":"crash"' "$CRASH_OUT" || {
  echo "check.sh: FAIL: crash failure kind not reported" >&2
  exit 1
}
echo "crash-injection sweep: one cell failed, sweep completed (as intended)"
echo "== fifth pass: 3-tenant churn colocation under MEMTIS_AUDIT=1 =="
# A colocated fairness run with a fast-quota'd tenant, a weighted tenant, and
# a churner that arrives mid-run and departs after its access budget — under
# the abort-on-violation auditor, so any per-tenant conservation, quota, or
# borrow-window violation (including at the churn boundaries) kills the run.
COLO_OUT="$BUILD_DIR/colocate_churn.json"
MEMTIS_AUDIT=1 "$MEMTIS_RUN" --quiet --accesses=120000 \
    "--colocate=silo,quota=0.5,weight=2;pagerank,quota=0.25;btree,name=churner,arrive=5000000,accesses=30000" \
    --out="$COLO_OUT"
grep -q '"kind":"colocation"' "$COLO_OUT" || {
  echo "check.sh: FAIL: colocation report missing" >&2
  exit 1
}
grep -q '"slowdown":' "$COLO_OUT" || {
  echo "check.sh: FAIL: colocation report lacks per-tenant slowdowns" >&2
  exit 1
}
echo "3-tenant churn colocation: audit clean, fairness report written"
echo "== sixth pass: exchange-abort storm across exchange-capable policies =="
# Every policy that can call ExchangePages (AutoTiering natively, the MEMTIS
# and HeMem opt-in variants) runs at a tight fast ratio — so the fast tier
# fills and exchanges actually fire — with the exchange-abort site rolling
# at 20 % plus background migrate-aborts, under the abort-on-violation
# auditor. The output must show completed exchanges and injected aborts.
EXCH_OUT="$BUILD_DIR/exchange_storm.json"
MEMTIS_AUDIT=1 "$MEMTIS_RUN" --quiet --accesses=120000 \
    --systems=autotiering,memtis-exchange,hemem-exchange \
    --benchmarks=btree --ratios=1:8 --audit \
    --faults=exchange-abort=0.2,migrate-abort=0.05,seed=9 \
    --out="$EXCH_OUT"
grep -q '"exchanges":' "$EXCH_OUT" || {
  echo "check.sh: FAIL: exchange storm completed no exchanges" >&2
  exit 1
}
grep -q '"exchange-abort"' "$EXCH_OUT" || {
  echo "check.sh: FAIL: exchange-abort site never rolled" >&2
  exit 1
}
echo "exchange-abort storm: audit clean, exchanges and aborts recorded"
echo "== seventh pass: ThreadSanitizer over the sharded-engine tests =="
# ShardedEngine runs shards on a work-stealing thread pool; TSan certifies
# the only cross-thread state (the atomic index, the shard-indexed result
# slots, the join) is race-free. Separate tree: TSan is incompatible with
# the ASan/UBSan flags above.
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
cmake --build "$TSAN_DIR" -j"$JOBS" --target replay_differential_test
"$TSAN_DIR/tests/replay_differential_test" \
    --gtest_filter='PolicySpread/ShardedIdentityTest.*:ReplayFuzz.*'
echo "sharded-engine TSan pass: clean"
echo "== eighth pass: distributed campaign chaos under ASan/UBSan =="
# The multi-worker campaign suite — differential byte-identity at 1 and 4
# workers over both backends, killed and hung workers, lease-expiry caps,
# coordinator restart recovery — plus the wire/claim-file fuzzers and the
# real-SIGKILL smoke script, all in the sanitized build so every socket,
# claim-file, and fork path is leak- and UB-checked end to end.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS" \
    -R '(Distributed\.|Campaign\.|smoke_distributed)'
"$BUILD_DIR/tests/fuzz_test" --gtest_filter='Fuzz.FrameDecoder*:Fuzz.Protocol*:Fuzz.Coordinator*:Fuzz.FileQueue*:Fuzz.JobSpecJson*'
echo "distributed chaos pass: clean"
echo "== ninth pass: checkpoint kill-storm under ASan/UBSan =="
# The snapshot plane end to end in the sanitized build: serializer/envelope
# units, the kill-anywhere differentials (supervised local and the 4-worker
# socket campaign, storm + auditor included), the snapshot-loader corruption
# fuzzers, and the real-SIGKILL smoke script — so every snapshot write,
# restore, quarantine, and resumed fork path is leak- and UB-checked.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS" \
    -R '(Serializer\.|SnapshotFile\.|SnapshotStore\.|Checkpoint\.|smoke_checkpoint)'
"$BUILD_DIR/tests/fuzz_test" --gtest_filter='Fuzz.Snapshot*'
echo "checkpoint kill-storm pass: clean"
