#!/usr/bin/env bash
# End-to-end resilience smoke (registered as the `smoke_resume` ctest case).
#
# For thread counts 1 and 4:
#   1. run the supervised smoke sweep uninterrupted (reference bytes);
#   2. rerun it with one cell crash-injected (MEMTIS_CRASH_CELL) and one cell
#      deadline-overrunning (MEMTIS_HANG_CELL + --job-timeout-ms), checking
#      the sweep still finishes, exits nonzero, and reports both failures
#      with reproducer command lines;
#   3. resume from the checkpoint manifest without injection and check the
#      output is byte-identical to the uninterrupted reference.
# Finally the two references are compared across thread counts.
set -euo pipefail

MEMTIS_RUN="${1:?usage: smoke_resume.sh <path-to-memtis_run>}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "smoke_resume: FAIL: $*" >&2
  exit 1
}

for T in 1 4; do
  FULL="$WORK/full$T.json"
  PARTIAL="$WORK/partial$T.json"
  RESUMED="$WORK/resumed$T.json"
  MANIFEST="$WORK/manifest$T.jsonl"

  "$MEMTIS_RUN" --smoke --quiet --supervise --threads="$T" --out="$FULL" \
    || fail "uninterrupted supervised sweep failed (threads=$T)"

  # Victim cells: crash memtis/btree, hang autonuma/silo.
  "$MEMTIS_RUN" --smoke --list-cells > "$WORK/cells.txt"
  CRASH_FP=$(awk '/system=memtis;benchmark=btree/ {print $1; exit}' "$WORK/cells.txt")
  HANG_FP=$(awk '/system=autonuma;benchmark=silo/ {print $1; exit}' "$WORK/cells.txt")
  [ -n "$CRASH_FP" ] && [ -n "$HANG_FP" ] || fail "victim cells not found in --list-cells"

  set +e
  MEMTIS_CRASH_CELL="$CRASH_FP" MEMTIS_HANG_CELL="$HANG_FP" \
    "$MEMTIS_RUN" --smoke --quiet --supervise --keep-going \
    --job-timeout-ms=3000 --threads="$T" --resume="$MANIFEST" \
    --out="$PARTIAL" 2> "$WORK/partial$T.stderr"
  STATUS=$?
  set -e
  [ "$STATUS" -ne 0 ] || fail "injected sweep exited 0 (threads=$T)"
  grep -q '"cells_failed":2' "$PARTIAL" || fail "expected 2 failed cells (threads=$T)"
  grep -q '"kind":"crash"' "$PARTIAL" || fail "crash failure not reported (threads=$T)"
  grep -q '"kind":"timeout"' "$PARTIAL" || fail "timeout failure not reported (threads=$T)"
  grep -q 'memtis_run --supervise' "$PARTIAL" || fail "reproducer cmdline missing (threads=$T)"
  grep -q 'repro: memtis_run' "$WORK/partial$T.stderr" \
    || fail "failure summary missing reproducers (threads=$T)"

  # Clean resume: the two injected cells re-run, everything else reloads.
  "$MEMTIS_RUN" --smoke --quiet --supervise --keep-going \
    --job-timeout-ms=3000 --threads="$T" --resume="$MANIFEST" \
    --out="$RESUMED" \
    || fail "resumed sweep failed (threads=$T)"
  cmp -s "$FULL" "$RESUMED" \
    || fail "resumed output differs from uninterrupted run (threads=$T)"
done

cmp -s "$WORK/full1.json" "$WORK/full4.json" \
  || fail "supervised sweep output differs across thread counts"

echo "smoke_resume: OK"
