// Fig. 5: main performance comparison. 8 benchmarks x {1:2, 1:8, 1:16}
// (fast:capacity), NVM capacity tier, all 7 systems, normalised to the
// all-capacity (all-NVM) + THP baseline. Last rows: geomean per system, and
// per-cell best/second-best summary.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace memtis {
namespace {

// fast:capacity 1:N -> fast tier = RSS / (N + 1), per the paper's §6.1.
const std::vector<std::pair<std::string, double>> kRatios = {
    {"1:2", 1.0 / 3.0}, {"1:8", 1.0 / 9.0}, {"1:16", 1.0 / 17.0}};

int Main() {
  Table table("Fig. 5 — normalized performance vs all-NVM+THP (NVM capacity tier)");
  std::vector<std::string> header = {"benchmark", "ratio"};
  for (const auto& system : ComparisonSystems()) {
    header.push_back(system);
  }
  table.SetHeader(header);

  std::map<std::string, std::vector<double>> per_system_scores;
  int memtis_best = 0;
  int cells = 0;

  const int seeds = BenchSeeds();
  for (const auto& benchmark : StandardBenchmarks()) {
    for (const auto& [ratio_name, ratio] : kRatios) {
      std::vector<std::string> row = {benchmark, ratio_name};
      double best = 0.0;
      double memtis_score = 0.0;
      // One baseline per workload seed, shared by every system.
      std::vector<double> baseline_ns;
      for (int seed = 0; seed < seeds; ++seed) {
        RunSpec spec;
        spec.benchmark = benchmark;
        spec.fast_ratio = ratio;
        spec.seed_offset = static_cast<uint64_t>(seed) * 1000;
        baseline_ns.push_back(RunBaseline(spec).metrics.EffectiveRuntimeNs());
      }
      for (const auto& system : ComparisonSystems()) {
        // Mean over `seeds` workload instantiations (MEMTIS_BENCH_SEEDS).
        double sum = 0.0;
        for (int seed = 0; seed < seeds; ++seed) {
          RunSpec spec;
          spec.benchmark = benchmark;
          spec.fast_ratio = ratio;
          spec.seed_offset = static_cast<uint64_t>(seed) * 1000;
          spec.system = system;
          sum += baseline_ns[seed] / RunOne(spec).metrics.EffectiveRuntimeNs();
        }
        const double perf = sum / seeds;
        per_system_scores[system].push_back(perf);
        row.push_back(Table::Num(perf));
        if (system == "memtis") {
          memtis_score = perf;
        } else {
          best = std::max(best, perf);
        }
      }
      ++cells;
      memtis_best += memtis_score >= best ? 1 : 0;
      table.AddRow(row);
    }
  }

  std::vector<std::string> geomean_row = {"geomean", "-"};
  double memtis_geo = 0.0;
  double second_best_geo = 0.0;
  for (const auto& system : ComparisonSystems()) {
    const double geo = GeoMean(per_system_scores[system]);
    geomean_row.push_back(Table::Num(geo));
    if (system == "memtis") {
      memtis_geo = geo;
    } else {
      second_best_geo = std::max(second_best_geo, geo);
    }
  }
  table.AddRow(geomean_row);
  table.Print();

  std::printf("\nMEMTIS best in %d/%d cells; geomean advantage over best other "
              "system: %+.1f%% (paper: best in 23/24, +33.6%% vs second-best)\n",
              memtis_best, cells, (memtis_geo / second_best_geo - 1.0) * 100.0);
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
