// Fig. 5: main performance comparison. 8 benchmarks x {1:2, 1:8, 1:16}
// (fast:capacity), NVM capacity tier, all 7 systems, normalised to the
// all-capacity (all-NVM) + THP baseline. Last rows: geomean per system, and
// per-cell best/second-best summary.
//
// All cells (baselines included) are submitted to the shared runner pool up
// front and execute in parallel; per-seed normalisation and the seed mean are
// delegated to SweepAggregator. Results are identical to the old serial loop
// for any MEMTIS_RUNNER_THREADS value.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace memtis {
namespace {

// fast:capacity 1:N -> fast tier = RSS / (N + 1), per the paper's §6.1.
const std::vector<std::pair<std::string, double>> kRatios = {
    {"1:2", 1.0 / 3.0}, {"1:8", 1.0 / 9.0}, {"1:16", 1.0 / 17.0}};

int Main() {
  Table table("Fig. 5 — normalized performance vs all-NVM+THP (NVM capacity tier)");
  std::vector<std::string> header = {"benchmark", "ratio"};
  for (const auto& system : ComparisonSystems()) {
    header.push_back(system);
  }
  table.SetHeader(header);

  const int seeds = BenchSeeds();

  // One declarative sweep covers every cell: per (benchmark, ratio, seed) the
  // shared all-capacity baseline plus each comparison system.
  SweepSpec sweep;
  sweep.systems = ComparisonSystems();
  sweep.benchmarks = StandardBenchmarks();
  sweep.fast_ratios.clear();
  for (const auto& [name, ratio] : kRatios) {
    sweep.fast_ratios.push_back(ratio);
  }
  sweep.seeds = seeds;
  sweep.include_baseline = true;
  const SweepRun run = RunSweep(sweep, BenchPool());

  // Per-seed baseline runtimes, then per-seed normalised scores into the
  // aggregator (keyed by system|benchmark|machine|ratio).
  std::map<std::string, std::vector<double>> baseline_ns;  // cell -> per-seed
  for (size_t i = 0; i < run.jobs.size(); ++i) {
    if (run.jobs[i].system == "all-capacity") {
      baseline_ns[CellKey(run.jobs[i])].push_back(
          run.results[i].metrics.EffectiveRuntimeNs());
    }
  }
  SweepAggregator normalized;
  for (size_t i = 0; i < run.jobs.size(); ++i) {
    const JobSpec& job = run.jobs[i];
    if (job.system == "all-capacity") {
      continue;
    }
    JobSpec baseline_key = BaselineSpec(job);
    const std::vector<double>& base = baseline_ns.at(CellKey(baseline_key));
    normalized.Add(CellKey(job),
                   base[job.seed_index] /
                       run.results[i].metrics.EffectiveRuntimeNs());
  }

  std::map<std::string, std::vector<double>> per_system_scores;
  int memtis_best = 0;
  int cells = 0;

  for (const auto& benchmark : StandardBenchmarks()) {
    for (const auto& [ratio_name, ratio] : kRatios) {
      std::vector<std::string> row = {benchmark, ratio_name};
      double best = 0.0;
      double memtis_score = 0.0;
      for (const auto& system : ComparisonSystems()) {
        JobSpec cell;
        cell.system = system;
        cell.benchmark = benchmark;
        cell.fast_ratio = ratio;
        const double perf = normalized.Mean(CellKey(cell));
        per_system_scores[system].push_back(perf);
        row.push_back(Table::Num(perf));
        if (system == "memtis") {
          memtis_score = perf;
        } else {
          best = std::max(best, perf);
        }
      }
      ++cells;
      memtis_best += memtis_score >= best ? 1 : 0;
      table.AddRow(row);
    }
  }

  std::vector<std::string> geomean_row = {"geomean", "-"};
  double memtis_geo = 0.0;
  double second_best_geo = 0.0;
  for (const auto& system : ComparisonSystems()) {
    const double geo = GeoMean(per_system_scores[system]);
    geomean_row.push_back(Table::Num(geo));
    if (system == "memtis") {
      memtis_geo = geo;
    } else {
      second_best_geo = std::max(second_best_geo, geo);
    }
  }
  table.AddRow(geomean_row);
  table.Print();

  std::printf("\nMEMTIS best in %d/%d cells; geomean advantage over best other "
              "system: %+.1f%% (paper: best in 23/24, +33.6%% vs second-best)\n",
              memtis_best, cells, (memtis_geo / second_best_geo - 1.0) * 100.0);
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
