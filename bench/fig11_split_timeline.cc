// Fig. 11: Silo and Btree throughput over time at 1:8 — MEMTIS vs MEMTIS-NS
// (no split) vs Tiering-0.8 — plus the Btree RSS drop from freeing
// never-written subpages during splits.

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace memtis {
namespace {

int Main() {
  for (const char* benchmark : {"silo", "btree"}) {
    RunSpec spec;
    spec.benchmark = benchmark;
    spec.fast_ratio = 1.0 / 9.0;
    spec.accesses = DefaultAccesses(6'000'000);
    spec.snapshot_interval_ns = 3'000'000;

    spec.system = "memtis";
    const RunOutput memtis = RunOne(spec);
    spec.system = "memtis-ns";
    const RunOutput memtis_ns = RunOne(spec);
    spec.system = "tiering-0.8";
    const RunOutput tiering = RunOne(spec);

    Table table(std::string("Fig. 11 — throughput over time: ") + benchmark +
                " (1:8), Maccesses/s-virtual");
    table.SetHeader({"t(ms)", "memtis", "memtis-ns", "tiering-0.8",
                     "memtis_rss(MiB)"});
    const size_t points =
        std::min({memtis.metrics.timeline.size(), memtis_ns.metrics.timeline.size(),
                  tiering.metrics.timeline.size()});
    const size_t stride = std::max<size_t>(1, points / 20);
    for (size_t i = 0; i < points; i += stride) {
      table.AddRow(
          {Table::Num(memtis.metrics.timeline[i].t_ns / 1e6, 1),
           Table::Num(memtis.metrics.timeline[i].window_mops, 1),
           Table::Num(memtis_ns.metrics.timeline[i].window_mops, 1),
           Table::Num(tiering.metrics.timeline[i].window_mops, 1),
           Table::Mib(static_cast<double>(memtis.metrics.timeline[i].rss_pages) *
                      kPageSize)});
    }
    table.Print();
    std::printf("%s: splits=%llu, zero subpages freed=%llu, RSS %0.1f -> %0.1f MiB\n",
                benchmark,
                static_cast<unsigned long long>(memtis.memtis_stats.splits_performed),
                static_cast<unsigned long long>(
                    memtis.metrics.migration.freed_zero_subpages),
                static_cast<double>(memtis.metrics.peak_rss_pages) * kPageSize /
                    (1 << 20),
                static_cast<double>(memtis.metrics.final_rss_pages) * kPageSize /
                    (1 << 20));
  }
  std::printf("\nExpected shape (paper Fig. 11): MEMTIS dips briefly when the "
              "split wave starts, then overtakes MEMTIS-NS (paper: +10.6%% Silo, "
              "+10.4%% Btree) and Tiering-0.8; Btree RSS drops (paper: "
              "38.3 GB -> 27.2 GB).\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
