// Fig. 13: sensitivity of MEMTIS to the threshold-adaptation interval and the
// cooling interval, at the 2:1 configuration, each swept from one tenth of
// the default to ten times it; performance normalised per benchmark to the
// default setting.
//
// The per-cell interval multiplier is captured in each JobSpec's memtis_tweak
// closure (no globals), so the whole benchmark x multiplier grid runs on the
// shared pool in one batch.

#include <functional>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace memtis {
namespace {

const std::vector<double> kMultipliers = {0.1, 0.3, 1.0, 3.0, 10.0};

std::function<MemtisConfig(MemtisConfig)> TweakAdapt(double multiplier) {
  return [multiplier](MemtisConfig cfg) {
    cfg.adapt_interval_samples = std::max<uint64_t>(
        64, static_cast<uint64_t>(
                static_cast<double>(cfg.adapt_interval_samples) * multiplier));
    return cfg;
  };
}

std::function<MemtisConfig(MemtisConfig)> TweakCooling(double multiplier) {
  return [multiplier](MemtisConfig cfg) {
    cfg.cooling_interval_samples = std::max<uint64_t>(
        256, static_cast<uint64_t>(
                 static_cast<double>(cfg.cooling_interval_samples) * multiplier));
    return cfg;
  };
}

void Sweep(const char* title,
           std::function<MemtisConfig(MemtisConfig)> (*tweak)(double)) {
  Table table(title);
  std::vector<std::string> header = {"benchmark"};
  for (double m : kMultipliers) {
    header.push_back("x" + Table::Num(m, 1));
  }
  table.SetHeader(header);

  std::vector<JobSpec> jobs;
  for (const auto& benchmark : StandardBenchmarks()) {
    for (double multiplier : kMultipliers) {
      JobSpec spec;
      spec.system = "memtis";
      spec.benchmark = benchmark;
      spec.fast_ratio = 2.0 / 3.0;  // the paper's 2:1 setting
      spec.accesses = DefaultAccesses(2'500'000);
      spec.memtis_tweak = tweak(multiplier);
      jobs.push_back(std::move(spec));
    }
  }
  const std::vector<JobResult> results = RunJobs(jobs, BenchPool());

  for (size_t b = 0; b < StandardBenchmarks().size(); ++b) {
    std::vector<double> runtimes;
    for (size_t m = 0; m < kMultipliers.size(); ++m) {
      runtimes.push_back(
          results[b * kMultipliers.size() + m].metrics.EffectiveRuntimeNs());
    }
    const double default_runtime = runtimes[2];  // x1.0
    std::vector<std::string> row = {StandardBenchmarks()[b]};
    for (double runtime : runtimes) {
      row.push_back(Table::Num(default_runtime / runtime));
    }
    table.AddRow(row);
  }
  table.Print();
}

int Main() {
  Sweep("Fig. 13a — sensitivity to threshold adaptation interval (2:1, "
        "normalized to default)",
        TweakAdapt);
  Sweep("Fig. 13b — sensitivity to cooling interval (2:1, normalized to default)",
        TweakCooling);
  std::printf("\nExpected shape (paper Fig. 13): flat (within a few %%) except for "
              "very long adaptation intervals, which let the identified hot set "
              "outgrow small fast tiers.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
