// Fig. 13: sensitivity of MEMTIS to the threshold-adaptation interval and the
// cooling interval, at the 2:1 configuration, each swept from one tenth of
// the default to ten times it; performance normalised per benchmark to the
// default setting.

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace memtis {
namespace {

double g_multiplier = 1.0;

MemtisConfig TweakAdapt(MemtisConfig cfg) {
  cfg.adapt_interval_samples = std::max<uint64_t>(
      64, static_cast<uint64_t>(static_cast<double>(cfg.adapt_interval_samples) *
                                g_multiplier));
  return cfg;
}

MemtisConfig TweakCooling(MemtisConfig cfg) {
  cfg.cooling_interval_samples = std::max<uint64_t>(
      256, static_cast<uint64_t>(static_cast<double>(cfg.cooling_interval_samples) *
                                 g_multiplier));
  return cfg;
}

void Sweep(const char* title, MemtisConfig (*tweak)(MemtisConfig)) {
  const std::vector<double> kMultipliers = {0.1, 0.3, 1.0, 3.0, 10.0};
  Table table(title);
  std::vector<std::string> header = {"benchmark"};
  for (double m : kMultipliers) {
    header.push_back("x" + Table::Num(m, 1));
  }
  table.SetHeader(header);

  for (const auto& benchmark : StandardBenchmarks()) {
    std::vector<double> runtimes;
    for (double multiplier : kMultipliers) {
      g_multiplier = multiplier;
      RunSpec spec;
      spec.system = "memtis";
      spec.benchmark = benchmark;
      spec.fast_ratio = 2.0 / 3.0;  // the paper's 2:1 setting
      spec.accesses = DefaultAccesses(2'500'000);
      spec.memtis_tweak = tweak;
      runtimes.push_back(RunOne(spec).metrics.EffectiveRuntimeNs());
    }
    const double default_runtime = runtimes[2];  // x1.0
    std::vector<std::string> row = {benchmark};
    for (double runtime : runtimes) {
      row.push_back(Table::Num(default_runtime / runtime));
    }
    table.AddRow(row);
  }
  table.Print();
}

int Main() {
  Sweep("Fig. 13a — sensitivity to threshold adaptation interval (2:1, "
        "normalized to default)",
        TweakAdapt);
  Sweep("Fig. 13b — sensitivity to cooling interval (2:1, normalized to default)",
        TweakCooling);
  std::printf("\nExpected shape (paper Fig. 13): flat (within a few %%) except for "
              "very long adaptation intervals, which let the identified hot set "
              "outgrow small fast tiers.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
