// Fig. 10: impact of the warm set and huge-page split on performance and
// migration traffic, at 1:8. Variants: vanilla (no split, no warm set),
// w/Split, and w/Split+Twarm (full MEMTIS). Performance is normalised to
// all-NVM+THP; migration traffic to the vanilla variant.

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace memtis {
namespace {

int Main() {
  Table table("Fig. 10 — warm set & split ablation, 1:8 "
              "(perf normalized to all-NVM+THP; traffic to vanilla)");
  table.SetHeader({"benchmark", "vanilla", "w/split", "w/split+Twarm",
                   "traffic(vanilla)", "traffic(w/split)", "traffic(full)"});
  for (const auto& benchmark : StandardBenchmarks()) {
    RunSpec spec;
    spec.benchmark = benchmark;
    spec.fast_ratio = 1.0 / 9.0;
    spec.accesses = DefaultAccesses(4'000'000);
    const RunOutput baseline = RunBaseline(spec);

    spec.system = "memtis-vanilla";
    const RunOutput vanilla = RunOne(spec);
    spec.system = "memtis-nowarm";  // split on, warm set off
    const RunOutput with_split = RunOne(spec);
    spec.system = "memtis";
    const RunOutput full = RunOne(spec);

    const double vanilla_traffic =
        std::max<double>(1.0, static_cast<double>(vanilla.metrics.migration.migrated_4k()));
    table.AddRow(
        {benchmark, Table::Num(NormalizedPerf(vanilla, baseline)),
         Table::Num(NormalizedPerf(with_split, baseline)),
         Table::Num(NormalizedPerf(full, baseline)),
         Table::Num(1.0),
         Table::Num(static_cast<double>(with_split.metrics.migration.migrated_4k()) /
                    vanilla_traffic),
         Table::Num(static_cast<double>(full.metrics.migration.migrated_4k()) /
                    vanilla_traffic)});
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 10): the warm set trims migration "
              "traffic (paper: 2.7-64.8%%); the split helps the skewed-huge-page "
              "workloads (silo, btree) most; 603.bwaves can lose a little from "
              "the warm set delaying free-space reclaim.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
