// Co-location study (beyond the paper; motivated by its §8 discussion of
// warehouse-scale tiering): a hot-set-dominated tenant (silo) sharing the
// machine with a streaming tenant (pagerank). A good classifier gives the
// fast tier to the KV store's hot records, not the streamer's sweep.
//
// Runs through the tenant plane (src/tenant/), so each system's row also
// reports per-tenant attribution: the KV tenant's fast-tier hit ratio should
// stay high while the streamer's sweep is kept on the capacity tier. A second
// table exercises tenant churn: a third tenant arrives mid-run with a fast
// quota and departs (frames reclaimed) before the end.

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/tenant/tenant.h"
#include "src/workloads/registry.h"

namespace memtis {
namespace {

struct ColoRun {
  Metrics metrics;                 // per_tenant filled
  bool churner_departed = false;
};

ColoRun RunTenantPlane(const char* system, bool churn) {
  const double scale = BenchFootprintScale();
  TenantManager manager;
  TenantSpec kv;
  kv.name = "silo";
  manager.AddTenant(kv, MakeWorkload("silo", scale));
  TenantSpec stream;
  stream.name = "pagerank";
  manager.AddTenant(stream, MakeWorkload("pagerank", scale, 1000));
  if (churn) {
    TenantSpec churner;
    churner.name = "churner";
    churner.quota_fraction = 0.25;
    churner.arrive_ns = 20'000'000;
    churner.max_accesses = DefaultAccesses(5'000'000) / 8;
    manager.AddTenant(churner, MakeWorkload("btree", scale, 2000));
  }
  const uint64_t footprint = manager.footprint_bytes();
  const uint64_t fast_bytes = footprint / 6;
  auto policy = MakePolicy(system, footprint, fast_bytes);
  EngineOptions opts;
  opts.max_accesses = DefaultAccesses(5'000'000);
  Engine engine(MakeNvmMachine(fast_bytes, footprint * 3 / 2), *policy, opts);
  ColoRun run;
  run.metrics = engine.Run(manager);
  manager.ExportPerTenant(engine.mem(), &run.metrics);
  run.churner_departed = churn && manager.tenant_departed(2);
  return run;
}

int Main() {
  Table table("Co-location — silo + pagerank sharing one machine, fast tier = "
              "1/6 of combined footprint (normalized to all-capacity)");
  table.SetHeader({"system", "perf", "fastHR", "silo_fastHR", "pr_fastHR",
                   "silo_ns/acc", "pr_ns/acc", "migrated_4k", "splits"});

  double baseline_ns = 0.0;
  for (const char* system :
       {"all-capacity", "autonuma", "tpp", "nimble", "hemem", "memtis"}) {
    const ColoRun run = RunTenantPlane(system, /*churn=*/false);
    const Metrics& m = run.metrics;
    if (baseline_ns == 0.0) {
      baseline_ns = m.EffectiveRuntimeNs();
    }
    const TenantMetrics& kv = m.per_tenant[0];
    const TenantMetrics& stream = m.per_tenant[1];
    table.AddRow({system, Table::Num(baseline_ns / m.EffectiveRuntimeNs()),
                  Table::Pct(m.fast_hit_ratio()), Table::Pct(kv.fast_hit_ratio()),
                  Table::Pct(stream.fast_hit_ratio()),
                  Table::Num(kv.ns_per_access()),
                  Table::Num(stream.ns_per_access()),
                  std::to_string(m.migration.migrated_4k()),
                  std::to_string(m.migration.splits)});
  }
  table.Print();
  std::printf("\nExpected: recency-based systems chase the streamer's sweep; "
              "MEMTIS's distribution-based thresholds keep the KV hot set "
              "resident (silo_fastHR well above pr_fastHR).\n\n");

  // tenant_churn: a quota'd third tenant arrives mid-run and departs after
  // its access budget, returning its frames. The incumbents' hit ratios dip
  // while it is resident and the departure must reclaim every frame.
  Table churn_table("tenant_churn — btree (25 % fast quota) arrives at 20 ms "
                    "and departs mid-run, under memtis");
  churn_table.SetHeader({"tenant", "accesses", "fastHR", "ns/acc", "fast_pages",
                         "quota_steals", "denied"});
  const ColoRun churn = RunTenantPlane("memtis", /*churn=*/true);
  for (const TenantMetrics& t : churn.metrics.per_tenant) {
    churn_table.AddRow(
        {t.name, std::to_string(t.accesses), Table::Pct(t.fast_hit_ratio()),
         Table::Num(t.ns_per_access()), std::to_string(t.fast_pages),
         std::to_string(t.quota_steals),
         std::to_string(t.quota_denied_allocs + t.quota_denied_promotions +
                        t.budget_denied_promotions)});
  }
  churn_table.Print();
  std::printf("\nChurner departed with frames reclaimed: %s\n",
              churn.churner_departed ? "yes" : "no");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
