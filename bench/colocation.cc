// Co-location study (beyond the paper; motivated by its §8 discussion of
// warehouse-scale tiering): a hot-set-dominated tenant (silo) sharing the
// machine with a streaming tenant (pagerank). A good classifier gives the
// fast tier to the KV store's hot records, not the streamer's sweep.

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/workloads/composite.h"
#include "src/workloads/registry.h"

namespace memtis {
namespace {

int Main() {
  Table table("Co-location — silo + pagerank sharing one machine, fast tier = "
              "1/6 of combined footprint (normalized to all-capacity)");
  table.SetHeader({"system", "perf", "fastHR", "migrated_4k", "splits"});

  const double scale = BenchFootprintScale();
  auto make_workload = [&] {
    auto composite = std::make_unique<CompositeWorkload>();
    composite->Add(MakeWorkload("silo", scale));
    composite->Add(MakeWorkload("pagerank", scale));
    return composite;
  };
  const uint64_t footprint = make_workload()->footprint_bytes();
  const uint64_t fast_bytes = footprint / 6;

  double baseline_ns = 0.0;
  for (const char* system :
       {"all-capacity", "autonuma", "tpp", "nimble", "hemem", "memtis"}) {
    auto workload = make_workload();
    auto policy = MakePolicy(system, footprint, fast_bytes);
    EngineOptions opts;
    opts.max_accesses = DefaultAccesses(5'000'000);
    Engine engine(MakeNvmMachine(fast_bytes, footprint * 3 / 2), *policy, opts);
    const Metrics m = engine.Run(*workload);
    if (baseline_ns == 0.0) {
      baseline_ns = m.EffectiveRuntimeNs();
    }
    table.AddRow({system, Table::Num(baseline_ns / m.EffectiveRuntimeNs()),
                  Table::Pct(m.fast_hit_ratio()),
                  std::to_string(m.migration.migrated_4k()),
                  std::to_string(m.migration.splits)});
  }
  table.Print();
  std::printf("\nExpected: recency-based systems chase the streamer's sweep; "
              "MEMTIS's distribution-based thresholds keep the KV hot set "
              "resident.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
