#include "bench/bench_util.h"

#include <cstdlib>

#include "src/common/check.h"
#include "src/policies/hemem.h"

namespace memtis {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') {
    return fallback;
  }
  return std::atof(value);
}

}  // namespace

double BenchAccessScale() {
  static const double kScale = EnvDouble("MEMTIS_BENCH_SCALE", 1.0);
  return kScale;
}

double BenchFootprintScale() {
  static const double kScale = EnvDouble("MEMTIS_BENCH_FOOTPRINT", 0.25);
  return kScale;
}

uint64_t DefaultAccesses(uint64_t base) {
  return static_cast<uint64_t>(static_cast<double>(base) * BenchAccessScale());
}

int BenchSeeds() {
  static const int kSeeds =
      std::max(1, static_cast<int>(EnvDouble("MEMTIS_BENCH_SEEDS", 1.0)));
  return kSeeds;
}

RunOutput RunOne(const RunSpec& spec) {
  const double footprint_scale =
      spec.footprint_scale > 0.0 ? spec.footprint_scale : BenchFootprintScale();
  auto workload = MakeWorkload(spec.benchmark, footprint_scale, spec.seed_offset);
  const uint64_t footprint = workload->footprint_bytes();
  const uint64_t fast =
      spec.fast_bytes_override != 0
          ? spec.fast_bytes_override
          : static_cast<uint64_t>(static_cast<double>(footprint) * spec.fast_ratio);
  const uint64_t capacity = footprint + footprint / 2;

  std::unique_ptr<TieringPolicy> policy;
  if (spec.memtis_tweak != nullptr &&
      spec.system.rfind("memtis", 0) == 0) {
    MemtisConfig cfg = MemtisConfig::ScaledDefaults(footprint, fast);
    if (spec.system == "memtis-ns") {
      cfg.enable_split = false;
      cfg.enable_collapse = false;
    }
    policy = std::make_unique<MemtisPolicy>(spec.memtis_tweak(cfg));
  } else {
    policy = MakePolicy(spec.system, footprint, fast);
  }

  const MachineConfig machine =
      spec.cxl ? MakeCxlMachine(fast, capacity) : MakeNvmMachine(fast, capacity);
  EngineOptions opts;
  opts.max_accesses = spec.accesses != 0 ? spec.accesses : DefaultAccesses();
  opts.snapshot_interval_ns = spec.snapshot_interval_ns;
  opts.cpu_contention = spec.cpu_contention;
  Engine engine(machine, *policy, opts);

  RunOutput out;
  out.metrics = engine.Run(*workload);
  out.footprint_bytes = footprint;
  out.fast_bytes = fast;
  if (auto* memtis = dynamic_cast<MemtisPolicy*>(policy.get())) {
    out.is_memtis = true;
    out.memtis_stats = memtis->stats();
    out.mean_ehr = memtis->mean_ehr();
    out.sampler_cpu =
        out.metrics.cpu.core_share(DaemonKind::kSampler, out.metrics.app_ns);
    out.pebs_load_period = memtis->sampler().period(SampleType::kLlcLoadMiss);
    out.pebs_store_period = memtis->sampler().period(SampleType::kStore);
  }
  if (auto* hemem = dynamic_cast<HeMemPolicy*>(policy.get())) {
    out.hemem_overalloc_bytes = hemem->over_allocated_bytes();
  }
  return out;
}

RunOutput RunBaseline(RunSpec spec) {
  spec.system = "all-capacity";
  return RunOne(spec);
}

}  // namespace memtis
