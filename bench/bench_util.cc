#include "bench/bench_util.h"

namespace memtis {

ThreadPool& BenchPool() {
  static ThreadPool* kPool = new ThreadPool();
  return *kPool;
}

}  // namespace memtis
