// Table 3: HeMem over-allocation — fast-tier bytes consumed by small
// allocations that HeMem always places in DRAM. In the scaled models only
// workloads that actually make small allocations (603.bwaves's transient
// buffers) over-allocate; the paper's values come from each application's
// malloc mix.

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace memtis {
namespace {

int Main() {
  Table table("Table 3 — HeMem over-allocation (small allocations pinned to fast tier)");
  table.SetHeader({"benchmark", "over-allocation", "fast_tier"});
  for (const auto& benchmark : StandardBenchmarks()) {
    RunSpec spec;
    spec.system = "hemem";
    spec.benchmark = benchmark;
    spec.fast_ratio = 1.0 / 3.0;
    spec.accesses = DefaultAccesses(1'500'000);
    const RunOutput out = RunOne(spec);
    table.AddRow({benchmark,
                  Table::Mib(static_cast<double>(out.hemem_overalloc_bytes)),
                  Table::Mib(static_cast<double>(out.fast_bytes))});
  }
  table.Print();
  std::printf("\nPaper Table 3 (unscaled): graph500 60MB, pagerank 500MB, xsbench "
              "420MB, liblinear 90MB, silo 1400MB, btree 9800MB, 603.bwaves "
              "1900MB, 654.roms 900MB. The synthetic models allocate in large "
              "regions, so only 603.bwaves reproduces a nonzero value.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
