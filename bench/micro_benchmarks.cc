// google-benchmark micro-benchmarks for the hot paths of the simulator and
// the MEMTIS data structures.

#include <benchmark/benchmark.h>

#include "src/access/pebs_sampler.h"
#include "src/common/rng.h"
#include "src/mem/buddy_allocator.h"
#include "src/mem/tlb.h"
#include "src/memtis/histogram.h"
#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/workloads/synthetic.h"

namespace memtis {
namespace {

void BM_HistogramUpdate(benchmark::State& state) {
  AccessHistogram hist;
  hist.Add(3, 1000);
  uint64_t hotness = 1;
  for (auto _ : state) {
    const int from = AccessHistogram::BinOf(hotness);
    const int to = AccessHistogram::BinOf(hotness + 1);
    hist.Move(from, to, 1);
    hist.Move(to, from, 1);
    hotness = hotness * 5 % 65521 + 1;
  }
}
BENCHMARK(BM_HistogramUpdate);

void BM_HistogramThresholds(benchmark::State& state) {
  AccessHistogram hist;
  uint64_t seed = 7;
  for (int b = 0; b < AccessHistogram::kBins; ++b) {
    hist.Add(b, SplitMix64(seed) % 10000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.ComputeThresholds(20000, 0.9));
  }
}
BENCHMARK(BM_HistogramThresholds);

void BM_HistogramCool(benchmark::State& state) {
  AccessHistogram hist;
  for (int b = 0; b < AccessHistogram::kBins; ++b) {
    hist.Add(b, 1000);
  }
  for (auto _ : state) {
    hist.Cool();
    hist.Add(8, 1000);  // keep it populated
  }
}
BENCHMARK(BM_HistogramCool);

void BM_TlbAccess(benchmark::State& state) {
  Tlb tlb;
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.Access(rng.Next() % 16384, PageKind::kBase));
  }
}
BENCHMARK(BM_TlbAccess);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(5);
  ZipfSampler zipf(1 << 20, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_PebsOnEvent(benchmark::State& state) {
  PebsSampler sampler;
  uint64_t now_ns = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.OnEvent(SampleType::kLlcLoadMiss, now_ns));
    now_ns += 10;
  }
}
BENCHMARK(BM_PebsOnEvent);

void BM_BuddyAllocFree(benchmark::State& state) {
  BuddyAllocator buddy(1 << 16);
  for (auto _ : state) {
    auto frame = buddy.Allocate(0);
    benchmark::DoNotOptimize(frame);
    buddy.Free(*frame, 0);
  }
}
BENCHMARK(BM_BuddyAllocFree);

void BM_EngineAccessPipeline(benchmark::State& state) {
  // End-to-end per-access cost of the simulator under the full MEMTIS policy.
  SyntheticWorkload::Params p;
  p.footprint_bytes = 32ull << 20;
  p.zipf_s = 1.0;
  p.chunk_pages = kSubpagesPerHuge;
  SyntheticWorkload workload(p);
  auto policy = MakePolicy("memtis", p.footprint_bytes, p.footprint_bytes / 3);
  EngineOptions opts;
  opts.max_accesses = 1ull << 60;
  Engine engine(MakeNvmMachine(p.footprint_bytes / 3, p.footprint_bytes * 2), *policy,
                opts);
  Rng rng(11);
  App app(engine);
  workload.Setup(app, rng);
  uint64_t done = 0;
  for (auto _ : state) {
    workload.Step(app, rng);
    done += 256;
  }
  state.SetItemsProcessed(static_cast<int64_t>(done));
}
BENCHMARK(BM_EngineAccessPipeline);

}  // namespace
}  // namespace memtis

BENCHMARK_MAIN();
