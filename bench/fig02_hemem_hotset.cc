// Fig. 2: hot/cold pages identified by HeMem over time on PageRank and
// XSBench, against the fast tier size. Reproduces HeMem's pathology: the
// static threshold makes the identified hot set drift well below (PageRank)
// or above (XSBench early phase) the fast tier capacity.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace memtis {
namespace {

int Main() {
  for (const char* benchmark : {"pagerank", "xsbench"}) {
    RunSpec spec;
    spec.system = "hemem";
    spec.benchmark = benchmark;
    spec.fast_ratio = 1.0 / 3.0;
    spec.accesses = DefaultAccesses(5'000'000);
    spec.snapshot_interval_ns = 2'000'000;
    const RunOutput out = RunOne(spec);

    Table table(std::string("Fig. 2 — HeMem identified hot set over time: ") +
                benchmark);
    table.SetHeader({"t(ms)", "hot(MiB)", "cold(MiB)", "fast_tier(MiB)"});
    const auto& timeline = out.metrics.timeline;
    const size_t stride = std::max<size_t>(1, timeline.size() / 24);
    for (size_t i = 0; i < timeline.size(); i += stride) {
      const auto& point = timeline[i];
      table.AddRow({Table::Num(point.t_ns / 1e6, 1),
                    Table::Mib(static_cast<double>(point.classified.hot_bytes)),
                    Table::Mib(static_cast<double>(point.classified.cold_bytes)),
                    Table::Mib(static_cast<double>(out.fast_bytes))});
    }
    table.Print();
  }
  std::printf("\nExpected shape (paper Fig. 2): PageRank's hot set stays well below "
              "the fast tier (dashed line); XSBench's exceeds it early, then "
              "shrinks below it.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
