// Fig. 12: fast-tier hit ratios at 1:8 — eHR (estimated base-page-only hit
// ratio), rHR (measured, with splitting), and rHR-NS (measured, splits
// disabled).

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace memtis {
namespace {

int Main() {
  Table table("Fig. 12 — fast tier hit ratios at 1:8");
  table.SetHeader({"benchmark", "eHR", "rHR", "rHR-NS"});
  for (const auto& benchmark : StandardBenchmarks()) {
    RunSpec spec;
    spec.benchmark = benchmark;
    spec.fast_ratio = 1.0 / 9.0;
    spec.accesses = DefaultAccesses(5'000'000);

    spec.system = "memtis";
    const RunOutput with_split = RunOne(spec);
    spec.system = "memtis-ns";
    const RunOutput no_split = RunOne(spec);

    table.AddRow({benchmark, Table::Pct(no_split.mean_ehr),
                  Table::Pct(with_split.metrics.fast_hit_ratio()),
                  Table::Pct(no_split.metrics.fast_hit_ratio())});
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 12): silo and btree show a large "
              "eHR vs rHR-NS gap (paper: 64.1%% and 36.4%%) that splitting "
              "closes; graph500/pagerank show eHR <= rHR (no skew, nothing to "
              "split); 603.bwaves stays low due to short-lived churn.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
