// Fig. 8: MEMTIS vs HeMem on HeMem's most favourable setting — 16 app threads
// (spare cores for HeMem's service threads, so no CPU contention) at 1:2.
// HeMem+ gets the same configured fast tier as MEMTIS (i.e. its small
// allocations come on top of, rather than out of, the configured size).

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace memtis {
namespace {

int Main() {
  Table table("Fig. 8 — MEMTIS vs HeMem / HeMem+, 16 threads, 1:2 "
              "(normalized to all-NVM+THP)");
  table.SetHeader({"benchmark", "hemem", "hemem+", "memtis"});
  for (const auto& benchmark : StandardBenchmarks()) {
    RunSpec spec;
    spec.benchmark = benchmark;
    spec.fast_ratio = 1.0 / 3.0;
    spec.cpu_contention = false;  // 16 of 20 cores used by the app
    const RunOutput baseline = RunBaseline(spec);

    // First a probe run to measure HeMem's over-allocation.
    spec.system = "hemem";
    const RunOutput probe = RunOne(spec);

    // "hemem": configured fast tier reduced by the over-allocation (the
    // paper's default accounting). "hemem+": full fast tier plus the
    // over-allocated small objects.
    RunSpec reduced = spec;
    reduced.fast_bytes_override =
        probe.fast_bytes > probe.hemem_overalloc_bytes
            ? probe.fast_bytes - probe.hemem_overalloc_bytes
            : probe.fast_bytes / 2;
    const RunOutput hemem = RunOne(reduced);
    const RunOutput hemem_plus = probe;

    spec.system = "memtis";
    const RunOutput memtis = RunOne(spec);

    table.AddRow({benchmark, Table::Num(NormalizedPerf(hemem, baseline)),
                  Table::Num(NormalizedPerf(hemem_plus, baseline)),
                  Table::Num(NormalizedPerf(memtis, baseline))});
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 8): MEMTIS beats both HeMem variants "
              "even without CPU contention — static thresholds, not CPU, are "
              "HeMem's primary handicap.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
