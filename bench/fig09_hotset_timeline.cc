// Fig. 9: hot/warm/cold data identified by MEMTIS over time, against the fast
// tier size, for PageRank, XSBench, Liblinear, and 603.bwaves at 1:2 and 1:8.

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace memtis {
namespace {

int Main() {
  for (const char* benchmark : {"pagerank", "xsbench", "liblinear", "603.bwaves"}) {
    for (const auto& [ratio_name, ratio] :
         std::vector<std::pair<std::string, double>>{{"1:2", 1.0 / 3.0},
                                                     {"1:8", 1.0 / 9.0}}) {
      RunSpec spec;
      spec.system = "memtis";
      spec.benchmark = benchmark;
      spec.fast_ratio = ratio;
      spec.accesses = DefaultAccesses(4'000'000);
      spec.snapshot_interval_ns = 2'000'000;
      const RunOutput out = RunOne(spec);

      Table table(std::string("Fig. 9 — MEMTIS classification timeline: ") +
                  benchmark + " (" + ratio_name + ")");
      table.SetHeader({"t(ms)", "hot(MiB)", "warm(MiB)", "cold(MiB)",
                       "fast_tier(MiB)"});
      const auto& timeline = out.metrics.timeline;
      const size_t stride = std::max<size_t>(1, timeline.size() / 16);
      for (size_t i = 0; i < timeline.size(); i += stride) {
        const auto& point = timeline[i];
        table.AddRow(
            {Table::Num(point.t_ns / 1e6, 1),
             Table::Mib(static_cast<double>(point.classified.hot_bytes)),
             Table::Mib(static_cast<double>(point.classified.warm_bytes)),
             Table::Mib(static_cast<double>(point.classified.cold_bytes)),
             Table::Mib(static_cast<double>(out.fast_bytes))});
      }
      table.Print();
    }
  }
  std::printf("\nExpected shape (paper Fig. 9): the identified hot set hugs the "
              "fast tier size (dashed line), with warm pages filling any gap; "
              "brief overshoots recover within an adaptation interval.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
