// Ablation benches for the design choices DESIGN.md calls out:
//   (a) split benefit gate (paper: 5%) and split scale factor beta (0.4),
//   (b) the hybrid PEBS+scan tracking extension (paper §8, future work),
//   (c) eager vs sample-count-paced cooling ratio.

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace memtis {
namespace {

double g_gate = 0.05;
double g_beta = 0.4;

MemtisConfig TweakSplit(MemtisConfig cfg) {
  cfg.split_benefit_gate = g_gate;
  cfg.beta = g_beta;
  return cfg;
}

void SplitParamSweep() {
  Table table("Ablation (a) — split benefit gate x beta, silo @ 1:8 "
              "(normalized to all-NVM+THP)");
  table.SetHeader({"gate", "beta", "perf", "splits", "fastHR"});
  RunSpec spec;
  spec.benchmark = "silo";
  spec.fast_ratio = 1.0 / 9.0;
  spec.accesses = DefaultAccesses(4'000'000);
  const RunOutput baseline = RunBaseline(spec);
  for (double gate : {0.01, 0.05, 0.20}) {
    for (double beta : {0.1, 0.4, 1.0}) {
      g_gate = gate;
      g_beta = beta;
      spec.system = "memtis";
      spec.memtis_tweak = TweakSplit;
      const RunOutput out = RunOne(spec);
      table.AddRow({Table::Pct(gate, 0), Table::Num(beta, 1),
                    Table::Num(NormalizedPerf(out, baseline)),
                    std::to_string(out.memtis_stats.splits_performed),
                    Table::Pct(out.metrics.fast_hit_ratio())});
    }
  }
  table.Print();
}

void HybridSweep() {
  Table table("Ablation (b) — hybrid PEBS+scan tracking (paper §8 extension)");
  table.SetHeader({"benchmark", "memtis", "memtis-hybrid", "scanner_cpu(hybrid)"});
  for (const char* benchmark : {"pagerank", "silo", "603.bwaves", "654.roms"}) {
    RunSpec spec;
    spec.benchmark = benchmark;
    spec.fast_ratio = 1.0 / 9.0;
    spec.accesses = DefaultAccesses(3'000'000);
    const RunOutput baseline = RunBaseline(spec);
    spec.system = "memtis";
    const RunOutput plain = RunOne(spec);
    spec.system = "memtis-hybrid";
    const RunOutput hybrid = RunOne(spec);
    table.AddRow(
        {benchmark, Table::Num(NormalizedPerf(plain, baseline)),
         Table::Num(NormalizedPerf(hybrid, baseline)),
         Table::Pct(hybrid.metrics.cpu.core_share(DaemonKind::kScanner,
                                                  hybrid.metrics.app_ns))});
  }
  table.Print();
  std::printf("Paper §8's caveat applies: the scan adds runtime overhead and "
              "often yields no benefit — it only helps when cold-page "
              "misclassification is the bottleneck.\n");
}

double g_cool_ratio = 4.0;

MemtisConfig TweakCoolRatio(MemtisConfig cfg) {
  cfg.cooling_interval_samples = static_cast<uint64_t>(
      static_cast<double>(cfg.adapt_interval_samples) * g_cool_ratio);
  return cfg;
}

void CoolingRatioSweep() {
  Table table("Ablation (c) — cooling:adaptation interval ratio, pagerank @ 1:8");
  table.SetHeader({"ratio", "perf", "coolings"});
  RunSpec spec;
  spec.benchmark = "pagerank";
  spec.fast_ratio = 1.0 / 9.0;
  spec.accesses = DefaultAccesses(3'000'000);
  const RunOutput baseline = RunBaseline(spec);
  for (double ratio : {1.0, 2.0, 4.0, 8.0, 20.0}) {
    g_cool_ratio = ratio;
    spec.system = "memtis";
    spec.memtis_tweak = TweakCoolRatio;
    const RunOutput out = RunOne(spec);
    table.AddRow({Table::Num(ratio, 0), Table::Num(NormalizedPerf(out, baseline)),
                  std::to_string(out.memtis_stats.coolings)});
  }
  table.Print();
}

void ShrinkerComparison() {
  Table table("Ablation (d) — THP Shrinker (bloat-triggered split, paper §7) vs "
              "MEMTIS (skew-triggered), 1:8");
  table.SetHeader({"benchmark", "system", "perf", "splits", "final_RSS", "fastHR"});
  for (const char* benchmark : {"btree", "silo"}) {
    RunSpec spec;
    spec.benchmark = benchmark;
    spec.fast_ratio = 1.0 / 9.0;
    spec.accesses = DefaultAccesses(4'000'000);
    const RunOutput baseline = RunBaseline(spec);
    for (const char* system : {"memtis-ns", "memtis-shrinker", "memtis"}) {
      spec.system = system;
      const RunOutput out = RunOne(spec);
      table.AddRow({benchmark, system, Table::Num(NormalizedPerf(out, baseline)),
                    std::to_string(out.metrics.migration.splits),
                    Table::Mib(static_cast<double>(out.metrics.final_rss_pages) *
                               kPageSize),
                    Table::Pct(out.metrics.fast_hit_ratio())});
    }
  }
  table.Print();
  std::printf("On btree every huge page is bloated, so the zero-page heuristic "
              "coincides with (and slightly over-approximates) the skew "
              "heuristic and does as well or better. On silo nothing is ever "
              "zero — the shrinker never fires and leaves all the split benefit "
              "on the table, which is exactly why MEMTIS splits on skew, not "
              "bloat (paper §7).\n");
}

int Main() {
  SplitParamSweep();
  HybridSweep();
  CoolingRatioSweep();
  ShrinkerComparison();
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
