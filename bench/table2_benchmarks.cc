// Table 2: benchmark characteristics — RSS and ratio of huge pages (RHP),
// plus the simulator-specific access mix, measured on the all-capacity
// baseline with THP.

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/policies/static_policy.h"

namespace memtis {
namespace {

int Main() {
  Table table("Table 2 — benchmark characteristics (scaled models)");
  table.SetHeader({"benchmark", "RSS", "RHP", "RHP(fragmented)", "stores",
                   "accesses_run"});
  for (const auto& benchmark : StandardBenchmarks()) {
    RunSpec spec;
    spec.benchmark = benchmark;
    spec.fast_ratio = 1.0;  // capacity sizing only; placement is all-capacity
    const RunOutput out = RunBaseline(spec);

    // RHP on a long-lived (fragmented) machine: 85% of huge blocks broken, so
    // some spans fall back to base pages — the paper's sub-100% RHP column.
    auto workload = MakeWorkload(benchmark, BenchFootprintScale());
    StaticPolicy policy(TierId::kCapacity);
    MachineConfig machine = MakeNvmMachine(workload->footprint_bytes(),
                                           workload->footprint_bytes() * 3 / 2);
    machine.mem.fragmentation = 0.85;
    EngineOptions opts;
    opts.max_accesses = 200'000;
    Engine engine(machine, policy, opts);
    engine.Run(*workload);

    table.AddRow({benchmark,
                  Table::Mib(static_cast<double>(out.metrics.final_rss_pages) *
                             kPageSize),
                  Table::Pct(out.metrics.final_huge_ratio),
                  Table::Pct(engine.mem().huge_page_ratio()),
                  Table::Pct(static_cast<double>(out.metrics.stores) /
                             static_cast<double>(out.metrics.accesses)),
                  std::to_string(out.metrics.accesses)});
  }
  table.Print();
  std::printf("\nPaper Table 2 RHP for comparison: graph500 99.9%%, pagerank 99.9%%, "
              "xsbench 100%%, liblinear 99.9%%, silo 97.4%%, btree 75.2%%, "
              "603.bwaves 99.5%%, 654.roms 96.6%%.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
