// Fig. 6: Graph500 scalability — RSS grows (paper: 128 GB -> 690 GB) while
// the fast tier stays fixed (paper: 64 GB). Scaled: base RSS with fast tier =
// RSS/2, footprint multipliers matching the paper's 128/192/336/690 ratios.
//
// Each scale point needs its own footprint/access budget, so the cells are
// built as explicit JobSpecs and submitted to the shared runner pool in one
// batch; rows are then assembled from the index-ordered results.

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace memtis {
namespace {

int Main() {
  // Paper RSS points relative to the first: 1.0, 1.5, 2.63, 5.39.
  const std::vector<std::pair<std::string, double>> kScales = {
      {"128GB-equiv", 1.0},
      {"192GB-equiv", 1.5},
      {"336GB-equiv", 2.63},
      {"690GB-equiv", 5.39},
  };

  const double base_scale = BenchFootprintScale();
  // Fixed fast tier: half of the base footprint (paper: 64 GB vs 128 GB RSS).
  auto probe = MakeWorkload("graph500", base_scale);
  const uint64_t fast_bytes = probe->footprint_bytes() / 2;

  Table table("Fig. 6 — Graph500 with growing RSS, fixed fast tier "
              "(normalized to all-NVM+THP)");
  std::vector<std::string> header = {"RSS"};
  for (const auto& system : ComparisonSystems()) {
    header.push_back(system);
  }
  table.SetHeader(header);

  // Cells per scale point: the baseline followed by each system.
  std::vector<JobSpec> jobs;
  for (const auto& [label, multiplier] : kScales) {
    JobSpec spec;
    spec.benchmark = "graph500";
    spec.footprint_scale = base_scale * multiplier;
    spec.fast_bytes_override = fast_bytes;
    spec.accesses = DefaultAccesses(
        static_cast<uint64_t>(3'000'000.0 * multiplier));
    jobs.push_back(BaselineSpec(spec));
    for (const auto& system : ComparisonSystems()) {
      spec.system = system;
      jobs.push_back(spec);
    }
  }
  const std::vector<JobResult> results = RunJobs(jobs, BenchPool());

  const size_t row_stride = 1 + ComparisonSystems().size();
  for (size_t s = 0; s < kScales.size(); ++s) {
    const JobResult& baseline = results[s * row_stride];
    std::vector<std::string> row = {kScales[s].first};
    for (size_t k = 0; k < ComparisonSystems().size(); ++k) {
      row.push_back(Table::Num(
          NormalizedPerf(results[s * row_stride + 1 + k], baseline)));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 6): MEMTIS stays on top as the RSS "
              "grows (paper: +8.1%% to +60.5%% over the second-best); page-table "
              "scanners degrade with memory size.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
