// Fig. 1: DAMON's accuracy / overhead trade-off on 654.roms.
//
// Three configurations mirroring the paper's s-m-X settings (time scaled to
// the simulator's virtual clock): (a) short interval + few regions, (b) long
// interval + many regions, (c) short interval + many regions. Accuracy is the
// correlation between DAMON's per-page access estimate and the ground-truth
// access counts; overhead is DAMON's modelled CPU as a share of one core.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/access/damon.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/policies/static_policy.h"
#include "src/workloads/spec_workloads.h"

namespace memtis {
namespace {

// Runs roms under a pass-through policy that feeds DAMON and ground truth.
class DamonProbePolicy : public StaticPolicy {
 public:
  DamonProbePolicy(const DamonConfig& config, uint64_t span_bytes)
      : StaticPolicy(TierId::kFast),
        damon_(config, 0, span_bytes),
        truth_(span_bytes >> kPageShift, 0),
        estimate_(span_bytes >> kPageShift, 0.0) {}

  void OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                const Access& access) override {
    StaticPolicy::OnAccess(ctx, index, page, access);
    const Vpn vpn = VpnOf(access.addr);
    if (vpn < truth_.size()) {
      ++truth_[vpn];
    }
    damon_.OnAccess(access.addr);
  }

  void Tick(PolicyContext& ctx) override {
    damon_.Tick(ctx.now_ns);
    ctx.ChargeDaemon(DaemonKind::kScanner, damon_.busy_ns() - charged_ns_);
    charged_ns_ = damon_.busy_ns();
    // Fold each completed aggregation into the per-page estimate.
    if (damon_.aggregations() != folded_aggregations_) {
      folded_aggregations_ = damon_.aggregations();
      for (const auto& r : damon_.last_aggregation()) {
        const Vpn first = VpnOf(r.start);
        const Vpn last = VpnOf(r.end - 1);
        for (Vpn v = first; v <= last && v < estimate_.size(); ++v) {
          estimate_[v] += r.nr_accesses;
        }
      }
    }
  }

  double Accuracy() const {
    std::vector<double> t(truth_.begin(), truth_.end());
    return PearsonCorrelation(t, estimate_);
  }
  uint64_t damon_busy_ns() const { return damon_.busy_ns(); }

 private:
  Damon damon_;
  std::vector<uint64_t> truth_;
  std::vector<double> estimate_;
  uint64_t folded_aggregations_ = 0;
  uint64_t charged_ns_ = 0;
};

int Main() {
  RomsWorkload::Params wp;
  wp.footprint_bytes = static_cast<uint64_t>(96.0 * BenchFootprintScale() * (1 << 20));
  wp.footprint_bytes = std::max<uint64_t>(wp.footprint_bytes, 16ull << 20);

  struct Config {
    const char* name;
    uint64_t sampling_ns;
    uint32_t min_regions;
    uint32_t max_regions;
  };
  // Paper: (a) 5ms-10-1000, (b) 500ms-10K-20K, (c) 5ms-10K-20K; time scaled
  // ~1:100 to the virtual clock, region counts to the scaled footprint.
  const std::vector<Config> configs = {
      {"50us-10-100 (paper 5ms-10-1000)", 50'000, 10, 100},
      {"5ms-2K-4K   (paper 500ms-10K-20K)", 5'000'000, 2048, 4096},
      {"50us-2K-4K  (paper 5ms-10K-20K)", 50'000, 2048, 4096},
  };

  Table table("Fig. 1 — DAMON accuracy vs CPU overhead (654.roms model)");
  table.SetHeader({"config", "regions", "accuracy(corr)", "cpu_overhead"});
  for (const auto& config : configs) {
    DamonConfig dc;
    dc.sampling_interval_ns = config.sampling_ns;
    dc.aggregation_interval_ns = config.sampling_ns * 20;
    dc.min_regions = config.min_regions;
    dc.max_regions = config.max_regions;

    RomsWorkload workload(wp);
    DamonProbePolicy policy(dc, wp.footprint_bytes);
    EngineOptions opts;
    opts.max_accesses = DefaultAccesses(4'000'000);
    Engine engine(MakeDramOnlyMachine(wp.footprint_bytes * 2), policy, opts);
    const Metrics m = engine.Run(workload);
    const double overhead = static_cast<double>(policy.damon_busy_ns()) /
                            static_cast<double>(m.app_ns);
    table.AddRow({config.name, std::to_string(config.max_regions),
                  Table::Num(policy.Accuracy(), 3), Table::Pct(overhead)});
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 1): coarse regions OR long intervals lose "
              "accuracy; accurate config burns an order of magnitude more CPU.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
