#include "bench/perf/perf_util.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "src/common/json.h"

namespace memtis {

namespace {
// Sinks for Blackhole: volatile stores cannot be elided.
volatile uint64_t g_u64_sink = 0;
volatile double g_double_sink = 0.0;
}  // namespace

double PerfResult::ns_per_op() const {
  return ops == 0 ? 0.0
                  : static_cast<double>(wall_ns) / static_cast<double>(ops);
}

double PerfResult::ops_per_sec() const {
  return wall_ns == 0 ? 0.0
                      : static_cast<double>(ops) * 1e9 /
                            static_cast<double>(wall_ns);
}

void PerfReporter::Add(const PerfResult& result) {
  std::fprintf(stderr, "%-22s %12llu %s ops in %10.3f ms  (%10.1f ns/op)\n",
               result.name.c_str(),
               static_cast<unsigned long long>(result.ops), result.unit.c_str(),
               static_cast<double>(result.wall_ns) / 1e6, result.ns_per_op());
  results_.push_back(result);
}

std::string PerfReporter::ToJson(int indent) const {
  std::string out;
  JsonWriter w(&out, indent);
  w.BeginObject();
  w.Field("schema", "memtis-hotpath-bench");
  w.Field("schema_version", 1);
  w.Field("build_type", build_type_);
  w.Field("smoke", smoke_);
  w.Key("benchmarks");
  w.BeginArray();
  for (const PerfResult& r : results_) {
    w.BeginObject();
    w.Field("name", r.name);
    w.Field("unit", r.unit);
    w.Field("ops", r.ops);
    w.Field("wall_ns", r.wall_ns);
    w.Field("ns_per_op", r.ns_per_op());
    w.Field("ops_per_sec", r.ops_per_sec());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return out;
}

bool PerfReporter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string json = ToJson(2);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Blackhole(uint64_t value) { g_u64_sink = value; }
void Blackhole(double value) { g_double_sink = value; }

}  // namespace memtis
