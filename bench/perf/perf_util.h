// Hot-path microbenchmark harness.
//
// Unlike the figure benches (which reproduce paper results in virtual time),
// bench/perf/ measures *wall-clock* cost of the simulator's own hot paths, so
// the engine's throughput trajectory is tracked PR-over-PR: scripts/bench.sh
// runs the suite in a Release tree and writes BENCH_hotpath.json in the
// stable schema below.
//
//   {
//     "schema": "memtis-hotpath-bench", "schema_version": 1,
//     "build_type": "Release", "smoke": false,
//     "benchmarks": [{"name": ..., "unit": ..., "ops": N,
//                     "wall_ns": N, "ns_per_op": X, "ops_per_sec": X}]
//   }
//
// Wall-clock numbers are inherently machine-dependent; compare runs from the
// same machine and build type only (bench.sh refuses non-Release trees).

#ifndef MEMTIS_SIM_BENCH_PERF_PERF_UTIL_H_
#define MEMTIS_SIM_BENCH_PERF_PERF_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace memtis {

// One finished microbenchmark: `ops` logical operations (accesses replayed,
// cooling scans, churn cycles...) took `wall_ns` of real time.
struct PerfResult {
  std::string name;
  std::string unit;  // what one op is: "access", "cooling_scan", ...
  uint64_t ops = 0;
  uint64_t wall_ns = 0;

  double ns_per_op() const;
  double ops_per_sec() const;
};

// Collects results in registration order and serializes the stable schema.
class PerfReporter {
 public:
  PerfReporter(bool smoke, std::string build_type)
      : smoke_(smoke), build_type_(std::move(build_type)) {}

  // Records a result and prints a one-line human summary to stderr (stdout is
  // reserved for the JSON document).
  void Add(const PerfResult& result);

  std::string ToJson(int indent = 2) const;
  bool WriteFile(const std::string& path) const;

  const std::vector<PerfResult>& results() const { return results_; }

 private:
  bool smoke_;
  std::string build_type_;
  std::vector<PerfResult> results_;
};

// Monotonic wall-clock in nanoseconds.
uint64_t MonotonicNowNs();

// Consumes a computed value so the optimizer cannot elide the timed work.
void Blackhole(uint64_t value);
void Blackhole(double value);

}  // namespace memtis

#endif  // MEMTIS_SIM_BENCH_PERF_PERF_UTIL_H_
