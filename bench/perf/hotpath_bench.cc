// hotpath_bench: wall-clock microbenchmarks of the simulator's hot paths.
//
// Tracked benchmarks (see perf_util.h for the JSON schema):
//   access_replay         engine access pipeline + MEMTIS sampling, ns/access
//                         (scalar path: the btree model emits no runs)
//   access_replay_batched batched-replay pipeline (DoAccessRun) over the
//                         run-emitting stream workload, ns/access
//   access_replay_memtis/_hemem/_autotiering
//                         the same stream replay per policy; autotiering has
//                         no absorb hook, so it doubles as the scalar
//                         baseline over the identical address stream
//   access_replay_sharded2/_sharded4
//                         end-to-end ShardedEngine replay (N shards, N
//                         threads, merge included), ns/access
//   cooling_scan          one MemtisPolicy cooling event over a live heap
//   metrics_recount       the per-snapshot metric getters (huge_page_ratio,
//                         bloat_pages) that every timeline point pays for
//   split_collapse_churn  one huge-page split + re-collapse round trip
//   exchange_churn        one ExchangePages swap with the fast tier full
//   migrate_evict_churn   the demote-then-promote pair the swap replaces
//   sweep_wallclock       a small multi-job runner sweep through the pool
//
// Usage: hotpath_bench [--smoke] [--benchmarks=a,b] [--repeat=N] [--out=FILE]
//                      [--force]
//   --smoke   tiny iteration counts (the tier-1 ctest perf smoke); never
//             writes a file.
//   --repeat  run each benchmark N times and keep the fastest (best-of-N
//             rejects scheduler/frequency noise on shared hosts; default 1).
//   --out     also write the JSON to FILE — refused unless the binary was
//             built in a Release tree (or --force), so tracked BENCH numbers
//             never come from unoptimized builds.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/perf/perf_util.h"
#include "src/memtis/memtis_policy.h"
#include "src/memtis/policy_registry.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"
#include "src/sim/engine.h"
#include "src/sim/sharded_engine.h"
#include "src/workloads/registry.h"

#ifndef MEMTIS_PERF_BUILD_TYPE
#define MEMTIS_PERF_BUILD_TYPE "unknown"
#endif

namespace memtis {
namespace {

// A live MEMTIS engine state shared by the engine-level benchmarks: the
// btree model (huge pages with skewed subpage use) at 1:3 fast:capacity.
struct MemtisState {
  std::unique_ptr<Workload> workload;
  MemtisConfig config;
  MemtisPolicy policy;
  Engine engine;

  explicit MemtisState(uint64_t warmup_accesses)
      : workload(MakeWorkload("btree", 0.12)),
        config(MemtisConfig::ScaledDefaults(workload->footprint_bytes(),
                                            workload->footprint_bytes() / 3)),
        policy(config),
        engine(MachineForFootprint(workload->footprint_bytes()), policy,
               [&] {
                 EngineOptions opts;
                 opts.max_accesses = warmup_accesses;
                 return opts;
               }()) {
    engine.Run(*workload);
  }

  static MachineConfig MachineForFootprint(uint64_t footprint) {
    return MakeNvmMachine(footprint / 3, footprint + footprint / 2);
  }
};

PerfResult BenchAccessReplay(bool smoke) {
  const uint64_t warmup = smoke ? 10'000 : 200'000;
  const uint64_t timed = smoke ? 10'000 : 2'000'000;
  MemtisState state(warmup);
  state.engine.set_max_accesses(warmup + timed);
  const uint64_t t0 = MonotonicNowNs();
  state.engine.Run(*state.workload);
  const uint64_t t1 = MonotonicNowNs();
  Blackhole(state.engine.metrics().accesses);
  return PerfResult{"access_replay", "access",
                    state.engine.metrics().accesses - warmup, t1 - t0};
}

// Replays the run-emitting stream workload under the named policy: the
// batched path for policies with an absorb hook (memtis, hemem), the scalar
// fallback otherwise (autotiering) — same address stream either way.
PerfResult BenchStreamReplay(const char* bench_name, const char* policy_name,
                             bool smoke) {
  const uint64_t warmup = smoke ? 10'000 : 200'000;
  const uint64_t timed = smoke ? 10'000 : 2'000'000;
  auto workload = MakeWorkload("stream", 0.25);
  const uint64_t footprint = workload->footprint_bytes();
  auto policy = MakePolicy(policy_name, footprint, footprint / 3);
  EngineOptions opts;
  opts.max_accesses = warmup;
  Engine engine(MemtisState::MachineForFootprint(footprint), *policy, opts);
  engine.Run(*workload);
  engine.set_max_accesses(warmup + timed);
  const uint64_t t0 = MonotonicNowNs();
  engine.Run(*workload);
  const uint64_t t1 = MonotonicNowNs();
  Blackhole(engine.metrics().accesses);
  return PerfResult{bench_name, "access", engine.metrics().accesses - warmup,
                    t1 - t0};
}

PerfResult BenchAccessReplayBatched(bool smoke) {
  return BenchStreamReplay("access_replay_batched", "memtis", smoke);
}

PerfResult BenchAccessReplayMemtis(bool smoke) {
  return BenchStreamReplay("access_replay_memtis", "memtis", smoke);
}

PerfResult BenchAccessReplayHemem(bool smoke) {
  return BenchStreamReplay("access_replay_hemem", "hemem", smoke);
}

PerfResult BenchAccessReplayAutotiering(bool smoke) {
  return BenchStreamReplay("access_replay_autotiering", "autotiering", smoke);
}

// End-to-end sharded replay: N shards on N threads, including slicing, engine
// construction, and the deterministic merge — the per-cell speedup knob.
PerfResult BenchShardedReplay(const char* bench_name, uint32_t shards,
                              bool smoke) {
  const uint64_t accesses = smoke ? 20'000 : 2'000'000;
  auto workload = MakeWorkload("stream", 0.25);
  const uint64_t footprint = workload->footprint_bytes();
  const uint64_t slice = footprint / shards;
  PolicyFactory factory = [slice]() {
    return MakePolicy("memtis", slice, slice / 3);
  };
  ShardedOptions sopts;
  sopts.shards = shards;
  sopts.threads = shards;
  sopts.engine.max_accesses = accesses;
  ShardedEngine sharded(MemtisState::MachineForFootprint(footprint), factory,
                        sopts);
  const uint64_t t0 = MonotonicNowNs();
  const Metrics merged = sharded.Run(*workload);
  const uint64_t t1 = MonotonicNowNs();
  Blackhole(merged.accesses);
  return PerfResult{bench_name, "access", merged.accesses, t1 - t0};
}

PerfResult BenchAccessReplaySharded2(bool smoke) {
  return BenchShardedReplay("access_replay_sharded2", 2, smoke);
}

PerfResult BenchAccessReplaySharded4(bool smoke) {
  return BenchShardedReplay("access_replay_sharded4", 4, smoke);
}

PerfResult BenchCoolingScan(bool smoke) {
  const uint64_t iters = smoke ? 5 : 400;
  // Warm up enough that the heap is populated and some subpages carry
  // samples; repeated forced coolings quickly drive most counters to zero,
  // which is exactly the all-cold regime real cooling scans spend most of
  // their time in.
  MemtisState state(smoke ? 20'000 : 300'000);
  const uint64_t t0 = MonotonicNowNs();
  for (uint64_t i = 0; i < iters; ++i) {
    state.policy.TestOnlyForceCooling(state.engine.ctx());
  }
  const uint64_t t1 = MonotonicNowNs();
  Blackhole(static_cast<uint64_t>(state.policy.stats().coolings));
  return PerfResult{"cooling_scan", "cooling_scan", iters, t1 - t0};
}

PerfResult BenchMetricsRecount(bool smoke) {
  // A heap shaped like a real mid-run snapshot: many huge pages, a block of
  // them split into base pages (with demand-fault holes).
  const uint64_t huge_regions = smoke ? 32 : 384;
  const uint64_t split_every = 3;  // ~1/3 of huge pages splintered
  MemorySystem mem(MemoryConfig{
      .fast_frames = huge_regions * kSubpagesPerHuge,
      .capacity_frames = huge_regions * kSubpagesPerHuge});
  std::vector<Vaddr> regions;
  for (uint64_t i = 0; i < huge_regions; ++i) {
    regions.push_back(mem.AllocateRegion(kHugePageSize, AllocOptions{}));
  }
  for (uint64_t i = 0; i < huge_regions; i += split_every) {
    const PageIndex index = mem.Lookup(VpnOf(regions[i]));
    PageInfo& page = mem.page(index);
    for (uint64_t j = 0; j < kSubpagesPerHuge; j += 2) {
      mem.NoteSubpageAccess(page, j, /*is_write=*/true);
    }
    mem.SplitHugePage(index, [](uint32_t j) {
      return j % 4 == 0 ? TierId::kFast : TierId::kCapacity;
    });
  }
  const uint64_t iters = smoke ? 50 : 20'000;
  double acc = 0.0;
  uint64_t bloat = 0;
  const uint64_t t0 = MonotonicNowNs();
  for (uint64_t i = 0; i < iters; ++i) {
    acc += mem.huge_page_ratio();
    bloat += mem.bloat_pages();
  }
  const uint64_t t1 = MonotonicNowNs();
  Blackhole(acc);
  Blackhole(bloat);
  return PerfResult{"metrics_recount", "snapshot_metrics", iters, t1 - t0};
}

PerfResult BenchSplitCollapseChurn(bool smoke) {
  const uint64_t cycles = smoke ? 20 : 4000;
  MemorySystem mem(MemoryConfig{.fast_frames = 4 * kSubpagesPerHuge,
                                .capacity_frames = 4 * kSubpagesPerHuge});
  const Vaddr start = mem.AllocateRegion(kHugePageSize, AllocOptions{});
  const Vpn vpn = VpnOf(start);
  {
    PageInfo& page = mem.page(mem.Lookup(vpn));
    for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
      mem.NoteSubpageAccess(page, j, /*is_write=*/true);
    }
  }
  const uint64_t t0 = MonotonicNowNs();
  for (uint64_t i = 0; i < cycles; ++i) {
    const PageIndex index = mem.Lookup(vpn);
    mem.SplitHugePage(index, [](uint32_t) { return TierId::kFast; });
    if (!mem.CollapseToHuge(vpn, TierId::kFast)) {
      std::fprintf(stderr, "split_collapse_churn: collapse failed\n");
      break;
    }
  }
  const uint64_t t1 = MonotonicNowNs();
  Blackhole(mem.migration_stats().splits);
  return PerfResult{"split_collapse_churn", "churn_cycle", cycles, t1 - t0};
}

// Shared setup for the promotion-under-pressure pair: a fast tier exactly
// filled by one base-page region, a capacity region supplying the hot page,
// and a TLB so both paths pay their shootdowns.
struct ChurnState {
  MemorySystem mem;
  Tlb tlb;
  PageIndex hot;   // capacity-tier page wanting promotion
  PageIndex cold;  // fast-tier victim

  ChurnState()
      : mem(MemoryConfig{.fast_frames = kSubpagesPerHuge,
                         .capacity_frames = 4 * kSubpagesPerHuge}) {
    mem.AttachTlb(&tlb);
    AllocOptions opts;
    opts.use_thp = false;
    opts.preferred = TierId::kFast;
    const Vaddr fast_base = mem.AllocateRegion(kHugePageSize, opts);
    opts.preferred = TierId::kCapacity;
    const Vaddr cap_base = mem.AllocateRegion(kHugePageSize, opts);
    hot = mem.Lookup(VpnOf(cap_base));
    cold = mem.Lookup(VpnOf(fast_base));
  }
};

PerfResult BenchExchangeChurn(bool smoke) {
  const uint64_t cycles = smoke ? 1'000 : 2'000'000;
  ChurnState state;
  const uint64_t t0 = MonotonicNowNs();
  for (uint64_t i = 0; i < cycles; ++i) {
    state.mem.ExchangePages(state.hot, state.cold);
    std::swap(state.hot, state.cold);  // last swap's victim is the next hot
  }
  const uint64_t t1 = MonotonicNowNs();
  Blackhole(state.mem.migration_stats().exchanges);
  return PerfResult{"exchange_churn", "exchange", cycles, t1 - t0};
}

PerfResult BenchMigrateEvictChurn(bool smoke) {
  // The path exchange replaces: demote the victim to free a fast frame, then
  // promote the hot page into it — two buddy free/alloc round trips and the
  // same two shootdowns per cycle.
  const uint64_t cycles = smoke ? 1'000 : 2'000'000;
  ChurnState state;
  const uint64_t t0 = MonotonicNowNs();
  for (uint64_t i = 0; i < cycles; ++i) {
    state.mem.Migrate(state.cold, TierId::kCapacity);
    state.mem.Migrate(state.hot, TierId::kFast);
    std::swap(state.hot, state.cold);
  }
  const uint64_t t1 = MonotonicNowNs();
  Blackhole(state.mem.migration_stats().promoted_base);
  return PerfResult{"migrate_evict_churn", "migrate_evict", cycles, t1 - t0};
}

PerfResult BenchSweepWallclock(bool smoke) {
  SweepSpec sweep;
  sweep.systems = {"memtis", "hemem"};
  sweep.benchmarks = {"btree", "silo"};
  sweep.seeds = smoke ? 1 : 2;
  sweep.accesses = smoke ? 5'000 : 150'000;
  ThreadPool pool;
  const uint64_t t0 = MonotonicNowNs();
  const SweepRun run = RunSweep(sweep, pool);
  const uint64_t t1 = MonotonicNowNs();
  uint64_t total_accesses = 0;
  for (const JobResult& r : run.results) {
    total_accesses += r.metrics.accesses;
  }
  Blackhole(total_accesses);
  return PerfResult{"sweep_wallclock", "job", run.jobs.size(), t1 - t0};
}

struct Registered {
  const char* name;
  PerfResult (*fn)(bool smoke);
};

constexpr Registered kBenchmarks[] = {
    {"access_replay", BenchAccessReplay},
    {"access_replay_batched", BenchAccessReplayBatched},
    {"access_replay_memtis", BenchAccessReplayMemtis},
    {"access_replay_hemem", BenchAccessReplayHemem},
    {"access_replay_autotiering", BenchAccessReplayAutotiering},
    {"access_replay_sharded2", BenchAccessReplaySharded2},
    {"access_replay_sharded4", BenchAccessReplaySharded4},
    {"cooling_scan", BenchCoolingScan},
    {"metrics_recount", BenchMetricsRecount},
    {"split_collapse_churn", BenchSplitCollapseChurn},
    {"exchange_churn", BenchExchangeChurn},
    {"migrate_evict_churn", BenchMigrateEvictChurn},
    {"sweep_wallclock", BenchSweepWallclock},
};

bool WantBenchmark(const std::string& filter, const char* name) {
  if (filter.empty()) {
    return true;
  }
  size_t pos = 0;
  while (pos <= filter.size()) {
    const size_t comma = filter.find(',', pos);
    const size_t end = comma == std::string::npos ? filter.size() : comma;
    if (filter.compare(pos, end - pos, name) == 0) {
      return true;
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return false;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool force = false;
  int repeat = 1;
  std::string out_path;
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--force") {
      force = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--benchmarks=", 0) == 0) {
      filter = arg.substr(13);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.c_str() + 9);
      if (repeat < 1) {
        std::fprintf(stderr, "hotpath_bench: bad --repeat value\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: hotpath_bench [--smoke] [--benchmarks=a,b] "
                   "[--repeat=N] [--out=FILE] [--force]\n");
      return arg == "--help" ? 0 : 2;
    }
  }

  const std::string build_type = MEMTIS_PERF_BUILD_TYPE;
  if (!out_path.empty() && !smoke && build_type != "Release" && !force) {
    std::fprintf(stderr,
                 "hotpath_bench: refusing to write %s from a %s build; "
                 "tracked perf numbers must come from -DCMAKE_BUILD_TYPE="
                 "Release (use --force to override)\n",
                 out_path.c_str(), build_type.c_str());
    return 1;
  }

  PerfReporter reporter(smoke, build_type);
  for (const Registered& bench : kBenchmarks) {
    if (!WantBenchmark(filter, bench.name)) {
      continue;
    }
    PerfResult best = bench.fn(smoke);
    for (int r = 1; r < repeat; ++r) {
      PerfResult next = bench.fn(smoke);
      if (next.ns_per_op() < best.ns_per_op()) {
        best = std::move(next);
      }
    }
    reporter.Add(std::move(best));
  }

  std::printf("%s\n", reporter.ToJson(2).c_str());
  if (!out_path.empty() && !smoke) {
    if (!reporter.WriteFile(out_path)) {
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace memtis

int main(int argc, char** argv) { return memtis::Main(argc, argv); }
