// Fig. 14: CXL-attached capacity tier (177 ns load, per Pond's +70-90 ns over
// local DRAM) — MEMTIS vs TPP across the three fast:capacity ratios.

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace memtis {
namespace {

int Main() {
  const std::vector<std::pair<std::string, double>> kRatios = {
      {"1:2", 1.0 / 3.0}, {"1:8", 1.0 / 9.0}, {"1:16", 1.0 / 17.0}};

  Table table("Fig. 14 — CXL capacity tier: MEMTIS vs TPP "
              "(normalized to all-CXL+THP)");
  table.SetHeader({"benchmark", "ratio", "tpp", "memtis", "memtis_vs_tpp"});
  std::vector<double> gains;
  for (const auto& benchmark : StandardBenchmarks()) {
    for (const auto& [ratio_name, ratio] : kRatios) {
      RunSpec spec;
      spec.benchmark = benchmark;
      spec.fast_ratio = ratio;
      spec.cxl = true;
      const RunOutput baseline = RunBaseline(spec);
      spec.system = "tpp";
      const double tpp = NormalizedPerf(RunOne(spec), baseline);
      spec.system = "memtis";
      const double memtis = NormalizedPerf(RunOne(spec), baseline);
      gains.push_back(memtis / tpp);
      table.AddRow({benchmark, ratio_name, Table::Num(tpp), Table::Num(memtis),
                    Table::Pct(memtis / tpp - 1.0)});
    }
  }
  table.Print();
  std::printf("\nGeomean MEMTIS-over-TPP gain on CXL: %+.1f%% (paper: up to "
              "+102.9%%, smaller than the NVM gaps because the tier latency gap "
              "shrinks — compare with fig05).\n",
              (GeoMean(gains) - 1.0) * 100.0);
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
