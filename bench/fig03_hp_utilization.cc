// Fig. 3: hotness vs huge-page utilisation for Liblinear and Silo.
//
// Runs each workload under MEMTIS (whose sampler maintains per-subpage
// counts, like the paper's PEBS traces) on an all-capacity-sized machine and
// reports the per-huge-page (utilisation, hotness) relationship: binned rows
// plus the Pearson correlation. Liblinear should correlate positively
// (Fig. 3a); Silo should concentrate at low utilisation regardless of
// hotness (Fig. 3b).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/memtis/memtis_policy.h"
#include "src/sim/engine.h"
#include "src/workloads/registry.h"

namespace memtis {
namespace {

int Main() {
  for (const char* benchmark : {"liblinear", "silo"}) {
    auto workload = MakeWorkload(benchmark, BenchFootprintScale());
    const uint64_t footprint = workload->footprint_bytes();
    // Splitting disabled: this analysis measures the huge pages themselves.
    MemtisConfig cfg = MemtisConfig::ScaledDefaults(footprint, footprint / 3);
    cfg.enable_split = false;
    cfg.enable_collapse = false;
    MemtisPolicy policy(cfg);
    EngineOptions opts;
    opts.max_accesses = DefaultAccesses(4'000'000);
    Engine engine(MakeNvmMachine(footprint / 3, footprint * 3 / 2), policy, opts);
    engine.Run(*workload);

    // Collect per-huge-page utilisation (subpages with sampled accesses) and
    // hotness (sample count).
    std::vector<double> utilization;
    std::vector<double> hotness;
    engine.mem().ForEachLivePage([&](PageIndex, PageInfo& page) {
      if (page.kind() != PageKind::kHuge || page.access_count() == 0) {
        return;
      }
      uint32_t used = 0;
      for (uint32_t c : page.huge->subpage_count) {
        used += c > 0 ? 1 : 0;
      }
      if (used == 0) {
        return;
      }
      utilization.push_back(static_cast<double>(used));
      hotness.push_back(static_cast<double>(page.access_count()));
    });

    Table table(std::string("Fig. 3 — hotness vs huge-page utilisation: ") + benchmark);
    table.SetHeader({"utilization(4K pages)", "huge_pages", "mean_hotness",
                     "max_hotness"});
    const std::vector<std::pair<uint32_t, uint32_t>> buckets = {
        {1, 32}, {33, 64}, {65, 128}, {129, 256}, {257, 384}, {385, 512}};
    for (const auto& [lo, hi] : buckets) {
      RunningStat stat;
      for (size_t i = 0; i < utilization.size(); ++i) {
        if (utilization[i] >= lo && utilization[i] <= hi) {
          stat.Add(hotness[i]);
        }
      }
      table.AddRow({std::to_string(lo) + "-" + std::to_string(hi),
                    std::to_string(stat.count()), Table::Num(stat.mean(), 1),
                    Table::Num(stat.count() == 0 ? 0.0 : stat.max(), 1)});
    }
    table.Print();
    std::printf("correlation(hotness, utilization) = %.3f over %zu huge pages\n",
                PearsonCorrelation(hotness, utilization), hotness.size());
  }
  std::printf("\nExpected shape (paper Fig. 3): positive correlation for Liblinear; "
              "Silo's huge pages sit at 5-15%% utilisation (26-77 of 512) at every "
              "hotness level.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
