// Shared runner for the figure/table reproduction benches.
//
// Environment knobs:
//   MEMTIS_BENCH_SCALE      multiplies the per-run access budget (default 1.0)
//   MEMTIS_BENCH_FOOTPRINT  multiplies workload footprints (default 0.25,
//                           i.e. ~40-64 MiB simulated footprints)

#ifndef MEMTIS_SIM_BENCH_BENCH_UTIL_H_
#define MEMTIS_SIM_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/memtis/memtis_policy.h"
#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/workloads/registry.h"

namespace memtis {

double BenchAccessScale();
double BenchFootprintScale();
uint64_t DefaultAccesses(uint64_t base = 3'000'000);
// Number of workload seeds averaged per cell (env MEMTIS_BENCH_SEEDS, def. 1).
int BenchSeeds();

struct RunSpec {
  std::string system;
  std::string benchmark;
  double fast_ratio = 1.0 / 3.0;  // fast tier as a fraction of the footprint
  uint64_t accesses = 0;          // 0 -> DefaultAccesses()
  bool cxl = false;
  bool cpu_contention = true;
  uint64_t snapshot_interval_ns = 0;
  uint64_t fast_bytes_override = 0;  // nonzero: fixed fast tier (Fig. 6)
  double footprint_scale = 0.0;      // 0 -> BenchFootprintScale()
  uint64_t seed_offset = 0;
  // Optional hook to tweak the MEMTIS config (sensitivity sweeps); applied
  // only when the system is a MEMTIS variant.
  MemtisConfig (*memtis_tweak)(MemtisConfig) = nullptr;
};

struct RunOutput {
  Metrics metrics;
  uint64_t footprint_bytes = 0;
  uint64_t fast_bytes = 0;
  // MEMTIS introspection (valid when the system is a MEMTIS variant).
  bool is_memtis = false;
  MemtisPolicy::Stats memtis_stats;
  double mean_ehr = 0.0;
  double sampler_cpu = 0.0;
  uint64_t pebs_load_period = 0;
  uint64_t pebs_store_period = 0;
  // HeMem introspection.
  uint64_t hemem_overalloc_bytes = 0;
};

RunOutput RunOne(const RunSpec& spec);

// runtime(baseline) / runtime(system): the paper's normalised performance.
inline double NormalizedPerf(const RunOutput& system, const RunOutput& baseline) {
  return baseline.metrics.EffectiveRuntimeNs() / system.metrics.EffectiveRuntimeNs();
}

// Baseline spec (all-capacity with THP) matching a system spec.
RunOutput RunBaseline(RunSpec spec);

}  // namespace memtis

#endif  // MEMTIS_SIM_BENCH_BENCH_UTIL_H_
