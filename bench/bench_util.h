// Shared runner glue for the figure/table reproduction benches.
//
// The heavy lifting lives in src/runner/ (JobSpec, RunJob, ThreadPool,
// sinks); this header keeps the benches' historical vocabulary — RunSpec,
// RunOutput, RunOne, RunBaseline — as thin aliases over the subsystem so
// every figure submits cells through the same machinery as memtis_run.
//
// Environment knobs (read by src/runner/sweep.cc):
//   MEMTIS_BENCH_SCALE      multiplies the per-run access budget (default 1.0)
//   MEMTIS_BENCH_FOOTPRINT  multiplies workload footprints (default 0.25,
//                           i.e. ~40-64 MiB simulated footprints)
//   MEMTIS_BENCH_SEEDS      workload seeds averaged per cell (default 1)
//   MEMTIS_RUNNER_THREADS   thread-pool size for parallel sweeps

#ifndef MEMTIS_SIM_BENCH_BENCH_UTIL_H_
#define MEMTIS_SIM_BENCH_BENCH_UTIL_H_

#include <utility>

#include "src/memtis/memtis_policy.h"
#include "src/memtis/policy_registry.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"
#include "src/sim/engine.h"
#include "src/workloads/registry.h"

namespace memtis {

// Historical names, kept so the figure sources read like the paper's tables.
using RunSpec = JobSpec;
using RunOutput = JobResult;

inline RunOutput RunOne(const RunSpec& spec) { return RunJob(spec); }

// Baseline spec (all-capacity with THP) matching a system spec.
inline RunOutput RunBaseline(RunSpec spec) {
  return RunJob(BaselineSpec(std::move(spec)));
}

// runtime(baseline) / runtime(system): the paper's normalised performance.
inline double NormalizedPerf(const RunOutput& system, const RunOutput& baseline) {
  return baseline.metrics.EffectiveRuntimeNs() / system.metrics.EffectiveRuntimeNs();
}

// The process-wide pool the benches share; sized by MEMTIS_RUNNER_THREADS /
// hardware_concurrency.
ThreadPool& BenchPool();

}  // namespace memtis

#endif  // MEMTIS_SIM_BENCH_BENCH_UTIL_H_
