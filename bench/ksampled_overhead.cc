// §6.3.5: ksampled overhead — CPU usage of the sampling daemon under the
// dynamic period controller, the periods it settles on, and the share of app
// slowdown attributable to it (paper: 2.016% of one CPU average, 3.0% max,
// 0.922% performance overhead).

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace memtis {
namespace {

int Main() {
  Table table("ksampled overhead (paper §6.3.5)");
  table.SetHeader({"benchmark", "cpu_usage(1 core)", "load_period", "store_period",
                   "perf_overhead"});
  RunningStat cpu;
  for (const auto& benchmark : StandardBenchmarks()) {
    RunSpec spec;
    spec.system = "memtis";
    spec.benchmark = benchmark;
    spec.fast_ratio = 1.0 / 3.0;
    spec.accesses = DefaultAccesses(4'000'000);
    const RunOutput out = RunOne(spec);
    cpu.Add(out.sampler_cpu);
    // Performance overhead: sampler busy time spread over the app's cores.
    const double overhead =
        static_cast<double>(out.metrics.cpu.busy(DaemonKind::kSampler)) /
        (static_cast<double>(out.metrics.app_ns) * out.metrics.cores);
    table.AddRow({benchmark, Table::Pct(out.sampler_cpu),
                  std::to_string(out.pebs_load_period),
                  std::to_string(out.pebs_store_period), Table::Pct(overhead, 2)});
  }
  table.Print();
  std::printf("\nAverage ksampled CPU usage: %.2f%% of one core (cap 3%%; paper "
              "average 2.016%%, max 3.0%%).\n",
              cpu.mean() * 100.0);
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
