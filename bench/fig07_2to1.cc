// Fig. 7: the 2:1 configuration (fast tier = 2/3 of RSS — Meta's production
// target, TPP's home turf) with all-DRAM references.

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace memtis {
namespace {

int Main() {
  Table table("Fig. 7 — 2:1 configuration (normalized to all-NVM+THP)");
  table.SetHeader({"benchmark", "all-DRAM+THP", "all-DRAM-noTHP", "tpp", "memtis"});
  for (const auto& benchmark : StandardBenchmarks()) {
    RunSpec spec;
    spec.benchmark = benchmark;
    spec.fast_ratio = 2.0 / 3.0;
    const RunOutput baseline = RunBaseline(spec);

    std::vector<std::string> row = {benchmark};
    for (const char* system :
         {"all-fast", "all-fast-nothp", "tpp", "memtis"}) {
      RunSpec run = spec;
      run.system = system;
      if (run.system.rfind("all-fast", 0) == 0) {
        // The all-DRAM references run on a machine whose DRAM holds the whole
        // footprint (the paper measures them on the unrestricted testbed).
        run.fast_ratio = 1.3;
      }
      row.push_back(Table::Num(NormalizedPerf(RunOne(run), baseline)));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 7): MEMTIS approaches the all-DRAM "
              "lines and beats TPP by 6.1-33.3%% when the sampled capacity "
              "exceeds the fast tier.\n");
  return 0;
}

}  // namespace
}  // namespace memtis

int main() { return memtis::Main(); }
