// Per-epoch observability: periodic snapshots of the simulation's counters.
//
// Where the timeline (Metrics::timeline) records what the paper's figures
// need, the epoch recorder captures the internal mechanics — migration flow by
// direction, split/collapse activity, sampler period adaptation, histogram
// shape, queue backlogs — at a fixed virtual-time cadence into a bounded ring
// buffer. Serialized through JsonWriter into memtis_run's --audit-json sink.

#ifndef MEMTIS_SIM_SRC_AUDIT_EPOCH_RECORDER_H_
#define MEMTIS_SIM_SRC_AUDIT_EPOCH_RECORDER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/memtis/histogram.h"
#include "src/sim/engine.h"

namespace memtis {

class JsonWriter;
class JsonValue;
class StateWriter;
class StateReader;

// One epoch's worth of telemetry. Event counters are deltas over the epoch;
// occupancy, periods, thresholds, bins, and backlogs are sampled at its end.
struct EpochSample {
  uint64_t epoch = 0;  // 0-based, monotonically increasing even after wrap
  uint64_t t_ns = 0;   // virtual time at the end of the epoch

  // Deltas since the previous sample.
  uint64_t accesses = 0;
  uint64_t promoted_4k = 0;
  uint64_t demoted_4k = 0;
  uint64_t splits = 0;
  uint64_t collapses = 0;
  uint64_t demand_faults = 0;
  uint64_t shootdowns = 0;
  uint64_t samples = 0;
  uint64_t period_raises = 0;
  uint64_t period_drops = 0;

  // Instantaneous state.
  uint64_t fast_used_pages = 0;
  uint64_t rss_pages = 0;

  // Per-tenant fast-tier occupancy (index = TenantId), the fairness report's
  // occupancy timeline. Recorded — and serialized — only when the run
  // registered tenants beyond the default, so legacy documents are unchanged.
  std::vector<uint64_t> tenant_fast_pages;

  // MEMTIS-specific state (zero / -1 when the policy is not MEMTIS).
  bool memtis = false;
  uint64_t load_period = 0;
  uint64_t store_period = 0;
  int hot_bin = -1;
  int warm_bin = -1;
  int cold_bin = -1;
  std::array<uint64_t, AccessHistogram::kBins> hist_bins{};
  uint64_t promotion_backlog = 0;
  uint64_t demotion_backlog = 0;
  uint64_t split_backlog = 0;

  void WriteJson(JsonWriter& w) const;

  // Inverse of WriteJson (the MEMTIS block is only present when `memtis`),
  // for the runner's result codec. Returns false when `v` is not an object.
  static bool FromJson(const JsonValue& v, EpochSample* out);
};

// EngineObserver that emits an EpochSample every `interval_ns` of virtual time
// (checked at tick granularity) and once at run end, into a ring buffer of
// `capacity` samples — old epochs are overwritten, never reallocated, so a
// long run records bounded state.
class EpochRecorder : public EngineObserver {
 public:
  struct Options {
    uint64_t interval_ns = 1'000'000;  // virtual time per epoch
    uint64_t capacity = 4096;          // ring-buffer slots
  };

  EpochRecorder();
  explicit EpochRecorder(const Options& options);

  void OnTick(Engine& engine) override;
  void OnRunEnd(Engine& engine) override;

  // Recorded samples in chronological order (at most `capacity`; the oldest
  // are dropped once the ring wraps).
  std::vector<EpochSample> samples() const;

  uint64_t recorded_total() const { return recorded_total_; }
  uint64_t dropped() const {
    return recorded_total_ > ring_.size() ? recorded_total_ - ring_.size() : 0;
  }
  const Options& options() const { return options_; }

  // {"interval_ns":..., "recorded_total":..., "dropped":..., "samples":[...]}
  void WriteJson(JsonWriter& w) const;

  // Checkpointing: ring slots (raw index order, via the EpochSample JSON
  // codec), total count, and the epoch schedule/delta baselines.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  void Record(Engine& engine);

  struct BaseCounters {
    uint64_t accesses = 0;
    uint64_t promoted_4k = 0;
    uint64_t demoted_4k = 0;
    uint64_t splits = 0;
    uint64_t collapses = 0;
    uint64_t demand_faults = 0;
    uint64_t shootdowns = 0;
    uint64_t samples = 0;
    uint64_t period_raises = 0;
    uint64_t period_drops = 0;
  };

  Options options_;
  std::vector<EpochSample> ring_;
  uint64_t recorded_total_ = 0;
  uint64_t next_epoch_ns_;
  BaseCounters prev_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_AUDIT_EPOCH_RECORDER_H_
