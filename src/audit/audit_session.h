// AuditSession: the invariant auditor and the epoch recorder behind one
// EngineObserver, plus the MEMTIS_AUDIT environment hook that lets any
// RunJob-based entry point (memtis_run, runner tests, figure benches) opt the
// whole process into every-tick auditing without code changes.

#ifndef MEMTIS_SIM_SRC_AUDIT_AUDIT_SESSION_H_
#define MEMTIS_SIM_SRC_AUDIT_AUDIT_SESSION_H_

#include <memory>
#include <optional>

#include "src/audit/audit.h"
#include "src/audit/epoch_recorder.h"

namespace memtis {

struct AuditSessionOptions {
  InvariantAuditor::Options invariants;
  // When true, also record per-epoch telemetry (the --audit-json payload).
  bool record_epochs = true;
  EpochRecorder::Options epochs;
};

class AuditSession : public EngineObserver {
 public:
  explicit AuditSession(const AuditSessionOptions& options = {});

  void OnTick(Engine& engine) override;
  void OnRunEnd(Engine& engine) override;

  InvariantAuditor& auditor() { return auditor_; }
  const AuditReport& report() const { return auditor_.report(); }
  // nullptr when epoch recording is disabled.
  const EpochRecorder* recorder() const {
    return recorder_.has_value() ? &*recorder_ : nullptr;
  }

  // {"report": {...}, "epochs": {...}?}
  void WriteJson(JsonWriter& w) const;

  // Checkpointing: auditor + (optional) recorder state. LoadState requires a
  // session constructed with the same options (recorder presence must match).
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  InvariantAuditor auditor_;
  std::optional<EpochRecorder> recorder_;
};

// Returns true when the MEMTIS_AUDIT environment variable requests auditing
// (set and not "0"). Used by scripts/check.sh's second ctest pass.
bool EnvAuditEnabled();

// Environment hook: a fresh abort-on-violation, every-tick AuditSession when
// EnvAuditEnabled(), nullptr otherwise. One session per engine — callers
// running engines in parallel get independent instances.
std::unique_ptr<AuditSession> MakeEnvAuditSession();

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_AUDIT_AUDIT_SESSION_H_
