// Runtime invariant auditing for the simulator.
//
// The simulator maintains several redundant views of the same state (buddy
// free lists vs. page-table mappings, incremental histograms vs. per-page
// counters, token-bucket balances vs. consumption ledgers). Each redundancy is
// an invariant this layer certifies: the component-level Check* functions
// recompute one side from first principles and compare, and InvariantAuditor
// runs them from the engine's observation hook — every daemon tick under
// MEMTIS_AUDIT / --audit, and always at run end.
//
// All checks are strictly observation-only: they never allocate, migrate, or
// refill, so an audited run is bit-for-bit identical to an unaudited one
// (tests/differential_test.cc holds this to byte-identical metrics JSON).

#ifndef MEMTIS_SIM_SRC_AUDIT_AUDIT_H_
#define MEMTIS_SIM_SRC_AUDIT_AUDIT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/mem/memory_system.h"
#include "src/mem/tlb.h"
#include "src/sim/engine.h"
#include "src/sim/migration_budget.h"

namespace memtis {

class JsonWriter;
class JsonValue;
class MemtisPolicy;

// One failed invariant, with the virtual-time context it fired in.
struct AuditViolation {
  std::string invariant;  // e.g. "frame-conservation"
  std::string detail;     // human-readable mismatch description
  uint64_t t_ns = 0;      // virtual time of the audit point
  uint64_t tick = 0;      // engine tick count at the audit point (0 = pre-tick)
};

// Aggregate outcome of a run's audits.
struct AuditReport {
  uint64_t ticks_audited = 0;
  uint64_t checks_run = 0;
  uint64_t violations_total = 0;
  // First `max_recorded` violations (the total keeps counting past the cap).
  std::vector<AuditViolation> violations;

  bool ok() const { return violations_total == 0; }

  void WriteJson(JsonWriter& w) const;
  std::string ToJson(int indent = 0) const;

  // Inverse of WriteJson, used by the runner's result codec so supervised
  // children can stream audit outcomes back over the pipe and --resume can
  // reload them. Returns false when `v` is not a JSON object.
  static bool FromJson(const JsonValue& v, AuditReport* out);
};

// Sink the Check* functions report into. Carries the virtual-time context and
// either collects violations into an AuditReport or aborts on the first one
// (CHECK-style, used under MEMTIS_AUDIT so any test run fails loudly).
class AuditCollector {
 public:
  explicit AuditCollector(AuditReport* report, bool abort_on_violation = false,
                          uint64_t max_recorded = 64)
      : report_(report),
        abort_on_violation_(abort_on_violation),
        max_recorded_(max_recorded) {}

  void SetContext(uint64_t t_ns, uint64_t tick) {
    t_ns_ = t_ns;
    tick_ = tick;
  }
  uint64_t t_ns() const { return t_ns_; }
  uint64_t tick() const { return tick_; }

  // Called once per invariant evaluation (for the report's checks_run).
  void BeginCheck() { ++report_->checks_run; }

  // Reports one violation of `invariant`.
  void Fail(std::string_view invariant, std::string detail);

  const AuditReport& report() const { return *report_; }

 private:
  AuditReport* report_;
  bool abort_on_violation_;
  uint64_t max_recorded_;
  uint64_t t_ns_ = 0;
  uint64_t tick_ = 0;
};

// --- Component-level invariant checks ----------------------------------------
//
// Each recomputes ground truth from one structure and cross-checks another.
// They take components (not an Engine), so unit and fuzz tests can audit a
// bare MemorySystem or policy without building a full simulation.

// Frame conservation: per tier, the 4 KiB pages mapped by live page metadata
// plus the frames pinned by start-up fragmentation equal the buddy allocator's
// used-frame count, used + free frames equal the tier's capacity, and the
// buddy free lists themselves are internally consistent.
void CheckFrameConservation(const MemorySystem& mem, AuditCollector& out);

// Page-table mapping: page table, live-page metadata, and allocator state
// agree (every live page's vpns map back to it, counts match, frames are in
// the allocated state).
void CheckPageTableMapping(MemorySystem& mem, AuditCollector& out);

// Huge/base page accounting: huge pages carry subpage metadata with a
// huge-aligned base vpn (base pages carry none); per-subpage sample counters
// never exceed the page counter (cooling floors preserve the direction); the
// nonzero-subpage summary the cooling scan-skip relies on matches a recount;
// and split-generated demand faults never outnumber split-freed subpages.
void CheckHugePageAccounting(MemorySystem& mem, AuditCollector& out);

// Incremental counters: the O(1) metric counters (live huge pages, written
// subpages, bloat, per-tier mapped-4k) match from-scratch recounts over the
// live page metadata, and the HugePageMeta pool conserves its buffers
// (allocated == pooled + live huge pages). These counters replaced the old
// full-scan metrics, so this check is what keeps the fast path honest.
void CheckIncrementalCounters(const MemorySystem& mem, AuditCollector& out);

// TLB coherence: every valid TLB entry translates a currently mapped vpn of
// the matching page kind (migrations, splits, collapses, and unmaps must have
// shot down every stale entry).
void CheckTlbCoherence(const Tlb& tlb, const MemorySystem& mem,
                       AuditCollector& out);

// Migration-budget ledger: starting burst + credited refills - consumed
// tokens equals the current balance, which never exceeds the burst.
void CheckMigrationLedger(const MigrationBudget& budget, AuditCollector& out);

// Exchange accounting: every injected exchange-abort rolled back exactly one
// ExchangePages call (the memory system's aborted_exchanges tracks the
// injector 1:1) and the exchange counters are internally consistent
// (huge-page exchanges never exceed the total). Frame conservation and TLB
// coherence across the swap itself are certified by the checks above — an
// exchange that leaked a frame or left a stale translation trips them.
void CheckExchangeAccounting(const MemorySystem& mem, const FaultStats& faults,
                             AuditCollector& out);

// MEMTIS sample ledger: the policy processed exactly as many samples as the
// sampler produced, and the sampler's modelled CPU time is exactly
// samples x sample_cost.
void CheckMemtisSampleLedger(const MemtisPolicy& policy, AuditCollector& out);

// MEMTIS histogram mass (cheap): both histograms' total mass equals the
// number of mapped 4 KiB pages.
void CheckMemtisHistogramMass(const MemtisPolicy& policy,
                              const MemorySystem& mem, AuditCollector& out);

// MEMTIS histogram recompute (expensive, O(pages x subpages)): rebuilds both
// histograms from per-page counters and compares every bin and cached bin.
void CheckMemtisHistogramsFull(const MemtisPolicy& policy, MemorySystem& mem,
                               AuditCollector& out);

// Tenant conservation: every tenant's per-tier page counters match a
// from-scratch recount over page ownership, the per-tenant counters sum back
// to the global per-tier counters, fast usage never exceeds
// max(quota, borrow window), and each armed promotion bucket's ledger balances
// (burst + credited - consumed == tokens <= burst).
void CheckTenantConservation(MemorySystem& mem, AuditCollector& out);

// MEMTIS per-tenant histogram mass: the per-tenant page histograms partition
// the global one — each tenant's mass equals its mapped 4 KiB pages and the
// slices sum to the global histogram's total.
void CheckMemtisTenantHistograms(const MemtisPolicy& policy,
                                 const MemorySystem& mem, AuditCollector& out);

// --- Engine-driven auditor ----------------------------------------------------

// EngineObserver that runs a registered set of invariant checks at daemon-tick
// granularity and at run end. The default registration covers every check
// above (MEMTIS-specific ones fire only when the engine's policy is a
// MemtisPolicy) plus the engine-level TLB access ledger
// (hits + misses == accesses). Additional invariants can be registered with
// RegisterCheck (see README "Auditing and epoch telemetry").
class InvariantAuditor : public EngineObserver {
 public:
  struct Options {
    // Audit at tick granularity (false: only at run end).
    bool every_tick = true;
    // Audit every Nth tick (1 = every tick).
    uint64_t tick_stride = 1;
    // Run expensive checks every Nth audited tick (they always run at run
    // end); 0 disables them at ticks.
    uint64_t expensive_stride = 16;
    // Abort the process on the first violation (CHECK-style) instead of
    // collecting it.
    bool abort_on_violation = false;
    // Cap on violations recorded in the report (the total keeps counting).
    uint64_t max_recorded_violations = 64;
  };

  using CheckFn = std::function<void(Engine&, AuditCollector&)>;

  InvariantAuditor();
  explicit InvariantAuditor(const Options& options);

  // Adds an invariant. `expensive` checks run on the expensive_stride only.
  void RegisterCheck(std::string name, bool expensive, CheckFn fn);

  void OnTick(Engine& engine) override;
  void OnRunEnd(Engine& engine) override;

  // Runs all registered checks once at the engine's current state.
  void AuditNow(Engine& engine, bool include_expensive);

  const AuditReport& report() const { return report_; }
  uint64_t ticks_seen() const { return ticks_seen_; }

  // Checkpointing: the report (lossless JSON codec) plus the tick/audit
  // counters, so a restored run's audit document matches the uninterrupted
  // one byte for byte. Registered checks are reconstructed by construction.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  struct Check {
    std::string name;
    bool expensive = false;
    CheckFn fn;
  };

  void RegisterDefaultChecks();

  Options options_;
  AuditReport report_;
  AuditCollector collector_;
  std::vector<Check> checks_;
  uint64_t ticks_seen_ = 0;
  uint64_t audits_run_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_AUDIT_AUDIT_H_
