#include "src/audit/audit.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/common/json.h"
#include "src/common/json_parse.h"
#include "src/memtis/memtis_policy.h"
#include "src/snapshot/serializer.h"

namespace memtis {

// --- AuditReport --------------------------------------------------------------

void AuditReport::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Field("ok", ok());
  w.Field("ticks_audited", ticks_audited);
  w.Field("checks_run", checks_run);
  w.Field("violations_total", violations_total);
  w.Key("violations");
  w.BeginArray();
  for (const AuditViolation& v : violations) {
    w.BeginObject();
    w.Field("invariant", v.invariant);
    w.Field("detail", v.detail);
    w.Field("t_ns", v.t_ns);
    w.Field("tick", v.tick);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string AuditReport::ToJson(int indent) const {
  std::string out;
  JsonWriter w(&out, indent);
  WriteJson(w);
  return out;
}

bool AuditReport::FromJson(const JsonValue& v, AuditReport* out) {
  if (!v.is_object()) {
    return false;
  }
  *out = AuditReport();
  out->ticks_audited = v.GetUint("ticks_audited");
  out->checks_run = v.GetUint("checks_run");
  out->violations_total = v.GetUint("violations_total");
  if (const JsonValue* violations = v.Find("violations");
      violations != nullptr) {
    out->violations.reserve(violations->size());
    for (size_t i = 0; i < violations->size(); ++i) {
      const JsonValue& entry = violations->at(i);
      out->violations.push_back(AuditViolation{
          entry.GetString("invariant"), entry.GetString("detail"),
          entry.GetUint("t_ns"), entry.GetUint("tick")});
    }
  }
  return true;
}

// --- AuditCollector -----------------------------------------------------------

void AuditCollector::Fail(std::string_view invariant, std::string detail) {
  if (abort_on_violation_) {
    std::fprintf(stderr,
                 "AUDIT VIOLATION [%.*s] at t=%" PRIu64 " ns tick=%" PRIu64
                 ": %s\n",
                 static_cast<int>(invariant.size()), invariant.data(), t_ns_,
                 tick_, detail.c_str());
    std::abort();
  }
  ++report_->violations_total;
  if (report_->violations.size() < max_recorded_) {
    report_->violations.push_back(AuditViolation{
        std::string(invariant), std::move(detail), t_ns_, tick_});
  }
}

// --- Component checks ---------------------------------------------------------

namespace {

const char* TierName(TierId id) {
  return id == TierId::kFast ? "fast" : "capacity";
}

}  // namespace

void CheckFrameConservation(const MemorySystem& mem, AuditCollector& out) {
  uint64_t recounted_total = 0;
  for (int t = 0; t < kNumTiers; ++t) {
    const TierId id = static_cast<TierId>(t);
    const MemoryTier& tier = mem.tier(id);
    out.BeginCheck();
    std::string err;
    if (!tier.allocator().CheckConsistency(&err)) {
      out.Fail("frame-conservation",
               std::string(TierName(id)) + " tier buddy allocator: " + err);
    }
    if (tier.used_frames() + tier.free_frames() != tier.total_frames()) {
      out.Fail("frame-conservation",
               std::string(TierName(id)) + " tier: used " +
                   std::to_string(tier.used_frames()) + " + free " +
                   std::to_string(tier.free_frames()) + " != capacity " +
                   std::to_string(tier.total_frames()));
    }
    const uint64_t recounted = mem.RecountMapped4kInTier(id);
    recounted_total += recounted;
    if (recounted + mem.pinned_frames(id) != tier.used_frames()) {
      out.Fail("frame-conservation",
               std::string(TierName(id)) + " tier: " +
                   std::to_string(recounted) + " mapped 4k pages + " +
                   std::to_string(mem.pinned_frames(id)) +
                   " pinned frames != " + std::to_string(tier.used_frames()) +
                   " used frames");
    }
  }
  out.BeginCheck();
  if (recounted_total != mem.mapped_4k_pages()) {
    out.Fail("frame-conservation",
             "mapped_4k counter " + std::to_string(mem.mapped_4k_pages()) +
                 " != per-tier recount " + std::to_string(recounted_total));
  }
}

void CheckPageTableMapping(MemorySystem& mem, AuditCollector& out) {
  out.BeginCheck();
  std::string err;
  if (!mem.CheckConsistency(&err)) {
    out.Fail("page-table-mapping", err);
  }
}

void CheckHugePageAccounting(MemorySystem& mem, AuditCollector& out) {
  out.BeginCheck();
  uint64_t failures = 0;
  mem.ForEachLivePage([&](PageIndex index, PageInfo& page) {
    if (failures >= 4) {
      return;  // one audit point reports at most a few pages
    }
    if (page.kind() == PageKind::kHuge) {
      if (page.huge == nullptr) {
        ++failures;
        out.Fail("huge-page-accounting",
                 "huge page " + std::to_string(index) + " has no subpage metadata");
        return;
      }
      if (page.base_vpn % kSubpagesPerHuge != 0) {
        ++failures;
        out.Fail("huge-page-accounting",
                 "huge page " + std::to_string(index) + " at unaligned vpn " +
                     std::to_string(page.base_vpn));
      }
      uint64_t subpage_sum = 0;
      for (uint32_t c : page.huge->subpage_count) {
        subpage_sum += c;
      }
      if (subpage_sum > page.access_count()) {
        ++failures;
        out.Fail("huge-page-accounting",
                 "huge page " + std::to_string(index) + ": subpage counters sum " +
                     std::to_string(subpage_sum) + " > page counter " +
                     std::to_string(page.access_count()));
      }
      const uint32_t nonzero = page.huge->RecountNonzeroSubpages();
      if (nonzero != page.huge->nonzero_subpages) {
        ++failures;
        out.Fail("huge-page-accounting",
                 "huge page " + std::to_string(index) +
                     ": nonzero-subpage summary " +
                     std::to_string(page.huge->nonzero_subpages) +
                     " != recount " + std::to_string(nonzero) +
                     " (the cooling scan-skip relies on this)");
      }
    } else if (page.huge != nullptr) {
      ++failures;
      out.Fail("huge-page-accounting",
               "base page " + std::to_string(index) + " carries huge metadata");
    }
  });
  out.BeginCheck();
  const MigrationStats& ms = mem.migration_stats();
  if (ms.demand_faults > ms.freed_zero_subpages) {
    out.Fail("huge-page-accounting",
             std::to_string(ms.demand_faults) + " demand faults > " +
                 std::to_string(ms.freed_zero_subpages) +
                 " split-freed subpages");
  }
}

void CheckIncrementalCounters(const MemorySystem& mem, AuditCollector& out) {
  out.BeginCheck();
  const uint64_t huge = mem.RecountLiveHugePages();
  if (huge != mem.live_huge_pages()) {
    out.Fail("incremental-counters",
             "live huge-page counter " + std::to_string(mem.live_huge_pages()) +
                 " != recount " + std::to_string(huge));
  }
  const uint64_t written = mem.RecountWrittenSubpages();
  if (written != mem.written_subpages()) {
    out.Fail("incremental-counters",
             "written-subpage counter " + std::to_string(mem.written_subpages()) +
                 " != recount " + std::to_string(written));
  }
  if (mem.bloat_pages() != mem.RecountBloatPages()) {
    out.Fail("incremental-counters",
             "bloat_pages() " + std::to_string(mem.bloat_pages()) +
                 " != recount " + std::to_string(mem.RecountBloatPages()));
  }
  for (int t = 0; t < kNumTiers; ++t) {
    const TierId id = static_cast<TierId>(t);
    const uint64_t recounted = mem.RecountMapped4kInTier(id);
    if (recounted != mem.mapped_4k_in_tier(id)) {
      out.Fail("incremental-counters",
               std::string(TierName(id)) + " tier mapped-4k counter " +
                   std::to_string(mem.mapped_4k_in_tier(id)) + " != recount " +
                   std::to_string(recounted));
    }
  }
  if (mem.huge_meta_allocated() != mem.huge_meta_pooled() + mem.live_huge_pages()) {
    out.Fail("incremental-counters",
             "huge-meta pool conservation: " +
                 std::to_string(mem.huge_meta_allocated()) + " allocated != " +
                 std::to_string(mem.huge_meta_pooled()) + " pooled + " +
                 std::to_string(mem.live_huge_pages()) + " live huge pages");
  }
}

void CheckTlbCoherence(const Tlb& tlb, const MemorySystem& mem,
                       AuditCollector& out) {
  out.BeginCheck();
  uint64_t entries = 0;
  uint64_t failures = 0;
  tlb.ForEachValidEntry([&](Vpn vpn, PageKind kind) {
    ++entries;
    if (failures >= 4) {
      return;
    }
    const char* kind_name = kind == PageKind::kHuge ? "huge" : "base";
    const PageIndex index = mem.Lookup(vpn);
    if (index == kInvalidPage) {
      ++failures;
      out.Fail("tlb-coherence", std::string("stale ") + kind_name +
                                    " entry for unmapped vpn " +
                                    std::to_string(vpn));
      return;
    }
    const PageInfo& page = mem.page(index);
    if (page.kind() != kind) {
      ++failures;
      out.Fail("tlb-coherence", std::string(kind_name) + " entry for vpn " +
                                    std::to_string(vpn) +
                                    " maps a page of the other kind");
      return;
    }
    if (kind == PageKind::kHuge && page.base_vpn != vpn) {
      ++failures;
      out.Fail("tlb-coherence",
               "huge entry vpn " + std::to_string(vpn) +
                   " resolves to page based at vpn " +
                   std::to_string(page.base_vpn));
    }
  });
  if (entries > tlb.base_capacity() + tlb.huge_capacity()) {
    out.Fail("tlb-coherence",
             std::to_string(entries) + " valid entries exceed capacity " +
                 std::to_string(tlb.base_capacity() + tlb.huge_capacity()));
  }
}

void CheckMigrationLedger(const MigrationBudget& budget, AuditCollector& out) {
  out.BeginCheck();
  // Unsigned arithmetic: a faulty ledger still mismatches (mod 2^64).
  const uint64_t expected =
      budget.burst() + budget.credited_pages() - budget.consumed_pages();
  if (budget.tokens_raw() != expected) {
    out.Fail("migration-budget-ledger",
             "balance " + std::to_string(budget.tokens_raw()) +
                 " != burst " + std::to_string(budget.burst()) + " + credited " +
                 std::to_string(budget.credited_pages()) + " - consumed " +
                 std::to_string(budget.consumed_pages()));
  }
  if (budget.tokens_raw() > budget.burst()) {
    out.Fail("migration-budget-ledger",
             "balance " + std::to_string(budget.tokens_raw()) +
                 " exceeds burst capacity " + std::to_string(budget.burst()));
  }
}

void CheckExchangeAccounting(const MemorySystem& mem, const FaultStats& faults,
                             AuditCollector& out) {
  out.BeginCheck();
  const MigrationStats& m = mem.migration_stats();
  if (m.exchanged_huge > m.exchanges) {
    out.Fail("exchange-accounting",
             std::to_string(m.exchanged_huge) + " huge exchanges exceed " +
                 std::to_string(m.exchanges) + " total exchanges");
  }
  const uint64_t injected = faults.by(FaultSite::kExchangeAbort);
  if (injected != m.aborted_exchanges) {
    out.Fail("exchange-accounting",
             std::to_string(injected) + " injected exchange-aborts != " +
                 std::to_string(m.aborted_exchanges) + " aborted exchanges");
  }
}

void CheckMemtisSampleLedger(const MemtisPolicy& policy, AuditCollector& out) {
  out.BeginCheck();
  const PebsSampler& sampler = policy.sampler();
  const uint64_t produced = sampler.stats().total_samples();
  if (policy.samples_processed() != produced) {
    out.Fail("memtis-sample-ledger",
             "policy processed " + std::to_string(policy.samples_processed()) +
                 " samples but the sampler produced " + std::to_string(produced));
  }
  const uint64_t expected_busy = produced * sampler.config().sample_cost_ns;
  if (sampler.busy_ns() != expected_busy) {
    out.Fail("memtis-sample-ledger",
             "sampler busy time " + std::to_string(sampler.busy_ns()) +
                 " ns != " + std::to_string(produced) + " samples x " +
                 std::to_string(sampler.config().sample_cost_ns) + " ns");
  }
}

void CheckMemtisHistogramMass(const MemtisPolicy& policy,
                              const MemorySystem& mem, AuditCollector& out) {
  out.BeginCheck();
  const uint64_t mapped = mem.mapped_4k_pages();
  if (policy.page_histogram().total() != mapped) {
    out.Fail("memtis-histogram-mass",
             "page histogram mass " +
                 std::to_string(policy.page_histogram().total()) + " != " +
                 std::to_string(mapped) + " mapped 4k pages");
  }
  if (policy.base_histogram().total() != mapped) {
    out.Fail("memtis-histogram-mass",
             "base histogram mass " +
                 std::to_string(policy.base_histogram().total()) + " != " +
                 std::to_string(mapped) + " mapped 4k pages");
  }
}

void CheckMemtisHistogramsFull(const MemtisPolicy& policy, MemorySystem& mem,
                               AuditCollector& out) {
  out.BeginCheck();
  std::string err;
  if (!policy.ValidateHistograms(mem, &err)) {
    out.Fail("memtis-histogram-full", err);
  }
}

void CheckTenantConservation(MemorySystem& mem, AuditCollector& out) {
  out.BeginCheck();
  // Single pass over live pages; per-tenant RecountTenantMapped4k would be
  // O(pages x tenants).
  const TenantId count = mem.tenant_count();
  std::vector<uint64_t> recount(static_cast<size_t>(count) * kNumTiers, 0);
  bool unknown_owner = false;
  mem.ForEachLivePage([&](PageIndex index, PageInfo& p) {
    if (p.tenant >= count) {
      out.Fail("tenant-conservation",
               "page " + std::to_string(index) + " owned by unregistered tenant " +
                   std::to_string(p.tenant));
      unknown_owner = true;
      return;
    }
    recount[p.tenant * kNumTiers + static_cast<int>(p.tier())] += p.size_pages();
  });
  if (unknown_owner) {
    return;
  }
  uint64_t sum_tier[kNumTiers] = {0, 0};
  for (TenantId id = 0; id < count; ++id) {
    const TenantFrameStats& t = mem.tenant_stats(id);
    for (int tier = 0; tier < kNumTiers; ++tier) {
      sum_tier[tier] += t.mapped_4k_tier[tier];
      if (recount[id * kNumTiers + tier] != t.mapped_4k_tier[tier]) {
        out.Fail("tenant-conservation",
                 "tenant " + std::to_string(id) + " tier " + std::to_string(tier) +
                     " counter " + std::to_string(t.mapped_4k_tier[tier]) +
                     " != recount " + std::to_string(recount[id * kNumTiers + tier]));
      }
    }
    if (t.fast_pages() > t.effective_fast_limit()) {
      out.Fail("tenant-conservation",
               "tenant " + std::to_string(id) + " fast usage " +
                   std::to_string(t.fast_pages()) + " exceeds limit " +
                   std::to_string(t.effective_fast_limit()) + " (quota " +
                   std::to_string(t.quota_frames) + ", borrow " +
                   std::to_string(t.borrow_frames) + ")");
    }
    if (t.budget.active) {
      if (t.budget.burst + t.budget.credited_pages - t.budget.consumed_pages !=
              t.budget.tokens ||
          t.budget.tokens > t.budget.burst) {
        out.Fail("tenant-conservation",
                 "tenant " + std::to_string(id) + " promotion-budget ledger: burst " +
                     std::to_string(t.budget.burst) + " + credited " +
                     std::to_string(t.budget.credited_pages) + " - consumed " +
                     std::to_string(t.budget.consumed_pages) + " != tokens " +
                     std::to_string(t.budget.tokens));
      }
    }
  }
  for (int tier = 0; tier < kNumTiers; ++tier) {
    if (sum_tier[tier] != mem.mapped_4k_in_tier(static_cast<TierId>(tier))) {
      out.Fail("tenant-conservation",
               "per-tenant mapped 4k in tier " + std::to_string(tier) +
                   " sums to " + std::to_string(sum_tier[tier]) + " != global " +
                   std::to_string(mem.mapped_4k_in_tier(static_cast<TierId>(tier))));
    }
  }
}

void CheckMemtisTenantHistograms(const MemtisPolicy& policy,
                                 const MemorySystem& mem, AuditCollector& out) {
  out.BeginCheck();
  const auto& hists = policy.tenant_histograms();
  uint64_t slice_sum = 0;
  for (size_t id = 0; id < hists.size(); ++id) {
    const uint64_t mass = hists[id].total();
    slice_sum += mass;
    const uint64_t mapped =
        id < mem.tenant_count()
            ? mem.tenant_mapped_4k(static_cast<TenantId>(id), TierId::kFast) +
                  mem.tenant_mapped_4k(static_cast<TenantId>(id), TierId::kCapacity)
            : 0;
    if (mass != mapped) {
      out.Fail("memtis-tenant-histograms",
               "tenant " + std::to_string(id) + " histogram mass " +
                   std::to_string(mass) + " != " + std::to_string(mapped) +
                   " mapped 4k pages");
    }
  }
  if (slice_sum != policy.page_histogram().total()) {
    out.Fail("memtis-tenant-histograms",
             "tenant histogram slices sum to " + std::to_string(slice_sum) +
                 " != global page histogram mass " +
                 std::to_string(policy.page_histogram().total()));
  }
}

// --- InvariantAuditor ---------------------------------------------------------

InvariantAuditor::InvariantAuditor() : InvariantAuditor(Options()) {}

InvariantAuditor::InvariantAuditor(const Options& options)
    : options_(options),
      collector_(&report_, options.abort_on_violation,
                 options.max_recorded_violations) {
  RegisterDefaultChecks();
}

void InvariantAuditor::RegisterCheck(std::string name, bool expensive,
                                     CheckFn fn) {
  checks_.push_back(Check{std::move(name), expensive, std::move(fn)});
}

void InvariantAuditor::RegisterDefaultChecks() {
  RegisterCheck("frame-conservation", false, [](Engine& e, AuditCollector& out) {
    CheckFrameConservation(e.mem(), out);
  });
  RegisterCheck("page-table-mapping", false, [](Engine& e, AuditCollector& out) {
    CheckPageTableMapping(e.mem(), out);
  });
  RegisterCheck("huge-page-accounting", false,
                [](Engine& e, AuditCollector& out) {
                  CheckHugePageAccounting(e.mem(), out);
                });
  RegisterCheck("incremental-counters", false,
                [](Engine& e, AuditCollector& out) {
                  CheckIncrementalCounters(e.mem(), out);
                });
  RegisterCheck("tlb-coherence", false, [](Engine& e, AuditCollector& out) {
    CheckTlbCoherence(e.tlb(), e.mem(), out);
  });
  RegisterCheck("tlb-access-ledger", false, [](Engine& e, AuditCollector& out) {
    out.BeginCheck();
    const TlbStats& stats = e.tlb().stats();
    if (stats.hits() + stats.misses() != e.accesses()) {
      out.Fail("tlb-access-ledger",
               std::to_string(stats.hits()) + " hits + " +
                   std::to_string(stats.misses()) + " misses != " +
                   std::to_string(e.accesses()) + " accesses");
    }
  });
  RegisterCheck("migration-budget-ledger", false,
                [](Engine& e, AuditCollector& out) {
                  CheckMigrationLedger(e.ctx().migration_budget, out);
                });
  RegisterCheck("fault-accounting", false, [](Engine& e, AuditCollector& out) {
    // Every injected migrate-abort rolled back exactly one Migrate call, so
    // the memory system's abort counter must track the injector's 1:1.
    out.BeginCheck();
    const uint64_t injected = e.faults().stats().by(FaultSite::kMigrateAbort);
    const uint64_t aborted = e.mem().migration_stats().aborted_migrations;
    if (injected != aborted) {
      out.Fail("fault-accounting",
               std::to_string(injected) + " injected migrate-aborts != " +
                   std::to_string(aborted) + " aborted migrations");
    }
  });
  RegisterCheck("exchange-accounting", false, [](Engine& e, AuditCollector& out) {
    CheckExchangeAccounting(e.mem(), e.faults().stats(), out);
  });
  RegisterCheck("tenant-conservation", false, [](Engine& e, AuditCollector& out) {
    CheckTenantConservation(e.mem(), out);
  });
  RegisterCheck("memtis-sample-ledger", false,
                [](Engine& e, AuditCollector& out) {
                  const auto* p = dynamic_cast<MemtisPolicy*>(&e.policy());
                  if (p != nullptr) {
                    CheckMemtisSampleLedger(*p, out);
                  }
                });
  RegisterCheck("memtis-histogram-mass", false,
                [](Engine& e, AuditCollector& out) {
                  const auto* p = dynamic_cast<MemtisPolicy*>(&e.policy());
                  if (p != nullptr) {
                    CheckMemtisHistogramMass(*p, e.mem(), out);
                  }
                });
  RegisterCheck("memtis-tenant-histograms", false,
                [](Engine& e, AuditCollector& out) {
                  const auto* p = dynamic_cast<MemtisPolicy*>(&e.policy());
                  if (p != nullptr) {
                    CheckMemtisTenantHistograms(*p, e.mem(), out);
                  }
                });
  RegisterCheck("memtis-histogram-full", true,
                [](Engine& e, AuditCollector& out) {
                  const auto* p = dynamic_cast<MemtisPolicy*>(&e.policy());
                  if (p != nullptr) {
                    CheckMemtisHistogramsFull(*p, e.mem(), out);
                  }
                });
}

void InvariantAuditor::OnTick(Engine& engine) {
  ++ticks_seen_;
  if (!options_.every_tick) {
    return;
  }
  if (options_.tick_stride > 1 && ticks_seen_ % options_.tick_stride != 0) {
    return;
  }
  ++audits_run_;
  const bool expensive = options_.expensive_stride != 0 &&
                         audits_run_ % options_.expensive_stride == 0;
  AuditNow(engine, expensive);
  ++report_.ticks_audited;
}

void InvariantAuditor::OnRunEnd(Engine& engine) {
  AuditNow(engine, /*include_expensive=*/true);
}

void InvariantAuditor::AuditNow(Engine& engine, bool include_expensive) {
  collector_.SetContext(engine.now_ns(), ticks_seen_);
  for (const Check& check : checks_) {
    if (check.expensive && !include_expensive) {
      continue;
    }
    check.fn(engine, collector_);
  }
}

void InvariantAuditor::SaveState(StateWriter& w) const {
  w.Section(0x41554454u);  // "AUDT"
  w.Str(report_.ToJson());
  w.U64(ticks_seen_);
  w.U64(audits_run_);
}

void InvariantAuditor::LoadState(StateReader& r) {
  r.Section(0x41554454u);
  JsonValue v;
  if (!JsonValue::Parse(r.Str(), &v) || !AuditReport::FromJson(v, &report_)) {
    r.Fail();
  }
  ticks_seen_ = r.U64();
  audits_run_ = r.U64();
}

}  // namespace memtis
