#include "src/audit/audit_session.h"

#include <cstdlib>
#include <cstring>

#include "src/common/json.h"
#include "src/snapshot/serializer.h"

namespace memtis {

AuditSession::AuditSession(const AuditSessionOptions& options)
    : auditor_(options.invariants) {
  if (options.record_epochs) {
    recorder_.emplace(options.epochs);
  }
}

void AuditSession::OnTick(Engine& engine) {
  auditor_.OnTick(engine);
  if (recorder_.has_value()) {
    recorder_->OnTick(engine);
  }
}

void AuditSession::OnRunEnd(Engine& engine) {
  auditor_.OnRunEnd(engine);
  if (recorder_.has_value()) {
    recorder_->OnRunEnd(engine);
  }
}

void AuditSession::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("report");
  report().WriteJson(w);
  if (recorder_.has_value()) {
    w.Key("epochs");
    recorder_->WriteJson(w);
  }
  w.EndObject();
}

void AuditSession::SaveState(StateWriter& w) const {
  auditor_.SaveState(w);
  w.Bool(recorder_.has_value());
  if (recorder_.has_value()) {
    recorder_->SaveState(w);
  }
}

void AuditSession::LoadState(StateReader& r) {
  auditor_.LoadState(r);
  const bool had_recorder = r.Bool();
  if (had_recorder != recorder_.has_value()) {
    // Snapshot was taken by a session with different options.
    r.Fail();
    return;
  }
  if (recorder_.has_value()) {
    recorder_->LoadState(r);
  }
}

bool EnvAuditEnabled() {
  const char* env = std::getenv("MEMTIS_AUDIT");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

std::unique_ptr<AuditSession> MakeEnvAuditSession() {
  if (!EnvAuditEnabled()) {
    return nullptr;
  }
  AuditSessionOptions options;
  options.invariants.abort_on_violation = true;
  // Invariants only: the env hook certifies correctness in existing runs and
  // must stay cheap enough for every ctest case under sanitizers.
  options.record_epochs = false;
  return std::make_unique<AuditSession>(options);
}

}  // namespace memtis
