#include "src/audit/epoch_recorder.h"

#include <algorithm>

#include "src/common/json.h"
#include "src/common/json_parse.h"
#include "src/memtis/memtis_policy.h"
#include "src/snapshot/serializer.h"

namespace memtis {

void EpochSample::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Field("epoch", epoch);
  w.Field("t_ns", t_ns);
  w.Field("accesses", accesses);
  w.Field("promoted_4k", promoted_4k);
  w.Field("demoted_4k", demoted_4k);
  w.Field("splits", splits);
  w.Field("collapses", collapses);
  w.Field("demand_faults", demand_faults);
  w.Field("shootdowns", shootdowns);
  w.Field("samples", samples);
  w.Field("period_raises", period_raises);
  w.Field("period_drops", period_drops);
  w.Field("fast_used_pages", fast_used_pages);
  w.Field("rss_pages", rss_pages);
  if (!tenant_fast_pages.empty()) {
    w.Key("tenant_fast_pages");
    w.BeginArray();
    for (const uint64_t pages : tenant_fast_pages) {
      w.Uint(pages);
    }
    w.EndArray();
  }
  w.Field("memtis", memtis);
  if (memtis) {
    w.Field("load_period", load_period);
    w.Field("store_period", store_period);
    w.Field("hot_bin", hot_bin);
    w.Field("warm_bin", warm_bin);
    w.Field("cold_bin", cold_bin);
    w.Key("hist_bins");
    w.BeginArray();
    for (const uint64_t b : hist_bins) {
      w.Uint(b);
    }
    w.EndArray();
    w.Field("promotion_backlog", promotion_backlog);
    w.Field("demotion_backlog", demotion_backlog);
    w.Field("split_backlog", split_backlog);
  }
  w.EndObject();
}

bool EpochSample::FromJson(const JsonValue& v, EpochSample* out) {
  if (!v.is_object()) {
    return false;
  }
  *out = EpochSample();
  out->epoch = v.GetUint("epoch");
  out->t_ns = v.GetUint("t_ns");
  out->accesses = v.GetUint("accesses");
  out->promoted_4k = v.GetUint("promoted_4k");
  out->demoted_4k = v.GetUint("demoted_4k");
  out->splits = v.GetUint("splits");
  out->collapses = v.GetUint("collapses");
  out->demand_faults = v.GetUint("demand_faults");
  out->shootdowns = v.GetUint("shootdowns");
  out->samples = v.GetUint("samples");
  out->period_raises = v.GetUint("period_raises");
  out->period_drops = v.GetUint("period_drops");
  out->fast_used_pages = v.GetUint("fast_used_pages");
  out->rss_pages = v.GetUint("rss_pages");
  if (const JsonValue* tenants = v.Find("tenant_fast_pages"); tenants != nullptr) {
    out->tenant_fast_pages.reserve(tenants->size());
    for (size_t i = 0; i < tenants->size(); ++i) {
      out->tenant_fast_pages.push_back(tenants->at(i).AsUint());
    }
  }
  out->memtis = v.GetBool("memtis");
  if (out->memtis) {
    out->load_period = v.GetUint("load_period");
    out->store_period = v.GetUint("store_period");
    out->hot_bin = static_cast<int>(v.GetInt("hot_bin", -1));
    out->warm_bin = static_cast<int>(v.GetInt("warm_bin", -1));
    out->cold_bin = static_cast<int>(v.GetInt("cold_bin", -1));
    if (const JsonValue* bins = v.Find("hist_bins"); bins != nullptr) {
      for (size_t i = 0; i < out->hist_bins.size() && i < bins->size(); ++i) {
        out->hist_bins[i] = bins->at(i).AsUint();
      }
    }
    out->promotion_backlog = v.GetUint("promotion_backlog");
    out->demotion_backlog = v.GetUint("demotion_backlog");
    out->split_backlog = v.GetUint("split_backlog");
  }
  return true;
}

EpochRecorder::EpochRecorder() : EpochRecorder(Options()) {}

EpochRecorder::EpochRecorder(const Options& options)
    : options_(options), next_epoch_ns_(options.interval_ns) {
  ring_.reserve(std::min<uint64_t>(options_.capacity, 1024));
}

void EpochRecorder::OnTick(Engine& engine) {
  if (engine.now_ns() < next_epoch_ns_) {
    return;
  }
  Record(engine);
  // Skip ahead if the run stalled past several epochs.
  next_epoch_ns_ = std::max(
      next_epoch_ns_ + options_.interval_ns,
      engine.now_ns() - engine.now_ns() % options_.interval_ns +
          options_.interval_ns);
}

void EpochRecorder::OnRunEnd(Engine& engine) { Record(engine); }

void EpochRecorder::Record(Engine& engine) {
  BaseCounters now;
  const MigrationStats& ms = engine.mem().migration_stats();
  now.accesses = engine.accesses();
  now.promoted_4k = ms.promoted_4k();
  now.demoted_4k = ms.demoted_4k();
  now.splits = ms.splits;
  now.collapses = ms.collapses;
  now.demand_faults = ms.demand_faults;
  now.shootdowns = engine.tlb().stats().shootdowns;

  EpochSample sample;
  sample.epoch = recorded_total_;
  sample.t_ns = engine.now_ns();
  sample.fast_used_pages = engine.mem().fast_tier_pages();
  sample.rss_pages = engine.mem().rss_pages();
  if (engine.mem().tenant_count() > 1) {
    sample.tenant_fast_pages.reserve(engine.mem().tenant_count());
    for (TenantId id = 0; id < engine.mem().tenant_count(); ++id) {
      sample.tenant_fast_pages.push_back(
          engine.mem().tenant_mapped_4k(id, TierId::kFast));
    }
  }

  const auto* policy = dynamic_cast<MemtisPolicy*>(&engine.policy());
  if (policy != nullptr) {
    const PebsSampler& sampler = policy->sampler();
    now.samples = sampler.stats().total_samples();
    now.period_raises = sampler.stats().period_raises;
    now.period_drops = sampler.stats().period_drops;
    sample.memtis = true;
    sample.load_period = sampler.period(SampleType::kLlcLoadMiss);
    sample.store_period = sampler.period(SampleType::kStore);
    sample.hot_bin = policy->hot_threshold_bin();
    sample.warm_bin = policy->warm_threshold_bin();
    sample.cold_bin = policy->cold_threshold_bin();
    for (int b = 0; b < AccessHistogram::kBins; ++b) {
      sample.hist_bins[b] = policy->page_histogram().count(b);
    }
    sample.promotion_backlog = policy->promotion_backlog();
    sample.demotion_backlog = policy->demotion_backlog();
    sample.split_backlog = policy->split_backlog();
  }

  sample.accesses = now.accesses - prev_.accesses;
  sample.promoted_4k = now.promoted_4k - prev_.promoted_4k;
  sample.demoted_4k = now.demoted_4k - prev_.demoted_4k;
  sample.splits = now.splits - prev_.splits;
  sample.collapses = now.collapses - prev_.collapses;
  sample.demand_faults = now.demand_faults - prev_.demand_faults;
  sample.shootdowns = now.shootdowns - prev_.shootdowns;
  sample.samples = now.samples - prev_.samples;
  sample.period_raises = now.period_raises - prev_.period_raises;
  sample.period_drops = now.period_drops - prev_.period_drops;
  prev_ = now;

  if (ring_.size() < options_.capacity) {
    ring_.push_back(sample);
  } else {
    ring_[recorded_total_ % options_.capacity] = sample;
  }
  ++recorded_total_;
}

std::vector<EpochSample> EpochRecorder::samples() const {
  std::vector<EpochSample> out;
  out.reserve(ring_.size());
  if (recorded_total_ <= ring_.size()) {
    out = ring_;
  } else {
    const uint64_t start = recorded_total_ % options_.capacity;
    for (uint64_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(start + i) % options_.capacity]);
    }
  }
  return out;
}

void EpochRecorder::SaveState(StateWriter& w) const {
  w.Section(0x45504348u);  // "EPCH"
  // Raw ring order (not chronological): LoadState restores slots verbatim so
  // the wrap arithmetic keyed on recorded_total_ keeps working.
  w.U64(ring_.size());
  for (const EpochSample& s : ring_) {
    std::string json;
    JsonWriter jw(&json);
    s.WriteJson(jw);
    w.Str(json);
  }
  w.U64(recorded_total_);
  w.U64(next_epoch_ns_);
  w.U64(prev_.accesses);
  w.U64(prev_.promoted_4k);
  w.U64(prev_.demoted_4k);
  w.U64(prev_.splits);
  w.U64(prev_.collapses);
  w.U64(prev_.demand_faults);
  w.U64(prev_.shootdowns);
  w.U64(prev_.samples);
  w.U64(prev_.period_raises);
  w.U64(prev_.period_drops);
}

void EpochRecorder::LoadState(StateReader& r) {
  r.Section(0x45504348u);
  const uint64_t n = r.U64();
  if (n > options_.capacity) {
    r.Fail();
    return;
  }
  ring_.clear();
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    JsonValue v;
    EpochSample s;
    if (!JsonValue::Parse(r.Str(), &v) || !EpochSample::FromJson(v, &s)) {
      r.Fail();
      return;
    }
    ring_.push_back(std::move(s));
  }
  recorded_total_ = r.U64();
  next_epoch_ns_ = r.U64();
  prev_.accesses = r.U64();
  prev_.promoted_4k = r.U64();
  prev_.demoted_4k = r.U64();
  prev_.splits = r.U64();
  prev_.collapses = r.U64();
  prev_.demand_faults = r.U64();
  prev_.shootdowns = r.U64();
  prev_.samples = r.U64();
  prev_.period_raises = r.U64();
  prev_.period_drops = r.U64();
}

void EpochRecorder::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Field("interval_ns", options_.interval_ns);
  w.Field("recorded_total", recorded_total_);
  w.Field("dropped", dropped());
  w.Key("samples");
  w.BeginArray();
  for (const EpochSample& s : samples()) {
    s.WriteJson(w);
  }
  w.EndArray();
  w.EndObject();
}

}  // namespace memtis
