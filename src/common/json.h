// Minimal streaming JSON writer with deterministic output.
//
// Emitted bytes depend only on the sequence of calls (insertion-ordered keys,
// fixed "%.17g" double formatting, no locale dependence), so two runs that
// serialize the same data produce byte-identical documents — the property the
// runner's deterministic-parallelism guarantee is checked against.

#ifndef MEMTIS_SIM_SRC_COMMON_JSON_H_
#define MEMTIS_SIM_SRC_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace memtis {

class JsonWriter {
 public:
  // Appends to `out` (not owned). `indent` > 0 pretty-prints with that many
  // spaces per level; 0 emits a compact single-line document.
  explicit JsonWriter(std::string* out, int indent = 0);

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Key for the next value inside an object.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  // Key + value conveniences.
  void Field(std::string_view key, std::string_view value) { Key(key); String(value); }
  void Field(std::string_view key, const char* value) { Key(key); String(value); }
  void Field(std::string_view key, int64_t value) { Key(key); Int(value); }
  void Field(std::string_view key, int value) { Key(key); Int(value); }
  void Field(std::string_view key, uint64_t value) { Key(key); Uint(value); }
  void Field(std::string_view key, uint32_t value) { Key(key); Uint(value); }
  void Field(std::string_view key, double value) { Key(key); Double(value); }
  void Field(std::string_view key, bool value) { Key(key); Bool(value); }

  // Formats a double exactly as Double() does ("%.17g", round-trippable).
  static std::string FormatDouble(double value);
  static void AppendEscaped(std::string* out, std::string_view raw);

 private:
  void BeforeValue();
  void Newline();

  std::string* out_;
  int indent_;
  // One entry per open container: the number of elements emitted so far.
  std::vector<uint64_t> counts_;
  bool pending_key_ = false;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_COMMON_JSON_H_
