#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace memtis {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Ema::Add(double sample) {
  if (!initialized_) {
    value_ = sample;
    initialized_ = true;
    return;
  }
  value_ = decay_ * sample + (1.0 - decay_) * value_;
}

double GeoMean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    SIM_CHECK(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys) {
  SIM_CHECK_EQ(xs.size(), ys.size());
  const size_t n = xs.size();
  if (n < 2) {
    return 0.0;
  }
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  SIM_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  const size_t index = rank == 0 ? 0 : rank - 1;
  return values[std::min(index, values.size() - 1)];
}

}  // namespace memtis
