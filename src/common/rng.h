// Deterministic random number generation for the simulator.
//
// Everything in the simulator must be reproducible from a seed, so we carry our
// own engines instead of relying on implementation-defined std::
// distributions. Rng is xoshiro256** seeded via SplitMix64; ZipfSampler uses
// the rejection-inversion method of Hörmann & Derflinger, which samples a
// Zipf(s) distribution over {1..n} in O(1) without precomputing tables.

#ifndef MEMTIS_SIM_SRC_COMMON_RNG_H_
#define MEMTIS_SIM_SRC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace memtis {

// SplitMix64: used for seeding and as a cheap stateless mixer.
constexpr uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 by Blackman & Vigna. Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  uint64_t Next();

  // Uniform in [0, bound) using Lemire's multiply-shift reduction (unbiased
  // enough for simulation purposes; bound is always << 2^64 here).
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial.
  bool NextBool(double p_true);

  // Uniform in [lo, hi].
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Stream-position checkpointing: the four state words are the entire
  // generator, so saving and restoring them resumes the exact sequence.
  template <typename Writer>
  void SaveState(Writer& w) const {
    for (uint64_t word : s_) w.U64(word);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    for (uint64_t& word : s_) word = r.U64();
  }

 private:
  uint64_t s_[4];
};

// Zipf sampler over ranks {0, .., n-1} with exponent s (s > 0, s != 1 handled
// as well as s == 1). Rank 0 is the most popular item.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  // Draws a rank in [0, n).
  uint64_t Sample(Rng& rng) const;

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;  // s_ == 1 needs a different integral; folded into H().
};

// Pareto (type I) sampler returning values >= 1 with shape alpha.
class ParetoSampler {
 public:
  explicit ParetoSampler(double alpha) : alpha_(alpha) {}
  double Sample(Rng& rng) const;

 private:
  double alpha_;
};

// Fisher-Yates permutation of [0, n), used to scatter Zipf ranks over an
// address range so the hot set is not physically contiguous.
std::vector<uint32_t> RandomPermutation(uint32_t n, Rng& rng);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_COMMON_RNG_H_
