#include "src/common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace memtis {
namespace {

std::atomic<CheckFailureHook> g_hook{nullptr};
std::atomic<void*> g_hook_arg{nullptr};

}  // namespace

void SetCheckFailureHook(CheckFailureHook hook, void* arg) {
  // Argument first: a concurrent failing check may observe the new hook, and
  // must never see it paired with a stale argument.
  g_hook_arg.store(arg, std::memory_order_release);
  g_hook.store(hook, std::memory_order_release);
}

void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::fflush(stderr);
  // Claim the hook so a second failing check (e.g. from another thread while
  // abort() unwinds signal handlers) cannot re-enter it.
  const CheckFailureHook hook =
      g_hook.exchange(nullptr, std::memory_order_acq_rel);
  if (hook != nullptr) {
    hook(expr, file, line, g_hook_arg.load(std::memory_order_acquire));
  }
  std::abort();
}

}  // namespace memtis
