#include "src/common/json_parse.h"

#include <cerrno>
#include <cstdlib>

namespace memtis {
namespace {

const std::string kEmptyString;
const JsonValue kNullValue;

}  // namespace

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out, /*depth=*/0)) {
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing garbage after document");
    }
    return true;
  }

 private:
  // Deep enough for every document the runner emits; bounded so corrupt or
  // adversarial manifest lines cannot blow the stack.
  static constexpr int kMaxDepth = 96;

  bool Fail(const char* message) {
    if (error_ != nullptr) {
      *error_ = message;
      *error_ += " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of document");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->scalar_);
      case 't':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Literal("true");
      case 'f':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Literal("false");
      case 'n':
        out->kind_ = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after key");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->items_.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) {
        return Fail("dangling escape");
      }
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape digit");
            }
          }
          pos_ += 4;
          // UTF-8 encode. JsonWriter only emits \u00xx for control bytes,
          // but accept the full BMP (no surrogate-pair recombination).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->scalar_ = std::string(text_.substr(start, pos_ - start));
    // Validate by round-tripping through strtod: rejects "-", "1.2.3", etc.
    errno = 0;
    char* end = nullptr;
    std::strtod(out->scalar_.c_str(), &end);
    if (end != out->scalar_.c_str() + out->scalar_.size()) {
      return Fail("malformed number");
    }
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

bool JsonValue::Parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  *out = JsonValue();
  JsonParser parser(text, error);
  return parser.ParseDocument(out);
}

bool JsonValue::AsBool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double JsonValue::AsDouble(double fallback) const {
  if (kind_ != Kind::kNumber) {
    return fallback;
  }
  return std::strtod(scalar_.c_str(), nullptr);
}

uint64_t JsonValue::AsUint(uint64_t fallback) const {
  if (kind_ != Kind::kNumber) {
    return fallback;
  }
  // Integer tokens re-parse exactly; scientific/fractional tokens (which the
  // writer only emits for doubles) fall back to the double path.
  if (scalar_.find_first_of(".eE") != std::string::npos) {
    return static_cast<uint64_t>(std::strtod(scalar_.c_str(), nullptr));
  }
  return std::strtoull(scalar_.c_str(), nullptr, 10);
}

int64_t JsonValue::AsInt(int64_t fallback) const {
  if (kind_ != Kind::kNumber) {
    return fallback;
  }
  if (scalar_.find_first_of(".eE") != std::string::npos) {
    return static_cast<int64_t>(std::strtod(scalar_.c_str(), nullptr));
  }
  return std::strtoll(scalar_.c_str(), nullptr, 10);
}

const std::string& JsonValue::AsString() const {
  return kind_ == Kind::kString ? scalar_ : kEmptyString;
}

const JsonValue& JsonValue::at(size_t i) const {
  return i < items_.size() ? items_[i] : kNullValue;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->AsBool(fallback);
}

double JsonValue::GetDouble(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->AsDouble(fallback);
}

uint64_t JsonValue::GetUint(std::string_view key, uint64_t fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->AsUint(fallback);
}

int64_t JsonValue::GetInt(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->AsInt(fallback);
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString()
                                        : std::string(fallback);
}

}  // namespace memtis
