#include "src/common/netio.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

namespace memtis {

uint64_t MonotonicMs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1'000'000;
}

void SleepMs(uint64_t ms) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1'000'000);
  while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

std::string EncodeFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 4);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  frame.push_back(static_cast<char>((len >> 24) & 0xff));
  frame.push_back(static_cast<char>((len >> 16) & 0xff));
  frame.push_back(static_cast<char>((len >> 8) & 0xff));
  frame.push_back(static_cast<char>(len & 0xff));
  frame.append(payload.data(), payload.size());
  return frame;
}

void FrameDecoder::Feed(const char* data, size_t size) {
  if (bad_) {
    return;
  }
  buffer_.append(data, size);
}

bool FrameDecoder::Next(std::string* frame) {
  if (bad_ || buffer_.size() < 4) {
    return false;
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(buffer_.data());
  const uint64_t len = (static_cast<uint64_t>(p[0]) << 24) |
                       (static_cast<uint64_t>(p[1]) << 16) |
                       (static_cast<uint64_t>(p[2]) << 8) |
                       static_cast<uint64_t>(p[3]);
  if (len > kMaxFrameBytes) {
    bad_ = true;
    buffer_.clear();
    return false;
  }
  if (buffer_.size() < 4 + len) {
    return false;
  }
  frame->assign(buffer_, 4, static_cast<size_t>(len));
  buffer_.erase(0, 4 + static_cast<size_t>(len));
  return true;
}

int ListenLoopback(uint16_t port, uint16_t* bound_port, std::string* error) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket() failed: ") + std::strerror(errno);
    }
    return -1;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 64) != 0) {
    if (error != nullptr) {
      *error = "cannot listen on 127.0.0.1:" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *bound_port = ntohs(bound.sin_port);
    } else {
      *bound_port = port;
    }
  }
  return fd;
}

int ConnectLoopback(const std::string& addr, std::string* error) {
  std::string host = "127.0.0.1";
  std::string port_text = addr;
  if (const size_t colon = addr.rfind(':'); colon != std::string::npos) {
    host = addr.substr(0, colon);
    port_text = addr.substr(colon + 1);
  }
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port == 0 || port > 65535) {
    if (error != nullptr) {
      *error = "bad port in address '" + addr + "'";
    }
    return -1;
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad numeric IPv4 host in address '" + addr +
               "' (hostnames are not resolved; use the file backend for "
               "cross-host queues)";
    }
    return -1;
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket() failed: ") + std::strerror(errno);
    }
    return -1;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    if (error != nullptr) {
      *error = "cannot connect to " + addr + ": " + std::strerror(errno);
    }
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendFrame(int fd, std::string_view payload) {
  const std::string frame = EncodeFrame(payload);
  const char* data = frame.data();
  size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = send(fd, data, left, MSG_NOSIGNAL);
    if (n > 0) {
      data += n;
      left -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      poll(&pfd, 1, 1000);
      continue;
    }
    return false;  // peer gone (EPIPE/ECONNRESET) or hard error
  }
  return true;
}

bool RecvFrame(int fd, FrameDecoder* decoder, std::string* frame,
               int timeout_ms) {
  const uint64_t deadline =
      timeout_ms < 0 ? 0 : MonotonicMs() + static_cast<uint64_t>(timeout_ms);
  for (;;) {
    if (decoder->Next(frame)) {
      return true;
    }
    if (decoder->bad()) {
      return false;
    }
    int wait = -1;
    if (timeout_ms >= 0) {
      const uint64_t now = MonotonicMs();
      if (now >= deadline) {
        return false;
      }
      wait = static_cast<int>(deadline - now);
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rc = poll(&pfd, 1, wait);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (rc == 0) {
      return false;  // timeout
    }
    char buf[16384];
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      decoder->Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return false;  // EOF or hard error
  }
}

}  // namespace memtis
