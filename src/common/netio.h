// Minimal socket/poll plumbing for the distributed campaign plane
// (src/runner/coordinator.* / work_queue.*): length-prefixed framing over
// loopback TCP, plus the monotonic-clock helpers both ends share.
//
// Framing: every message is a 4-byte big-endian payload length followed by
// the payload bytes. The decoder is incremental (feed arbitrary chunks, pop
// whole frames) and defensive: a length above kMaxFrameBytes poisons the
// stream (`bad()`) instead of allocating attacker-controlled amounts — a
// garbled peer can only ever cost its own connection, never the process
// (tests/fuzz_test.cc pins this).

#ifndef MEMTIS_SIM_SRC_COMMON_NETIO_H_
#define MEMTIS_SIM_SRC_COMMON_NETIO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace memtis {

uint64_t MonotonicMs();
void SleepMs(uint64_t ms);

// Hard cap on one frame's payload. Large enough for a JobResult with full
// timeline and epoch telemetry, small enough that a hostile length prefix
// cannot balloon memory.
inline constexpr size_t kMaxFrameBytes = 64u * 1024 * 1024;

// 4-byte big-endian length + payload.
std::string EncodeFrame(std::string_view payload);

// Incremental frame reassembly. Once bad() (oversized length), the stream is
// poisoned for good: the owner must drop the connection.
class FrameDecoder {
 public:
  void Feed(const char* data, size_t size);
  // Pops the next complete frame into *frame. Returns false when no complete
  // frame is buffered (or the stream is bad).
  bool Next(std::string* frame);
  bool bad() const { return bad_; }
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool bad_ = false;
};

// Listens on 127.0.0.1:port (port 0 = kernel-assigned; *bound_port receives
// the actual port). Returns the listening fd, or -1 with *error set.
int ListenLoopback(uint16_t port, uint16_t* bound_port, std::string* error);

// Connects to `addr`: "PORT" (loopback) or "HOST:PORT" with a numeric IPv4
// host. Blocking connect; returns the fd, or -1 with *error set.
int ConnectLoopback(const std::string& addr, std::string* error);

// Writes one complete frame, polling through partial writes and EAGAIN.
// False on a dead peer (EPIPE/ECONNRESET — never raises SIGPIPE).
bool SendFrame(int fd, std::string_view payload);

// Blocks (poll + read) until one complete frame arrives in *frame, feeding
// `decoder`. timeout_ms < 0 waits forever. False on EOF, error, poisoned
// decoder, or timeout.
bool RecvFrame(int fd, FrameDecoder* decoder, std::string* frame,
               int timeout_ms);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_COMMON_NETIO_H_
