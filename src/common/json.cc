#include "src/common/json.h"

#include <cstdio>

#include "src/common/check.h"

namespace memtis {

JsonWriter::JsonWriter(std::string* out, int indent) : out_(out), indent_(indent) {
  SIM_CHECK(out != nullptr);
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_->push_back('{');
  counts_.push_back(0);
}

void JsonWriter::EndObject() {
  SIM_CHECK(!counts_.empty() && !pending_key_);
  const bool empty = counts_.back() == 0;
  counts_.pop_back();
  if (!empty) {
    Newline();
  }
  out_->push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_->push_back('[');
  counts_.push_back(0);
}

void JsonWriter::EndArray() {
  SIM_CHECK(!counts_.empty() && !pending_key_);
  const bool empty = counts_.back() == 0;
  counts_.pop_back();
  if (!empty) {
    Newline();
  }
  out_->push_back(']');
}

void JsonWriter::Key(std::string_view key) {
  SIM_CHECK(!counts_.empty() && !pending_key_);
  if (counts_.back() > 0) {
    out_->push_back(',');
  }
  ++counts_.back();
  Newline();
  out_->push_back('"');
  AppendEscaped(out_, key);
  out_->append(indent_ > 0 ? "\": " : "\":");
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_->push_back('"');
  AppendEscaped(out_, value);
  out_->push_back('"');
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_->append(std::to_string(value));
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_->append(std::to_string(value));
}

void JsonWriter::Double(double value) {
  BeforeValue();
  out_->append(FormatDouble(value));
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_->append(value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  out_->append("null");
}

std::string JsonWriter::FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void JsonWriter::AppendEscaped(std::string* out, std::string_view raw) {
  for (char c : raw) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!counts_.empty()) {
    // Array element (keys handle their own commas inside objects).
    if (counts_.back() > 0) {
      out_->push_back(',');
    }
    ++counts_.back();
    Newline();
  }
}

void JsonWriter::Newline() {
  if (indent_ <= 0) {
    return;
  }
  out_->push_back('\n');
  out_->append(static_cast<size_t>(indent_) * counts_.size(), ' ');
}

}  // namespace memtis
