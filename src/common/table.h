// Plain-text table printer used by the bench binaries to emit the rows/series
// of each paper table and figure in a stable, grep-friendly format.

#ifndef MEMTIS_SIM_SRC_COMMON_TABLE_H_
#define MEMTIS_SIM_SRC_COMMON_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace memtis {

class Table {
 public:
  explicit Table(std::string title);

  // Column headers; call once before adding rows.
  void SetHeader(std::vector<std::string> header);

  // Adds a row of already-formatted cells. Row width may not exceed header.
  void AddRow(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string Num(double v, int precision = 2);
  static std::string Pct(double ratio, int precision = 1);  // 0.5 -> "50.0%"
  static std::string Mib(double bytes, int precision = 1);

  // Renders to `out` (defaults to stdout) with aligned columns. If the
  // MEMTIS_BENCH_CSV environment variable names a directory, also writes
  // <dir>/<slugified title>.csv for plotting.
  void Print(std::FILE* out = stdout) const;

  // Writes the table as CSV to `out`.
  void WriteCsv(std::FILE* out) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_COMMON_TABLE_H_
