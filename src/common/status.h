// Failure taxonomy for the resilience plane (src/runner/supervisor.*).
//
// Every way a supervised sweep cell can end other than success gets one kind,
// with a stable wire name (manifest/JSON) and a recoverability class:
// recoverable failures are worth a bounded deterministic retry (the fault may
// be transient or attempt-seed-dependent), fatal ones are not (retrying a
// cancelled or misconfigured cell only burns time).

#ifndef MEMTIS_SIM_SRC_COMMON_STATUS_H_
#define MEMTIS_SIM_SRC_COMMON_STATUS_H_

#include <optional>
#include <string_view>

namespace memtis {

enum class FailureKind : int {
  kNone = 0,      // no failure (placeholder in default-constructed records)
  kCrash,         // child died on a signal (SIGSEGV, SIGABRT from SIM_CHECK...)
  kExit,          // child exited with a nonzero status
  kTimeout,       // wall-clock deadline overrun; watchdog SIGKILLed the child
  kProtocol,      // child exited 0 but its result pipe payload was unusable
  kCancelled,     // never ran: SIGINT drain or fail-fast dropped it
  kInvalidSpec,   // the cell itself is malformed (caught before running)
  kLeaseExpired,  // distributed: every issued lease died (worker crash/hang)
                  // and the coordinator's re-issue budget ran out
};

constexpr std::string_view FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kCrash: return "crash";
    case FailureKind::kExit: return "exit";
    case FailureKind::kTimeout: return "timeout";
    case FailureKind::kProtocol: return "protocol";
    case FailureKind::kCancelled: return "cancelled";
    case FailureKind::kInvalidSpec: return "invalid-spec";
    case FailureKind::kLeaseExpired: return "lease-expired";
  }
  return "unknown";
}

constexpr std::optional<FailureKind> FailureKindFromName(std::string_view name) {
  for (const FailureKind kind :
       {FailureKind::kNone, FailureKind::kCrash, FailureKind::kExit,
        FailureKind::kTimeout, FailureKind::kProtocol, FailureKind::kCancelled,
        FailureKind::kInvalidSpec, FailureKind::kLeaseExpired}) {
    if (FailureKindName(kind) == name) {
      return kind;
    }
  }
  return std::nullopt;
}

// Recoverable = a fresh attempt (with the attempt index folded into the
// engine seed, see src/runner/sweep.h) has a real chance of succeeding.
constexpr bool IsRecoverable(FailureKind kind) {
  switch (kind) {
    case FailureKind::kCrash:
    case FailureKind::kExit:
    case FailureKind::kTimeout:
    case FailureKind::kProtocol:
    case FailureKind::kLeaseExpired:
      return true;
    case FailureKind::kNone:
    case FailureKind::kCancelled:
    case FailureKind::kInvalidSpec:
      return false;
  }
  return false;
}

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_COMMON_STATUS_H_
