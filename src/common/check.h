// Lightweight assertion macros used throughout the simulator.
//
// SIM_CHECK is always on (including release builds): the simulator's value is
// its correctness, so invariant violations must abort rather than silently
// corrupt an experiment. SIM_DCHECK compiles out in NDEBUG builds and is for
// hot-path checks only.

#ifndef MEMTIS_SIM_SRC_COMMON_CHECK_H_
#define MEMTIS_SIM_SRC_COMMON_CHECK_H_

namespace memtis {

// Invoked (at most once, first failure wins) just before a failed SIM_CHECK
// aborts the process. The job supervisor's forked children install a hook
// that reports the failing expression back through the result pipe so the
// parent can attach it to the structured JobFailure instead of scraping
// stderr (src/runner/supervisor.*). Keep hooks minimal: the process is about
// to abort, so only write/flush-style work belongs here. A plain function
// pointer (not std::function) so installation itself cannot allocate.
using CheckFailureHook = void (*)(const char* expr, const char* file, int line,
                                  void* arg);

// Installs the process-wide hook (nullptr clears it). Not thread-safe against
// concurrent failing checks by design — the first CheckFailed claims the hook
// and every path ends in abort().
void SetCheckFailureHook(CheckFailureHook hook, void* arg);

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);

}  // namespace memtis

#define SIM_CHECK(expr)                                  \
  do {                                                   \
    if (!(expr)) {                                       \
      ::memtis::CheckFailed(#expr, __FILE__, __LINE__);  \
    }                                                    \
  } while (0)

#define SIM_CHECK_LE(a, b) SIM_CHECK((a) <= (b))
#define SIM_CHECK_LT(a, b) SIM_CHECK((a) < (b))
#define SIM_CHECK_GE(a, b) SIM_CHECK((a) >= (b))
#define SIM_CHECK_GT(a, b) SIM_CHECK((a) > (b))
#define SIM_CHECK_EQ(a, b) SIM_CHECK((a) == (b))
#define SIM_CHECK_NE(a, b) SIM_CHECK((a) != (b))

#ifdef NDEBUG
#define SIM_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define SIM_DCHECK(expr) SIM_CHECK(expr)
#endif

#endif  // MEMTIS_SIM_SRC_COMMON_CHECK_H_
