// Lightweight assertion macros used throughout the simulator.
//
// SIM_CHECK is always on (including release builds): the simulator's value is
// its correctness, so invariant violations must abort rather than silently
// corrupt an experiment. SIM_DCHECK compiles out in NDEBUG builds and is for
// hot-path checks only.

#ifndef MEMTIS_SIM_SRC_COMMON_CHECK_H_
#define MEMTIS_SIM_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace memtis {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace memtis

#define SIM_CHECK(expr)                                  \
  do {                                                   \
    if (!(expr)) {                                       \
      ::memtis::CheckFailed(#expr, __FILE__, __LINE__);  \
    }                                                    \
  } while (0)

#define SIM_CHECK_LE(a, b) SIM_CHECK((a) <= (b))
#define SIM_CHECK_LT(a, b) SIM_CHECK((a) < (b))
#define SIM_CHECK_GE(a, b) SIM_CHECK((a) >= (b))
#define SIM_CHECK_GT(a, b) SIM_CHECK((a) > (b))
#define SIM_CHECK_EQ(a, b) SIM_CHECK((a) == (b))
#define SIM_CHECK_NE(a, b) SIM_CHECK((a) != (b))

#ifdef NDEBUG
#define SIM_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define SIM_DCHECK(expr) SIM_CHECK(expr)
#endif

#endif  // MEMTIS_SIM_SRC_COMMON_CHECK_H_
