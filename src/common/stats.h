// Small statistics helpers shared by metrics collection and benches.

#ifndef MEMTIS_SIM_SRC_COMMON_STATS_H_
#define MEMTIS_SIM_SRC_COMMON_STATS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace memtis {

// Streaming mean/variance/min/max (Welford).
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U64(count_);
    w.F64(mean_);
    w.F64(m2_);
    w.F64(min_);
    w.F64(max_);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    count_ = r.U64();
    mean_ = r.F64();
    m2_ = r.F64();
    min_ = r.F64();
    max_ = r.F64();
  }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponential moving average with configurable decay (new = decay*sample +
// (1-decay)*old). Used by the ksampled CPU-usage controller.
class Ema {
 public:
  explicit Ema(double decay) : decay_(decay) {}

  void Add(double sample);
  double value() const { return value_; }
  bool initialized() const { return initialized_; }

  template <typename Writer>
  void SaveState(Writer& w) const {
    w.F64(value_);
    w.Bool(initialized_);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    value_ = r.F64();
    initialized_ = r.Bool();
  }

 private:
  double decay_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Geometric mean of positive values; returns 0 for an empty span.
double GeoMean(std::span<const double> values);

// Pearson correlation coefficient; returns 0 if either side is constant.
double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys);

// p-th percentile (0..100) by nearest-rank on a copy of the data.
double Percentile(std::vector<double> values, double p);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_COMMON_STATS_H_
