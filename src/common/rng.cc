#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace memtis {
namespace {

constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  SIM_DCHECK(bound > 0);
  return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * bound) >> 64);
}

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  SIM_DCHECK(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

// --- ZipfSampler -------------------------------------------------------------
//
// Rejection-inversion sampling (Hörmann & Derflinger 1996). H is the integral
// of the (shifted) density; we invert it on a uniform deviate and accept with
// probability proportional to the true mass at the resulting integer.

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  SIM_CHECK(n >= 1);
  SIM_CHECK(s > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

double ZipfSampler::H(double x) const {
  if (std::fabs(s_ - 1.0) < 1e-12) {
    return std::log(x);
  }
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double x) const {
  if (std::fabs(s_ - 1.0) < 1e-12) {
    return std::exp(x);
  }
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) {
    return 0;
  }
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) {
      k = 1.0;
    } else if (k > static_cast<double>(n_)) {
      k = static_cast<double>(n_);
    }
    if (k - x <= threshold_ || u >= H(k + 0.5) - std::pow(k, -s_)) {
      return static_cast<uint64_t>(k) - 1;  // ranks are 0-based
    }
  }
}

double ParetoSampler::Sample(Rng& rng) const {
  const double u = 1.0 - rng.NextDouble();  // in (0, 1]
  return std::pow(u, -1.0 / alpha_);
}

std::vector<uint32_t> RandomPermutation(uint32_t n, Rng& rng) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(rng.NextBelow(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace memtis
