// Minimal recursive-descent JSON parser — the inverse of JsonWriter.
//
// Exists for the runner's resilience plane: supervised children stream their
// results back as JSON over a pipe, and checkpoint manifests are JSONL files
// reloaded on --resume (src/runner/job_codec.*, src/runner/manifest.*). The
// parser therefore favours fidelity over generality:
//
//  - Numbers keep their raw token. AsUint()/AsInt() re-parse with
//    strtoull/strtoll so 64-bit counters round-trip exactly (a double would
//    lose precision past 2^53); AsDouble() uses strtod, which inverts
//    JsonWriter's "%.17g" formatting bit-for-bit.
//  - Object keys keep insertion order (matching the writer) and lookups are
//    linear — documents here are small, field-addressed records.
//  - Input is untrusted (a crashed child may truncate mid-document, manifest
//    files may be corrupt), so Parse() returns an error instead of aborting,
//    and nesting depth is capped.

#ifndef MEMTIS_SIM_SRC_COMMON_JSON_PARSE_H_
#define MEMTIS_SIM_SRC_COMMON_JSON_PARSE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace memtis {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses exactly one JSON document (trailing whitespace allowed, trailing
  // garbage is an error). Returns false with a position-annotated message in
  // `*error` (when non-null) on malformed input.
  static bool Parse(std::string_view text, JsonValue* out,
                    std::string* error = nullptr);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_null() const { return kind_ == Kind::kNull; }

  // Scalar accessors: return `fallback` on kind mismatch rather than abort —
  // callers validate presence separately when a field is load-bearing.
  bool AsBool(bool fallback = false) const;
  double AsDouble(double fallback = 0.0) const;
  uint64_t AsUint(uint64_t fallback = 0) const;
  int64_t AsInt(int64_t fallback = 0) const;
  const std::string& AsString() const;  // empty string on mismatch

  // Array access.
  size_t size() const { return items_.size(); }
  const JsonValue& at(size_t i) const;

  // Object access: nullptr when the key is absent (or not an object).
  const JsonValue* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Object field conveniences: fallback when absent or mistyped.
  bool GetBool(std::string_view key, bool fallback = false) const;
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  uint64_t GetUint(std::string_view key, uint64_t fallback = 0) const;
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  std::string GetString(std::string_view key,
                        std::string_view fallback = "") const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  // raw number token, or decoded string contents
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_COMMON_JSON_PARSE_H_
