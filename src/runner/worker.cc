#include "src/runner/worker.h"

#include <atomic>
#include <thread>

#include <unistd.h>

#include "src/common/netio.h"
#include "src/runner/job_codec.h"
#include "src/runner/supervisor.h"

namespace memtis {
namespace {

// Heartbeats one lease until stopped. Renewal failures are deliberately
// ignored: a revoked lease just means our eventual result will be stale, and
// stale results are harmless by construction.
class LeaseRenewer {
 public:
  LeaseRenewer(WorkQueue& queue, const WorkItem& item, uint64_t interval_ms)
      : thread_([&queue, item, interval_ms, this] {
          uint64_t since_renew = 0;
          while (!stop_.load(std::memory_order_relaxed)) {
            SleepMs(50);
            since_renew += 50;
            if (since_renew >= interval_ms) {
              since_renew = 0;
              queue.Renew(item);
            }
          }
        }) {}

  ~LeaseRenewer() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace

int RunWorker(WorkQueue& queue, const WorkerOptions& options) {
  int completed = 0;
  bool first_claim = true;
  for (;;) {
    WorkItem item;
    switch (queue.Claim(&item)) {
      case WorkQueue::ClaimStatus::kDone:
        return 0;
      case WorkQueue::ClaimStatus::kLost:
        return 1;
      case WorkQueue::ClaimStatus::kClaimed:
        break;
    }

    if (options.kill_after_cells >= 0 &&
        completed >= options.kill_after_cells) {
      // Die while holding the lease — the interesting moment for the
      // coordinator's re-issue path.
      if (options.kill_hard) {
        _exit(9);
      }
      return 2;
    }
    if (first_claim && options.hang_first_claim_ms > 0) {
      first_claim = false;
      SleepMs(options.hang_first_claim_ms);  // no renewals: lease expires
    }

    SupervisedOutcome outcome;
    if (JobFingerprint(item.spec) != item.fingerprint) {
      outcome.ok = false;
      outcome.attempts = item.attempt + 1;
      outcome.failure.kind = FailureKind::kInvalidSpec;
      outcome.failure.message =
          "cell spec does not hash to advertised fingerprint " +
          item.fingerprint + " (codec drift between coordinator and worker?)";
      outcome.failure.reproducer_cmdline =
          ReproducerCmdline(item.spec, item.attempt);
    } else {
      SupervisorOptions sup;
      sup.max_attempts = 1;  // retries are the coordinator's, at global scope
      sup.first_attempt = item.attempt;
      sup.job_timeout_ms =
          item.job_timeout_ms != 0 ? item.job_timeout_ms : options.job_timeout_ms;
      LeaseRenewer renewer(queue, item, options.renew_interval_ms);
      outcome = RunJobSupervised(item.spec, sup);
    }

    if (!queue.Complete(item, outcome)) {
      return 0;  // campaign decided while we ran — our result was moot
    }
    ++completed;
  }
}

}  // namespace memtis
