#include "src/runner/worker.h"

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "src/common/netio.h"
#include "src/runner/job_codec.h"
#include "src/runner/supervisor.h"

namespace memtis {
namespace {

// Cells at or below this access budget are "very small": their runtime is
// comparable to a result round-trip, so their results are batched. Larger
// cells flush immediately — the transport cost vanishes in their runtime,
// and prompt reporting keeps the coordinator's retry decisions timely.
constexpr uint64_t kBatchableAccesses = 1'000'000;

// Heartbeats one lease until stopped. Renewal failures are deliberately
// ignored: a revoked lease just means our eventual result will be stale, and
// stale results are harmless by construction.
class LeaseRenewer {
 public:
  LeaseRenewer(WorkQueue& queue, const WorkItem& item, uint64_t interval_ms)
      : thread_([&queue, item, interval_ms, this] {
          uint64_t since_renew = 0;
          while (!stop_.load(std::memory_order_relaxed)) {
            SleepMs(50);
            since_renew += 50;
            if (since_renew >= interval_ms) {
              since_renew = 0;
              queue.Renew(item);
            }
          }
        }) {}

  ~LeaseRenewer() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace

int RunWorker(WorkQueue& queue, const WorkerOptions& options) {
  int completed = 0;
  bool first_claim = true;
  bool checkpoint_dir_made = false;
  std::vector<std::pair<WorkItem, SupervisedOutcome>> pending;
  // Flushes batched results. False = the campaign is gone, results are moot.
  const auto flush = [&] {
    if (pending.empty()) {
      return true;
    }
    std::vector<std::pair<WorkItem, SupervisedOutcome>> batch;
    batch.swap(pending);
    return queue.CompleteBatch(batch);
  };
  for (;;) {
    if (options.drain != nullptr && options.drain()) {
      flush();
      return 3;
    }
    WorkItem item;
    switch (queue.Claim(&item)) {
      case WorkQueue::ClaimStatus::kDone:
        flush();  // file backend: late results still help a restarted
                  // coordinator; socket: harmlessly fails, peer is gone
        return 0;
      case WorkQueue::ClaimStatus::kLost:
        flush();
        return 1;
      case WorkQueue::ClaimStatus::kClaimed:
        break;
    }

    if (options.kill_after_cells >= 0 &&
        completed >= options.kill_after_cells) {
      // Die while holding the lease — the interesting moment for the
      // coordinator's re-issue path.
      if (options.kill_hard) {
        _exit(9);
      }
      return 2;
    }
    if (first_claim && options.hang_first_claim_ms > 0) {
      first_claim = false;
      SleepMs(options.hang_first_claim_ms);  // no renewals: lease expires
    }

    SupervisedOutcome outcome;
    if (JobFingerprint(item.spec) != item.fingerprint) {
      outcome.ok = false;
      outcome.attempts = item.attempt + 1;
      outcome.failure.kind = FailureKind::kInvalidSpec;
      outcome.failure.message =
          "cell spec does not hash to advertised fingerprint " +
          item.fingerprint + " (codec drift between coordinator and worker?)";
      outcome.failure.reproducer_cmdline =
          ReproducerCmdline(item.spec, item.attempt);
    } else {
      SupervisorOptions sup;
      sup.max_attempts = 1;  // retries are the coordinator's, at global scope
      sup.first_attempt = item.attempt;
      sup.job_timeout_ms =
          item.job_timeout_ms != 0 ? item.job_timeout_ms : options.job_timeout_ms;
      if (item.checkpoint_ns != 0 && !options.checkpoint_dir.empty()) {
        sup.checkpoint_ns = item.checkpoint_ns;
        sup.checkpoint_dir = options.checkpoint_dir;
        if (!checkpoint_dir_made) {
          checkpoint_dir_made = true;
          mkdir(options.checkpoint_dir.c_str(), 0777);  // EEXIST is fine
        }
      }
      LeaseRenewer renewer(queue, item, options.renew_interval_ms);
      outcome = RunJobSupervised(item.spec, sup);
    }

    // Very small cells batch their results; everything else — and a batch
    // that just reached capacity — flushes now. The merge is byte-identical
    // either way: the coordinator keys on (fingerprint, attempt), not on
    // arrival pattern.
    const bool batchable =
        options.result_batch > 1 && item.spec.accesses != 0 &&
        item.spec.accesses <= kBatchableAccesses;
    bool delivered = true;
    if (batchable) {
      pending.emplace_back(std::move(item), std::move(outcome));
      if (pending.size() >= static_cast<size_t>(options.result_batch)) {
        delivered = flush();
      }
    } else {
      delivered = flush() && queue.Complete(item, outcome);
    }
    if (!delivered) {
      return 0;  // campaign decided while we ran — our result was moot
    }
    ++completed;
  }
}

}  // namespace memtis
