// Worker-side view of a distributed campaign's cell queue, plus the wire and
// on-disk formats both ends (and the fuzz tests) share.
//
// A campaign cell is a pure function of its canonical JobSpec (job_codec.h),
// which makes cells relocatable: the coordinator (coordinator.h) issues
// (index, attempt, issue) leases, a worker claims one, runs exactly one
// supervised attempt at the given *global* attempt number, and reports the
// outcome keyed by fingerprint. Determinism contract:
//
//  - One issue == one attempt. A reported recoverable failure makes the
//    coordinator re-issue the cell at attempt + 1 (engine seed folded via
//    DeriveSeedOffset, exactly as local supervised retries do), so the retry
//    is byte-identical no matter which worker runs it.
//  - A lost lease (worker died or stopped renewing) re-issues the *same*
//    attempt under a fresh issue id: the lost attempt produced no evidence,
//    so re-running it reproduces the uninterrupted run's bytes — the same
//    reasoning as --resume re-running missing cells.
//  - Duplicate claims and duplicate results are harmless: the same (spec,
//    attempt) always produces the same bytes, and the coordinator ignores
//    outcomes for decided cells or stale attempts.
//
// Two backends:
//
//  - Socket (`memtis_run --serve=PORT` / `--worker=HOST:PORT`): one
//    length-prefixed JSON frame per message (src/common/netio.h). Connection
//    EOF is an instant lease loss, so a crashed worker's cells re-issue
//    without waiting out the lease timeout.
//  - File (`memtis_run --serve=DIR` / `--worker=DIR`): a claim-file queue
//    safe on a shared filesystem. Workers claim a published (index, attempt,
//    issue) tuple by O_CREAT|O_EXCL-creating its claim file, heartbeat by
//    bumping the file's mtime, and append results to a per-worker manifest
//    (standard manifest.h lines) that the coordinator tails and merges
//    last-wins by fingerprint.

#ifndef MEMTIS_SIM_SRC_RUNNER_WORK_QUEUE_H_
#define MEMTIS_SIM_SRC_RUNNER_WORK_QUEUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/runner/supervisor.h"
#include "src/runner/sweep.h"

namespace memtis {

class JsonValue;

// One issued cell: exactly one supervised attempt of jobs[index] at global
// attempt number `attempt`. `issue` distinguishes successive leases of the
// same (index, attempt) so a revoked lease's claim can never be confused
// with its replacement.
struct WorkItem {
  size_t index = 0;
  int attempt = 0;
  uint64_t issue = 0;
  uint64_t job_timeout_ms = 0;  // per-attempt watchdog for the worker
  // Mid-cell snapshot cadence in virtual ns (0 = off). When set, the worker
  // runs the cell checkpointed (checkpoint_runner.h) with snapshots next to
  // the lease, so a re-issued lease at the same attempt resumes instead of
  // restarting. Tolerant wire field: absent on older coordinators reads as 0.
  uint64_t checkpoint_ns = 0;
  std::string fingerprint;
  JobSpec spec;
};

class WorkQueue {
 public:
  enum class ClaimStatus {
    kClaimed,  // *item holds a lease; run it, renew it, complete it
    kDone,     // the campaign is decided (or the coordinator hung up cleanly)
    kLost,     // the queue is unreachable; the worker should give up
  };

  virtual ~WorkQueue() = default;

  // Blocks until a cell is claimable, the campaign is over, or the queue is
  // unreachable.
  virtual ClaimStatus Claim(WorkItem* item) = 0;

  // Heartbeats the lease on `item`. False = revoked (the worker may finish
  // the attempt anyway; a stale result is simply ignored).
  virtual bool Renew(const WorkItem& item) = 0;

  // Reports the attempt's outcome. False = the campaign is gone.
  virtual bool Complete(const WorkItem& item,
                        const SupervisedOutcome& outcome) = 0;

  // Reports several outcomes at once — the batching path for very small
  // cells, where per-result round-trips dominate. Semantically identical to
  // Complete in a loop (and that is the default implementation): batched
  // results are merged by (fingerprint, attempt) exactly like streamed ones,
  // so the coordinator's output bytes cannot tell the difference. Backends
  // override it to amortize transport costs. False = the campaign is gone.
  virtual bool CompleteBatch(
      const std::vector<std::pair<WorkItem, SupervisedOutcome>>& batch) {
    for (const auto& [item, outcome] : batch) {
      if (!Complete(item, outcome)) {
        return false;
      }
    }
    return true;
  }
};

// Connects to a coordinator at "PORT" or "HOST:PORT" (numeric IPv4),
// retrying for up to connect_timeout_ms so workers may start first.
std::unique_ptr<WorkQueue> MakeSocketWorkQueue(const std::string& addr,
                                               const std::string& worker_name,
                                               uint64_t connect_timeout_ms,
                                               std::string* error);

// Opens a claim-file queue rooted at `dir`. Claim() waits for the queue to
// appear, and gives up (kLost) after give_up_after_idle_ms with nothing
// claimable and no DONE marker — the window in which a killed coordinator
// must be restarted with --resume semantics.
std::unique_ptr<WorkQueue> MakeFileWorkQueue(const std::string& dir,
                                             const std::string& worker_name,
                                             uint64_t give_up_after_idle_ms,
                                             std::string* error);

// ---------------------------------------------------------------------------
// Socket protocol: one JSON object per frame.
//
// worker -> coordinator:
//   {"type":"claim","worker":W}
//   {"type":"lease-renew","index":N,"attempt":A,"issue":S}
//   {"type":"result","worker":W,"index":N,"attempt":A,"issue":S,
//    "ok":B,"attempts":N,"result":{...}|"failure":{...}}
// coordinator -> worker:
//   {"type":"cell","index":N,"attempt":A,"issue":S,"job_timeout_ms":T,
//    "checkpoint_ns":C,"fingerprint":F,"spec":{...}}
//   {"type":"retry"} | {"type":"done"} | {"type":"ok"} | {"type":"revoked"}
//   {"type":"error","message":M}

struct WorkerRequest {
  enum class Kind { kClaim, kRenew, kResult };
  Kind kind = Kind::kClaim;
  std::string worker;
  size_t index = 0;
  int attempt = 0;
  uint64_t issue = 0;
  SupervisedOutcome outcome;  // kResult only
};

// Strict parse of one worker->coordinator frame. Never aborts: any malformed
// frame yields false + *error, which the coordinator turns into a dropped
// connection (surfacing as a lease loss), never a crash.
bool ParseWorkerRequest(const std::string& frame, WorkerRequest* out,
                        std::string* error);
std::string EncodeClaimRequest(const std::string& worker);
std::string EncodeRenewRequest(const WorkItem& item);
std::string EncodeResultRequest(const std::string& worker, const WorkItem& item,
                                const SupervisedOutcome& outcome);

struct CoordinatorReply {
  enum class Kind { kCell, kRetry, kDone, kOk, kRevoked, kError };
  Kind kind = Kind::kRetry;
  WorkItem item;        // kCell only
  std::string message;  // kError only
};

bool ParseCoordinatorReply(const std::string& frame, CoordinatorReply* out,
                           std::string* error);
std::string EncodeCellReply(const WorkItem& item);
std::string EncodeSimpleReply(CoordinatorReply::Kind kind);
std::string EncodeErrorReply(const std::string& message);

// The {"index","attempt","issue","job_timeout_ms","checkpoint_ns",
// "fingerprint","spec"} fields shared by cell replies and cells.jsonl lines.
// ReadWorkItemFields is tolerant of garbage (false, never aborts) and of a
// missing checkpoint_ns (older writers; reads as 0).
void WriteWorkItemFields(JsonWriter& w, const WorkItem& item);
bool ReadWorkItemFields(const JsonValue& doc, WorkItem* out);

// ---------------------------------------------------------------------------
// File backend layout under dir/:
//   cells.jsonl       one WorkItem line per cell, published atomically by
//                     rename (so a reader never sees a partial file)
//   reissue.jsonl     coordinator-appended claimable tuples
//                     {"index":N,"attempt":A,"issue":S} for issue > 0 leases
//   resolved.jsonl    {"index":N} per decided cell (workers stop claiming it)
//   claim-I-A-S       O_EXCL claim file (content: worker name); mtime is the
//                     lease heartbeat; renamed to claim-I-A-S.expired on
//                     revocation so the dead tuple can never be re-claimed
//   results-W.jsonl   per-worker result manifest (manifest.h line format)
//   DONE              created when the campaign is decided

std::string CellsFilePath(const std::string& dir);
std::string ReissueFilePath(const std::string& dir);
std::string ResolvedFilePath(const std::string& dir);
std::string DoneFilePath(const std::string& dir);
std::string ClaimFilePath(const std::string& dir, size_t index, int attempt,
                          uint64_t issue);
std::string WorkerResultsPath(const std::string& dir,
                              const std::string& worker);

// File-path-safe form of a worker name ([A-Za-z0-9_-], others become '_').
std::string SanitizeWorkerName(const std::string& name);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_RUNNER_WORK_QUEUE_H_
