#include "src/runner/sweep.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "src/audit/audit_session.h"
#include "src/common/check.h"
#include "src/common/json.h"
#include "src/memtis/policy_registry.h"
#include "src/policies/hemem.h"
#include "src/sim/engine.h"
#include "src/sim/sharded_engine.h"
#include "src/workloads/registry.h"

namespace memtis {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') {
    return fallback;
  }
  return std::atof(value);
}

}  // namespace

double BenchAccessScale() {
  static const double kScale = EnvDouble("MEMTIS_BENCH_SCALE", 1.0);
  return kScale;
}

double BenchFootprintScale() {
  static const double kScale = EnvDouble("MEMTIS_BENCH_FOOTPRINT", 0.25);
  return kScale;
}

uint64_t DefaultAccesses(uint64_t base) {
  return static_cast<uint64_t>(static_cast<double>(base) * BenchAccessScale());
}

int BenchSeeds() {
  static const int kSeeds =
      std::max(1, static_cast<int>(EnvDouble("MEMTIS_BENCH_SEEDS", 1.0)));
  return kSeeds;
}

JobResult RunJob(const JobSpec& spec) {
  const double footprint_scale =
      spec.footprint_scale > 0.0 ? spec.footprint_scale : BenchFootprintScale();
  auto workload =
      MakeWorkload(spec.benchmark, footprint_scale, spec.workload_seed_offset());
  const uint64_t footprint = workload->footprint_bytes();
  const uint64_t fast =
      spec.fast_bytes_override != 0
          ? spec.fast_bytes_override
          : static_cast<uint64_t>(static_cast<double>(footprint) * spec.fast_ratio);
  const uint64_t capacity = footprint + footprint / 2;

  std::unique_ptr<TieringPolicy> policy;
  if (spec.memtis_tweak != nullptr &&
      spec.system.rfind("memtis", 0) == 0) {
    MemtisConfig cfg = MemtisConfig::ScaledDefaults(footprint, fast);
    if (spec.system == "memtis-ns") {
      cfg.enable_split = false;
      cfg.enable_collapse = false;
    }
    policy = std::make_unique<MemtisPolicy>(spec.memtis_tweak(cfg));
  } else {
    policy = MakePolicy(spec.system, footprint, fast);
  }

  const MachineConfig machine =
      spec.cxl ? MakeCxlMachine(fast, capacity) : MakeNvmMachine(fast, capacity);
  EngineOptions opts;
  opts.max_accesses = spec.accesses != 0 ? spec.accesses : DefaultAccesses();
  opts.snapshot_interval_ns = spec.snapshot_interval_ns;
  opts.cpu_contention = spec.cpu_contention;
  opts.seed = spec.engine_seed;
  if (!spec.faults.empty()) {
    std::string fault_error;
    SIM_CHECK(FaultPlan::Parse(spec.faults, &opts.faults, &fault_error) &&
              "bad JobSpec::faults spec (validate at the CLI)");
  }

  if (spec.shards > 1) {
    // Sharded-by-range execution: N independent sub-simulations over
    // workload slices (ShardSlice aborts inside ShardedEngine::Run when the
    // benchmark is not range-shardable), merged deterministically. Policies
    // are built per shard, sized for the shard's machine slice; per-policy
    // introspection (MEMTIS/HeMem stats) is per-shard state and stays out of
    // the merged result.
    const uint32_t n = spec.shards;
    const MachineConfig slice = ShardedEngine::SliceMachine(machine, n);
    const uint64_t fast_slice = slice.mem.fast_frames * kPageSize;
    const uint64_t footprint_slice = footprint / n;
    PolicyFactory factory = [&]() -> std::unique_ptr<TieringPolicy> {
      if (spec.memtis_tweak != nullptr && spec.system.rfind("memtis", 0) == 0) {
        MemtisConfig cfg = MemtisConfig::ScaledDefaults(footprint_slice, fast_slice);
        if (spec.system == "memtis-ns") {
          cfg.enable_split = false;
          cfg.enable_collapse = false;
        }
        return std::make_unique<MemtisPolicy>(spec.memtis_tweak(cfg));
      }
      return MakePolicy(spec.system, footprint_slice, fast_slice);
    };
    std::vector<std::unique_ptr<AuditSession>> shard_audit(n);
    ShardedOptions sopts;
    sopts.shards = n;
    sopts.threads = 1;  // RunJobs already parallelizes across cells
    sopts.engine = opts;
    sopts.audit_for_shard = [&](uint32_t i) -> EngineObserver* {
      if (spec.audit) {
        AuditSessionOptions audit_opts;
        audit_opts.record_epochs = spec.audit_epoch_interval_ns != 0;
        audit_opts.epochs.interval_ns =
            spec.audit_epoch_interval_ns != 0 ? spec.audit_epoch_interval_ns
                                              : audit_opts.epochs.interval_ns;
        shard_audit[i] = std::make_unique<AuditSession>(audit_opts);
      } else {
        shard_audit[i] = MakeEnvAuditSession();
      }
      return shard_audit[i] != nullptr ? shard_audit[i].get() : nullptr;
    };
    ShardedEngine sharded(machine, factory, sopts);
    JobResult out;
    out.metrics = sharded.Run(*workload);
    out.footprint_bytes = footprint;
    out.fast_bytes = fast;
    if (spec.audit) {
      // Shard-ordered merge: counters summed, recorded violations and epoch
      // samples concatenated in shard order.
      out.audited = true;
      for (uint32_t i = 0; i < n; ++i) {
        const AuditReport& r = shard_audit[i]->report();
        out.audit_report.ticks_audited += r.ticks_audited;
        out.audit_report.checks_run += r.checks_run;
        out.audit_report.violations_total += r.violations_total;
        out.audit_report.violations.insert(out.audit_report.violations.end(),
                                           r.violations.begin(),
                                           r.violations.end());
        if (const EpochRecorder* recorder = shard_audit[i]->recorder()) {
          out.epoch_interval_ns = recorder->options().interval_ns;
          out.epochs_recorded_total += recorder->recorded_total();
          // samples() materializes a fresh vector per call: grab it once
          // (begin/end of two separate temporaries is UB).
          const std::vector<EpochSample> shard_epochs = recorder->samples();
          out.epochs.insert(out.epochs.end(), shard_epochs.begin(),
                            shard_epochs.end());
        }
      }
    }
    return out;
  }

  // Auditing: the spec's request wins (collect mode); otherwise the
  // MEMTIS_AUDIT env hook may install an abort-on-violation session. One
  // session per job — RunJob stays thread-safe.
  std::unique_ptr<AuditSession> audit;
  if (spec.audit) {
    AuditSessionOptions audit_opts;
    audit_opts.record_epochs = spec.audit_epoch_interval_ns != 0;
    audit_opts.epochs.interval_ns =
        spec.audit_epoch_interval_ns != 0 ? spec.audit_epoch_interval_ns
                                          : audit_opts.epochs.interval_ns;
    audit = std::make_unique<AuditSession>(audit_opts);
  } else {
    audit = MakeEnvAuditSession();
  }
  opts.audit = audit.get();
  Engine engine(machine, *policy, opts);

  JobResult out;
  out.metrics = engine.Run(*workload);
  if (spec.audit) {
    out.audited = true;
    out.audit_report = audit->report();
    if (const EpochRecorder* recorder = audit->recorder()) {
      out.epoch_interval_ns = recorder->options().interval_ns;
      out.epochs_recorded_total = recorder->recorded_total();
      out.epochs = recorder->samples();
    }
  }
  out.footprint_bytes = footprint;
  out.fast_bytes = fast;
  if (auto* memtis = dynamic_cast<MemtisPolicy*>(policy.get())) {
    out.is_memtis = true;
    out.memtis_stats = memtis->stats();
    out.mean_ehr = memtis->mean_ehr();
    out.sampler_cpu =
        out.metrics.cpu.core_share(DaemonKind::kSampler, out.metrics.app_ns);
    out.pebs_load_period = memtis->sampler().period(SampleType::kLlcLoadMiss);
    out.pebs_store_period = memtis->sampler().period(SampleType::kStore);
  }
  if (auto* hemem = dynamic_cast<HeMemPolicy*>(policy.get())) {
    out.hemem_overalloc_bytes = hemem->over_allocated_bytes();
  }
  return out;
}

JobSpec BaselineSpec(JobSpec spec) {
  spec.system = "all-capacity";
  spec.memtis_tweak = nullptr;
  return spec;
}

std::vector<JobSpec> ExpandJobs(const SweepSpec& sweep) {
  SIM_CHECK(!sweep.systems.empty() || sweep.include_baseline);
  SIM_CHECK(!sweep.benchmarks.empty());
  SIM_CHECK(!sweep.fast_ratios.empty());
  SIM_CHECK(!sweep.machines.empty());
  SIM_CHECK(sweep.seeds >= 1);

  std::vector<JobSpec> jobs;
  for (const std::string& benchmark : sweep.benchmarks) {
    for (const std::string& machine : sweep.machines) {
      SIM_CHECK((machine == "nvm" || machine == "cxl") && "unknown machine type");
      for (double ratio : sweep.fast_ratios) {
        for (int seed = 0; seed < sweep.seeds; ++seed) {
          JobSpec cell;
          cell.benchmark = benchmark;
          cell.cxl = machine == "cxl";
          cell.fast_ratio = ratio;
          cell.base_seed = sweep.base_seed;
          cell.seed_index = static_cast<uint32_t>(seed);
          cell.engine_seed = sweep.engine_seed;
          cell.accesses = sweep.accesses;
          cell.cpu_contention = sweep.cpu_contention;
          cell.snapshot_interval_ns = sweep.snapshot_interval_ns;
          cell.footprint_scale = sweep.footprint_scale;
          cell.fast_bytes_override = sweep.fast_bytes_override;
          cell.audit = sweep.audit;
          cell.audit_epoch_interval_ns = sweep.audit_epoch_interval_ns;
          cell.faults = sweep.faults;
          cell.shards = sweep.shards;
          if (sweep.include_baseline) {
            JobSpec baseline = cell;
            baseline.system = "all-capacity";
            jobs.push_back(std::move(baseline));
          }
          for (const std::string& system : sweep.systems) {
            JobSpec job = cell;
            job.system = system;
            jobs.push_back(std::move(job));
          }
        }
      }
    }
  }
  return jobs;
}

std::vector<JobResult> RunJobs(const std::vector<JobSpec>& jobs, ThreadPool& pool,
                               const ProgressFn& progress) {
  std::vector<JobResult> results(jobs.size());
  std::mutex progress_mu;
  size_t done = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    pool.Submit([&jobs, &results, &progress, &progress_mu, &done, i] {
      results[i] = RunJob(jobs[i]);
      if (progress != nullptr) {
        std::lock_guard<std::mutex> lock(progress_mu);
        progress(++done, jobs.size(), i);
      }
    });
  }
  pool.Wait();
  return results;
}

SweepRun RunSweep(const SweepSpec& sweep, ThreadPool& pool,
                  const ProgressFn& progress) {
  SweepRun run;
  run.jobs = ExpandJobs(sweep);
  run.results = RunJobs(run.jobs, pool, progress);
  return run;
}

std::string CellKey(const JobSpec& spec) {
  std::string key = spec.system;
  key += '|';
  key += spec.benchmark;
  key += '|';
  key += spec.machine_name();
  key += '|';
  key += JsonWriter::FormatDouble(spec.fast_ratio);
  return key;
}

}  // namespace memtis
