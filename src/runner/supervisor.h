// Crash isolation for sweep cells: runs one RunJob in a forked child with a
// wall-clock watchdog, streaming the JobResult back over a pipe as JSON.
//
// The supervision contract (see DESIGN.md "Job supervision"):
//
//  - Isolation. Everything RunJob can do wrong — SIGSEGV, a SIM_CHECK abort,
//    an audit-session abort, a runaway loop — downs only the forked child.
//    The parent turns the corpse into a structured JobFailure{kind, exit
//    status, signal, stderr tail, reproducer} and the sweep continues.
//  - Fidelity. A supervised success is byte-identical to an in-process run:
//    the child serializes the complete JobResult (metrics + timeline + audit
//    report + epochs) with the lossless codec in job_codec.h, so sinks cannot
//    tell the difference. tests/runner_test.cc holds this property.
//  - Deadlines. job_timeout_ms > 0 arms a watchdog; on overrun the child is
//    SIGKILLed and the failure kind is kTimeout.
//  - Deterministic retries. Up to max_attempts attempts per cell; attempt k
//    reruns the cell with engine_seed' = DeriveSeedOffset(engine_seed, k) —
//    the same documented scheme that spaces workload seeds — so every retry
//    is reproducible from (spec, attempt) alone and the failure's reproducer
//    command line pins the exact attempt seed. Backoff between attempts is
//    deterministic too: backoff_base_ms << (attempt - 1), capped.
//  - SIM_CHECK reporting. The child installs a check-failure hook
//    (src/common/check.h) that writes the failing expression through the
//    result pipe before aborting, so JobFailure::check_expr carries the
//    precise invariant even when stderr is noisy.
//
// Test-only injection hooks, honoured inside the supervised child (never in
// in-process runs):
//
//   MEMTIS_CRASH_CELL=<fingerprint>[:N]  SIM_CHECK-fail the cell with that
//       JobFingerprint on attempts 0..N-1 (default: every attempt). With N=1
//       and max_attempts >= 2 a cell crashes once and then succeeds —
//       deterministically — which is how the retry tests are built.
//   MEMTIS_HANG_CELL=<fingerprint>       spin in the named cell until the
//       watchdog kills it (a bounded safety cap exits eventually if no
//       deadline was armed).

#ifndef MEMTIS_SIM_SRC_RUNNER_SUPERVISOR_H_
#define MEMTIS_SIM_SRC_RUNNER_SUPERVISOR_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/runner/sweep.h"

namespace memtis {

// Structured description of one failed (or never-run) sweep cell.
struct JobFailure {
  FailureKind kind = FailureKind::kNone;
  int exit_status = 0;        // kExit: the child's exit code
  int signal = 0;             // kCrash/kTimeout: the terminating signal
  std::string check_expr;     // failing SIM_CHECK expression, when reported
  std::string stderr_tail;    // last bytes of the child's stderr
  std::string reproducer_cmdline;  // memtis_run invocation reproducing it
  std::string message;        // one-line human summary
};

struct SupervisorOptions {
  // Wall-clock deadline per attempt in milliseconds; 0 disarms the watchdog.
  uint64_t job_timeout_ms = 0;
  // Total attempts per cell (>= 1). Only recoverable failures (see
  // src/common/status.h) are retried.
  int max_attempts = 1;
  // Deterministic exponential backoff before attempt k > 0:
  // min(backoff_base_ms << (k - 1), 10'000) ms. 0 disables sleeping.
  uint64_t backoff_base_ms = 0;
  // How much of the child's stderr to keep for JobFailure::stderr_tail.
  size_t stderr_tail_bytes = 4096;
  // Checkpointing (src/runner/checkpoint_runner.h). When checkpoint_ns > 0
  // and checkpoint_dir is set, each child runs RunJobCheckpointed: it writes
  // a snapshot of the full simulation state every checkpoint_ns of virtual
  // time under checkpoint_dir, keyed by (fingerprint, attempt). After a
  // SIGKILL-class death (watchdog timeout, or a crash whose signal is
  // SIGKILL) the retry re-runs the SAME attempt, which restores from the
  // newest valid snapshot and finishes byte-identical to an uninterrupted
  // run. All other failures advance the attempt as before — the new attempt
  // seed makes old snapshots stale and they are ignored. Cells whose policy
  // or workload cannot checkpoint fail up front with kInvalidSpec.
  uint64_t checkpoint_ns = 0;
  std::string checkpoint_dir;
  // Bound on same-attempt resume retries across the whole call (a snapshot
  // that keeps dying mid-restore must not loop forever; once exhausted the
  // failure falls back to the ordinary advance-the-attempt path).
  int max_resume_retries = 8;
  // Global index of the first attempt this call runs (local runs leave it 0).
  // The distributed coordinator (src/runner/coordinator.h) sets it when
  // re-issuing a failed cell to another worker, so attempt k of this call is
  // global attempt first_attempt + k everywhere it matters: the derived
  // engine seed, the MEMTIS_CRASH_CELL/MEMTIS_HANG_CELL attempt window, the
  // failure reproducer, and SupervisedOutcome::attempts — which therefore
  // counts from global attempt 0, not from this call. That is what makes a
  // cell that fails on worker A and succeeds on worker B byte-identical to
  // the same retry happening inside one local RunJobSupervised call.
  int first_attempt = 0;
};

struct SupervisedOutcome {
  bool ok = false;
  int attempts = 0;    // attempts actually made (>= 1)
  JobResult result;    // valid when ok
  JobFailure failure;  // kind != kNone when !ok
};

// The engine seed attempt `attempt` of a cell runs with (attempt 0 is the
// spec's own seed; documented alongside DeriveSeedOffset in sweep.h).
inline constexpr uint64_t AttemptEngineSeed(uint64_t engine_seed, int attempt) {
  return DeriveSeedOffset(engine_seed, static_cast<uint32_t>(attempt));
}

// Runs one cell under supervision, retrying per `options`. Thread-safe: safe
// to call concurrently from multiple ThreadPool workers (each call forks its
// own child).
SupervisedOutcome RunJobSupervised(const JobSpec& spec,
                                   const SupervisorOptions& options);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_RUNNER_SUPERVISOR_H_
