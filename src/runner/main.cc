// memtis_run: CLI front-end of the experiment runner.
//
// Describes a sweep (cartesian product over systems x benchmarks x ratios x
// machines x seeds) with flags and/or a key=value file, executes it on a
// ThreadPool, and writes JSON or CSV results to stdout or a file. Output is
// byte-identical for any --threads value (see src/runner/sweep.h).
//
// Examples:
//   memtis_run --systems=memtis,hemem --benchmarks=btree,silo --seeds=2
//   memtis_run --ratios=1:2,1:8 --baseline --format=csv --out=sweep.csv
//   memtis_run --config=sweep.conf --threads=8
//   memtis_run --smoke        # tiny sweep used as a ctest smoke case

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "src/fault/fault.h"
#include "src/memtis/policy_registry.h"
#include "src/runner/coordinator.h"
#include "src/runner/job_codec.h"
#include "src/runner/resilient.h"
#include "src/runner/work_queue.h"
#include "src/runner/worker.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"
#include "src/snapshot/snapshot_file.h"
#include "src/tenant/colocate.h"
#include "src/workloads/registry.h"

namespace memtis {
namespace {

volatile std::sig_atomic_t g_interrupted = 0;

struct CliOptions {
  SweepSpec sweep;
  SinkOptions sink;
  ExecOptions exec;
  std::string format = "json";  // "json" | "csv"
  std::string out;              // empty or "-" -> stdout
  std::string audit_out;        // --audit-json sink (empty = none)
  std::string colocate;         // --colocate tenant spec (empty = sweep mode)
  std::string serve;            // --serve PORT or queue dir (empty = local)
  std::string worker;           // --worker coordinator addr or queue dir
  std::string worker_name;      // --worker-name (default: w<pid>)
  std::string port_file;        // --port-file target for --serve=0
  uint64_t lease_timeout_ms = 10'000;
  int result_batch = 1;         // --result-batch: worker-side result batching
  int threads = 0;              // 0 -> ThreadPool::DefaultThreadCount()
  bool quiet = false;
  bool smoke = false;
  bool list_cells = false;
};

// True when any resilience feature is in play: execution goes through
// RunJobsResilient (or a distributed campaign) and output uses the
// outcome-aware schema_version 4 sinks.
bool ResilientMode(const CliOptions& cli) {
  return NeedsSupervision(cli.exec) || !cli.exec.manifest_path.empty() ||
         cli.exec.keep_going || !cli.serve.empty();
}

// "PORT" (all digits, <= 65535) selects the socket backend; anything else is
// a claim-file queue directory.
bool ParsePortSpec(const std::string& text, uint16_t* port) {
  if (text.empty() || text.size() > 5) {
    return false;
  }
  unsigned long value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<unsigned long>(c - '0');
  }
  if (value > 65535) {
    return false;
  }
  *port = static_cast<uint16_t>(value);
  return true;
}

void PrintUsage(std::FILE* to = stdout) {
  std::fprintf(
      to,
      "memtis_run — parallel MEMTIS-sim experiment sweeps\n"
      "\n"
      "Sweep axes (comma-separated lists; cartesian product):\n"
      "  --systems=a,b,..       tiering systems (default: the Fig. 5 set)\n"
      "  --benchmarks=a,b,..    workloads (default: the 8 paper benchmarks)\n"
      "  --ratios=1:2,1:8,..    fast:capacity ratios, A:B or a plain fraction\n"
      "  --machines=nvm,cxl     capacity-tier kinds (default: nvm)\n"
      "  --seeds=N              repetitions per cell (default: MEMTIS_BENCH_SEEDS)\n"
      "\n"
      "Per-job knobs:\n"
      "  --base-seed=N          seed-derivation base (default 0)\n"
      "  --accesses=N           access budget per run (default: scaled 3e6)\n"
      "  --footprint-scale=X    workload footprint multiplier\n"
      "  --fast-bytes=N         fixed fast-tier bytes (overrides --ratios)\n"
      "  --snapshot-ns=N        timeline snapshot interval (0 = off)\n"
      "  --shards=N             split each run into N independent sharded\n"
      "                         sub-simulations with a deterministic merge\n"
      "                         (requires a range-shardable benchmark such as\n"
      "                         \"stream\"; default 1 = monolithic)\n"
      "  --no-contention        disable daemon-CPU contention accounting\n"
      "  --baseline             add an all-capacity baseline per cell\n"
      "\n"
      "Execution and output:\n"
      "  --threads=N            pool size (default: hardware_concurrency or\n"
      "                         MEMTIS_RUNNER_THREADS)\n"
      "  --format=json|csv      output format (default json)\n"
      "  --indent=N             JSON indent, 0 = compact (default 2)\n"
      "  --timelines            include per-job timelines in JSON\n"
      "  --out=FILE             write results to FILE (default stdout)\n"
      "  --config=FILE          read key=value lines (keys as above, no --);\n"
      "                         later flags override earlier ones\n"
      "  --quiet                suppress the progress line\n"
      "  --smoke                run a tiny fixed sweep (ctest tier-1 case)\n"
      "  --help                 this text\n"
      "\n"
      "Resilient sweeps (see README \"Resilient sweeps\"):\n"
      "  --supervise            run each cell in a forked child: a crash or\n"
      "                         SIM_CHECK abort downs only that cell\n"
      "  --job-timeout-ms=N     per-attempt wall-clock deadline; on overrun\n"
      "                         the child is SIGKILLed (implies --supervise)\n"
      "  --retries=N            retry a failed cell up to N times with a\n"
      "                         deterministic attempt-derived engine seed\n"
      "                         (implies --supervise)\n"
      "  --backoff-ms=N         exponential backoff base between attempts\n"
      "                         (default 100; deterministic, capped at 10s)\n"
      "  --resume=FILE          JSONL checkpoint manifest: completed cells are\n"
      "                         appended as they finish and skipped on rerun\n"
      "  --keep-going           keep running after a cell fails (default:\n"
      "                         first failure cancels the queued cells)\n"
      "  --checkpoint-ns=N      snapshot each cell's full simulation state\n"
      "                         every N virtual ns (implies --supervise); a\n"
      "                         SIGKILL-class death resumes the same attempt\n"
      "                         from the newest valid snapshot, byte-identical\n"
      "                         to an uninterrupted run\n"
      "  --checkpoint-dir=DIR   where snapshots live (default memtis-ckpt;\n"
      "                         workers on a file queue default to the queue\n"
      "                         directory, so any worker can resume any lease)\n"
      "  --engine-seed=N        engine RNG seed for every cell (default 42)\n"
      "  --list-cells           print each cell's fingerprint and canonical\n"
      "                         spec, then exit (for MEMTIS_CRASH_CELL etc.)\n"
      "\n"
      "Distributed campaigns (see README \"Distributed campaigns\"):\n"
      "  --serve=PORT|DIR       coordinate the sweep for remote workers:\n"
      "                         loopback TCP on PORT (0 = kernel-assigned,\n"
      "                         see --port-file), or a claim-file queue in\n"
      "                         DIR (safe on a shared filesystem). The merged\n"
      "                         output is byte-identical to a single-host\n"
      "                         supervised run; combine with --resume for a\n"
      "                         restartable coordinator.\n"
      "  --worker=ADDR|DIR      run cells for a coordinator at [HOST:]PORT\n"
      "                         (numeric IPv4, loopback by default) or for a\n"
      "                         claim-file queue in DIR; exits once the\n"
      "                         campaign is decided\n"
      "  --worker-name=NAME     stable worker name for logs and per-worker\n"
      "                         results files (default: w<pid>)\n"
      "  --lease-timeout-ms=N   re-issue a cell when its worker's lease goes\n"
      "                         this long without a heartbeat (default 10000)\n"
      "  --port-file=FILE       with --serve: write the bound port to FILE\n"
      "                         once the coordinator is listening (atomic:\n"
      "                         written to a temp file, then renamed)\n"
      "  --result-batch=N       with --worker: report very small cells'\n"
      "                         results in batches of up to N (default 1 =\n"
      "                         stream each result; merge is byte-identical)\n"
      "\n"
      "Auditing (see README \"Auditing and epoch telemetry\"):\n"
      "  --audit                run every job under the invariant auditor;\n"
      "                         exit 1 if any invariant is violated\n"
      "  --audit-json=FILE      write per-job audit reports + epoch telemetry\n"
      "                         to FILE (implies --audit; \"-\" = stdout)\n"
      "  --audit-epoch-ns=N     epoch telemetry cadence in virtual ns\n"
      "                         (default 1000000 with --audit-json; 0 = off)\n"
      "\n"
      "Co-location (see README \"Co-location and tenants\"):\n"
      "  --colocate=SPEC        run one colocated job over N tenants plus a\n"
      "                         solo baseline per tenant, and report each\n"
      "                         tenant's interference slowdown. SPEC is\n"
      "                         ;-separated tenants of ,-separated key=value\n"
      "                         fields (first field = the workload): name,\n"
      "                         quota (fast-tier fraction), weight, arrive,\n"
      "                         depart (virtual ns), accesses, phase-period,\n"
      "                         phase-low, scale. Uses the first --systems,\n"
      "                         --ratios, and --machines entry; resilient\n"
      "                         sweep flags do not apply.\n"
      "                         e.g. --colocate=\"silo,quota=0.5;pagerank\"\n"
      "\n"
      "Fault injection (see README \"Fault injection\"):\n"
      "  --faults=SPEC          inject faults into every job. SPEC is \"storm\"\n"
      "                         (dense preset), \"none\", or comma-separated\n"
      "                         site=prob[@start-end][/max] entries over sites\n"
      "                         alloc-fail migrate-abort sample-drop\n"
      "                         budget-starve tier-shrink, plus seed=N,\n"
      "                         shrink-step=F, shrink-cap=F\n"
      "                         e.g. --faults=migrate-abort=0.1,seed=7\n");
}

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(csv);
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

// "A:B" -> A/(A+B) (so 1:2 -> 1/3, 2:1 -> 2/3); otherwise a plain fraction.
bool ParseRatio(const std::string& text, double* out) {
  const size_t colon = text.find(':');
  if (colon != std::string::npos) {
    const double a = std::atof(text.substr(0, colon).c_str());
    const double b = std::atof(text.substr(colon + 1).c_str());
    if (a <= 0.0 || b < 0.0) {
      return false;
    }
    *out = a / (a + b);
    return true;
  }
  *out = std::atof(text.c_str());
  return *out > 0.0 && *out <= 1.0;
}

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  for (const std::string& n : names) {
    if (n == name) {
      return true;
    }
  }
  return false;
}

bool ApplyOption(const std::string& key, const std::string& value, CliOptions* cli);

bool ApplyConfigFile(const std::string& path, CliOptions* cli) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "memtis_run: cannot read config file %s\n", path.c_str());
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trim leading whitespace; skip blanks and comments.
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    const size_t eq = line.find('=', start);
    if (eq == std::string::npos) {
      std::fprintf(stderr, "memtis_run: %s:%d: expected key=value\n", path.c_str(),
                   lineno);
      return false;
    }
    std::string key = line.substr(start, eq - start);
    key.erase(key.find_last_not_of(" \t") + 1);
    std::string value = line.substr(eq + 1);
    const size_t vstart = value.find_first_not_of(" \t");
    value = vstart == std::string::npos ? "" : value.substr(vstart);
    value.erase(value.find_last_not_of(" \t\r") + 1);
    if (!ApplyOption(key, value, cli)) {
      std::fprintf(stderr, "memtis_run: %s:%d: bad option %s=%s\n", path.c_str(),
                   lineno, key.c_str(), value.c_str());
      return false;
    }
  }
  return true;
}

bool ApplyOption(const std::string& key, const std::string& value, CliOptions* cli) {
  if (key == "systems") {
    cli->sweep.systems = SplitList(value);
    return !cli->sweep.systems.empty();
  }
  if (key == "benchmarks") {
    cli->sweep.benchmarks = SplitList(value);
    return !cli->sweep.benchmarks.empty();
  }
  if (key == "ratios") {
    cli->sweep.fast_ratios.clear();
    for (const std::string& item : SplitList(value)) {
      double ratio = 0.0;
      if (!ParseRatio(item, &ratio)) {
        std::fprintf(stderr, "memtis_run: bad ratio %s\n", item.c_str());
        return false;
      }
      cli->sweep.fast_ratios.push_back(ratio);
    }
    return !cli->sweep.fast_ratios.empty();
  }
  if (key == "machines") {
    cli->sweep.machines = SplitList(value);
    return !cli->sweep.machines.empty();
  }
  if (key == "seeds") {
    cli->sweep.seeds = std::atoi(value.c_str());
    return cli->sweep.seeds >= 1;
  }
  if (key == "base-seed") {
    cli->sweep.base_seed = std::strtoull(value.c_str(), nullptr, 10);
    return true;
  }
  if (key == "accesses") {
    cli->sweep.accesses = std::strtoull(value.c_str(), nullptr, 10);
    return true;
  }
  if (key == "footprint-scale") {
    cli->sweep.footprint_scale = std::atof(value.c_str());
    return cli->sweep.footprint_scale > 0.0;
  }
  if (key == "fast-bytes") {
    cli->sweep.fast_bytes_override = std::strtoull(value.c_str(), nullptr, 10);
    return true;
  }
  if (key == "snapshot-ns") {
    cli->sweep.snapshot_interval_ns = std::strtoull(value.c_str(), nullptr, 10);
    return true;
  }
  if (key == "shards") {
    cli->sweep.shards =
        static_cast<uint32_t>(std::strtoull(value.c_str(), nullptr, 10));
    return cli->sweep.shards >= 1;
  }
  if (key == "no-contention") {
    cli->sweep.cpu_contention = false;
    return true;
  }
  if (key == "baseline") {
    cli->sweep.include_baseline = true;
    return true;
  }
  if (key == "threads") {
    cli->threads = std::atoi(value.c_str());
    return cli->threads >= 0;
  }
  if (key == "format") {
    cli->format = value;
    return value == "json" || value == "csv";
  }
  if (key == "indent") {
    cli->sink.indent = std::atoi(value.c_str());
    return cli->sink.indent >= 0;
  }
  if (key == "timelines") {
    cli->sink.timelines = true;
    return true;
  }
  if (key == "out") {
    cli->out = value;
    return true;
  }
  if (key == "quiet") {
    cli->quiet = true;
    return true;
  }
  if (key == "audit") {
    cli->sweep.audit = true;
    return true;
  }
  if (key == "audit-json") {
    cli->sweep.audit = true;
    cli->audit_out = value.empty() ? "-" : value;
    if (cli->sweep.audit_epoch_interval_ns == 0) {
      cli->sweep.audit_epoch_interval_ns = 1'000'000;
    }
    return true;
  }
  if (key == "audit-epoch-ns") {
    cli->sweep.audit_epoch_interval_ns = std::strtoull(value.c_str(), nullptr, 10);
    return true;
  }
  if (key == "colocate") {
    ColocateSpec spec;
    std::string error;
    if (!ColocateSpec::Parse(value, &spec, &error)) {
      std::fprintf(stderr, "memtis_run: bad --colocate spec: %s\n", error.c_str());
      return false;
    }
    cli->colocate = value;
    return true;
  }
  if (key == "faults") {
    FaultPlan plan;
    std::string error;
    if (!FaultPlan::Parse(value, &plan, &error)) {
      std::fprintf(stderr, "memtis_run: bad --faults spec: %s\n", error.c_str());
      return false;
    }
    cli->sweep.faults = value;
    return true;
  }
  if (key == "supervise") {
    cli->exec.supervise = true;
    return true;
  }
  if (key == "job-timeout-ms") {
    cli->exec.job_timeout_ms = std::strtoull(value.c_str(), nullptr, 10);
    cli->exec.supervise = true;
    return cli->exec.job_timeout_ms > 0;
  }
  if (key == "retries") {
    const int retries = std::atoi(value.c_str());
    if (retries < 0) {
      return false;
    }
    cli->exec.max_attempts = retries + 1;
    cli->exec.supervise = true;
    return true;
  }
  if (key == "backoff-ms") {
    cli->exec.backoff_base_ms = std::strtoull(value.c_str(), nullptr, 10);
    return true;
  }
  if (key == "resume") {
    cli->exec.manifest_path = value;
    return !value.empty();
  }
  if (key == "keep-going") {
    cli->exec.keep_going = true;
    return true;
  }
  if (key == "checkpoint-ns") {
    cli->exec.checkpoint_ns = std::strtoull(value.c_str(), nullptr, 10);
    cli->exec.supervise = true;
    return cli->exec.checkpoint_ns > 0;
  }
  if (key == "checkpoint-dir") {
    cli->exec.checkpoint_dir = value;
    return !value.empty();
  }
  if (key == "result-batch") {
    cli->result_batch = std::atoi(value.c_str());
    return cli->result_batch >= 1;
  }
  if (key == "engine-seed") {
    cli->sweep.engine_seed = std::strtoull(value.c_str(), nullptr, 10);
    return true;
  }
  if (key == "list-cells") {
    cli->list_cells = true;
    return true;
  }
  if (key == "serve") {
    cli->serve = value;
    return !value.empty();
  }
  if (key == "worker") {
    cli->worker = value;
    return !value.empty();
  }
  if (key == "worker-name") {
    cli->worker_name = value;
    return !value.empty();
  }
  if (key == "lease-timeout-ms") {
    cli->lease_timeout_ms = std::strtoull(value.c_str(), nullptr, 10);
    return cli->lease_timeout_ms > 0;
  }
  if (key == "port-file") {
    cli->port_file = value;
    return !value.empty();
  }
  if (key == "config") {
    return ApplyConfigFile(value, cli);
  }
  std::fprintf(stderr, "memtis_run: unknown option '%s'\n", key.c_str());
  return false;
}

// --colocate mode: one colocated job + per-tenant solo baselines instead of a
// sweep. Shares the first entry of each sweep axis; see RunColocation.
int ColocateMain(const CliOptions& cli) {
  ColocateSpec spec;
  std::string error;
  if (!ColocateSpec::Parse(cli.colocate, &spec, &error)) {
    std::fprintf(stderr, "memtis_run: bad --colocate spec: %s\n", error.c_str());
    return 2;
  }
  JobSpec base;
  base.system = cli.sweep.systems.empty() ? "memtis" : cli.sweep.systems[0];
  if (!Contains(KnownPolicyNames(), base.system)) {
    std::fprintf(stderr, "memtis_run: unknown system '%s'\n", base.system.c_str());
    return 2;
  }
  base.fast_ratio = cli.sweep.fast_ratios[0];
  base.cxl = !cli.sweep.machines.empty() && cli.sweep.machines[0] == "cxl";
  base.accesses = cli.sweep.accesses;
  base.cpu_contention = cli.sweep.cpu_contention;
  base.snapshot_interval_ns = cli.sweep.snapshot_interval_ns;
  base.fast_bytes_override = cli.sweep.fast_bytes_override;
  base.footprint_scale = cli.sweep.footprint_scale;
  base.base_seed = cli.sweep.base_seed;
  base.engine_seed = cli.sweep.engine_seed;
  base.audit_epoch_interval_ns = cli.sweep.audit_epoch_interval_ns;
  base.faults = cli.sweep.faults;

  ThreadPool pool(cli.threads);
  if (!cli.quiet) {
    std::fprintf(stderr,
                 "memtis_run: colocating %zu tenants (%s) + solo baselines\n",
                 spec.tenants.size(), base.system.c_str());
  }
  const ColocateResult result = RunColocation(spec, base, pool);

  const std::string data = cli.format == "csv"
                               ? ColocationToCsv(spec, result)
                               : ColocationToJson(spec, base, result, cli.sink);
  if (!WriteResultFile(cli.out, data)) {
    return 1;
  }
  const uint64_t violations = result.audit_report.violations_total;
  if (!cli.quiet || violations != 0) {
    std::fprintf(stderr, "memtis_run: audit %s (%" PRIu64 " violations)\n",
                 violations == 0 ? "clean" : "FAILED", violations);
  }
  return violations == 0 ? 0 : 1;
}

// --worker mode: pull cells from a coordinator until the campaign is decided.
// The sweep axes are ignored — the coordinator ships each cell's full spec.
int WorkerMain(const CliOptions& cli) {
  WorkerOptions options;
  options.name = cli.worker_name.empty() ? "w" + std::to_string(getpid())
                                         : cli.worker_name;
  options.job_timeout_ms = cli.exec.job_timeout_ms;
  options.result_batch = cli.result_batch;
  if (const char* kill = std::getenv("MEMTIS_KILL_WORKER")) {
    // Chaos hook: exit hard (no result, no FIN) while holding the Nth lease.
    options.kill_after_cells = std::atoi(kill);
    options.kill_hard = true;
  }

  uint16_t port = 0;
  std::string error;
  std::unique_ptr<WorkQueue> queue;
  const bool socket_backend = ParsePortSpec(cli.worker, &port) ||
                              cli.worker.find(':') != std::string::npos;
  if (socket_backend) {
    // Coordinator may still be starting: retry the connect for a while.
    queue = MakeSocketWorkQueue(cli.worker, options.name, 15'000, &error);
  } else {
    // Give up only after the queue has been idle long enough for a crashed
    // coordinator to have been restarted (--serve on the same directory).
    queue = MakeFileWorkQueue(cli.worker, options.name, 120'000, &error);
  }
  if (queue == nullptr) {
    std::fprintf(stderr, "memtis_run: %s\n", error.c_str());
    return 1;
  }
  // Snapshots for checkpointed cells: next to the lease for the file backend
  // (the queue directory is shared, so any worker resumes any re-issued
  // lease), a local default for sockets unless --checkpoint-dir says where.
  options.checkpoint_dir = cli.exec.checkpoint_dir;
  if (options.checkpoint_dir.empty()) {
    options.checkpoint_dir = socket_backend ? "memtis-ckpt" : cli.worker;
  }
  // Graceful drain: SIGINT/SIGTERM lets the in-flight cell finish and report
  // before the worker exits 130 (supervised children ignore SIGINT, so the
  // terminal's process-group delivery cannot kill a cell mid-run).
  g_interrupted = 0;
  std::signal(SIGINT, [](int) { g_interrupted = 1; });
  std::signal(SIGTERM, [](int) { g_interrupted = 1; });
  options.drain = [] { return g_interrupted != 0; };

  const int rc = RunWorker(*queue, options);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  if (!cli.quiet) {
    const char* what = rc == 0   ? "campaign decided"
                       : rc == 3 ? "drained (interrupted)"
                                 : "gave up (queue unreachable)";
    std::fprintf(stderr, "memtis_run: worker %s: %s\n", options.name.c_str(),
                 what);
  }
  if (rc == 3) {
    return 130;
  }
  return rc == 0 ? 0 : 1;
}

bool ParseArgs(int argc, char** argv, CliOptions* cli) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    }
    if (arg == "--smoke") {
      cli->smoke = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "memtis_run: unexpected argument '%s'\n", arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    const std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (!ApplyOption(key, value, cli)) {
      return false;
    }
  }
  return true;
}

bool Validate(const SweepSpec& sweep) {
  for (const std::string& system : sweep.systems) {
    if (!Contains(KnownPolicyNames(), system)) {
      std::fprintf(stderr, "memtis_run: unknown system '%s' (known:", system.c_str());
      for (const std::string& name : KnownPolicyNames()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, ")\n");
      return false;
    }
  }
  for (const std::string& benchmark : sweep.benchmarks) {
    if (!Contains(KnownBenchmarks(), benchmark)) {
      std::fprintf(stderr, "memtis_run: unknown benchmark '%s' (known:",
                   benchmark.c_str());
      for (const std::string& name : KnownBenchmarks()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, ")\n");
      return false;
    }
    // Catch non-shardable benchmarks at the CLI (exit 2) instead of letting
    // RunJob abort mid-sweep inside ShardedEngine.
    if (sweep.shards > 1 &&
        MakeWorkload(benchmark)->ShardSlice(0, sweep.shards) == nullptr) {
      std::fprintf(stderr,
                   "memtis_run: benchmark '%s' is not range-shardable; "
                   "--shards=N needs one that is (e.g. stream)\n",
                   benchmark.c_str());
      return false;
    }
  }
  for (const std::string& machine : sweep.machines) {
    if (machine != "nvm" && machine != "cxl") {
      std::fprintf(stderr, "memtis_run: unknown machine '%s' (known: nvm cxl)\n",
                   machine.c_str());
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  CliOptions cli;
  cli.sweep.seeds = BenchSeeds();
  if (!ParseArgs(argc, argv, &cli)) {
    std::fprintf(stderr, "\n");
    PrintUsage(stderr);
    return 2;
  }
  if ((!cli.serve.empty() && !cli.worker.empty()) ||
      (!cli.colocate.empty() && (!cli.serve.empty() || !cli.worker.empty()))) {
    std::fprintf(stderr,
                 "memtis_run: --serve, --worker, and --colocate are mutually "
                 "exclusive\n");
    return 2;
  }
  if (!cli.worker.empty()) {
    return WorkerMain(cli);
  }
  if (cli.smoke) {
    // Fixed tiny sweep exercising two systems, two workloads, and the
    // baseline path; finishes in seconds so tier-1 ctest can afford it.
    // Audit, fault, and seed flags survive the reset so --smoke --audit-json,
    // --smoke --faults=storm, and the supervised smoke_resume case work.
    const bool audit = cli.sweep.audit;
    const uint64_t audit_epoch_ns = cli.sweep.audit_epoch_interval_ns;
    const std::string faults = cli.sweep.faults;
    const uint64_t engine_seed = cli.sweep.engine_seed;
    cli.sweep = SweepSpec{};
    cli.sweep.audit = audit;
    cli.sweep.audit_epoch_interval_ns = audit_epoch_ns;
    cli.sweep.faults = faults;
    cli.sweep.engine_seed = engine_seed;
    cli.sweep.systems = {"memtis", "autonuma"};
    cli.sweep.benchmarks = {"btree", "silo"};
    cli.sweep.fast_ratios = {1.0 / 3.0};
    cli.sweep.seeds = 1;
    cli.sweep.accesses = 60'000;
    cli.sweep.include_baseline = true;
    cli.sink.indent = 0;
    if (cli.out.empty()) {
      cli.out = "-";
    }
  }
  if (!cli.colocate.empty()) {
    return ColocateMain(cli);
  }
  if (cli.sweep.systems.empty()) {
    cli.sweep.systems = ComparisonSystems();
  }
  if (cli.sweep.benchmarks.empty()) {
    cli.sweep.benchmarks = StandardBenchmarks();
  }
  if (!Validate(cli.sweep)) {
    return 2;
  }

  const std::vector<JobSpec> jobs = ExpandJobs(cli.sweep);
  if (cli.list_cells) {
    for (const JobSpec& job : jobs) {
      std::printf("%s %s\n", JobFingerprint(job).c_str(),
                  CanonicalJobSpec(job).c_str());
    }
    return 0;
  }

  std::map<std::string, ManifestEntry> preloaded;
  if (!cli.exec.manifest_path.empty()) {
    ManifestLoadStats stats;
    std::string error;
    if (!LoadManifest(cli.exec.manifest_path, &preloaded, &stats, &error)) {
      std::fprintf(stderr, "memtis_run: %s\n", error.c_str());
      return 2;
    }
    if (!cli.quiet && stats.lines_total > 0) {
      std::fprintf(stderr,
                   "memtis_run: resume: %zu manifest entr%s"
                   " (%zu line%s skipped)\n",
                   stats.entries, stats.entries == 1 ? "y" : "ies",
                   stats.lines_skipped, stats.lines_skipped == 1 ? "" : "s");
    }
  }

  ProgressFn progress;
  if (!cli.quiet) {
    progress = [&jobs](size_t done, size_t total, size_t index) {
      std::fprintf(stderr, "\r[%zu/%zu] %s/%s", done, total,
                   jobs[index].system.c_str(), jobs[index].benchmark.c_str());
      if (done == total) {
        std::fprintf(stderr, "\n");
      }
      std::fflush(stderr);
    };
  }

  // SIGINT drains in-flight cells, flushes the manifest, and still writes the
  // partial report (supervised children ignore SIGINT so the terminal's
  // process-group delivery cannot kill them mid-cell).
  g_interrupted = 0;
  std::signal(SIGINT, [](int) { g_interrupted = 1; });
  cli.exec.cancelled = [] { return g_interrupted != 0; };

  // Mid-cell checkpointing needs a snapshot directory: default one and make
  // sure it exists up front, so the first snapshot write cannot fail on a
  // missing directory deep inside a supervised child.
  if (cli.exec.checkpoint_ns > 0) {
    if (cli.exec.checkpoint_dir.empty()) {
      cli.exec.checkpoint_dir = "memtis-ckpt";
    }
    if (mkdir(cli.exec.checkpoint_dir.c_str(), 0777) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "memtis_run: cannot create checkpoint dir %s: %s\n",
                   cli.exec.checkpoint_dir.c_str(), std::strerror(errno));
      return 2;
    }
  }

  std::string manifest_error;
  std::vector<CellOutcome> outcomes;
  if (!cli.serve.empty()) {
    CampaignOptions campaign;
    campaign.max_attempts = cli.exec.max_attempts;
    campaign.lease_timeout_ms = cli.lease_timeout_ms;
    campaign.job_timeout_ms = cli.exec.job_timeout_ms;
    campaign.checkpoint_ns = cli.exec.checkpoint_ns;
    campaign.keep_going = cli.exec.keep_going;
    campaign.manifest_path = cli.exec.manifest_path;
    campaign.cancelled = cli.exec.cancelled;

    CampaignStats stats;
    std::string serve_error;
    uint16_t port = 0;
    if (ParsePortSpec(cli.serve, &port)) {
      const size_t cell_count = jobs.size();
      const auto on_listening = [&cli, cell_count](uint16_t bound) {
        if (!cli.port_file.empty()) {
          // Atomic (temp + rename): a reader polling for the file never sees
          // it empty or half-written — it appears complete or not at all.
          std::string write_error;
          if (!WriteFileAtomic(cli.port_file, std::to_string(bound) + "\n",
                               &write_error)) {
            std::fprintf(stderr, "memtis_run: cannot write %s: %s\n",
                         cli.port_file.c_str(), write_error.c_str());
          }
        }
        if (!cli.quiet) {
          std::fprintf(stderr,
                       "memtis_run: coordinating %zu cells on 127.0.0.1:%u\n",
                       cell_count, bound);
        }
      };
      outcomes = ServeSocketCampaign(jobs, campaign, port, on_listening,
                                     preloaded, progress, &stats, &serve_error,
                                     &manifest_error);
    } else {
      if (!cli.quiet) {
        std::fprintf(stderr, "memtis_run: coordinating %zu cells via queue %s\n",
                     jobs.size(), cli.serve.c_str());
      }
      outcomes = ServeFileCampaign(jobs, cli.serve, campaign, preloaded,
                                   progress, &stats, &serve_error,
                                   &manifest_error);
    }
    if (!serve_error.empty()) {
      std::fprintf(stderr, "memtis_run: %s\n", serve_error.c_str());
      return 1;
    }
    if (!cli.quiet) {
      std::fprintf(stderr,
                   "memtis_run: campaign: %" PRIu64 " leases issued, %" PRIu64
                   " lost, %" PRIu64 " retries, %" PRIu64 " stale results\n",
                   stats.issues, stats.leases_lost, stats.retries,
                   stats.stale_results);
    }
  } else {
    ThreadPool pool(cli.threads);
    if (!cli.quiet) {
      std::fprintf(stderr, "memtis_run: %zu jobs on %d threads\n", jobs.size(),
                   pool.thread_count());
    }
    outcomes = RunJobsResilient(jobs, pool, cli.exec, preloaded, progress,
                                &manifest_error);
  }
  std::signal(SIGINT, SIG_DFL);
  if (!manifest_error.empty()) {
    std::fprintf(stderr, "memtis_run: WARNING: checkpointing disabled: %s\n",
                 manifest_error.c_str());
  }
  if (g_interrupted != 0) {
    std::fprintf(stderr, "\nmemtis_run: interrupted — reporting partial results\n");
  }

  const bool resilient = ResilientMode(cli);
  if (!resilient && g_interrupted != 0) {
    // The v1 schema has no way to mark missing cells; don't write a document
    // that silently mixes real and never-run results.
    return 130;
  }
  size_t cells_missing = 0;
  uint64_t violations = 0;
  for (const CellOutcome& outcome : outcomes) {
    if (!outcome.ok) {
      ++cells_missing;
    } else {
      violations += outcome.result.audit_report.violations_total;
    }
  }

  std::string data;
  if (resilient) {
    data = cli.format == "csv" ? SweepToCsv(jobs, outcomes)
                               : SweepToJson(cli.sweep, jobs, outcomes, cli.sink);
  } else {
    // Legacy mode: every cell ran in-process (a crash would have taken the
    // whole process), so the schema_version 3 document keeps its legacy shape.
    std::vector<JobResult> results;
    results.reserve(outcomes.size());
    for (const CellOutcome& outcome : outcomes) {
      results.push_back(outcome.result);
    }
    data = cli.format == "csv" ? SweepToCsv(jobs, results)
                               : SweepToJson(cli.sweep, jobs, results, cli.sink);
  }
  if (!WriteResultFile(cli.out, data)) {
    return 1;
  }

  if (cli.sweep.audit) {
    if (!cli.audit_out.empty() &&
        !WriteResultFile(cli.audit_out, AuditToJson(jobs, outcomes, cli.sink))) {
      return 1;
    }
    if (!cli.quiet || violations != 0) {
      std::fprintf(stderr, "memtis_run: audit %s (%" PRIu64 " violations)\n",
                   violations == 0 ? "clean" : "FAILED", violations);
    }
  }

  const std::string failures = FailureSummary(jobs, outcomes);
  if (!failures.empty()) {
    std::fprintf(stderr, "memtis_run: %s", failures.c_str());
  }
  if (g_interrupted != 0) {
    return 130;
  }
  if (cells_missing != 0 || violations != 0) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace memtis

int main(int argc, char** argv) { return memtis::Main(argc, argv); }
