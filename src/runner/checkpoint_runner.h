// Checkpointed cell execution: RunJob with a periodic snapshot of the
// complete simulation state, and restore-on-restart.
//
// The contract (see DESIGN.md "Snapshot format and checkpointed cells"):
//
//  - Fidelity. A checkpointed run that is never interrupted is byte-identical
//    to RunJob(spec): the checkpoint hook fires at Step() boundaries and is
//    observation-only. A run that is SIGKILLed at ANY point and restarted
//    restores from the newest valid snapshot and finishes with byte-identical
//    metrics, audit document, and sink bytes (tests/snapshot_test.cc).
//  - Coverage. Checkpointing is opt-in per policy/workload via the
//    SupportsCheckpoint/SaveState/LoadState hooks. CheckpointSupported(spec)
//    reports up front whether a cell can checkpoint; unsupported cells refuse
//    with a structured kInvalidSpec failure instead of writing snapshots that
//    could not restore faithfully.
//  - Staleness. Snapshots are keyed by (cell fingerprint, attempt): a re-run
//    under a different attempt (different derived engine seed) ignores old
//    snapshots and starts clean; only a same-attempt restart resumes.
//  - Safety. Corrupt, torn, or version-skewed snapshot files are detected by
//    the CRC-guarded envelope (src/snapshot/snapshot_file.h), quarantined,
//    and skipped; a payload that decodes but does not match the rebuilt
//    engine (config drift, layout skew) is discarded and the run starts
//    fresh. Every failure mode degrades to recomputation — never to a wrong
//    result.

#ifndef MEMTIS_SIM_SRC_RUNNER_CHECKPOINT_RUNNER_H_
#define MEMTIS_SIM_SRC_RUNNER_CHECKPOINT_RUNNER_H_

#include <cstdint>
#include <string>

#include "src/runner/sweep.h"

namespace memtis {

// True when every layer of the cell can serialize itself: the policy and the
// workload both opt in via SupportsCheckpoint, the cell is unsharded (shard
// sub-engines have no snapshot plumbing), and the spec carries no opaque
// memtis_tweak hook (not representable in a snapshot key). `why`, when
// non-null, receives a one-line reason on refusal.
bool CheckpointSupported(const JobSpec& spec, std::string* why = nullptr);

// Where RunJobCheckpointed keeps (and looks for) its snapshots.
struct CheckpointContext {
  // Virtual nanoseconds between snapshots (must be > 0).
  uint64_t interval_ns = 0;
  // SnapshotStore base path; slots land at base + ".s0"/".s1".
  std::string snapshot_base;
  // Snapshot identity: the cell fingerprint and the global attempt index.
  // The spec's engine_seed must already be the attempt-derived seed.
  std::string fingerprint;
  uint32_t attempt = 0;
  // Out (optional): set true when the run restored from a snapshot.
  bool* resumed = nullptr;
};

// RunJob(spec) with checkpointing armed. Requires CheckpointSupported(spec).
// Restores from the newest valid same-(fingerprint, attempt) snapshot when
// one exists, else starts clean; either way writes a snapshot every
// interval_ns of virtual time.
//
// Test-only hook (checkpointed supervised children only):
//   MEMTIS_KILL_AFTER_CHECKPOINTS=N  a fresh (non-resumed) run raises
//       SIGKILL immediately after writing its Nth snapshot; resumed runs
//       never self-kill. This is how the kill/resume differential tests
//       produce a deterministic mid-run SIGKILL.
JobResult RunJobCheckpointed(const JobSpec& spec, const CheckpointContext& ctx);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_RUNNER_CHECKPOINT_RUNNER_H_
