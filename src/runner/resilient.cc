#include "src/runner/resilient.h"

#include <atomic>
#include <mutex>

#include "src/runner/job_codec.h"

namespace memtis {

bool NeedsSupervision(const ExecOptions& exec) {
  return exec.supervise || exec.job_timeout_ms > 0 || exec.max_attempts > 1 ||
         exec.checkpoint_ns > 0;
}

std::vector<CellOutcome> RunJobsResilient(
    const std::vector<JobSpec>& jobs, ThreadPool& pool, const ExecOptions& exec,
    const std::map<std::string, ManifestEntry>& preloaded,
    const ProgressFn& progress, std::string* manifest_error) {
  std::vector<CellOutcome> outcomes(jobs.size());
  std::vector<std::string> fingerprints;
  fingerprints.reserve(jobs.size());
  for (const JobSpec& job : jobs) {
    fingerprints.push_back(JobFingerprint(job));
  }

  ManifestWriter writer;
  if (!exec.manifest_path.empty()) {
    std::string open_error;
    if (!writer.Open(exec.manifest_path, &open_error) &&
        manifest_error != nullptr) {
      *manifest_error = open_error;  // run anyway; checkpointing is lost
    }
  }

  const bool supervise = NeedsSupervision(exec);
  SupervisorOptions sup;
  sup.job_timeout_ms = exec.job_timeout_ms;
  sup.max_attempts = exec.max_attempts < 1 ? 1 : exec.max_attempts;
  sup.backoff_base_ms = exec.backoff_base_ms;
  sup.checkpoint_ns = exec.checkpoint_ns;
  sup.checkpoint_dir = exec.checkpoint_dir;

  std::mutex progress_mu;
  size_t done = 0;
  const size_t total = jobs.size();
  const auto report = [&](size_t index) {
    if (progress != nullptr) {
      std::lock_guard<std::mutex> lock(progress_mu);
      progress(++done, total, index);
    } else {
      std::lock_guard<std::mutex> lock(progress_mu);
      ++done;
    }
  };

  // Resume pass: trust only ok manifest entries; failed cells re-run.
  for (size_t i = 0; i < jobs.size(); ++i) {
    const auto it = preloaded.find(fingerprints[i]);
    if (it == preloaded.end() || !it->second.ok) {
      continue;
    }
    CellOutcome& out = outcomes[i];
    out.ok = true;
    out.from_manifest = true;
    out.attempts = it->second.attempts;
    out.result = it->second.result;
    report(i);
  }

  std::atomic<bool> abort_requested{false};
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (outcomes[i].from_manifest) {
      continue;
    }
    pool.Submit([&, i] {
      if (abort_requested.load(std::memory_order_relaxed) ||
          (exec.cancelled != nullptr && exec.cancelled())) {
        // Leave the outcome untouched; the post-Wait pass marks it
        // kCancelled. Cancel once so the queue drains instead of spinning
        // through every remaining cell's header.
        if (!abort_requested.exchange(true)) {
          pool.RequestCancel();
        }
        return;
      }
      SupervisedOutcome run;
      if (supervise) {
        run = RunJobSupervised(jobs[i], sup);
      } else {
        run.result = RunJob(jobs[i]);
        run.ok = true;
        run.attempts = 1;
      }
      if (writer.is_open()) {
        writer.Append(fingerprints[i], jobs[i], run);
      }
      CellOutcome& out = outcomes[i];
      out.ok = run.ok;
      out.ran = true;
      out.attempts = run.attempts;
      out.result = std::move(run.result);
      out.failure = std::move(run.failure);
      report(i);
      if (!run.ok && !exec.keep_going &&
          !abort_requested.exchange(true)) {
        pool.RequestCancel();
      }
    });
  }
  pool.Wait();
  writer.Close();

  // Cells dropped by fail-fast or SIGINT: structured "never ran" records with
  // a reproducer, so a report can still point at every missing cell.
  for (size_t i = 0; i < jobs.size(); ++i) {
    CellOutcome& out = outcomes[i];
    if (out.ran || out.from_manifest) {
      continue;
    }
    out.failure.kind = FailureKind::kCancelled;
    out.failure.message = "cell never ran (sweep cancelled)";
    out.failure.reproducer_cmdline = ReproducerCmdline(jobs[i], 0);
  }
  return outcomes;
}

}  // namespace memtis
