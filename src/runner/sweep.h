// Declarative experiment sweeps: JobSpec (one simulation cell), SweepSpec (a
// cartesian product of cells), and the parallel executor that runs them on a
// ThreadPool.
//
// JobSpec is the promoted, generalized form of the old bench/bench_util.h
// RunSpec: every figure/table bench and the memtis_run CLI describe runs with
// it, so one code path sizes machines, builds policies, and derives seeds.
//
// Seed derivation (the single documented scheme — nothing else may offset
// seeds): a job's workload seed is
//
//     workload_default_seed + DeriveSeedOffset(base_seed, seed_index)
//     DeriveSeedOffset(base, index) = base + index * kSeedStride
//
// `base_seed` names the experiment family (0 for the paper reproductions);
// `seed_index` enumerates the repetitions averaged per cell. The stride keeps
// repetitions far apart in seed space and reproduces the historical
// `index * 1000` offsets bit-for-bit at base_seed == 0. The engine's own RNG
// (placement dither) is seeded independently by `engine_seed` so changing the
// workload instantiation never silently changes engine-side randomness.
//
// Supervised retries reuse the same scheme on the engine axis: attempt k of a
// cell runs with DeriveSeedOffset(engine_seed, k) (attempt 0 is the spec's
// own seed), so a retried cell is reproducible from (spec, attempt) alone —
// see src/runner/supervisor.h.
//
// Determinism: RunJob is a pure function of its JobSpec (plus the
// MEMTIS_BENCH_* env scale knobs). RunJobs writes each result into the slot
// pre-assigned by job index, so sweep output is byte-identical for any thread
// count and any completion order.

#ifndef MEMTIS_SIM_SRC_RUNNER_SWEEP_H_
#define MEMTIS_SIM_SRC_RUNNER_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/audit/epoch_recorder.h"
#include "src/memtis/memtis_policy.h"
#include "src/runner/thread_pool.h"
#include "src/sim/metrics.h"

namespace memtis {

// Environment scale knobs shared by every sweep (see the README's "Running
// sweeps" section): MEMTIS_BENCH_SCALE multiplies access budgets,
// MEMTIS_BENCH_FOOTPRINT multiplies workload footprints, MEMTIS_BENCH_SEEDS
// sets the default repetitions-per-cell.
double BenchAccessScale();
double BenchFootprintScale();
uint64_t DefaultAccesses(uint64_t base = 3'000'000);
int BenchSeeds();

inline constexpr uint64_t kSeedStride = 1000;

constexpr uint64_t DeriveSeedOffset(uint64_t base_seed, uint32_t seed_index) {
  return base_seed + static_cast<uint64_t>(seed_index) * kSeedStride;
}

// One simulation cell: a (system, benchmark, machine, sizing, seed) tuple.
struct JobSpec {
  std::string system;
  std::string benchmark;
  double fast_ratio = 1.0 / 3.0;  // fast tier as a fraction of the footprint
  uint64_t accesses = 0;          // 0 -> DefaultAccesses()
  bool cxl = false;               // capacity tier: false = NVM, true = CXL
  bool cpu_contention = true;
  uint64_t snapshot_interval_ns = 0;
  uint64_t fast_bytes_override = 0;  // nonzero: fixed fast tier (Fig. 6)
  double footprint_scale = 0.0;      // 0 -> BenchFootprintScale()
  // Seed plumbing — see the file comment. Do not add ad-hoc offsets.
  uint64_t base_seed = 0;
  uint32_t seed_index = 0;
  uint64_t engine_seed = 42;
  // Auditing (src/audit/): when set, the job runs under the invariant auditor
  // (violations collected into JobResult::audit_report) and, if
  // audit_epoch_interval_ns != 0, records per-epoch telemetry at that cadence.
  // Auditing is observation-only — metrics are byte-identical either way
  // (tests/differential_test.cc). Independent of the MEMTIS_AUDIT env hook,
  // which additionally audits every job in abort-on-violation mode.
  bool audit = false;
  uint64_t audit_epoch_interval_ns = 0;
  // Sharded-by-range execution (src/sim/sharded_engine.h): > 1 splits the run
  // into that many independent sub-simulations over workload slices, merged
  // deterministically. Requires a range-shardable benchmark (one whose
  // Workload::ShardSlice returns non-null — e.g. "stream"); RunJob aborts
  // loudly otherwise. 1 = the plain monolithic engine, byte-identical to
  // before the field existed (and omitted from the job fingerprint).
  uint32_t shards = 1;
  // Fault-injection spec (FaultPlan::Parse grammar; "" or "none" = fault-free,
  // "storm" = the dense preset). Parsed into EngineOptions::faults by RunJob;
  // a malformed spec aborts the job loudly — validate at the CLI instead.
  std::string faults;
  // Optional hook to tweak the MEMTIS config (sensitivity sweeps); applied
  // only when the system is a MEMTIS variant. A std::function so sweeps can
  // capture per-cell state (e.g. Fig. 13's interval multipliers).
  std::function<MemtisConfig(MemtisConfig)> memtis_tweak;

  uint64_t workload_seed_offset() const {
    return DeriveSeedOffset(base_seed, seed_index);
  }
  const char* machine_name() const { return cxl ? "cxl" : "nvm"; }
};

// Everything a sink or figure needs from one finished job.
struct JobResult {
  Metrics metrics;
  uint64_t footprint_bytes = 0;
  uint64_t fast_bytes = 0;
  // MEMTIS introspection (valid when the system is a MEMTIS variant).
  bool is_memtis = false;
  MemtisPolicy::Stats memtis_stats;
  double mean_ehr = 0.0;
  double sampler_cpu = 0.0;
  uint64_t pebs_load_period = 0;
  uint64_t pebs_store_period = 0;
  // HeMem introspection.
  uint64_t hemem_overalloc_bytes = 0;
  // Audit outputs (valid when the spec requested auditing).
  bool audited = false;
  AuditReport audit_report;
  uint64_t epoch_interval_ns = 0;
  uint64_t epochs_recorded_total = 0;
  std::vector<EpochSample> epochs;
};

// Runs one cell to completion. Thread-safe: builds its own workload, policy,
// and engine, touching no shared mutable state.
JobResult RunJob(const JobSpec& spec);

// The matching all-capacity (all-NVM/all-CXL + THP) baseline of `spec`.
JobSpec BaselineSpec(JobSpec spec);

// A cartesian sweep: jobs = benchmarks x machines x fast_ratios x seeds x
// systems (plus one baseline cell per seed when include_baseline is set).
struct SweepSpec {
  std::vector<std::string> systems;
  std::vector<std::string> benchmarks;
  std::vector<double> fast_ratios = {1.0 / 3.0};
  std::vector<std::string> machines = {"nvm"};  // "nvm" and/or "cxl"
  int seeds = 1;  // repetitions per cell: seed_index 0 .. seeds-1
  uint64_t base_seed = 0;
  uint64_t engine_seed = 42;  // propagated to every cell's JobSpec::engine_seed
  uint64_t accesses = 0;
  bool cpu_contention = true;
  uint64_t snapshot_interval_ns = 0;
  double footprint_scale = 0.0;
  uint64_t fast_bytes_override = 0;
  // Also run the "all-capacity" baseline once per (benchmark, machine, ratio,
  // seed) so sinks can report normalized performance.
  bool include_baseline = false;
  // Audit every job (see JobSpec::audit / audit_epoch_interval_ns).
  bool audit = false;
  uint64_t audit_epoch_interval_ns = 0;
  // Fault-injection spec applied to every job (see JobSpec::faults).
  std::string faults;
  // Sharded execution applied to every job (see JobSpec::shards). Requires
  // every benchmark in the sweep to be range-shardable when > 1.
  uint32_t shards = 1;
};

// Expands the product in a deterministic order: for each benchmark, machine,
// ratio, and seed_index, the baseline (if requested) followed by each system.
std::vector<JobSpec> ExpandJobs(const SweepSpec& sweep);

// Called after each job completes (serialized by an internal mutex):
// (jobs finished so far, total jobs, index of the job that just finished).
using ProgressFn = std::function<void(size_t, size_t, size_t)>;

// Executes the jobs on the pool; results[i] corresponds to jobs[i].
std::vector<JobResult> RunJobs(const std::vector<JobSpec>& jobs, ThreadPool& pool,
                               const ProgressFn& progress = nullptr);

struct SweepRun {
  std::vector<JobSpec> jobs;
  std::vector<JobResult> results;  // parallel to jobs
};

SweepRun RunSweep(const SweepSpec& sweep, ThreadPool& pool,
                  const ProgressFn& progress = nullptr);

// Stable grouping key for aggregation across seeds:
// "system|benchmark|machine|ratio" (ratio via JsonWriter::FormatDouble).
std::string CellKey(const JobSpec& spec);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_RUNNER_SWEEP_H_
