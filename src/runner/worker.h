// Worker side of distributed campaign execution: `memtis_run --worker=ADDR`.
//
// RunWorker pulls cells from a WorkQueue, runs each under the existing
// supervisor as exactly one attempt at the cell's global attempt number
// (SupervisorOptions::first_attempt), heartbeats the lease from a side
// thread, and streams the fingerprint-keyed outcome back. The worker holds
// no campaign state: killing it at any point only costs the leases it held,
// which the coordinator re-issues deterministically.

#ifndef MEMTIS_SIM_SRC_RUNNER_WORKER_H_
#define MEMTIS_SIM_SRC_RUNNER_WORKER_H_

#include <cstdint>
#include <string>

#include "src/runner/work_queue.h"

namespace memtis {

struct WorkerOptions {
  std::string name = "worker";
  uint64_t job_timeout_ms = 0;     // fallback when the cell carries none
  uint64_t renew_interval_ms = 1'000;

  // Chaos hooks (tests / MEMTIS_KILL_WORKER): exit after completing this many
  // cells while holding the next claimed lease. kill_hard uses _exit so no
  // result, renewal, or FIN ever reaches the coordinator.
  int kill_after_cells = -1;       // < 0 = never
  bool kill_hard = false;

  // Chaos hook: sit on the first claimed lease without renewing for this long
  // before running it — long enough and the lease expires under us, making
  // our eventual result stale.
  uint64_t hang_first_claim_ms = 0;
};

// Runs until the queue reports done (0), unreachable (1), or a chaos hook
// fired a soft kill (2). A cell whose spec does not hash to the advertised
// fingerprint is reported as kInvalidSpec rather than run.
int RunWorker(WorkQueue& queue, const WorkerOptions& options);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_RUNNER_WORKER_H_
