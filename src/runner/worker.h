// Worker side of distributed campaign execution: `memtis_run --worker=ADDR`.
//
// RunWorker pulls cells from a WorkQueue, runs each under the existing
// supervisor as exactly one attempt at the cell's global attempt number
// (SupervisorOptions::first_attempt), heartbeats the lease from a side
// thread, and streams the fingerprint-keyed outcome back. The worker holds
// no campaign state: killing it at any point only costs the leases it held,
// which the coordinator re-issues deterministically.

#ifndef MEMTIS_SIM_SRC_RUNNER_WORKER_H_
#define MEMTIS_SIM_SRC_RUNNER_WORKER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/runner/work_queue.h"

namespace memtis {

struct WorkerOptions {
  std::string name = "worker";
  uint64_t job_timeout_ms = 0;     // fallback when the cell carries none
  uint64_t renew_interval_ms = 1'000;

  // Where cells that carry a checkpoint_ns write their snapshots (created on
  // first use). Workers sharing this directory — always true for the file
  // backend, where it defaults to the queue directory itself — resume each
  // other's re-issued leases from the newest valid snapshot. Must be
  // non-empty when the campaign checkpoints: the fallback of silently
  // running such cells unsnapshotted would still produce the right bytes,
  // but would lose the resume guarantee without saying so.
  std::string checkpoint_dir;

  // Graceful drain (SIGINT/SIGTERM): polled between cells. Once true the
  // worker finishes and reports the in-flight cell, flushes any batched
  // results, and returns 3 instead of claiming further work.
  std::function<bool()> drain;

  // Report results in batches of up to this many for very small cells
  // (RunWorker's kBatchableAccesses), amortizing per-result round-trips.
  // Large cells and the final cell before an exit flush the batch. 1 = every
  // result streams immediately (the default, and the chaos-test behaviour).
  int result_batch = 1;

  // Chaos hooks (tests / MEMTIS_KILL_WORKER): exit after completing this many
  // cells while holding the next claimed lease. kill_hard uses _exit so no
  // result, renewal, or FIN ever reaches the coordinator.
  int kill_after_cells = -1;       // < 0 = never
  bool kill_hard = false;

  // Chaos hook: sit on the first claimed lease without renewing for this long
  // before running it — long enough and the lease expires under us, making
  // our eventual result stale.
  uint64_t hang_first_claim_ms = 0;
};

// Runs until the queue reports done (0), unreachable (1), a chaos hook fired
// a soft kill (2), or a requested drain completed (3). A cell whose spec
// does not hash to the advertised fingerprint is reported as kInvalidSpec
// rather than run.
int RunWorker(WorkQueue& queue, const WorkerOptions& options);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_RUNNER_WORKER_H_
