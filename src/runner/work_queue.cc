#include "src/runner/work_queue.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/common/json.h"
#include "src/common/json_parse.h"
#include "src/common/netio.h"
#include "src/runner/job_codec.h"
#include "src/runner/manifest.h"

namespace memtis {
namespace {

constexpr int kClaimRetrySleepMs = 60;
constexpr int kSocketReplyTimeoutMs = 30'000;

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void WriteOutcomeFields(JsonWriter& w, const SupervisedOutcome& outcome) {
  w.Field("ok", outcome.ok);
  w.Field("attempts", outcome.attempts);
  if (outcome.ok) {
    w.Key("result");
    WriteJobResultJson(w, outcome.result);
  } else {
    w.Key("failure");
    WriteJobFailureJson(w, outcome.failure);
  }
}

bool ReadOutcomeFields(const JsonValue& doc, SupervisedOutcome* out,
                       std::string* error) {
  out->ok = doc.GetBool("ok");
  out->attempts = static_cast<int>(doc.GetInt("attempts"));
  if (out->attempts < 1) {
    *error = "result frame without a positive attempts count";
    return false;
  }
  if (out->ok) {
    const JsonValue* result = doc.Find("result");
    if (result == nullptr || !ReadJobResultJson(*result, &out->result)) {
      *error = "ok result frame without a parseable result";
      return false;
    }
  } else {
    const JsonValue* failure = doc.Find("failure");
    if (failure == nullptr || !ReadJobFailureJson(*failure, &out->failure)) {
      *error = "failed result frame without a parseable failure";
      return false;
    }
  }
  return true;
}

}  // namespace

void WriteWorkItemFields(JsonWriter& w, const WorkItem& item) {
  w.Field("index", static_cast<uint64_t>(item.index));
  w.Field("attempt", item.attempt);
  w.Field("issue", item.issue);
  w.Field("job_timeout_ms", item.job_timeout_ms);
  if (item.checkpoint_ns != 0) {
    w.Field("checkpoint_ns", item.checkpoint_ns);
  }
  w.Field("fingerprint", item.fingerprint);
  w.Key("spec");
  WriteJobSpecJson(w, item.spec);
}

bool ReadWorkItemFields(const JsonValue& doc, WorkItem* out) {
  if (!doc.is_object() || doc.Find("index") == nullptr) {
    return false;
  }
  out->index = static_cast<size_t>(doc.GetUint("index"));
  out->attempt = static_cast<int>(doc.GetInt("attempt"));
  out->issue = doc.GetUint("issue");
  out->job_timeout_ms = doc.GetUint("job_timeout_ms");
  out->checkpoint_ns = doc.GetUint("checkpoint_ns");  // absent -> 0
  out->fingerprint = doc.GetString("fingerprint");
  const JsonValue* spec = doc.Find("spec");
  return spec != nullptr && ReadJobSpecJson(*spec, &out->spec) &&
         !out->fingerprint.empty();
}

bool ParseWorkerRequest(const std::string& frame, WorkerRequest* out,
                        std::string* error) {
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  JsonValue doc;
  if (!JsonValue::Parse(frame, &doc, err)) {
    return false;
  }
  if (!doc.is_object()) {
    *err = "request frame is not a JSON object";
    return false;
  }
  const std::string type = doc.GetString("type");
  *out = WorkerRequest();
  if (type == "claim") {
    out->kind = WorkerRequest::Kind::kClaim;
    out->worker = doc.GetString("worker");
    return true;
  }
  if (type == "lease-renew" || type == "result") {
    if (doc.Find("index") == nullptr || doc.Find("attempt") == nullptr ||
        doc.Find("issue") == nullptr) {
      *err = "'" + type + "' frame missing index/attempt/issue";
      return false;
    }
    out->index = static_cast<size_t>(doc.GetUint("index"));
    out->attempt = static_cast<int>(doc.GetInt("attempt"));
    out->issue = doc.GetUint("issue");
    if (type == "lease-renew") {
      out->kind = WorkerRequest::Kind::kRenew;
      return true;
    }
    out->kind = WorkerRequest::Kind::kResult;
    out->worker = doc.GetString("worker");
    return ReadOutcomeFields(doc, &out->outcome, err);
  }
  *err = "unknown request type '" + type + "'";
  return false;
}

std::string EncodeClaimRequest(const std::string& worker) {
  std::string out;
  JsonWriter w(&out, 0);
  w.BeginObject();
  w.Field("type", "claim");
  w.Field("worker", worker);
  w.EndObject();
  return out;
}

std::string EncodeRenewRequest(const WorkItem& item) {
  std::string out;
  JsonWriter w(&out, 0);
  w.BeginObject();
  w.Field("type", "lease-renew");
  w.Field("index", static_cast<uint64_t>(item.index));
  w.Field("attempt", item.attempt);
  w.Field("issue", item.issue);
  w.EndObject();
  return out;
}

std::string EncodeResultRequest(const std::string& worker, const WorkItem& item,
                                const SupervisedOutcome& outcome) {
  std::string out;
  JsonWriter w(&out, 0);
  w.BeginObject();
  w.Field("type", "result");
  w.Field("worker", worker);
  w.Field("index", static_cast<uint64_t>(item.index));
  w.Field("attempt", item.attempt);
  w.Field("issue", item.issue);
  WriteOutcomeFields(w, outcome);
  w.EndObject();
  return out;
}

bool ParseCoordinatorReply(const std::string& frame, CoordinatorReply* out,
                           std::string* error) {
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  JsonValue doc;
  if (!JsonValue::Parse(frame, &doc, err)) {
    return false;
  }
  if (!doc.is_object()) {
    *err = "reply frame is not a JSON object";
    return false;
  }
  const std::string type = doc.GetString("type");
  *out = CoordinatorReply();
  if (type == "cell") {
    out->kind = CoordinatorReply::Kind::kCell;
    if (!ReadWorkItemFields(doc, &out->item)) {
      *err = "cell reply with an unusable work item";
      return false;
    }
    return true;
  }
  if (type == "retry") {
    out->kind = CoordinatorReply::Kind::kRetry;
    return true;
  }
  if (type == "done") {
    out->kind = CoordinatorReply::Kind::kDone;
    return true;
  }
  if (type == "ok") {
    out->kind = CoordinatorReply::Kind::kOk;
    return true;
  }
  if (type == "revoked") {
    out->kind = CoordinatorReply::Kind::kRevoked;
    return true;
  }
  if (type == "error") {
    out->kind = CoordinatorReply::Kind::kError;
    out->message = doc.GetString("message");
    return true;
  }
  *err = "unknown reply type '" + type + "'";
  return false;
}

std::string EncodeCellReply(const WorkItem& item) {
  std::string out;
  JsonWriter w(&out, 0);
  w.BeginObject();
  w.Field("type", "cell");
  WriteWorkItemFields(w, item);
  w.EndObject();
  return out;
}

std::string EncodeSimpleReply(CoordinatorReply::Kind kind) {
  const char* type = "retry";
  switch (kind) {
    case CoordinatorReply::Kind::kRetry: type = "retry"; break;
    case CoordinatorReply::Kind::kDone: type = "done"; break;
    case CoordinatorReply::Kind::kOk: type = "ok"; break;
    case CoordinatorReply::Kind::kRevoked: type = "revoked"; break;
    case CoordinatorReply::Kind::kCell:
    case CoordinatorReply::Kind::kError:
      break;  // have dedicated encoders; fall back to retry
  }
  std::string out;
  JsonWriter w(&out, 0);
  w.BeginObject();
  w.Field("type", type);
  w.EndObject();
  return out;
}

std::string EncodeErrorReply(const std::string& message) {
  std::string out;
  JsonWriter w(&out, 0);
  w.BeginObject();
  w.Field("type", "error");
  w.Field("message", message);
  w.EndObject();
  return out;
}

std::string CellsFilePath(const std::string& dir) { return dir + "/cells.jsonl"; }
std::string ReissueFilePath(const std::string& dir) {
  return dir + "/reissue.jsonl";
}
std::string ResolvedFilePath(const std::string& dir) {
  return dir + "/resolved.jsonl";
}
std::string DoneFilePath(const std::string& dir) { return dir + "/DONE"; }

std::string ClaimFilePath(const std::string& dir, size_t index, int attempt,
                          uint64_t issue) {
  return dir + "/claim-" + std::to_string(index) + "-" +
         std::to_string(attempt) + "-" + std::to_string(issue);
}

std::string WorkerResultsPath(const std::string& dir,
                              const std::string& worker) {
  return dir + "/results-" + SanitizeWorkerName(worker) + ".jsonl";
}

std::string SanitizeWorkerName(const std::string& name) {
  std::string out = name.empty() ? "worker" : name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) {
      c = '_';
    }
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Socket backend (worker side). One connection, strict request/reply pairs;
// a mutex serializes the main loop's claims/results with the renewal thread.

class SocketWorkQueue : public WorkQueue {
 public:
  SocketWorkQueue(int fd, std::string worker) : fd_(fd), worker_(std::move(worker)) {}
  ~SocketWorkQueue() override {
    if (fd_ >= 0) {
      close(fd_);
    }
  }

  ClaimStatus Claim(WorkItem* item) override {
    for (;;) {
      CoordinatorReply reply;
      if (!RoundTrip(EncodeClaimRequest(worker_), &reply)) {
        // EOF mid-campaign means the coordinator finished (it closes every
        // connection once the campaign is decided) or died; either way this
        // worker is done — a restarted coordinator re-issues whatever is
        // missing to freshly started workers.
        return ClaimStatus::kDone;
      }
      switch (reply.kind) {
        case CoordinatorReply::Kind::kCell:
          *item = reply.item;
          return ClaimStatus::kClaimed;
        case CoordinatorReply::Kind::kDone:
          return ClaimStatus::kDone;
        case CoordinatorReply::Kind::kRetry:
          SleepMs(kClaimRetrySleepMs);
          continue;
        case CoordinatorReply::Kind::kError:
          return ClaimStatus::kLost;
        default:
          continue;  // unexpected but harmless; ask again
      }
    }
  }

  bool Renew(const WorkItem& item) override {
    CoordinatorReply reply;
    if (!RoundTrip(EncodeRenewRequest(item), &reply)) {
      return false;
    }
    return reply.kind == CoordinatorReply::Kind::kOk;
  }

  bool Complete(const WorkItem& item, const SupervisedOutcome& outcome) override {
    CoordinatorReply reply;
    return RoundTrip(EncodeResultRequest(worker_, item, outcome), &reply);
  }

  // Pipelines the whole batch: all result frames go out back-to-back, then
  // the matching replies are drained. Same frames, same coordinator-side
  // handling, one transport flush instead of N serialized round-trips.
  bool CompleteBatch(const std::vector<std::pair<WorkItem, SupervisedOutcome>>&
                         batch) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) {
      return false;
    }
    for (const auto& [item, outcome] : batch) {
      if (!SendFrame(fd_, EncodeResultRequest(worker_, item, outcome))) {
        dead_ = true;
        return false;
      }
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      std::string frame;
      CoordinatorReply reply;
      if (!RecvFrame(fd_, &decoder_, &frame, kSocketReplyTimeoutMs) ||
          !ParseCoordinatorReply(frame, &reply, nullptr)) {
        dead_ = true;
        return false;
      }
    }
    return true;
  }

 private:
  bool RoundTrip(const std::string& request, CoordinatorReply* reply) {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) {
      return false;
    }
    std::string frame;
    if (!SendFrame(fd_, request) ||
        !RecvFrame(fd_, &decoder_, &frame, kSocketReplyTimeoutMs) ||
        !ParseCoordinatorReply(frame, reply, nullptr)) {
      dead_ = true;
      return false;
    }
    return true;
  }

  int fd_;
  std::string worker_;
  std::mutex mu_;
  FrameDecoder decoder_;
  bool dead_ = false;
};

// ---------------------------------------------------------------------------
// File backend (worker side).

struct PublishedTuple {
  int attempt = 0;
  uint64_t issue = 0;
};

class FileWorkQueue : public WorkQueue {
 public:
  FileWorkQueue(std::string dir, std::string worker, uint64_t give_up_idle_ms)
      : dir_(std::move(dir)),
        worker_(SanitizeWorkerName(worker)),
        give_up_idle_ms_(give_up_idle_ms) {}

  ClaimStatus Claim(WorkItem* item) override {
    const uint64_t start = MonotonicMs();
    for (;;) {
      if (PathExists(DoneFilePath(dir_))) {
        return ClaimStatus::kDone;
      }
      if (LoadCells() && TryClaim(item)) {
        return ClaimStatus::kClaimed;
      }
      if (give_up_idle_ms_ > 0 && MonotonicMs() - start > give_up_idle_ms_) {
        return ClaimStatus::kLost;
      }
      SleepMs(kClaimRetrySleepMs);
    }
  }

  bool Renew(const WorkItem& item) override {
    const std::string path =
        ClaimFilePath(dir_, item.index, item.attempt, item.issue);
    return utimensat(AT_FDCWD, path.c_str(), nullptr, 0) == 0;
  }

  bool Complete(const WorkItem& item, const SupervisedOutcome& outcome) override {
    if (!writer_.is_open() &&
        !writer_.Open(WorkerResultsPath(dir_, worker_), nullptr)) {
      return false;
    }
    writer_.Append(item.fingerprint, item.spec, outcome);
    return true;
  }

 private:
  // cells.jsonl is written atomically (rename) and immutable afterwards:
  // parse it once. False until the coordinator has published it.
  bool LoadCells() {
    if (!cells_.empty()) {
      return true;
    }
    std::ifstream in(CellsFilePath(dir_));
    if (!in.is_open()) {
      return false;
    }
    std::vector<WorkItem> cells;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      JsonValue doc;
      WorkItem cell;
      if (JsonValue::Parse(line, &doc, nullptr) &&
          ReadWorkItemFields(doc, &cell)) {
        cells.push_back(std::move(cell));
      }
    }
    cells_ = std::move(cells);
    return !cells_.empty();
  }

  // One scan over the queue state: claim the lowest-index cell whose latest
  // published tuple is unclaimed. O_EXCL arbitrates racing workers.
  bool TryClaim(WorkItem* item) {
    std::set<size_t> resolved;
    {
      std::ifstream in(ResolvedFilePath(dir_));
      std::string line;
      while (in.is_open() && std::getline(in, line)) {
        JsonValue doc;
        if (JsonValue::Parse(line, &doc, nullptr) && doc.is_object() &&
            doc.Find("index") != nullptr) {
          resolved.insert(static_cast<size_t>(doc.GetUint("index")));
        }
      }
    }
    // Latest published tuple per cell: the base (attempt 0, issue 0) from
    // cells.jsonl, superseded by any higher reissue.jsonl line. A torn tail
    // (coordinator killed mid-append) parses as garbage and is skipped; the
    // complete line re-appears on the next scan.
    std::map<size_t, PublishedTuple> latest;
    {
      std::ifstream in(ReissueFilePath(dir_));
      std::string line;
      while (in.is_open() && std::getline(in, line)) {
        JsonValue doc;
        if (!JsonValue::Parse(line, &doc, nullptr) || !doc.is_object() ||
            doc.Find("index") == nullptr) {
          continue;
        }
        const size_t index = static_cast<size_t>(doc.GetUint("index"));
        PublishedTuple t;
        t.attempt = static_cast<int>(doc.GetInt("attempt"));
        t.issue = doc.GetUint("issue");
        auto [it, inserted] = latest.emplace(index, t);
        if (!inserted && (t.attempt > it->second.attempt ||
                          (t.attempt == it->second.attempt &&
                           t.issue > it->second.issue))) {
          it->second = t;
        }
      }
    }
    for (const WorkItem& cell : cells_) {
      if (resolved.count(cell.index) != 0) {
        continue;
      }
      PublishedTuple t;  // base tuple: attempt 0, issue 0
      if (const auto it = latest.find(cell.index); it != latest.end()) {
        t = it->second;
      }
      const std::string path =
          ClaimFilePath(dir_, cell.index, t.attempt, t.issue);
      if (PathExists(path + ".expired") || PathExists(path)) {
        continue;  // revoked tuple awaiting re-publication, or already held
      }
      const int fd = open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
      if (fd < 0) {
        continue;  // lost the race (EEXIST) or unwritable — try the next cell
      }
      const ssize_t ignored = write(fd, worker_.data(), worker_.size());
      (void)ignored;
      close(fd);
      *item = cell;
      item->attempt = t.attempt;
      item->issue = t.issue;
      return true;
    }
    return false;
  }

  std::string dir_;
  std::string worker_;
  uint64_t give_up_idle_ms_;
  std::vector<WorkItem> cells_;
  ManifestWriter writer_;
};

}  // namespace

std::unique_ptr<WorkQueue> MakeSocketWorkQueue(const std::string& addr,
                                               const std::string& worker_name,
                                               uint64_t connect_timeout_ms,
                                               std::string* error) {
  const uint64_t deadline = MonotonicMs() + connect_timeout_ms;
  std::string last_error;
  for (;;) {
    const int fd = ConnectLoopback(addr, &last_error);
    if (fd >= 0) {
      return std::make_unique<SocketWorkQueue>(
          fd, worker_name.empty() ? "worker" : worker_name);
    }
    if (MonotonicMs() >= deadline) {
      if (error != nullptr) {
        *error = last_error;
      }
      return nullptr;
    }
    SleepMs(100);
  }
}

std::unique_ptr<WorkQueue> MakeFileWorkQueue(const std::string& dir,
                                             const std::string& worker_name,
                                             uint64_t give_up_after_idle_ms,
                                             std::string* error) {
  if (dir.empty()) {
    if (error != nullptr) {
      *error = "empty work-queue directory";
    }
    return nullptr;
  }
  return std::make_unique<FileWorkQueue>(dir, worker_name,
                                         give_up_after_idle_ms);
}

}  // namespace memtis
