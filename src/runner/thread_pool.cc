#include "src/runner/thread_pool.h"

#include <cstdlib>

#include "src/common/check.h"

namespace memtis {

int ThreadPool::DefaultThreadCount() {
  const char* env = std::getenv("MEMTIS_RUNNER_THREADS");
  if (env != nullptr && env[0] != '\0') {
    const int n = std::atoi(env);
    return n < 1 ? 1 : n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  SIM_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    SIM_CHECK(!shutting_down_);
    if (cancelled_) {
      return;  // dropped: the pool is winding down
    }
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::RequestCancel() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cancelled_ = true;
    in_flight_ -= queue_.size();
    queue_.clear();
    if (in_flight_ == 0) {
      all_done_.notify_all();
    }
  }
  work_available_.notify_all();
}

bool ThreadPool::cancel_requested() const {
  std::unique_lock<std::mutex> lock(mu_);
  return cancelled_;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return !queue_.empty() || shutting_down_; });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace memtis
