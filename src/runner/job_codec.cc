#include "src/runner/job_codec.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/json.h"
#include "src/common/json_parse.h"

namespace memtis {
namespace {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t ResolvedAccesses(const JobSpec& spec) {
  return spec.accesses != 0 ? spec.accesses : DefaultAccesses();
}

double ResolvedFootprintScale(const JobSpec& spec) {
  return spec.footprint_scale > 0.0 ? spec.footprint_scale
                                    : BenchFootprintScale();
}

}  // namespace

std::string CanonicalJobSpec(const JobSpec& spec) {
  std::string out;
  out.reserve(192);
  out += "system=";
  out += spec.system;
  out += ";benchmark=";
  out += spec.benchmark;
  out += ";machine=";
  out += spec.machine_name();
  out += ";ratio=";
  out += JsonWriter::FormatDouble(spec.fast_ratio);
  out += ";accesses=";
  out += std::to_string(ResolvedAccesses(spec));
  out += ";contention=";
  out += spec.cpu_contention ? '1' : '0';
  out += ";snapshot_ns=";
  out += std::to_string(spec.snapshot_interval_ns);
  out += ";fast_bytes=";
  out += std::to_string(spec.fast_bytes_override);
  out += ";fscale=";
  out += JsonWriter::FormatDouble(ResolvedFootprintScale(spec));
  out += ";base_seed=";
  out += std::to_string(spec.base_seed);
  out += ";seed_index=";
  out += std::to_string(spec.seed_index);
  out += ";engine_seed=";
  out += std::to_string(spec.engine_seed);
  out += ";audit=";
  out += spec.audit ? '1' : '0';
  out += ";epoch_ns=";
  out += std::to_string(spec.audit_epoch_interval_ns);
  out += ";faults=";
  out += spec.faults;
  out += ";tweak=";
  out += spec.memtis_tweak != nullptr ? '1' : '0';
  // Appended only for sharded cells so every pre-sharding fingerprint (resume
  // manifests, committed sweep files) hashes exactly as before.
  if (spec.shards > 1) {
    out += ";shards=";
    out += std::to_string(spec.shards);
  }
  return out;
}

std::string JobFingerprint(const JobSpec& spec) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, Fnv1a64(CanonicalJobSpec(spec)));
  return buf;
}

void WriteJobResultJson(JsonWriter& w, const JobResult& result) {
  w.BeginObject();
  w.Field("v", static_cast<uint64_t>(1));
  w.Field("footprint_bytes", result.footprint_bytes);
  w.Field("fast_bytes", result.fast_bytes);
  w.Key("metrics");
  result.metrics.WriteJson(w, /*include_timeline=*/true);
  w.Field("is_memtis", result.is_memtis);
  if (result.is_memtis) {
    w.Key("memtis_stats");
    w.BeginObject();
    w.Field("coolings", result.memtis_stats.coolings);
    w.Field("threshold_adaptations", result.memtis_stats.threshold_adaptations);
    w.Field("benefit_estimations", result.memtis_stats.benefit_estimations);
    w.Field("split_rounds_triggered", result.memtis_stats.split_rounds_triggered);
    w.Field("splits_performed", result.memtis_stats.splits_performed);
    w.Field("split_subpages_to_fast", result.memtis_stats.split_subpages_to_fast);
    w.Field("collapses_performed", result.memtis_stats.collapses_performed);
    w.Field("last_ehr", result.memtis_stats.last_ehr);
    w.Field("last_rhr", result.memtis_stats.last_rhr);
    w.EndObject();
    w.Field("mean_ehr", result.mean_ehr);
    w.Field("sampler_cpu", result.sampler_cpu);
    w.Field("pebs_load_period", result.pebs_load_period);
    w.Field("pebs_store_period", result.pebs_store_period);
  }
  if (result.hemem_overalloc_bytes != 0) {
    w.Field("hemem_overalloc_bytes", result.hemem_overalloc_bytes);
  }
  w.Field("audited", result.audited);
  if (result.audited) {
    w.Key("audit_report");
    result.audit_report.WriteJson(w);
    w.Field("epoch_interval_ns", result.epoch_interval_ns);
    w.Field("epochs_recorded_total", result.epochs_recorded_total);
    w.Key("epochs");
    w.BeginArray();
    for (const EpochSample& sample : result.epochs) {
      sample.WriteJson(w);
    }
    w.EndArray();
  }
  w.EndObject();
}

bool ReadJobResultJson(const JsonValue& v, JobResult* out) {
  if (!v.is_object()) {
    return false;
  }
  *out = JobResult();
  out->footprint_bytes = v.GetUint("footprint_bytes");
  out->fast_bytes = v.GetUint("fast_bytes");
  const JsonValue* metrics = v.Find("metrics");
  if (metrics == nullptr || !Metrics::FromJson(*metrics, &out->metrics)) {
    return false;
  }
  out->is_memtis = v.GetBool("is_memtis");
  if (out->is_memtis) {
    if (const JsonValue* s = v.Find("memtis_stats"); s != nullptr) {
      out->memtis_stats.coolings = s->GetUint("coolings");
      out->memtis_stats.threshold_adaptations =
          s->GetUint("threshold_adaptations");
      out->memtis_stats.benefit_estimations = s->GetUint("benefit_estimations");
      out->memtis_stats.split_rounds_triggered =
          s->GetUint("split_rounds_triggered");
      out->memtis_stats.splits_performed = s->GetUint("splits_performed");
      out->memtis_stats.split_subpages_to_fast =
          s->GetUint("split_subpages_to_fast");
      out->memtis_stats.collapses_performed = s->GetUint("collapses_performed");
      out->memtis_stats.last_ehr = s->GetDouble("last_ehr");
      out->memtis_stats.last_rhr = s->GetDouble("last_rhr");
    }
    out->mean_ehr = v.GetDouble("mean_ehr");
    out->sampler_cpu = v.GetDouble("sampler_cpu");
    out->pebs_load_period = v.GetUint("pebs_load_period");
    out->pebs_store_period = v.GetUint("pebs_store_period");
  }
  out->hemem_overalloc_bytes = v.GetUint("hemem_overalloc_bytes");
  out->audited = v.GetBool("audited");
  if (out->audited) {
    if (const JsonValue* report = v.Find("audit_report"); report != nullptr) {
      AuditReport::FromJson(*report, &out->audit_report);
    }
    out->epoch_interval_ns = v.GetUint("epoch_interval_ns");
    out->epochs_recorded_total = v.GetUint("epochs_recorded_total");
    if (const JsonValue* epochs = v.Find("epochs"); epochs != nullptr) {
      out->epochs.reserve(epochs->size());
      for (size_t i = 0; i < epochs->size(); ++i) {
        EpochSample sample;
        if (EpochSample::FromJson(epochs->at(i), &sample)) {
          out->epochs.push_back(std::move(sample));
        }
      }
    }
  }
  return true;
}

void WriteJobFailureJson(JsonWriter& w, const JobFailure& failure) {
  w.BeginObject();
  w.Field("kind", FailureKindName(failure.kind));
  w.Field("exit_status", failure.exit_status);
  w.Field("signal", failure.signal);
  w.Field("check_expr", failure.check_expr);
  w.Field("stderr_tail", failure.stderr_tail);
  w.Field("reproducer_cmdline", failure.reproducer_cmdline);
  w.Field("message", failure.message);
  w.EndObject();
}

bool ReadJobFailureJson(const JsonValue& v, JobFailure* out) {
  if (!v.is_object()) {
    return false;
  }
  *out = JobFailure();
  out->kind =
      FailureKindFromName(v.GetString("kind")).value_or(FailureKind::kCrash);
  out->exit_status = static_cast<int>(v.GetInt("exit_status"));
  out->signal = static_cast<int>(v.GetInt("signal"));
  out->check_expr = v.GetString("check_expr");
  out->stderr_tail = v.GetString("stderr_tail");
  out->reproducer_cmdline = v.GetString("reproducer_cmdline");
  out->message = v.GetString("message");
  return true;
}

void WriteJobSpecJson(JsonWriter& w, const JobSpec& spec) {
  w.BeginObject();
  w.Field("system", spec.system);
  w.Field("benchmark", spec.benchmark);
  w.Field("fast_ratio", spec.fast_ratio);
  w.Field("accesses", ResolvedAccesses(spec));
  w.Field("cxl", spec.cxl);
  w.Field("cpu_contention", spec.cpu_contention);
  w.Field("snapshot_interval_ns", spec.snapshot_interval_ns);
  w.Field("fast_bytes_override", spec.fast_bytes_override);
  w.Field("footprint_scale", ResolvedFootprintScale(spec));
  w.Field("base_seed", spec.base_seed);
  w.Field("seed_index", spec.seed_index);
  w.Field("engine_seed", spec.engine_seed);
  w.Field("audit", spec.audit);
  w.Field("audit_epoch_interval_ns", spec.audit_epoch_interval_ns);
  w.Field("shards", static_cast<uint64_t>(spec.shards));
  w.Field("faults", spec.faults);
  w.EndObject();
}

bool ReadJobSpecJson(const JsonValue& v, JobSpec* out) {
  if (!v.is_object()) {
    return false;
  }
  *out = JobSpec();
  out->system = v.GetString("system");
  out->benchmark = v.GetString("benchmark");
  if (out->system.empty() || out->benchmark.empty()) {
    return false;
  }
  out->fast_ratio = v.GetDouble("fast_ratio");
  out->accesses = v.GetUint("accesses");
  out->cxl = v.GetBool("cxl");
  out->cpu_contention = v.GetBool("cpu_contention");
  out->snapshot_interval_ns = v.GetUint("snapshot_interval_ns");
  out->fast_bytes_override = v.GetUint("fast_bytes_override");
  out->footprint_scale = v.GetDouble("footprint_scale");
  out->base_seed = v.GetUint("base_seed");
  out->seed_index = static_cast<uint32_t>(v.GetUint("seed_index"));
  out->engine_seed = v.GetUint("engine_seed");
  out->audit = v.GetBool("audit");
  out->audit_epoch_interval_ns = v.GetUint("audit_epoch_interval_ns");
  const uint64_t shards = v.GetUint("shards");
  out->shards = shards == 0 ? 1 : static_cast<uint32_t>(shards);
  out->faults = v.GetString("faults");
  return true;
}

std::string ReproducerCmdline(const JobSpec& spec, int attempt) {
  std::string cmd = "memtis_run --supervise";
  cmd += " --systems=" + spec.system;
  cmd += " --benchmarks=" + spec.benchmark;
  cmd += " --machines=";
  cmd += spec.machine_name();
  if (spec.fast_bytes_override != 0) {
    cmd += " --fast-bytes=" + std::to_string(spec.fast_bytes_override);
  } else {
    cmd += " --ratios=" + JsonWriter::FormatDouble(spec.fast_ratio);
  }
  // One cell: collapse the seed axis into base-seed so seed_index 0 of the
  // repro derives this cell's exact workload_seed_offset.
  cmd += " --seeds=1 --base-seed=" + std::to_string(spec.workload_seed_offset());
  cmd += " --engine-seed=" +
         std::to_string(AttemptEngineSeed(spec.engine_seed, attempt));
  cmd += " --accesses=" + std::to_string(ResolvedAccesses(spec));
  cmd += " --footprint-scale=" +
         JsonWriter::FormatDouble(ResolvedFootprintScale(spec));
  if (spec.snapshot_interval_ns != 0) {
    cmd += " --snapshot-ns=" + std::to_string(spec.snapshot_interval_ns);
  }
  if (!spec.cpu_contention) {
    cmd += " --no-contention";
  }
  if (spec.audit) {
    cmd += " --audit";
    if (spec.audit_epoch_interval_ns != 0) {
      cmd += " --audit-epoch-ns=" + std::to_string(spec.audit_epoch_interval_ns);
    }
  }
  if (!spec.faults.empty()) {
    cmd += " --faults=" + spec.faults;
  }
  return cmd;
}

}  // namespace memtis
