// Resilient sweep execution: RunJobsResilient drives a job list through the
// ThreadPool with crash isolation (supervisor.h), checkpointed resume
// (manifest.h), and cooperative cancellation — the layer `memtis_run
// --supervise/--resume/--keep-going` is built on.
//
// Contract:
//  - outcomes[i] corresponds to jobs[i], as with the legacy RunJobs.
//  - With exec.manifest_path set, cells whose fingerprint already has an ok
//    entry in the manifest are not re-run: their results are reloaded
//    (from_manifest = true) and every freshly finished cell — ok or failed —
//    is appended, so the manifest always reflects the furthest point reached.
//  - A failed cell cancels the pool unless exec.keep_going is set; cells that
//    never ran are reported with FailureKind::kCancelled (ran = false) and
//    still carry a reproducer command line.
//  - exec.cancelled (e.g. a SIGINT flag) is polled before each cell starts;
//    in-flight cells drain normally, so ^C yields a flushed manifest and a
//    partial report rather than a torn file.
//  - Determinism: supervised success results are byte-identical to in-process
//    runs and to manifest reloads, so the aggregate over any interrupt/resume
//    schedule equals the uninterrupted run's bytes.

#ifndef MEMTIS_SIM_SRC_RUNNER_RESILIENT_H_
#define MEMTIS_SIM_SRC_RUNNER_RESILIENT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/runner/manifest.h"
#include "src/runner/supervisor.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"

namespace memtis {

// How a sweep executes its cells. Defaults reproduce the legacy in-process
// RunJobs behaviour (no forking, no retries, fail on first missing result).
struct ExecOptions {
  bool supervise = false;          // fork one child per cell
  uint64_t job_timeout_ms = 0;     // watchdog per attempt (implies supervise)
  int max_attempts = 1;            // attempts per cell (implies supervise if >1)
  uint64_t backoff_base_ms = 100;  // deterministic exponential backoff base
  bool keep_going = false;         // false: first failure cancels queued cells
  std::string manifest_path;       // "" = no checkpointing
  // Mid-cell snapshots (implies supervise): children write a full simulation
  // snapshot every checkpoint_ns of virtual time into checkpoint_dir, and a
  // SIGKILL-class death resumes the same attempt from the newest valid
  // snapshot (see SupervisorOptions::checkpoint_ns).
  uint64_t checkpoint_ns = 0;
  std::string checkpoint_dir;
  // Polled between cells; return true to stop starting new work (SIGINT).
  std::function<bool()> cancelled;
};

// The fate of one cell in a resilient sweep.
struct CellOutcome {
  bool ok = false;
  bool ran = false;            // false: skipped by cancellation/fail-fast
  bool from_manifest = false;  // result reloaded from the resume manifest
  int attempts = 0;
  JobResult result;    // valid when ok
  JobFailure failure;  // kind != kNone when !ok
};

// True when the exec options require forked children (any of supervise,
// a deadline, or retries).
bool NeedsSupervision(const ExecOptions& exec);

// Executes jobs[i] -> outcomes[i]. `preloaded` is the manifest image loaded
// by the caller (empty map for a fresh run); `manifest_error` receives a
// description when the manifest cannot be opened for appending (the sweep
// still runs — checkpointing is best-effort, losing it is reported loudly).
std::vector<CellOutcome> RunJobsResilient(
    const std::vector<JobSpec>& jobs, ThreadPool& pool, const ExecOptions& exec,
    const std::map<std::string, ManifestEntry>& preloaded = {},
    const ProgressFn& progress = nullptr, std::string* manifest_error = nullptr);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_RUNNER_RESILIENT_H_
