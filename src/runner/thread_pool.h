// Bounded fixed-size thread pool for the experiment runner.
//
// Deliberately simple — one mutex-protected FIFO queue, no work stealing:
// sweep jobs are coarse (one full Engine::Run each, milliseconds to minutes),
// so queue contention is negligible and FIFO keeps the submission order as the
// rough execution order. Determinism of sweep output does NOT depend on the
// pool: jobs write results into pre-assigned slots (see sweep.h), so any
// thread count and any completion order produce identical bytes.

#ifndef MEMTIS_SIM_SRC_RUNNER_THREAD_POOL_H_
#define MEMTIS_SIM_SRC_RUNNER_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace memtis {

class ThreadPool {
 public:
  // `threads` <= 0 selects DefaultThreadCount().
  explicit ThreadPool(int threads = 0);

  // Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not themselves call Submit/Wait on this pool
  // (jobs are independent; there is no nested-parallelism story). After
  // RequestCancel the task is silently dropped instead.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  // Cooperative cancellation: drops every still-queued task (they never run)
  // and makes further Submits no-ops. Tasks already executing run to
  // completion — cancellation never interrupts a job mid-flight, it only
  // stops new ones from starting, which is what SIGINT and --fail-fast want.
  // One-shot; there is no way to un-cancel a pool.
  void RequestCancel();

  bool cancel_requested() const;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // std::thread::hardware_concurrency(), overridable with the
  // MEMTIS_RUNNER_THREADS environment variable (values < 1 are clamped to 1).
  static int DefaultThreadCount();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  uint64_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  bool cancelled_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_RUNNER_THREAD_POOL_H_
