// Result sinks: serialize finished sweeps to JSON/CSV with stable field
// ordering, and aggregate per-seed values into mean/stddev/geomean.
//
// Sinks consume the (jobs, results) vectors of a SweepRun in job order, so
// their output inherits RunJobs' determinism: byte-identical for any thread
// count. Nothing time- or host-dependent (durations, thread counts, dates)
// is ever serialized. The JSON schema is documented in the README under
// "Running sweeps".

#ifndef MEMTIS_SIM_SRC_RUNNER_RESULT_SINK_H_
#define MEMTIS_SIM_SRC_RUNNER_RESULT_SINK_H_

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "src/runner/resilient.h"
#include "src/runner/sweep.h"

namespace memtis {

// Serializes one job (spec echo + full Metrics + policy introspection).
std::string JobToJson(const JobSpec& spec, const JobResult& result, size_t id,
                      int indent = 0);

// Groups values by an opaque cell key (insertion-ordered) and reports
// mean/stddev/geomean across them. Feed it one value per seed repetition —
// this is the single seed-averaging implementation; benches must not hand-roll
// their own accumulation loops.
class SweepAggregator {
 public:
  void Add(std::string_view cell, double value);

  bool Has(std::string_view cell) const;
  // Cell keys in first-insertion order.
  const std::vector<std::string>& cells() const { return order_; }
  const std::vector<double>& values(std::string_view cell) const;

  // Arithmetic mean in insertion order (empty cell -> 0).
  double Mean(std::string_view cell) const;
  // Sample standard deviation (n-1 denominator; 0 for n < 2).
  double Stddev(std::string_view cell) const;
  double GeoMeanOf(std::string_view cell) const;

 private:
  std::vector<std::string> order_;
  std::vector<std::vector<double>> values_;  // parallel to order_

  const std::vector<double>* Find(std::string_view cell) const;
};

// Serialization options shared by the sinks.
struct SinkOptions {
  int indent = 2;           // JSON pretty-print indent (0 = compact)
  bool timelines = false;   // include each job's Metrics timeline
  bool aggregates = true;   // include the per-cell aggregate section
};

// The full sweep document: {"schema_version", "sweep", "jobs", "aggregates"}.
// schema_version 3: job metrics may carry a per_tenant array (tenant plane).
std::string SweepToJson(const SweepSpec& sweep, const std::vector<JobSpec>& jobs,
                        const std::vector<JobResult>& results,
                        const SinkOptions& options = {});

// Outcome-aware sweep document (schema_version 4; was 2 before per_tenant
// metrics were added) for resilient runs: jobs
// that completed appear in "jobs" (with their attempt count), failed and
// never-run cells appear in "failures" with fingerprints and reproducer
// command lines, and a "summary" block counts
// cells_total/cells_completed/cells_failed/cells_not_run. Aggregates cover
// completed cells only. Nothing records *how* a completed cell's result was
// obtained (live vs manifest), so a resumed sweep serializes byte-identically
// to an uninterrupted one.
std::string SweepToJson(const SweepSpec& sweep, const std::vector<JobSpec>& jobs,
                        const std::vector<CellOutcome>& outcomes,
                        const SinkOptions& options = {});

// One row per job with a fixed header; scalars only (no timelines).
std::string SweepToCsv(const std::vector<JobSpec>& jobs,
                       const std::vector<JobResult>& results);

// Outcome-aware CSV: completed cells only, with a trailing attempts column.
std::string SweepToCsv(const std::vector<JobSpec>& jobs,
                       const std::vector<CellOutcome>& outcomes);

// Human-readable report of every failed or never-run cell, one block per
// cell with its kind, message, and reproducer command line. Empty string
// when everything completed.
std::string FailureSummary(const std::vector<JobSpec>& jobs,
                           const std::vector<CellOutcome>& outcomes);

// RFC 4180 CSV field escaping: fields containing a comma, double quote, CR,
// or LF are wrapped in double quotes with embedded quotes doubled; all other
// fields pass through unchanged.
std::string CsvEscape(std::string_view field);

// The audit document for --audit-json: per-job invariant reports and (when
// recorded) epoch telemetry, plus a sweep-level summary. Schema in the
// README under "Auditing and epoch telemetry".
std::string AuditToJson(const std::vector<JobSpec>& jobs,
                        const std::vector<JobResult>& results,
                        const SinkOptions& options = {});

// Outcome-aware audit document: audited completed cells only.
std::string AuditToJson(const std::vector<JobSpec>& jobs,
                        const std::vector<CellOutcome>& outcomes,
                        const SinkOptions& options = {});

// Writes `data` to `path`, or to stdout when path is empty or "-".
// Returns false (with a note on stderr) if the file cannot be written.
bool WriteResultFile(const std::string& path, std::string_view data);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_RUNNER_RESULT_SINK_H_
