// Lossless wire codec for the resilience plane: JobResult/JobFailure to and
// from JSON, canonical cell fingerprints, and reproducer command lines.
//
// One codec serves both transports — the supervisor's child-to-parent result
// pipe and the --resume checkpoint manifest — so a cell reloaded from a
// manifest is bit-for-bit the cell that ran: integers round-trip through
// strtoull and doubles through the writer's "%.17g" formatting, which is why
// a resumed sweep serializes byte-identically to an uninterrupted one
// (tests/runner_test.cc, scripts/smoke_resume.sh).

#ifndef MEMTIS_SIM_SRC_RUNNER_JOB_CODEC_H_
#define MEMTIS_SIM_SRC_RUNNER_JOB_CODEC_H_

#include <string>

#include "src/runner/supervisor.h"
#include "src/runner/sweep.h"

namespace memtis {

class JsonWriter;
class JsonValue;

// Canonical, human-readable serialization of every field of a JobSpec that
// can influence its result. Environment scale knobs are folded in resolved
// (accesses and footprint_scale at their effective values), so running the
// same flags under a different MEMTIS_BENCH_* environment yields different
// fingerprints and a manifest can never be silently reused across scales.
// The opaque memtis_tweak hook contributes only a presence bit — resuming a
// tweaked sweep assumes the tweak function itself is unchanged.
std::string CanonicalJobSpec(const JobSpec& spec);

// 16-hex-digit FNV-1a64 of CanonicalJobSpec: the manifest key and the handle
// the MEMTIS_CRASH_CELL/MEMTIS_HANG_CELL hooks and `memtis_run --list-cells`
// speak.
std::string JobFingerprint(const JobSpec& spec);

// Full-fidelity JobResult record: metrics (with timeline), policy
// introspection, audit report, and epoch telemetry.
void WriteJobResultJson(JsonWriter& w, const JobResult& result);
bool ReadJobResultJson(const JsonValue& v, JobResult* out);

void WriteJobFailureJson(JsonWriter& w, const JobFailure& failure);
bool ReadJobFailureJson(const JsonValue& v, JobFailure* out);

// Full-fidelity JobSpec record for shipping cells to remote workers
// (src/runner/work_queue.h). Environment scale knobs are written resolved —
// accesses and footprint_scale at their effective values — so a worker
// running under a different MEMTIS_BENCH_* environment still reconstructs a
// spec whose fingerprint matches the coordinator's. The opaque memtis_tweak
// hook cannot cross a process boundary and is not serialized; a tweaked
// spec's fingerprint (presence bit) will not match on the worker, which
// rejects the cell as kInvalidSpec rather than silently running the untweaked
// config.
void WriteJobSpecJson(JsonWriter& w, const JobSpec& spec);
bool ReadJobSpecJson(const JsonValue& v, JobSpec* out);

// A memtis_run command line that re-executes exactly this cell (and, for
// attempt > 0, the exact retry: the attempt's engine seed is pinned with
// --engine-seed). Attached to every JobFailure so a failed cell in a
// thousand-cell sweep is one paste away from a local repro.
std::string ReproducerCmdline(const JobSpec& spec, int attempt);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_RUNNER_JOB_CODEC_H_
