// Coordinator side of distributed campaign execution: the Campaign lease /
// retry state machine, plus the two serve loops behind `memtis_run --serve`.
//
// The lease/claim contract (see DESIGN.md "Distributed campaigns"):
//
//  - Every cell walks kPending -> kIssued -> kDone. An issue is exactly one
//    supervised attempt at a specific global attempt number; the (attempt,
//    issue) tuple names the lease, and `issue` increases monotonically per
//    cell so a revoked lease can never be confused with its replacement.
//  - A reported recoverable failure re-issues the cell at attempt + 1 — the
//    engine seed folds exactly like a local supervised retry, so the result
//    bytes, global attempt count, and reproducer are identical no matter
//    which worker runs the retry.
//  - A lost lease (connection EOF, expired heartbeat) re-issues the *same*
//    attempt under a fresh issue id; the lost attempt left no evidence, so
//    the rerun reproduces the uninterrupted run's bytes. After max_reissues
//    consecutive losses the cell is decided kLeaseExpired with a reproducer.
//  - Results are accepted iff the cell is undecided and the reported attempt
//    matches the cell's current attempt — duplicate and stale results (two
//    workers racing the same attempt after an expiry) are ignored, which is
//    sound because equal (spec, attempt) means equal bytes.
//  - Decided cells append to the --resume manifest exactly as the local
//    RunJobsResilient does, so coordinator death is recoverable with the
//    same manifest (socket backend) or from the per-worker results files
//    already in the queue directory (file backend).
//
// Campaign is single-threaded on purpose: both serve loops are poll/scan
// loops that own it exclusively.

#ifndef MEMTIS_SIM_SRC_RUNNER_COORDINATOR_H_
#define MEMTIS_SIM_SRC_RUNNER_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/runner/manifest.h"
#include "src/runner/resilient.h"
#include "src/runner/work_queue.h"

namespace memtis {

struct CampaignOptions {
  int max_attempts = 1;            // total attempts per cell (retries + 1)
  int max_reissues = 8;            // lease losses tolerated per cell
  uint64_t lease_timeout_ms = 10'000;
  uint64_t job_timeout_ms = 0;     // forwarded to workers per issued cell
  // Forwarded to workers per issued cell (WorkItem::checkpoint_ns): workers
  // snapshot each cell every checkpoint_ns of virtual time, so a re-issued
  // lease at the same attempt resumes from the snapshot instead of
  // restarting. 0 = off.
  uint64_t checkpoint_ns = 0;
  bool keep_going = false;         // false: first failure stops new issues
  std::string manifest_path;       // "" = no checkpointing
  std::function<bool()> cancelled;  // polled; true stops new issues (SIGINT)
};

struct CampaignStats {
  uint64_t issues = 0;            // leases handed out (incl. retries/reissues)
  uint64_t leases_lost = 0;       // EOF / expired heartbeat / vanished claim
  uint64_t retries = 0;           // failure-driven re-issues at attempt + 1
  uint64_t stale_results = 0;     // results ignored (decided cell or old attempt)
  uint64_t stale_claims = 0;      // file backend: claims of superseded tuples
};

class Campaign {
 public:
  enum class CellPhase { kPending, kIssued, kDone };

  Campaign(const std::vector<JobSpec>& jobs, const CampaignOptions& options,
           const std::map<std::string, ManifestEntry>& preloaded,
           const ProgressFn& progress, std::string* manifest_error);

  // Socket backend: hands out the lowest-index issuable cell and arms its
  // lease deadline. nullopt when nothing is currently issuable.
  std::optional<WorkItem> NextIssue(uint64_t now_ms);

  // File backend: the open (attempt, issue) tuple of a pending cell, and the
  // transition when a claim file for exactly that tuple appears.
  CellPhase phase(size_t index) const { return states_[index].phase; }
  int open_attempt(size_t index) const { return states_[index].attempt; }
  uint64_t open_issue(size_t index) const { return states_[index].issue; }
  bool ObserveClaim(size_t index, int attempt, uint64_t issue, uint64_t now_ms);

  // Heartbeat for an issued lease; false = revoked/stale.
  bool Renew(size_t index, int attempt, uint64_t issue, uint64_t now_ms);

  // A worker's outcome for (index, attempt). False when stale and ignored.
  bool OnOutcome(size_t index, int attempt, const SupervisedOutcome& outcome);

  // The lease carrying `issue` is gone. Re-opens the cell under a fresh
  // issue id (same attempt), or decides kLeaseExpired past max_reissues.
  // Also valid for a kPending cell whose open tuple was revoked on disk
  // (file-backend coordinator restart).
  void OnLeaseLost(size_t index, uint64_t issue);

  // Expires leases whose deadline passed (socket backend tick).
  void ExpireStale(uint64_t now_ms);

  // True once every cell is decided — or the campaign is cancelled and no
  // lease remains in flight (retry-pending cells still count as in flight:
  // like a local drain, a started cell finishes its retry budget).
  bool Finished();

  // Closes the manifest and fills kCancelled records for never-ran cells.
  // Call exactly once, after Finished().
  std::vector<CellOutcome> Finish();

  size_t size() const { return states_.size(); }
  size_t decided() const { return decided_; }
  const CampaignStats& stats() const { return stats_; }
  const std::string& fingerprint(size_t index) const {
    return fingerprints_[index];
  }

 private:
  struct CellState {
    CellPhase phase = CellPhase::kPending;
    int attempt = 0;       // next (kPending) or running (kIssued) global attempt
    int reissues = 0;      // lease losses so far
    uint64_t issue = 0;    // current/open issue id, strictly increasing
    uint64_t deadline_ms = 0;  // lease deadline while kIssued (socket backend)
  };

  void CheckCancelled();
  bool Issuable(const CellState& st) const;
  void Decide(size_t index, bool ok, int attempts, JobResult result,
              JobFailure failure);
  void Report(size_t index);

  const std::vector<JobSpec>& jobs_;
  CampaignOptions options_;
  ProgressFn progress_;
  std::vector<std::string> fingerprints_;
  std::vector<CellState> states_;
  std::vector<CellOutcome> outcomes_;
  ManifestWriter writer_;
  CampaignStats stats_;
  size_t decided_ = 0;
  size_t issued_count_ = 0;
  size_t progress_done_ = 0;
  bool cancel_latched_ = false;
  bool finished_called_ = false;
};

// Runs a campaign to completion over loopback TCP on 127.0.0.1 (`port` 0 =
// kernel-assigned). `on_listening` fires with the bound port once the socket
// accepts — tests launch workers from it, memtis_run writes --port-file.
// On a transport failure returns an empty vector with *error set.
std::vector<CellOutcome> ServeSocketCampaign(
    const std::vector<JobSpec>& jobs, const CampaignOptions& options,
    uint16_t port, const std::function<void(uint16_t)>& on_listening,
    const std::map<std::string, ManifestEntry>& preloaded = {},
    const ProgressFn& progress = nullptr, CampaignStats* stats = nullptr,
    std::string* error = nullptr, std::string* manifest_error = nullptr);

// Runs a campaign to completion over a claim-file queue rooted at `dir`
// (created if missing; a stale DONE marker is removed). Restart-safe: an
// existing queue directory's results files preload decided cells and its
// claim files resume in-flight leases, so SIGKILLing the coordinator and
// rerunning the same command reaches the same bytes.
std::vector<CellOutcome> ServeFileCampaign(
    const std::vector<JobSpec>& jobs, const std::string& dir,
    const CampaignOptions& options,
    const std::map<std::string, ManifestEntry>& preloaded = {},
    const ProgressFn& progress = nullptr, CampaignStats* stats = nullptr,
    std::string* error = nullptr, std::string* manifest_error = nullptr);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_RUNNER_COORDINATOR_H_
