#include "src/runner/manifest.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include <sys/stat.h>

#include "src/common/json.h"
#include "src/common/json_parse.h"
#include "src/runner/job_codec.h"

namespace memtis {

bool LoadManifest(const std::string& path,
                  std::map<std::string, ManifestEntry>* out,
                  ManifestLoadStats* stats, std::string* error) {
  out->clear();
  ManifestLoadStats local;
  std::ifstream in(path);
  if (!in.is_open()) {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) {
      // The file exists but cannot be read — that is an error, not a fresh
      // resume: silently re-running every cell would discard the checkpoint.
      if (error != nullptr) {
        *error = "cannot read manifest: " + path + ": " + std::strerror(errno);
      }
      return false;
    }
    // Missing file: the first run of a --resume sweep.
    if (stats != nullptr) {
      *stats = local;
    }
    return true;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    ++local.lines_total;
    JsonValue doc;
    if (!JsonValue::Parse(line, &doc, nullptr) || !doc.is_object()) {
      // Tolerated: a crash mid-append leaves at most one truncated line.
      ++local.lines_skipped;
      continue;
    }
    const std::string fingerprint = doc.GetString("fingerprint");
    if (fingerprint.empty()) {
      ++local.lines_skipped;
      continue;
    }
    ManifestEntry entry;
    entry.ok = doc.GetBool("ok");
    entry.attempts = static_cast<int>(doc.GetInt("attempts"));
    bool valid = false;
    if (entry.ok) {
      const JsonValue* result = doc.Find("result");
      valid = result != nullptr && ReadJobResultJson(*result, &entry.result);
    } else {
      const JsonValue* failure = doc.Find("failure");
      valid = failure != nullptr && ReadJobFailureJson(*failure, &entry.failure);
    }
    if (!valid) {
      ++local.lines_skipped;
      continue;
    }
    (*out)[fingerprint] = std::move(entry);  // last-wins
  }
  local.entries = out->size();
  if (stats != nullptr) {
    *stats = local;
  }
  return true;
}

ManifestWriter::~ManifestWriter() { Close(); }

bool ManifestWriter::Open(const std::string& path, std::string* error) {
  Close();
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    if (error != nullptr) {
      *error = "cannot open manifest for append: " + path + ": " +
               std::strerror(errno);
    }
    return false;
  }
  return true;
}

void ManifestWriter::Append(const std::string& fingerprint, const JobSpec& spec,
                            const SupervisedOutcome& outcome) {
  std::string line;
  JsonWriter w(&line, 0);
  w.BeginObject();
  w.Field("v", static_cast<uint64_t>(1));
  w.Field("fingerprint", fingerprint);
  w.Field("cell", CanonicalJobSpec(spec));
  w.Key("spec");
  w.BeginObject();
  w.Field("system", spec.system);
  w.Field("benchmark", spec.benchmark);
  w.Field("machine", spec.machine_name());
  w.Field("fast_ratio", spec.fast_ratio);
  w.Field("base_seed", spec.base_seed);
  w.Field("seed_index", spec.seed_index);
  w.Field("engine_seed", spec.engine_seed);
  w.EndObject();
  w.Field("ok", outcome.ok);
  w.Field("attempts", outcome.attempts);
  if (outcome.ok) {
    w.Key("result");
    WriteJobResultJson(w, outcome.result);
  } else {
    w.Key("failure");
    WriteJobFailureJson(w, outcome.failure);
  }
  w.EndObject();
  line += '\n';

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return;
  }
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

void ManifestWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace memtis
