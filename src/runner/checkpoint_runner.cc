#include "src/runner/checkpoint_runner.h"

#include <csignal>
#include <cstdlib>
#include <memory>

#include "src/audit/audit_session.h"
#include "src/common/check.h"
#include "src/memtis/policy_registry.h"
#include "src/policies/hemem.h"
#include "src/sim/engine.h"
#include "src/snapshot/serializer.h"
#include "src/snapshot/snapshot_file.h"
#include "src/workloads/registry.h"

namespace memtis {
namespace {

// Serialization order of one snapshot payload. The engine section embeds the
// full MemorySystem; policy and workload follow; the audit session closes the
// stream (presence-flagged so plain and MEMTIS_AUDIT=1 runs both checkpoint).
std::string BuildSnapshotPayload(const Engine& engine,
                                 const TieringPolicy& policy,
                                 const Workload& workload,
                                 const AuditSession* audit) {
  StateWriter w;
  engine.SaveState(w);
  policy.SaveState(w);
  workload.SaveState(w);
  w.Bool(audit != nullptr);
  if (audit != nullptr) {
    audit->SaveState(w);
  }
  return w.Take();
}

// Restores a payload into freshly constructed components. Returns false (and
// leaves the components unusable — the caller rebuilds from scratch) on any
// mismatch: section-marker skew, config drift caught by a LoadState
// cross-check, trailing garbage, or audit-presence disagreement.
bool RestoreFromPayload(const std::string& payload, Engine& engine,
                        TieringPolicy& policy, Workload& workload,
                        AuditSession* audit) {
  StateReader r(payload);
  engine.LoadState(r);
  // Init() before LoadState: policies re-attach engine-owned resources (the
  // sampler's fault injector) there; LoadState then overwrites whatever
  // defaults Init reset.
  policy.Init(engine.ctx());
  policy.LoadState(r);
  workload.LoadState(r);
  const bool had_audit = r.Bool();
  if (had_audit != (audit != nullptr)) {
    return false;
  }
  if (audit != nullptr) {
    audit->LoadState(r);
  }
  return r.Done();
}

struct Cell {
  std::unique_ptr<Workload> workload;
  std::unique_ptr<TieringPolicy> policy;
  std::unique_ptr<AuditSession> audit;
  std::unique_ptr<Engine> engine;
  uint64_t footprint = 0;
  uint64_t fast = 0;
};

// Builds workload, policy, audit session, and engine exactly the way
// RunJob() does (src/runner/sweep.cc) — any divergence here would break the
// checkpointed-equals-plain byte-identity bar.
Cell BuildCell(const JobSpec& spec) {
  Cell cell;
  const double footprint_scale =
      spec.footprint_scale > 0.0 ? spec.footprint_scale : BenchFootprintScale();
  cell.workload =
      MakeWorkload(spec.benchmark, footprint_scale, spec.workload_seed_offset());
  cell.footprint = cell.workload->footprint_bytes();
  cell.fast = spec.fast_bytes_override != 0
                  ? spec.fast_bytes_override
                  : static_cast<uint64_t>(static_cast<double>(cell.footprint) *
                                          spec.fast_ratio);
  const uint64_t capacity = cell.footprint + cell.footprint / 2;
  cell.policy = MakePolicy(spec.system, cell.footprint, cell.fast);

  const MachineConfig machine = spec.cxl
                                    ? MakeCxlMachine(cell.fast, capacity)
                                    : MakeNvmMachine(cell.fast, capacity);
  EngineOptions opts;
  opts.max_accesses = spec.accesses != 0 ? spec.accesses : DefaultAccesses();
  opts.snapshot_interval_ns = spec.snapshot_interval_ns;
  opts.cpu_contention = spec.cpu_contention;
  opts.seed = spec.engine_seed;
  if (!spec.faults.empty()) {
    std::string fault_error;
    SIM_CHECK(FaultPlan::Parse(spec.faults, &opts.faults, &fault_error) &&
              "bad JobSpec::faults spec (validate at the CLI)");
  }

  if (spec.audit) {
    AuditSessionOptions audit_opts;
    audit_opts.record_epochs = spec.audit_epoch_interval_ns != 0;
    audit_opts.epochs.interval_ns =
        spec.audit_epoch_interval_ns != 0 ? spec.audit_epoch_interval_ns
                                          : audit_opts.epochs.interval_ns;
    cell.audit = std::make_unique<AuditSession>(audit_opts);
  } else {
    cell.audit = MakeEnvAuditSession();
  }
  opts.audit = cell.audit.get();
  cell.engine = std::make_unique<Engine>(machine, *cell.policy, opts);
  return cell;
}

}  // namespace

bool CheckpointSupported(const JobSpec& spec, std::string* why) {
  if (spec.shards > 1) {
    if (why != nullptr) {
      *why = "sharded cells (shards=" + std::to_string(spec.shards) +
             ") have no snapshot plumbing";
    }
    return false;
  }
  if (spec.memtis_tweak != nullptr) {
    if (why != nullptr) {
      *why = "opaque memtis_tweak hook is not representable in a snapshot";
    }
    return false;
  }
  // Probe SupportsCheckpoint on throwaway instances; sizes are irrelevant.
  const auto policy = MakePolicy(spec.system, 64ull << 20, 16ull << 20);
  if (!policy->SupportsCheckpoint()) {
    if (why != nullptr) {
      *why = "policy '" + spec.system + "' does not support checkpointing";
    }
    return false;
  }
  const auto workload = MakeWorkload(spec.benchmark);
  if (!workload->SupportsCheckpoint()) {
    if (why != nullptr) {
      *why = "benchmark '" + spec.benchmark + "' does not support checkpointing";
    }
    return false;
  }
  return true;
}

JobResult RunJobCheckpointed(const JobSpec& spec, const CheckpointContext& ctx) {
  SIM_CHECK_GT(ctx.interval_ns, 0u);
  SIM_CHECK(!ctx.snapshot_base.empty());
  {
    std::string why;
    SIM_CHECK(CheckpointSupported(spec, &why) && "cell cannot checkpoint");
  }

  SnapshotStore store(ctx.snapshot_base);
  SnapshotBlob blob;
  const bool have_snapshot =
      store.LoadNewest(ctx.fingerprint, ctx.attempt, &blob);

  int kill_after = 0;  // test hook: self-SIGKILL after N snapshots (fresh runs)
  if (const char* env = std::getenv("MEMTIS_KILL_AFTER_CHECKPOINTS");
      env != nullptr && env[0] != '\0') {
    kill_after = std::atoi(env);
  }

  // Pass 0 tries to resume from the decoded snapshot; a payload that fails
  // component-level validation falls through to pass 1, which always starts
  // clean. Fresh objects are built per pass — a half-restored engine is
  // never run.
  for (int pass = 0; pass < 2; ++pass) {
    const bool try_resume = pass == 0 && have_snapshot;
    Cell cell = BuildCell(spec);
    bool resumed = false;
    if (try_resume) {
      if (!RestoreFromPayload(blob.payload, *cell.engine, *cell.policy,
                              *cell.workload, cell.audit.get())) {
        continue;  // discard, rebuild clean
      }
      resumed = true;
    }
    if (ctx.resumed != nullptr) {
      *ctx.resumed = resumed;
    }

    uint64_t snapshots_written = 0;
    Engine& engine = *cell.engine;
    cell.engine->EnableCheckpoints(ctx.interval_ns, [&] {
      const std::string snap = BuildSnapshotPayload(
          engine, *cell.policy, *cell.workload, cell.audit.get());
      std::string error;
      // A failed write (disk full, unwritable dir) only loses resumability;
      // the run itself continues.
      store.Write(ctx.fingerprint, ctx.attempt, snap, &error);
      ++snapshots_written;
      if (kill_after > 0 && !resumed &&
          snapshots_written == static_cast<uint64_t>(kill_after)) {
        raise(SIGKILL);
      }
    });

    JobResult out;
    out.metrics = engine.Run(*cell.workload);
    if (spec.audit) {
      out.audited = true;
      out.audit_report = cell.audit->report();
      if (const EpochRecorder* recorder = cell.audit->recorder()) {
        out.epoch_interval_ns = recorder->options().interval_ns;
        out.epochs_recorded_total = recorder->recorded_total();
        out.epochs = recorder->samples();
      }
    }
    out.footprint_bytes = cell.footprint;
    out.fast_bytes = cell.fast;
    if (auto* memtis = dynamic_cast<MemtisPolicy*>(cell.policy.get())) {
      out.is_memtis = true;
      out.memtis_stats = memtis->stats();
      out.mean_ehr = memtis->mean_ehr();
      out.sampler_cpu =
          out.metrics.cpu.core_share(DaemonKind::kSampler, out.metrics.app_ns);
      out.pebs_load_period = memtis->sampler().period(SampleType::kLlcLoadMiss);
      out.pebs_store_period = memtis->sampler().period(SampleType::kStore);
    }
    if (auto* hemem = dynamic_cast<HeMemPolicy*>(cell.policy.get())) {
      out.hemem_overalloc_bytes = hemem->over_allocated_bytes();
    }
    return out;
  }
  SIM_CHECK(false && "unreachable: pass 1 never resumes");
  return JobResult{};
}

}  // namespace memtis
