#include "src/runner/result_sink.h"

#include <cmath>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/json.h"
#include "src/common/stats.h"
#include "src/runner/job_codec.h"

namespace memtis {
namespace {

void WriteSpecFields(JsonWriter& w, const JobSpec& spec) {
  w.Field("system", spec.system);
  w.Field("benchmark", spec.benchmark);
  w.Field("machine", spec.machine_name());
  w.Field("fast_ratio", spec.fast_ratio);
  w.Field("base_seed", spec.base_seed);
  w.Field("seed_index", spec.seed_index);
  w.Field("workload_seed_offset", spec.workload_seed_offset());
  w.Field("engine_seed", spec.engine_seed);
  if (!spec.faults.empty()) {
    w.Field("faults", spec.faults);
  }
}

void WriteJob(JsonWriter& w, const JobSpec& spec, const JobResult& result,
              size_t id, bool include_timeline, int attempts = -1) {
  w.BeginObject();
  w.Field("id", static_cast<uint64_t>(id));
  if (attempts >= 0) {
    w.Field("attempts", attempts);
  }
  WriteSpecFields(w, spec);
  w.Field("footprint_bytes", result.footprint_bytes);
  w.Field("fast_bytes", result.fast_bytes);
  w.Key("metrics");
  result.metrics.WriteJson(w, include_timeline);
  if (result.is_memtis) {
    w.Key("memtis");
    w.BeginObject();
    w.Field("mean_ehr", result.mean_ehr);
    w.Field("sampler_cpu", result.sampler_cpu);
    w.Field("pebs_load_period", result.pebs_load_period);
    w.Field("pebs_store_period", result.pebs_store_period);
    w.Field("coolings", result.memtis_stats.coolings);
    w.Field("threshold_adaptations", result.memtis_stats.threshold_adaptations);
    w.Field("splits_performed", result.memtis_stats.splits_performed);
    w.Field("collapses_performed", result.memtis_stats.collapses_performed);
    w.EndObject();
  }
  if (result.hemem_overalloc_bytes != 0) {
    w.Field("hemem_overalloc_bytes", result.hemem_overalloc_bytes);
  }
  w.EndObject();
}

void WriteStatTriple(JsonWriter& w, std::string_view key,
                     const SweepAggregator& agg, std::string_view cell) {
  w.Key(key);
  w.BeginObject();
  w.Field("mean", agg.Mean(cell));
  w.Field("stddev", agg.Stddev(cell));
  w.Field("geomean", agg.GeoMeanOf(cell));
  w.EndObject();
}

void WriteSweepBlock(JsonWriter& w, const SweepSpec& sweep) {
  w.Key("sweep");
  w.BeginObject();
  w.Key("systems");
  w.BeginArray();
  for (const std::string& s : sweep.systems) {
    w.String(s);
  }
  w.EndArray();
  w.Key("benchmarks");
  w.BeginArray();
  for (const std::string& b : sweep.benchmarks) {
    w.String(b);
  }
  w.EndArray();
  w.Key("fast_ratios");
  w.BeginArray();
  for (double r : sweep.fast_ratios) {
    w.Double(r);
  }
  w.EndArray();
  w.Key("machines");
  w.BeginArray();
  for (const std::string& m : sweep.machines) {
    w.String(m);
  }
  w.EndArray();
  w.Field("seeds", sweep.seeds);
  w.Field("base_seed", sweep.base_seed);
  w.Field("accesses", sweep.accesses);
  w.Field("cpu_contention", sweep.cpu_contention);
  w.Field("snapshot_interval_ns", sweep.snapshot_interval_ns);
  w.Field("footprint_scale", sweep.footprint_scale);
  w.Field("fast_bytes_override", sweep.fast_bytes_override);
  w.Field("include_baseline", sweep.include_baseline);
  w.EndObject();
}

// Aggregates over (spec, result) pairs in job order — the legacy path passes
// every job, the outcome-aware path only completed ones.
void WriteAggregates(JsonWriter& w, const std::vector<const JobSpec*>& specs,
                     const std::vector<const JobResult*>& results) {
  SweepAggregator runtime;
  SweepAggregator mops;
  SweepAggregator hit_ratio;
  std::vector<size_t> first_job;  // first pair index per cell, insertion order
  for (size_t i = 0; i < specs.size(); ++i) {
    const std::string cell = CellKey(*specs[i]);
    if (!runtime.Has(cell)) {
      first_job.push_back(i);
    }
    runtime.Add(cell, results[i]->metrics.EffectiveRuntimeNs());
    mops.Add(cell, results[i]->metrics.Mops());
    hit_ratio.Add(cell, results[i]->metrics.fast_hit_ratio());
  }
  w.Key("aggregates");
  w.BeginArray();
  for (size_t c = 0; c < runtime.cells().size(); ++c) {
    const std::string& cell = runtime.cells()[c];
    const JobSpec& spec = *specs[first_job[c]];
    w.BeginObject();
    w.Field("cell", cell);
    w.Field("system", spec.system);
    w.Field("benchmark", spec.benchmark);
    w.Field("machine", spec.machine_name());
    w.Field("fast_ratio", spec.fast_ratio);
    w.Field("n", static_cast<uint64_t>(runtime.values(cell).size()));
    WriteStatTriple(w, "effective_runtime_ns", runtime, cell);
    WriteStatTriple(w, "mops", mops, cell);
    WriteStatTriple(w, "fast_hit_ratio", hit_ratio, cell);
    w.EndObject();
  }
  w.EndArray();
}

}  // namespace

std::string JobToJson(const JobSpec& spec, const JobResult& result, size_t id,
                      int indent) {
  std::string out;
  JsonWriter w(&out, indent);
  WriteJob(w, spec, result, id, /*include_timeline=*/true);
  return out;
}

void SweepAggregator::Add(std::string_view cell, double value) {
  for (size_t i = 0; i < order_.size(); ++i) {
    if (order_[i] == cell) {
      values_[i].push_back(value);
      return;
    }
  }
  order_.emplace_back(cell);
  values_.push_back({value});
}

const std::vector<double>* SweepAggregator::Find(std::string_view cell) const {
  for (size_t i = 0; i < order_.size(); ++i) {
    if (order_[i] == cell) {
      return &values_[i];
    }
  }
  return nullptr;
}

bool SweepAggregator::Has(std::string_view cell) const {
  return Find(cell) != nullptr;
}

const std::vector<double>& SweepAggregator::values(std::string_view cell) const {
  const std::vector<double>* found = Find(cell);
  SIM_CHECK(found != nullptr && "unknown aggregator cell");
  return *found;
}

double SweepAggregator::Mean(std::string_view cell) const {
  const std::vector<double>* found = Find(cell);
  if (found == nullptr || found->empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : *found) {
    sum += v;
  }
  return sum / static_cast<double>(found->size());
}

double SweepAggregator::Stddev(std::string_view cell) const {
  const std::vector<double>* found = Find(cell);
  if (found == nullptr || found->size() < 2) {
    return 0.0;
  }
  RunningStat stat;
  for (double v : *found) {
    stat.Add(v);
  }
  return stat.stddev();
}

double SweepAggregator::GeoMeanOf(std::string_view cell) const {
  const std::vector<double>* found = Find(cell);
  if (found == nullptr) {
    return 0.0;
  }
  for (double v : *found) {
    if (v <= 0.0) {
      return 0.0;  // geomean undefined for nonpositive values (e.g. 0 ratios)
    }
  }
  return GeoMean(*found);
}

std::string SweepToJson(const SweepSpec& sweep, const std::vector<JobSpec>& jobs,
                        const std::vector<JobResult>& results,
                        const SinkOptions& options) {
  SIM_CHECK(jobs.size() == results.size());
  std::string out;
  JsonWriter w(&out, options.indent);
  w.BeginObject();
  w.Field("schema_version", static_cast<uint64_t>(3));
  WriteSweepBlock(w, sweep);

  w.Key("jobs");
  w.BeginArray();
  for (size_t i = 0; i < jobs.size(); ++i) {
    WriteJob(w, jobs[i], results[i], i, options.timelines);
  }
  w.EndArray();

  if (options.aggregates) {
    std::vector<const JobSpec*> specs;
    std::vector<const JobResult*> result_ptrs;
    specs.reserve(jobs.size());
    result_ptrs.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      specs.push_back(&jobs[i]);
      result_ptrs.push_back(&results[i]);
    }
    WriteAggregates(w, specs, result_ptrs);
  }

  w.EndObject();
  out.push_back('\n');
  return out;
}

std::string SweepToJson(const SweepSpec& sweep, const std::vector<JobSpec>& jobs,
                        const std::vector<CellOutcome>& outcomes,
                        const SinkOptions& options) {
  SIM_CHECK(jobs.size() == outcomes.size());
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t not_run = 0;
  for (const CellOutcome& out : outcomes) {
    if (out.ok) {
      ++completed;
    } else if (out.ran) {
      ++failed;
    } else {
      ++not_run;
    }
  }

  std::string out;
  JsonWriter w(&out, options.indent);
  w.BeginObject();
  w.Field("schema_version", static_cast<uint64_t>(4));
  WriteSweepBlock(w, sweep);

  w.Key("summary");
  w.BeginObject();
  w.Field("cells_total", static_cast<uint64_t>(jobs.size()));
  w.Field("cells_completed", completed);
  w.Field("cells_failed", failed);
  w.Field("cells_not_run", not_run);
  w.EndObject();

  w.Key("jobs");
  w.BeginArray();
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!outcomes[i].ok) {
      continue;
    }
    WriteJob(w, jobs[i], outcomes[i].result, i, options.timelines,
             outcomes[i].attempts);
  }
  w.EndArray();

  w.Key("failures");
  w.BeginArray();
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (outcomes[i].ok) {
      continue;
    }
    w.BeginObject();
    w.Field("id", static_cast<uint64_t>(i));
    WriteSpecFields(w, jobs[i]);
    w.Field("fingerprint", JobFingerprint(jobs[i]));
    w.Field("status", outcomes[i].ran ? "failed" : "not-run");
    w.Field("attempts", outcomes[i].attempts);
    w.Key("failure");
    WriteJobFailureJson(w, outcomes[i].failure);
    w.EndObject();
  }
  w.EndArray();

  if (options.aggregates) {
    std::vector<const JobSpec*> specs;
    std::vector<const JobResult*> result_ptrs;
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (!outcomes[i].ok) {
        continue;
      }
      specs.push_back(&jobs[i]);
      result_ptrs.push_back(&outcomes[i].result);
    }
    WriteAggregates(w, specs, result_ptrs);
  }

  w.EndObject();
  out.push_back('\n');
  return out;
}

std::string CsvEscape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quotes) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') {
      out.push_back('"');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

namespace {

constexpr const char kCsvHeader[] =
    "id,system,benchmark,machine,fast_ratio,base_seed,seed_index,"
    "footprint_bytes,fast_bytes,accesses,app_ns,effective_runtime_ns,mops,"
    "fast_hit_ratio,critical_path_ns,tlb_miss_ratio,tlb_shootdowns,"
    "promoted_4k,demoted_4k,splits,collapses,final_huge_ratio,mean_ehr,"
    "sampler_cpu";

// One CSV row; attempts >= 0 appends the outcome-aware trailing column.
void AppendCsvRow(std::string& out, size_t id, const JobSpec& spec,
                  const JobResult& r, int attempts) {
  const Metrics& m = r.metrics;
  out += std::to_string(id);
  out += ',';
  out += CsvEscape(spec.system);
  out += ',';
  out += CsvEscape(spec.benchmark);
  out += ',';
  out += spec.machine_name();
  out += ',';
  out += JsonWriter::FormatDouble(spec.fast_ratio);
  out += ',';
  out += std::to_string(spec.base_seed);
  out += ',';
  out += std::to_string(spec.seed_index);
  out += ',';
  out += std::to_string(r.footprint_bytes);
  out += ',';
  out += std::to_string(r.fast_bytes);
  out += ',';
  out += std::to_string(m.accesses);
  out += ',';
  out += std::to_string(m.app_ns);
  out += ',';
  out += JsonWriter::FormatDouble(m.EffectiveRuntimeNs());
  out += ',';
  out += JsonWriter::FormatDouble(m.Mops());
  out += ',';
  out += JsonWriter::FormatDouble(m.fast_hit_ratio());
  out += ',';
  out += std::to_string(m.critical_path_ns);
  out += ',';
  out += JsonWriter::FormatDouble(m.tlb.miss_ratio());
  out += ',';
  out += std::to_string(m.tlb.shootdowns);
  out += ',';
  out += std::to_string(m.migration.promoted_4k());
  out += ',';
  out += std::to_string(m.migration.demoted_4k());
  out += ',';
  out += std::to_string(m.migration.splits);
  out += ',';
  out += std::to_string(m.migration.collapses);
  out += ',';
  out += JsonWriter::FormatDouble(m.final_huge_ratio);
  out += ',';
  out += JsonWriter::FormatDouble(r.mean_ehr);
  out += ',';
  out += JsonWriter::FormatDouble(r.sampler_cpu);
  if (attempts >= 0) {
    out += ',';
    out += std::to_string(attempts);
  }
  out += '\n';
}

}  // namespace

std::string SweepToCsv(const std::vector<JobSpec>& jobs,
                       const std::vector<JobResult>& results) {
  SIM_CHECK(jobs.size() == results.size());
  std::string out = kCsvHeader;
  out += '\n';
  for (size_t i = 0; i < jobs.size(); ++i) {
    AppendCsvRow(out, i, jobs[i], results[i], /*attempts=*/-1);
  }
  return out;
}

std::string SweepToCsv(const std::vector<JobSpec>& jobs,
                       const std::vector<CellOutcome>& outcomes) {
  SIM_CHECK(jobs.size() == outcomes.size());
  std::string out = kCsvHeader;
  out += ",attempts\n";
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!outcomes[i].ok) {
      continue;
    }
    AppendCsvRow(out, i, jobs[i], outcomes[i].result, outcomes[i].attempts);
  }
  return out;
}

std::string FailureSummary(const std::vector<JobSpec>& jobs,
                           const std::vector<CellOutcome>& outcomes) {
  SIM_CHECK(jobs.size() == outcomes.size());
  size_t failed = 0;
  size_t not_run = 0;
  for (const CellOutcome& out : outcomes) {
    if (out.ok) {
      continue;
    }
    if (out.ran) {
      ++failed;
    } else {
      ++not_run;
    }
  }
  if (failed == 0 && not_run == 0) {
    return {};
  }
  std::string out = std::to_string(failed) + " cell(s) failed, " +
                    std::to_string(not_run) + " never ran (of " +
                    std::to_string(jobs.size()) + " total):\n";
  for (size_t i = 0; i < jobs.size(); ++i) {
    const CellOutcome& cell = outcomes[i];
    if (cell.ok) {
      continue;
    }
    const JobSpec& spec = jobs[i];
    out += "  [" + std::to_string(i) + "] " + spec.system + "/" +
           spec.benchmark + "/" + spec.machine_name() +
           " ratio=" + JsonWriter::FormatDouble(spec.fast_ratio) +
           " seed_index=" + std::to_string(spec.seed_index) + ": ";
    out += FailureKindName(cell.failure.kind);
    if (!cell.failure.message.empty()) {
      out += " — " + cell.failure.message;
    }
    if (cell.attempts > 1) {
      out += " (after " + std::to_string(cell.attempts) + " attempts)";
    }
    out += '\n';
    if (!cell.failure.reproducer_cmdline.empty()) {
      out += "      repro: " + cell.failure.reproducer_cmdline + '\n';
    }
  }
  return out;
}

std::string AuditToJson(const std::vector<JobSpec>& jobs,
                        const std::vector<JobResult>& results,
                        const SinkOptions& options) {
  SIM_CHECK(jobs.size() == results.size());
  uint64_t jobs_audited = 0;
  uint64_t violations_total = 0;
  for (const JobResult& r : results) {
    if (r.audited) {
      ++jobs_audited;
      violations_total += r.audit_report.violations_total;
    }
  }

  std::string out;
  JsonWriter w(&out, options.indent);
  w.BeginObject();
  w.Field("schema_version", static_cast<uint64_t>(2));
  w.Key("summary");
  w.BeginObject();
  w.Field("jobs", static_cast<uint64_t>(jobs.size()));
  w.Field("jobs_audited", jobs_audited);
  w.Field("violations_total", violations_total);
  w.Field("ok", violations_total == 0);
  w.EndObject();
  w.Key("jobs");
  w.BeginArray();
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!results[i].audited) {
      continue;
    }
    const JobResult& r = results[i];
    w.BeginObject();
    w.Field("id", static_cast<uint64_t>(i));
    WriteSpecFields(w, jobs[i]);
    w.Key("report");
    r.audit_report.WriteJson(w);
    if (r.epoch_interval_ns != 0) {
      w.Key("epochs");
      w.BeginObject();
      w.Field("interval_ns", r.epoch_interval_ns);
      w.Field("recorded_total", r.epochs_recorded_total);
      w.Field("dropped", r.epochs_recorded_total - r.epochs.size());
      w.Key("samples");
      w.BeginArray();
      for (const EpochSample& s : r.epochs) {
        s.WriteJson(w);
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  out.push_back('\n');
  return out;
}

std::string AuditToJson(const std::vector<JobSpec>& jobs,
                        const std::vector<CellOutcome>& outcomes,
                        const SinkOptions& options) {
  SIM_CHECK(jobs.size() == outcomes.size());
  // Failed/never-run cells have no audit output; a default (audited = false)
  // result drops them from the document while keeping job ids aligned.
  std::vector<JobResult> results(outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].ok) {
      results[i] = outcomes[i].result;
    }
  }
  return AuditToJson(jobs, results, options);
}

bool WriteResultFile(const std::string& path, std::string_view data) {
  if (path.empty() || path == "-") {
    std::fwrite(data.data(), 1, data.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "memtis_run: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace memtis
