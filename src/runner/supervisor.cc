#include "src/runner/supervisor.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "src/common/check.h"
#include "src/common/json.h"
#include "src/common/json_parse.h"
#include "src/runner/checkpoint_runner.h"
#include "src/runner/job_codec.h"

namespace memtis {
namespace {

// Pipe payload tags: the child's first byte says what follows.
//   'R' + JSON  — a complete JobResult (success; child then _exit(0)s)
//   'C' + JSON  — a SIM_CHECK failure record, written by the check hook just
//                 before abort(); the JSON is {"expr","file","line"}.
//   'F' + JSON  — a structured JobFailure the child diagnosed itself (e.g. a
//                 checkpoint-armed cell whose policy cannot checkpoint); the
//                 child then _exit(0)s and the parent adopts the failure.
constexpr char kTagResult = 'R';
constexpr char kTagCheck = 'C';
constexpr char kTagFail = 'F';

constexpr uint64_t kBackoffCapMs = 10'000;
// Safety cap for MEMTIS_HANG_CELL when no watchdog is armed: exit instead of
// wedging a test run forever.
constexpr int kHangSafetyCapSeconds = 600;

uint64_t NowMs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1'000'000;
}

void SleepMs(uint64_t ms) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1'000'000);
  while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

void WriteFully(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // the parent is gone; nothing useful left to do
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
}

// Check-failure hook installed in the child: streams the failing expression
// through the result pipe (tagged 'C') so the parent attaches it to the
// structured JobFailure instead of fishing it out of stderr.
void ReportCheckThroughPipe(const char* expr, const char* file, int line,
                            void* arg) {
  const int fd = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  std::string payload(1, kTagCheck);
  JsonWriter w(&payload, 0);
  w.BeginObject();
  w.Field("expr", expr);
  w.Field("file", file);
  w.Field("line", line);
  w.EndObject();
  WriteFully(fd, payload.data(), payload.size());
}

// MEMTIS_CRASH_CELL / MEMTIS_HANG_CELL matching: "<fingerprint>[:N]" where N
// bounds the crashing attempts (crash while attempt < N; default all).
bool HookMatches(const char* env_name, const std::string& fingerprint,
                 int attempt) {
  const char* value = std::getenv(env_name);
  if (value == nullptr || value[0] == '\0') {
    return false;
  }
  std::string_view spec(value);
  int max_crashing_attempts = -1;  // -1 = every attempt
  if (const size_t colon = spec.find(':'); colon != std::string_view::npos) {
    max_crashing_attempts = std::atoi(std::string(spec.substr(colon + 1)).c_str());
    spec = spec.substr(0, colon);
  }
  if (spec != fingerprint) {
    return false;
  }
  return max_crashing_attempts < 0 || attempt < max_crashing_attempts;
}

[[noreturn]] void RunChild(const JobSpec& spec, const std::string& fingerprint,
                           int attempt, const SupervisorOptions& options,
                           int result_fd, int stderr_fd) {
  // SIGINT belongs to the sweep driver: a ^C cancels queued cells while
  // in-flight children drain, so children must outlive the terminal's
  // process-group-wide SIGINT.
  std::signal(SIGINT, SIG_IGN);
  dup2(stderr_fd, STDERR_FILENO);
  close(stderr_fd);
  SetCheckFailureHook(ReportCheckThroughPipe,
                      reinterpret_cast<void*>(static_cast<intptr_t>(result_fd)));

  if (HookMatches("MEMTIS_HANG_CELL", fingerprint, attempt)) {
    std::fprintf(stderr, "MEMTIS_HANG_CELL: cell %s attempt %d hanging\n",
                 fingerprint.c_str(), attempt);
    for (int i = 0; i < kHangSafetyCapSeconds * 20; ++i) {
      SleepMs(50);
    }
    _exit(86);
  }
  if (HookMatches("MEMTIS_CRASH_CELL", fingerprint, attempt)) {
    std::fprintf(stderr, "MEMTIS_CRASH_CELL: cell %s attempt %d crashing\n",
                 fingerprint.c_str(), attempt);
    // Through SIM_CHECK on purpose: the injected crash exercises the same
    // hook-report-then-abort path a real invariant failure takes.
    SIM_CHECK(false && "MEMTIS_CRASH_CELL injected crash");
  }

  JobResult result;
  const bool checkpointing =
      options.checkpoint_ns > 0 && !options.checkpoint_dir.empty();
  if (checkpointing) {
    std::string why;
    if (!CheckpointSupported(spec, &why)) {
      // Structured refusal: snapshots for this cell could not restore
      // faithfully, so refuse up front instead of silently degrading.
      JobFailure refusal;
      refusal.kind = FailureKind::kInvalidSpec;
      refusal.message = "cell cannot checkpoint: " + why;
      std::string payload(1, kTagFail);
      JsonWriter w(&payload, 0);
      WriteJobFailureJson(w, refusal);
      WriteFully(result_fd, payload.data(), payload.size());
      close(result_fd);
      _exit(0);
    }
    CheckpointContext ctx;
    ctx.interval_ns = options.checkpoint_ns;
    ctx.snapshot_base = options.checkpoint_dir + "/" + fingerprint + ".ckpt";
    ctx.fingerprint = fingerprint;
    ctx.attempt = static_cast<uint32_t>(attempt);
    result = RunJobCheckpointed(spec, ctx);
  } else {
    result = RunJob(spec);
  }
  std::string payload(1, kTagResult);
  JsonWriter w(&payload, 0);
  WriteJobResultJson(w, result);
  WriteFully(result_fd, payload.data(), payload.size());
  close(result_fd);
  // _exit, not exit: the forked child shares the parent's heap and must not
  // run atexit handlers, flush shared streams, or trip leak detection on
  // objects owned by parent threads that do not exist here.
  _exit(0);
}

struct PipeReader {
  int fd = -1;
  bool open = false;
  std::string data;
  size_t cap = 0;  // 0 = unbounded; otherwise keep only the last `cap` bytes

  void Drain() {
    char buf[4096];
    for (;;) {
      const ssize_t n = read(fd, buf, sizeof(buf));
      if (n > 0) {
        data.append(buf, static_cast<size_t>(n));
        if (cap != 0 && data.size() > cap) {
          data.erase(0, data.size() - cap);
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;  // no more for now
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      close(fd);
      open = false;
      return;  // EOF or hard error: stop watching this pipe
    }
  }
};

// One forked attempt. Fills either outcome->result (ok) or outcome->failure
// (everything but the reproducer, which the retry loop owns).
void RunAttempt(const JobSpec& spec, const std::string& fingerprint,
                int attempt, const SupervisorOptions& options,
                SupervisedOutcome* outcome) {
  outcome->ok = false;
  outcome->failure = JobFailure();

  int result_pipe[2];
  int stderr_pipe[2];
  if (pipe(result_pipe) != 0 || pipe(stderr_pipe) != 0) {
    outcome->failure.kind = FailureKind::kProtocol;
    outcome->failure.message =
        std::string("pipe() failed: ") + std::strerror(errno);
    return;
  }

  const pid_t pid = fork();
  if (pid < 0) {
    for (const int fd : {result_pipe[0], result_pipe[1], stderr_pipe[0],
                         stderr_pipe[1]}) {
      close(fd);
    }
    outcome->failure.kind = FailureKind::kProtocol;
    outcome->failure.message =
        std::string("fork() failed: ") + std::strerror(errno);
    return;
  }
  if (pid == 0) {
    close(result_pipe[0]);
    close(stderr_pipe[0]);
    RunChild(spec, fingerprint, attempt, options, result_pipe[1],
             stderr_pipe[1]);
  }

  close(result_pipe[1]);
  close(stderr_pipe[1]);
  // Drain() reads until EAGAIN, so the parent's read ends must be
  // non-blocking (the child's write ends stay blocking — a full pipe must
  // backpressure the child, not drop its payload).
  fcntl(result_pipe[0], F_SETFL, O_NONBLOCK);
  fcntl(stderr_pipe[0], F_SETFL, O_NONBLOCK);
  PipeReader result{result_pipe[0], true, {}, 0};
  PipeReader err{stderr_pipe[0], true, {}, options.stderr_tail_bytes};

  const bool has_deadline = options.job_timeout_ms > 0;
  const uint64_t deadline_ms = NowMs() + options.job_timeout_ms;
  bool timed_out = false;

  while (result.open || err.open) {
    pollfd fds[2];
    nfds_t nfds = 0;
    for (PipeReader* reader : {&result, &err}) {
      if (reader->open) {
        fds[nfds].fd = reader->fd;
        fds[nfds].events = POLLIN;
        fds[nfds].revents = 0;
        ++nfds;
      }
    }
    int timeout = -1;
    if (has_deadline && !timed_out) {
      const uint64_t now = NowMs();
      timeout = now >= deadline_ms ? 0 : static_cast<int>(deadline_ms - now);
    }
    const int rc = poll(fds, nfds, timeout);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (rc == 0) {
      // Watchdog fired: down the child, then keep draining until EOF so the
      // stderr tail and any partial payload survive into the failure record.
      timed_out = true;
      kill(pid, SIGKILL);
      continue;
    }
    for (nfds_t i = 0; i < nfds; ++i) {
      if (fds[i].revents == 0) {
        continue;
      }
      PipeReader* reader = fds[i].fd == result.fd ? &result : &err;
      reader->Drain();
    }
  }

  int status = 0;
  while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }

  JobFailure& failure = outcome->failure;
  failure.stderr_tail = err.data;
  if (!result.data.empty() && result.data[0] == kTagCheck) {
    JsonValue check;
    if (JsonValue::Parse(result.data.substr(1), &check, nullptr)) {
      failure.check_expr = check.GetString("expr") + " at " +
                           check.GetString("file") + ":" +
                           std::to_string(check.GetInt("line"));
    }
  }

  if (timed_out) {
    failure.kind = FailureKind::kTimeout;
    failure.signal = SIGKILL;
    failure.message = "deadline of " + std::to_string(options.job_timeout_ms) +
                      " ms exceeded; child SIGKILLed";
    return;
  }
  if (WIFSIGNALED(status)) {
    failure.kind = FailureKind::kCrash;
    failure.signal = WTERMSIG(status);
    failure.message =
        std::string("child killed by signal ") + std::to_string(failure.signal);
    if (!failure.check_expr.empty()) {
      failure.message += " (SIM_CHECK: " + failure.check_expr + ")";
    }
    return;
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
    failure.kind = FailureKind::kExit;
    failure.exit_status = WEXITSTATUS(status);
    failure.message =
        "child exited with status " + std::to_string(failure.exit_status);
    return;
  }
  // Clean exit with a self-diagnosed failure: adopt it verbatim.
  if (!result.data.empty() && result.data[0] == kTagFail) {
    JsonValue doc;
    if (JsonValue::Parse(result.data.substr(1), &doc, nullptr) &&
        ReadJobFailureJson(doc, &failure)) {
      failure.stderr_tail = err.data;
      return;
    }
    failure.kind = FailureKind::kProtocol;
    failure.message = "child reported an unparseable failure payload";
    return;
  }
  // Clean exit: the payload must be a parseable tagged result.
  if (result.data.empty() || result.data[0] != kTagResult) {
    failure.kind = FailureKind::kProtocol;
    failure.message = "child exited 0 without a result payload";
    return;
  }
  JsonValue doc;
  std::string parse_error;
  if (!JsonValue::Parse(result.data.substr(1), &doc, &parse_error) ||
      !ReadJobResultJson(doc, &outcome->result)) {
    failure.kind = FailureKind::kProtocol;
    failure.message = "unparseable result payload: " + parse_error;
    return;
  }
  failure = JobFailure();
  outcome->ok = true;
}

}  // namespace

SupervisedOutcome RunJobSupervised(const JobSpec& spec,
                                   const SupervisorOptions& options) {
  const std::string fingerprint = JobFingerprint(spec);
  const int max_attempts = options.max_attempts < 1 ? 1 : options.max_attempts;

  const int first_attempt = options.first_attempt < 0 ? 0 : options.first_attempt;

  const bool checkpointing =
      options.checkpoint_ns > 0 && !options.checkpoint_dir.empty();

  SupervisedOutcome outcome;
  int attempt = first_attempt;
  int fresh_attempts = 0;   // attempts with distinct derived seeds
  int resume_retries = 0;   // same-attempt restore-from-snapshot re-runs
  int runs = 0;
  for (;;) {
    if (runs > 0 && options.backoff_base_ms > 0) {
      const uint64_t backoff = options.backoff_base_ms
                               << (runs - 1 < 16 ? runs - 1 : 16);
      SleepMs(backoff < kBackoffCapMs ? backoff : kBackoffCapMs);
    }
    JobSpec attempt_spec = spec;
    attempt_spec.engine_seed = AttemptEngineSeed(spec.engine_seed, attempt);
    RunAttempt(attempt_spec, fingerprint, attempt, options, &outcome);
    ++runs;
    outcome.attempts = attempt + 1;
    if (outcome.ok) {
      return outcome;
    }
    outcome.failure.reproducer_cmdline = ReproducerCmdline(spec, attempt);
    if (!IsRecoverable(outcome.failure.kind)) {
      return outcome;
    }
    // SIGKILL-class deaths leave valid snapshots behind: re-run the SAME
    // attempt so the child restores instead of recomputing. Everything else
    // advances the attempt (new seed; old snapshots go stale and are
    // ignored), exactly as before checkpointing existed.
    const bool resumable =
        checkpointing &&
        (outcome.failure.kind == FailureKind::kTimeout ||
         (outcome.failure.kind == FailureKind::kCrash &&
          outcome.failure.signal == SIGKILL));
    if (resumable && resume_retries < options.max_resume_retries) {
      ++resume_retries;
      continue;
    }
    ++attempt;
    if (++fresh_attempts >= max_attempts) {
      return outcome;
    }
  }
}

}  // namespace memtis
