// Checkpointed resume for sweeps: an append-only JSONL manifest of completed
// cells keyed by canonical JobSpec fingerprint (job_codec.h).
//
// Each line is one self-contained JSON object — {"v":1,"fingerprint":...,
// "cell":...,"spec":{...},"ok":...,"attempts":...,"result"|"failure":{...}} —
// flushed as soon as the cell finishes, so a manifest is valid after a crash
// or SIGKILL at any byte: the loader skips unparseable lines (most commonly a
// truncated final line) and keeps going. Duplicate fingerprints are
// last-wins, which makes re-running with the same --resume path idempotent.
//
// On resume only ok entries are trusted; failed entries are recorded for the
// report but their cells re-run. Results round-trip through the lossless
// codec, so an aggregate built from manifest entries is byte-identical to one
// built from live runs (scripts/smoke_resume.sh proves this end to end).

#ifndef MEMTIS_SIM_SRC_RUNNER_MANIFEST_H_
#define MEMTIS_SIM_SRC_RUNNER_MANIFEST_H_

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "src/runner/supervisor.h"
#include "src/runner/sweep.h"

namespace memtis {

struct ManifestEntry {
  bool ok = false;
  int attempts = 0;
  JobResult result;    // valid when ok
  JobFailure failure;  // valid when !ok
};

struct ManifestLoadStats {
  size_t lines_total = 0;
  size_t lines_skipped = 0;  // unparseable (e.g. truncated tail) — tolerated
  size_t entries = 0;        // distinct fingerprints after last-wins dedup
};

// Loads a JSONL manifest into `out` (fingerprint -> entry). A missing file is
// success with zero entries (first run of a --resume sweep). Returns false
// only when the file exists but cannot be read.
bool LoadManifest(const std::string& path,
                  std::map<std::string, ManifestEntry>* out,
                  ManifestLoadStats* stats = nullptr,
                  std::string* error = nullptr);

// Append-only manifest writer; Append is serialized and flushes per line so
// concurrent ThreadPool workers interleave whole records, never bytes.
class ManifestWriter {
 public:
  ManifestWriter() = default;
  ~ManifestWriter();
  ManifestWriter(const ManifestWriter&) = delete;
  ManifestWriter& operator=(const ManifestWriter&) = delete;

  // Opens `path` for appending. Returns false (with `error`) on failure.
  bool Open(const std::string& path, std::string* error = nullptr);
  bool is_open() const { return file_ != nullptr; }

  // Writes one completed-cell record. Safe to call from multiple threads.
  void Append(const std::string& fingerprint, const JobSpec& spec,
              const SupervisedOutcome& outcome);

  void Close();

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_RUNNER_MANIFEST_H_
