#include "src/runner/coordinator.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include "src/common/json.h"
#include "src/common/json_parse.h"
#include "src/common/netio.h"
#include "src/runner/job_codec.h"

namespace memtis {
namespace {

constexpr int kPollTickMs = 50;
constexpr int kFileScanSleepMs = 40;

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool AppendLine(const std::string& path, const std::string& line) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return false;
  }
  std::fwrite(line.data(), 1, line.size(), f);
  std::fputc('\n', f);
  std::fflush(f);
  std::fclose(f);
  return true;
}

}  // namespace

Campaign::Campaign(const std::vector<JobSpec>& jobs,
                   const CampaignOptions& options,
                   const std::map<std::string, ManifestEntry>& preloaded,
                   const ProgressFn& progress, std::string* manifest_error)
    : jobs_(jobs), options_(options), progress_(progress) {
  if (options_.max_attempts < 1) {
    options_.max_attempts = 1;
  }
  fingerprints_.reserve(jobs.size());
  for (const JobSpec& job : jobs) {
    fingerprints_.push_back(JobFingerprint(job));
  }
  states_.resize(jobs.size());
  outcomes_.resize(jobs.size());
  if (!options_.manifest_path.empty()) {
    std::string open_error;
    if (!writer_.Open(options_.manifest_path, &open_error) &&
        manifest_error != nullptr) {
      *manifest_error = open_error;  // serve anyway; checkpointing is lost
    }
  }
  // Resume pass, mirroring RunJobsResilient: trust only ok manifest entries.
  for (size_t i = 0; i < jobs.size(); ++i) {
    const auto it = preloaded.find(fingerprints_[i]);
    if (it == preloaded.end() || !it->second.ok) {
      continue;
    }
    CellOutcome& out = outcomes_[i];
    out.ok = true;
    out.from_manifest = true;
    out.attempts = it->second.attempts;
    out.result = it->second.result;
    states_[i].phase = CellPhase::kDone;
    ++decided_;
    Report(i);
  }
}

void Campaign::CheckCancelled() {
  if (!cancel_latched_ && options_.cancelled != nullptr && options_.cancelled()) {
    cancel_latched_ = true;
  }
}

bool Campaign::Issuable(const CellState& st) const {
  if (st.phase != CellPhase::kPending) {
    return false;
  }
  // Once cancelled, only cells that already consumed an attempt keep going:
  // the distributed analogue of a local in-flight cell draining its retry
  // budget. Fresh cells stay pending and end up kCancelled.
  return !cancel_latched_ || st.attempt > 0;
}

std::optional<WorkItem> Campaign::NextIssue(uint64_t now_ms) {
  CheckCancelled();
  for (size_t i = 0; i < states_.size(); ++i) {
    CellState& st = states_[i];
    if (!Issuable(st)) {
      continue;
    }
    st.phase = CellPhase::kIssued;
    st.deadline_ms = now_ms + options_.lease_timeout_ms;
    ++issued_count_;
    ++stats_.issues;
    WorkItem item;
    item.index = i;
    item.attempt = st.attempt;
    item.issue = st.issue;
    item.job_timeout_ms = options_.job_timeout_ms;
    item.checkpoint_ns = options_.checkpoint_ns;
    item.fingerprint = fingerprints_[i];
    item.spec = jobs_[i];
    return item;
  }
  return std::nullopt;
}

bool Campaign::ObserveClaim(size_t index, int attempt, uint64_t issue,
                            uint64_t now_ms) {
  CheckCancelled();
  if (index >= states_.size()) {
    ++stats_.stale_claims;
    return false;
  }
  CellState& st = states_[index];
  if (!Issuable(st) || attempt != st.attempt || issue != st.issue) {
    ++stats_.stale_claims;
    return false;
  }
  st.phase = CellPhase::kIssued;
  st.deadline_ms = now_ms + options_.lease_timeout_ms;
  ++issued_count_;
  ++stats_.issues;
  return true;
}

bool Campaign::Renew(size_t index, int attempt, uint64_t issue,
                     uint64_t now_ms) {
  if (index >= states_.size()) {
    return false;
  }
  CellState& st = states_[index];
  if (st.phase != CellPhase::kIssued || st.attempt != attempt ||
      st.issue != issue) {
    return false;
  }
  st.deadline_ms = now_ms + options_.lease_timeout_ms;
  return true;
}

bool Campaign::OnOutcome(size_t index, int attempt,
                         const SupervisedOutcome& outcome) {
  if (index >= states_.size()) {
    ++stats_.stale_results;
    return false;
  }
  CellState& st = states_[index];
  // Accept iff undecided and the attempt matches — regardless of which issue
  // delivered it: after a lease expiry, the original (presumed-dead) worker
  // and the re-issued one race the same attempt, and equal (spec, attempt)
  // means equal bytes, so first-in wins and the loser is stale below.
  if (st.phase == CellPhase::kDone || attempt != st.attempt) {
    ++stats_.stale_results;
    return false;
  }
  if (outcome.ok) {
    // attempts is recomputed, not trusted from the wire: attempt indices are
    // global, so this attempt is number attempt + 1.
    Decide(index, true, attempt + 1, outcome.result, JobFailure());
    return true;
  }
  if (IsRecoverable(outcome.failure.kind) &&
      attempt + 1 < options_.max_attempts) {
    if (st.phase == CellPhase::kIssued) {
      --issued_count_;
    }
    st.phase = CellPhase::kPending;
    st.attempt = attempt + 1;
    ++st.issue;
    ++stats_.retries;
    return true;
  }
  JobFailure failure = outcome.failure;
  if (failure.reproducer_cmdline.empty()) {
    failure.reproducer_cmdline = ReproducerCmdline(jobs_[index], attempt);
  }
  Decide(index, false, attempt + 1, JobResult(), std::move(failure));
  return true;
}

void Campaign::OnLeaseLost(size_t index, uint64_t issue) {
  if (index >= states_.size()) {
    return;
  }
  CellState& st = states_[index];
  if (st.phase == CellPhase::kDone || st.issue != issue) {
    return;  // a newer lease superseded this one already
  }
  if (st.phase == CellPhase::kIssued) {
    --issued_count_;
  }
  st.phase = CellPhase::kPending;
  ++st.issue;  // the dead tuple can never be claimed again
  ++st.reissues;
  ++stats_.leases_lost;
  if (st.reissues > options_.max_reissues) {
    JobFailure failure;
    failure.kind = FailureKind::kLeaseExpired;
    failure.message = "lease lost " + std::to_string(st.reissues) +
                      " times (worker died or stopped renewing); giving up";
    failure.reproducer_cmdline = ReproducerCmdline(jobs_[index], st.attempt);
    Decide(index, false, st.attempt, JobResult(), std::move(failure));
  }
}

void Campaign::ExpireStale(uint64_t now_ms) {
  for (size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].phase == CellPhase::kIssued &&
        now_ms > states_[i].deadline_ms) {
      OnLeaseLost(i, states_[i].issue);
    }
  }
}

bool Campaign::Finished() {
  CheckCancelled();
  if (decided_ == states_.size()) {
    return true;
  }
  if (!cancel_latched_ || issued_count_ != 0) {
    return false;
  }
  for (const CellState& st : states_) {
    if (st.phase == CellPhase::kPending && st.attempt > 0) {
      return false;  // a started cell still drains its retry budget
    }
  }
  return true;
}

std::vector<CellOutcome> Campaign::Finish() {
  writer_.Close();
  for (size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].phase == CellPhase::kDone) {
      continue;
    }
    CellOutcome& out = outcomes_[i];
    out.failure.kind = FailureKind::kCancelled;
    out.failure.message = "cell never ran (sweep cancelled)";
    out.failure.reproducer_cmdline =
        ReproducerCmdline(jobs_[i], states_[i].attempt);
  }
  return std::move(outcomes_);
}

void Campaign::Decide(size_t index, bool ok, int attempts, JobResult result,
                      JobFailure failure) {
  CellState& st = states_[index];
  if (st.phase == CellPhase::kIssued) {
    --issued_count_;
  }
  st.phase = CellPhase::kDone;
  ++decided_;
  if (writer_.is_open()) {
    SupervisedOutcome record;
    record.ok = ok;
    record.attempts = attempts;
    record.result = result;
    record.failure = failure;
    writer_.Append(fingerprints_[index], jobs_[index], record);
  }
  CellOutcome& out = outcomes_[index];
  out.ok = ok;
  out.ran = true;
  out.attempts = attempts;
  out.result = std::move(result);
  out.failure = std::move(failure);
  Report(index);
  if (!ok && !options_.keep_going) {
    cancel_latched_ = true;
  }
}

void Campaign::Report(size_t index) {
  ++progress_done_;
  if (progress_ != nullptr) {
    progress_(progress_done_, states_.size(), index);
  }
}

// ---------------------------------------------------------------------------
// Socket serve loop.

namespace {

struct Conn {
  int fd = -1;
  FrameDecoder decoder;
  std::string worker = "?";
  std::vector<std::pair<size_t, uint64_t>> leases;  // (index, issue)
  bool dead = false;
};

void RemoveLease(Conn* conn, size_t index, uint64_t issue) {
  for (size_t i = 0; i < conn->leases.size(); ++i) {
    if (conn->leases[i].first == index && conn->leases[i].second == issue) {
      conn->leases.erase(conn->leases.begin() + static_cast<long>(i));
      return;
    }
  }
}

void HandleFrame(Conn* conn, const std::string& frame, Campaign* campaign) {
  WorkerRequest req;
  std::string parse_error;
  if (!ParseWorkerRequest(frame, &req, &parse_error)) {
    // A garbled peer costs only its own connection: the error reply is
    // best-effort, the drop releases its leases for deterministic re-issue.
    SendFrame(conn->fd, EncodeErrorReply(parse_error));
    conn->dead = true;
    return;
  }
  const uint64_t now = MonotonicMs();
  bool sent = true;
  switch (req.kind) {
    case WorkerRequest::Kind::kClaim: {
      if (!req.worker.empty()) {
        conn->worker = req.worker;
      }
      if (std::optional<WorkItem> item = campaign->NextIssue(now)) {
        conn->leases.emplace_back(item->index, item->issue);
        sent = SendFrame(conn->fd, EncodeCellReply(*item));
      } else {
        sent = SendFrame(conn->fd,
                         EncodeSimpleReply(campaign->Finished()
                                               ? CoordinatorReply::Kind::kDone
                                               : CoordinatorReply::Kind::kRetry));
      }
      break;
    }
    case WorkerRequest::Kind::kRenew: {
      const bool renewed = campaign->Renew(req.index, req.attempt, req.issue, now);
      if (!renewed) {
        RemoveLease(conn, req.index, req.issue);
      }
      sent = SendFrame(conn->fd,
                       EncodeSimpleReply(renewed ? CoordinatorReply::Kind::kOk
                                                 : CoordinatorReply::Kind::kRevoked));
      break;
    }
    case WorkerRequest::Kind::kResult: {
      campaign->OnOutcome(req.index, req.attempt, req.outcome);
      RemoveLease(conn, req.index, req.issue);
      sent = SendFrame(conn->fd, EncodeSimpleReply(CoordinatorReply::Kind::kOk));
      break;
    }
  }
  if (!sent) {
    conn->dead = true;
  }
}

void DropConn(Conn* conn, Campaign* campaign) {
  for (const auto& [index, issue] : conn->leases) {
    campaign->OnLeaseLost(index, issue);
  }
  conn->leases.clear();
  if (conn->fd >= 0) {
    close(conn->fd);
    conn->fd = -1;
  }
}

}  // namespace

std::vector<CellOutcome> ServeSocketCampaign(
    const std::vector<JobSpec>& jobs, const CampaignOptions& options,
    uint16_t port, const std::function<void(uint16_t)>& on_listening,
    const std::map<std::string, ManifestEntry>& preloaded,
    const ProgressFn& progress, CampaignStats* stats, std::string* error,
    std::string* manifest_error) {
  uint16_t bound = 0;
  const int lfd = ListenLoopback(port, &bound, error);
  if (lfd < 0) {
    return {};
  }
  fcntl(lfd, F_SETFL, O_NONBLOCK);

  Campaign campaign(jobs, options, preloaded, progress, manifest_error);
  if (on_listening != nullptr) {
    on_listening(bound);
  }

  std::vector<std::unique_ptr<Conn>> conns;
  while (!campaign.Finished()) {
    campaign.ExpireStale(MonotonicMs());

    std::vector<pollfd> fds;
    fds.push_back({lfd, POLLIN, 0});
    for (const auto& conn : conns) {
      fds.push_back({conn->fd, POLLIN, 0});
    }
    const size_t polled_conns = conns.size();
    const int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()), kPollTickMs);
    if (rc < 0 && errno != EINTR) {
      break;
    }

    for (size_t c = 0; c < polled_conns; ++c) {
      Conn* conn = conns[c].get();
      const short revents = fds[c + 1].revents;
      if (revents == 0 || conn->dead) {
        continue;
      }
      char buf[16384];
      for (;;) {
        const ssize_t n = read(conn->fd, buf, sizeof(buf));
        if (n > 0) {
          conn->decoder.Feed(buf, static_cast<size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;
        }
        if (n < 0 && errno == EINTR) {
          continue;
        }
        conn->dead = true;  // EOF or hard error: the worker is gone
        break;
      }
      std::string frame;
      while (!conn->dead && conn->decoder.Next(&frame)) {
        HandleFrame(conn, frame, &campaign);
      }
      if (!conn->dead && conn->decoder.bad()) {
        SendFrame(conn->fd, EncodeErrorReply("garbled frame stream"));
        conn->dead = true;
      }
    }
    for (size_t c = conns.size(); c-- > 0;) {
      if (conns[c]->dead) {
        DropConn(conns[c].get(), &campaign);
        conns.erase(conns.begin() + static_cast<long>(c));
      }
    }

    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int cfd = accept(lfd, nullptr, nullptr);
        if (cfd < 0) {
          break;
        }
        fcntl(cfd, F_SETFL, O_NONBLOCK);
        auto conn = std::make_unique<Conn>();
        conn->fd = cfd;
        conns.push_back(std::move(conn));
      }
    }
  }

  // Campaign decided: closing every connection is the workers' "done" signal
  // (they also get an explicit done reply if they ask first).
  for (const auto& conn : conns) {
    DropConn(conn.get(), &campaign);
  }
  close(lfd);
  if (stats != nullptr) {
    *stats = campaign.stats();
  }
  return campaign.Finish();
}

// ---------------------------------------------------------------------------
// File serve loop.

namespace {

std::string WorkItemLine(const WorkItem& item) {
  std::string line;
  JsonWriter w(&line, 0);
  w.BeginObject();
  WriteWorkItemFields(w, item);
  w.EndObject();
  return line;
}

std::string TupleKey(size_t index, int attempt, uint64_t issue) {
  return std::to_string(index) + "-" + std::to_string(attempt) + "-" +
         std::to_string(issue);
}

int64_t FileAgeMs(const struct stat& st) {
  timespec now;
  clock_gettime(CLOCK_REALTIME, &now);
  return (static_cast<int64_t>(now.tv_sec) -
          static_cast<int64_t>(st.st_mtim.tv_sec)) *
             1000 +
         (static_cast<int64_t>(now.tv_nsec) -
          static_cast<int64_t>(st.st_mtim.tv_nsec)) /
             1'000'000;
}

// Re-reads every results-*.jsonl (tolerant of torn tails) and feeds unseen
// entries into the campaign. `applied` dedupes across scans so stats stay
// meaningful; re-applying would be harmless (stale results are ignored).
void ScanResultsFiles(const std::string& dir,
                      const std::map<std::string, std::vector<size_t>>& by_fp,
                      std::set<std::string>* applied, Campaign* campaign) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    return;
  }
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("results-", 0) != 0 ||
        name.size() < 6 + 8 ||  // "results-" ... ".jsonl"
        name.compare(name.size() - 6, 6, ".jsonl") != 0) {
      continue;
    }
    std::map<std::string, ManifestEntry> entries;
    if (!LoadManifest(dir + "/" + name, &entries, nullptr, nullptr)) {
      continue;
    }
    for (auto& [fp, manifest_entry] : entries) {
      if (manifest_entry.attempts < 1) {
        continue;
      }
      const std::string key = name + "|" + fp + "|" +
                              std::to_string(manifest_entry.attempts) +
                              (manifest_entry.ok ? "+" : "-");
      if (!applied->insert(key).second) {
        continue;
      }
      const auto it = by_fp.find(fp);
      if (it == by_fp.end()) {
        continue;  // foreign fingerprint (stale dir reuse) — ignore
      }
      SupervisedOutcome outcome;
      outcome.ok = manifest_entry.ok;
      outcome.attempts = manifest_entry.attempts;
      outcome.result = std::move(manifest_entry.result);
      outcome.failure = std::move(manifest_entry.failure);
      for (const size_t index : it->second) {
        campaign->OnOutcome(index, manifest_entry.attempts - 1, outcome);
      }
    }
  }
  closedir(d);
}

}  // namespace

std::vector<CellOutcome> ServeFileCampaign(
    const std::vector<JobSpec>& jobs, const std::string& dir,
    const CampaignOptions& options,
    const std::map<std::string, ManifestEntry>& preloaded,
    const ProgressFn& progress, CampaignStats* stats, std::string* error,
    std::string* manifest_error) {
  if (mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    if (error != nullptr) {
      *error = "cannot create work-queue directory " + dir + ": " +
               std::strerror(errno);
    }
    return {};
  }
  // A stale DONE from a previous campaign in a reused directory would make
  // workers exit before this one starts.
  unlink(DoneFilePath(dir).c_str());

  Campaign campaign(jobs, options, preloaded, progress, manifest_error);

  // Publish the cell list atomically: workers never see a partial file.
  {
    const std::string tmp = CellsFilePath(dir) + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      if (error != nullptr) {
        *error = "cannot write " + tmp + ": " + std::strerror(errno);
      }
      return {};
    }
    for (size_t i = 0; i < jobs.size(); ++i) {
      WorkItem item;
      item.index = i;
      item.job_timeout_ms = options.job_timeout_ms;
      item.checkpoint_ns = options.checkpoint_ns;
      item.fingerprint = campaign.fingerprint(i);
      item.spec = jobs[i];
      const std::string line = WorkItemLine(item);
      std::fwrite(line.data(), 1, line.size(), f);
      std::fputc('\n', f);
    }
    std::fflush(f);
    std::fclose(f);
    if (rename(tmp.c_str(), CellsFilePath(dir).c_str()) != 0) {
      if (error != nullptr) {
        *error = "cannot publish " + CellsFilePath(dir) + ": " +
                 std::strerror(errno);
      }
      return {};
    }
  }

  std::map<std::string, std::vector<size_t>> by_fp;
  for (size_t i = 0; i < jobs.size(); ++i) {
    by_fp[campaign.fingerprint(i)].push_back(i);
  }

  // Restart recovery: tuples already published and cells already resolved by
  // a previous incarnation must not be re-appended.
  std::set<std::string> published;
  {
    std::ifstream in(ReissueFilePath(dir));
    std::string line;
    while (in.is_open() && std::getline(in, line)) {
      JsonValue doc;
      if (JsonValue::Parse(line, &doc, nullptr) && doc.is_object() &&
          doc.Find("index") != nullptr) {
        published.insert(TupleKey(static_cast<size_t>(doc.GetUint("index")),
                                  static_cast<int>(doc.GetInt("attempt")),
                                  doc.GetUint("issue")));
      }
    }
  }
  std::set<size_t> resolved_emitted;
  {
    std::ifstream in(ResolvedFilePath(dir));
    std::string line;
    while (in.is_open() && std::getline(in, line)) {
      JsonValue doc;
      if (JsonValue::Parse(line, &doc, nullptr) && doc.is_object() &&
          doc.Find("index") != nullptr) {
        resolved_emitted.insert(static_cast<size_t>(doc.GetUint("index")));
      }
    }
  }

  std::set<std::string> applied_results;
  const auto emit_resolved = [&] {
    for (size_t i = 0; i < campaign.size(); ++i) {
      if (campaign.phase(i) == Campaign::CellPhase::kDone &&
          resolved_emitted.insert(i).second) {
        std::string line;
        JsonWriter w(&line, 0);
        w.BeginObject();
        w.Field("index", static_cast<uint64_t>(i));
        w.EndObject();
        AppendLine(ResolvedFilePath(dir), line);
      }
    }
  };

  while (!campaign.Finished()) {
    ScanResultsFiles(dir, by_fp, &applied_results, &campaign);
    const uint64_t now = MonotonicMs();
    for (size_t i = 0; i < campaign.size(); ++i) {
      const int attempt = campaign.open_attempt(i);
      const uint64_t issue = campaign.open_issue(i);
      const std::string claim = ClaimFilePath(dir, i, attempt, issue);
      switch (campaign.phase(i)) {
        case Campaign::CellPhase::kPending: {
          if (PathExists(claim + ".expired")) {
            // A previous incarnation revoked this tuple; advance past it.
            campaign.OnLeaseLost(i, issue);
            break;
          }
          if (PathExists(claim)) {
            campaign.ObserveClaim(i, attempt, issue, now);
            break;
          }
          if ((attempt > 0 || issue > 0) &&
              published.insert(TupleKey(i, attempt, issue)).second) {
            std::string line;
            JsonWriter w(&line, 0);
            w.BeginObject();
            w.Field("index", static_cast<uint64_t>(i));
            w.Field("attempt", attempt);
            w.Field("issue", issue);
            w.EndObject();
            AppendLine(ReissueFilePath(dir), line);
          }
          break;
        }
        case Campaign::CellPhase::kIssued: {
          struct stat st;
          if (::stat(claim.c_str(), &st) != 0) {
            campaign.OnLeaseLost(i, issue);  // claim vanished with its worker
            break;
          }
          if (FileAgeMs(st) >
              static_cast<int64_t>(options.lease_timeout_ms)) {
            // Revoke-then-reissue: the rename makes the dead tuple
            // unclaimable before the replacement tuple is published.
            rename(claim.c_str(), (claim + ".expired").c_str());
            campaign.OnLeaseLost(i, issue);
          }
          break;
        }
        case Campaign::CellPhase::kDone:
          break;
      }
    }
    emit_resolved();
    if (campaign.Finished()) {
      break;
    }
    SleepMs(kFileScanSleepMs);
  }

  emit_resolved();
  if (std::FILE* f = std::fopen(DoneFilePath(dir).c_str(), "w")) {
    std::fclose(f);
  }
  if (stats != nullptr) {
    *stats = campaign.stats();
  }
  return campaign.Finish();
}

}  // namespace memtis
