// Page-table reference-bit scanner used by scanning-based baselines
// (Nimble, MULTI-CLOCK, and TPP's LRU aging).
//
// Policies mark pages referenced from their per-access hook (modelling the
// hardware setting the PTE accessed bit); Scan() then sweeps all live pages,
// reports and clears the bits, and returns the modelled CPU cost — which grows
// linearly with memory size, the scalability problem the paper highlights
// (§2.1).

#ifndef MEMTIS_SIM_SRC_ACCESS_PT_SCANNER_H_
#define MEMTIS_SIM_SRC_ACCESS_PT_SCANNER_H_

#include <cstdint>
#include <vector>

#include "src/mem/memory_system.h"
#include "src/mem/types.h"

namespace memtis {

struct PtScanConfig {
  // Cost to test-and-clear one PTE accessed bit during a scan sweep
  // (amortised; includes the TLB flushing the kernel batches per scan).
  uint64_t per_page_cost_ns = 60;
};

class PtScanner {
 public:
  explicit PtScanner(const PtScanConfig& config = {}) : config_(config) {}

  // Hot-path hook: the processor sets the accessed bit.
  void MarkAccessed(PageIndex index) {
    if (index >= referenced_.size()) {
      referenced_.resize(index + 1024, 0);
    }
    referenced_[index] = 1;
  }

  // Sweeps all live pages; fn(PageIndex, PageInfo&, bool referenced) is
  // invoked per page and the bits are cleared. Returns the modelled scan cost
  // in ns (charged to the scanning daemon or to app time by the caller).
  template <typename Fn>
  uint64_t Scan(MemorySystem& mem, Fn&& fn) {
    uint64_t scanned = 0;
    mem.ForEachLivePage([&](PageIndex index, PageInfo& page) {
      const bool referenced = index < referenced_.size() && referenced_[index] != 0;
      if (referenced) {
        referenced_[index] = 0;
      }
      fn(index, page, referenced);
      ++scanned;
    });
    const uint64_t cost = scanned * config_.per_page_cost_ns;
    busy_ns_ += cost;
    ++scans_;
    return cost;
  }

  uint64_t busy_ns() const { return busy_ns_; }
  uint64_t scans() const { return scans_; }

  // Checkpointing: the referenced bitmap is sized lazily, so the restored
  // vector adopts the snapshot's length.
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U64(referenced_.size());
    w.Bytes(referenced_.data(), referenced_.size());
    w.U64(busy_ns_);
    w.U64(scans_);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    const uint64_t n = r.U64();
    if (n > (1ull << 32)) {
      r.Fail();
      return;
    }
    referenced_.assign(n, 0);
    r.Bytes(referenced_.data(), referenced_.size());
    busy_ns_ = r.U64();
    scans_ = r.U64();
  }

 private:
  PtScanConfig config_;
  std::vector<uint8_t> referenced_;
  uint64_t busy_ns_ = 0;
  uint64_t scans_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_ACCESS_PT_SCANNER_H_
