// Sample record types shared by hardware-sampling-style access trackers.

#ifndef MEMTIS_SIM_SRC_ACCESS_SAMPLE_H_
#define MEMTIS_SIM_SRC_ACCESS_SAMPLE_H_

#include <cstdint>

#include "src/mem/types.h"

namespace memtis {

// The two PEBS event classes MEMTIS programs: retired LLC load misses and
// retired store instructions (paper §4.1.1).
enum class SampleType : uint8_t {
  kLlcLoadMiss = 0,
  kStore = 1,
};
inline constexpr int kNumSampleTypes = 2;

struct SampleRecord {
  Vaddr addr = 0;
  SampleType type = SampleType::kLlcLoadMiss;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_ACCESS_SAMPLE_H_
