// DAMON-style region-based access monitor (Park, "Introduce Data Access
// MONitor", LWN 2021), reimplemented for the paper's Figure 1 analysis.
//
// DAMON trades accuracy for overhead: it tracks regions instead of pages,
// checks a single sampled page per region per sampling interval, and adapts
// the region set (merge similar neighbours, split large regions) to stay
// within [min_regions, max_regions]. The accuracy/overhead trade-off across
// configurations is exactly what Fig. 1 demonstrates.

#ifndef MEMTIS_SIM_SRC_ACCESS_DAMON_H_
#define MEMTIS_SIM_SRC_ACCESS_DAMON_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/mem/types.h"

namespace memtis {

struct DamonConfig {
  uint64_t sampling_interval_ns = 5'000'000;     // 5 ms (DAMON default)
  uint64_t aggregation_interval_ns = 100'000'000;  // 100 ms
  uint32_t min_regions = 10;
  uint32_t max_regions = 1000;
  // Modelled cost to check one region's sampled page (PTE check + bookkeeping).
  uint64_t check_cost_ns = 150;
};

class Damon {
 public:
  struct Region {
    Vaddr start = 0;  // inclusive
    Vaddr end = 0;    // exclusive
    uint32_t nr_accesses = 0;  // sampled-hit count in current aggregation window
    Vpn sampled_vpn = 0;
    bool sampled_hit = false;
    uint32_t age = 0;  // aggregation windows since last split/merge change

    uint64_t size() const { return end - start; }
  };

  Damon(const DamonConfig& config, Vaddr target_start, Vaddr target_end,
        uint64_t seed = 1);

  // Hot-path hook: an access lands in the monitored range. Sets the sampled
  // bit if the access hits the region's currently sampled page.
  void OnAccess(Vaddr addr);

  // Advances DAMON's clock; runs sampling checks and aggregation as their
  // intervals elapse.
  void Tick(uint64_t now_ns);

  const std::vector<Region>& regions() const { return regions_; }

  // Snapshot of the last completed aggregation window: (start, end,
  // nr_accesses) triples — the raw material of a Fig. 1 heat map.
  struct AggregatedRegion {
    Vaddr start;
    Vaddr end;
    uint32_t nr_accesses;
  };
  const std::vector<AggregatedRegion>& last_aggregation() const {
    return last_aggregation_;
  }

  uint64_t busy_ns() const { return busy_ns_; }
  uint64_t checks_done() const { return checks_done_; }
  uint64_t aggregations() const { return aggregations_; }

 private:
  size_t FindRegion(Vaddr addr) const;
  void PrepareSampling();
  void Aggregate();
  void MergeRegions();
  void SplitRegions();

  DamonConfig config_;
  Rng rng_;
  std::vector<Region> regions_;  // sorted, contiguous cover of the target
  std::vector<AggregatedRegion> last_aggregation_;
  uint64_t next_sample_ns_ = 0;
  uint64_t next_aggregate_ns_ = 0;
  uint64_t busy_ns_ = 0;
  uint64_t checks_done_ = 0;
  uint64_t aggregations_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_ACCESS_DAMON_H_
