#include "src/access/pebs_sampler.h"

#include <algorithm>

#include "src/common/check.h"

namespace memtis {

PebsSampler::PebsSampler(const PebsConfig& config)
    : config_(config), usage_ema_(config.usage_ema_decay) {
  SIM_CHECK_GE(config_.load_period, config_.min_period);
  SIM_CHECK_GE(config_.store_period, config_.min_period);
  period_[static_cast<int>(SampleType::kLlcLoadMiss)] = config_.load_period;
  period_[static_cast<int>(SampleType::kStore)] = config_.store_period;
  countdown_[0] = static_cast<int64_t>(period_[0]);
  countdown_[1] = static_cast<int64_t>(period_[1]);
}

uint64_t PebsSampler::AccountSample(uint64_t now_ns) {
  busy_ns_ += config_.sample_cost_ns;
  window_busy_ns_ += config_.sample_cost_ns;
  MaybeAdjust(now_ns);
  return config_.sample_cost_ns;
}

void PebsSampler::MaybeAdjust(uint64_t now_ns) {
  if (now_ns < last_adjust_ns_ + config_.adjust_interval_ns) {
    return;
  }
  const uint64_t elapsed = now_ns - last_adjust_ns_;
  last_adjust_ns_ = now_ns;
  const double usage = static_cast<double>(window_busy_ns_) / static_cast<double>(elapsed);
  window_busy_ns_ = 0;
  usage_ema_.Add(usage);

  // Hysteresis: only react when EMA usage strays more than `cpu_hysteresis`
  // from the cap (paper §4.1.1).
  const double ema = usage_ema_.value();
  if (ema > config_.cpu_limit + config_.cpu_hysteresis) {
    ScalePeriods(config_.period_step);  // longer period -> fewer samples
    ++stats_.period_raises;
    stats_.last_period_change_ns = now_ns;
  } else if (ema < config_.cpu_limit - config_.cpu_hysteresis) {
    ScalePeriods(1.0 / config_.period_step);
    ++stats_.period_drops;
    stats_.last_period_change_ns = now_ns;
  }
}

void PebsSampler::ScalePeriods(double factor) {
  for (auto& p : period_) {
    const auto scaled = static_cast<uint64_t>(static_cast<double>(p) * factor);
    p = std::clamp(scaled == p ? (factor > 1.0 ? p + 1 : p - 1) : scaled,
                   config_.min_period, config_.max_period);
  }
}

}  // namespace memtis
