// PEBS-style hardware event sampler with MEMTIS's dynamic period adaptation.
//
// Models Intel PEBS as MEMTIS uses it: two event classes (LLC load misses and
// retired stores), each sampled once every `period` events, delivering the
// exact virtual address. A ksampled-like controller periodically computes the
// exponential moving average of the (modelled) CPU time spent processing
// samples and nudges the periods so usage stays under a cap — the paper's 3 %
// of one core with 0.5 % hysteresis (§4.1.1).

#ifndef MEMTIS_SIM_SRC_ACCESS_PEBS_SAMPLER_H_
#define MEMTIS_SIM_SRC_ACCESS_PEBS_SAMPLER_H_

#include <cstdint>

#include "src/access/sample.h"
#include "src/common/stats.h"
#include "src/fault/fault.h"
#include "src/mem/types.h"

namespace memtis {

struct PebsConfig {
  // Initial sampling periods. The paper uses 200 (LLC miss) / 100000 (store)
  // at 60+ GB scale; defaults here are scaled to the simulator's footprints
  // and adapt at runtime anyway.
  uint64_t load_period = 17;
  uint64_t store_period = 1201;
  uint64_t min_period = 3;
  uint64_t max_period = 1u << 20;

  // Modelled cost for ksampled to drain and process one PEBS record.
  uint64_t sample_cost_ns = 150;

  // CPU budget: fraction of one core (paper: 3 % with 0.5 % hysteresis).
  double cpu_limit = 0.03;
  double cpu_hysteresis = 0.005;
  // EMA decay for the usage estimate.
  double usage_ema_decay = 0.3;
  // How often (virtual ns) the controller re-evaluates usage.
  uint64_t adjust_interval_ns = 2'000'000;
  // Multiplicative step applied to the period on each adjustment.
  double period_step = 1.25;

  // Sample-buffer overflow model. 0 = unbounded buffer (no overflow, the
  // default — byte-identical to the pre-overflow-model sampler). When > 0,
  // at most `buffer_capacity` records accumulate between ksampled drains
  // (every `drain_interval_ns` of virtual time); records arriving into a
  // full buffer are dropped and counted, never delivered.
  uint64_t buffer_capacity = 0;
  uint64_t drain_interval_ns = 200'000;
};

struct PebsStats {
  uint64_t samples[kNumSampleTypes] = {0, 0};  // delivered to the owner
  // Records lost before delivery, by cause: buffer overflow (capacity model)
  // and injected kSampleDrop faults. Dropped records are never delivered, so
  // the owner's sample ledger stays exact: processed == total_samples().
  uint64_t dropped[kNumSampleTypes] = {0, 0};
  uint64_t overflow_drops = 0;
  uint64_t fault_drops = 0;
  uint64_t period_raises = 0;
  uint64_t period_drops = 0;
  // Virtual time of the most recent period adaptation (0 = never adapted).
  uint64_t last_period_change_ns = 0;
  uint64_t total_samples() const { return samples[0] + samples[1]; }
  uint64_t total_dropped() const { return dropped[0] + dropped[1]; }
  uint64_t period_changes() const { return period_raises + period_drops; }
};

class PebsSampler {
 public:
  explicit PebsSampler(const PebsConfig& config = {});

  // Fault injector hosting the kSampleDrop site. Not owned; nullptr (the
  // default) disables injected drops.
  void AttachFaults(FaultInjector* faults) { faults_ = faults; }

  // Counts one hardware event; returns true when this event is sampled AND
  // the record survives to delivery (the caller then has a SampleRecord to
  // process). Records lost to buffer overflow or an injected fault return
  // false and are counted in stats().dropped. Kept branch-light: one
  // decrement per access on the common path.
  bool OnEvent(SampleType type, uint64_t now_ns) {
    if (--countdown_[static_cast<int>(type)] > 0) {
      return false;
    }
    countdown_[static_cast<int>(type)] = period_[static_cast<int>(type)];
    return Deliver(type, now_ns);
  }

  // Called by the owner after processing a sampled record, with the current
  // virtual time; accumulates modelled ksampled CPU time and periodically runs
  // the period controller. Returns the ns charged for this sample.
  uint64_t AccountSample(uint64_t now_ns);

  // --- Bulk absorption (batched replay) ---------------------------------------
  //
  // With countdown c, the next c-1 OnEvent(type) calls are provably pure
  // decrements: each does --countdown, lands on a value >= 1, and returns false
  // with no other side effect (delivery, drops, and period adaptation all
  // happen only when the countdown reaches zero). The engine's batched access
  // path exploits this: EventsUntilSample bounds how many upcoming events can
  // be absorbed, AbsorbEvents applies them as one subtraction. Absorbing
  // n <= EventsUntilSample(type) events leaves the sampler in exactly the state
  // n scalar OnEvent calls would have.
  uint64_t EventsUntilSample(SampleType type) const {
    const int64_t c = countdown_[static_cast<int>(type)];
    return c > 1 ? static_cast<uint64_t>(c - 1) : 0;
  }
  void AbsorbEvents(SampleType type, uint64_t n) {
    countdown_[static_cast<int>(type)] -= static_cast<int64_t>(n);
  }

  uint64_t period(SampleType type) const { return period_[static_cast<int>(type)]; }
  double cpu_usage() const { return usage_ema_.value(); }
  uint64_t busy_ns() const { return busy_ns_; }
  const PebsStats& stats() const { return stats_; }
  const PebsConfig& config() const { return config_; }

  // Test-only fault injection: records a phantom sample in the stats without
  // the owner ever processing it, desynchronizing the sample ledger so the
  // auditor's histogram-mass/sample-count check fires.
  void TestOnlyRecordPhantomSample(SampleType type) {
    ++stats_.samples[static_cast<int>(type)];
  }

  // Checkpointing: periods, countdowns (signed — the batched path can drive
  // them through zero), controller clocks, buffer fill, and stats.
  template <typename Writer>
  void SaveState(Writer& w) const {
    for (uint64_t p : period_) w.U64(p);
    for (int64_t c : countdown_) w.I64(c);
    w.U64(busy_ns_);
    w.U64(window_busy_ns_);
    w.U64(last_adjust_ns_);
    w.U64(buffer_fill_);
    w.U64(last_drain_ns_);
    usage_ema_.SaveState(w);
    for (uint64_t s : stats_.samples) w.U64(s);
    for (uint64_t d : stats_.dropped) w.U64(d);
    w.U64(stats_.overflow_drops);
    w.U64(stats_.fault_drops);
    w.U64(stats_.period_raises);
    w.U64(stats_.period_drops);
    w.U64(stats_.last_period_change_ns);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    for (uint64_t& p : period_) p = r.U64();
    for (int64_t& c : countdown_) c = r.I64();
    busy_ns_ = r.U64();
    window_busy_ns_ = r.U64();
    last_adjust_ns_ = r.U64();
    buffer_fill_ = r.U64();
    last_drain_ns_ = r.U64();
    usage_ema_.LoadState(r);
    for (uint64_t& s : stats_.samples) s = r.U64();
    for (uint64_t& d : stats_.dropped) d = r.U64();
    stats_.overflow_drops = r.U64();
    stats_.fault_drops = r.U64();
    stats_.period_raises = r.U64();
    stats_.period_drops = r.U64();
    stats_.last_period_change_ns = r.U64();
  }

 private:
  // A record fired; decide whether it reaches the owner. Stays inline so the
  // no-faults unbounded-buffer configuration costs two predictable branches.
  bool Deliver(SampleType type, uint64_t now_ns) {
    const int idx = static_cast<int>(type);
    if (faults_ != nullptr &&
        faults_->ShouldInject(FaultSite::kSampleDrop, now_ns)) [[unlikely]] {
      ++stats_.dropped[idx];
      ++stats_.fault_drops;
      return false;
    }
    if (config_.buffer_capacity > 0) [[unlikely]] {
      if (now_ns >= last_drain_ns_ + config_.drain_interval_ns) {
        buffer_fill_ = 0;
        last_drain_ns_ = now_ns;
      }
      if (buffer_fill_ >= config_.buffer_capacity) {
        ++stats_.dropped[idx];
        ++stats_.overflow_drops;
        return false;
      }
      ++buffer_fill_;
    }
    ++stats_.samples[idx];
    return true;
  }

  void MaybeAdjust(uint64_t now_ns);
  void ScalePeriods(double factor);

  PebsConfig config_;
  uint64_t period_[kNumSampleTypes];
  int64_t countdown_[kNumSampleTypes];
  uint64_t busy_ns_ = 0;
  uint64_t window_busy_ns_ = 0;
  uint64_t last_adjust_ns_ = 0;
  uint64_t buffer_fill_ = 0;
  uint64_t last_drain_ns_ = 0;
  Ema usage_ema_;
  PebsStats stats_;
  FaultInjector* faults_ = nullptr;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_ACCESS_PEBS_SAMPLER_H_
