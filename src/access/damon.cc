#include "src/access/damon.h"

#include <algorithm>

#include "src/common/check.h"

namespace memtis {

Damon::Damon(const DamonConfig& config, Vaddr target_start, Vaddr target_end,
             uint64_t seed)
    : config_(config), rng_(seed) {
  SIM_CHECK_LT(target_start, target_end);
  SIM_CHECK_GE(config.min_regions, 1u);
  SIM_CHECK_GE(config.max_regions, config.min_regions);
  // Start with min_regions equally sized regions, as DAMON does.
  const uint64_t span = target_end - target_start;
  const uint64_t step = std::max<uint64_t>(kPageSize, span / config.min_regions);
  Vaddr cursor = target_start;
  while (cursor < target_end) {
    Region r;
    r.start = cursor;
    r.end = std::min(cursor + step, target_end);
    regions_.push_back(r);
    cursor = r.end;
  }
  regions_.back().end = target_end;
  PrepareSampling();
}

size_t Damon::FindRegion(Vaddr addr) const {
  // Binary search over the sorted, contiguous region cover.
  size_t lo = 0;
  size_t hi = regions_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (addr < regions_[mid].start) {
      hi = mid;
    } else if (addr >= regions_[mid].end) {
      lo = mid + 1;
    } else {
      return mid;
    }
  }
  return regions_.size();
}

void Damon::OnAccess(Vaddr addr) {
  const size_t i = FindRegion(addr);
  if (i == regions_.size()) {
    return;
  }
  if (VpnOf(addr) == regions_[i].sampled_vpn) {
    regions_[i].sampled_hit = true;
  }
}

void Damon::PrepareSampling() {
  for (Region& r : regions_) {
    const uint64_t pages = std::max<uint64_t>(1, (r.end - r.start) >> kPageShift);
    r.sampled_vpn = VpnOf(r.start) + rng_.NextBelow(pages);
    r.sampled_hit = false;
  }
}

void Damon::Tick(uint64_t now_ns) {
  while (now_ns >= next_sample_ns_) {
    // Close the current sampling window: count hits, pick new sample pages.
    for (Region& r : regions_) {
      if (r.sampled_hit) {
        ++r.nr_accesses;
      }
    }
    busy_ns_ += regions_.size() * config_.check_cost_ns;
    checks_done_ += regions_.size();
    PrepareSampling();
    next_sample_ns_ += config_.sampling_interval_ns;

    if (next_sample_ns_ > next_aggregate_ns_) {
      Aggregate();
      next_aggregate_ns_ += config_.aggregation_interval_ns;
    }
  }
}

void Damon::Aggregate() {
  ++aggregations_;
  last_aggregation_.clear();
  last_aggregation_.reserve(regions_.size());
  for (const Region& r : regions_) {
    last_aggregation_.push_back({r.start, r.end, r.nr_accesses});
  }
  MergeRegions();
  SplitRegions();
  for (Region& r : regions_) {
    r.nr_accesses = 0;
    ++r.age;
  }
}

void Damon::MergeRegions() {
  // Merge adjacent regions whose access counts are within a small threshold,
  // while staying above min_regions (DAMON's adaptive merging).
  const uint32_t max_count = static_cast<uint32_t>(
      config_.aggregation_interval_ns / config_.sampling_interval_ns);
  const uint32_t threshold = std::max<uint32_t>(1, max_count / 10);
  std::vector<Region> merged;
  merged.reserve(regions_.size());
  size_t total = regions_.size();  // live region count as merging proceeds
  for (const Region& r : regions_) {
    if (!merged.empty() && total > config_.min_regions) {
      Region& last = merged.back();
      const uint32_t diff = last.nr_accesses > r.nr_accesses
                                ? last.nr_accesses - r.nr_accesses
                                : r.nr_accesses - last.nr_accesses;
      if (diff <= threshold) {
        last.end = r.end;
        last.nr_accesses = (last.nr_accesses + r.nr_accesses) / 2;
        last.age = 0;
        --total;
        continue;
      }
    }
    merged.push_back(r);
  }
  regions_ = std::move(merged);
}

void Damon::SplitRegions() {
  // Split each region into two at a random point while under max_regions
  // (DAMON splits to regain resolution after merging).
  if (regions_.size() * 2 > config_.max_regions) {
    return;
  }
  std::vector<Region> split;
  split.reserve(regions_.size() * 2);
  for (const Region& r : regions_) {
    const uint64_t pages = (r.end - r.start) >> kPageShift;
    if (pages < 2) {
      split.push_back(r);
      continue;
    }
    const uint64_t cut = 1 + rng_.NextBelow(pages - 1);
    Region lo = r;
    lo.end = r.start + (cut << kPageShift);
    lo.age = 0;
    Region hi = r;
    hi.start = lo.end;
    hi.age = 0;
    split.push_back(lo);
    split.push_back(hi);
  }
  regions_ = std::move(split);
  PrepareSampling();
}

}  // namespace memtis
