#include "src/tenant/tenant.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/mem/memory_system.h"
#include "src/sim/engine.h"
#include "src/sim/policy.h"

namespace memtis {

TenantId TenantManager::AddTenant(TenantSpec spec, std::unique_ptr<Workload> workload) {
  SIM_CHECK(workload != nullptr);
  TenantState t;
  t.spec = std::move(spec);
  t.workload = std::move(workload);
  t.id = static_cast<TenantId>(tenants_.size());
  tenants_.push_back(std::move(t));
  return tenants_.back().id;
}

uint64_t TenantManager::footprint_bytes() const {
  uint64_t total = 0;
  for (const TenantState& t : tenants_) {
    total += t.workload->footprint_bytes();
  }
  return total;
}

double TenantManager::PhaseRate(const TenantSpec& spec, uint64_t now_ns) {
  if (spec.phase_period_ns == 0) {
    return 1.0;
  }
  const uint64_t pos = now_ns % spec.phase_period_ns;
  return pos < spec.phase_period_ns / 2 ? 1.0 : std::max(0.0, spec.phase_low);
}

void TenantManager::Setup(App& app, Rng& rng) {
  SIM_CHECK(!tenants_.empty());
  Engine& eng = app.engine();
  MemorySystem& mem = eng.mem();

  double total_weight = 0.0;
  for (const TenantState& t : tenants_) {
    total_weight += t.spec.weight > 0.0 ? t.spec.weight : 0.0;
  }
  const uint64_t fast_frames = mem.tier(TierId::kFast).total_frames();
  const CostParams& costs = eng.ctx().costs;

  for (TenantState& t : tenants_) {
    mem.SetCurrentTenant(t.id);  // registers the id in the memory system
    if (t.spec.quota_fraction >= 0.0) {
      const uint64_t quota = static_cast<uint64_t>(
          static_cast<double>(fast_frames) * t.spec.quota_fraction);
      mem.SetTenantFastQuota(t.id, quota);
      t.stats.quota_frames = quota;
    }
    // Weighted promotion-bandwidth arbitration only makes sense with
    // contention; a solo tenant keeps the legacy global-budget semantics.
    if (tenants_.size() > 1 && total_weight > 0.0 && t.spec.weight > 0.0) {
      const double share = t.spec.weight / total_weight;
      const uint64_t rate = std::max<uint64_t>(
          1, static_cast<uint64_t>(
                 static_cast<double>(costs.migrate_bandwidth_pages_per_ms) * share));
      const uint64_t burst = std::max<uint64_t>(
          1, static_cast<uint64_t>(static_cast<double>(costs.migrate_burst_pages) *
                                   share));
      mem.SetTenantPromotionBudget(t.id, rate, burst);
    }
  }
  mem.SetCurrentTenant(kDefaultTenant);

  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].spec.arrive_ns == 0) {
      Arrive(app, rng, i);
    }
  }
}

void TenantManager::Arrive(App& app, Rng& rng, size_t i) {
  TenantState& t = tenants_[i];
  Engine& eng = app.engine();
  eng.mem().SetCurrentTenant(t.id);
  t.stats.arrive_ns = eng.now_ns();
  const Metrics& m = eng.metrics();
  const uint64_t a0 = m.accesses;
  const uint64_t f0 = m.fast_accesses;
  const uint64_t c0 = m.capacity_accesses;
  const uint64_t t0 = eng.now_ns();
  t.workload->Setup(app, rng);
  t.stats.accesses += m.accesses - a0;
  t.stats.fast_accesses += m.fast_accesses - f0;
  t.stats.capacity_accesses += m.capacity_accesses - c0;
  t.stats.active_ns += eng.now_ns() - t0;
  t.arrived = true;
}

void TenantManager::Depart(App& app, size_t i) {
  TenantState& t = tenants_[i];
  Engine& eng = app.engine();
  MemorySystem& mem = eng.mem();
  // Snapshot occupancy before reclamation, then free every region the tenant
  // owns through the engine so the policy observes each page's death.
  t.stats.fast_pages = mem.tenant_mapped_4k(t.id, TierId::kFast);
  for (const Vaddr start : mem.TenantRegionStarts(t.id)) {
    app.Free(start);
  }
  t.departed = true;
  t.stats.depart_ns = eng.now_ns();
}

void TenantManager::RunBatch(App& app, Rng& rng, size_t i) {
  TenantState& t = tenants_[i];
  Engine& eng = app.engine();
  eng.mem().SetCurrentTenant(t.id);
  const Metrics& m = eng.metrics();
  const uint64_t a0 = m.accesses;
  const uint64_t f0 = m.fast_accesses;
  const uint64_t c0 = m.capacity_accesses;
  const uint64_t t0 = eng.now_ns();
  const bool more = t.workload->Step(app, rng);
  t.stats.accesses += m.accesses - a0;
  t.stats.fast_accesses += m.fast_accesses - f0;
  t.stats.capacity_accesses += m.capacity_accesses - c0;
  t.stats.active_ns += eng.now_ns() - t0;
  if (!more) {
    t.finished = true;
    t.stats.finished = true;
  }
  if (!t.departed && t.spec.max_accesses > 0 &&
      t.stats.accesses >= t.spec.max_accesses) {
    Depart(app, i);  // access-budget departure reclaims frames, unlike finish
  }
}

bool TenantManager::Step(App& app, Rng& rng) {
  Engine& eng = app.engine();
  const uint64_t now = eng.now_ns();

  // Lifecycle transitions due at this batch boundary, in id order.
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (!tenants_[i].arrived && tenants_[i].spec.arrive_ns <= now) {
      Arrive(app, rng, i);
    }
  }
  for (size_t i = 0; i < tenants_.size(); ++i) {
    TenantState& t = tenants_[i];
    if (t.arrived && !t.departed && t.spec.depart_ns > 0 && now >= t.spec.depart_ns) {
      Depart(app, i);
    }
  }

  std::vector<size_t> runnable;
  runnable.reserve(tenants_.size());
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (Runnable(tenants_[i])) {
      runnable.push_back(i);
    }
  }
  if (runnable.empty()) {
    // Virtual time only advances with accesses, so waiting for a future
    // arrival on an idle machine would deadlock: pull the earliest one in.
    size_t next = tenants_.size();
    uint64_t earliest = UINT64_MAX;
    for (size_t i = 0; i < tenants_.size(); ++i) {
      if (!tenants_[i].arrived && tenants_[i].spec.arrive_ns < earliest) {
        earliest = tenants_[i].spec.arrive_ns;
        next = i;
      }
    }
    if (next == tenants_.size()) {
      return false;  // every tenant finished or departed
    }
    Arrive(app, rng, next);
    runnable.push_back(next);
  }

  // One batch per runnable tenant, rotated over the *runnable* set so uneven
  // finishes do not skew the interleaving (the old CompositeWorkload rotated
  // modulo the original tenant count and over-served survivors).
  const size_t n = runnable.size();
  const size_t start = static_cast<size_t>(round_ % n);
  ++round_;
  bool ran = false;
  for (size_t k = 0; k < n; ++k) {
    const size_t i = runnable[(start + k) % n];
    TenantState& t = tenants_[i];
    if (!Runnable(t)) {
      continue;
    }
    t.phase_credit += PhaseRate(t.spec, eng.now_ns());
    if (t.phase_credit < 1.0) {
      continue;  // low phase: skip this round, credit carries over
    }
    t.phase_credit -= 1.0;
    RunBatch(app, rng, i);
    ran = true;
  }
  if (!ran) {
    // Everyone is deep in a low phase. Run the most-credited tenant anyway:
    // virtual time must keep advancing toward the next phase flip.
    size_t pick = tenants_.size();
    double best = -1.0;
    for (size_t k = 0; k < n; ++k) {
      const size_t i = runnable[(start + k) % n];
      if (Runnable(tenants_[i]) && tenants_[i].phase_credit > best) {
        best = tenants_[i].phase_credit;
        pick = i;
      }
    }
    if (pick != tenants_.size()) {
      tenants_[pick].phase_credit = 0.0;
      RunBatch(app, rng, pick);
    }
  }

  for (const TenantState& t : tenants_) {
    if (!t.arrived || Runnable(t)) {
      return true;
    }
  }
  return false;
}

void TenantManager::ExportPerTenant(const MemorySystem& mem, Metrics* m) const {
  m->per_tenant.clear();
  m->per_tenant.reserve(tenants_.size());
  for (const TenantState& t : tenants_) {
    TenantMetrics out = t.stats;
    out.workload = std::string(t.workload->name());
    out.name = t.spec.name.empty() ? out.workload : t.spec.name;
    if (t.id < mem.tenant_count()) {
      const TenantFrameStats& fs = mem.tenant_stats(t.id);
      out.quota_denied_allocs = fs.quota_denied_allocs;
      out.quota_denied_promotions = fs.quota_denied_promotions;
      out.quota_steals = fs.quota_steals;
      out.budget_denied_promotions = fs.budget_denied_promotions;
      if (!t.departed) {
        out.fast_pages = fs.fast_pages();
      }
    }
    m->per_tenant.push_back(std::move(out));
  }
}

}  // namespace memtis
