// Tenant management plane: N tenants sharing one simulated machine.
//
// TenantManager is a scheduler Workload that owns N tenant records (workload,
// fast-tier quota or proportional weight, lifecycle window, per-tenant metric
// attribution) and interleaves their access batches. Ownership is enforced
// below it: every region a tenant allocates is tagged with its TenantId in
// MemorySystem, where fast-tier quotas and per-tenant promotion budgets gate
// AllocFrame/Migrate, and MemtisPolicy keeps a per-tenant histogram slice —
// the paper's per-memcg scoping. A single tenant with no quota, lifecycle, or
// phase settings is a pure pass-through: the run is byte-identical to handing
// the workload to the engine directly.
//
// Lifecycle: tenants may arrive mid-run (arrive_ns), depart with full frame
// reclamation (depart_ns or a per-tenant access budget), finish naturally
// (memory stays resident, like any exited-but-unreclaimed job), and modulate
// their load with a diurnal square wave (phase_period_ns / phase_low).

#ifndef MEMTIS_SIM_SRC_TENANT_TENANT_H_
#define MEMTIS_SIM_SRC_TENANT_TENANT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/mem/types.h"
#include "src/sim/metrics.h"
#include "src/sim/workload.h"

namespace memtis {

class MemorySystem;

// Static description of one tenant. Defaults describe a legacy tenant: no
// quota, equal weight, present from start to end, steady load.
struct TenantSpec {
  std::string name;  // label for reports (defaults to the workload's name)

  // Fast-tier quota as a fraction of the fast tier's frames; negative means
  // unquota'd (unlimited). Zero is legal: a tenant pinned to the capacity
  // tier (its fallback allocations still open an audited borrow window).
  double quota_fraction = -1.0;

  // Proportional share of the machine's migration bandwidth. Promotion
  // buckets are armed only for multi-tenant runs, so solo runs keep the
  // global budget semantics.
  double weight = 1.0;

  // Lifecycle window in virtual ns. arrive_ns 0 = present from the start;
  // depart_ns 0 = stays until the end. Departure frees every region the
  // tenant owns (through the engine, so policies observe the frees).
  uint64_t arrive_ns = 0;
  uint64_t depart_ns = 0;

  // Forced departure after this many attributed accesses (0 = none). Unlike
  // natural completion, this reclaims the tenant's frames.
  uint64_t max_accesses = 0;

  // Diurnal load modulation: a square wave of period phase_period_ns whose
  // low half runs batches at `phase_low` of the tenant's normal rate
  // (0 disables modulation).
  uint64_t phase_period_ns = 0;
  double phase_low = 0.25;
};

class TenantManager : public Workload {
 public:
  TenantManager() = default;

  // Registers a tenant; ids are assigned in call order starting at
  // kDefaultTenant (so a single tenant reuses the legacy default owner).
  // All tenants must be added before the engine starts the run.
  TenantId AddTenant(TenantSpec spec, std::unique_ptr<Workload> workload);

  size_t tenant_count() const { return tenants_.size(); }

  // --- Workload interface ----------------------------------------------------

  std::string_view name() const override { return "tenants"; }

  // Peak footprint: every tenant's regions can be live at once (arrivals may
  // overlap departures), so machines are sized for the sum.
  uint64_t footprint_bytes() const override;

  void Setup(App& app, Rng& rng) override;
  bool Step(App& app, Rng& rng) override;

  // --- Reporting -------------------------------------------------------------

  // Copies the per-tenant attribution (batch counter deltas + the memory
  // system's quota accounting) into m->per_tenant. Call after engine.Run().
  void ExportPerTenant(const MemorySystem& mem, Metrics* m) const;

  // Live view of one tenant's accumulated attribution (tests).
  const TenantMetrics& tenant_metrics(size_t i) const { return tenants_[i].stats; }
  bool tenant_departed(size_t i) const { return tenants_[i].departed; }
  bool tenant_finished(size_t i) const { return tenants_[i].finished; }

 private:
  struct TenantState {
    TenantSpec spec;
    std::unique_ptr<Workload> workload;
    TenantId id = kDefaultTenant;
    bool arrived = false;
    bool finished = false;  // natural completion (memory stays resident)
    bool departed = false;  // reclaimed (depart_ns / max_accesses)
    double phase_credit = 0.0;
    TenantMetrics stats;
  };

  bool Runnable(const TenantState& t) const {
    return t.arrived && !t.finished && !t.departed;
  }

  // Batch-rate multiplier at virtual time `now` (diurnal square wave).
  static double PhaseRate(const TenantSpec& spec, uint64_t now_ns);

  void Arrive(App& app, Rng& rng, size_t i);
  void Depart(App& app, size_t i);
  // Runs one batch of tenant i, attributing engine counter deltas to it.
  void RunBatch(App& app, Rng& rng, size_t i);

  std::vector<TenantState> tenants_;
  uint64_t round_ = 0;  // rotation offset over the runnable set
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_TENANT_TENANT_H_
