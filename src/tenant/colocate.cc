#include "src/tenant/colocate.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "src/audit/audit_session.h"
#include "src/common/check.h"
#include "src/common/json.h"
#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/workloads/registry.h"

namespace memtis {
namespace {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : text) {
    if (c == sep) {
      out.push_back(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  out.push_back(item);
  return out;
}

bool KnownBenchmark(const std::string& name) {
  for (const std::string& known : StandardBenchmarks()) {
    if (known == name) {
      return true;
    }
  }
  return false;
}

bool ParseTenant(const std::string& text, ColocateTenant* out, std::string* error) {
  const std::vector<std::string> fields = Split(text, ',');
  for (size_t i = 0; i < fields.size(); ++i) {
    const std::string& field = fields[i];
    if (field.empty()) {
      continue;
    }
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      // A bare first field is the workload name.
      if (i == 0) {
        out->workload = field;
        continue;
      }
      *error = "expected key=value, got '" + field + "'";
      return false;
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "workload") {
      out->workload = value;
    } else if (key == "name") {
      out->tenant.name = value;
    } else if (key == "quota") {
      out->tenant.quota_fraction = std::atof(value.c_str());
      if (out->tenant.quota_fraction < 0.0 || out->tenant.quota_fraction > 1.0) {
        *error = "quota must be in [0, 1], got '" + value + "'";
        return false;
      }
    } else if (key == "weight") {
      out->tenant.weight = std::atof(value.c_str());
      if (out->tenant.weight < 0.0) {
        *error = "weight must be >= 0, got '" + value + "'";
        return false;
      }
    } else if (key == "arrive") {
      out->tenant.arrive_ns = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "depart") {
      out->tenant.depart_ns = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "accesses") {
      out->tenant.max_accesses = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "phase-period") {
      out->tenant.phase_period_ns = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "phase-low") {
      out->tenant.phase_low = std::atof(value.c_str());
      if (out->tenant.phase_low < 0.0 || out->tenant.phase_low >= 1.0) {
        *error = "phase-low must be in [0, 1), got '" + value + "'";
        return false;
      }
    } else if (key == "scale") {
      out->scale = std::atof(value.c_str());
      if (out->scale <= 0.0) {
        *error = "scale must be > 0, got '" + value + "'";
        return false;
      }
    } else {
      *error = "unknown tenant key '" + key + "'";
      return false;
    }
  }
  if (out->workload.empty()) {
    *error = "tenant '" + text + "' names no workload";
    return false;
  }
  if (!KnownBenchmark(out->workload)) {
    *error = "unknown workload '" + out->workload + "'";
    return false;
  }
  return true;
}

}  // namespace

bool ColocateSpec::Parse(const std::string& text, ColocateSpec* out,
                         std::string* error) {
  out->tenants.clear();
  for (const std::string& entry : Split(text, ';')) {
    if (entry.empty()) {
      continue;
    }
    ColocateTenant tenant;
    if (!ParseTenant(entry, &tenant, error)) {
      return false;
    }
    out->tenants.push_back(std::move(tenant));
  }
  if (out->tenants.empty()) {
    *error = "no tenants in colocate spec";
    return false;
  }
  return true;
}

std::string ColocateSpec::Canonical() const {
  std::string out;
  for (const ColocateTenant& t : tenants) {
    if (!out.empty()) {
      out += ';';
    }
    out += t.workload;
    if (!t.tenant.name.empty()) {
      out += ",name=" + t.tenant.name;
    }
    if (t.tenant.quota_fraction >= 0.0) {
      out += ",quota=" + JsonWriter::FormatDouble(t.tenant.quota_fraction);
    }
    if (t.tenant.weight != 1.0) {
      out += ",weight=" + JsonWriter::FormatDouble(t.tenant.weight);
    }
    if (t.tenant.arrive_ns != 0) {
      out += ",arrive=" + std::to_string(t.tenant.arrive_ns);
    }
    if (t.tenant.depart_ns != 0) {
      out += ",depart=" + std::to_string(t.tenant.depart_ns);
    }
    if (t.tenant.max_accesses != 0) {
      out += ",accesses=" + std::to_string(t.tenant.max_accesses);
    }
    if (t.tenant.phase_period_ns != 0) {
      out += ",phase-period=" + std::to_string(t.tenant.phase_period_ns);
      out += ",phase-low=" + JsonWriter::FormatDouble(t.tenant.phase_low);
    }
    if (t.scale > 0.0) {
      out += ",scale=" + JsonWriter::FormatDouble(t.scale);
    }
  }
  return out;
}

ColocateResult RunColocation(const ColocateSpec& spec, const JobSpec& base,
                             ThreadPool& pool, const ProgressFn& progress) {
  SIM_CHECK(!spec.tenants.empty());
  const double footprint_scale =
      base.footprint_scale > 0.0 ? base.footprint_scale : BenchFootprintScale();

  // Tenant i rides the seed-repetition axis (seed_index + i) so co-located
  // twins of the same workload decorrelate under the documented scheme.
  auto manager = std::make_unique<TenantManager>();
  std::vector<double> scales;
  for (size_t i = 0; i < spec.tenants.size(); ++i) {
    const ColocateTenant& t = spec.tenants[i];
    const double scale = t.scale > 0.0 ? t.scale : footprint_scale;
    scales.push_back(scale);
    manager->AddTenant(
        t.tenant,
        MakeWorkload(t.workload, scale,
                     DeriveSeedOffset(base.base_seed,
                                      base.seed_index + static_cast<uint32_t>(i))));
  }

  ColocateResult out;
  out.footprint_bytes = manager->footprint_bytes();
  out.fast_bytes =
      base.fast_bytes_override != 0
          ? base.fast_bytes_override
          : static_cast<uint64_t>(static_cast<double>(out.footprint_bytes) *
                                  base.fast_ratio);
  const uint64_t capacity = out.footprint_bytes + out.footprint_bytes / 2;

  auto policy = MakePolicy(base.system, out.footprint_bytes, out.fast_bytes);
  const MachineConfig machine = base.cxl
                                    ? MakeCxlMachine(out.fast_bytes, capacity)
                                    : MakeNvmMachine(out.fast_bytes, capacity);
  EngineOptions opts;
  opts.max_accesses = base.accesses != 0 ? base.accesses : DefaultAccesses();
  opts.snapshot_interval_ns = base.snapshot_interval_ns;
  opts.cpu_contention = base.cpu_contention;
  opts.seed = base.engine_seed;
  if (!base.faults.empty()) {
    std::string fault_error;
    SIM_CHECK(FaultPlan::Parse(base.faults, &opts.faults, &fault_error) &&
              "bad faults spec (validate at the CLI)");
  }
  // The colocated run is always audited in collect mode: every fairness
  // report checks the per-tenant conservation invariants, and the epoch
  // recorder supplies the occupancy timeline. Auditing is observation-only,
  // so this changes no metric byte.
  AuditSessionOptions audit_opts;
  audit_opts.record_epochs = true;
  audit_opts.epochs.interval_ns = base.audit_epoch_interval_ns != 0
                                      ? base.audit_epoch_interval_ns
                                      : audit_opts.epochs.interval_ns;
  AuditSession audit(audit_opts);
  opts.audit = &audit;

  Engine engine(machine, *policy, opts);
  out.metrics = engine.Run(*manager);
  manager->ExportPerTenant(engine.mem(), &out.metrics);
  out.audit_report = audit.report();
  if (const EpochRecorder* recorder = audit.recorder()) {
    out.epoch_interval_ns = recorder->options().interval_ns;
    out.epochs = recorder->samples();
  }

  // Solo baselines: each tenant alone, fast tier sized to its quota share
  // (its whole entitlement when unquota'd), access budget matched to what the
  // tenant actually ran colocated so both sides measure comparable phases.
  // A zero-quota tenant's honest baseline is the capacity tier alone.
  std::vector<JobSpec> solos;
  for (size_t i = 0; i < spec.tenants.size(); ++i) {
    const ColocateTenant& t = spec.tenants[i];
    JobSpec solo = base;
    solo.benchmark = t.workload;
    solo.seed_index = base.seed_index + static_cast<uint32_t>(i);
    solo.footprint_scale = scales[i];
    solo.fast_ratio = base.fast_ratio;
    solo.fast_bytes_override =
        t.tenant.quota_fraction >= 0.0
            ? static_cast<uint64_t>(static_cast<double>(out.fast_bytes) *
                                    t.tenant.quota_fraction)
            : out.fast_bytes;
    if (solo.fast_bytes_override < kHugePageSize) {
      solo.system = "all-capacity";
      solo.fast_bytes_override = kHugePageSize;
    }
    const uint64_t colo_accesses = out.metrics.per_tenant[i].accesses;
    solo.accesses = std::max<uint64_t>(colo_accesses, 10'000);
    solo.audit = false;
    solo.audit_epoch_interval_ns = 0;
    solo.memtis_tweak = nullptr;
    solos.push_back(std::move(solo));
  }
  const std::vector<JobResult> solo_results = RunJobs(solos, pool, progress);

  for (size_t i = 0; i < spec.tenants.size(); ++i) {
    ColocateTenantResult pair;
    pair.colo = out.metrics.per_tenant[i];
    pair.solo_fast_bytes = solos[i].fast_bytes_override;
    const Metrics& solo = solo_results[i].metrics;
    pair.solo_accesses = solo.accesses;
    pair.solo_ns_per_access =
        solo.accesses == 0 ? 0.0
                           : static_cast<double>(solo.app_ns) /
                                 static_cast<double>(solo.accesses);
    pair.solo_fast_hit_ratio = solo.fast_hit_ratio();
    pair.slowdown = pair.solo_ns_per_access > 0.0 && pair.colo.accesses > 0
                        ? pair.colo.ns_per_access() / pair.solo_ns_per_access
                        : 0.0;
    out.tenants.push_back(std::move(pair));
  }
  return out;
}

namespace {

void WriteTenantPair(JsonWriter& w, size_t id, const ColocateTenant& spec,
                     const ColocateTenantResult& pair) {
  w.BeginObject();
  w.Field("tenant", static_cast<uint64_t>(id));
  w.Field("name", pair.colo.name);
  w.Field("workload", pair.colo.workload);
  if (spec.tenant.quota_fraction >= 0.0) {
    w.Field("quota_fraction", spec.tenant.quota_fraction);
  }
  w.Field("quota_frames", pair.colo.quota_frames);
  w.Field("weight", spec.tenant.weight);
  w.Key("colo");
  w.BeginObject();
  w.Field("accesses", pair.colo.accesses);
  w.Field("fast_accesses", pair.colo.fast_accesses);
  w.Field("capacity_accesses", pair.colo.capacity_accesses);
  w.Field("active_ns", pair.colo.active_ns);
  w.Field("arrive_ns", pair.colo.arrive_ns);
  w.Field("depart_ns", pair.colo.depart_ns);
  w.Field("finished", pair.colo.finished);
  w.Field("fast_pages", pair.colo.fast_pages);
  w.Field("ns_per_access", pair.colo.ns_per_access());
  w.Field("fast_hit_ratio", pair.colo.fast_hit_ratio());
  w.Field("quota_denied_allocs", pair.colo.quota_denied_allocs);
  w.Field("quota_denied_promotions", pair.colo.quota_denied_promotions);
  w.Field("quota_steals", pair.colo.quota_steals);
  w.Field("budget_denied_promotions", pair.colo.budget_denied_promotions);
  w.EndObject();
  w.Key("solo");
  w.BeginObject();
  w.Field("fast_bytes", pair.solo_fast_bytes);
  w.Field("accesses", pair.solo_accesses);
  w.Field("ns_per_access", pair.solo_ns_per_access);
  w.Field("fast_hit_ratio", pair.solo_fast_hit_ratio);
  w.EndObject();
  w.Field("slowdown", pair.slowdown);
  w.EndObject();
}

}  // namespace

std::string ColocationToJson(const ColocateSpec& spec, const JobSpec& base,
                             const ColocateResult& result,
                             const SinkOptions& options) {
  std::string out;
  JsonWriter w(&out, options.indent);
  w.BeginObject();
  w.Field("schema_version", static_cast<uint64_t>(1));
  w.Field("kind", "colocation");
  w.Key("spec");
  w.BeginObject();
  w.Field("system", base.system);
  w.Field("machine", base.machine_name());
  w.Field("fast_ratio", base.fast_ratio);
  w.Field("accesses", base.accesses);
  w.Field("base_seed", base.base_seed);
  w.Field("engine_seed", base.engine_seed);
  if (!base.faults.empty()) {
    w.Field("faults", base.faults);
  }
  w.Field("colocate", spec.Canonical());
  w.EndObject();
  w.Field("footprint_bytes", result.footprint_bytes);
  w.Field("fast_bytes", result.fast_bytes);
  w.Key("tenants");
  w.BeginArray();
  for (size_t i = 0; i < result.tenants.size(); ++i) {
    WriteTenantPair(w, i, spec.tenants[i], result.tenants[i]);
  }
  w.EndArray();
  w.Key("colocated");
  result.metrics.WriteJson(w, options.timelines);
  w.Key("occupancy");
  w.BeginObject();
  w.Field("interval_ns", result.epoch_interval_ns);
  w.Key("samples");
  w.BeginArray();
  for (const EpochSample& s : result.epochs) {
    w.BeginObject();
    w.Field("t_ns", s.t_ns);
    w.Field("fast_used_pages", s.fast_used_pages);
    w.Key("tenant_fast_pages");
    w.BeginArray();
    for (const uint64_t pages : s.tenant_fast_pages) {
      w.Uint(pages);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("audit");
  result.audit_report.WriteJson(w);
  w.EndObject();
  out += '\n';
  return out;
}

std::string ColocationToCsv(const ColocateSpec& spec,
                            const ColocateResult& result) {
  std::string out =
      "tenant,name,workload,quota_frames,weight,colo_accesses,"
      "colo_fast_hit_ratio,colo_ns_per_access,solo_accesses,"
      "solo_ns_per_access,slowdown,fast_pages,quota_denied_allocs,"
      "quota_denied_promotions,quota_steals,budget_denied_promotions\n";
  for (size_t i = 0; i < result.tenants.size(); ++i) {
    const ColocateTenantResult& pair = result.tenants[i];
    out += std::to_string(i);
    out += ',' + CsvEscape(pair.colo.name);
    out += ',' + CsvEscape(pair.colo.workload);
    out += ',' + std::to_string(pair.colo.quota_frames);
    out += ',' + JsonWriter::FormatDouble(spec.tenants[i].tenant.weight);
    out += ',' + std::to_string(pair.colo.accesses);
    out += ',' + JsonWriter::FormatDouble(pair.colo.fast_hit_ratio());
    out += ',' + JsonWriter::FormatDouble(pair.colo.ns_per_access());
    out += ',' + std::to_string(pair.solo_accesses);
    out += ',' + JsonWriter::FormatDouble(pair.solo_ns_per_access);
    out += ',' + JsonWriter::FormatDouble(pair.slowdown);
    out += ',' + std::to_string(pair.colo.fast_pages);
    out += ',' + std::to_string(pair.colo.quota_denied_allocs);
    out += ',' + std::to_string(pair.colo.quota_denied_promotions);
    out += ',' + std::to_string(pair.colo.quota_steals);
    out += ',' + std::to_string(pair.colo.budget_denied_promotions);
    out += '\n';
  }
  return out;
}

}  // namespace memtis
