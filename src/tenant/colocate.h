// Co-location fairness runner: the `memtis_run --colocate=...` backend.
//
// A colocation run builds a TenantManager from a parsed tenant list, runs it
// as one colocated job, then re-runs every tenant *solo* on a machine whose
// fast tier is sized to that tenant's quota share. The report pairs each
// tenant's colocated attribution with its solo baseline and derives the
// interference slowdown (colocated ns/access over solo ns/access) — the
// noisy-neighbor picture the paper's §8 warehouse-scale discussion asks for.
//
// Determinism: the colocated job runs on the calling thread; solo baselines
// fan out through RunJobs' slot-indexed executor. The serialized report is
// byte-identical for any --threads value.
//
// Spec grammar (parsed by ColocateSpec::Parse):
//
//   tenant[;tenant...]
//   tenant  = workload[,key=value...]   (or workload=NAME as the first field)
//   keys    = name, quota (fast-tier fraction), weight, arrive (ns),
//             depart (ns), accesses (forced-departure budget),
//             phase-period (ns), phase-low, scale (footprint multiplier)
//
// e.g. --colocate="silo,quota=0.5;pagerank,quota=0.25,arrive=2000000"

#ifndef MEMTIS_SIM_SRC_TENANT_COLOCATE_H_
#define MEMTIS_SIM_SRC_TENANT_COLOCATE_H_

#include <string>
#include <vector>

#include "src/runner/result_sink.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"
#include "src/tenant/tenant.h"

namespace memtis {

// One tenant of a colocation spec: the registered workload it runs, its
// TenantSpec (quota/weight/lifecycle/phase), and an optional footprint scale.
struct ColocateTenant {
  std::string workload;
  TenantSpec tenant;
  double scale = 0.0;  // 0 -> the job's footprint scale
};

struct ColocateSpec {
  std::vector<ColocateTenant> tenants;

  // Parses the --colocate grammar above. Returns false with a message in
  // *error on malformed input; workload names are validated against the
  // registry so a typo fails at the CLI, not mid-run.
  static bool Parse(const std::string& text, ColocateSpec* out, std::string* error);

  // Round-trippable canonical form (stable field order, default fields
  // omitted) — echoed into the report so a document names its spec.
  std::string Canonical() const;
};

// One tenant's paired outcome.
struct ColocateTenantResult {
  TenantMetrics colo;           // attribution from the colocated run
  uint64_t solo_fast_bytes = 0; // fast tier the solo baseline ran on
  uint64_t solo_accesses = 0;
  double solo_ns_per_access = 0.0;
  double solo_fast_hit_ratio = 0.0;
  // colo ns/access over solo ns/access; 1.0 = no interference, 0 when either
  // side recorded no accesses (e.g. a tenant that never arrived).
  double slowdown = 0.0;
};

struct ColocateResult {
  uint64_t footprint_bytes = 0;  // sum of tenant footprints
  uint64_t fast_bytes = 0;       // colocated machine's fast tier
  Metrics metrics;               // colocated run (per_tenant filled)
  std::vector<ColocateTenantResult> tenants;  // index = TenantId
  // Audit outcome of the colocated run (always audited in collect mode, so
  // the per-tenant conservation invariants are checked on every report).
  AuditReport audit_report;
  // Per-tenant fast-tier occupancy timeline via the audit plane's
  // EpochRecorder (EpochSample::tenant_fast_pages).
  uint64_t epoch_interval_ns = 0;
  std::vector<EpochSample> epochs;
};

// Runs the colocated job plus one solo baseline per tenant. `base` supplies
// the shared cell knobs (system, fast_ratio/fast_bytes_override, machine,
// accesses, seeds, faults); base.benchmark is ignored.
ColocateResult RunColocation(const ColocateSpec& spec, const JobSpec& base,
                             ThreadPool& pool, const ProgressFn& progress = nullptr);

// Serializes the fairness report. JSON: {"schema_version", "kind":
// "colocation", "spec", "tenants" (paired colo/solo + slowdown), "colocated"
// (full Metrics), "occupancy", "audit"}. CSV: one row per tenant.
std::string ColocationToJson(const ColocateSpec& spec, const JobSpec& base,
                             const ColocateResult& result,
                             const SinkOptions& options = {});
std::string ColocationToCsv(const ColocateSpec& spec, const ColocateResult& result);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_TENANT_COLOCATE_H_
