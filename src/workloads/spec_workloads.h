// SPEC CPU 2017 models: 603.bwaves_s and 654.roms_s.
//
// bwaves "allocates short-lived and long-lived data" (paper §6.2.6): policies
// that keep fast-tier headroom for new allocations win here. roms is a
// time-stepping ocean model whose access pattern forms the banded heat map of
// paper Fig. 1: hot bands that shift slowly across the footprint.

#ifndef MEMTIS_SIM_SRC_WORKLOADS_SPEC_WORKLOADS_H_
#define MEMTIS_SIM_SRC_WORKLOADS_SPEC_WORKLOADS_H_

#include <memory>

#include "src/sim/workload.h"
#include "src/workloads/workload_common.h"

namespace memtis {

class BwavesWorkload : public Workload {
 public:
  struct Params {
    uint64_t footprint_bytes = 96ull << 20;  // long-lived arrays
    uint64_t short_lived_bytes = 6ull << 20;  // per transient buffer
    uint64_t churn_interval = 60'000;         // accesses between alloc/free cycles
    double short_lived_traffic = 0.25;
    double write_ratio = 0.35;
    uint64_t seed = 29;
  };

  BwavesWorkload() : BwavesWorkload(Params{}) {}
  explicit BwavesWorkload(Params params) : params_(params) {}

  std::string_view name() const override { return "603.bwaves"; }
  uint64_t footprint_bytes() const override {
    return params_.footprint_bytes + params_.short_lived_bytes;
  }
  void Setup(App& app, Rng& rng) override;
  bool Step(App& app, Rng& rng) override;

 private:
  Params params_;
  std::unique_ptr<SkewedRegion> arrays_;
  std::unique_ptr<SequentialScanner> sweep_;
  Vaddr transient_ = 0;
  uint64_t transient_pages_ = 0;
  uint64_t issued_ = 0;
  uint64_t next_churn_ = 0;
};

class RomsWorkload : public Workload {
 public:
  struct Params {
    uint64_t footprint_bytes = 96ull << 20;
    uint32_t num_bands = 10;
    uint64_t phase_accesses = 600'000;  // accesses before the hot band shifts
    double band_traffic = 0.7;
    double write_ratio = 0.25;
    uint64_t seed = 31;
  };

  RomsWorkload() : RomsWorkload(Params{}) {}
  explicit RomsWorkload(Params params) : params_(params) {}

  std::string_view name() const override { return "654.roms"; }
  uint64_t footprint_bytes() const override { return params_.footprint_bytes; }
  void Setup(App& app, Rng& rng) override;
  bool Step(App& app, Rng& rng) override;

 private:
  Params params_;
  Vaddr base_ = 0;
  uint64_t pages_ = 0;
  uint64_t band_pages_ = 0;
  std::unique_ptr<SequentialScanner> sweep_;
  uint64_t issued_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_WORKLOADS_SPEC_WORKLOADS_H_
