#include "src/workloads/registry.h"

#include "src/common/check.h"
#include "src/workloads/graph_workloads.h"
#include "src/workloads/hpc_workloads.h"
#include "src/workloads/kv_workloads.h"
#include "src/workloads/spec_workloads.h"
#include "src/workloads/stream.h"

namespace memtis {
namespace {

uint64_t Scale(uint64_t bytes, double scale) {
  const uint64_t scaled = static_cast<uint64_t>(static_cast<double>(bytes) * scale);
  // Keep footprints huge-page aligned and non-trivial.
  return std::max<uint64_t>(scaled / kHugePageSize, 8) * kHugePageSize;
}

}  // namespace

const std::vector<std::string>& StandardBenchmarks() {
  static const std::vector<std::string> kNames = {
      "graph500", "pagerank", "xsbench",     "liblinear",
      "silo",     "btree",    "603.bwaves",  "654.roms",
  };
  return kNames;
}

const std::vector<std::string>& KnownBenchmarks() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names = StandardBenchmarks();
    names.push_back("stream");
    return names;
  }();
  return kNames;
}

std::unique_ptr<Workload> MakeWorkload(std::string_view name, double scale,
                                       uint64_t seed_offset) {
  if (name == "graph500") {
    Graph500Workload::Params p;
    p.footprint_bytes = Scale(p.footprint_bytes, scale);
    p.seed += seed_offset;
    return std::make_unique<Graph500Workload>(p);
  }
  if (name == "pagerank") {
    PageRankWorkload::Params p;
    p.footprint_bytes = Scale(p.footprint_bytes, scale);
    p.seed += seed_offset;
    return std::make_unique<PageRankWorkload>(p);
  }
  if (name == "xsbench") {
    XSBenchWorkload::Params p;
    p.footprint_bytes = Scale(p.footprint_bytes, scale);
    p.seed += seed_offset;
    return std::make_unique<XSBenchWorkload>(p);
  }
  if (name == "liblinear") {
    LiblinearWorkload::Params p;
    p.footprint_bytes = Scale(p.footprint_bytes, scale);
    p.seed += seed_offset;
    return std::make_unique<LiblinearWorkload>(p);
  }
  if (name == "silo") {
    SiloWorkload::Params p;
    p.footprint_bytes = Scale(p.footprint_bytes, scale);
    p.seed += seed_offset;
    return std::make_unique<SiloWorkload>(p);
  }
  if (name == "btree") {
    BtreeWorkload::Params p;
    p.footprint_bytes = Scale(p.footprint_bytes, scale);
    p.seed += seed_offset;
    return std::make_unique<BtreeWorkload>(p);
  }
  if (name == "603.bwaves") {
    BwavesWorkload::Params p;
    p.footprint_bytes = Scale(p.footprint_bytes, scale);
    p.seed += seed_offset;
    return std::make_unique<BwavesWorkload>(p);
  }
  if (name == "stream") {
    StreamWorkload::Params p;
    p.footprint_bytes = Scale(p.footprint_bytes, scale);
    p.seed += seed_offset;
    return std::make_unique<StreamWorkload>(p);
  }
  if (name == "654.roms") {
    RomsWorkload::Params p;
    p.footprint_bytes = Scale(p.footprint_bytes, scale);
    p.seed += seed_offset;
    return std::make_unique<RomsWorkload>(p);
  }
  SIM_CHECK(false && "unknown workload name");
  return nullptr;
}

}  // namespace memtis
