// Building blocks for the synthetic application models.
//
// Each paper benchmark is reproduced by composing three access primitives:
//   SkewedRegion     - Zipf popularity over chunks of the region. With
//                      chunk = 512 pages (2 MiB) hot huge pages are uniformly
//                      hot inside (high utilisation, e.g. Liblinear, paper
//                      Fig. 3a); with chunk = 1 page hotness is scattered at
//                      4 KiB granularity.
//   SparseHugeRegion - Zipf-over-2MiB-blocks where each block concentrates
//                      accesses on a small fixed subset of subpages and only
//                      a subset of subpages is ever written (low utilisation
//                      and THP bloat, e.g. Silo/Btree, paper Fig. 3b).
//   SequentialScanner- streaming sweeps (PageRank edge lists, SPEC arrays).

#ifndef MEMTIS_SIM_SRC_WORKLOADS_WORKLOAD_COMMON_H_
#define MEMTIS_SIM_SRC_WORKLOADS_WORKLOAD_COMMON_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/mem/types.h"

namespace memtis {

// Zipf-distributed popularity over chunks of `chunk_pages` 4 KiB pages; ranks
// are scattered by a permutation so the hot set is not contiguous. Accesses
// pick a chunk by Zipf, then a uniform page and offset inside it.
class SkewedRegion {
 public:
  SkewedRegion(Vaddr start, uint64_t num_pages, double zipf_s, uint64_t seed,
               uint64_t chunk_pages = 1);

  Vaddr start() const { return start_; }
  uint64_t num_pages() const { return num_pages_; }
  uint64_t num_chunks() const { return num_chunks_; }

  Vaddr SampleAddr(Rng& rng) const;

  // Address of the first byte of the chunk with popularity rank `rank`.
  Vaddr AddrOfRank(uint64_t rank) const;

 private:
  Vaddr start_;
  uint64_t num_pages_;
  uint64_t chunk_pages_;
  uint64_t num_chunks_;
  ZipfSampler zipf_;
  std::vector<uint32_t> perm_;
};

// Low huge-page-utilisation region. Each 2 MiB block has `written_per_block`
// subpages that hold data (the rest stay all-zero: THP bloat) and, among
// those, `hot_per_block` subpages that receive the block's traffic. Traffic
// picks a block by Zipf, then a hot subpage, or — with `stray_prob` — any
// written subpage (cold-record lookups).
class SparseHugeRegion {
 public:
  SparseHugeRegion(Vaddr start, uint64_t num_blocks, double zipf_s,
                   uint32_t hot_per_block, uint32_t written_per_block,
                   double stray_prob, uint64_t seed);

  Vaddr start() const { return start_; }
  uint64_t num_blocks() const { return num_blocks_; }
  uint32_t hot_per_block() const { return hot_per_block_; }
  uint32_t written_per_block() const { return written_per_block_; }

  Vaddr SampleAddr(Rng& rng) const;

  // Iterates every written subpage address (population phase writes these).
  template <typename Fn>  // Fn(Vaddr)
  void ForEachWrittenSubpage(Fn&& fn) const {
    for (uint64_t b = 0; b < num_blocks_; ++b) {
      for (uint32_t i = 0; i < written_per_block_; ++i) {
        fn(start_ + b * kHugePageSize +
           (static_cast<Vaddr>(subpages_[b * written_per_block_ + i]) << kPageShift));
      }
    }
  }

 private:
  Vaddr start_;
  uint64_t num_blocks_;
  uint32_t hot_per_block_;
  uint32_t written_per_block_;
  double stray_prob_;
  ZipfSampler zipf_;
  std::vector<uint32_t> block_perm_;
  // written_per_block_ subpage indices per block, flattened; the first
  // hot_per_block_ of each block's slice are the hot ones.
  std::vector<uint16_t> subpages_;
};

// Streaming sweeps over a region with a configurable stride, wrapping around.
class SequentialScanner {
 public:
  SequentialScanner(Vaddr start, uint64_t num_pages, uint64_t stride_bytes = 256);

  Vaddr Next();
  // Run form of Next(): returns the start address of a run of `*n` accesses
  // (clamped from `max_n` so the run never wraps past the region end) and
  // advances the cursor past it. Issuing the run with this stride produces
  // exactly the address stream `*n` scalar Next() calls would.
  Vaddr NextRun(uint64_t max_n, uint64_t* n);
  void Reset() { cursor_ = 0; }
  // Fraction of a full sweep completed (for phase logic).
  double progress() const;

  uint64_t stride_bytes() const { return stride_bytes_; }

  // Checkpointing: only the cursor is mutable state (the region geometry is
  // reconstructed from the owning workload's params).
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U64(cursor_);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    cursor_ = r.U64();
  }

 private:
  Vaddr start_;
  uint64_t span_bytes_;
  uint64_t stride_bytes_;
  uint64_t cursor_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_WORKLOADS_WORKLOAD_COMMON_H_
