#include "src/workloads/kv_workloads.h"

namespace memtis {
namespace {
constexpr uint64_t kBatch = 256;
}  // namespace

// --- Silo ---------------------------------------------------------------------

void SiloWorkload::Setup(App& app, Rng& rng) {
  (void)rng;
  base_ = app.Alloc(params_.footprint_bytes);
  const uint64_t blocks = params_.footprint_bytes / kHugePageSize;
  store_ = std::make_unique<SparseHugeRegion>(
      base_, blocks, params_.zipf_s, params_.hot_per_block,
      /*written_per_block=*/static_cast<uint32_t>(kSubpagesPerHuge),
      params_.stray_prob, params_.seed);
  populate_total_ = params_.footprint_bytes >> kPageShift;
}

bool SiloWorkload::Step(App& app, Rng& rng) {
  for (uint64_t i = 0; i < kBatch; ++i) {
    if (populate_cursor_ < populate_total_) {
      // Population: every subpage is written once, so splits reclaim nothing
      // (paper: "RSS remains unchanged after the split ... no memory bloat").
      app.Write(base_ + (populate_cursor_ << kPageShift));
      ++populate_cursor_;
      continue;
    }
    // YCSB-C: 100% lookups.
    app.Read(store_->SampleAddr(rng));
  }
  return true;
}

// --- Btree --------------------------------------------------------------------

void BtreeWorkload::Setup(App& app, Rng& rng) {
  (void)rng;
  const Vaddr base = app.Alloc(params_.footprint_bytes);
  const uint64_t blocks = params_.footprint_bytes / kHugePageSize;
  index_ = std::make_unique<SparseHugeRegion>(base, blocks, params_.zipf_s,
                                              params_.hot_per_block,
                                              params_.written_per_block,
                                              params_.stray_prob, params_.seed);
}

bool BtreeWorkload::Step(App& app, Rng& rng) {
  // Population happens lazily in the first steps: write each written subpage
  // once, then switch to random lookups.
  if (populate_cursor_ == 0) {
    index_->ForEachWrittenSubpage([&](Vaddr addr) { app.Write(addr); });
    populate_cursor_ = 1;
    return true;
  }
  for (uint64_t i = 0; i < kBatch; ++i) {
    app.Read(index_->SampleAddr(rng));
  }
  return true;
}

}  // namespace memtis
