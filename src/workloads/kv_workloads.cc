#include "src/workloads/kv_workloads.h"

#include "src/snapshot/serializer.h"

namespace memtis {
namespace {
constexpr uint64_t kBatch = 256;
}  // namespace

// --- Silo ---------------------------------------------------------------------

void SiloWorkload::Setup(App& app, Rng& rng) {
  (void)rng;
  base_ = app.Alloc(params_.footprint_bytes);
  const uint64_t blocks = params_.footprint_bytes / kHugePageSize;
  store_ = std::make_unique<SparseHugeRegion>(
      base_, blocks, params_.zipf_s, params_.hot_per_block,
      /*written_per_block=*/static_cast<uint32_t>(kSubpagesPerHuge),
      params_.stray_prob, params_.seed);
  populate_total_ = params_.footprint_bytes >> kPageShift;
}

bool SiloWorkload::Step(App& app, Rng& rng) {
  for (uint64_t i = 0; i < kBatch; ++i) {
    if (populate_cursor_ < populate_total_) {
      // Population: every subpage is written once, so splits reclaim nothing
      // (paper: "RSS remains unchanged after the split ... no memory bloat").
      app.Write(base_ + (populate_cursor_ << kPageShift));
      ++populate_cursor_;
      continue;
    }
    // YCSB-C: 100% lookups.
    app.Read(store_->SampleAddr(rng));
  }
  return true;
}

void SiloWorkload::SaveState(StateWriter& w) const {
  w.Section(0x53494c4fu);  // "SILO"
  w.U64(base_);
  w.U64(populate_cursor_);
  w.U64(populate_total_);
}

void SiloWorkload::LoadState(StateReader& r) {
  r.Section(0x53494c4fu);
  base_ = r.U64();
  populate_cursor_ = r.U64();
  populate_total_ = r.U64();
  // The store layout is deterministic from params + base; Setup() is not
  // re-run on restore (the allocation already lives in the restored memory
  // system).
  const uint64_t blocks = params_.footprint_bytes / kHugePageSize;
  store_ = std::make_unique<SparseHugeRegion>(
      base_, blocks, params_.zipf_s, params_.hot_per_block,
      /*written_per_block=*/static_cast<uint32_t>(kSubpagesPerHuge),
      params_.stray_prob, params_.seed);
}

// --- Btree --------------------------------------------------------------------

void BtreeWorkload::Setup(App& app, Rng& rng) {
  (void)rng;
  const Vaddr base = app.Alloc(params_.footprint_bytes);
  const uint64_t blocks = params_.footprint_bytes / kHugePageSize;
  index_ = std::make_unique<SparseHugeRegion>(base, blocks, params_.zipf_s,
                                              params_.hot_per_block,
                                              params_.written_per_block,
                                              params_.stray_prob, params_.seed);
}

bool BtreeWorkload::Step(App& app, Rng& rng) {
  // Population happens lazily in the first steps: write each written subpage
  // once, then switch to random lookups.
  if (populate_cursor_ == 0) {
    index_->ForEachWrittenSubpage([&](Vaddr addr) { app.Write(addr); });
    populate_cursor_ = 1;
    return true;
  }
  for (uint64_t i = 0; i < kBatch; ++i) {
    app.Read(index_->SampleAddr(rng));
  }
  return true;
}

void BtreeWorkload::SaveState(StateWriter& w) const {
  w.Section(0x42545245u);  // "BTRE"
  w.U64(index_->start());
  w.U64(populate_cursor_);
}

void BtreeWorkload::LoadState(StateReader& r) {
  r.Section(0x42545245u);
  const Vaddr base = r.U64();
  populate_cursor_ = r.U64();
  const uint64_t blocks = params_.footprint_bytes / kHugePageSize;
  index_ = std::make_unique<SparseHugeRegion>(base, blocks, params_.zipf_s,
                                              params_.hot_per_block,
                                              params_.written_per_block,
                                              params_.stray_prob, params_.seed);
}

}  // namespace memtis
