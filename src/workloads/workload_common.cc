#include "src/workloads/workload_common.h"

#include <algorithm>

#include "src/common/check.h"

namespace memtis {

SkewedRegion::SkewedRegion(Vaddr start, uint64_t num_pages, double zipf_s,
                           uint64_t seed, uint64_t chunk_pages)
    : start_(start),
      num_pages_(num_pages),
      chunk_pages_(chunk_pages),
      num_chunks_(std::max<uint64_t>(1, num_pages / chunk_pages)),
      zipf_(num_chunks_, zipf_s) {
  SIM_CHECK_GT(num_pages, 0u);
  SIM_CHECK_GT(chunk_pages, 0u);
  Rng rng(seed);
  perm_ = RandomPermutation(static_cast<uint32_t>(num_chunks_), rng);
}

Vaddr SkewedRegion::SampleAddr(Rng& rng) const {
  const uint64_t rank = zipf_.Sample(rng);
  const uint64_t chunk = perm_[rank];
  const uint64_t page = chunk * chunk_pages_ + rng.NextBelow(chunk_pages_);
  return start_ + (page << kPageShift) + (rng.Next() & (kPageSize - 1) & ~0x7ULL);
}

Vaddr SkewedRegion::AddrOfRank(uint64_t rank) const {
  SIM_CHECK_LT(rank, num_chunks_);
  return start_ + ((static_cast<Vaddr>(perm_[rank]) * chunk_pages_) << kPageShift);
}

SparseHugeRegion::SparseHugeRegion(Vaddr start, uint64_t num_blocks, double zipf_s,
                                   uint32_t hot_per_block, uint32_t written_per_block,
                                   double stray_prob, uint64_t seed)
    : start_(start),
      num_blocks_(num_blocks),
      hot_per_block_(hot_per_block),
      written_per_block_(written_per_block),
      stray_prob_(stray_prob),
      zipf_(num_blocks, zipf_s) {
  SIM_CHECK_GT(num_blocks, 0u);
  SIM_CHECK_GT(hot_per_block_, 0u);
  SIM_CHECK_GE(written_per_block_, hot_per_block_);
  SIM_CHECK_LE(written_per_block_, kSubpagesPerHuge);
  Rng rng(seed);
  block_perm_ = RandomPermutation(static_cast<uint32_t>(num_blocks), rng);
  subpages_.resize(num_blocks * written_per_block_);
  for (uint64_t b = 0; b < num_blocks; ++b) {
    // Distinct subpages per block via partial Fisher-Yates over 0..511; the
    // first hot_per_block_ drawn are the hot set of the block.
    uint16_t pool[kSubpagesPerHuge];
    for (uint16_t i = 0; i < kSubpagesPerHuge; ++i) {
      pool[i] = i;
    }
    for (uint32_t i = 0; i < written_per_block_; ++i) {
      const uint64_t j = i + rng.NextBelow(kSubpagesPerHuge - i);
      std::swap(pool[i], pool[j]);
      subpages_[b * written_per_block_ + i] = pool[i];
    }
  }
}

Vaddr SparseHugeRegion::SampleAddr(Rng& rng) const {
  const uint64_t rank = zipf_.Sample(rng);
  const uint64_t block = block_perm_[rank];
  uint64_t pick;
  if (stray_prob_ > 0.0 && rng.NextBool(stray_prob_)) {
    pick = rng.NextBelow(written_per_block_);
  } else {
    pick = rng.NextBelow(hot_per_block_);
  }
  const uint64_t subpage = subpages_[block * written_per_block_ + pick];
  return start_ + block * kHugePageSize + (subpage << kPageShift) +
         (rng.Next() & (kPageSize - 1) & ~0x7ULL);
}

SequentialScanner::SequentialScanner(Vaddr start, uint64_t num_pages,
                                     uint64_t stride_bytes)
    : start_(start), span_bytes_(num_pages * kPageSize), stride_bytes_(stride_bytes) {
  SIM_CHECK_GT(num_pages, 0u);
  SIM_CHECK_GT(stride_bytes, 0u);
}

Vaddr SequentialScanner::Next() {
  const Vaddr addr = start_ + cursor_;
  cursor_ += stride_bytes_;
  if (cursor_ >= span_bytes_) {
    cursor_ = 0;
  }
  return addr;
}

Vaddr SequentialScanner::NextRun(uint64_t max_n, uint64_t* n) {
  const Vaddr addr = start_ + cursor_;
  const uint64_t left = (span_bytes_ - cursor_ + stride_bytes_ - 1) / stride_bytes_;
  *n = std::min(max_n, left);
  cursor_ += *n * stride_bytes_;
  if (cursor_ >= span_bytes_) {
    cursor_ = 0;
  }
  return addr;
}

double SequentialScanner::progress() const {
  return static_cast<double>(cursor_) / static_cast<double>(span_bytes_);
}

}  // namespace memtis
