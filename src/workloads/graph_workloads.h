// Graph-processing models: Graph500 (generate + BFS) and GAP PageRank.
//
// Both benchmarks "access a large memory region frequently during graph
// generation [and] a small memory region frequently during search" with high
// huge-page utilisation (paper §6.2.1). PageRank keeps a small, persistently
// hot rank array plus streamed edge lists, so its hot set is well below the
// fast-tier size at 1:2 (paper Fig. 2).

#ifndef MEMTIS_SIM_SRC_WORKLOADS_GRAPH_WORKLOADS_H_
#define MEMTIS_SIM_SRC_WORKLOADS_GRAPH_WORKLOADS_H_

#include <memory>
#include <optional>

#include "src/sim/workload.h"
#include "src/workloads/workload_common.h"

namespace memtis {

class Graph500Workload : public Workload {
 public:
  struct Params {
    uint64_t footprint_bytes = 192ull << 20;
    uint64_t gen_accesses_per_page = 12;  // generation-phase intensity
    uint32_t num_search_keys = 64;
    uint64_t accesses_per_key = 90'000;
    uint64_t seed = 7;
  };

  Graph500Workload() : Graph500Workload(Params{}) {}
  explicit Graph500Workload(Params params) : params_(params) {}

  std::string_view name() const override { return "graph500"; }
  uint64_t footprint_bytes() const override { return params_.footprint_bytes; }
  void Setup(App& app, Rng& rng) override;
  bool Step(App& app, Rng& rng) override;

 private:
  Params params_;
  Vaddr edges_ = 0;
  Vaddr vertices_ = 0;
  uint64_t edge_pages_ = 0;
  uint64_t vertex_pages_ = 0;
  uint64_t gen_budget_ = 0;
  uint64_t issued_ = 0;
  uint32_t current_key_ = 0;
  std::unique_ptr<SequentialScanner> edge_scan_;
  std::optional<ZipfSampler> key_zipf_;
};

class PageRankWorkload : public Workload {
 public:
  struct Params {
    uint64_t footprint_bytes = 256ull << 20;
    double rank_fraction = 0.14;    // hot rank array share of the footprint
    double rank_traffic = 0.55;     // share of accesses hitting the rank array
    double rank_write_ratio = 0.3;  // writes within rank traffic
    uint32_t iterations = 20;
    uint64_t seed = 11;
  };

  PageRankWorkload() : PageRankWorkload(Params{}) {}
  explicit PageRankWorkload(Params params) : params_(params) {}

  std::string_view name() const override { return "pagerank"; }
  uint64_t footprint_bytes() const override { return params_.footprint_bytes; }
  void Setup(App& app, Rng& rng) override;
  bool Step(App& app, Rng& rng) override;

 private:
  Params params_;
  Vaddr edges_ = 0;
  uint64_t edge_pages_ = 0;
  std::unique_ptr<SkewedRegion> ranks_;
  std::unique_ptr<SequentialScanner> edge_scan_;
  uint32_t sweeps_done_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_WORKLOADS_GRAPH_WORKLOADS_H_
