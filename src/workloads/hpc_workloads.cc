#include "src/workloads/hpc_workloads.h"

#include <algorithm>

namespace memtis {
namespace {
constexpr uint64_t kBatch = 256;
}  // namespace

// --- XSBench ------------------------------------------------------------------

void XSBenchWorkload::Setup(App& app, Rng& rng) {
  (void)rng;
  uint64_t hot_bytes = static_cast<uint64_t>(static_cast<double>(params_.footprint_bytes) *
                                             params_.hot_region_fraction);
  hot_bytes = std::max<uint64_t>(hot_bytes, kHugePageSize);
  const uint64_t cold_bytes = params_.footprint_bytes - hot_bytes;
  // The hot energy grid is allocated first (early allocation per the paper).
  const Vaddr hot_start = app.Alloc(hot_bytes);
  cold_ = app.Alloc(cold_bytes);
  cold_pages_ = cold_bytes >> kPageShift;
  const uint64_t hot_pages = hot_bytes >> kPageShift;
  // Early phase: nearly flat skew across the whole hot region (hot set ~= the
  // full region, exceeding the fast tier in 1:8/1:16). Steady state: strong
  // skew (hot set shrinks well below the region size).
  hot_flat_ = std::make_unique<SkewedRegion>(hot_start, hot_pages, /*zipf_s=*/0.3,
                                             params_.seed, kSubpagesPerHuge);
  hot_steady_ = std::make_unique<SkewedRegion>(hot_start, hot_pages, /*zipf_s=*/1.2,
                                               params_.seed, kSubpagesPerHuge);
}

bool XSBenchWorkload::Step(App& app, Rng& rng) {
  for (uint64_t i = 0; i < kBatch; ++i, ++issued_) {
    if (rng.NextBool(params_.cold_read_prob)) {
      app.Read(cold_ + (rng.NextBelow(cold_pages_) << kPageShift) +
               (rng.Next() & (kPageSize - 1) & ~0x7ULL));
      continue;
    }
    const SkewedRegion& region =
        issued_ < params_.warm_phase_accesses ? *hot_flat_ : *hot_steady_;
    app.Read(region.SampleAddr(rng));
  }
  return true;
}

// --- Liblinear ----------------------------------------------------------------

void LiblinearWorkload::Setup(App& app, Rng& rng) {
  (void)rng;
  const Vaddr start = app.Alloc(params_.footprint_bytes);
  const uint64_t pages = params_.footprint_bytes >> kPageShift;
  data_ = std::make_unique<SkewedRegion>(start, pages, params_.zipf_s, params_.seed,
                                         kSubpagesPerHuge);
  scan_ = std::make_unique<SequentialScanner>(start, pages, 1024);
}

bool LiblinearWorkload::Step(App& app, Rng& rng) {
  for (uint64_t i = 0; i < kBatch; ++i) {
    Vaddr addr;
    if (rng.NextBool(params_.scan_traffic)) {
      addr = scan_->Next();
    } else {
      addr = data_->SampleAddr(rng);
    }
    if (rng.NextBool(params_.write_ratio)) {
      app.Write(addr);
    } else {
      app.Read(addr);
    }
  }
  return true;
}

}  // namespace memtis
