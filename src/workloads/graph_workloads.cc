#include "src/workloads/graph_workloads.h"

#include <algorithm>

#include "src/common/check.h"

namespace memtis {
namespace {
constexpr uint64_t kBatch = 256;
}  // namespace

// --- Graph500 -----------------------------------------------------------------

void Graph500Workload::Setup(App& app, Rng& rng) {
  (void)rng;
  const uint64_t edge_bytes = params_.footprint_bytes * 3 / 4;
  const uint64_t vertex_bytes = params_.footprint_bytes - edge_bytes;
  edges_ = app.Alloc(edge_bytes);
  vertices_ = app.Alloc(vertex_bytes);
  edge_pages_ = edge_bytes >> kPageShift;
  vertex_pages_ = vertex_bytes >> kPageShift;
  gen_budget_ = (edge_pages_ + vertex_pages_) * params_.gen_accesses_per_page;
  edge_scan_ = std::make_unique<SequentialScanner>(edges_, edge_pages_, 512);
  key_zipf_.emplace(vertex_pages_, 1.1);
}

bool Graph500Workload::Step(App& app, Rng& rng) {
  for (uint64_t i = 0; i < kBatch;) {
    if (issued_ < gen_budget_) {
      // Generation: stream-write edges, random-write vertices (whole footprint
      // is hot, mostly stores). Positions 0-2 of every 4-access group are
      // consecutive edge-stream writes — issued as one run (same address
      // stream as three scalar writes; the engine coalesces it).
      const uint64_t phase = issued_ & 3;
      if (phase != 3) {
        const uint64_t want = std::min(
            {3 - phase, gen_budget_ - issued_, kBatch - i});
        uint64_t n = 0;
        const Vaddr addr = edge_scan_->NextRun(want, &n);
        app.WriteRun(addr, n, edge_scan_->stride_bytes());
        issued_ += n;
        i += n;
      } else {
        app.Write(vertices_ + (rng.NextBelow(vertex_pages_) << kPageShift) +
                  (rng.Next() & (kPageSize - 1) & ~0x7ULL));
        ++issued_;
        ++i;
      }
      continue;
    }
    // BFS search: per key, a skewed working set of vertices plus edge reads.
    const uint64_t search_issued = issued_ - gen_budget_;
    const uint32_t key = static_cast<uint32_t>(search_issued / params_.accesses_per_key);
    if (key >= params_.num_search_keys) {
      return false;
    }
    current_key_ = key;
    if (rng.NextBool(0.75)) {
      // Vertex access: Zipf rank rotated per key so each BFS has its own
      // (small) hot frontier.
      const uint64_t rank = key_zipf_->Sample(rng);
      const uint64_t page = (rank + static_cast<uint64_t>(key) * 977) % vertex_pages_;
      app.Read(vertices_ + (page << kPageShift) + (rng.Next() & (kPageSize - 1) & ~0x7ULL));
    } else {
      app.Read(edge_scan_->Next());
    }
    ++issued_;
    ++i;
  }
  return true;
}

// --- PageRank -----------------------------------------------------------------

void PageRankWorkload::Setup(App& app, Rng& rng) {
  (void)rng;
  uint64_t rank_bytes = static_cast<uint64_t>(
      static_cast<double>(params_.footprint_bytes) * params_.rank_fraction);
  rank_bytes = std::max<uint64_t>(rank_bytes, kHugePageSize);
  const uint64_t edge_bytes = params_.footprint_bytes - rank_bytes;
  edges_ = app.Alloc(edge_bytes);
  const Vaddr rank_start = app.Alloc(rank_bytes);
  edge_pages_ = edge_bytes >> kPageShift;
  // Rank vector: mildly skewed (vertex degree skew), huge pages fully used.
  ranks_ = std::make_unique<SkewedRegion>(rank_start, rank_bytes >> kPageShift,
                                          /*zipf_s=*/0.7, params_.seed,
                                          /*chunk_pages=*/kSubpagesPerHuge);
  edge_scan_ = std::make_unique<SequentialScanner>(edges_, edge_pages_, 512);
}

bool PageRankWorkload::Step(App& app, Rng& rng) {
  for (uint64_t i = 0; i < kBatch; ++i) {
    if (rng.NextBool(params_.rank_traffic)) {
      const Vaddr addr = ranks_->SampleAddr(rng);
      if (rng.NextBool(params_.rank_write_ratio)) {
        app.Write(addr);
      } else {
        app.Read(addr);
      }
    } else {
      app.Read(edge_scan_->Next());
      if (edge_scan_->progress() == 0.0) {
        ++sweeps_done_;
        if (sweeps_done_ >= params_.iterations) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace memtis
