#include "src/workloads/spec_workloads.h"

namespace memtis {
namespace {
constexpr uint64_t kBatch = 256;
}  // namespace

// --- 603.bwaves ----------------------------------------------------------------

void BwavesWorkload::Setup(App& app, Rng& rng) {
  (void)rng;
  const Vaddr base = app.Alloc(params_.footprint_bytes);
  const uint64_t pages = params_.footprint_bytes >> kPageShift;
  arrays_ = std::make_unique<SkewedRegion>(base, pages, /*zipf_s=*/0.7, params_.seed,
                                           kSubpagesPerHuge);
  sweep_ = std::make_unique<SequentialScanner>(base, pages, 1024);
  transient_ = app.Alloc(params_.short_lived_bytes);
  transient_pages_ = params_.short_lived_bytes >> kPageShift;
  next_churn_ = params_.churn_interval;
}

bool BwavesWorkload::Step(App& app, Rng& rng) {
  for (uint64_t i = 0; i < kBatch; ++i, ++issued_) {
    if (issued_ >= next_churn_) {
      // Free the transient buffer and allocate a fresh one — the short-lived
      // data churn that rewards policies reserving fast-tier headroom.
      app.Free(transient_);
      transient_ = app.Alloc(params_.short_lived_bytes);
      next_churn_ = issued_ + params_.churn_interval;
    }
    if (rng.NextBool(params_.short_lived_traffic)) {
      const Vaddr addr = transient_ + (rng.NextBelow(transient_pages_) << kPageShift) +
                         (rng.Next() & (kPageSize - 1) & ~0x7ULL);
      if (rng.NextBool(params_.write_ratio)) {
        app.Write(addr);
      } else {
        app.Read(addr);
      }
      continue;
    }
    Vaddr addr = rng.NextBool(0.5) ? sweep_->Next() : arrays_->SampleAddr(rng);
    if (rng.NextBool(params_.write_ratio)) {
      app.Write(addr);
    } else {
      app.Read(addr);
    }
  }
  return true;
}

// --- 654.roms -------------------------------------------------------------------

void RomsWorkload::Setup(App& app, Rng& rng) {
  (void)rng;
  base_ = app.Alloc(params_.footprint_bytes);
  pages_ = params_.footprint_bytes >> kPageShift;
  band_pages_ = pages_ / params_.num_bands;
  sweep_ = std::make_unique<SequentialScanner>(base_, pages_, 1024);
}

bool RomsWorkload::Step(App& app, Rng& rng) {
  for (uint64_t i = 0; i < kBatch; ++i, ++issued_) {
    Vaddr addr;
    if (rng.NextBool(params_.band_traffic)) {
      // Hot band for the current phase, shifting over time (Fig. 1's banded
      // heat map structure).
      const uint64_t band = (issued_ / params_.phase_accesses) % params_.num_bands;
      const uint64_t page = band * band_pages_ + rng.NextBelow(band_pages_);
      addr = base_ + (page << kPageShift) + (rng.Next() & (kPageSize - 1) & ~0x7ULL);
    } else {
      addr = sweep_->Next();
    }
    if (rng.NextBool(params_.write_ratio)) {
      app.Write(addr);
    } else {
      app.Read(addr);
    }
  }
  return true;
}

}  // namespace memtis
