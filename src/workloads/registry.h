// Factory for the paper's eight benchmark models, used by benches and
// examples. `scale` multiplies the default footprint (Fig. 6 grows it).

#ifndef MEMTIS_SIM_SRC_WORKLOADS_REGISTRY_H_
#define MEMTIS_SIM_SRC_WORKLOADS_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/workload.h"

namespace memtis {

// The eight evaluation benchmarks in the paper's Table 2 order.
const std::vector<std::string>& StandardBenchmarks();

// Every name MakeWorkload accepts: StandardBenchmarks plus the synthetic
// extras ("stream") that are CLI-selectable but excluded from default sweeps.
const std::vector<std::string>& KnownBenchmarks();

// Creates a benchmark model by name (aborts on unknown name).
std::unique_ptr<Workload> MakeWorkload(std::string_view name, double scale = 1.0,
                                       uint64_t seed_offset = 0);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_WORKLOADS_REGISTRY_H_
