// HPC / ML models: XSBench (Monte Carlo neutron transport kernel) and
// Liblinear (large-scale linear classification).
//
// XSBench has "a very skewed hot memory region allocated at an early stage"
// (paper §6.2.2); during its early phase the hot set exceeds the fast tier in
// the 1:8/1:16 configurations (paper Fig. 2), then settles into a smaller hot
// set. Liblinear's hot huge pages have high utilisation (paper Fig. 3a), so
// chunk-granular skew is 2 MiB.

#ifndef MEMTIS_SIM_SRC_WORKLOADS_HPC_WORKLOADS_H_
#define MEMTIS_SIM_SRC_WORKLOADS_HPC_WORKLOADS_H_

#include <memory>

#include "src/sim/workload.h"
#include "src/workloads/workload_common.h"

namespace memtis {

class XSBenchWorkload : public Workload {
 public:
  struct Params {
    uint64_t footprint_bytes = 160ull << 20;
    double hot_region_fraction = 0.35;  // unionized energy grid share
    uint64_t warm_phase_accesses = 1'500'000;  // flat-skew startup phase
    double cold_read_prob = 0.15;       // nuclide-data lookups in steady state
    uint64_t seed = 13;
  };

  XSBenchWorkload() : XSBenchWorkload(Params{}) {}
  explicit XSBenchWorkload(Params params) : params_(params) {}

  std::string_view name() const override { return "xsbench"; }
  uint64_t footprint_bytes() const override { return params_.footprint_bytes; }
  void Setup(App& app, Rng& rng) override;
  bool Step(App& app, Rng& rng) override;

 private:
  Params params_;
  Vaddr cold_ = 0;
  uint64_t cold_pages_ = 0;
  std::unique_ptr<SkewedRegion> hot_flat_;   // early phase: broad hot set
  std::unique_ptr<SkewedRegion> hot_steady_;  // later: concentrated hot set
  uint64_t issued_ = 0;
};

class LiblinearWorkload : public Workload {
 public:
  struct Params {
    uint64_t footprint_bytes = 192ull << 20;
    double zipf_s = 0.9;        // feature-frequency skew across 2 MiB chunks
    double scan_traffic = 0.3;  // full-data training epochs share
    double write_ratio = 0.1;
    uint64_t seed = 17;
  };

  LiblinearWorkload() : LiblinearWorkload(Params{}) {}
  explicit LiblinearWorkload(Params params) : params_(params) {}

  std::string_view name() const override { return "liblinear"; }
  uint64_t footprint_bytes() const override { return params_.footprint_bytes; }
  void Setup(App& app, Rng& rng) override;
  bool Step(App& app, Rng& rng) override;

 private:
  Params params_;
  std::unique_ptr<SkewedRegion> data_;
  std::unique_ptr<SequentialScanner> scan_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_WORKLOADS_HPC_WORKLOADS_H_
