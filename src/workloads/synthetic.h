// Configurable synthetic workload for unit tests, micro-benchmarks, and the
// sensitivity experiments.

#ifndef MEMTIS_SIM_SRC_WORKLOADS_SYNTHETIC_H_
#define MEMTIS_SIM_SRC_WORKLOADS_SYNTHETIC_H_

#include <memory>

#include "src/sim/workload.h"
#include "src/snapshot/serializer.h"
#include "src/workloads/workload_common.h"

namespace memtis {

class SyntheticWorkload : public Workload {
 public:
  struct Params {
    uint64_t footprint_bytes = 64ull << 20;
    double zipf_s = 1.0;            // 0 -> near-uniform
    uint64_t chunk_pages = 1;       // skew granularity (512 = per huge page)
    double write_ratio = 0.2;
    bool populate_first = false;    // sequential write pass before steady state
    uint64_t seed = 3;
  };

  SyntheticWorkload() : SyntheticWorkload(Params{}) {}
  explicit SyntheticWorkload(Params params) : params_(params) {}

  std::string_view name() const override { return "synthetic"; }
  uint64_t footprint_bytes() const override { return params_.footprint_bytes; }

  void Setup(App& app, Rng& rng) override {
    (void)rng;
    base_ = app.Alloc(params_.footprint_bytes);
    const uint64_t pages = params_.footprint_bytes >> kPageShift;
    region_ = std::make_unique<SkewedRegion>(base_, pages,
                                             params_.zipf_s <= 0.0 ? 0.01 : params_.zipf_s,
                                             params_.seed, params_.chunk_pages);
    populate_left_ = params_.populate_first ? pages : 0;
  }

  bool Step(App& app, Rng& rng) override {
    for (int i = 0; i < 256; ++i) {
      if (populate_left_ > 0) {
        --populate_left_;
        app.Write(base_ + (populate_left_ << kPageShift));
        continue;
      }
      const Vaddr addr = region_->SampleAddr(rng);
      if (rng.NextBool(params_.write_ratio)) {
        app.Write(addr);
      } else {
        app.Read(addr);
      }
    }
    return true;
  }

  const SkewedRegion& region() const { return *region_; }
  Vaddr base() const { return base_; }

  // Checkpointing: Setup() is not re-run on restore — LoadState rebuilds the
  // region (deterministic from params + base address) and the populate cursor.
  bool SupportsCheckpoint() const override { return true; }
  void SaveState(StateWriter& w) const override {
    w.Section(0x53594e54u);  // "SYNT"
    w.U64(base_);
    w.U64(populate_left_);
  }
  void LoadState(StateReader& r) override {
    r.Section(0x53594e54u);
    base_ = r.U64();
    populate_left_ = r.U64();
    const uint64_t pages = params_.footprint_bytes >> kPageShift;
    region_ = std::make_unique<SkewedRegion>(
        base_, pages, params_.zipf_s <= 0.0 ? 0.01 : params_.zipf_s,
        params_.seed, params_.chunk_pages);
  }

 private:
  Params params_;
  Vaddr base_ = 0;
  std::unique_ptr<SkewedRegion> region_;
  uint64_t populate_left_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_WORKLOADS_SYNTHETIC_H_
