// CompositeWorkload: co-locates several workloads in one address space,
// interleaving their access batches round-robin — the warehouse-scale
// co-location scenario the paper's TMTS discussion (§8) raises. The tiering
// policy sees one merged access stream and must partition the fast tier
// across tenants by hotness alone.
//
// Now a thin facade over the tenant plane (src/tenant/tenant.h): each Add()
// registers an unquota'd, equal-weight, always-present tenant, so batch
// scheduling, ownership tagging, and per-tenant attribution all live in
// TenantManager. This also fixed the old round-robin, which skipped finished
// tenants but still rotated modulo the original size and so over-served
// survivors unevenly when tenants finish at different times.

#ifndef MEMTIS_SIM_SRC_WORKLOADS_COMPOSITE_H_
#define MEMTIS_SIM_SRC_WORKLOADS_COMPOSITE_H_

#include <memory>
#include <utility>

#include "src/tenant/tenant.h"

namespace memtis {

class CompositeWorkload : public TenantManager {
 public:
  CompositeWorkload() = default;

  void Add(std::unique_ptr<Workload> workload) {
    AddTenant(TenantSpec{}, std::move(workload));
  }

  std::string_view name() const override { return "composite"; }
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_WORKLOADS_COMPOSITE_H_
