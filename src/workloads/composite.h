// CompositeWorkload: co-locates several workloads in one address space,
// interleaving their access batches round-robin — the warehouse-scale
// co-location scenario the paper's TMTS discussion (§8) raises. The tiering
// policy sees one merged access stream and must partition the fast tier
// across tenants by hotness alone.

#ifndef MEMTIS_SIM_SRC_WORKLOADS_COMPOSITE_H_
#define MEMTIS_SIM_SRC_WORKLOADS_COMPOSITE_H_

#include <memory>
#include <vector>

#include "src/sim/workload.h"

namespace memtis {

class CompositeWorkload : public Workload {
 public:
  CompositeWorkload() = default;

  void Add(std::unique_ptr<Workload> workload) {
    tenants_.push_back(Tenant{std::move(workload), /*done=*/false});
  }

  std::string_view name() const override { return "composite"; }

  uint64_t footprint_bytes() const override {
    uint64_t total = 0;
    for (const Tenant& t : tenants_) {
      total += t.workload->footprint_bytes();
    }
    return total;
  }

  void Setup(App& app, Rng& rng) override {
    for (Tenant& t : tenants_) {
      t.workload->Setup(app, rng);
    }
  }

  bool Step(App& app, Rng& rng) override {
    // Round-robin one batch per live tenant; finish when all tenants have.
    bool any_live = false;
    for (size_t i = 0; i < tenants_.size(); ++i) {
      Tenant& t = tenants_[(next_ + i) % tenants_.size()];
      if (t.done) {
        continue;
      }
      if (!t.workload->Step(app, rng)) {
        t.done = true;
        continue;
      }
      any_live = true;
    }
    next_ = (next_ + 1) % (tenants_.empty() ? 1 : tenants_.size());
    return any_live;
  }

  size_t tenant_count() const { return tenants_.size(); }

 private:
  struct Tenant {
    std::unique_ptr<Workload> workload;
    bool done;
  };

  std::vector<Tenant> tenants_;
  size_t next_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_WORKLOADS_COMPOSITE_H_
