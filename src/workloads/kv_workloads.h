// In-memory key-value models: Silo (YCSB-C Zipfian lookups) and a Btree index.
//
// Both exhibit the low huge-page utilisation of paper Fig. 3b: Silo touches
// 5-15% of subpages per huge page (no bloat — every subpage is written during
// population), while Btree additionally suffers THP memory bloat (paper
// §6.2.5: RSS 38.3 GB with THP vs 15.2 GB without), modelled by populating
// only a fraction of subpages per huge page.

#ifndef MEMTIS_SIM_SRC_WORKLOADS_KV_WORKLOADS_H_
#define MEMTIS_SIM_SRC_WORKLOADS_KV_WORKLOADS_H_

#include <memory>

#include "src/sim/workload.h"
#include "src/workloads/workload_common.h"

namespace memtis {

class SiloWorkload : public Workload {
 public:
  struct Params {
    uint64_t footprint_bytes = 160ull << 20;
    double zipf_s = 0.99;           // YCSB Zipfian constant
    uint32_t hot_per_block = 51;  // ~10% of 512 subpages (paper: 5-15%)
    double stray_prob = 0.01;
    uint64_t seed = 19;
  };

  SiloWorkload() : SiloWorkload(Params{}) {}
  explicit SiloWorkload(Params params) : params_(params) {}

  std::string_view name() const override { return "silo"; }
  uint64_t footprint_bytes() const override { return params_.footprint_bytes; }
  void Setup(App& app, Rng& rng) override;
  bool Step(App& app, Rng& rng) override;

  bool SupportsCheckpoint() const override { return true; }
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  Params params_;
  std::unique_ptr<SparseHugeRegion> store_;
  uint64_t populate_cursor_ = 0;  // population writes issued so far
  uint64_t populate_total_ = 0;
  Vaddr base_ = 0;
};

class BtreeWorkload : public Workload {
 public:
  struct Params {
    uint64_t footprint_bytes = 160ull << 20;  // THP-bloated footprint
    double zipf_s = 0.9;
    uint32_t hot_per_block = 48;      // ~9% utilisation (paper: 8.3-12.5%)
    uint32_t written_per_block = 204;  // ~40% populated (15.2/38.3 RSS ratio)
    double stray_prob = 0.02;
    uint64_t seed = 23;
  };

  BtreeWorkload() : BtreeWorkload(Params{}) {}
  explicit BtreeWorkload(Params params) : params_(params) {}

  std::string_view name() const override { return "btree"; }
  uint64_t footprint_bytes() const override { return params_.footprint_bytes; }
  void Setup(App& app, Rng& rng) override;
  bool Step(App& app, Rng& rng) override;

  bool SupportsCheckpoint() const override { return true; }
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  Params params_;
  std::unique_ptr<SparseHugeRegion> index_;
  uint64_t populate_cursor_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_WORKLOADS_KV_WORKLOADS_H_
