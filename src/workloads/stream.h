// Streaming workload built around access runs.
//
// Models bandwidth-bound kernels (memcpy-ish sweeps, column scans): long
// strided sweeps over a large region, with a small Zipf-hot index region that
// keeps the tiering policy busy. Every sweep segment is issued through
// App::ReadRun/WriteRun so the engine's batched-replay path does the heavy
// lifting; `use_runs = false` issues the exact same address stream through
// scalar Read/Write calls, which the differential tests use to pin the
// batched path byte-for-byte to the scalar one.

#ifndef MEMTIS_SIM_SRC_WORKLOADS_STREAM_H_
#define MEMTIS_SIM_SRC_WORKLOADS_STREAM_H_

#include <algorithm>
#include <memory>

#include "src/sim/workload.h"
#include "src/snapshot/serializer.h"
#include "src/workloads/workload_common.h"

namespace memtis {

class StreamWorkload : public Workload {
 public:
  struct Params {
    uint64_t footprint_bytes = 256ull << 20;
    // Accesses per emitted run (one sweep segment).
    uint64_t run_accesses = 64;
    // Stride within a run; 64 B walks a 4 KiB page in one run of 64.
    uint64_t stride_bytes = 64;
    // Fraction of runs that are writes (sweep-and-update phases).
    double write_ratio = 0.3;
    // Fraction of steps that touch the Zipf-hot index region instead of
    // sweeping (keeps promotion/demotion traffic alive under the sweep).
    double hot_traffic = 0.05;
    // Fraction of the footprint given to the hot index region.
    double hot_fraction = 0.125;
    // false -> same address stream via scalar Read/Write (differential twin).
    bool use_runs = true;
    uint64_t seed = 11;
  };

  StreamWorkload() : StreamWorkload(Params{}) {}
  explicit StreamWorkload(Params params) : params_(params) {}

  std::string_view name() const override { return "stream"; }
  uint64_t footprint_bytes() const override { return params_.footprint_bytes; }

  void Setup(App& app, Rng& rng) override {
    (void)rng;
    uint64_t hot_bytes = static_cast<uint64_t>(
        static_cast<double>(params_.footprint_bytes) * params_.hot_fraction);
    hot_bytes = std::max<uint64_t>(hot_bytes, kHugePageSize);
    const uint64_t sweep_bytes = params_.footprint_bytes - hot_bytes;
    sweep_base_ = app.Alloc(sweep_bytes);
    const Vaddr hot_base = app.Alloc(hot_bytes);
    sweep_ = std::make_unique<SequentialScanner>(
        sweep_base_, sweep_bytes >> kPageShift, params_.stride_bytes);
    hot_ = std::make_unique<SkewedRegion>(hot_base, hot_bytes >> kPageShift,
                                          /*zipf_s=*/1.1, params_.seed,
                                          /*chunk_pages=*/kSubpagesPerHuge);
  }

  std::unique_ptr<Workload> ShardSlice(uint32_t shard,
                                       uint32_t num_shards) const override {
    // Range sharding: shard i sweeps its own footprint/num_shards slice with
    // a decorrelated seed. Shard 0 of 1 is the identity (same params, same
    // seed), which pins ShardedEngine(1) to plain Engine bytes.
    Params p = params_;
    const uint64_t slice = params_.footprint_bytes / num_shards;
    p.footprint_bytes = std::max<uint64_t>(slice / kHugePageSize, 8) * kHugePageSize;
    p.seed = params_.seed + static_cast<uint64_t>(shard) * 7919;
    return std::make_unique<StreamWorkload>(p);
  }

  bool Step(App& app, Rng& rng) override {
    // One Step = a handful of runs, so the engine's between-Step budget check
    // keeps the same granularity as the other workloads (~256 accesses).
    for (int r = 0; r < 4; ++r) {
      if (rng.NextBool(params_.hot_traffic)) {
        const Vaddr addr = hot_->SampleAddr(rng);
        if (rng.NextBool(params_.write_ratio)) {
          app.Write(addr);
        } else {
          app.Read(addr);
        }
        continue;
      }
      const bool is_write = rng.NextBool(params_.write_ratio);
      uint64_t n = 0;
      const Vaddr addr = sweep_->NextRun(params_.run_accesses, &n);
      if (params_.use_runs) {
        if (is_write) {
          app.WriteRun(addr, n, params_.stride_bytes);
        } else {
          app.ReadRun(addr, n, params_.stride_bytes);
        }
      } else {
        for (uint64_t i = 0; i < n; ++i) {
          const Vaddr a = addr + i * params_.stride_bytes;
          if (is_write) {
            app.Write(a);
          } else {
            app.Read(a);
          }
        }
      }
    }
    return true;  // engine's access budget bounds the run
  }

  // Checkpointing: region geometry is deterministic from params, so only the
  // two base addresses and the sweep cursor are serialized; LoadState rebuilds
  // the scanner and hot region in place of Setup().
  bool SupportsCheckpoint() const override { return true; }
  void SaveState(StateWriter& w) const override {
    w.Section(0x5354524du);  // "STRM"
    w.U64(sweep_base_);
    w.U64(hot_->start());
    sweep_->SaveState(w);
  }
  void LoadState(StateReader& r) override {
    r.Section(0x5354524du);
    sweep_base_ = r.U64();
    const Vaddr hot_base = r.U64();
    uint64_t hot_bytes = static_cast<uint64_t>(
        static_cast<double>(params_.footprint_bytes) * params_.hot_fraction);
    hot_bytes = std::max<uint64_t>(hot_bytes, kHugePageSize);
    const uint64_t sweep_bytes = params_.footprint_bytes - hot_bytes;
    sweep_ = std::make_unique<SequentialScanner>(
        sweep_base_, sweep_bytes >> kPageShift, params_.stride_bytes);
    sweep_->LoadState(r);
    hot_ = std::make_unique<SkewedRegion>(hot_base, hot_bytes >> kPageShift,
                                          /*zipf_s=*/1.1, params_.seed,
                                          /*chunk_pages=*/kSubpagesPerHuge);
  }

 private:
  Params params_;
  Vaddr sweep_base_ = 0;
  std::unique_ptr<SequentialScanner> sweep_;
  std::unique_ptr<SkewedRegion> hot_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_WORKLOADS_STREAM_H_
