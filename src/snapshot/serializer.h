// Binary state serializer for the snapshot plane.
//
// StateWriter/StateReader move simulation state to and from a flat byte
// buffer: little-endian fixed-width integers, doubles as IEEE-754 bit
// patterns (so a restored double is the *same* double, not a near one),
// strings length-prefixed. The reader never throws and never reads past the
// end — any malformed input latches `ok() == false` and every subsequent
// read returns a zero value, so callers validate once at the end.
//
// Header-only on purpose: every layer of the tree (mem, sim, policies,
// workloads, audit) implements SaveState/LoadState against these types
// without growing a new link edge.

#ifndef MEMTIS_SIM_SRC_SNAPSHOT_SERIALIZER_H_
#define MEMTIS_SIM_SRC_SNAPSHOT_SERIALIZER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace memtis {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
inline uint32_t Crc32(const void* data, size_t len, uint32_t crc = 0) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  crc = ~crc;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return ~crc;
}

inline uint32_t Crc32(std::string_view s, uint32_t crc = 0) {
  return Crc32(s.data(), s.size(), crc);
}

class StateWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U64(s.size());
    buf_.append(s.data(), s.size());
  }
  void Bytes(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  // Section markers let the reader cross-check that writer and reader agree
  // on layout; a mismatch latches the reader's error flag immediately
  // instead of silently misparsing everything after it.
  void Section(uint32_t tag) { U32(0x53454331u ^ tag); }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  template <typename T>
  void AppendLe(T v) {
    char raw[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      raw[i] = static_cast<char>(v & 0xFF);
      v = static_cast<T>(v >> 8);
    }
    buf_.append(raw, sizeof(T));
  }

  std::string buf_;
};

class StateReader {
 public:
  explicit StateReader(std::string_view data) : data_(data) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  bool Bool() { return U8() != 0; }
  uint32_t U32() { return ReadLe<uint32_t>(); }
  uint64_t U64() { return ReadLe<uint64_t>(); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint64_t n = U64();
    if (!ok_ || n > data_.size() - pos_) {
      ok_ = false;
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  bool Bytes(void* p, size_t n) {
    if (!Need(n)) return false;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  void Section(uint32_t tag) {
    if (U32() != (0x53454331u ^ tag)) ok_ = false;
  }

  // Marks the stream invalid from caller-side validation (e.g. a count that
  // contradicts the engine's configuration).
  void Fail() { ok_ = false; }

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }
  // A fully-consumed, error-free stream. Trailing garbage is rejected too:
  // it means writer and reader disagree on the layout.
  bool Done() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Need(size_t n) {
    if (!ok_ || n > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }
  template <typename T>
  T ReadLe() {
    if (!Need(sizeof(T))) return 0;
    T v = 0;
    for (size_t i = sizeof(T); i-- > 0;) {
      v = static_cast<T>(v << 8);
      v = static_cast<T>(v | static_cast<uint8_t>(data_[pos_ + i]));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_SNAPSHOT_SERIALIZER_H_
