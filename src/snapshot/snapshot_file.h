// CRC-guarded, versioned snapshot files with atomic replacement.
//
// A snapshot file is a single self-validating blob:
//
//   "MTSP" | version u32 | body_len u64 | body | crc32 u32
//
// where body = fingerprint (string) | attempt u32 | sequence u64 |
// payload (string), all in StateWriter encoding. The CRC covers every byte
// before it, so torn tails, truncations, and bit flips are all caught by one
// check; the version field rejects snapshots written by a different layout
// generation before any body parsing happens.
//
// SnapshotStore rotates writes across two slots (<base>.s0 / <base>.s1) with
// a monotonic sequence number. Writes go to the slot *not* holding the
// newest valid snapshot, via temp file + rename, so a kill mid-write can
// only ever lose the snapshot being written — the previous one stays intact.
// Loading picks the valid slot with the highest sequence and quarantines
// invalid slot files to "<slot>.corrupt" instead of deleting them.

#ifndef MEMTIS_SIM_SRC_SNAPSHOT_SNAPSHOT_FILE_H_
#define MEMTIS_SIM_SRC_SNAPSHOT_SNAPSHOT_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace memtis {

inline constexpr uint32_t kSnapshotVersion = 1;

struct SnapshotBlob {
  std::string fingerprint;  // cell identity — must match to restore
  uint32_t attempt = 0;     // supervisor attempt the snapshot belongs to
  uint64_t sequence = 0;    // monotonic per cell; newest wins
  std::string payload;      // opaque serialized simulation state
};

// Serializes the blob into a complete file image (envelope + CRC).
std::string EncodeSnapshot(const SnapshotBlob& blob);

// Validates and parses a file image. Returns false with a reason in *error
// for anything short of a byte-perfect snapshot (bad magic, version skew,
// length mismatch, CRC mismatch, malformed body).
bool DecodeSnapshot(std::string_view image, SnapshotBlob* out,
                    std::string* error);

// Writes `contents` to `path` via a same-directory temp file + fsync +
// rename, so readers observe either the old file or the new one, never a
// torn mix.
bool WriteFileAtomic(const std::string& path, std::string_view contents,
                     std::string* error);

class SnapshotStore {
 public:
  explicit SnapshotStore(std::string base_path);

  const std::string& base_path() const { return base_; }

  // Persists a new snapshot for (fingerprint, attempt). The sequence number
  // is assigned internally; the write lands in the slot not holding the
  // newest valid snapshot. Returns false on I/O failure.
  bool Write(const std::string& fingerprint, uint32_t attempt,
             std::string payload, std::string* error);

  // Loads the newest valid snapshot matching (fingerprint, attempt).
  // Corrupt slot files are renamed to "<slot>.corrupt"; valid-but-stale
  // snapshots (other fingerprint or attempt) are skipped without quarantine.
  // Returns false when nothing usable exists; *why (optional) says what was
  // found instead.
  bool LoadNewest(const std::string& fingerprint, uint32_t attempt,
                  SnapshotBlob* out, std::string* why = nullptr);

  // Removes both slot files (clean restart).
  void Clear();

  static std::string SlotPath(const std::string& base, int slot);

 private:
  void Probe();  // scans slots once to seed next_slot_/next_sequence_

  std::string base_;
  bool probed_ = false;
  int next_slot_ = 0;
  uint64_t next_sequence_ = 1;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_SNAPSHOT_SNAPSHOT_FILE_H_
