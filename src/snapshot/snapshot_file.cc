#include "src/snapshot/snapshot_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/snapshot/serializer.h"

namespace memtis {

namespace {

constexpr char kMagic[4] = {'M', 'T', 'S', 'P'};

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return in.good() || in.eof();
}

void Quarantine(const std::string& path) {
  const std::string corrupt = path + ".corrupt";
  ::unlink(corrupt.c_str());
  ::rename(path.c_str(), corrupt.c_str());
}

}  // namespace

std::string EncodeSnapshot(const SnapshotBlob& blob) {
  StateWriter body;
  body.Str(blob.fingerprint);
  body.U32(blob.attempt);
  body.U64(blob.sequence);
  body.Str(blob.payload);

  StateWriter file;
  file.Bytes(kMagic, sizeof(kMagic));
  file.U32(kSnapshotVersion);
  file.U64(body.data().size());
  file.Bytes(body.data().data(), body.data().size());
  file.U32(Crc32(file.data()));
  return file.Take();
}

bool DecodeSnapshot(std::string_view image, SnapshotBlob* out,
                    std::string* error) {
  const auto fail = [&](const char* why) {
    if (error) *error = why;
    return false;
  };
  // magic + version + body_len + crc is the minimum envelope.
  constexpr size_t kEnvelope = 4 + 4 + 8 + 4;
  if (image.size() < kEnvelope) return fail("truncated envelope");
  const std::string_view before_crc = image.substr(0, image.size() - 4);
  StateReader crc_tail(image.substr(image.size() - 4));
  if (crc_tail.U32() != Crc32(before_crc)) return fail("crc mismatch");

  StateReader r(before_crc);
  char magic[4];
  if (!r.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return fail("bad magic");
  const uint32_t version = r.U32();
  if (version != kSnapshotVersion) return fail("version skew");
  const uint64_t body_len = r.U64();
  if (body_len != r.remaining()) return fail("body length mismatch");

  SnapshotBlob blob;
  blob.fingerprint = r.Str();
  blob.attempt = r.U32();
  blob.sequence = r.U64();
  blob.payload = r.Str();
  if (!r.Done()) return fail("malformed body");
  *out = std::move(blob);
  return true;
}

bool WriteFileAtomic(const std::string& path, std::string_view contents,
                     std::string* error) {
  const auto fail = [&](const char* what) {
    if (error) *error = std::string(what) + ": " + std::strerror(errno);
    return false;
  };
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return fail("open");
  size_t off = 0;
  while (off < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return fail("write");
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return fail("fsync");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return fail("rename");
  }
  return true;
}

SnapshotStore::SnapshotStore(std::string base_path)
    : base_(std::move(base_path)) {}

std::string SnapshotStore::SlotPath(const std::string& base, int slot) {
  return base + ".s" + std::to_string(slot);
}

void SnapshotStore::Probe() {
  if (probed_) return;
  probed_ = true;
  uint64_t best_seq = 0;
  int best_slot = -1;
  for (int slot = 0; slot < 2; ++slot) {
    std::string image;
    SnapshotBlob blob;
    std::string err;
    if (!ReadWholeFile(SlotPath(base_, slot), &image)) continue;
    if (!DecodeSnapshot(image, &blob, &err)) continue;
    if (blob.sequence > best_seq) {
      best_seq = blob.sequence;
      best_slot = slot;
    }
  }
  next_sequence_ = best_seq + 1;
  // Never overwrite the newest valid snapshot; rotate into the other slot.
  next_slot_ = best_slot == 0 ? 1 : 0;
}

bool SnapshotStore::Write(const std::string& fingerprint, uint32_t attempt,
                          std::string payload, std::string* error) {
  Probe();
  SnapshotBlob blob;
  blob.fingerprint = fingerprint;
  blob.attempt = attempt;
  blob.sequence = next_sequence_;
  blob.payload = std::move(payload);
  if (!WriteFileAtomic(SlotPath(base_, next_slot_), EncodeSnapshot(blob),
                       error))
    return false;
  ++next_sequence_;
  next_slot_ ^= 1;
  return true;
}

bool SnapshotStore::LoadNewest(const std::string& fingerprint,
                               uint32_t attempt, SnapshotBlob* out,
                               std::string* why) {
  uint64_t best_seq = 0;
  bool found = false;
  std::string reasons;
  for (int slot = 0; slot < 2; ++slot) {
    const std::string path = SlotPath(base_, slot);
    std::string image;
    if (!ReadWholeFile(path, &image)) continue;
    SnapshotBlob blob;
    std::string err;
    if (!DecodeSnapshot(image, &blob, &err)) {
      reasons += "slot " + std::to_string(slot) + " quarantined (" + err +
                 "); ";
      Quarantine(path);
      continue;
    }
    if (blob.fingerprint != fingerprint || blob.attempt != attempt) {
      reasons += "slot " + std::to_string(slot) + " stale; ";
      continue;
    }
    if (!found || blob.sequence > best_seq) {
      best_seq = blob.sequence;
      *out = std::move(blob);
      found = true;
    }
  }
  if (!found && why) *why = reasons.empty() ? "no snapshot" : reasons;
  return found;
}

void SnapshotStore::Clear() {
  for (int slot = 0; slot < 2; ++slot)
    ::unlink(SlotPath(base_, slot).c_str());
  probed_ = false;
  next_slot_ = 0;
  next_sequence_ = 1;
}

}  // namespace memtis
