// Deterministic fault-injection plane.
//
// A FaultPlan names the failure regimes a run must survive (allocation
// failure, aborted migrations and page exchanges, PEBS sample loss,
// migration-budget starvation, tier capacity shrink) as per-site Bernoulli
// probabilities with optional
// virtual-time windows and injection caps. A FaultInjector evaluates the plan
// at the injection points threaded through MemorySystem, PebsSampler,
// MigrationBudget, and the Engine tick loop.
//
// Determinism contract:
//   - The injector carries its own xoshiro stream seeded from
//     (plan.seed, run seed), so two runs with the same seed and plan inject
//     the byte-identical fault sequence — replays are exact.
//   - A disabled injector (no site active) never consumes randomness and
//     never branches simulation state, so a fault-free run with the fault
//     plane compiled in is byte-identical to a build without it
//     (tests/golden_metrics_test.cc holds this to byte-identical JSON).
//   - Sites with probability 0, out-of-window rolls, and capped sites return
//     false without touching the RNG, so enabling one site never perturbs
//     another site's stream.

#ifndef MEMTIS_SIM_SRC_FAULT_FAULT_H_
#define MEMTIS_SIM_SRC_FAULT_FAULT_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/rng.h"

namespace memtis {

class JsonWriter;
class JsonValue;

// Every injection point in the simulator. Keep FaultSiteName in sync.
enum class FaultSite : int {
  // MemorySystem::AllocFrame: the preferred-tier buddy allocation fails (the
  // fallback tier is never injected, so sized machines degrade instead of
  // aborting — the fault models transient watermark/fragmentation pressure).
  kAllocFail = 0,
  // MemorySystem::Migrate: the copy aborts after the destination frame was
  // reserved; the frame is returned and the page is untouched (see the
  // rollback contract in DESIGN.md).
  kMigrateAbort,
  // PebsSampler::OnEvent: the sample buffer overflows and the record is
  // dropped before delivery (counted in PebsStats::dropped).
  kSampleDrop,
  // MigrationBudget::Consume: the request is denied as if tokens were
  // exhausted; the token ledger is not touched.
  kBudgetStarve,
  // Engine tick: the fast tier hot-shrinks by pinning free frames
  // (FaultPlan::tier_shrink_step of the tier per injection, cumulative cap
  // FaultPlan::tier_shrink_cap).
  kTierShrink,
  // MemorySystem::ExchangePages: the two-page swap aborts after both sides
  // passed the admission gates but before any state moved; both pages stay at
  // their original tier/frame with no TLB shootdown (two-sided rollback, see
  // DESIGN.md "exchange contract").
  kExchangeAbort,
};

inline constexpr int kNumFaultSites = 6;

// Stable CLI/JSON name of a site ("alloc-fail", "migrate-abort", ...).
std::string_view FaultSiteName(FaultSite site);
std::optional<FaultSite> FaultSiteFromName(std::string_view name);

struct FaultSiteSpec {
  double probability = 0.0;  // Bernoulli probability per decision point
  uint64_t window_start_ns = 0;
  uint64_t window_end_ns = UINT64_MAX;  // exclusive
  uint64_t max_injections = 0;          // 0 = unlimited

  bool active() const { return probability > 0.0; }
  bool InWindow(uint64_t now_ns) const {
    return now_ns >= window_start_ns && now_ns < window_end_ns;
  }
};

// The schedule: which sites fire, how often, when, and with what magnitude.
struct FaultPlan {
  std::array<FaultSiteSpec, kNumFaultSites> sites;
  // Salt mixed with the run seed into the injector's RNG; lets experiments
  // draw independent fault sequences without touching the workload seed.
  uint64_t seed = 0;
  // Tier hot-shrink magnitude: fraction of the fast tier pinned per
  // injection, and the cumulative cap as a fraction of the tier.
  double tier_shrink_step = 0.02;
  double tier_shrink_cap = 0.25;

  bool enabled() const {
    for (const FaultSiteSpec& s : sites) {
      if (s.active()) {
        return true;
      }
    }
    return false;
  }

  FaultSiteSpec& site(FaultSite s) { return sites[static_cast<int>(s)]; }
  const FaultSiteSpec& site(FaultSite s) const {
    return sites[static_cast<int>(s)];
  }

  // Dense all-site preset used by the storm stress tests and MEMTIS_FAULTS.
  static FaultPlan Storm();

  // Parses a spec string into `out`. Grammar (comma-separated entries):
  //   none | storm                       presets (entries after may override)
  //   <site>=<p>[@<start>-<end>][/<max>] per-site probability, ns window, cap
  //   seed=<n>                           fault-stream salt
  //   shrink-step=<f> | shrink-cap=<f>   tier-shrink magnitude
  // e.g. "alloc-fail=0.05,migrate-abort=0.1@1000000-9000000/25,seed=7".
  // Returns false (with a message in *error) on malformed input.
  static bool Parse(const std::string& spec, FaultPlan* out, std::string* error);

  // Canonical spec string: Parse(ToSpec()) reproduces the plan exactly. Used
  // by the stress tests' one-line reproducers. "none" when disabled.
  std::string ToSpec() const;
};

// Injection counters, copied into Metrics::faults at run end.
struct FaultStats {
  uint64_t injected[kNumFaultSites] = {};
  // Decision points that were eligible (in window, below cap, p > 0).
  uint64_t rolls[kNumFaultSites] = {};

  uint64_t by(FaultSite site) const {
    return injected[static_cast<int>(site)];
  }
  uint64_t total_injected() const {
    uint64_t total = 0;
    for (const uint64_t n : injected) {
      total += n;
    }
    return total;
  }

  void WriteJson(JsonWriter& w) const;

  // Inverse of WriteJson (per-site rolls/injected counters; the derived
  // totals are recomputed). Used by the runner's result codec so supervised
  // children round-trip fault accounting losslessly. Returns false when `v`
  // is not a JSON object.
  static bool FromJson(const JsonValue& v, FaultStats* out);
};

// Evaluates a FaultPlan at the injection sites. One injector per run, owned
// by the Engine and attached (never owned) to the components that host sites.
class FaultInjector {
 public:
  FaultInjector() = default;  // disabled: every ShouldInject is false
  FaultInjector(const FaultPlan& plan, uint64_t run_seed);

  bool enabled() const { return enabled_; }
  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  // One deterministic Bernoulli decision at `site`; true means the caller
  // must degrade (fail the allocation, abort the copy, drop the sample...).
  // Counts the injection when it fires. Inactive sites return false without
  // consuming randomness.
  bool ShouldInject(FaultSite site, uint64_t now_ns) {
    if (!enabled_) {
      return false;
    }
    return Roll(site, now_ns);
  }

  // Checkpointing: the plan and enabled flag are configuration (rebuilt from
  // the job spec); the RNG position and injection/roll counters are the
  // mutable stream state that must resume exactly.
  template <typename Writer>
  void SaveState(Writer& w) const {
    rng_.SaveState(w);
    for (uint64_t n : stats_.injected) w.U64(n);
    for (uint64_t n : stats_.rolls) w.U64(n);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    rng_.LoadState(r);
    for (uint64_t& n : stats_.injected) n = r.U64();
    for (uint64_t& n : stats_.rolls) n = r.U64();
  }

 private:
  bool Roll(FaultSite site, uint64_t now_ns);

  FaultPlan plan_;
  Rng rng_{0};
  FaultStats stats_;
  bool enabled_ = false;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_FAULT_FAULT_H_
