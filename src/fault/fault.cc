#include "src/fault/fault.h"

#include <cstdlib>

#include "src/common/json.h"
#include "src/common/json_parse.h"

namespace memtis {
namespace {

constexpr std::string_view kSiteNames[kNumFaultSites] = {
    "alloc-fail", "migrate-abort", "sample-drop", "budget-starve",
    "tier-shrink", "exchange-abort",
};

// Parses a non-negative integer; rejects trailing garbage.
bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseProb(std::string_view text, double* out) {
  if (text.empty()) {
    return false;
  }
  const std::string buf(text);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || value < 0.0 || value > 1.0) {
    return false;
  }
  *out = value;
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

// One site entry: <p>[@<start>-<end>][/<max>] after the '=' sign.
bool ParseSiteValue(std::string_view value, FaultSiteSpec* spec,
                    std::string* error) {
  std::string_view prob = value;
  const size_t slash = prob.find('/');
  if (slash != std::string_view::npos) {
    uint64_t max = 0;
    if (!ParseU64(prob.substr(slash + 1), &max)) {
      return Fail(error, "bad max-injections in fault entry");
    }
    spec->max_injections = max;
    prob = prob.substr(0, slash);
  }
  const size_t at = prob.find('@');
  if (at != std::string_view::npos) {
    const std::string_view window = prob.substr(at + 1);
    const size_t dash = window.find('-');
    if (dash == std::string_view::npos) {
      return Fail(error, "fault window must be <start>-<end>");
    }
    uint64_t start = 0;
    uint64_t end = 0;
    if (!ParseU64(window.substr(0, dash), &start) ||
        !ParseU64(window.substr(dash + 1), &end) || end <= start) {
      return Fail(error, "bad fault window bounds");
    }
    spec->window_start_ns = start;
    spec->window_end_ns = end;
    prob = prob.substr(0, at);
  }
  if (!ParseProb(prob, &spec->probability)) {
    return Fail(error, "fault probability must be in [0, 1]");
  }
  return true;
}

}  // namespace

std::string_view FaultSiteName(FaultSite site) {
  return kSiteNames[static_cast<int>(site)];
}

std::optional<FaultSite> FaultSiteFromName(std::string_view name) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (kSiteNames[i] == name) {
      return static_cast<FaultSite>(i);
    }
  }
  return std::nullopt;
}

FaultPlan FaultPlan::Storm() {
  FaultPlan plan;
  plan.site(FaultSite::kAllocFail).probability = 0.05;
  plan.site(FaultSite::kMigrateAbort).probability = 0.10;
  plan.site(FaultSite::kSampleDrop).probability = 0.05;
  plan.site(FaultSite::kBudgetStarve).probability = 0.10;
  plan.site(FaultSite::kTierShrink).probability = 0.02;
  plan.site(FaultSite::kExchangeAbort).probability = 0.10;
  return plan;
}

bool FaultPlan::Parse(const std::string& spec, FaultPlan* out,
                      std::string* error) {
  FaultPlan plan;
  const std::string_view text(spec);
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) {
      comma = text.size();
    }
    const std::string_view entry = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      continue;  // tolerate "" and stray commas
    }
    if (entry == "none") {
      plan = FaultPlan();
      continue;
    }
    if (entry == "storm") {
      const uint64_t seed = plan.seed;
      plan = Storm();
      plan.seed = seed;
      continue;
    }
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Fail(error, "fault entry needs key=value: '" + std::string(entry) + "'");
    }
    const std::string_view key = entry.substr(0, eq);
    const std::string_view value = entry.substr(eq + 1);
    if (key == "seed") {
      if (!ParseU64(value, &plan.seed)) {
        return Fail(error, "bad fault seed");
      }
      continue;
    }
    if (key == "shrink-step" || key == "shrink-cap") {
      double fraction = 0.0;
      if (!ParseProb(value, &fraction)) {
        return Fail(error, "shrink fraction must be in [0, 1]");
      }
      (key == "shrink-step" ? plan.tier_shrink_step : plan.tier_shrink_cap) =
          fraction;
      continue;
    }
    const std::optional<FaultSite> site = FaultSiteFromName(key);
    if (!site.has_value()) {
      return Fail(error, "unknown fault site '" + std::string(key) + "'");
    }
    FaultSiteSpec parsed;  // fresh spec: repeating a site overwrites it
    if (!ParseSiteValue(value, &parsed, error)) {
      return false;
    }
    plan.site(*site) = parsed;
  }
  *out = plan;
  return true;
}

std::string FaultPlan::ToSpec() const {
  if (!enabled()) {
    return "none";
  }
  std::string spec;
  for (int i = 0; i < kNumFaultSites; ++i) {
    const FaultSiteSpec& s = sites[i];
    if (!s.active()) {
      continue;
    }
    if (!spec.empty()) {
      spec += ',';
    }
    spec += kSiteNames[i];
    spec += '=';
    spec += JsonWriter::FormatDouble(s.probability);
    if (s.window_start_ns != 0 || s.window_end_ns != UINT64_MAX) {
      spec += '@';
      spec += std::to_string(s.window_start_ns);
      spec += '-';
      spec += std::to_string(s.window_end_ns);
    }
    if (s.max_injections != 0) {
      spec += '/';
      spec += std::to_string(s.max_injections);
    }
  }
  if (seed != 0) {
    spec += ",seed=" + std::to_string(seed);
  }
  const FaultPlan defaults;
  if (sites[static_cast<int>(FaultSite::kTierShrink)].active()) {
    if (tier_shrink_step != defaults.tier_shrink_step) {
      spec += ",shrink-step=" + JsonWriter::FormatDouble(tier_shrink_step);
    }
    if (tier_shrink_cap != defaults.tier_shrink_cap) {
      spec += ",shrink-cap=" + JsonWriter::FormatDouble(tier_shrink_cap);
    }
  }
  return spec;
}

void FaultStats::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Field("faults_injected", total_injected());
  w.Field("migrations_aborted", by(FaultSite::kMigrateAbort));
  w.Field("samples_dropped", by(FaultSite::kSampleDrop));
  // The first five sites predate the schema-stable golden files and are
  // always present; sites added later (exchange-abort) are written only when
  // touched, so documents from runs that never exercise them are unchanged.
  constexpr int kLegacySites = 5;
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (i >= kLegacySites && rolls[i] == 0 && injected[i] == 0) {
      continue;
    }
    w.Key(kSiteNames[i]);
    w.BeginObject();
    w.Field("rolls", rolls[i]);
    w.Field("injected", injected[i]);
    w.EndObject();
  }
  w.EndObject();
}

bool FaultStats::FromJson(const JsonValue& v, FaultStats* out) {
  if (!v.is_object()) {
    return false;
  }
  *out = FaultStats();
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (const JsonValue* site = v.Find(kSiteNames[i]); site != nullptr) {
      out->rolls[i] = site->GetUint("rolls");
      out->injected[i] = site->GetUint("injected");
    }
  }
  return true;
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t run_seed)
    : plan_(plan), enabled_(plan.enabled()) {
  // Distinct SplitMix64 stream from both seeds; independent of the engine's
  // workload RNG so enabling faults never perturbs the access sequence.
  uint64_t mix = run_seed ^ 0xfa017f1a57ULL;
  SplitMix64(mix);
  mix ^= plan.seed * 0x9e3779b97f4a7c15ULL;
  rng_ = Rng(SplitMix64(mix));
}

bool FaultInjector::Roll(FaultSite site, uint64_t now_ns) {
  const int index = static_cast<int>(site);
  const FaultSiteSpec& spec = plan_.sites[index];
  if (!spec.active() || !spec.InWindow(now_ns)) {
    return false;
  }
  if (spec.max_injections != 0 && stats_.injected[index] >= spec.max_injections) {
    return false;
  }
  ++stats_.rolls[index];
  // p >= 1 skips the draw so "always fire" sites stay stream-neutral too.
  const bool fire = spec.probability >= 1.0 || rng_.NextBool(spec.probability);
  if (fire) {
    ++stats_.injected[index];
  }
  return fire;
}

}  // namespace memtis
