#include "src/trace/trace.h"

#include <algorithm>

#include "src/common/check.h"

namespace memtis {
namespace {
constexpr size_t kBufferWords = 1 << 16;
}  // namespace

TraceWriter::TraceWriter(const std::string& path) : file_(std::fopen(path.c_str(), "wb")) {
  SIM_CHECK(file_ != nullptr);
  buffer_.reserve(kBufferWords);
  // Header placeholder; rewritten by Finish().
  SIM_CHECK_EQ(std::fwrite(&header_, sizeof(header_), 1, file_), 1u);
}

TraceWriter::~TraceWriter() { Finish(); }

void TraceWriter::Put(uint64_t word) {
  buffer_.push_back(word);
  if (buffer_.size() >= kBufferWords) {
    SIM_CHECK_EQ(std::fwrite(buffer_.data(), sizeof(uint64_t), buffer_.size(), file_),
                 buffer_.size());
    buffer_.clear();
  }
}

void TraceWriter::RecordAccess(Vaddr addr, bool is_write) {
  SIM_DCHECK(addr < (1ull << 62));
  Put((addr << 2) | (is_write ? 1u : 0u));
  ++header_.num_events;
}

void TraceWriter::RecordAlloc(uint64_t bytes, bool use_thp, Vaddr returned) {
  SIM_DCHECK(bytes < (1ull << 60));
  Put((((bytes << 1) | (use_thp ? 1u : 0u)) << 2) | 2u);
  Put(returned);
  ++header_.num_events;
  live_bytes_ += bytes;
  live_regions_[returned] = bytes;
  header_.footprint_bytes = std::max(header_.footprint_bytes, live_bytes_);
}

void TraceWriter::RecordFree(Vaddr start) {
  Put((start << 2) | 3u);
  ++header_.num_events;
  auto it = live_regions_.find(start);
  if (it != live_regions_.end()) {
    live_bytes_ -= it->second;
    live_regions_.erase(it);
  }
}

void TraceWriter::Finish() {
  if (file_ == nullptr) {
    return;
  }
  if (!buffer_.empty()) {
    SIM_CHECK_EQ(std::fwrite(buffer_.data(), sizeof(uint64_t), buffer_.size(), file_),
                 buffer_.size());
    buffer_.clear();
  }
  std::rewind(file_);
  SIM_CHECK_EQ(std::fwrite(&header_, sizeof(header_), 1, file_), 1u);
  std::fclose(file_);
  file_ = nullptr;
}

TraceReader::TraceReader(const std::string& path)
    : file_(std::fopen(path.c_str(), "rb")) {
  SIM_CHECK(file_ != nullptr);
  SIM_CHECK_EQ(std::fread(&header_, sizeof(header_), 1, file_), 1u);
  SIM_CHECK_EQ(header_.magic, kTraceMagic);
  SIM_CHECK_EQ(header_.version, kTraceVersion);
  buffer_.resize(kBufferWords);
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

bool TraceReader::Get(uint64_t& word) {
  if (buffer_pos_ >= buffer_len_) {
    buffer_len_ = std::fread(buffer_.data(), sizeof(uint64_t), buffer_.size(), file_);
    buffer_pos_ = 0;
    if (buffer_len_ == 0) {
      return false;
    }
  }
  word = buffer_[buffer_pos_++];
  return true;
}

bool TraceReader::Next(Event& event) {
  if (consumed_ >= header_.num_events) {
    return false;
  }
  uint64_t word;
  if (!Get(word)) {
    return false;
  }
  ++consumed_;
  switch (word & 3u) {
    case 0:
      event.kind = Event::Kind::kRead;
      event.addr = word >> 2;
      break;
    case 1:
      event.kind = Event::Kind::kWrite;
      event.addr = word >> 2;
      break;
    case 2: {
      event.kind = Event::Kind::kAlloc;
      const uint64_t payload = word >> 2;
      event.bytes = payload >> 1;
      event.use_thp = (payload & 1u) != 0;
      uint64_t start;
      SIM_CHECK(Get(start));
      event.addr = start;
      break;
    }
    default:
      event.kind = Event::Kind::kFree;
      event.addr = word >> 2;
      break;
  }
  return true;
}

}  // namespace memtis
