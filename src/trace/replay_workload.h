// TraceReplayWorkload: drives the engine from a recorded trace, reproducing
// the original run's memory behaviour exactly (allocation addresses are
// verified against the recording — the address-space allocator is
// deterministic, so any divergence is a bug).

#ifndef MEMTIS_SIM_SRC_TRACE_REPLAY_WORKLOAD_H_
#define MEMTIS_SIM_SRC_TRACE_REPLAY_WORKLOAD_H_

#include <memory>
#include <string>

#include "src/common/check.h"
#include "src/sim/workload.h"
#include "src/trace/trace.h"

namespace memtis {

class TraceReplayWorkload : public Workload {
 public:
  explicit TraceReplayWorkload(const std::string& path)
      : reader_(std::make_unique<TraceReader>(path)) {}

  std::string_view name() const override { return "trace-replay"; }

  uint64_t footprint_bytes() const override {
    return reader_->header().footprint_bytes;
  }

  void Setup(App& app, Rng& rng) override {
    (void)app;
    (void)rng;
  }

  bool Step(App& app, Rng& rng) override {
    (void)rng;
    TraceReader::Event event;
    for (int i = 0; i < 256; ++i) {
      if (!reader_->Next(event)) {
        return false;
      }
      switch (event.kind) {
        case TraceReader::Event::Kind::kRead:
          app.Read(event.addr);
          break;
        case TraceReader::Event::Kind::kWrite:
          app.Write(event.addr);
          break;
        case TraceReader::Event::Kind::kAlloc: {
          const Vaddr start = app.Alloc(event.bytes, event.use_thp);
          SIM_CHECK_EQ(start, event.addr);  // deterministic vpn allocation
          break;
        }
        case TraceReader::Event::Kind::kFree:
          app.Free(event.addr);
          break;
      }
    }
    return true;
  }

 private:
  std::unique_ptr<TraceReader> reader_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_TRACE_REPLAY_WORKLOAD_H_
