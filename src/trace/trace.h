// Access-trace recording and replay.
//
// A trace captures everything a workload does to the memory system — reads,
// writes, region allocations (with their returned addresses) and frees — in a
// compact binary format. Replaying a trace reproduces a run exactly (the
// simulator is deterministic), which enables offline analysis, cross-policy
// comparisons on identical streams, and shipping workloads without their
// generators.
//
// Record encoding (little-endian u64 per event, plus one extra word for
// allocations):
//   bits [1:0] tag: 0=read, 1=write, 2=alloc, 3=free
//   read/write: payload = byte address  (bits [63:2], address << 2)
//   alloc:      payload = (bytes << 1 | use_thp), followed by the returned
//               start address as a raw u64 (verified on replay)
//   free:       payload = start address

#ifndef MEMTIS_SIM_SRC_TRACE_TRACE_H_
#define MEMTIS_SIM_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/mem/types.h"

namespace memtis {

inline constexpr uint64_t kTraceMagic = 0x4d454d5452414345ull;  // "MEMTRACE"
inline constexpr uint32_t kTraceVersion = 1;

struct TraceHeader {
  uint64_t magic = kTraceMagic;
  uint32_t version = kTraceVersion;
  uint32_t reserved = 0;
  uint64_t num_events = 0;
  uint64_t footprint_bytes = 0;  // peak allocated bytes, for machine sizing
};

class TraceWriter {
 public:
  // Opens `path` for writing; aborts on I/O failure.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void RecordAccess(Vaddr addr, bool is_write);
  void RecordAlloc(uint64_t bytes, bool use_thp, Vaddr returned);
  void RecordFree(Vaddr start);

  // Rewrites the header with final counts and closes the file. Called by the
  // destructor if not called explicitly.
  void Finish();

  uint64_t events() const { return header_.num_events; }

 private:
  void Put(uint64_t word);

  std::FILE* file_;
  TraceHeader header_;
  uint64_t live_bytes_ = 0;
  std::unordered_map<Vaddr, uint64_t> live_regions_;
  std::vector<uint64_t> buffer_;
};

class TraceReader {
 public:
  explicit TraceReader(const std::string& path);
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  const TraceHeader& header() const { return header_; }

  struct Event {
    enum class Kind : uint8_t { kRead, kWrite, kAlloc, kFree } kind;
    Vaddr addr = 0;        // access/free address; alloc: recorded start
    uint64_t bytes = 0;    // alloc only
    bool use_thp = false;  // alloc only
  };

  // Reads the next event; returns false at end of trace.
  bool Next(Event& event);

 private:
  bool Get(uint64_t& word);

  std::FILE* file_;
  TraceHeader header_;
  uint64_t consumed_ = 0;
  std::vector<uint64_t> buffer_;
  size_t buffer_pos_ = 0;
  size_t buffer_len_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_TRACE_TRACE_H_
