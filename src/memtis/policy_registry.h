// Factory over all tiering systems (the six baselines + MEMTIS), used by the
// bench binaries and examples.

#ifndef MEMTIS_SIM_SRC_MEMTIS_POLICY_REGISTRY_H_
#define MEMTIS_SIM_SRC_MEMTIS_POLICY_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/policy.h"

namespace memtis {

// The comparison set of the paper's Fig. 5, in its legend order.
const std::vector<std::string>& ComparisonSystems();

// Every name MakePolicy accepts (used by memtis_run to validate sweeps up
// front instead of aborting mid-sweep).
const std::vector<std::string>& KnownPolicyNames();

// Creates a policy by name. `footprint_bytes` and `fast_bytes` size MEMTIS's
// scaled intervals; baselines ignore them. Known names: autonuma,
// autotiering, tiering-0.8, tpp, nimble, multi-clock, hemem, memtis,
// memtis-ns (split disabled), memtis-nowarm (warm set disabled),
// memtis-vanilla (no split, no warm set), all-fast, all-fast-nothp,
// all-capacity.
std::unique_ptr<TieringPolicy> MakePolicy(std::string_view name,
                                          uint64_t footprint_bytes,
                                          uint64_t fast_bytes);

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_MEMTIS_POLICY_REGISTRY_H_
