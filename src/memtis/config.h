// MEMTIS tuning knobs, with the paper's constants and the scaling rules that
// map its 60+ GB / 2M-sample setup onto the simulator's footprints
// (DESIGN.md §5).

#ifndef MEMTIS_SIM_SRC_MEMTIS_CONFIG_H_
#define MEMTIS_SIM_SRC_MEMTIS_CONFIG_H_

#include <algorithm>
#include <cstdint>

#include "src/access/pebs_sampler.h"
#include "src/mem/types.h"

namespace memtis {

struct MemtisConfig {
  PebsConfig pebs;  // adaptive sampling under the 3 % CPU cap

  // Scale-free constants straight from the paper.
  double alpha = 0.9;               // hot-set fill confidence (Algorithm 1)
  double beta = 0.4;                // split count scale factor (Eq. 2)
  double split_benefit_gate = 0.05;  // minimum eHR - rHR to consider splitting
  double free_space_target = 0.02;  // fast-tier free reserve kept by kmigrated

  // Intervals, in sampled records (paper: 100 K adaptation / 2 M cooling).
  uint64_t adapt_interval_samples = 100'000;
  uint64_t cooling_interval_samples = 800'000;
  // Split-benefit estimation runs when window samples exceed a quarter of the
  // allocated 4 KiB pages (paper §4.3.1), but at least this many.
  uint64_t min_estimate_interval_samples = 16'384;

  // kmigrated wakeup period (paper: 500 ms at production scale).
  uint64_t migrate_period_ns = 500'000;

  // Cost model for the background scans.
  uint64_t cool_scan_cost_per_page_ns = 30;

  // Bound on huge pages splintered per kmigrated wakeup (spreads split cost).
  uint64_t max_splits_per_wakeup = 8;

  // Feature flags (Fig. 10/11 ablations).
  bool use_warm_set = true;
  bool enable_split = true;
  bool enable_collapse = true;

  // Related-work baseline (paper §7): THP Shrinker. Splits huge pages with
  // many never-written (all-zero) subpages to reclaim bloat, regardless of
  // access skew or hotness — contrast with MEMTIS's benefit-gated,
  // skewness-ranked splitting.
  bool thp_shrinker = false;
  uint32_t shrinker_max_written = 256;  // split when <= this many subpages hold data

  // Extension (paper §8, "Limitations"): hybrid tracking. PEBS cannot
  // distinguish hotness among rarely-accessed pages, so an optional
  // page-table scan supplies 1-bit recency for pages the sampler never sees:
  // never-referenced fast-tier pages become high-confidence demotion
  // candidates, referenced-but-unsampled pages get a minimal hotness floor.
  bool hybrid_scan = false;
  uint64_t hybrid_scan_period_ns = 5'000'000;

  // Opt-in direct page exchange ("memtis-exchange" in the registry): when a
  // promotion still finds no free fast frame after DemoteForSpace, swap the
  // hot page with a cold fast-tier page in one operation (AutoTiering's
  // exchange_pages) instead of deferring the promotion to the next wakeup —
  // the free-frame-reservation bottleneck of the paper's 2:1 sizing (Fig. 7).
  bool exchange_when_full = false;

  // Scaled defaults: adaptation when sampled capacity ~ fast tier; cooling a
  // few adaptation intervals later (the paper's 100 K : 2 M ratio is 1:20 at
  // 60+ GB scale; 1:4 keeps several coolings within short simulated runs).
  static MemtisConfig ScaledDefaults(uint64_t footprint_bytes, uint64_t fast_bytes) {
    MemtisConfig cfg;
    const uint64_t fast_pages = fast_bytes >> kPageShift;
    (void)footprint_bytes;
    cfg.adapt_interval_samples = std::max<uint64_t>(2048, fast_pages / 4);
    cfg.cooling_interval_samples = cfg.adapt_interval_samples * 4;
    return cfg;
  }
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_MEMTIS_CONFIG_H_
