// Page access histogram — the core data structure of MEMTIS (paper §4.1.3).
//
// 16 exponentially-scaled bins: bin n counts the number of distinct 4 KiB
// units whose hotness factor H falls in [2^n, 2^(n+1)); the last bin is
// unbounded. Exponential bins make cooling a one-slot left shift (halving H
// moves a page exactly one bin down) and match the Zipf/Pareto nature of page
// access frequency. The whole structure is 16 counters (128 bytes).

#ifndef MEMTIS_SIM_SRC_MEMTIS_HISTOGRAM_H_
#define MEMTIS_SIM_SRC_MEMTIS_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cstdint>

namespace memtis {

class AccessHistogram {
 public:
  static constexpr int kBins = 16;

  // Bin index of a hotness factor: floor(log2(H)) clamped to [0, 15].
  // H = 0 and H = 1 both land in bin 0.
  static int BinOf(uint64_t hotness) {
    if (hotness < 2) {
      return 0;
    }
    const int bin = std::bit_width(hotness) - 1;
    return bin >= kBins ? kBins - 1 : bin;
  }

  // Lower edge of a bin: the minimum hotness classified into it.
  static uint64_t BinFloor(int bin) { return bin <= 0 ? 0 : 1ULL << bin; }

  void Add(int bin, uint64_t units) { bins_[bin] += units; }
  void Remove(int bin, uint64_t units);
  void Move(int from, int to, uint64_t units) {
    if (from != to) {
      Remove(from, units);
      Add(to, units);
    }
  }

  // Cooling: every page's H halves, so each bin's population moves one bin
  // left (bin 1 merges into bin 0). Pages in the unbounded top bin may stay
  // put; the caller corrects those during its cooling scan (paper §4.2.2).
  void Cool();

  uint64_t count(int bin) const { return bins_[bin]; }
  uint64_t total() const;

  // Units counted at or above `bin`.
  uint64_t UnitsAtOrAbove(int bin) const;

  // Dynamic threshold adaptation (paper Algorithm 1). `fast_capacity_units`
  // is the fast tier size in 4 KiB units; alpha is the fill-confidence factor
  // (0.9). Thresholds are bin indices; cold may be negative (nothing cold).
  struct Thresholds {
    int hot = 1;
    int warm = 1;
    int cold = 0;
  };
  Thresholds ComputeThresholds(uint64_t fast_capacity_units, double alpha) const;

  template <typename Writer>
  void SaveState(Writer& w) const {
    for (uint64_t b : bins_) w.U64(b);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    for (uint64_t& b : bins_) b = r.U64();
  }

 private:
  std::array<uint64_t, kBins> bins_{};
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_MEMTIS_HISTOGRAM_H_
