#include "src/memtis/histogram.h"

#include "src/common/check.h"

namespace memtis {

void AccessHistogram::Remove(int bin, uint64_t units) {
  SIM_DCHECK(bins_[bin] >= units);
  bins_[bin] -= units;
}

void AccessHistogram::Cool() {
  bins_[0] += bins_[1];
  for (int b = 1; b < kBins - 1; ++b) {
    bins_[b] = bins_[b + 1];
  }
  bins_[kBins - 1] = 0;
}

uint64_t AccessHistogram::total() const {
  uint64_t sum = 0;
  for (uint64_t b : bins_) {
    sum += b;
  }
  return sum;
}

uint64_t AccessHistogram::UnitsAtOrAbove(int bin) const {
  uint64_t sum = 0;
  for (int b = bin < 0 ? 0 : bin; b < kBins; ++b) {
    sum += bins_[b];
  }
  return sum;
}

AccessHistogram::Thresholds AccessHistogram::ComputeThresholds(
    uint64_t fast_capacity_units, double alpha) const {
  // Algorithm 1: grow the hot set downward from the hottest bin while it
  // still fits the fast tier.
  uint64_t s = 0;
  int b = kBins - 1;
  while (b >= 0 && s + bins_[b] <= fast_capacity_units) {
    s += bins_[b];
    --b;
  }
  Thresholds t;
  // Degenerate case: the top bin alone exceeds the fast tier. Keep it hot —
  // an (arbitrary) subset of the hottest bin then occupies the fast tier,
  // which is the best any classifier can do at bin granularity.
  t.hot = b + 1 >= kBins ? kBins - 1 : b + 1;
  // Warm threshold: if the identified hot set nearly fills the fast tier,
  // no warm protection is needed; otherwise shield the bin just below hot
  // from demotion (paper §4.2.1).
  if (static_cast<double>(s) >= static_cast<double>(fast_capacity_units) * alpha) {
    t.warm = t.hot;
  } else {
    t.warm = t.hot - 1;
  }
  t.cold = t.warm - 1;
  return t;
}

}  // namespace memtis
