// MemtisPolicy: the paper's contribution, on the simulator's policy interface.
//
// Pipeline (paper Fig. 4): PEBS samples update per-page hotness and two
// histograms — the page access histogram (OS page granularity, drives the
// hot/warm/cold thresholds via Algorithm 1) and the emulated base page
// histogram (4 KiB granularity, drives the would-be-base-page-only hit-ratio
// estimate eHR). Thresholds adapt every adapt_interval samples; cooling
// halves all counters every cooling_interval samples (EMA with decay 0.5) and
// recomputes huge-page skewness; kmigrated promotes hot pages, demotes
// cold-then-warm pages to keep 2 % free, and splinters the top-Ns most skewed
// huge pages when eHR - rHR exceeds the benefit gate. All of it runs in the
// background; the app only ever pays for TLB shootdowns.

#ifndef MEMTIS_SIM_SRC_MEMTIS_MEMTIS_POLICY_H_
#define MEMTIS_SIM_SRC_MEMTIS_MEMTIS_POLICY_H_

#include <string>
#include <vector>

#include "src/access/pebs_sampler.h"
#include "src/access/pt_scanner.h"
#include "src/common/stats.h"
#include "src/mem/page_list.h"
#include "src/memtis/config.h"
#include "src/memtis/histogram.h"
#include "src/sim/policy.h"

namespace memtis {

class MemtisPolicy : public TieringPolicy {
 public:
  MemtisPolicy() : MemtisPolicy(MemtisConfig{}) {}
  explicit MemtisPolicy(const MemtisConfig& config)
      : config_(config), sampler_(config.pebs) {}

  std::string_view name() const override { return "memtis"; }

  void Init(PolicyContext& ctx) override;
  void OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                const Access& access) override;
  // Batched replay: OnAccess is sampler-gated, so accesses that only decrement
  // the PEBS countdown are absorbable in bulk (see PebsSampler::AbsorbEvents).
  uint64_t RunAbsorbLimit(PolicyContext& ctx, bool is_write) override {
    (void)ctx;
    return sampler_.EventsUntilSample(is_write ? SampleType::kStore
                                               : SampleType::kLlcLoadMiss);
  }
  void AbsorbRun(PolicyContext& ctx, PageIndex index, PageInfo& page,
                 const Access& access, uint64_t n) override {
    (void)ctx;
    (void)index;
    (void)page;
    sampler_.AbsorbEvents(
        access.is_write ? SampleType::kStore : SampleType::kLlcLoadMiss, n);
  }
  void OnPageAllocated(PolicyContext& ctx, PageIndex index, PageInfo& page) override;
  void OnPageFreed(PolicyContext& ctx, PageIndex index, PageInfo& page) override;
  void Tick(PolicyContext& ctx) override;
  ClassifiedSizes Classify(PolicyContext& ctx) override;

  // --- Introspection for experiments -----------------------------------------

  struct Stats {
    uint64_t coolings = 0;
    uint64_t threshold_adaptations = 0;
    uint64_t benefit_estimations = 0;
    uint64_t split_rounds_triggered = 0;  // estimations that selected candidates
    uint64_t splits_performed = 0;
    uint64_t split_subpages_to_fast = 0;
    uint64_t collapses_performed = 0;
    double last_ehr = 0.0;  // estimated base-page-only hit ratio
    double last_rhr = 0.0;  // measured fast-tier sample hit ratio
  };
  const Stats& stats() const { return stats_; }
  const PebsSampler& sampler() const { return sampler_; }
  int hot_threshold_bin() const { return thresholds_.hot; }
  int warm_threshold_bin() const { return thresholds_.warm; }
  int cold_threshold_bin() const { return thresholds_.cold; }
  const AccessHistogram& page_histogram() const { return hist_; }
  const AccessHistogram& base_histogram() const { return base_hist_; }

  // Per-tenant page histograms (the paper's per-memcg scoping): hist_
  // partitioned by page ownership, maintained at the same five mutation
  // sites. Observation-only — thresholds still come from the global hist_ —
  // so runs that never register tenants stay byte-identical. Index = TenantId;
  // grown lazily, so it can be shorter than the memory system's tenant count.
  const std::vector<AccessHistogram>& tenant_histograms() const {
    return tenant_hists_;
  }
  // Mean of the window eHR estimates over the whole run (Fig. 12).
  double mean_ehr() const { return ehr_stat_.count() == 0 ? 0.0 : ehr_stat_.mean(); }
  double mean_rhr_sampled() const {
    return rhr_stat_.count() == 0 ? 0.0 : rhr_stat_.mean();
  }

  // Samples this policy has drained from the sampler and folded into the
  // histograms. The audit layer checks this ledger against the sampler's own
  // sample count: the two advance in lock step, so any drift means samples
  // were produced but never reached the histogram pipeline (or vice versa).
  uint64_t samples_processed() const { return samples_processed_; }

  // Queue backlogs, for per-epoch observability.
  uint64_t promotion_backlog() const { return promotion_list_.size(); }
  uint64_t demotion_backlog() const { return demotion_list_.size(); }
  uint64_t split_backlog() const { return split_queue_.size(); }

  // Test-only fault injection: direct sampler access, used to desynchronize
  // the sample ledger in auditor tests.
  PebsSampler& TestOnlyMutableSampler() { return sampler_; }

  // Test/bench-only: runs one cooling event immediately (normally cooling
  // fires every cooling_interval_samples). Used by bench/perf/hotpath_bench
  // to measure the cooling-scan cost in isolation.
  void TestOnlyForceCooling(PolicyContext& ctx) { CoolingEvent(ctx); }

  // Test/debug audit: recomputes both histograms from the live page metadata
  // and compares them (and every cached bin) against the incrementally
  // maintained state. O(pages x subpages); returns false on any mismatch.
  // The diagnostic variant describes the first mismatch in `error`.
  bool ValidateHistograms(MemorySystem& mem) const {
    return ValidateHistograms(mem, nullptr);
  }
  bool ValidateHistograms(MemorySystem& mem, std::string* error) const;

  // Checkpointing: the full mutable pipeline — sampler, histograms (global,
  // base, per-tenant), thresholds, event counters, queues, skew buckets,
  // hybrid scanner, and run statistics. Init() must run before LoadState on
  // the restore path (re-attaches the sampler's fault injector; LoadState
  // then overwrites the thresholds Init reset).
  bool SupportsCheckpoint() const override { return true; }
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  // Hotness of one 4 KiB unit when treated as a base page (used by the
  // emulated base-page histogram and the skewness math).
  static uint64_t UnitHotness(uint64_t count) { return count * kSubpagesPerHuge; }

  // Lazily applies pending cooling epochs to a page (and its subpages).
  void SyncCooling(PageInfo& page) const;

  void AdaptThresholds(PolicyContext& ctx);
  void CoolingEvent(PolicyContext& ctx);
  void EstimateSplitBenefit(PolicyContext& ctx);
  void SelectSplitCandidates(PolicyContext& ctx, uint64_t how_many);
  void ProcessSplitQueue(PolicyContext& ctx);
  void RunMigration(PolicyContext& ctx);
  // Promotes `hot` by swapping it with a cold fast-tier page of the same kind
  // (config_.exchange_when_full). Returns false when no victim qualifies or
  // the migration budget is exhausted.
  bool TryExchangePromotion(PolicyContext& ctx, PageIndex hot);
  void HybridScan(PolicyContext& ctx);
  void DemoteForSpace(PolicyContext& ctx, uint64_t target_free_frames);
  void RefillDemotionList(PolicyContext& ctx);
  void TryCollapse(PolicyContext& ctx, const std::vector<Vpn>& candidates);

  // Histogram bookkeeping around structural changes.
  void AccountPageAdded(PolicyContext& ctx, PageInfo& page);
  void AccountPageRemoved(PolicyContext& ctx, PageInfo& page);

  bool IsHotBin(int bin) const { return bin >= thresholds_.hot; }
  bool IsColdBin(int bin) const {
    return config_.use_warm_set ? bin < thresholds_.cold : bin < thresholds_.hot;
  }

  MemtisConfig config_;
  PebsSampler sampler_;

  // The owning tenant's slice of hist_ (lazily grown by page.tenant).
  AccessHistogram& TenantHist(const PageInfo& page) {
    if (page.tenant >= tenant_hists_.size()) {
      tenant_hists_.resize(static_cast<size_t>(page.tenant) + 1);
    }
    return tenant_hists_[page.tenant];
  }

  AccessHistogram hist_;       // OS-page histogram (4 KiB units per page size)
  AccessHistogram base_hist_;  // emulated base-page histogram
  std::vector<AccessHistogram> tenant_hists_;  // hist_ split by owner
  AccessHistogram::Thresholds thresholds_;
  int base_hot_bin_ = 1;  // T_hot over the emulated base-page histogram

  uint32_t cool_epoch_ = 0;

  // Sample-driven event counters.
  uint64_t samples_processed_ = 0;  // lifetime ledger (audit cross-check)
  uint64_t samples_since_adapt_ = 0;
  uint64_t samples_since_cool_ = 0;
  uint64_t samples_since_estimate_ = 0;

  // eHR / rHR window counters (reset per estimation).
  uint64_t win_samples_ = 0;
  uint64_t win_fast_hits_ = 0;
  uint64_t win_base_hot_hits_ = 0;
  double avg_samples_per_hp_ = 1.0;  // refreshed during cooling scans
  uint32_t consecutive_gap_windows_ = 0;  // stability gate for splitting

  PageList promotion_list_;
  PageList demotion_list_;
  PageList split_queue_;
  PageIndex demotion_refill_cursor_ = 0;
  PageIndex exchange_cursor_ = 0;

  // Skewness buckets rebuilt at each cooling scan: bucket b holds huge pages
  // with floor(log2(S_i)) == b (paper §4.3.2's "array of skewness factors").
  static constexpr int kSkewBuckets = 48;
  std::vector<PageRef> skew_buckets_[kSkewBuckets];

  uint64_t next_migrate_ns_ = 0;

  // Hybrid-tracking extension state (config_.hybrid_scan).
  PtScanner hybrid_scanner_;
  uint64_t next_hybrid_scan_ns_ = 0;

  RunningStat ehr_stat_;
  RunningStat rhr_stat_;
  Stats stats_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_MEMTIS_MEMTIS_POLICY_H_
