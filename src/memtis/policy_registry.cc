#include "src/memtis/policy_registry.h"

#include "src/common/check.h"
#include "src/memtis/memtis_policy.h"
#include "src/policies/autonuma.h"
#include "src/policies/autotiering.h"
#include "src/policies/hemem.h"
#include "src/policies/multiclock.h"
#include "src/policies/nimble.h"
#include "src/policies/static_policy.h"
#include "src/policies/tiering08.h"
#include "src/policies/tpp.h"

namespace memtis {

const std::vector<std::string>& ComparisonSystems() {
  static const std::vector<std::string> kNames = {
      "autonuma", "autotiering", "tiering-0.8", "tpp", "nimble", "hemem", "memtis",
  };
  return kNames;
}

const std::vector<std::string>& KnownPolicyNames() {
  static const std::vector<std::string> kNames = {
      "autonuma",       "autotiering",   "tiering-0.8",    "tpp",
      "nimble",         "multi-clock",   "hemem",          "hemem-exchange",
      "memtis",         "memtis-ns",     "memtis-vanilla", "memtis-shrinker",
      "memtis-hybrid",  "memtis-nowarm", "memtis-exchange", "all-fast",
      "all-fast-nothp", "all-capacity",
  };
  return kNames;
}

std::unique_ptr<TieringPolicy> MakePolicy(std::string_view name,
                                          uint64_t footprint_bytes,
                                          uint64_t fast_bytes) {
  if (name == "autonuma") {
    return std::make_unique<AutoNumaPolicy>();
  }
  if (name == "autotiering") {
    return std::make_unique<AutoTieringPolicy>();
  }
  if (name == "tiering-0.8") {
    return std::make_unique<Tiering08Policy>();
  }
  if (name == "tpp") {
    return std::make_unique<TppPolicy>();
  }
  if (name == "nimble") {
    return std::make_unique<NimblePolicy>();
  }
  if (name == "multi-clock") {
    return std::make_unique<MultiClockPolicy>();
  }
  if (name == "hemem") {
    return std::make_unique<HeMemPolicy>();
  }
  if (name == "hemem-exchange") {
    HeMemPolicy::Params params;
    params.use_exchange = true;
    return std::make_unique<HeMemPolicy>(params);
  }
  if (name == "memtis") {
    return std::make_unique<MemtisPolicy>(
        MemtisConfig::ScaledDefaults(footprint_bytes, fast_bytes));
  }
  if (name == "memtis-ns") {
    MemtisConfig cfg = MemtisConfig::ScaledDefaults(footprint_bytes, fast_bytes);
    cfg.enable_split = false;
    cfg.enable_collapse = false;
    return std::make_unique<MemtisPolicy>(cfg);
  }
  if (name == "memtis-vanilla") {
    MemtisConfig cfg = MemtisConfig::ScaledDefaults(footprint_bytes, fast_bytes);
    cfg.enable_split = false;
    cfg.enable_collapse = false;
    cfg.use_warm_set = false;
    return std::make_unique<MemtisPolicy>(cfg);
  }
  if (name == "memtis-shrinker") {
    MemtisConfig cfg = MemtisConfig::ScaledDefaults(footprint_bytes, fast_bytes);
    cfg.enable_split = false;  // bloat-triggered splitting only
    cfg.enable_collapse = false;
    cfg.thp_shrinker = true;
    return std::make_unique<MemtisPolicy>(cfg);
  }
  if (name == "memtis-hybrid") {
    MemtisConfig cfg = MemtisConfig::ScaledDefaults(footprint_bytes, fast_bytes);
    cfg.hybrid_scan = true;
    return std::make_unique<MemtisPolicy>(cfg);
  }
  if (name == "memtis-nowarm") {
    MemtisConfig cfg = MemtisConfig::ScaledDefaults(footprint_bytes, fast_bytes);
    cfg.use_warm_set = false;
    return std::make_unique<MemtisPolicy>(cfg);
  }
  if (name == "memtis-exchange") {
    MemtisConfig cfg = MemtisConfig::ScaledDefaults(footprint_bytes, fast_bytes);
    cfg.exchange_when_full = true;
    return std::make_unique<MemtisPolicy>(cfg);
  }
  if (name == "all-fast") {
    return std::make_unique<StaticPolicy>(TierId::kFast);
  }
  if (name == "all-fast-nothp") {
    return std::make_unique<StaticPolicy>(TierId::kFast, /*use_thp=*/false);
  }
  if (name == "all-capacity") {
    return std::make_unique<StaticPolicy>(TierId::kCapacity);
  }
  SIM_CHECK(false && "unknown policy name");
  return nullptr;
}

}  // namespace memtis
