#include "src/memtis/memtis_policy.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/common/check.h"
#include "src/policies/policy_util.h"
#include "src/snapshot/serializer.h"

namespace memtis {

void MemtisPolicy::Init(PolicyContext& ctx) {
  sampler_.AttachFaults(ctx.faults);
  // Initial thresholds per paper §4.2.1: T_hot = T_warm = 1, T_cold = 0.
  thresholds_ = AccessHistogram::Thresholds{.hot = 1, .warm = 1, .cold = 0};
  base_hot_bin_ = 1;
}

void MemtisPolicy::AccountPageAdded(PolicyContext& ctx, PageInfo& page) {
  (void)ctx;
  const int bin = AccessHistogram::BinOf(page.hotness());
  page.histogram_bin = static_cast<uint8_t>(bin);
  hist_.Add(bin, page.size_pages());
  TenantHist(page).Add(bin, page.size_pages());
  if (page.kind() == PageKind::kHuge) {
    if (page.huge->nonzero_subpages == 0) {
      // All subpage counters are zero: 512 units land in BinOf(0) at once.
      base_hist_.Add(AccessHistogram::BinOf(0), kSubpagesPerHuge);
    } else {
      for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
        base_hist_.Add(AccessHistogram::BinOf(UnitHotness(page.huge->subpage_count[j])), 1);
      }
    }
  } else {
    base_hist_.Add(bin, 1);
  }
}

void MemtisPolicy::AccountPageRemoved(PolicyContext& ctx, PageInfo& page) {
  (void)ctx;
  hist_.Remove(page.histogram_bin, page.size_pages());
  TenantHist(page).Remove(page.histogram_bin, page.size_pages());
  if (page.kind() == PageKind::kHuge) {
    if (page.huge->nonzero_subpages == 0) {
      base_hist_.Remove(AccessHistogram::BinOf(0), kSubpagesPerHuge);
    } else {
      for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
        base_hist_.Remove(
            AccessHistogram::BinOf(UnitHotness(page.huge->subpage_count[j])), 1);
      }
    }
  } else {
    base_hist_.Remove(page.histogram_bin, 1);
  }
}

void MemtisPolicy::OnPageAllocated(PolicyContext& ctx, PageIndex index,
                                   PageInfo& page) {
  (void)index;
  // Initial hotness = current hot threshold, so fresh pages are not immediate
  // demotion victims (paper §4.2.1).
  const uint64_t hot_floor = AccessHistogram::BinFloor(thresholds_.hot);
  if (page.kind() == PageKind::kHuge) {
    page.access_count() = std::max<uint64_t>(1, hot_floor);
  } else {
    page.access_count() = std::max<uint64_t>(1, hot_floor / kSubpagesPerHuge);
  }
  page.cooling_epoch = cool_epoch_;
  AccountPageAdded(ctx, page);
}

void MemtisPolicy::OnPageFreed(PolicyContext& ctx, PageIndex index, PageInfo& page) {
  (void)index;
  AccountPageRemoved(ctx, page);
}

void MemtisPolicy::SyncCooling(PageInfo& page) const {
  const uint32_t behind = cool_epoch_ - page.cooling_epoch;
  if (behind == 0) {
    return;
  }
  // Only reachable for pages created by structural changes between cooling
  // scans; the eager scan keeps everyone else in sync.
  const uint32_t shift = std::min(behind, 63u);
  page.access_count() >>= shift;
  if (page.kind() == PageKind::kHuge && page.huge->nonzero_subpages != 0) {
    for (auto& c : page.huge->subpage_count) {
      if (c != 0) {
        c >>= shift;
        if (c == 0) {
          --page.huge->nonzero_subpages;
        }
      }
    }
  }
  page.cooling_epoch = cool_epoch_;
}

void MemtisPolicy::OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                            const Access& access) {
  const SampleType type =
      access.is_write ? SampleType::kStore : SampleType::kLlcLoadMiss;
  if (!sampler_.OnEvent(type, ctx.now_ns)) {
    return;
  }
  ctx.ChargeDaemon(DaemonKind::kSampler, sampler_.AccountSample(ctx.now_ns));
  ++samples_processed_;
  SIM_DCHECK(page.cooling_epoch == cool_epoch_);

  // Update page (and subpage) hotness and both histograms.
  ++page.access_count();
  uint64_t unit_old;
  uint64_t unit_new;
  if (page.kind() == PageKind::kHuge) {
    uint32_t& c = page.huge->subpage_count[SubpageIndexOf(VpnOf(access.addr))];
    unit_old = UnitHotness(c);
    if (c == 0) {
      ++page.huge->nonzero_subpages;
    }
    ++c;
    unit_new = UnitHotness(c);
  } else {
    unit_new = page.hotness();
    unit_old = unit_new - kSubpagesPerHuge;
  }
  const int unit_bin_old = AccessHistogram::BinOf(unit_old);
  const int unit_bin_new = AccessHistogram::BinOf(unit_new);
  if (unit_bin_old != unit_bin_new) {
    base_hist_.Move(unit_bin_old, unit_bin_new, 1);
  }
  const int page_bin = AccessHistogram::BinOf(page.hotness());
  if (page_bin != page.histogram_bin) {
    hist_.Move(page.histogram_bin, page_bin, page.size_pages());
    TenantHist(page).Move(page.histogram_bin, page_bin, page.size_pages());
    page.histogram_bin = static_cast<uint8_t>(page_bin);
  }

  // eHR / rHR windows (paper §4.3.1). The eHR membership test uses the
  // unit's hotness *before* this sample: counting the sample's own increment
  // would make any subpage sampled twice per window look hot and inflate eHR
  // on uniform workloads.
  ++win_samples_;
  if (page.tier() == TierId::kFast) {
    ++win_fast_hits_;
  }
  if (unit_bin_old >= base_hot_bin_) {
    ++win_base_hot_hits_;
  }

  // Hot page in the capacity tier: queue for promotion (paper §4.2.3).
  if (page.tier() == TierId::kCapacity && page_bin >= thresholds_.hot &&
      !page.in_promotion_list) {
    page.in_promotion_list = true;
    promotion_list_.Push(page.ref(index));
  }

  if (config_.hybrid_scan) {
    hybrid_scanner_.MarkAccessed(index);
  }

  // Sample-count-driven events.
  ++samples_since_adapt_;
  ++samples_since_cool_;
  ++samples_since_estimate_;
  if (samples_since_adapt_ >= config_.adapt_interval_samples) {
    samples_since_adapt_ = 0;
    AdaptThresholds(ctx);
  }
  if (samples_since_cool_ >= config_.cooling_interval_samples) {
    samples_since_cool_ = 0;
    CoolingEvent(ctx);
  }
  const uint64_t estimate_interval = std::max(
      config_.min_estimate_interval_samples, ctx.mem.mapped_4k_pages() / 4);
  if (samples_since_estimate_ >= estimate_interval) {
    samples_since_estimate_ = 0;
    EstimateSplitBenefit(ctx);
  }
}

void MemtisPolicy::AdaptThresholds(PolicyContext& ctx) {
  const uint64_t fast_units = ctx.mem.tier(TierId::kFast).total_frames();
  thresholds_ = hist_.ComputeThresholds(fast_units, config_.alpha);
  base_hot_bin_ = base_hist_.ComputeThresholds(fast_units, config_.alpha).hot;
  ++stats_.threshold_adaptations;
}

void MemtisPolicy::CoolingEvent(PolicyContext& ctx) {
  ++stats_.coolings;
  ++cool_epoch_;
  hist_.Cool();
  base_hist_.Cool();
  for (AccessHistogram& th : tenant_hists_) {
    th.Cool();  // all tenants cool together (one global cooling clock)
  }
  for (auto& bucket : skew_buckets_) {
    bucket.clear();
  }

  const uint64_t base_hot_floor = AccessHistogram::BinFloor(base_hot_bin_);
  uint64_t hp_sample_sum = 0;
  uint64_t hp_count = 0;
  uint64_t scanned = 0;
  std::unordered_map<Vpn, uint32_t> hot_base_runs;

  // The scan touches kind/tier/access_count for every live page: read them
  // straight out of the SoA arrays (hoisted once) instead of through the
  // per-page PageInfo proxy — this is the perf-tracked cooling_scan path.
  PageHotArrays& hot = ctx.mem.hot_arrays();
  ctx.mem.ForEachLivePage([&](PageIndex index, PageInfo& page) {
    ++scanned;
    // Halve the page counter; fix the histogram where the plain left shift was
    // wrong (top bin, bin-0 saturation — paper §4.2.2's correction step).
    const int prev_bin = page.histogram_bin;
    const int shifted_bin = prev_bin > 0 ? prev_bin - 1 : 0;
    const uint64_t count = (hot.access_count[index] >>= 1);
    const PageKind kind = hot.kind[index];
    const bool is_huge = kind == PageKind::kHuge;
    const uint64_t hotness = is_huge ? count : count * kSubpagesPerHuge;
    const uint64_t size_pages = is_huge ? kSubpagesPerHuge : 1;
    page.cooling_epoch = cool_epoch_;
    const int actual_bin = AccessHistogram::BinOf(hotness);
    if (actual_bin != shifted_bin) {
      hist_.Move(shifted_bin, actual_bin, size_pages);
      TenantHist(page).Move(shifted_bin, actual_bin, size_pages);
    }
    page.histogram_bin = static_cast<uint8_t>(actual_bin);

    if (is_huge) {
      // Cool subpages, correct the base-page histogram, and recompute the
      // skewness factor S_i = sum(H_ij^2) / U_i^2 (paper Eq. 3). When every
      // subpage counter is zero the whole inner loop is a no-op (a shift of 0
      // is 0, BinOf(0) equals the shifted bin, and h > 0 never holds), so the
      // nonzero_subpages summary lets all-cold huge pages skip the 512
      // iterations without changing any state.
      uint32_t hot_subs = 0;
      double h2_sum = 0.0;
      if (page.huge->nonzero_subpages != 0) {
        for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
          uint32_t& c = page.huge->subpage_count[j];
          const int sp_prev = AccessHistogram::BinOf(UnitHotness(c));
          const int sp_shifted = sp_prev > 0 ? sp_prev - 1 : 0;
          const bool was_nonzero = c != 0;
          c >>= 1;
          if (was_nonzero && c == 0) {
            --page.huge->nonzero_subpages;
          }
          const uint64_t h = UnitHotness(c);
          const int sp_actual = AccessHistogram::BinOf(h);
          if (sp_actual != sp_shifted) {
            base_hist_.Move(sp_shifted, sp_actual, 1);
          }
          if (h >= base_hot_floor && h > 0) {
            ++hot_subs;
            h2_sum += static_cast<double>(h) * static_cast<double>(h);
          }
        }
      }
      if (count > 0) {
        hp_sample_sum += count;
        ++hp_count;
      }
      // THP-Shrinker baseline: queue mostly-zero huge pages for splitting on
      // bloat alone (paper §7's contrast to skew-based splitting).
      if (config_.thp_shrinker && !page.split_queued &&
          page.huge->written.count() <= config_.shrinker_max_written) {
        page.split_queued = true;
        split_queue_.Push(page.ref(index));
      }
      if (hot_subs > 0 && hot_subs < kSubpagesPerHuge) {
        const double skew =
            h2_sum / (static_cast<double>(hot_subs) * static_cast<double>(hot_subs));
        int bucket = skew <= 1.0 ? 0 : static_cast<int>(std::log2(skew));
        bucket = std::clamp(bucket, 0, kSkewBuckets - 1);
        skew_buckets_[bucket].push_back(page.ref(index));
      }
    } else {
      if (actual_bin != shifted_bin) {
        base_hist_.Move(shifted_bin, actual_bin, 1);
      }
      if (config_.enable_collapse && actual_bin >= thresholds_.hot) {
        ++hot_base_runs[HugeBaseVpn(page.base_vpn)];
      }
    }

    // Pages that cooled below the hot threshold while in the fast tier become
    // demotion candidates (paper §4.2.3).
    if (hot.tier[index] == TierId::kFast && page.histogram_bin < thresholds_.hot &&
        !page.in_demotion_list) {
      page.in_demotion_list = true;
      demotion_list_.Push(page.ref(index));
    }
  });

  if (hp_count > 0) {
    avg_samples_per_hp_ = static_cast<double>(hp_sample_sum) /
                          static_cast<double>(hp_count);
  }
  ctx.ChargeDaemon(DaemonKind::kMigrator, scanned * config_.cool_scan_cost_per_page_ns);

  // Thresholds are refreshed against the shifted histogram (paper §4.2.2).
  AdaptThresholds(ctx);

  if (config_.enable_collapse) {
    std::vector<Vpn> candidates;
    for (const auto& [vpn, count] : hot_base_runs) {
      if (count == kSubpagesPerHuge) {
        candidates.push_back(vpn);
      }
    }
    TryCollapse(ctx, candidates);
  }
}

void MemtisPolicy::EstimateSplitBenefit(PolicyContext& ctx) {
  if (win_samples_ == 0) {
    return;
  }
  ++stats_.benefit_estimations;
  const double rhr = static_cast<double>(win_fast_hits_) /
                     static_cast<double>(win_samples_);
  const double ehr = static_cast<double>(win_base_hot_hits_) /
                     static_cast<double>(win_samples_);
  stats_.last_rhr = rhr;
  stats_.last_ehr = ehr;
  rhr_stat_.Add(rhr);
  ehr_stat_.Add(ehr);

  // Split only on long-term, stable trends (paper §4.3.1): at least one
  // cooling must have happened and the benefit gap must persist across two
  // consecutive estimation windows.
  if (ehr - rhr >= config_.split_benefit_gate && cool_epoch_ >= 1) {
    ++consecutive_gap_windows_;
  } else {
    consecutive_gap_windows_ = 0;
  }
  if (config_.enable_split && consecutive_gap_windows_ >= 2) {
    // Eq. 2: Ns = min((eHR - rHR) * (dL / L_fast) * (nr_samples * beta /
    // avg_samples_hp), nr_samples / avg_samples_hp).
    const double l_fast =
        static_cast<double>(ctx.mem.tier(TierId::kFast).latency().load_ns);
    const double l_cap =
        static_cast<double>(ctx.mem.tier(TierId::kCapacity).latency().load_ns);
    const double delta_l = l_cap - l_fast;
    const double distinct_hp =
        static_cast<double>(win_samples_) / std::max(1.0, avg_samples_per_hp_);
    const double ns = std::min(
        (ehr - rhr) * (delta_l / l_fast) * distinct_hp * config_.beta, distinct_hp);
    if (ns >= 1.0) {
      ++stats_.split_rounds_triggered;
      SelectSplitCandidates(ctx, static_cast<uint64_t>(ns));
    }
  }

  win_samples_ = 0;
  win_fast_hits_ = 0;
  win_base_hot_hits_ = 0;
}

void MemtisPolicy::SelectSplitCandidates(PolicyContext& ctx, uint64_t how_many) {
  // Top-Ns most skewed huge pages from the buckets built at the last cooling
  // scan (paper §4.3.2).
  uint64_t chosen = 0;
  for (int b = kSkewBuckets - 1; b >= 0 && chosen < how_many; --b) {
    auto& bucket = skew_buckets_[b];
    while (!bucket.empty() && chosen < how_many) {
      const PageRef ref = bucket.back();
      bucket.pop_back();
      PageInfo* page = ctx.mem.Deref(ref);
      if (page == nullptr || page->kind() != PageKind::kHuge || page->split_queued) {
        continue;
      }
      page->split_queued = true;
      split_queue_.Push(ref);
      ++chosen;
    }
  }
}

void MemtisPolicy::ProcessSplitQueue(PolicyContext& ctx) {
  uint64_t done = 0;
  while (!split_queue_.empty() && done < config_.max_splits_per_wakeup) {
    const PageRef ref = split_queue_.Pop();
    PageInfo* page = ctx.mem.Deref(ref);
    if (page == nullptr || page->kind() != PageKind::kHuge) {
      continue;
    }
    page->split_queued = false;

    // Snapshot subpage hotness before the huge PageInfo dies.
    const std::array<uint32_t, kSubpagesPerHuge> counts = page->huge->subpage_count;
    const Vpn base_vpn = page->base_vpn;
    const int hot_bin = base_hot_bin_;

    AccountPageRemoved(ctx, *page);
    const PageIndex index = ctx.mem.IndexOf(*page);
    const uint64_t created = ctx.mem.SplitHugePage(index, [&](uint32_t j) {
      // Hot subpages go to the fast tier, cold ones to the capacity tier
      // (paper §4.3.3); AllocFrame falls back if the preferred tier is full.
      return AccessHistogram::BinOf(UnitHotness(counts[j])) >= hot_bin
                 ? TierId::kFast
                 : TierId::kCapacity;
    });

    // Register the surviving subpages as base pages.
    uint64_t to_fast = 0;
    for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
      const PageIndex child = ctx.mem.Lookup(base_vpn + j);
      if (child == kInvalidPage) {
        continue;  // all-zero subpage was freed
      }
      PageInfo& cp = ctx.mem.page(child);
      cp.cooling_epoch = cool_epoch_;
      AccountPageAdded(ctx, cp);
      if (cp.tier() == TierId::kFast) {
        ++to_fast;
      }
    }
    ctx.ChargeDaemon(DaemonKind::kMigrator,
                     ctx.costs.split_ns + created * ctx.costs.migrate_base_ns / 4);
    ctx.ChargeApp(ctx.costs.shootdown_app_ns);
    ++stats_.splits_performed;
    stats_.split_subpages_to_fast += to_fast;
    ++done;
  }
}

void MemtisPolicy::TryCollapse(PolicyContext& ctx, const std::vector<Vpn>& candidates) {
  for (const Vpn vpn : candidates) {
    // All 512 base pages must be live, hot, and in the same tier.
    const PageIndex first = ctx.mem.Lookup(vpn);
    if (first == kInvalidPage) {
      continue;
    }
    const TierId tier = ctx.mem.page(first).tier();
    bool eligible = true;
    for (uint64_t j = 0; j < kSubpagesPerHuge && eligible; ++j) {
      const PageIndex index = ctx.mem.Lookup(vpn + j);
      eligible = index != kInvalidPage &&
                 ctx.mem.page(index).kind() == PageKind::kBase &&
                 ctx.mem.page(index).tier() == tier &&
                 ctx.mem.page(index).histogram_bin >= thresholds_.hot;
    }
    if (!eligible) {
      continue;
    }
    for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
      AccountPageRemoved(ctx, ctx.mem.page(ctx.mem.Lookup(vpn + j)));
    }
    if (!ctx.mem.CollapseToHuge(vpn, tier)) {
      // No huge frame: re-register the base pages and move on.
      for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
        AccountPageAdded(ctx, ctx.mem.page(ctx.mem.Lookup(vpn + j)));
      }
      continue;
    }
    PageInfo& hp = ctx.mem.page(ctx.mem.Lookup(vpn));
    hp.cooling_epoch = cool_epoch_;
    AccountPageAdded(ctx, hp);
    ctx.ChargeDaemon(DaemonKind::kMigrator, ctx.costs.collapse_ns);
    ctx.ChargeApp(ctx.costs.shootdown_app_ns);
    ++stats_.collapses_performed;
  }
}

void MemtisPolicy::Tick(PolicyContext& ctx) {
  if (config_.hybrid_scan && ctx.now_ns >= next_hybrid_scan_ns_) {
    next_hybrid_scan_ns_ = ctx.now_ns + config_.hybrid_scan_period_ns;
    HybridScan(ctx);
  }
  if (ctx.now_ns < next_migrate_ns_) {
    return;
  }
  next_migrate_ns_ = ctx.now_ns + config_.migrate_period_ns;
  RunMigration(ctx);
}

void MemtisPolicy::HybridScan(PolicyContext& ctx) {
  // Extension per paper §8: a periodic reference-bit scan supplements PEBS
  // where sampling is blind — pages with no samples at all. Never-referenced
  // fast-tier pages are certainly cold (queue for demotion); referenced but
  // never-sampled pages get a one-count hotness floor so they rank above the
  // truly idle.
  const uint64_t cost = hybrid_scanner_.Scan(
      ctx.mem, [&](PageIndex index, PageInfo& page, bool referenced) {
        if (page.access_count() != 0) {
          return;  // the sampler already sees this page
        }
        if (referenced) {
          ++page.access_count();
          const int old_bin = page.histogram_bin;
          const int bin = AccessHistogram::BinOf(page.hotness());
          if (bin != old_bin) {
            hist_.Move(old_bin, bin, page.size_pages());
            TenantHist(page).Move(old_bin, bin, page.size_pages());
            if (page.kind() == PageKind::kBase) {
              base_hist_.Move(old_bin, bin, 1);
            }
            page.histogram_bin = static_cast<uint8_t>(bin);
          }
        } else if (page.tier() == TierId::kFast && !page.in_demotion_list) {
          page.in_demotion_list = true;
          demotion_list_.Push(page.ref(index));
        }
      });
  ctx.ChargeDaemon(DaemonKind::kScanner, cost);
}

void MemtisPolicy::RunMigration(PolicyContext& ctx) {
  // --- Promotion (capacity-tier kmigrated) ----------------------------------
  size_t budget = promotion_list_.size();
  while (budget-- > 0 && !promotion_list_.empty()) {
    const PageRef ref = promotion_list_.Pop();
    PageInfo* page = ctx.mem.Deref(ref);
    if (page == nullptr) {
      continue;
    }
    page->in_promotion_list = false;
    if (page->tier() != TierId::kCapacity || page->histogram_bin < thresholds_.hot) {
      continue;  // migrated or cooled off meanwhile
    }
    const uint64_t need = page->size_pages();
    if (FastFreeFrames(ctx) < need) {
      DemoteForSpace(ctx, need);
    }
    if (FastFreeFrames(ctx) >= need) {
      MigrateBackground(ctx, ctx.mem.IndexOf(*page), TierId::kFast);
    } else if (config_.exchange_when_full &&
               TryExchangePromotion(ctx, ctx.mem.IndexOf(*page))) {
      // Promoted by direct exchange with a cold fast page: no free frame
      // needed, so the round keeps draining instead of stalling.
    } else {
      // Fast tier is genuinely full of hot/warm pages; try again later.
      page->in_promotion_list = true;
      promotion_list_.Push(ref);
      break;
    }
  }

  // --- Free-space maintenance (fast-tier kmigrated) --------------------------
  const uint64_t target_free = static_cast<uint64_t>(
      static_cast<double>(FastTotalFrames(ctx)) * config_.free_space_target);
  if (FastFreeFrames(ctx) < target_free) {
    DemoteForSpace(ctx, target_free);
  }

  // --- Page-size conversion ---------------------------------------------------
  if (config_.enable_split || config_.thp_shrinker) {
    ProcessSplitQueue(ctx);
  }
}

bool MemtisPolicy::TryExchangePromotion(PolicyContext& ctx, PageIndex hot) {
  const PageInfo& page = ctx.mem.page(hot);
  const PageIndex victim = FindExchangeVictim(
      ctx, hot, page.kind(), &exchange_cursor_,
      [&](const PageInfo& cand) { return IsColdBin(cand.histogram_bin); });
  if (victim == kInvalidPage) {
    return false;
  }
  // The victim may still sit in the demotion list; once it lands on the
  // capacity tier the list drain drops it (tier check) like any page a
  // migration moved out from under the list.
  return ExchangeBackground(ctx, hot, victim);
}

void MemtisPolicy::DemoteForSpace(PolicyContext& ctx, uint64_t target_free_frames) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    // Drain the demotion list, demoting cold pages first and warm pages only
    // if cold demotions were not enough (paper §4.2.3).
    std::vector<PageRef> warm;
    size_t budget = demotion_list_.size();
    while (budget-- > 0 && !demotion_list_.empty() &&
           FastFreeFrames(ctx) < target_free_frames) {
      const PageRef ref = demotion_list_.Pop();
      PageInfo* page = ctx.mem.Deref(ref);
      if (page == nullptr) {
        continue;
      }
      if (page->tier() != TierId::kFast || page->histogram_bin >= thresholds_.hot) {
        page->in_demotion_list = false;  // promoted or re-heated: drop
        continue;
      }
      if (!IsColdBin(page->histogram_bin)) {
        warm.push_back(ref);  // keep warm pages as a last resort
        continue;
      }
      if (!MigrateBackground(ctx, ctx.mem.IndexOf(*page), TierId::kCapacity)) {
        demotion_list_.Push(ref);  // out of migration bandwidth: retry later
        break;
      }
      page->in_demotion_list = false;
    }
    for (const PageRef ref : warm) {
      if (FastFreeFrames(ctx) >= target_free_frames) {
        demotion_list_.Push(ref);  // still a candidate for next time
        continue;
      }
      PageInfo* page = ctx.mem.Deref(ref);
      if (page == nullptr) {
        continue;
      }
      if (page->tier() != TierId::kFast || page->histogram_bin >= thresholds_.hot) {
        page->in_demotion_list = false;
        continue;
      }
      if (!MigrateBackground(ctx, ctx.mem.IndexOf(*page), TierId::kCapacity)) {
        demotion_list_.Push(ref);
        continue;
      }
      page->in_demotion_list = false;
    }
    if (FastFreeFrames(ctx) >= target_free_frames || attempt == 1) {
      return;
    }
    RefillDemotionList(ctx);
  }
}

void MemtisPolicy::RefillDemotionList(PolicyContext& ctx) {
  const PageIndex slots = ctx.mem.page_slots();
  PageIndex visited = 0;
  uint64_t found = 0;
  while (visited < slots && found < 4096) {
    if (demotion_refill_cursor_ >= slots) {
      demotion_refill_cursor_ = 0;
    }
    PageInfo* page = ctx.mem.LivePageAt(demotion_refill_cursor_);
    const PageIndex index = demotion_refill_cursor_;
    ++demotion_refill_cursor_;
    ++visited;
    if (page == nullptr || page->tier() != TierId::kFast || page->in_demotion_list ||
        page->histogram_bin >= thresholds_.hot) {
      continue;
    }
    page->in_demotion_list = true;
    demotion_list_.Push(page->ref(index));
    found += page->size_pages();
  }
}

bool MemtisPolicy::ValidateHistograms(MemorySystem& mem, std::string* error) const {
  AccessHistogram expected_hist;
  AccessHistogram expected_base;
  PageIndex bad_bin_page = kInvalidPage;
  mem.ForEachLivePage([&](PageIndex index, PageInfo& page) {
    const int bin = AccessHistogram::BinOf(page.hotness());
    if (bin != page.histogram_bin && bad_bin_page == kInvalidPage) {
      bad_bin_page = index;
    }
    expected_hist.Add(bin, page.size_pages());
    if (page.kind() == PageKind::kHuge) {
      for (uint32_t c : page.huge->subpage_count) {
        expected_base.Add(AccessHistogram::BinOf(UnitHotness(c)), 1);
      }
    } else {
      expected_base.Add(bin, 1);
    }
  });
  for (int b = 0; b < AccessHistogram::kBins; ++b) {
    if (expected_hist.count(b) != hist_.count(b)) {
      if (error != nullptr) {
        *error = "page histogram bin " + std::to_string(b) + ": tracked " +
                 std::to_string(hist_.count(b)) + " units, recomputed " +
                 std::to_string(expected_hist.count(b));
      }
      return false;
    }
    if (expected_base.count(b) != base_hist_.count(b)) {
      if (error != nullptr) {
        *error = "base histogram bin " + std::to_string(b) + ": tracked " +
                 std::to_string(base_hist_.count(b)) + " units, recomputed " +
                 std::to_string(expected_base.count(b));
      }
      return false;
    }
  }
  if (bad_bin_page != kInvalidPage) {
    if (error != nullptr) {
      *error = "page " + std::to_string(bad_bin_page) +
               " caches histogram_bin " +
               std::to_string(mem.page(bad_bin_page).histogram_bin) +
               " but its hotness maps to bin " +
               std::to_string(
                   AccessHistogram::BinOf(mem.page(bad_bin_page).hotness()));
    }
    return false;
  }
  return true;
}

ClassifiedSizes MemtisPolicy::Classify(PolicyContext& ctx) {
  (void)ctx;
  ClassifiedSizes sizes;
  for (int b = 0; b < AccessHistogram::kBins; ++b) {
    const uint64_t bytes = hist_.count(b) * kPageSize;
    if (b >= thresholds_.hot) {
      sizes.hot_bytes += bytes;
    } else if (b < thresholds_.cold) {
      sizes.cold_bytes += bytes;
    } else {
      sizes.warm_bytes += bytes;
    }
  }
  return sizes;
}

namespace {
constexpr uint32_t kSectionMemtis = 0x4d544953u;  // "MTIS"
}  // namespace

void MemtisPolicy::SaveState(StateWriter& w) const {
  w.Section(kSectionMemtis);
  sampler_.SaveState(w);
  hist_.SaveState(w);
  base_hist_.SaveState(w);
  w.U64(tenant_hists_.size());
  for (const AccessHistogram& h : tenant_hists_) {
    h.SaveState(w);
  }
  w.I64(thresholds_.hot);
  w.I64(thresholds_.warm);
  w.I64(thresholds_.cold);
  w.I64(base_hot_bin_);
  w.U32(cool_epoch_);
  w.U64(samples_processed_);
  w.U64(samples_since_adapt_);
  w.U64(samples_since_cool_);
  w.U64(samples_since_estimate_);
  w.U64(win_samples_);
  w.U64(win_fast_hits_);
  w.U64(win_base_hot_hits_);
  w.F64(avg_samples_per_hp_);
  w.U32(consecutive_gap_windows_);
  promotion_list_.SaveState(w);
  demotion_list_.SaveState(w);
  split_queue_.SaveState(w);
  w.U64(demotion_refill_cursor_);
  w.U64(exchange_cursor_);
  for (const auto& bucket : skew_buckets_) {
    w.U64(bucket.size());
    for (const PageRef& ref : bucket) {
      w.U64(ref.index);
      w.U64(ref.generation);
    }
  }
  w.U64(next_migrate_ns_);
  hybrid_scanner_.SaveState(w);
  w.U64(next_hybrid_scan_ns_);
  ehr_stat_.SaveState(w);
  rhr_stat_.SaveState(w);
  w.U64(stats_.coolings);
  w.U64(stats_.threshold_adaptations);
  w.U64(stats_.benefit_estimations);
  w.U64(stats_.split_rounds_triggered);
  w.U64(stats_.splits_performed);
  w.U64(stats_.split_subpages_to_fast);
  w.U64(stats_.collapses_performed);
  w.F64(stats_.last_ehr);
  w.F64(stats_.last_rhr);
}

void MemtisPolicy::LoadState(StateReader& r) {
  r.Section(kSectionMemtis);
  sampler_.LoadState(r);
  hist_.LoadState(r);
  base_hist_.LoadState(r);
  const uint64_t num_tenant_hists = r.U64();
  if (num_tenant_hists > 65536) {
    r.Fail();
    return;
  }
  tenant_hists_.assign(num_tenant_hists, AccessHistogram{});
  for (AccessHistogram& h : tenant_hists_) {
    h.LoadState(r);
  }
  thresholds_.hot = static_cast<int>(r.I64());
  thresholds_.warm = static_cast<int>(r.I64());
  thresholds_.cold = static_cast<int>(r.I64());
  base_hot_bin_ = static_cast<int>(r.I64());
  cool_epoch_ = r.U32();
  samples_processed_ = r.U64();
  samples_since_adapt_ = r.U64();
  samples_since_cool_ = r.U64();
  samples_since_estimate_ = r.U64();
  win_samples_ = r.U64();
  win_fast_hits_ = r.U64();
  win_base_hot_hits_ = r.U64();
  avg_samples_per_hp_ = r.F64();
  consecutive_gap_windows_ = r.U32();
  promotion_list_.LoadState(r);
  demotion_list_.LoadState(r);
  split_queue_.LoadState(r);
  demotion_refill_cursor_ = static_cast<PageIndex>(r.U64());
  exchange_cursor_ = static_cast<PageIndex>(r.U64());
  for (auto& bucket : skew_buckets_) {
    const uint64_t n = r.U64();
    if (n > (1ull << 32)) {
      r.Fail();
      return;
    }
    bucket.clear();
    bucket.reserve(n);
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
      PageRef ref;
      ref.index = static_cast<PageIndex>(r.U64());
      ref.generation = static_cast<uint32_t>(r.U64());
      bucket.push_back(ref);
    }
  }
  next_migrate_ns_ = r.U64();
  hybrid_scanner_.LoadState(r);
  next_hybrid_scan_ns_ = r.U64();
  ehr_stat_.LoadState(r);
  rhr_stat_.LoadState(r);
  stats_.coolings = r.U64();
  stats_.threshold_adaptations = r.U64();
  stats_.benefit_estimations = r.U64();
  stats_.split_rounds_triggered = r.U64();
  stats_.splits_performed = r.U64();
  stats_.split_subpages_to_fast = r.U64();
  stats_.collapses_performed = r.U64();
  stats_.last_ehr = r.F64();
  stats_.last_rhr = r.F64();
}

}  // namespace memtis
