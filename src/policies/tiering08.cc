#include "src/policies/tiering08.h"

#include <algorithm>

namespace memtis {

void Tiering08Policy::OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                               const Access& access) {
  (void)access;
  page.policy_word0 |= kReferencedBit;  // recency for the demotion clock
  if (!arm_.ConsumeFault(page)) {
    return;
  }
  ctx.ChargeApp(ctx.costs.hint_fault_ns);
  if (page.tier() != TierId::kCapacity) {
    return;
  }
  // Rate-controlled promotion: admit a fraction of faulting pages chosen so
  // the promotion rate tracks the target.
  if (admit_ratio_ < 1.0 && !ctx.rng.NextBool(admit_ratio_)) {
    return;
  }
  if (MigrateCritical(ctx, index, TierId::kFast)) {
    window_promoted_ += page.size_pages();
  }
}

void Tiering08Policy::Tick(PolicyContext& ctx) {
  if (ctx.now_ns >= next_scan_ns_) {
    next_scan_ns_ = ctx.now_ns + params_.scan_period_ns;
    arm_.ArmBatch(ctx);
  }

  // Promotion-rate controller.
  if (ctx.now_ns >= window_start_ns_ + params_.rate_window_ns) {
    window_start_ns_ = ctx.now_ns;
    const double load = static_cast<double>(window_promoted_) /
                        static_cast<double>(params_.target_promotions_per_window);
    window_promoted_ = 0;
    if (load > 1.2) {
      admit_ratio_ = std::max(0.05, admit_ratio_ * 0.7);
    } else if (load < 0.8) {
      admit_ratio_ = std::min(1.0, admit_ratio_ * 1.3);
    }
  }

  // kswapd-style demotion: second-chance clock over fast-tier pages.
  if (!FastBelowWatermark(ctx, params_.low_watermark)) {
    return;
  }
  const uint64_t target_free = static_cast<uint64_t>(
      static_cast<double>(FastTotalFrames(ctx)) * params_.high_watermark);
  const PageIndex slots = ctx.mem.page_slots();
  PageIndex visited = 0;
  // Bound one pass to two laps so a fully-referenced tier still yields pages.
  while (visited < 2 * slots && FastFreeFrames(ctx) < target_free) {
    if (demote_cursor_ >= slots) {
      demote_cursor_ = 0;
    }
    PageInfo* page = ctx.mem.LivePageAt(demote_cursor_);
    const PageIndex index = demote_cursor_;
    ++demote_cursor_;
    ++visited;
    if (page == nullptr || page->tier() != TierId::kFast) {
      continue;
    }
    if ((page->policy_word0 & kReferencedBit) != 0) {
      page->policy_word0 &= ~kReferencedBit;  // second chance
      continue;
    }
    MigrateBackground(ctx, index, TierId::kCapacity);
  }
}

}  // namespace memtis
