#include "src/policies/autotiering.h"

namespace memtis {

void AutoTieringPolicy::TouchHistory(PageInfo& page) const {
  const uint64_t last_epoch = page.policy_word1 >> 32;
  uint32_t history = static_cast<uint32_t>(page.policy_word1);
  const uint64_t elapsed = scan_epoch_ - last_epoch;
  // Lazily shift the history vector by the scan periods that passed, then
  // record this period's access bit.
  if (elapsed >= static_cast<uint64_t>(params_.history_bits)) {
    history = 0;
  } else {
    history <<= elapsed;
    history &= (1u << params_.history_bits) - 1;
  }
  history |= 1u;
  page.policy_word1 = (scan_epoch_ << 32) | history;
}

int AutoTieringPolicy::HistoryScore(const PageInfo& page) const {
  const uint64_t last_epoch = page.policy_word1 >> 32;
  uint32_t history = static_cast<uint32_t>(page.policy_word1);
  const uint64_t elapsed = scan_epoch_ - last_epoch;
  if (elapsed >= static_cast<uint64_t>(params_.history_bits)) {
    return 0;
  }
  history <<= elapsed;
  history &= (1u << params_.history_bits) - 1;
  return std::popcount(history);
}

void AutoTieringPolicy::OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                                 const Access& access) {
  (void)access;
  if (!arm_.ConsumeFault(page)) {
    return;
  }
  ctx.ChargeApp(ctx.costs.hint_fault_ns);
  TouchHistory(page);
  if (page.tier() == TierId::kCapacity &&
      limiter_.Allow(ctx.now_ns, page.size_pages())) {
    if (params_.use_exchange && FastFreeFrames(ctx) < page.size_pages()) {
      // No free fast frame: swap directly with an LFU fast-tier victim
      // (history score <= 1, the same bar the background demoter uses)
      // instead of failing the promotion.
      const PageIndex victim = FindExchangeVictim(
          ctx, index, page.kind(), &exchange_cursor_,
          [&](const PageInfo& cand) { return HistoryScore(cand) <= 1; });
      if (victim != kInvalidPage) {
        ExchangeCritical(ctx, index, victim);
      }
      return;
    }
    // Promote on fault (critical path), static threshold of one.
    MigrateCritical(ctx, index, TierId::kFast);
  }
}

void AutoTieringPolicy::Tick(PolicyContext& ctx) {
  if (ctx.now_ns >= next_scan_ns_) {
    next_scan_ns_ = ctx.now_ns + params_.scan_period_ns;
    ++scan_epoch_;
    arm_.ArmBatch(ctx);
  }

  // Background demotion: keep a reserve of free fast-tier frames by demoting
  // the LFU pages (lowest history score) found by a clock hand.
  if (!FastBelowWatermark(ctx, params_.low_watermark)) {
    return;
  }
  demotion_started_ = true;
  const uint64_t target_free = static_cast<uint64_t>(
      static_cast<double>(FastTotalFrames(ctx)) * params_.high_watermark);
  const PageIndex slots = ctx.mem.page_slots();
  // Two sweeps: demote score-0 pages first, then score<=1 if still short.
  for (int max_score = 0; max_score <= 1 && FastFreeFrames(ctx) < target_free;
       ++max_score) {
    PageIndex visited = 0;
    while (visited < slots && FastFreeFrames(ctx) < target_free) {
      if (demote_cursor_ >= slots) {
        demote_cursor_ = 0;
      }
      PageInfo* page = ctx.mem.LivePageAt(demote_cursor_);
      const PageIndex index = demote_cursor_;
      ++demote_cursor_;
      ++visited;
      if (page == nullptr || page->tier() != TierId::kFast) {
        continue;
      }
      if (HistoryScore(*page) <= max_score) {
        MigrateBackground(ctx, index, TierId::kCapacity);
      }
    }
  }
}

}  // namespace memtis
