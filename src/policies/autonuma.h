// AutoNUMA (Linux automatic NUMA balancing) behavioural model.
//
// Per the paper's Table 1: page-fault-based tracking (hint faults), recency
// metric with a static threshold of one (the most recently touched page is
// hot), promotion in the fault handler (critical path), and no demotion — so
// early allocations can pin the fast tier (paper §6.2.2 notes this helps it
// in XSBench 1:2 and hurts everywhere else).

#ifndef MEMTIS_SIM_SRC_POLICIES_AUTONUMA_H_
#define MEMTIS_SIM_SRC_POLICIES_AUTONUMA_H_

#include "src/policies/policy_util.h"
#include "src/sim/policy.h"
#include "src/snapshot/serializer.h"

namespace memtis {

class AutoNumaPolicy : public TieringPolicy {
 public:
  struct Params {
    uint64_t scan_period_ns = 200'000;  // task_numa_work cadence (scaled)
    uint64_t scan_batch_pages = 64;     // pages armed per scan window
    // NUMA balancing migration rate limit (kernel default: 256 MB/s/node).
    uint64_t rate_limit_pages = 512;
    uint64_t rate_window_ns = 2'000'000;
  };

  AutoNumaPolicy() : AutoNumaPolicy(Params{}) {}
  explicit AutoNumaPolicy(Params params)
      : params_(params),
        arm_(kArmedBit, params.scan_batch_pages),
        limiter_(params.rate_limit_pages, params.rate_window_ns) {}

  std::string_view name() const override { return "autonuma"; }

  void OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                const Access& access) override {
    (void)access;
    if (!arm_.ConsumeFault(page)) {
      return;
    }
    ctx.ChargeApp(ctx.costs.hint_fault_ns);
    if (page.tier() == TierId::kCapacity &&
        limiter_.Allow(ctx.now_ns, page.size_pages())) {
      // Threshold = 1: promote on the first hint fault, in the fault handler.
      MigrateCritical(ctx, index, TierId::kFast);
    }
  }

  void Tick(PolicyContext& ctx) override {
    if (ctx.now_ns < next_scan_ns_) {
      return;
    }
    next_scan_ns_ = ctx.now_ns + params_.scan_period_ns;
    arm_.ArmBatch(ctx);
  }

  bool SupportsCheckpoint() const override { return true; }
  void SaveState(StateWriter& w) const override {
    w.Section(0x414e554du);  // "ANUM"
    arm_.SaveState(w);
    limiter_.SaveState(w);
    w.U64(next_scan_ns_);
  }
  void LoadState(StateReader& r) override {
    r.Section(0x414e554du);
    arm_.LoadState(r);
    limiter_.LoadState(r);
    next_scan_ns_ = r.U64();
  }

 private:
  static constexpr uint64_t kArmedBit = 1;

  Params params_;
  HintFaultArm arm_;
  MigrationRateLimiter limiter_;
  uint64_t next_scan_ns_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_POLICIES_AUTONUMA_H_
