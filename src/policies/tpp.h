// TPP — Transparent Page Placement for CXL memory (Maruf et al., ASPLOS '23).
//
// Per the paper's Table 1: hint-fault tracking on capacity-tier pages,
// recency+frequency promotion with a static threshold of two (a page must be
// in the active LRU — i.e. referenced twice — before its fault promotes it,
// in the fault handler), recency-based demotion by a kswapd-style reclaimer
// that maintains free fast-tier headroom so new allocations land on the fast
// tier. Coarse 2Q classification can mark more pages hot than the fast tier
// holds (paper §6.2.3).

#ifndef MEMTIS_SIM_SRC_POLICIES_TPP_H_
#define MEMTIS_SIM_SRC_POLICIES_TPP_H_

#include "src/policies/policy_util.h"
#include "src/sim/policy.h"

namespace memtis {

class TppPolicy : public TieringPolicy {
 public:
  struct Params {
    uint64_t scan_period_ns = 200'000;
    uint64_t scan_batch_pages = 64;
    double low_watermark = 0.03;   // demotion trigger
    double high_watermark = 0.06;  // demotion target (allocation headroom)
    // Faults decay: a fault counter older than this is reset (LRU aging).
    // Must span multiple hint-fault sweeps of the footprint, or the 2-fault
    // promotion threshold can never be met.
    uint64_t fault_ttl_ns = 50'000'000;
    uint64_t rate_limit_pages = 512;  // fault-path promotion rate limit
    uint64_t rate_window_ns = 2'000'000;
  };

  TppPolicy() : TppPolicy(Params{}) {}
  explicit TppPolicy(Params params)
      : params_(params),
        arm_(kArmedBit, params.scan_batch_pages),
        limiter_(params.rate_limit_pages, params.rate_window_ns) {}

  std::string_view name() const override { return "tpp"; }

  void OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                const Access& access) override;

  void Tick(PolicyContext& ctx) override;

  ClassifiedSizes Classify(PolicyContext& ctx) override;

 private:
  static constexpr uint64_t kArmedBit = 1;
  static constexpr uint64_t kReferencedBit = 2;

  Params params_;
  HintFaultArm arm_;
  MigrationRateLimiter limiter_;
  uint64_t next_scan_ns_ = 0;
  PageIndex demote_cursor_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_POLICIES_TPP_H_
