// HeMem (Raybuck et al., SOSP '21) behavioural model.
//
// Per the paper's Table 1 and §2.2/§6.2.9: PEBS-based sampling with *static*
// thresholds — a page whose sample count reaches `hot_threshold` is hot and
// promoted in the background; when any page's count reaches the cooling
// threshold, every page's count is halved. Promotion and demotion are paused
// while the identified hot set exceeds the fast tier (anti-thrashing, paper
// §7). Its sampling thread spins on the PEBS buffers, burning ~a full core
// (paper §6.2.1), and small allocations always land in the fast tier
// (over-allocation, paper Table 3).

#ifndef MEMTIS_SIM_SRC_POLICIES_HEMEM_H_
#define MEMTIS_SIM_SRC_POLICIES_HEMEM_H_

#include "src/access/pebs_sampler.h"
#include "src/mem/page_list.h"
#include "src/policies/policy_util.h"
#include "src/sim/policy.h"
#include "src/snapshot/serializer.h"

namespace memtis {

class HeMemPolicy : public TieringPolicy {
 public:
  struct Params {
    uint64_t hot_threshold = 8;      // static hot threshold (sample count)
    uint64_t cool_threshold = 18;    // any page reaching this triggers cooling
    uint64_t migrate_period_ns = 500'000;
    uint64_t small_alloc_bytes = 4ull << 20;  // always placed in fast tier
    // The sampling thread spins; fraction of one core it burns.
    double spin_core_share = 1.0;
    uint64_t cool_scan_cost_per_page_ns = 25;
    // Opt-in direct page exchange ("hemem-exchange" in the registry): when a
    // promotion finds no free fast frame and nothing cold will demote, swap
    // the hot page with a cold fast victim instead of stalling the round.
    bool use_exchange = false;
    PebsConfig pebs = DefaultPebs();
  };

  static PebsConfig DefaultPebs() {
    PebsConfig cfg;
    // HeMem uses fixed periods (no CPU-budget adaptation).
    cfg.load_period = 19;
    cfg.store_period = 521;
    cfg.cpu_limit = 1.0;  // controller effectively disabled
    return cfg;
  }

  HeMemPolicy() : HeMemPolicy(Params{}) {}
  explicit HeMemPolicy(Params params) : params_(params), sampler_(params.pebs) {}

  std::string_view name() const override { return "hemem"; }

  void Init(PolicyContext& ctx) override { sampler_.AttachFaults(ctx.faults); }

  void OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                const Access& access) override;

  // Batched replay: like MEMTIS, OnAccess is gated on the PEBS countdown, so
  // non-sampling accesses absorb as one countdown subtraction.
  uint64_t RunAbsorbLimit(PolicyContext& ctx, bool is_write) override {
    (void)ctx;
    return sampler_.EventsUntilSample(is_write ? SampleType::kStore
                                               : SampleType::kLlcLoadMiss);
  }
  void AbsorbRun(PolicyContext& ctx, PageIndex index, PageInfo& page,
                 const Access& access, uint64_t n) override {
    (void)ctx;
    (void)index;
    (void)page;
    sampler_.AbsorbEvents(
        access.is_write ? SampleType::kStore : SampleType::kLlcLoadMiss, n);
  }

  void OnPageFreed(PolicyContext& ctx, PageIndex index, PageInfo& page) override;

  void Tick(PolicyContext& ctx) override;

  AllocOptions PlacementFor(PolicyContext& ctx, uint64_t bytes, bool use_thp) override;

  ClassifiedSizes Classify(PolicyContext& ctx) override;

  uint64_t hot_set_bytes() const { return hot_bytes_; }
  // Fast-tier bytes consumed by small allocations (paper Table 3).
  uint64_t over_allocated_bytes() const { return over_allocated_bytes_; }

  // Checkpointing. Init() (sampler fault re-attach) must run before LoadState
  // on the restore path; per-page sample counts live in the page policy words
  // serialized with the memory system.
  bool SupportsCheckpoint() const override { return true; }
  void SaveState(StateWriter& w) const override {
    w.Section(0x48454d4du);  // "HEMM"
    sampler_.SaveState(w);
    promote_list_.SaveState(w);
    w.U64(hot_bytes_);
    w.U64(over_allocated_bytes_);
    w.U64(next_migrate_ns_);
    w.U64(last_spin_charge_ns_);
    w.U64(demote_cursor_);
    w.U64(exchange_cursor_);
  }
  void LoadState(StateReader& r) override {
    r.Section(0x48454d4du);
    sampler_.LoadState(r);
    promote_list_.LoadState(r);
    hot_bytes_ = r.U64();
    over_allocated_bytes_ = r.U64();
    next_migrate_ns_ = r.U64();
    last_spin_charge_ns_ = r.U64();
    demote_cursor_ = static_cast<PageIndex>(r.U64());
    exchange_cursor_ = static_cast<PageIndex>(r.U64());
  }

 private:
  void Cool(PolicyContext& ctx);

  Params params_;
  PebsSampler sampler_;
  PageList promote_list_;
  uint64_t hot_bytes_ = 0;  // maintained incrementally on threshold crossings
  uint64_t over_allocated_bytes_ = 0;
  uint64_t next_migrate_ns_ = 0;
  uint64_t last_spin_charge_ns_ = 0;
  PageIndex demote_cursor_ = 0;
  PageIndex exchange_cursor_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_POLICIES_HEMEM_H_
