#include "src/policies/multiclock.h"

#include <vector>

namespace memtis {

void MultiClockPolicy::Tick(PolicyContext& ctx) {
  if (ctx.now_ns < next_scan_ns_) {
    return;
  }
  next_scan_ns_ = ctx.now_ns + params_.scan_period_ns;

  // policy_word1 = consecutive referenced-scan count.
  std::vector<PageIndex> promote;
  std::vector<PageIndex> demote;
  const uint64_t scan_cost = scanner_.Scan(
      ctx.mem, [&](PageIndex index, PageInfo& page, bool referenced) {
        if (referenced) {
          ++page.policy_word1;
        } else {
          page.policy_word1 = 0;
        }
        if (page.tier() == TierId::kCapacity && page.policy_word1 >= 2) {
          promote.push_back(index);  // static threshold of two
        } else if (page.tier() == TierId::kFast && page.policy_word1 == 0) {
          demote.push_back(index);
        }
      });
  ctx.ChargeDaemon(DaemonKind::kScanner, scan_cost);

  // Demote below-watermark first so promotions have room.
  if (FastBelowWatermark(ctx, params_.low_watermark)) {
    const uint64_t target_free = static_cast<uint64_t>(
        static_cast<double>(FastTotalFrames(ctx)) * params_.high_watermark);
    for (const PageIndex index : demote) {
      if (FastFreeFrames(ctx) >= target_free) {
        break;
      }
      PageInfo& page = ctx.mem.page(index);
      if (page.live && page.tier() == TierId::kFast) {
        MigrateBackground(ctx, index, TierId::kCapacity);
      }
    }
  }
  size_t victim = 0;
  for (const PageIndex index : promote) {
    PageInfo& page = ctx.mem.page(index);
    if (!page.live || page.tier() != TierId::kCapacity) {
      continue;
    }
    while (FastFreeFrames(ctx) < page.size_pages() && victim < demote.size()) {
      PageInfo& v = ctx.mem.page(demote[victim]);
      const PageIndex vindex = demote[victim];
      ++victim;
      if (v.live && v.tier() == TierId::kFast) {
        MigrateBackground(ctx, vindex, TierId::kCapacity);
      }
    }
    if (FastFreeFrames(ctx) >= page.size_pages()) {
      MigrateBackground(ctx, index, TierId::kFast);
    }
  }
}

}  // namespace memtis
