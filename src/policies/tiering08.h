// Tiering-0.8 (Verma, kernel tiering tree) behavioural model.
//
// Per the paper's Table 1: hint-fault (recency) tracking for promotion and
// recency for demotion, with the hotness criterion adapted by promotion rate:
// the kernel throttles promotions so migration traffic stays near a target
// rate. Promotion happens in the fault handler (critical path); a
// kswapd-style daemon demotes not-recently-used pages to keep free fast-tier
// headroom, which new allocations may use (paper §6.2.6).

#ifndef MEMTIS_SIM_SRC_POLICIES_TIERING08_H_
#define MEMTIS_SIM_SRC_POLICIES_TIERING08_H_

#include "src/policies/policy_util.h"
#include "src/sim/policy.h"

namespace memtis {

class Tiering08Policy : public TieringPolicy {
 public:
  struct Params {
    uint64_t scan_period_ns = 200'000;
    uint64_t scan_batch_pages = 64;
    double low_watermark = 0.02;
    double high_watermark = 0.05;
    // Promotion-rate control: target promoted 4 KiB pages per rate window.
    uint64_t rate_window_ns = 2'000'000;
    uint64_t target_promotions_per_window = 512;
  };

  Tiering08Policy() : Tiering08Policy(Params{}) {}
  explicit Tiering08Policy(Params params)
      : params_(params), arm_(kArmedBit, params.scan_batch_pages) {}

  std::string_view name() const override { return "tiering-0.8"; }

  void OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                const Access& access) override;

  void Tick(PolicyContext& ctx) override;

 private:
  static constexpr uint64_t kArmedBit = 1;
  static constexpr uint64_t kReferencedBit = 2;

  Params params_;
  HintFaultArm arm_;
  uint64_t next_scan_ns_ = 0;
  uint64_t window_start_ns_ = 0;
  uint64_t window_promoted_ = 0;
  // Adaptive admission: fraction of eligible faults actually promoted.
  double admit_ratio_ = 1.0;
  PageIndex demote_cursor_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_POLICIES_TIERING08_H_
