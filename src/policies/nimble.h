// Nimble Page Management (Yan et al., ASPLOS '19) behavioural model.
//
// Per the paper's Table 1: page-table scanning (reference bits), recency
// metric with a static threshold of one — any page referenced in the last
// scan interval is hot. Hot capacity pages are exchanged with
// not-recently-used fast pages in the background, which generates massive
// migration traffic when the referenced set exceeds the fast tier (paper
// §6.2.4: 56x more migration than MEMTIS on Silo).

#ifndef MEMTIS_SIM_SRC_POLICIES_NIMBLE_H_
#define MEMTIS_SIM_SRC_POLICIES_NIMBLE_H_

#include <vector>

#include "src/access/pt_scanner.h"
#include "src/policies/policy_util.h"
#include "src/sim/policy.h"

namespace memtis {

class NimblePolicy : public TieringPolicy {
 public:
  struct Params {
    uint64_t scan_period_ns = 500'000;  // full PT scan cadence (scaled)
    // Cap on exchanged 4 KiB pages per scan round, modelling the multi-
    // threaded exchange bandwidth.
    uint64_t exchange_budget_pages = 16384;
  };

  NimblePolicy() : NimblePolicy(Params{}) {}
  explicit NimblePolicy(Params params) : params_(params) {}

  std::string_view name() const override { return "nimble"; }

  void OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                const Access& access) override {
    (void)ctx;
    (void)page;
    (void)access;
    scanner_.MarkAccessed(index);
  }

  void Tick(PolicyContext& ctx) override;

  ClassifiedSizes Classify(PolicyContext& ctx) override;

 private:
  Params params_;
  PtScanner scanner_;
  uint64_t next_scan_ns_ = 0;
  uint64_t last_hot_bytes_ = 0;
  uint64_t last_cold_bytes_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_POLICIES_NIMBLE_H_
