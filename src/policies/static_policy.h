// StaticPolicy: no tiering at all — everything lives on one tier.
//
// all-capacity + THP is the paper's normalisation baseline ("all-NVM");
// all-fast gives the all-DRAM reference lines of Fig. 7/8.

#ifndef MEMTIS_SIM_SRC_POLICIES_STATIC_POLICY_H_
#define MEMTIS_SIM_SRC_POLICIES_STATIC_POLICY_H_

#include "src/sim/policy.h"
#include "src/snapshot/serializer.h"

namespace memtis {

class StaticPolicy : public TieringPolicy {
 public:
  explicit StaticPolicy(TierId target, bool use_thp = true)
      : target_(target), use_thp_(use_thp) {}

  std::string_view name() const override {
    return target_ == TierId::kFast ? "all-fast" : "all-capacity";
  }

  void OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                const Access& access) override {
    (void)ctx;
    (void)index;
    (void)page;
    (void)access;
  }

  AllocOptions PlacementFor(PolicyContext& ctx, uint64_t bytes, bool use_thp) override {
    (void)ctx;
    (void)bytes;
    return AllocOptions{.preferred = target_,
                        .allow_other_tier = true,
                        .use_thp = use_thp && use_thp_};
  }

  // Stateless: the section marker alone keeps the snapshot layout checked.
  bool SupportsCheckpoint() const override { return true; }
  void SaveState(StateWriter& w) const override { w.Section(0x53544154u); }
  void LoadState(StateReader& r) override { r.Section(0x53544154u); }

 private:
  TierId target_;
  bool use_thp_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_POLICIES_STATIC_POLICY_H_
