// Shared mechanics for tiering policies: migration cost charging, hint-fault
// arming, and watermark math.

#ifndef MEMTIS_SIM_SRC_POLICIES_POLICY_UTIL_H_
#define MEMTIS_SIM_SRC_POLICIES_POLICY_UTIL_H_

#include <cstdint>

#include "src/sim/policy.h"

namespace memtis {

inline uint64_t CopyCost(const CostParams& costs, const PageInfo& page) {
  return page.kind() == PageKind::kHuge ? costs.migrate_huge_ns : costs.migrate_base_ns;
}

// Migration in the page-fault handler: the faulting thread pays for the copy
// and the shootdown (the paper's critical-path migration, §2.2).
inline bool MigrateCritical(PolicyContext& ctx, PageIndex index, TierId dst) {
  PageInfo& page = ctx.mem.page(index);
  const uint64_t cost = CopyCost(ctx.costs, page) + ctx.costs.shootdown_app_ns;
  if (!ctx.mem.Migrate(index, dst)) {
    return false;
  }
  ctx.ChargeApp(cost);
  return true;
}

// Migration by a background daemon. Draws on the shared migration bandwidth
// budget (fails when exhausted — the daemon retries at a later wakeup); the
// copy burns daemon CPU and each moved 4 KiB costs the app a slice of memory
// bandwidth; app threads also see the TLB shootdown IPI.
inline bool MigrateBackground(PolicyContext& ctx, PageIndex index, TierId dst) {
  PageInfo& page = ctx.mem.page(index);
  const uint64_t pages = page.size_pages();
  if (!ctx.migration_budget.Consume(ctx.now_ns, pages)) {
    return false;
  }
  const uint64_t copy = CopyCost(ctx.costs, page);
  if (!ctx.mem.Migrate(index, dst)) {
    return false;
  }
  ctx.ChargeDaemon(DaemonKind::kMigrator, copy);
  ctx.ChargeApp(ctx.costs.shootdown_app_ns +
                pages * ctx.costs.migrate_app_interference_ns);
  return true;
}

inline uint64_t ExchangeCopyCost(const CostParams& costs, const PageInfo& page) {
  return page.kind() == PageKind::kHuge ? costs.exchange_huge_ns : costs.exchange_base_ns;
}

// Direct page exchange in the page-fault handler: the faulting thread pays
// the combined swap-copy plus both shootdowns (two mappings change). Used
// where a critical-path promotion finds the fast tier full — one exchange
// replaces a migrate+evict pair without reserving a free frame.
inline bool ExchangeCritical(PolicyContext& ctx, PageIndex hot, PageIndex cold) {
  const uint64_t cost = ExchangeCopyCost(ctx.costs, ctx.mem.page(hot)) +
                        2 * ctx.costs.shootdown_app_ns;
  if (!ctx.mem.ExchangePages(hot, cold)) {
    return false;
  }
  ctx.ChargeApp(cost);
  return true;
}

// Direct page exchange by a background daemon. Both pages cross the memory
// bus, so the swap draws bandwidth budget for both sides; the daemon burns
// the combined copy and app threads see two shootdown IPIs plus interference
// for all moved data.
inline bool ExchangeBackground(PolicyContext& ctx, PageIndex hot, PageIndex cold) {
  const uint64_t pages = 2 * ctx.mem.page(hot).size_pages();
  if (!ctx.migration_budget.Consume(ctx.now_ns, pages)) {
    return false;
  }
  const uint64_t copy = ExchangeCopyCost(ctx.costs, ctx.mem.page(hot));
  if (!ctx.mem.ExchangePages(hot, cold)) {
    return false;
  }
  ctx.ChargeDaemon(DaemonKind::kMigrator, copy);
  ctx.ChargeApp(2 * ctx.costs.shootdown_app_ns +
                pages * ctx.costs.migrate_app_interference_ns);
  return true;
}

inline uint64_t FastFreeFrames(const PolicyContext& ctx) {
  return ctx.mem.tier(TierId::kFast).free_frames();
}

inline uint64_t FastTotalFrames(const PolicyContext& ctx) {
  return ctx.mem.tier(TierId::kFast).total_frames();
}

// True when the fast tier's free space is below `fraction` of its size.
inline bool FastBelowWatermark(const PolicyContext& ctx, double fraction) {
  return static_cast<double>(FastFreeFrames(ctx)) <
         static_cast<double>(FastTotalFrames(ctx)) * fraction;
}

// Deterministic cursor scan for an exchange victim: the next live fast-tier
// page of `kind` (never `hot` itself) accepted by `is_cold`. The caller owns
// the cursor so repeated scans resume instead of re-walking from slot 0; the
// scan wraps at most once. Returns kInvalidPage when no victim qualifies.
template <typename ColdFn>  // ColdFn(const PageInfo&) -> bool
PageIndex FindExchangeVictim(PolicyContext& ctx, PageIndex hot, PageKind kind,
                             PageIndex* cursor, ColdFn&& is_cold) {
  const PageIndex slots = ctx.mem.page_slots();
  for (PageIndex visited = 0; visited < slots; ++visited) {
    if (*cursor >= slots) {
      *cursor = 0;
    }
    const PageIndex index = (*cursor)++;
    PageInfo* page = ctx.mem.LivePageAt(index);
    if (page == nullptr || index == hot || page->tier() != TierId::kFast ||
        page->kind() != kind) {
      continue;
    }
    if (is_cold(*page)) {
      return index;
    }
  }
  return kInvalidPage;
}

// Token-bucket limiter for promotion traffic, modelling the kernel's NUMA
// balancing rate limit (default 256 MB/s per node). Fault-path promoters use
// it so a mis-sized hot set cannot melt the critical path.
class MigrationRateLimiter {
 public:
  MigrationRateLimiter(uint64_t pages_per_window, uint64_t window_ns)
      : budget_(pages_per_window), window_ns_(window_ns) {}

  bool Allow(uint64_t now_ns, uint64_t pages) {
    if (now_ns >= window_start_ns_ + window_ns_) {
      window_start_ns_ = now_ns;
      used_ = 0;
    }
    if (used_ + pages > budget_) {
      return false;
    }
    used_ += pages;
    return true;
  }

  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U64(window_start_ns_);
    w.U64(used_);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    window_start_ns_ = r.U64();
    used_ = r.U64();
  }

 private:
  uint64_t budget_;
  uint64_t window_ns_;
  uint64_t window_start_ns_ = 0;
  uint64_t used_ = 0;
};

// Round-robin hint-fault arming over page slots, modelling the kernel's NUMA
// balancing scan (task_numa_work): each scan period a window of pages is
// unmapped (PROT_NONE); the next touch takes a hint fault.
//
// The armed flag lives in a caller-chosen bit of PageInfo::policy_word0.
class HintFaultArm {
 public:
  HintFaultArm(uint64_t armed_bit, uint64_t scan_batch_pages)
      : armed_bit_(armed_bit), scan_batch_(scan_batch_pages) {}

  // Arms up to scan_batch 4 KiB-pages worth of pages (a huge page counts 512).
  void ArmBatch(PolicyContext& ctx) {
    uint64_t armed = 0;
    const PageIndex slots = ctx.mem.page_slots();
    if (slots == 0) {
      return;
    }
    PageIndex visited = 0;
    while (armed < scan_batch_ && visited < slots) {
      if (cursor_ >= slots) {
        cursor_ = 0;
      }
      PageInfo* page = ctx.mem.LivePageAt(cursor_);
      ++cursor_;
      ++visited;
      if (page == nullptr) {
        continue;
      }
      page->policy_word0 |= armed_bit_;
      armed += page->size_pages();
    }
  }

  // Returns true (and disarms) when this access hits an armed page; the
  // caller charges the hint fault and runs its promotion logic.
  bool ConsumeFault(PageInfo& page) const {
    if ((page.policy_word0 & armed_bit_) == 0) {
      return false;
    }
    page.policy_word0 &= ~armed_bit_;
    return true;
  }

  // Armed bits live in page policy words (serialized with the memory system);
  // only the scan cursor is policy-side state.
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U64(cursor_);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    cursor_ = static_cast<PageIndex>(r.U64());
  }

 private:
  uint64_t armed_bit_;
  uint64_t scan_batch_;
  PageIndex cursor_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_POLICIES_POLICY_UTIL_H_
