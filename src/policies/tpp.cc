#include "src/policies/tpp.h"

namespace memtis {

// policy_word1 layout: [last fault time (48b) | fault count (16b)]
namespace {
constexpr uint64_t kCountMask = 0xffff;

uint64_t FaultCount(const PageInfo& page) { return page.policy_word1 & kCountMask; }
uint64_t FaultTime(const PageInfo& page) { return page.policy_word1 >> 16; }

void SetFault(PageInfo& page, uint64_t now_ns, uint64_t count) {
  page.policy_word1 = (now_ns << 16) | (count & kCountMask);
}
}  // namespace

void TppPolicy::OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                         const Access& access) {
  (void)access;
  page.policy_word0 |= kReferencedBit;
  if (!arm_.ConsumeFault(page)) {
    return;
  }
  ctx.ChargeApp(ctx.costs.hint_fault_ns);
  if (page.tier() != TierId::kCapacity) {
    return;
  }
  uint64_t count = FaultCount(page);
  if (ctx.now_ns > FaultTime(page) + params_.fault_ttl_ns) {
    count = 0;  // LRU aging: stale fault history expires
  }
  ++count;
  SetFault(page, ctx.now_ns, count);
  if (count >= 2 && limiter_.Allow(ctx.now_ns, page.size_pages())) {
    // Static threshold of two: the page is in the active LRU; promote in the
    // fault handler.
    MigrateCritical(ctx, index, TierId::kFast);
  }
}

void TppPolicy::Tick(PolicyContext& ctx) {
  if (ctx.now_ns >= next_scan_ns_) {
    next_scan_ns_ = ctx.now_ns + params_.scan_period_ns;
    arm_.ArmBatch(ctx);
  }

  // Reclaim-driven demotion keeping allocation headroom: second-chance clock
  // over fast-tier pages.
  if (!FastBelowWatermark(ctx, params_.low_watermark)) {
    return;
  }
  const uint64_t target_free = static_cast<uint64_t>(
      static_cast<double>(FastTotalFrames(ctx)) * params_.high_watermark);
  const PageIndex slots = ctx.mem.page_slots();
  PageIndex visited = 0;
  while (visited < 2 * slots && FastFreeFrames(ctx) < target_free) {
    if (demote_cursor_ >= slots) {
      demote_cursor_ = 0;
    }
    PageInfo* page = ctx.mem.LivePageAt(demote_cursor_);
    const PageIndex index = demote_cursor_;
    ++demote_cursor_;
    ++visited;
    if (page == nullptr || page->tier() != TierId::kFast) {
      continue;
    }
    if ((page->policy_word0 & kReferencedBit) != 0) {
      page->policy_word0 &= ~kReferencedBit;
      continue;
    }
    MigrateBackground(ctx, index, TierId::kCapacity);
  }
}

ClassifiedSizes TppPolicy::Classify(PolicyContext& ctx) {
  // TPP's notion of hot = pages with >= 2 recent faults (active LRU).
  ClassifiedSizes sizes;
  ctx.mem.ForEachLivePage([&](PageIndex, PageInfo& page) {
    const bool fresh = ctx.now_ns <= FaultTime(page) + params_.fault_ttl_ns;
    if (fresh && FaultCount(page) >= 2) {
      sizes.hot_bytes += page.size_bytes();
    } else {
      sizes.cold_bytes += page.size_bytes();
    }
  });
  return sizes;
}

}  // namespace memtis
