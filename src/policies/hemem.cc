#include "src/policies/hemem.h"

namespace memtis {

void HeMemPolicy::OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                           const Access& access) {
  const SampleType type =
      access.is_write ? SampleType::kStore : SampleType::kLlcLoadMiss;
  if (!sampler_.OnEvent(type, ctx.now_ns)) {
    return;
  }
  ctx.ChargeDaemon(DaemonKind::kSampler, sampler_.AccountSample(ctx.now_ns));

  const uint64_t before = page.access_count();
  ++page.access_count();
  if (before + 1 == params_.hot_threshold) {
    hot_bytes_ += page.size_bytes();
    if (page.tier() == TierId::kCapacity && !page.in_promotion_list) {
      page.in_promotion_list = true;
      promote_list_.Push(page.ref(index));
    }
  }
  if (page.access_count() >= params_.cool_threshold) {
    Cool(ctx);
  }
}

void HeMemPolicy::Cool(PolicyContext& ctx) {
  // Static-threshold cooling: halve every page's count; recompute the hot set.
  uint64_t pages = 0;
  uint64_t hot = 0;
  ctx.mem.ForEachLivePage([&](PageIndex, PageInfo& page) {
    page.access_count() /= 2;
    if (page.access_count() >= params_.hot_threshold) {
      hot += page.size_bytes();
    }
    ++pages;
  });
  hot_bytes_ = hot;
  ctx.ChargeDaemon(DaemonKind::kSampler, pages * params_.cool_scan_cost_per_page_ns);
}

void HeMemPolicy::OnPageFreed(PolicyContext& ctx, PageIndex index, PageInfo& page) {
  (void)ctx;
  (void)index;
  if (page.access_count() >= params_.hot_threshold) {
    hot_bytes_ -= page.size_bytes();
  }
}

void HeMemPolicy::Tick(PolicyContext& ctx) {
  // The sampling thread spins regardless of work (paper: ~100% of one core).
  if (ctx.now_ns > last_spin_charge_ns_) {
    const double busy =
        static_cast<double>(ctx.now_ns - last_spin_charge_ns_) * params_.spin_core_share;
    ctx.ChargeDaemon(DaemonKind::kSampler, static_cast<uint64_t>(busy));
    last_spin_charge_ns_ = ctx.now_ns;
  }

  if (ctx.now_ns < next_migrate_ns_) {
    return;
  }
  next_migrate_ns_ = ctx.now_ns + params_.migrate_period_ns;

  // Anti-thrashing: halt all migration while the hot set exceeds the fast tier.
  const uint64_t fast_bytes = FastTotalFrames(ctx) * kPageSize;
  if (hot_bytes_ > fast_bytes) {
    return;
  }

  const PageIndex slots = ctx.mem.page_slots();
  while (!promote_list_.empty()) {
    const PageRef ref = promote_list_.Pop();
    PageInfo* page = ctx.mem.Deref(ref);
    if (page == nullptr) {
      continue;
    }
    page->in_promotion_list = false;
    if (page->tier() != TierId::kCapacity ||
        page->access_count() < params_.hot_threshold) {
      continue;
    }
    // Make room by demoting cold fast pages (count below the hot threshold).
    PageIndex visited = 0;
    while (FastFreeFrames(ctx) < page->size_pages() && visited < slots) {
      if (demote_cursor_ >= slots) {
        demote_cursor_ = 0;
      }
      PageInfo* victim = ctx.mem.LivePageAt(demote_cursor_);
      const PageIndex vindex = demote_cursor_;
      ++demote_cursor_;
      ++visited;
      if (victim == nullptr || victim->tier() != TierId::kFast ||
          victim->access_count() >= params_.hot_threshold) {
        continue;
      }
      MigrateBackground(ctx, vindex, TierId::kCapacity);
    }
    if (FastFreeFrames(ctx) >= page->size_pages()) {
      MigrateBackground(ctx, ctx.mem.IndexOf(*page), TierId::kFast);
    } else if (params_.use_exchange) {
      // No free frame freed up: swap directly with a cold fast page of the
      // same kind rather than stalling the promotion round.
      const PageIndex hot_index = ctx.mem.IndexOf(*page);
      const PageIndex victim = FindExchangeVictim(
          ctx, hot_index, page->kind(), &exchange_cursor_,
          [&](const PageInfo& cand) {
            return cand.access_count() < params_.hot_threshold;
          });
      if (victim == kInvalidPage || !ExchangeBackground(ctx, hot_index, victim)) {
        break;  // nothing cold enough, or out of migration bandwidth
      }
    } else {
      // No room and nothing cold to evict: stop for this round.
      break;
    }
  }
}

AllocOptions HeMemPolicy::PlacementFor(PolicyContext& ctx, uint64_t bytes,
                                       bool use_thp) {
  (void)ctx;
  if (bytes <= params_.small_alloc_bytes) {
    over_allocated_bytes_ += bytes;
    return AllocOptions{.preferred = TierId::kFast,
                        .allow_other_tier = true,
                        .use_thp = use_thp};
  }
  return AllocOptions{.preferred = TierId::kFast,
                      .allow_other_tier = true,
                      .use_thp = use_thp};
}

ClassifiedSizes HeMemPolicy::Classify(PolicyContext& ctx) {
  ClassifiedSizes sizes;
  ctx.mem.ForEachLivePage([&](PageIndex, PageInfo& page) {
    if (page.access_count() >= params_.hot_threshold) {
      sizes.hot_bytes += page.size_bytes();
    } else {
      sizes.cold_bytes += page.size_bytes();
    }
  });
  return sizes;
}

}  // namespace memtis
