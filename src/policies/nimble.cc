#include "src/policies/nimble.h"

namespace memtis {

void NimblePolicy::Tick(PolicyContext& ctx) {
  if (ctx.now_ns < next_scan_ns_) {
    return;
  }
  next_scan_ns_ = ctx.now_ns + params_.scan_period_ns;

  // Full page-table scan: collect referenced capacity pages (promotion
  // candidates, threshold = 1) and unreferenced fast pages (demotion
  // victims).
  std::vector<PageIndex> promote;
  std::vector<PageIndex> demote;
  std::vector<PageIndex> referenced_fast;
  uint64_t hot_bytes = 0;
  uint64_t cold_bytes = 0;
  const uint64_t scan_cost = scanner_.Scan(
      ctx.mem, [&](PageIndex index, PageInfo& page, bool referenced) {
        (referenced ? hot_bytes : cold_bytes) += page.size_bytes();
        if (referenced && page.tier() == TierId::kCapacity) {
          promote.push_back(index);
        } else if (page.tier() == TierId::kFast) {
          (referenced ? referenced_fast : demote).push_back(index);
        }
      });
  ctx.ChargeDaemon(DaemonKind::kScanner, scan_cost);
  last_hot_bytes_ = hot_bytes;
  last_cold_bytes_ = cold_bytes;
  // Nimble exchanges by LRU position: once unreferenced victims run out, it
  // keeps exchanging against referenced fast pages — the pure thrash that
  // makes its migration traffic explode when the referenced set exceeds the
  // fast tier (paper §6.2.4).
  demote.insert(demote.end(), referenced_fast.begin(), referenced_fast.end());

  // Exchange: promote hot pages, demoting victims as needed for space.
  uint64_t budget = params_.exchange_budget_pages;
  size_t victim = 0;
  for (const PageIndex index : promote) {
    if (budget == 0) {
      break;
    }
    PageInfo& page = ctx.mem.page(index);
    if (!page.live || page.tier() != TierId::kCapacity) {
      continue;
    }
    const uint64_t need = page.size_pages();
    // Make room by demoting unreferenced fast pages.
    while (FastFreeFrames(ctx) < need && victim < demote.size() && budget > 0) {
      PageInfo& v = ctx.mem.page(demote[victim]);
      const PageIndex vindex = demote[victim];
      ++victim;
      if (!v.live || v.tier() != TierId::kFast) {
        continue;
      }
      const uint64_t vsize = v.size_pages();
      if (MigrateBackground(ctx, vindex, TierId::kCapacity)) {
        budget -= std::min(budget, vsize);
      }
    }
    if (FastFreeFrames(ctx) >= need) {
      if (MigrateBackground(ctx, index, TierId::kFast)) {
        budget -= std::min(budget, need);
      }
    }
  }
}

ClassifiedSizes NimblePolicy::Classify(PolicyContext& ctx) {
  (void)ctx;
  return ClassifiedSizes{.hot_bytes = last_hot_bytes_,
                         .warm_bytes = 0,
                         .cold_bytes = last_cold_bytes_};
}

}  // namespace memtis
