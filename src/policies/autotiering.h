// AutoTiering (Kim et al., USENIX ATC '21) behavioural model.
//
// Per the paper's Table 1: hint-fault tracking, recency-based promotion with a
// static threshold of one (critical path), an N-bit access-history vector per
// page, and LFU demotion among fast-tier pages by a background thread. The
// background thread reserves free pages but uses them only for promotion, so
// once demotion has kicked in, new allocations land on the capacity tier
// (paper §6.2.6's bwaves observation).

#ifndef MEMTIS_SIM_SRC_POLICIES_AUTOTIERING_H_
#define MEMTIS_SIM_SRC_POLICIES_AUTOTIERING_H_

#include <bit>

#include "src/policies/policy_util.h"
#include "src/sim/policy.h"
#include "src/snapshot/serializer.h"

namespace memtis {

class AutoTieringPolicy : public TieringPolicy {
 public:
  struct Params {
    uint64_t scan_period_ns = 200'000;
    uint64_t scan_batch_pages = 64;
    double low_watermark = 0.02;   // start demoting below this free fraction
    double high_watermark = 0.05;  // demote until this much is free
    int history_bits = 8;
    uint64_t rate_limit_pages = 512;  // fault-path promotion rate limit
    uint64_t rate_window_ns = 2'000'000;
    // Native direct page exchange (the paper's exchange_pages fast path):
    // when a fault-path promotion finds no free fast frame, swap the hot page
    // with a cold fast-tier victim in one operation instead of waiting for
    // the background thread to demote into a reserved frame.
    bool use_exchange = true;
  };

  AutoTieringPolicy() : AutoTieringPolicy(Params{}) {}
  explicit AutoTieringPolicy(Params params)
      : params_(params),
        arm_(kArmedBit, params.scan_batch_pages),
        limiter_(params.rate_limit_pages, params.rate_window_ns) {}

  std::string_view name() const override { return "autotiering"; }

  void OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                const Access& access) override;

  void Tick(PolicyContext& ctx) override;

  AllocOptions PlacementFor(PolicyContext& ctx, uint64_t bytes, bool use_thp) override {
    (void)ctx;
    (void)bytes;
    // Reserved fast-tier pages are promotion-only once demotion has started.
    return AllocOptions{
        .preferred = demotion_started_ ? TierId::kCapacity : TierId::kFast,
        .allow_other_tier = true,
        .use_thp = use_thp};
  }

  bool SupportsCheckpoint() const override { return true; }
  void SaveState(StateWriter& w) const override {
    w.Section(0x4154524eu);  // "ATRN"
    arm_.SaveState(w);
    limiter_.SaveState(w);
    w.U64(next_scan_ns_);
    w.U64(scan_epoch_);
    w.Bool(demotion_started_);
    w.U64(demote_cursor_);
    w.U64(exchange_cursor_);
  }
  void LoadState(StateReader& r) override {
    r.Section(0x4154524eu);
    arm_.LoadState(r);
    limiter_.LoadState(r);
    next_scan_ns_ = r.U64();
    scan_epoch_ = r.U64();
    demotion_started_ = r.Bool();
    demote_cursor_ = static_cast<PageIndex>(r.U64());
    exchange_cursor_ = static_cast<PageIndex>(r.U64());
  }

 private:
  static constexpr uint64_t kArmedBit = 1;

  // History vector layout in policy_word1: [period index (32b) | history (32b)].
  void TouchHistory(PageInfo& page) const;
  int HistoryScore(const PageInfo& page) const;

  Params params_;
  HintFaultArm arm_;
  MigrationRateLimiter limiter_;
  uint64_t next_scan_ns_ = 0;
  uint64_t scan_epoch_ = 0;
  bool demotion_started_ = false;
  PageIndex demote_cursor_ = 0;
  PageIndex exchange_cursor_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_POLICIES_AUTOTIERING_H_
