// MULTI-CLOCK (Maruf et al., HPCA '22) behavioural model.
//
// Per the paper's Table 1: page-table scanning, recency+frequency metric with
// a static threshold of two (pages referenced in two consecutive scans are
// promoted), and clock-based demotion of unreferenced fast pages — all in the
// background.

#ifndef MEMTIS_SIM_SRC_POLICIES_MULTICLOCK_H_
#define MEMTIS_SIM_SRC_POLICIES_MULTICLOCK_H_

#include "src/access/pt_scanner.h"
#include "src/policies/policy_util.h"
#include "src/sim/policy.h"

namespace memtis {

class MultiClockPolicy : public TieringPolicy {
 public:
  struct Params {
    uint64_t scan_period_ns = 500'000;
    double low_watermark = 0.02;
    double high_watermark = 0.05;
  };

  MultiClockPolicy() : MultiClockPolicy(Params{}) {}
  explicit MultiClockPolicy(Params params) : params_(params) {}

  std::string_view name() const override { return "multi-clock"; }

  void OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                const Access& access) override {
    (void)ctx;
    (void)page;
    (void)access;
    scanner_.MarkAccessed(index);
  }

  void Tick(PolicyContext& ctx) override;

 private:
  Params params_;
  PtScanner scanner_;
  uint64_t next_scan_ns_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_POLICIES_MULTICLOCK_H_
