// Run metrics: the quantities every paper figure is built from.

#ifndef MEMTIS_SIM_SRC_SIM_METRICS_H_
#define MEMTIS_SIM_SRC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/mem/memory_system.h"
#include "src/mem/tlb.h"
#include "src/sim/cpu_account.h"

namespace memtis {

class JsonWriter;
class JsonValue;

// Sizes of the hot/warm/cold sets as classified by a policy (Fig. 2 / Fig. 9).
struct ClassifiedSizes {
  uint64_t hot_bytes = 0;
  uint64_t warm_bytes = 0;
  uint64_t cold_bytes = 0;
};

// Periodic snapshot for time-series figures.
struct TimelinePoint {
  uint64_t t_ns = 0;
  ClassifiedSizes classified;
  uint64_t fast_used_pages = 0;
  uint64_t rss_pages = 0;
  double window_fast_ratio = 0.0;  // fast-tier access ratio in the window
  double window_mops = 0.0;        // throughput (million accesses / virtual s)
};

// Per-tenant slice of a co-located run, attributed by the tenant plane
// (src/tenant/): engine counter deltas around each tenant's batches plus the
// memory system's per-tenant quota accounting. Empty for single-workload runs,
// so the `per_tenant` JSON field is omitted and legacy documents (and the
// golden-metrics byte-compares) are unchanged.
struct TenantMetrics {
  std::string name;      // tenant label (defaults to the workload name)
  std::string workload;  // registered workload the tenant runs
  uint64_t accesses = 0;
  uint64_t fast_accesses = 0;
  uint64_t capacity_accesses = 0;
  uint64_t active_ns = 0;   // virtual time inside this tenant's batches
  uint64_t arrive_ns = 0;   // churn: when the tenant joined (0 = from start)
  uint64_t depart_ns = 0;   // churn: when it left and was reclaimed (0 = never)
  bool finished = false;    // natural completion before the run ended
  uint64_t quota_frames = 0;  // resolved fast-tier cap in 4 KiB frames (0 = none)
  uint64_t fast_pages = 0;    // fast-tier usage at run end (or at departure)
  uint64_t quota_denied_allocs = 0;
  uint64_t quota_denied_promotions = 0;
  uint64_t quota_steals = 0;
  uint64_t budget_denied_promotions = 0;

  double fast_hit_ratio() const {
    const uint64_t total = fast_accesses + capacity_accesses;
    return total == 0 ? 0.0
                      : static_cast<double>(fast_accesses) / static_cast<double>(total);
  }
  // Latency per access over the tenant's own batches; the fairness report
  // compares this against a solo run to get the interference slowdown.
  double ns_per_access() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(active_ns) / static_cast<double>(accesses);
  }
};

struct Metrics {
  // Access counts.
  uint64_t accesses = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t fast_accesses = 0;
  uint64_t capacity_accesses = 0;

  // Virtual app time (ns), before daemon-contention inflation.
  uint64_t app_ns = 0;
  // Portion of app_ns spent on critical-path tiering work (fault-path
  // migrations, hint faults, shootdowns) — the paper's §2.2 complaint.
  uint64_t critical_path_ns = 0;

  uint32_t cores = 20;
  bool cpu_contention = true;

  CpuAccount cpu;
  TlbStats tlb;
  MigrationStats migration;
  // Injection counters for the run's FaultPlan (all zero when fault-free).
  FaultStats faults;

  uint64_t final_rss_pages = 0;
  uint64_t peak_rss_pages = 0;
  uint64_t final_fast_used_pages = 0;
  double final_huge_ratio = 0.0;

  std::vector<TimelinePoint> timeline;

  // Per-tenant attribution (see TenantMetrics); index = TenantId. Filled only
  // by the tenant plane — empty means a legacy single-workload run.
  std::vector<TenantMetrics> per_tenant;

  double fast_hit_ratio() const {
    const uint64_t total = fast_accesses + capacity_accesses;
    return total == 0 ? 0.0
                      : static_cast<double>(fast_accesses) / static_cast<double>(total);
  }

  // Wall time after charging daemon CPU against the app's cores.
  double EffectiveRuntimeNs() const {
    double t = static_cast<double>(app_ns);
    if (cpu_contention && app_ns > 0) {
      const double share = static_cast<double>(cpu.total_busy()) /
                           (static_cast<double>(app_ns) * cores);
      t *= 1.0 + share;
    }
    return t;
  }

  // Throughput in million accesses per virtual second.
  double Mops() const {
    const double t = EffectiveRuntimeNs();
    return t == 0.0 ? 0.0 : static_cast<double>(accesses) * 1e3 / t;
  }

  // Serializes every field (counters, cpu/tlb/migration breakdowns, derived
  // ratios, the full timeline) as a JSON object with stable field ordering —
  // the wire format of the runner's result sinks (see src/runner/result_sink.h
  // and the README's "Running sweeps" schema). `indent` as in JsonWriter.
  std::string ToJson(int indent = 0) const;

  // Same object written into an in-progress document (used by the sinks to
  // nest metrics inside a job record). `include_timeline` = false drops the
  // timeline array for compact sweep files.
  void WriteJson(JsonWriter& w, bool include_timeline = true) const;

  // Lossless inverse of WriteJson, used by the supervisor pipe protocol and
  // the --resume manifest (src/runner/job_codec.*): every raw counter and the
  // timeline are reconstructed bit-for-bit (integers re-parsed as uint64,
  // doubles via the round-trippable "%.17g" format). Derived fields
  // (fast_hit_ratio, effective_runtime_ns, mops) are recomputed, never read.
  // Returns false when `v` is not a JSON object.
  static bool FromJson(const JsonValue& v, Metrics* out);
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_SIM_METRICS_H_
