// Latency/cost parameters of the simulated machine, in virtual nanoseconds.
//
// Tier load/store latencies live in TierLatency (src/mem/tier.h); everything
// else — address translation, faults, migration mechanics — is here. Values
// are order-of-magnitude figures for a Xeon-class server; experiments depend
// on their ratios, not their absolute values.

#ifndef MEMTIS_SIM_SRC_SIM_COST_MODEL_H_
#define MEMTIS_SIM_SRC_SIM_COST_MODEL_H_

#include <cstdint>

namespace memtis {

struct CostParams {
  // Address translation.
  uint64_t tlb_hit_ns = 1;
  uint64_t walk_base_ns = 60;  // 4-level walk on a TLB miss
  uint64_t walk_huge_ns = 40;  // 3-level walk (paper §2.3)

  // Faults (charged to app time — the critical path).
  uint64_t minor_fault_ns = 2'500;
  uint64_t hint_fault_ns = 1'500;  // NUMA hint fault entry/exit

  // Migration mechanics. A migration performed on the critical path (page
  // fault handler) charges copy+fixup to the app; background migration charges
  // it to the migration daemon, with only the shootdown touching the app.
  uint64_t migrate_base_ns = 3'000;        // copy 4 KiB + remap
  uint64_t migrate_huge_ns = 400'000;      // copy 2 MiB + remap
  // Direct page exchange (AutoTiering's exchange_pages): one combined
  // swap-copy of both pages through a per-CPU bounce buffer, cheaper than two
  // independent migrate copies (~1.5x one copy, not 2x) but paying two TLB
  // shootdowns — one per remapped vpn span.
  uint64_t exchange_base_ns = 4'500;       // swap two 4 KiB pages + remap both
  uint64_t exchange_huge_ns = 600'000;     // swap two 2 MiB pages + remap both
  uint64_t shootdown_app_ns = 2'000;       // IPI cost visible to app threads
  uint64_t split_ns = 30'000;              // huge page split bookkeeping
  uint64_t collapse_ns = 60'000;           // base->huge collapse bookkeeping

  // Allocation-time page clearing etc. (charged once per mapped 4 KiB page).
  uint64_t alloc_page_ns = 300;

  // Background migration throughput cap shared by all daemons (token bucket);
  // scaled to keep the migration:access ratio of a real machine.
  uint64_t migrate_bandwidth_pages_per_ms = 128;
  uint64_t migrate_burst_pages = 2048;
  // Memory-bandwidth interference visible to app threads per migrated 4 KiB.
  uint64_t migrate_app_interference_ns = 100;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_SIM_COST_MODEL_H_
