// Sharded-by-range execution: N independent sub-engines over disjoint
// workload slices, merged deterministically.
//
// Each shard is a complete simulation — its own MemorySystem slice of the
// machine, its own policy instance, its own TLB/sampler/clock — driving the
// workload's ShardSlice(i, N). Shards share nothing, so they can run on
// worker threads; results land in shard-indexed slots and are merged in
// shard order, which pins two guarantees the tests enforce:
//
//   1. ShardedEngine with shards = 1 is byte-identical to a plain Engine run
//      (same machine, same seed, same workload).
//   2. For any N, the merged metrics are byte-identical whether the shards
//      ran on 1 worker thread or k — thread count never reorders anything.
//
// What sharding does NOT promise: an N-shard run is not byte-identical to the
// monolithic run of the same workload. Virtual time, the TLB, the sampler
// countdowns, and the tick phase are global in a monolithic engine; slicing
// the address space necessarily decouples them. The contract is the pair of
// determinism guarantees above plus the conservation invariants the audit
// layer checks per shard (see DESIGN.md, "sharding determinism contract").

#ifndef MEMTIS_SIM_SRC_SIM_SHARDED_ENGINE_H_
#define MEMTIS_SIM_SRC_SIM_SHARDED_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/sim/engine.h"

namespace memtis {

// Each shard needs a private policy instance; the caller supplies a factory
// (e.g. [&] { return MakePolicy(name); }).
using PolicyFactory = std::function<std::unique_ptr<TieringPolicy>()>;

struct ShardedOptions {
  uint32_t shards = 1;
  // Worker threads (clamped to `shards`). Results are independent of this.
  uint32_t threads = 1;
  // Per-run template. `max_accesses` is the whole run's budget, divided
  // across shards (remainder to the lowest shards); `seed` is the base, shard
  // i runs with seed + i. `trace` and `audit` must be null here — per-shard
  // observers come from `audit_for_shard` (observers are stateful and must
  // not be shared across concurrent shards).
  EngineOptions engine;
  // Optional per-shard observer factory (audit sessions). Called once per
  // shard, in shard order, before any shard runs.
  std::function<EngineObserver*(uint32_t shard)> audit_for_shard;
};

class ShardedEngine {
 public:
  ShardedEngine(const MachineConfig& machine, PolicyFactory policy_factory,
                const ShardedOptions& options);

  // Slices the workload (Workload::ShardSlice must return non-null for every
  // shard), runs all shards, and returns the merged metrics. Single use.
  Metrics Run(const Workload& workload);

  // Per-shard results, in shard order (valid after Run).
  const std::vector<Metrics>& shard_metrics() const { return shard_metrics_; }

  // Shard i's machine: per-tier frame counts divided by `shards` (rounded
  // down to whole 2 MiB blocks), cores divided likewise. Identity for
  // shards = 1.
  static MachineConfig SliceMachine(const MachineConfig& machine, uint32_t shards);

  // Deterministic merge, exposed for tests: counters and stats summed,
  // app_ns = max (shards run concurrently), timeline points ordered by
  // (t_ns, shard), huge ratio RSS-weighted in shard order.
  static Metrics MergeShardMetrics(const MachineConfig& machine,
                                   const std::vector<Metrics>& shards);

 private:
  MachineConfig machine_;
  PolicyFactory policy_factory_;
  ShardedOptions options_;
  std::vector<Metrics> shard_metrics_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_SIM_SHARDED_ENGINE_H_
