#include "src/sim/metrics.h"

#include "src/common/json.h"

namespace memtis {
namespace {

void WriteClassified(JsonWriter& w, const ClassifiedSizes& c) {
  w.BeginObject();
  w.Field("hot_bytes", c.hot_bytes);
  w.Field("warm_bytes", c.warm_bytes);
  w.Field("cold_bytes", c.cold_bytes);
  w.EndObject();
}

}  // namespace

std::string Metrics::ToJson(int indent) const {
  std::string out;
  JsonWriter w(&out, indent);
  WriteJson(w, /*include_timeline=*/true);
  return out;
}

void Metrics::WriteJson(JsonWriter& w, bool include_timeline) const {
  w.BeginObject();

  w.Field("accesses", accesses);
  w.Field("loads", loads);
  w.Field("stores", stores);
  w.Field("fast_accesses", fast_accesses);
  w.Field("capacity_accesses", capacity_accesses);
  w.Field("app_ns", app_ns);
  w.Field("critical_path_ns", critical_path_ns);
  w.Field("cores", cores);
  w.Field("cpu_contention", cpu_contention);

  w.Key("cpu");
  w.BeginObject();
  w.Field("sampler_ns", cpu.busy(DaemonKind::kSampler));
  w.Field("migrator_ns", cpu.busy(DaemonKind::kMigrator));
  w.Field("scanner_ns", cpu.busy(DaemonKind::kScanner));
  w.Field("total_busy_ns", cpu.total_busy());
  w.EndObject();

  w.Key("tlb");
  w.BeginObject();
  w.Field("base_hits", tlb.base_hits);
  w.Field("base_misses", tlb.base_misses);
  w.Field("huge_hits", tlb.huge_hits);
  w.Field("huge_misses", tlb.huge_misses);
  w.Field("shootdowns", tlb.shootdowns);
  w.Field("invalidated_entries", tlb.invalidated_entries);
  w.Field("miss_ratio", tlb.miss_ratio());
  w.EndObject();

  w.Key("migration");
  w.BeginObject();
  w.Field("promoted_base", migration.promoted_base);
  w.Field("promoted_huge", migration.promoted_huge);
  w.Field("demoted_base", migration.demoted_base);
  w.Field("demoted_huge", migration.demoted_huge);
  w.Field("failed_migrations", migration.failed_migrations);
  w.Field("aborted_migrations", migration.aborted_migrations);
  w.Field("splits", migration.splits);
  w.Field("collapses", migration.collapses);
  w.Field("freed_zero_subpages", migration.freed_zero_subpages);
  w.Field("demand_faults", migration.demand_faults);
  w.Field("promoted_4k", migration.promoted_4k());
  w.Field("demoted_4k", migration.demoted_4k());
  w.EndObject();

  w.Key("faults");
  faults.WriteJson(w);

  w.Field("final_rss_pages", final_rss_pages);
  w.Field("peak_rss_pages", peak_rss_pages);
  w.Field("final_fast_used_pages", final_fast_used_pages);
  w.Field("final_huge_ratio", final_huge_ratio);

  // Derived quantities, so sinks never re-implement the formulas.
  w.Field("fast_hit_ratio", fast_hit_ratio());
  w.Field("effective_runtime_ns", EffectiveRuntimeNs());
  w.Field("mops", Mops());

  if (include_timeline) {
    w.Key("timeline");
    w.BeginArray();
    for (const TimelinePoint& p : timeline) {
      w.BeginObject();
      w.Field("t_ns", p.t_ns);
      w.Key("classified");
      WriteClassified(w, p.classified);
      w.Field("fast_used_pages", p.fast_used_pages);
      w.Field("rss_pages", p.rss_pages);
      w.Field("window_fast_ratio", p.window_fast_ratio);
      w.Field("window_mops", p.window_mops);
      w.EndObject();
    }
    w.EndArray();
  }

  w.EndObject();
}

}  // namespace memtis
