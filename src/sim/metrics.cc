#include "src/sim/metrics.h"

#include "src/common/json.h"
#include "src/common/json_parse.h"

namespace memtis {
namespace {

void WriteClassified(JsonWriter& w, const ClassifiedSizes& c) {
  w.BeginObject();
  w.Field("hot_bytes", c.hot_bytes);
  w.Field("warm_bytes", c.warm_bytes);
  w.Field("cold_bytes", c.cold_bytes);
  w.EndObject();
}

}  // namespace

std::string Metrics::ToJson(int indent) const {
  std::string out;
  JsonWriter w(&out, indent);
  WriteJson(w, /*include_timeline=*/true);
  return out;
}

void Metrics::WriteJson(JsonWriter& w, bool include_timeline) const {
  w.BeginObject();

  w.Field("accesses", accesses);
  w.Field("loads", loads);
  w.Field("stores", stores);
  w.Field("fast_accesses", fast_accesses);
  w.Field("capacity_accesses", capacity_accesses);
  w.Field("app_ns", app_ns);
  w.Field("critical_path_ns", critical_path_ns);
  w.Field("cores", cores);
  w.Field("cpu_contention", cpu_contention);

  w.Key("cpu");
  w.BeginObject();
  w.Field("sampler_ns", cpu.busy(DaemonKind::kSampler));
  w.Field("migrator_ns", cpu.busy(DaemonKind::kMigrator));
  w.Field("scanner_ns", cpu.busy(DaemonKind::kScanner));
  w.Field("total_busy_ns", cpu.total_busy());
  w.EndObject();

  w.Key("tlb");
  w.BeginObject();
  w.Field("base_hits", tlb.base_hits);
  w.Field("base_misses", tlb.base_misses);
  w.Field("huge_hits", tlb.huge_hits);
  w.Field("huge_misses", tlb.huge_misses);
  w.Field("shootdowns", tlb.shootdowns);
  w.Field("invalidated_entries", tlb.invalidated_entries);
  w.Field("miss_ratio", tlb.miss_ratio());
  w.EndObject();

  w.Key("migration");
  w.BeginObject();
  w.Field("promoted_base", migration.promoted_base);
  w.Field("promoted_huge", migration.promoted_huge);
  w.Field("demoted_base", migration.demoted_base);
  w.Field("demoted_huge", migration.demoted_huge);
  w.Field("failed_migrations", migration.failed_migrations);
  w.Field("aborted_migrations", migration.aborted_migrations);
  w.Field("splits", migration.splits);
  w.Field("collapses", migration.collapses);
  w.Field("freed_zero_subpages", migration.freed_zero_subpages);
  w.Field("demand_faults", migration.demand_faults);
  // Exchange counters postdate the schema-stable goldens: omitted while all
  // zero so documents from exchange-free runs are byte-identical.
  if (migration.exchanges != 0 || migration.failed_exchanges != 0 ||
      migration.aborted_exchanges != 0) {
    w.Field("exchanges", migration.exchanges);
    w.Field("exchanged_huge", migration.exchanged_huge);
    w.Field("failed_exchanges", migration.failed_exchanges);
    w.Field("aborted_exchanges", migration.aborted_exchanges);
    w.Field("exchanged_4k", migration.exchanged_4k());
  }
  w.Field("promoted_4k", migration.promoted_4k());
  w.Field("demoted_4k", migration.demoted_4k());
  w.EndObject();

  w.Key("faults");
  faults.WriteJson(w);

  w.Field("final_rss_pages", final_rss_pages);
  w.Field("peak_rss_pages", peak_rss_pages);
  w.Field("final_fast_used_pages", final_fast_used_pages);
  w.Field("final_huge_ratio", final_huge_ratio);

  // Derived quantities, so sinks never re-implement the formulas.
  w.Field("fast_hit_ratio", fast_hit_ratio());
  w.Field("effective_runtime_ns", EffectiveRuntimeNs());
  w.Field("mops", Mops());

  // Omitted when empty so legacy single-workload documents are unchanged.
  if (!per_tenant.empty()) {
    w.Key("per_tenant");
    w.BeginArray();
    for (const TenantMetrics& t : per_tenant) {
      w.BeginObject();
      w.Field("name", t.name);
      w.Field("workload", t.workload);
      w.Field("accesses", t.accesses);
      w.Field("fast_accesses", t.fast_accesses);
      w.Field("capacity_accesses", t.capacity_accesses);
      w.Field("active_ns", t.active_ns);
      w.Field("arrive_ns", t.arrive_ns);
      w.Field("depart_ns", t.depart_ns);
      w.Field("finished", t.finished);
      w.Field("quota_frames", t.quota_frames);
      w.Field("fast_pages", t.fast_pages);
      w.Field("quota_denied_allocs", t.quota_denied_allocs);
      w.Field("quota_denied_promotions", t.quota_denied_promotions);
      w.Field("quota_steals", t.quota_steals);
      w.Field("budget_denied_promotions", t.budget_denied_promotions);
      w.Field("fast_hit_ratio", t.fast_hit_ratio());
      w.Field("ns_per_access", t.ns_per_access());
      w.EndObject();
    }
    w.EndArray();
  }

  if (include_timeline) {
    w.Key("timeline");
    w.BeginArray();
    for (const TimelinePoint& p : timeline) {
      w.BeginObject();
      w.Field("t_ns", p.t_ns);
      w.Key("classified");
      WriteClassified(w, p.classified);
      w.Field("fast_used_pages", p.fast_used_pages);
      w.Field("rss_pages", p.rss_pages);
      w.Field("window_fast_ratio", p.window_fast_ratio);
      w.Field("window_mops", p.window_mops);
      w.EndObject();
    }
    w.EndArray();
  }

  w.EndObject();
}

bool Metrics::FromJson(const JsonValue& v, Metrics* out) {
  if (!v.is_object()) {
    return false;
  }
  *out = Metrics();
  out->accesses = v.GetUint("accesses");
  out->loads = v.GetUint("loads");
  out->stores = v.GetUint("stores");
  out->fast_accesses = v.GetUint("fast_accesses");
  out->capacity_accesses = v.GetUint("capacity_accesses");
  out->app_ns = v.GetUint("app_ns");
  out->critical_path_ns = v.GetUint("critical_path_ns");
  out->cores = static_cast<uint32_t>(v.GetUint("cores", out->cores));
  out->cpu_contention = v.GetBool("cpu_contention", out->cpu_contention);

  if (const JsonValue* cpu = v.Find("cpu"); cpu != nullptr) {
    out->cpu.Charge(DaemonKind::kSampler, cpu->GetUint("sampler_ns"));
    out->cpu.Charge(DaemonKind::kMigrator, cpu->GetUint("migrator_ns"));
    out->cpu.Charge(DaemonKind::kScanner, cpu->GetUint("scanner_ns"));
  }

  if (const JsonValue* tlb = v.Find("tlb"); tlb != nullptr) {
    out->tlb.base_hits = tlb->GetUint("base_hits");
    out->tlb.base_misses = tlb->GetUint("base_misses");
    out->tlb.huge_hits = tlb->GetUint("huge_hits");
    out->tlb.huge_misses = tlb->GetUint("huge_misses");
    out->tlb.shootdowns = tlb->GetUint("shootdowns");
    out->tlb.invalidated_entries = tlb->GetUint("invalidated_entries");
  }

  if (const JsonValue* mig = v.Find("migration"); mig != nullptr) {
    out->migration.promoted_base = mig->GetUint("promoted_base");
    out->migration.promoted_huge = mig->GetUint("promoted_huge");
    out->migration.demoted_base = mig->GetUint("demoted_base");
    out->migration.demoted_huge = mig->GetUint("demoted_huge");
    out->migration.failed_migrations = mig->GetUint("failed_migrations");
    out->migration.aborted_migrations = mig->GetUint("aborted_migrations");
    out->migration.splits = mig->GetUint("splits");
    out->migration.collapses = mig->GetUint("collapses");
    out->migration.freed_zero_subpages = mig->GetUint("freed_zero_subpages");
    out->migration.demand_faults = mig->GetUint("demand_faults");
    out->migration.exchanges = mig->GetUint("exchanges");
    out->migration.exchanged_huge = mig->GetUint("exchanged_huge");
    out->migration.failed_exchanges = mig->GetUint("failed_exchanges");
    out->migration.aborted_exchanges = mig->GetUint("aborted_exchanges");
  }

  if (const JsonValue* faults = v.Find("faults"); faults != nullptr) {
    FaultStats::FromJson(*faults, &out->faults);
  }

  if (const JsonValue* tenants = v.Find("per_tenant"); tenants != nullptr) {
    out->per_tenant.reserve(tenants->size());
    for (size_t i = 0; i < tenants->size(); ++i) {
      const JsonValue& tj = tenants->at(i);
      TenantMetrics t;
      t.name = tj.GetString("name");
      t.workload = tj.GetString("workload");
      t.accesses = tj.GetUint("accesses");
      t.fast_accesses = tj.GetUint("fast_accesses");
      t.capacity_accesses = tj.GetUint("capacity_accesses");
      t.active_ns = tj.GetUint("active_ns");
      t.arrive_ns = tj.GetUint("arrive_ns");
      t.depart_ns = tj.GetUint("depart_ns");
      t.finished = tj.GetBool("finished");
      t.quota_frames = tj.GetUint("quota_frames");
      t.fast_pages = tj.GetUint("fast_pages");
      t.quota_denied_allocs = tj.GetUint("quota_denied_allocs");
      t.quota_denied_promotions = tj.GetUint("quota_denied_promotions");
      t.quota_steals = tj.GetUint("quota_steals");
      t.budget_denied_promotions = tj.GetUint("budget_denied_promotions");
      out->per_tenant.push_back(std::move(t));
    }
  }

  out->final_rss_pages = v.GetUint("final_rss_pages");
  out->peak_rss_pages = v.GetUint("peak_rss_pages");
  out->final_fast_used_pages = v.GetUint("final_fast_used_pages");
  out->final_huge_ratio = v.GetDouble("final_huge_ratio");

  if (const JsonValue* timeline = v.Find("timeline"); timeline != nullptr) {
    out->timeline.reserve(timeline->size());
    for (size_t i = 0; i < timeline->size(); ++i) {
      const JsonValue& p = timeline->at(i);
      TimelinePoint point;
      point.t_ns = p.GetUint("t_ns");
      if (const JsonValue* c = p.Find("classified"); c != nullptr) {
        point.classified.hot_bytes = c->GetUint("hot_bytes");
        point.classified.warm_bytes = c->GetUint("warm_bytes");
        point.classified.cold_bytes = c->GetUint("cold_bytes");
      }
      point.fast_used_pages = p.GetUint("fast_used_pages");
      point.rss_pages = p.GetUint("rss_pages");
      point.window_fast_ratio = p.GetDouble("window_fast_ratio");
      point.window_mops = p.GetDouble("window_mops");
      out->timeline.push_back(point);
    }
  }
  return true;
}

}  // namespace memtis
