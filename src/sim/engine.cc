#include "src/sim/engine.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/json_parse.h"
#include "src/snapshot/serializer.h"
#include "src/trace/trace.h"

namespace memtis {

namespace {
uint64_t BytesToFrames(uint64_t bytes) {
  // Round up to a huge-page multiple so the buddy allocator tiles cleanly.
  return (bytes + kHugePageSize - 1) / kHugePageSize * kSubpagesPerHuge;
}
}  // namespace

MachineConfig MakeNvmMachine(uint64_t fast_bytes, uint64_t capacity_bytes) {
  MachineConfig m;
  m.mem.fast_frames = BytesToFrames(fast_bytes);
  m.mem.capacity_frames = BytesToFrames(capacity_bytes);
  m.mem.fast_latency = kDramLatency;
  m.mem.capacity_latency = kNvmLatency;
  return m;
}

MachineConfig MakeCxlMachine(uint64_t fast_bytes, uint64_t capacity_bytes) {
  MachineConfig m = MakeNvmMachine(fast_bytes, capacity_bytes);
  m.mem.capacity_latency = kCxlLatency;
  return m;
}

MachineConfig MakeDramOnlyMachine(uint64_t bytes) {
  MachineConfig m;
  m.mem.fast_frames = BytesToFrames(bytes);
  m.mem.capacity_frames = kSubpagesPerHuge;  // minimal, unused
  m.mem.fast_latency = kDramLatency;
  m.mem.capacity_latency = kDramLatency;
  return m;
}

Engine::Engine(const MachineConfig& machine, TieringPolicy& policy,
               const EngineOptions& options)
    : options_(options),
      costs_(machine.costs),
      mem_(machine.mem),
      tlb_(machine.tlb),
      policy_(policy),
      rng_(options.seed),
      migration_budget_(machine.costs.migrate_bandwidth_pages_per_ms,
                        machine.costs.migrate_burst_pages),
      fault_injector_(options.faults, options.seed),
      ctx_{mem_, tlb_, costs_, metrics_.cpu, rng_, migration_budget_,
           &fault_injector_},
      next_tick_ns_(options.tick_quantum_ns),
      next_snapshot_ns_(options.snapshot_interval_ns != 0
                            ? options.snapshot_interval_ns
                            : UINT64_MAX),
      trace_(options.trace) {
  UpdateNextEvent();
  metrics_.cores = machine.cores;
  metrics_.cpu_contention = options.cpu_contention;
  mem_.AttachTlb(&tlb_);
  mem_.AttachClock(&now_ns_);
  mem_.AttachFaults(&fault_injector_);
  migration_budget_.AttachFaults(&fault_injector_);
  if (fault_injector_.enabled() &&
      options_.faults.site(FaultSite::kTierShrink).active()) {
    const double frames = static_cast<double>(machine.mem.fast_frames);
    fault_shrink_step_frames_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(frames * options_.faults.tier_shrink_step));
    fault_shrink_cap_frames_ =
        static_cast<uint64_t>(frames * options_.faults.tier_shrink_cap);
  }
}

Metrics Engine::Run(Workload& workload) {
  App app(*this);
  if (!started_) {
    started_ = true;
    ctx_.now_ns = now_ns_;
    policy_.Init(ctx_);
    DrainPendingAppTime();
    workload.Setup(app, rng_);
    DrainPendingAppTime();
  }

  while (metrics_.accesses < options_.max_accesses) {
    if (!workload.Step(app, rng_)) {
      break;
    }
    if (now_ns_ >= next_checkpoint_ns_) [[unlikely]] {
      // Step boundaries are the checkpoint safe points: no migration, fault
      // handler, or policy hook is mid-flight. Skip ahead like the tick
      // schedule so a stalled app writes one snapshot, not a burst.
      next_checkpoint_ns_ = now_ns_ - now_ns_ % checkpoint_interval_ns_ +
                            checkpoint_interval_ns_;
      checkpoint_fn_();
    }
  }

  metrics_.app_ns = now_ns_;
  metrics_.tlb = tlb_.stats();
  metrics_.migration = mem_.migration_stats();
  metrics_.faults = fault_injector_.stats();
  metrics_.final_rss_pages = mem_.rss_pages();
  metrics_.peak_rss_pages = std::max(metrics_.peak_rss_pages, mem_.rss_pages());
  metrics_.final_fast_used_pages = mem_.fast_tier_pages();
  metrics_.final_huge_ratio = mem_.huge_page_ratio();
  if (options_.audit != nullptr) {
    options_.audit->OnRunEnd(*this);
  }
  return metrics_;
}

void Engine::DrainPendingAppTime() {
  if (ctx_.pending_app_ns != 0) {
    now_ns_ += ctx_.pending_app_ns;
    metrics_.critical_path_ns += ctx_.pending_app_ns;
    ctx_.pending_app_ns = 0;
  }
}

void Engine::DoAccess(Vaddr addr, bool is_write) {
  // The trace check is hoisted out of the per-access pipeline: DoAccessImpl
  // (and the batched path, which bypasses this wrapper entirely) never
  // re-tests it.
  if (trace_ != nullptr) [[unlikely]] {
    trace_->RecordAccess(addr, is_write);
  }
  DoAccessImpl(addr, is_write);
}

void Engine::DoAccessImpl(Vaddr addr, bool is_write) {
  const Vpn vpn = VpnOf(addr);
  PageIndex index = mem_.Lookup(vpn);
  if (index == kInvalidPage) {
    // Demand fault: a split freed this (then all-zero) subpage earlier.
    ctx_.now_ns = now_ns_;
    AllocOptions opts = policy_.PlacementFor(ctx_, kPageSize, /*use_thp=*/false);
    opts.use_thp = false;
    index = mem_.DemandFault(vpn, opts);
    now_ns_ += costs_.minor_fault_ns + costs_.alloc_page_ns;
    policy_.OnPageAllocated(ctx_, index, mem_.page(index));
    DrainPendingAppTime();
  }
  PageInfo& page = mem_.page(index);
  const PageKind kind = mem_.kind_of(index);

  // Address translation.
  uint64_t ns;
  if (tlb_.Access(vpn, kind)) {
    ns = costs_.tlb_hit_ns;
  } else {
    ns = kind == PageKind::kHuge ? costs_.walk_huge_ns : costs_.walk_base_ns;
  }

  // Memory access at the page's tier.
  const TierId tier = mem_.tier_of(index);
  const TierLatency& lat = mem_.tier(tier).latency();
  ns += is_write ? lat.store_ns : lat.load_ns;

  // Ground-truth subpage bookkeeping (the kernel knows written pages exactly;
  // splits free never-written subpages).
  if (kind == PageKind::kHuge) {
    mem_.NoteSubpageAccess(page, SubpageIndexOf(vpn), is_write);
  }

  // Branch-free counter deltas (bool promotes to 0/1).
  ++metrics_.accesses;
  metrics_.stores += is_write;
  metrics_.loads += !is_write;
  const bool fast = tier == TierId::kFast;
  metrics_.fast_accesses += fast;
  metrics_.capacity_accesses += !fast;
  ++window_accesses_;
  window_fast_ += fast;

  now_ns_ += ns;
  ctx_.now_ns = now_ns_;
  policy_.OnAccess(ctx_, index, page, Access{addr, is_write});
  DrainPendingAppTime();

  if (now_ns_ >= next_event_ns_) {
    MaybeTickAndSnapshot();
  }
}

void Engine::DoAccessRun(Vaddr addr, uint64_t count, uint64_t stride,
                         bool is_write) {
  if (trace_ != nullptr) [[unlikely]] {
    // Trace files record the exact per-access event stream: replay scalar.
    for (uint64_t i = 0; i < count; ++i) {
      DoAccess(addr, is_write);
      addr += stride;
    }
    return;
  }
  while (count > 0) {
    const Vpn vpn = VpnOf(addr);
    // Same-page prefix of the remaining run (stride 0 repeats one address).
    uint64_t k = count;
    if (stride != 0) {
      const uint64_t bytes_left = ((vpn + 1) << kPageShift) - addr;
      k = std::min(count, (bytes_left + stride - 1) / stride);
    }
    const PageIndex index = mem_.Lookup(vpn);
    uint64_t m = 0;
    if (index != kInvalidPage && k > 1) {
      // How many upcoming accesses the policy can provably absorb (for
      // sampler-gated policies: pure countdown decrements, no sample due).
      m = std::min(k, policy_.RunAbsorbLimit(ctx_, is_write));
    }
    if (m <= 1) {
      // Demand fault, page boundary, non-batchable policy, or a sample due on
      // the very next access: one exact scalar access, then re-evaluate.
      DoAccessImpl(addr, is_write);
      addr += stride;
      --count;
      continue;
    }

    PageInfo& page = mem_.page(index);
    const PageKind kind = mem_.kind_of(index);
    // First access of the segment probes (and on a miss fills) the TLB
    // exactly like the scalar path. Accesses 2..m then re-touch the same
    // entry of a direct-mapped TLB with nothing in between: guaranteed hits
    // at a constant per-access cost.
    uint64_t first_ns;
    if (tlb_.Access(vpn, kind)) {
      first_ns = costs_.tlb_hit_ns;
    } else {
      first_ns = kind == PageKind::kHuge ? costs_.walk_huge_ns : costs_.walk_base_ns;
    }
    const TierId tier = mem_.tier_of(index);
    const TierLatency& lat = mem_.tier(tier).latency();
    const uint64_t access_ns = is_write ? lat.store_ns : lat.load_ns;
    first_ns += access_ns;
    const uint64_t step_ns = costs_.tlb_hit_ns + access_ns;

    // Event ordering: the scalar loop checks the tick/snapshot deadline after
    // every access, so no interior access may land past it. Cap the segment
    // at the first access whose post-access timestamp reaches the deadline —
    // that access is still part of the segment (counters first, then the
    // deadline check fires), matching scalar order bit for bit.
    const uint64_t t1 = now_ns_ + first_ns;
    if (t1 >= next_event_ns_) {
      m = 1;
    } else if (step_ns > 0) {
      const uint64_t r = next_event_ns_ - t1;  // >= 1
      m = std::min(m, 2 + (r - 1) / step_ns);
    }

    if (kind == PageKind::kHuge) {
      // Idempotent per (subpage, is_write): one call == m scalar calls.
      mem_.NoteSubpageAccess(page, SubpageIndexOf(vpn), is_write);
    }
    tlb_.CountRepeatHits(kind, m - 1);
    metrics_.accesses += m;
    (is_write ? metrics_.stores : metrics_.loads) += m;
    const bool fast = tier == TierId::kFast;
    (fast ? metrics_.fast_accesses : metrics_.capacity_accesses) += m;
    window_accesses_ += m;
    window_fast_ += fast ? m : 0;

    now_ns_ += first_ns + (m - 1) * step_ns;
    ctx_.now_ns = now_ns_;
    policy_.AbsorbRun(ctx_, index, page, Access{addr, is_write}, m);
    SIM_DCHECK(ctx_.pending_app_ns == 0);

    addr += m * stride;
    count -= m;

    if (now_ns_ >= next_event_ns_) {
      MaybeTickAndSnapshot();
    }
  }
}

void Engine::UpdateNextEvent() {
  next_event_ns_ = std::min(next_tick_ns_, next_snapshot_ns_);
}

void Engine::EnableCheckpoints(uint64_t interval_ns, std::function<void()> fn) {
  SIM_CHECK_GT(interval_ns, 0u);
  SIM_CHECK(options_.trace == nullptr);  // trace replay cannot resume mid-file
  checkpoint_interval_ns_ = interval_ns;
  checkpoint_fn_ = std::move(fn);
  next_checkpoint_ns_ = now_ns_ - now_ns_ % interval_ns + interval_ns;
}

namespace {
constexpr uint32_t kSectionEngine = 0x454e4753;  // "ENGS"
}  // namespace

void Engine::SaveState(StateWriter& w) const {
  w.Section(kSectionEngine);
  w.Bool(started_);
  w.U64(now_ns_);
  w.U64(next_tick_ns_);
  w.U64(next_snapshot_ns_);
  w.U64(fault_shrunk_frames_);
  w.U64(window_accesses_);
  w.U64(window_fast_);
  w.U64(window_start_ns_);
  w.U64(ctx_.pending_app_ns);
  rng_.SaveState(w);
  migration_budget_.SaveState(w);
  fault_injector_.SaveState(w);
  tlb_.SaveState(w);
  w.Str(metrics_.ToJson());
  mem_.SaveState(w);
}

void Engine::LoadState(StateReader& r) {
  r.Section(kSectionEngine);
  started_ = r.Bool();
  now_ns_ = r.U64();
  next_tick_ns_ = r.U64();
  next_snapshot_ns_ = r.U64();
  fault_shrunk_frames_ = r.U64();
  window_accesses_ = r.U64();
  window_fast_ = r.U64();
  window_start_ns_ = r.U64();
  ctx_.pending_app_ns = r.U64();
  rng_.LoadState(r);
  migration_budget_.LoadState(r);
  fault_injector_.LoadState(r);
  tlb_.LoadState(r);
  const std::string metrics_json = r.Str();
  if (r.ok()) {
    JsonValue v;
    Metrics restored;
    if (!JsonValue::Parse(metrics_json, &v, nullptr) ||
        !Metrics::FromJson(v, &restored)) {
      r.Fail();
      return;
    }
    metrics_ = std::move(restored);
  }
  mem_.LoadState(r);
  ctx_.now_ns = now_ns_;
  UpdateNextEvent();
}

void Engine::MaybeShrinkFastTier() {
  if (fault_shrunk_frames_ >= fault_shrink_cap_frames_) {
    return;  // cumulative cap reached; the site stops rolling entirely
  }
  if (!fault_injector_.ShouldInject(FaultSite::kTierShrink, now_ns_)) {
    return;
  }
  const uint64_t want = std::min(fault_shrink_step_frames_,
                                 fault_shrink_cap_frames_ - fault_shrunk_frames_);
  fault_shrunk_frames_ += mem_.ShrinkTier(TierId::kFast, want);
}

void Engine::MaybeTickAndSnapshot() {
  if (now_ns_ >= next_tick_ns_) {
    ctx_.now_ns = now_ns_;
    if (fault_shrink_cap_frames_ != 0) [[unlikely]] {
      MaybeShrinkFastTier();
    }
    policy_.Tick(ctx_);
    DrainPendingAppTime();
    // Skip ahead if the app stalled far past several quanta.
    next_tick_ns_ = std::max(next_tick_ns_ + options_.tick_quantum_ns,
                             now_ns_ - now_ns_ % options_.tick_quantum_ns +
                                 options_.tick_quantum_ns);
    metrics_.peak_rss_pages = std::max(metrics_.peak_rss_pages, mem_.rss_pages());
    if (options_.audit != nullptr) {
      options_.audit->OnTick(*this);
    }
  }
  if (now_ns_ >= next_snapshot_ns_) {
    TakeSnapshot();
    // Skip ahead like the tick path: a long app stall must not trigger a
    // burst of stale-window snapshots on the following accesses.
    const uint64_t interval = options_.snapshot_interval_ns;
    next_snapshot_ns_ =
        std::max(next_snapshot_ns_ + interval,
                 now_ns_ - now_ns_ % interval + interval);
  }
  UpdateNextEvent();
}

void Engine::TakeSnapshot() {
  TimelinePoint point;
  point.t_ns = now_ns_;
  ctx_.now_ns = now_ns_;
  point.classified = policy_.Classify(ctx_);
  point.fast_used_pages = mem_.fast_tier_pages();
  point.rss_pages = mem_.rss_pages();
  const uint64_t window_ns = now_ns_ - window_start_ns_;
  point.window_fast_ratio =
      window_accesses_ == 0 ? 0.0
                            : static_cast<double>(window_fast_) /
                                  static_cast<double>(window_accesses_);
  point.window_mops = window_ns == 0 ? 0.0
                                     : static_cast<double>(window_accesses_) * 1e3 /
                                           static_cast<double>(window_ns);
  metrics_.timeline.push_back(point);
  window_accesses_ = 0;
  window_fast_ = 0;
  window_start_ns_ = now_ns_;
}

Vaddr Engine::DoAlloc(uint64_t bytes, bool use_thp) {
  ctx_.now_ns = now_ns_;
  AllocOptions opts = policy_.PlacementFor(ctx_, bytes, use_thp);
  opts.use_thp = use_thp && opts.use_thp;
  const Vaddr start = mem_.AllocateRegion(bytes, opts);
  const Vpn start_vpn = VpnOf(start);
  const uint64_t num_pages = mem_.RegionAt(start)->second;
  for (Vpn vpn = start_vpn; vpn < start_vpn + num_pages;) {
    const PageIndex index = mem_.Lookup(vpn);
    SIM_DCHECK(index != kInvalidPage);
    PageInfo& page = mem_.page(index);
    policy_.OnPageAllocated(ctx_, index, page);
    now_ns_ += costs_.alloc_page_ns * page.size_pages();
    vpn += page.size_pages();
  }
  DrainPendingAppTime();
  if (options_.trace != nullptr) {
    options_.trace->RecordAlloc(bytes, opts.use_thp, start);
  }
  return start;
}

void Engine::DoFree(Vaddr start) {
  if (options_.trace != nullptr) {
    options_.trace->RecordFree(start);
  }
  ctx_.now_ns = now_ns_;
  const auto region = mem_.RegionAt(start);
  SIM_CHECK(region.has_value());
  const Vpn start_vpn = region->first;
  const uint64_t num_pages = region->second;
  // Notify the policy about each page before the region dies.
  for (Vpn vpn = start_vpn; vpn < start_vpn + num_pages;) {
    const PageIndex index = mem_.Lookup(vpn);
    if (index == kInvalidPage) {
      ++vpn;  // hole left by a split
      continue;
    }
    PageInfo& page = mem_.page(index);
    policy_.OnPageFreed(ctx_, index, page);
    vpn += page.size_pages();
  }
  mem_.FreeRegion(start);
  DrainPendingAppTime();
}

// --- App facade ---------------------------------------------------------------

Vaddr App::Alloc(uint64_t bytes, bool use_thp) { return engine_.DoAlloc(bytes, use_thp); }
void App::Free(Vaddr start) { engine_.DoFree(start); }
void App::Read(Vaddr addr) { engine_.DoAccess(addr, /*is_write=*/false); }
void App::Write(Vaddr addr) { engine_.DoAccess(addr, /*is_write=*/true); }
void App::ReadRun(Vaddr addr, uint64_t count, uint64_t stride) {
  engine_.DoAccessRun(addr, count, stride, /*is_write=*/false);
}
void App::WriteRun(Vaddr addr, uint64_t count, uint64_t stride) {
  engine_.DoAccessRun(addr, count, stride, /*is_write=*/true);
}
uint64_t App::now_ns() const { return engine_.now_ns(); }
uint64_t App::accesses_issued() const { return engine_.accesses(); }

}  // namespace memtis
