// Engine: the deterministic virtual-time simulation loop.
//
// Drives a Workload against a MemorySystem under a TieringPolicy:
//   access -> page-table lookup (demand fault if a split left a hole) ->
//   TLB -> tier latency -> policy hook -> periodic daemon ticks/snapshots.
// All time is virtual nanoseconds accumulated from the cost model, so runs are
// bit-for-bit reproducible for a given seed.

#ifndef MEMTIS_SIM_SRC_SIM_ENGINE_H_
#define MEMTIS_SIM_SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/common/rng.h"
#include "src/fault/fault.h"
#include "src/mem/memory_system.h"
#include "src/mem/tlb.h"
#include "src/sim/cost_model.h"
#include "src/sim/metrics.h"
#include "src/sim/policy.h"
#include "src/sim/workload.h"

namespace memtis {

class TraceWriter;
class Engine;

// Observation hook driven by the engine: OnTick fires after every daemon tick,
// OnRunEnd after each Run() returns (with final metrics filled in). The audit
// layer (src/audit/) implements this to run invariant checks and record
// per-epoch telemetry. Implementations MUST be observation-only — calling
// anything that mutates simulation state (allocations, migrations, token
// refills) would break the bit-for-bit reproducibility the audit layer exists
// to certify; tests/differential_test.cc enforces this.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void OnTick(Engine& engine) { (void)engine; }
  virtual void OnRunEnd(Engine& engine) { (void)engine; }
};

struct MachineConfig {
  MemoryConfig mem;
  TlbConfig tlb;
  CostParams costs;
  uint32_t cores = 20;
};

// Convenience builders for the paper's tier setups.
MachineConfig MakeNvmMachine(uint64_t fast_bytes, uint64_t capacity_bytes);
MachineConfig MakeCxlMachine(uint64_t fast_bytes, uint64_t capacity_bytes);
MachineConfig MakeDramOnlyMachine(uint64_t bytes);

struct EngineOptions {
  uint64_t max_accesses = 10'000'000;
  // Virtual-time granularity at which the policy's background daemons get to
  // run (the policy decides internally what is due).
  uint64_t tick_quantum_ns = 20'000;
  // 0 disables timeline snapshots.
  uint64_t snapshot_interval_ns = 0;
  // Daemon CPU displaces app CPU (paper runs app threads on all cores).
  bool cpu_contention = true;
  uint64_t seed = 42;
  // Optional access-trace recording (see src/trace/trace.h). Not owned.
  TraceWriter* trace = nullptr;
  // Optional audit/observability hook (see src/audit/). Not owned.
  EngineObserver* audit = nullptr;
  // Fault-injection schedule (see src/fault/). The default (no active site)
  // leaves every injection point inert and the run byte-identical to a
  // fault-free build.
  FaultPlan faults;
};

class Engine {
 public:
  Engine(const MachineConfig& machine, TieringPolicy& policy,
         const EngineOptions& options);

  // Runs the workload to natural completion or the access budget and returns
  // the collected metrics. May be called again (with a raised budget via
  // set_max_accesses) to continue the same run — used by phase analyses.
  Metrics Run(Workload& workload);

  void set_max_accesses(uint64_t max_accesses) { options_.max_accesses = max_accesses; }

  // --- App-facing operations (used via the App facade) -----------------------
  void DoAccess(Vaddr addr, bool is_write);
  // Batched replay: `count` accesses starting at `addr`, advancing by `stride`
  // bytes each. Coalesces same-page runs (one lookup/TLB probe/latency fetch
  // per run, bulk counter deltas, sampler absorption) and falls back to the
  // scalar path at page boundaries, demand faults, sample deliveries, and tick
  // deadlines — metrics, audit documents, and traces are bit-identical to
  // issuing `count` DoAccess calls.
  void DoAccessRun(Vaddr addr, uint64_t count, uint64_t stride, bool is_write);
  Vaddr DoAlloc(uint64_t bytes, bool use_thp);
  void DoFree(Vaddr start);

  uint64_t now_ns() const { return now_ns_; }
  uint64_t accesses() const { return metrics_.accesses; }

  MemorySystem& mem() { return mem_; }
  Tlb& tlb() { return tlb_; }
  TieringPolicy& policy() { return policy_; }
  Metrics& metrics() { return metrics_; }
  PolicyContext& ctx() { return ctx_; }
  const FaultInjector& faults() const { return fault_injector_; }

  // --- Checkpointing (src/snapshot/) ------------------------------------------
  //
  // EnableCheckpoints arms an observation-only hook that fires at the first
  // Step() boundary at or past each multiple of `interval_ns` of virtual
  // time (skip-ahead like the tick schedule, so a long stall produces one
  // checkpoint, not a burst). The hook must not touch simulation state:
  // checkpointing on vs off stays byte-identical. Call it again after
  // LoadState to re-derive the next deadline from the restored clock.
  void EnableCheckpoints(uint64_t interval_ns, std::function<void()> fn);

  // Serializes / restores the engine-owned mutable state: clocks, RNG
  // stream, metrics (lossless JSON codec), migration budget, fault-injector
  // cursors, TLB ledger, and the full MemorySystem. Policy and workload
  // state are serialized by the caller via their own hooks. LoadState
  // assumes `this` was freshly constructed from the same MachineConfig,
  // EngineOptions, and policy; mismatches latch the reader's error flag.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  void DoAccessImpl(Vaddr addr, bool is_write);
  void DrainPendingAppTime();
  void MaybeTickAndSnapshot();
  void TakeSnapshot();
  void MaybeShrinkFastTier();

  EngineOptions options_;
  CostParams costs_;
  MemorySystem mem_;
  Tlb tlb_;
  TieringPolicy& policy_;
  Rng rng_;
  Metrics metrics_;
  MigrationBudget migration_budget_;
  FaultInjector fault_injector_;
  PolicyContext ctx_;

  void UpdateNextEvent();

  bool started_ = false;
  uint64_t now_ns_ = 0;
  uint64_t next_tick_ns_;
  uint64_t next_snapshot_ns_;  // UINT64_MAX when snapshots are disabled
  // min(next_tick_ns_, next_snapshot_ns_): the access hot path compares
  // against this single deadline instead of re-evaluating both schedules.
  uint64_t next_event_ns_;
  TraceWriter* trace_;  // cached options_.trace (hoists the per-access load)
  // kTierShrink bookkeeping: frames pinned so far and the plan's per-step /
  // cumulative-cap sizes resolved against the fast tier (0 when inert).
  uint64_t fault_shrunk_frames_ = 0;
  uint64_t fault_shrink_step_frames_ = 0;
  uint64_t fault_shrink_cap_frames_ = 0;
  uint64_t window_accesses_ = 0;
  uint64_t window_fast_ = 0;
  uint64_t window_start_ns_ = 0;
  // Checkpoint hook schedule (UINT64_MAX = disabled; one compare per Step).
  uint64_t checkpoint_interval_ns_ = 0;
  uint64_t next_checkpoint_ns_ = UINT64_MAX;
  std::function<void()> checkpoint_fn_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_SIM_ENGINE_H_
