// CPU-time accounting for background daemons.
//
// The simulated app runs with as many threads as the machine has cores (the
// paper stresses all 20 cores), so daemon CPU time displaces app progress.
// Each daemon charges its busy time here; at the end of a run the engine
// inflates app time by the daemons' aggregate core share.

#ifndef MEMTIS_SIM_SRC_SIM_CPU_ACCOUNT_H_
#define MEMTIS_SIM_SRC_SIM_CPU_ACCOUNT_H_

#include <array>
#include <cstdint>

namespace memtis {

enum class DaemonKind : uint8_t {
  kSampler = 0,   // ksampled / HeMem sampling thread
  kMigrator = 1,  // kmigrated / background migration
  kScanner = 2,   // page-table scanning daemons
  kCount = 3,
};

class CpuAccount {
 public:
  void Charge(DaemonKind kind, uint64_t ns) { busy_[static_cast<int>(kind)] += ns; }

  uint64_t busy(DaemonKind kind) const { return busy_[static_cast<int>(kind)]; }

  uint64_t total_busy() const {
    uint64_t sum = 0;
    for (uint64_t b : busy_) {
      sum += b;
    }
    return sum;
  }

  // Fraction of one core a daemon used over `elapsed_ns` of virtual time.
  double core_share(DaemonKind kind, uint64_t elapsed_ns) const {
    return elapsed_ns == 0 ? 0.0
                           : static_cast<double>(busy(kind)) /
                                 static_cast<double>(elapsed_ns);
  }

  template <typename Writer>
  void SaveState(Writer& w) const {
    for (uint64_t b : busy_) w.U64(b);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    for (uint64_t& b : busy_) b = r.U64();
  }

 private:
  std::array<uint64_t, static_cast<int>(DaemonKind::kCount)> busy_{};
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_SIM_CPU_ACCOUNT_H_
