// TieringPolicy: the interface every memory-tiering system implements.
//
// The engine resolves each access to a page, charges translation + tier
// latency, then invokes the policy's per-access hook. Policies do their
// tracking there (reference bits, PEBS sampling...), perform background work
// in Tick(), and steer allocation placement via PlacementFor(). Critical-path
// costs (fault-handler migrations, hint faults) are charged with
// PolicyContext::ChargeApp; background work with ChargeDaemon.

#ifndef MEMTIS_SIM_SRC_SIM_POLICY_H_
#define MEMTIS_SIM_SRC_SIM_POLICY_H_

#include <cstdint>
#include <string_view>

#include "src/common/rng.h"
#include "src/mem/memory_system.h"
#include "src/mem/tlb.h"
#include "src/sim/cost_model.h"
#include "src/sim/cpu_account.h"
#include "src/sim/metrics.h"
#include "src/sim/migration_budget.h"

namespace memtis {

struct PolicyContext {
  MemorySystem& mem;
  Tlb& tlb;
  const CostParams& costs;
  CpuAccount& cpu;
  Rng& rng;
  MigrationBudget& migration_budget;
  // The run's fault injector (src/fault/); nullptr in bare test contexts.
  // Policies that own a PebsSampler attach it here during Init.
  FaultInjector* faults = nullptr;
  uint64_t now_ns = 0;

  // Critical-path time the policy wants charged to the app for the current
  // event; the engine drains this after each hook.
  uint64_t pending_app_ns = 0;

  void ChargeApp(uint64_t ns) { pending_app_ns += ns; }
  void ChargeDaemon(DaemonKind kind, uint64_t ns) { cpu.Charge(kind, ns); }
};

class TieringPolicy {
 public:
  virtual ~TieringPolicy() = default;

  virtual std::string_view name() const = 0;

  // Called once before the workload starts.
  virtual void Init(PolicyContext& ctx) { (void)ctx; }

  // Called for every memory access after address translation; `page` is the
  // OS page (base or huge) backing the access.
  virtual void OnAccess(PolicyContext& ctx, PageIndex index, PageInfo& page,
                        const Access& access) = 0;

  // --- Batched replay (Engine::DoAccessRun) -----------------------------------
  //
  // A policy whose OnAccess is a provable no-op for the next k accesses of the
  // given kind (e.g. PEBS countdown decrements that cannot deliver a sample)
  // may return k here; the engine then replaces up to k consecutive same-page
  // OnAccess calls with one AbsorbRun(n). The contract is strict byte
  // identity: AbsorbRun(n) must leave the policy in exactly the state n scalar
  // OnAccess calls (each returning without side effects beyond its internal
  // countdown) would have, and must not touch ctx (no ChargeApp/ChargeDaemon,
  // no migrations). The default — absorb nothing — keeps every existing policy
  // on the scalar path.
  virtual uint64_t RunAbsorbLimit(PolicyContext& ctx, bool is_write) {
    (void)ctx;
    (void)is_write;
    return 0;
  }
  virtual void AbsorbRun(PolicyContext& ctx, PageIndex index, PageInfo& page,
                         const Access& access, uint64_t n) {
    (void)ctx;
    (void)index;
    (void)page;
    (void)access;
    (void)n;
  }

  // Page lifecycle notifications (region allocation/free, demand faults).
  virtual void OnPageAllocated(PolicyContext& ctx, PageIndex index, PageInfo& page) {
    (void)ctx;
    (void)index;
    (void)page;
  }
  virtual void OnPageFreed(PolicyContext& ctx, PageIndex index, PageInfo& page) {
    (void)ctx;
    (void)index;
    (void)page;
  }

  // Background daemon quantum; the engine calls this every
  // EngineOptions::tick_quantum_ns of virtual time. The policy runs whatever
  // daemons are due (kmigrated-style wakeups, scan intervals...).
  virtual void Tick(PolicyContext& ctx) { (void)ctx; }

  // Placement of newly allocated regions / demand faults (`bytes` is the
  // allocation size; demand faults pass kPageSize). Default: fast tier first,
  // spill to capacity.
  virtual AllocOptions PlacementFor(PolicyContext& ctx, uint64_t bytes, bool use_thp) {
    (void)ctx;
    (void)bytes;
    return AllocOptions{.preferred = TierId::kFast,
                        .allow_other_tier = true,
                        .use_thp = use_thp};
  }

  // Current hot/warm/cold classification, for timeline figures. Policies
  // without an explicit classification may return zeros.
  virtual ClassifiedSizes Classify(PolicyContext& ctx) {
    (void)ctx;
    return {};
  }

  // --- Checkpointing (src/snapshot/) ------------------------------------------
  //
  // Policies opt in by overriding all three hooks. SaveState serializes every
  // mutable field; LoadState restores them into a freshly constructed policy
  // with the same parameters after Init() ran (Init must be attach-only /
  // idempotent for checkpointable policies). Restore failures latch the
  // reader's error flag. A policy that leaves SupportsCheckpoint at the
  // default refuses checkpointed runs with a structured error up front —
  // never a snapshot that could restore unfaithfully.
  virtual bool SupportsCheckpoint() const { return false; }
  virtual void SaveState(StateWriter& w) const { (void)w; }
  virtual void LoadState(StateReader& r) { (void)r; }
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_SIM_POLICY_H_
