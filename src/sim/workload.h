// Workload interface: a synthetic application driving the simulator.
//
// Workloads allocate regions and issue accesses through the App facade, which
// routes them through the engine's access pipeline. Step() issues a batch of
// accesses and returns false when the workload's natural run is complete (the
// engine may also stop earlier at its access budget).

#ifndef MEMTIS_SIM_SRC_SIM_WORKLOAD_H_
#define MEMTIS_SIM_SRC_SIM_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "src/common/rng.h"
#include "src/mem/types.h"

namespace memtis {

class Engine;
class StateWriter;
class StateReader;

// Facade handed to workloads; forwards to the engine.
class App {
 public:
  explicit App(Engine& engine) : engine_(engine) {}

  // Allocates a region (rounded up to 2 MiB); placement is chosen by the
  // active tiering policy. Returns the start address.
  Vaddr Alloc(uint64_t bytes, bool use_thp = true);

  void Free(Vaddr start);

  // Issues one memory access (post-LLC, per the PEBS events modelled).
  void Read(Vaddr addr);
  void Write(Vaddr addr);

  // Issues `count` accesses starting at `addr`, advancing `stride` bytes per
  // access. Semantically identical to a loop of Read/Write calls; the engine
  // coalesces same-page runs for raw replay speed (see Engine::DoAccessRun).
  void ReadRun(Vaddr addr, uint64_t count, uint64_t stride);
  void WriteRun(Vaddr addr, uint64_t count, uint64_t stride);

  uint64_t now_ns() const;
  uint64_t accesses_issued() const;

  // Escape hatch for scheduler workloads (the tenant plane) that tag memory
  // ownership and attribute engine counters per tenant between batches.
  Engine& engine() const { return engine_; }

 private:
  Engine& engine_;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string_view name() const = 0;

  // Approximate footprint the workload will allocate; used to size machines.
  virtual uint64_t footprint_bytes() const = 0;

  // Allocates initial regions and performs any population phase bookkeeping.
  virtual void Setup(App& app, Rng& rng) = 0;

  // Issues a batch of accesses (typically a few hundred); returns false once
  // the workload is naturally finished.
  virtual bool Step(App& app, Rng& rng) = 0;

  // Sharded-by-range execution hook (see src/sim/sharded_engine.h): returns a
  // fresh workload covering this workload's shard `shard` of `num_shards`
  // deterministic, disjoint slices — or nullptr when the workload is not
  // range-shardable (the default). ShardSlice(0, 1) must reproduce the whole
  // workload: ShardedEngine with one shard is byte-identical to a plain
  // Engine run.
  virtual std::unique_ptr<Workload> ShardSlice(uint32_t shard,
                                               uint32_t num_shards) const {
    (void)shard;
    (void)num_shards;
    return nullptr;
  }

  // --- Checkpointing (src/snapshot/) ------------------------------------------
  //
  // Opt-in like TieringPolicy's hooks. SaveState captures the workload's
  // cursors and the base addresses of its regions; LoadState restores them
  // into a freshly constructed workload of the same (name, scale, seed) —
  // Setup() is NOT called on the restore path (the restored MemorySystem
  // already holds the regions), so LoadState must rebuild any derived
  // structures (indices, samplers) from the saved bases itself. Restore
  // failures latch the reader's error flag.
  virtual bool SupportsCheckpoint() const { return false; }
  virtual void SaveState(StateWriter& w) const { (void)w; }
  virtual void LoadState(StateReader& r) { (void)r; }
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_SIM_WORKLOAD_H_
