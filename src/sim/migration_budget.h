// Shared migration bandwidth budget.
//
// Kernel page migration has finite throughput (copy bandwidth, lock/IPI
// overhead), so a tiering system cannot move pages faster than a few hundred
// MB/s without eating the application's memory bandwidth. All background
// migration — regardless of policy — draws from this token bucket; policies
// that migrate the *right* pages win, policies that thrash stall their own
// migration pipeline (and still pay interference per moved page).

#ifndef MEMTIS_SIM_SRC_SIM_MIGRATION_BUDGET_H_
#define MEMTIS_SIM_SRC_SIM_MIGRATION_BUDGET_H_

#include <algorithm>
#include <cstdint>

namespace memtis {

class MigrationBudget {
 public:
  MigrationBudget(uint64_t pages_per_ms, uint64_t burst_pages)
      : rate_per_ms_(pages_per_ms), burst_(burst_pages), tokens_(burst_pages) {}

  // Attempts to consume `pages` tokens at virtual time `now_ns`.
  bool Consume(uint64_t now_ns, uint64_t pages) {
    Refill(now_ns);
    if (tokens_ < pages) {
      return false;
    }
    tokens_ -= pages;
    return true;
  }

  uint64_t tokens(uint64_t now_ns) {
    Refill(now_ns);
    return tokens_;
  }

 private:
  void Refill(uint64_t now_ns) {
    if (now_ns <= last_refill_ns_) {
      return;
    }
    const uint64_t earned = (now_ns - last_refill_ns_) * rate_per_ms_ / 1'000'000;
    if (earned > 0) {
      tokens_ = std::min(burst_, tokens_ + earned);
      last_refill_ns_ = now_ns;
    }
  }

  uint64_t rate_per_ms_;
  uint64_t burst_;
  uint64_t tokens_;
  uint64_t last_refill_ns_ = 0;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_SIM_MIGRATION_BUDGET_H_
