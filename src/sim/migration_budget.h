// Shared migration bandwidth budget.
//
// Kernel page migration has finite throughput (copy bandwidth, lock/IPI
// overhead), so a tiering system cannot move pages faster than a few hundred
// MB/s without eating the application's memory bandwidth. All background
// migration — regardless of policy — draws from this token bucket; policies
// that migrate the *right* pages win, policies that thrash stall their own
// migration pipeline (and still pay interference per moved page).

#ifndef MEMTIS_SIM_SRC_SIM_MIGRATION_BUDGET_H_
#define MEMTIS_SIM_SRC_SIM_MIGRATION_BUDGET_H_

#include <algorithm>
#include <cstdint>

#include "src/fault/fault.h"

namespace memtis {

class MigrationBudget {
 public:
  MigrationBudget(uint64_t pages_per_ms, uint64_t burst_pages)
      : rate_per_ms_(pages_per_ms), burst_(burst_pages), tokens_(burst_pages) {}

  // Fault injector hosting the kBudgetStarve site. Not owned; nullptr (the
  // default) disables starvation spikes.
  void AttachFaults(FaultInjector* faults) { faults_ = faults; }

  // Attempts to consume `pages` tokens at virtual time `now_ns`.
  bool Consume(uint64_t now_ns, uint64_t pages) {
    if (faults_ != nullptr &&
        faults_->ShouldInject(FaultSite::kBudgetStarve, now_ns)) {
      // Starvation spike: deny as if tokens were exhausted. Neither the
      // balance nor the refill clock moves, so the audited ledger invariant
      // (burst + credited - consumed == tokens) is untouched.
      return false;
    }
    Refill(now_ns);
    if (tokens_ < pages) {
      return false;
    }
    tokens_ -= pages;
    consumed_pages_ += pages;
    return true;
  }

  uint64_t tokens(uint64_t now_ns) {
    Refill(now_ns);
    return tokens_;
  }

  // --- Audit introspection (all side-effect free) -----------------------------
  //
  // The ledger invariant certified by src/audit/: starting balance (the burst)
  // plus every credited refill minus every consumed token equals the current
  // balance. `tokens_raw` deliberately does NOT refill: reading the bucket
  // during an audit must not change refill rounding, or auditing would perturb
  // the simulation.
  uint64_t tokens_raw() const { return tokens_; }
  uint64_t burst() const { return burst_; }
  uint64_t rate_per_ms() const { return rate_per_ms_; }
  uint64_t consumed_pages() const { return consumed_pages_; }
  uint64_t credited_pages() const { return credited_pages_; }
  uint64_t last_refill_ns() const { return last_refill_ns_; }

  // Test-only fault injection: skews the balance without touching the ledger,
  // so the auditor's ledger-balance check fires.
  void TestOnlyAdjustTokens(int64_t delta) {
    tokens_ = static_cast<uint64_t>(static_cast<int64_t>(tokens_) + delta);
  }

  // Checkpointing: rate/burst are configuration (cross-checked on load); the
  // bucket balance, refill clock, and audit ledger restore verbatim.
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U64(rate_per_ms_);
    w.U64(burst_);
    w.U64(tokens_);
    w.U64(last_refill_ns_);
    w.U64(consumed_pages_);
    w.U64(credited_pages_);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    if (r.U64() != rate_per_ms_ || r.U64() != burst_) {
      r.Fail();
      return;
    }
    tokens_ = r.U64();
    last_refill_ns_ = r.U64();
    consumed_pages_ = r.U64();
    credited_pages_ = r.U64();
  }

 private:
  void Refill(uint64_t now_ns) {
    if (now_ns <= last_refill_ns_) {
      return;
    }
    const uint64_t earned = (now_ns - last_refill_ns_) * rate_per_ms_ / 1'000'000;
    if (earned > 0) {
      const uint64_t target = std::min(burst_, tokens_ + earned);
      if (target > tokens_) {
        credited_pages_ += target - tokens_;
        tokens_ = target;
      }
      last_refill_ns_ = now_ns;
    }
  }

  uint64_t rate_per_ms_;
  uint64_t burst_;
  uint64_t tokens_;
  uint64_t last_refill_ns_ = 0;
  uint64_t consumed_pages_ = 0;
  uint64_t credited_pages_ = 0;
  FaultInjector* faults_ = nullptr;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_SIM_MIGRATION_BUDGET_H_
