#include "src/sim/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/common/check.h"

namespace memtis {

namespace {

// Rounds a frame count down to whole 2 MiB blocks, keeping at least one.
uint64_t HugeAlignFrames(uint64_t frames) {
  const uint64_t blocks = frames / kSubpagesPerHuge;
  return std::max<uint64_t>(blocks, 1) * kSubpagesPerHuge;
}

void MergeTlb(TlbStats& into, const TlbStats& from) {
  into.base_hits += from.base_hits;
  into.base_misses += from.base_misses;
  into.huge_hits += from.huge_hits;
  into.huge_misses += from.huge_misses;
  into.shootdowns += from.shootdowns;
  into.invalidated_entries += from.invalidated_entries;
}

void MergeMigration(MigrationStats& into, const MigrationStats& from) {
  into.promoted_base += from.promoted_base;
  into.promoted_huge += from.promoted_huge;
  into.demoted_base += from.demoted_base;
  into.demoted_huge += from.demoted_huge;
  into.failed_migrations += from.failed_migrations;
  into.aborted_migrations += from.aborted_migrations;
  into.splits += from.splits;
  into.collapses += from.collapses;
  into.freed_zero_subpages += from.freed_zero_subpages;
  into.demand_faults += from.demand_faults;
  into.exchanges += from.exchanges;
  into.exchanged_huge += from.exchanged_huge;
  into.failed_exchanges += from.failed_exchanges;
  into.aborted_exchanges += from.aborted_exchanges;
}

void MergeFaults(FaultStats& into, const FaultStats& from) {
  for (int s = 0; s < kNumFaultSites; ++s) {
    into.injected[s] += from.injected[s];
    into.rolls[s] += from.rolls[s];
  }
}

}  // namespace

ShardedEngine::ShardedEngine(const MachineConfig& machine,
                             PolicyFactory policy_factory,
                             const ShardedOptions& options)
    : machine_(machine),
      policy_factory_(std::move(policy_factory)),
      options_(options) {
  SIM_CHECK_GT(options_.shards, 0u);
  // Shared observers would race across concurrent shards; per-shard ones come
  // from the audit_for_shard factory.
  SIM_CHECK(options_.engine.trace == nullptr);
  SIM_CHECK(options_.engine.audit == nullptr);
}

MachineConfig ShardedEngine::SliceMachine(const MachineConfig& machine,
                                          uint32_t shards) {
  if (shards == 1) {
    // Exact identity — no huge-block rounding — so ShardedEngine(1) runs the
    // very machine a plain Engine would (part of the 1-shard byte pin).
    return machine;
  }
  MachineConfig slice = machine;
  slice.mem.fast_frames = HugeAlignFrames(machine.mem.fast_frames / shards);
  slice.mem.capacity_frames = HugeAlignFrames(machine.mem.capacity_frames / shards);
  slice.cores = std::max<uint32_t>(machine.cores / shards, 1);
  return slice;
}

Metrics ShardedEngine::Run(const Workload& workload) {
  const uint32_t n = options_.shards;
  shard_metrics_.assign(n, Metrics{});

  // Slice the workload and materialize per-shard observers up front, in shard
  // order, so factory side effects (audit session creation) are deterministic
  // regardless of worker threading.
  std::vector<std::unique_ptr<Workload>> slices(n);
  std::vector<EngineObserver*> observers(n, nullptr);
  for (uint32_t i = 0; i < n; ++i) {
    slices[i] = workload.ShardSlice(i, n);
    SIM_CHECK(slices[i] != nullptr && "workload is not range-shardable");
    if (options_.audit_for_shard) {
      observers[i] = options_.audit_for_shard(i);
    }
  }

  const MachineConfig shard_machine = SliceMachine(machine_, n);
  const uint64_t budget = options_.engine.max_accesses;
  auto run_shard = [&](uint32_t i) {
    EngineOptions opts = options_.engine;
    opts.max_accesses = budget / n + (i < budget % n ? 1 : 0);
    opts.seed = options_.engine.seed + i;
    opts.audit = observers[i];
    std::unique_ptr<TieringPolicy> policy = policy_factory_();
    Engine engine(shard_machine, *policy, opts);
    shard_metrics_[i] = engine.Run(*slices[i]);
  };

  const uint32_t workers = std::min(std::max<uint32_t>(options_.threads, 1), n);
  if (workers <= 1) {
    for (uint32_t i = 0; i < n; ++i) {
      run_shard(i);
    }
  } else {
    // Work-stealing over shard indices: which thread runs a shard never
    // affects its bytes (shards share no state), and the merge below reads
    // slots in index order.
    std::atomic<uint32_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (uint32_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          run_shard(i);
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  return MergeShardMetrics(machine_, shard_metrics_);
}

Metrics ShardedEngine::MergeShardMetrics(const MachineConfig& machine,
                                         const std::vector<Metrics>& shards) {
  SIM_CHECK(!shards.empty());
  if (shards.size() == 1) {
    // Exact identity (not even a float round-trip): the single-shard merge is
    // the shard, which is what pins ShardedEngine(1) == Engine bytes.
    return shards[0];
  }
  Metrics out;
  out.cores = machine.cores;
  out.cpu_contention = shards[0].cpu_contention;
  double huge_ratio_weighted = 0.0;
  uint64_t rss_total = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    const Metrics& m = shards[i];
    out.accesses += m.accesses;
    out.loads += m.loads;
    out.stores += m.stores;
    out.fast_accesses += m.fast_accesses;
    out.capacity_accesses += m.capacity_accesses;
    // Shards run concurrently: the merged run is as long as its slowest shard.
    out.app_ns = std::max(out.app_ns, m.app_ns);
    out.critical_path_ns += m.critical_path_ns;
    for (int d = 0; d < static_cast<int>(DaemonKind::kCount); ++d) {
      out.cpu.Charge(static_cast<DaemonKind>(d),
                     m.cpu.busy(static_cast<DaemonKind>(d)));
    }
    MergeTlb(out.tlb, m.tlb);
    MergeMigration(out.migration, m.migration);
    MergeFaults(out.faults, m.faults);
    out.final_rss_pages += m.final_rss_pages;
    out.peak_rss_pages += m.peak_rss_pages;
    out.final_fast_used_pages += m.final_fast_used_pages;
    huge_ratio_weighted +=
        m.final_huge_ratio * static_cast<double>(m.final_rss_pages);
    rss_total += m.final_rss_pages;
    SIM_CHECK(m.per_tenant.empty());  // shards never run the tenant plane
  }
  out.final_huge_ratio =
      rss_total == 0 ? shards[0].final_huge_ratio
                     : huge_ratio_weighted / static_cast<double>(rss_total);
  // Timeline: one stream ordered by (t_ns, shard). Shard order breaks ties,
  // so the merge is a total order independent of everything but the inputs.
  for (const Metrics& m : shards) {
    out.timeline.insert(out.timeline.end(), m.timeline.begin(), m.timeline.end());
  }
  std::vector<uint32_t> shard_of;
  shard_of.reserve(out.timeline.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    shard_of.insert(shard_of.end(), shards[i].timeline.size(),
                    static_cast<uint32_t>(i));
  }
  // Indices sorted by (t_ns, shard); stable w.r.t. the concatenation order.
  std::vector<size_t> order(out.timeline.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (out.timeline[a].t_ns != out.timeline[b].t_ns) {
      return out.timeline[a].t_ns < out.timeline[b].t_ns;
    }
    return shard_of[a] < shard_of[b];
  });
  std::vector<TimelinePoint> sorted;
  sorted.reserve(order.size());
  for (size_t i : order) {
    sorted.push_back(out.timeline[i]);
  }
  out.timeline = std::move(sorted);
  return out;
}

}  // namespace memtis
