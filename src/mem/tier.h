// One memory tier: a frame pool plus the latency profile of its technology.

#ifndef MEMTIS_SIM_SRC_MEM_TIER_H_
#define MEMTIS_SIM_SRC_MEM_TIER_H_

#include <cstdint>
#include <string>

#include "src/mem/buddy_allocator.h"
#include "src/mem/types.h"

namespace memtis {

// Latency profile of a memory technology in nanoseconds per access. Values
// follow the paper's setup: DRAM ~100 ns load, Optane DCPMM 300 ns load (and a
// higher store cost), emulated CXL 177 ns load.
struct TierLatency {
  uint64_t load_ns = 100;
  uint64_t store_ns = 100;
};

inline constexpr TierLatency kDramLatency{.load_ns = 100, .store_ns = 100};
inline constexpr TierLatency kNvmLatency{.load_ns = 300, .store_ns = 400};
inline constexpr TierLatency kCxlLatency{.load_ns = 177, .store_ns = 187};

class MemoryTier {
 public:
  MemoryTier(TierId id, std::string name, uint64_t num_frames, TierLatency latency)
      : id_(id), name_(std::move(name)), latency_(latency), allocator_(num_frames) {}

  TierId id() const { return id_; }
  const std::string& name() const { return name_; }
  const TierLatency& latency() const { return latency_; }

  BuddyAllocator& allocator() { return allocator_; }
  const BuddyAllocator& allocator() const { return allocator_; }

  uint64_t total_frames() const { return allocator_.total_frames(); }
  uint64_t free_frames() const { return allocator_.free_frames(); }
  uint64_t used_frames() const { return allocator_.used_frames(); }
  double usage_ratio() const {
    return static_cast<double>(used_frames()) / static_cast<double>(total_frames());
  }

 private:
  TierId id_;
  std::string name_;
  TierLatency latency_;
  BuddyAllocator allocator_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_MEM_TIER_H_
