#include "src/mem/tlb.h"

#include "src/common/check.h"

namespace memtis {

uint32_t Tlb::RoundPow2(uint32_t v) {
  SIM_CHECK_GT(v, 0u);
  uint32_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

Tlb::Tlb(const TlbConfig& config) {
  const uint32_t base_n = RoundPow2(config.base_entries);
  const uint32_t huge_n = RoundPow2(config.huge_entries);
  base_tags_.assign(base_n, 0);
  huge_tags_.assign(huge_n, 0);
  base_mask_ = base_n - 1;
  huge_mask_ = huge_n - 1;
}

bool Tlb::Access(Vpn vpn, PageKind kind) {
  if (kind == PageKind::kHuge) {
    const Vpn hvpn = vpn >> kHugeOrder;
    Vpn& tag = huge_tags_[hvpn & huge_mask_];
    if (tag == hvpn + 1) {
      ++stats_.huge_hits;
      return true;
    }
    ++stats_.huge_misses;
    tag = hvpn + 1;
    return false;
  }
  Vpn& tag = base_tags_[vpn & base_mask_];
  if (tag == vpn + 1) {
    ++stats_.base_hits;
    return true;
  }
  ++stats_.base_misses;
  tag = vpn + 1;
  return false;
}

void Tlb::Shootdown(Vpn vpn, uint64_t num_pages) {
  ++stats_.shootdowns;
  // Base entries: walk the covered vpns or the whole array, whichever is
  // smaller (a range can exceed the TLB size).
  if (num_pages >= base_tags_.size()) {
    for (auto& tag : base_tags_) {
      if (tag != 0 && tag - 1 >= vpn && tag - 1 < vpn + num_pages) {
        tag = 0;
        ++stats_.invalidated_entries;
      }
    }
  } else {
    for (uint64_t i = 0; i < num_pages; ++i) {
      Vpn& tag = base_tags_[(vpn + i) & base_mask_];
      if (tag == vpn + i + 1) {
        tag = 0;
        ++stats_.invalidated_entries;
      }
    }
  }
  const Vpn first_hvpn = vpn >> kHugeOrder;
  const Vpn last_hvpn = (vpn + num_pages - 1) >> kHugeOrder;
  for (Vpn h = first_hvpn; h <= last_hvpn; ++h) {
    Vpn& tag = huge_tags_[h & huge_mask_];
    if (tag == h + 1) {
      tag = 0;
      ++stats_.invalidated_entries;
    }
    if (h - first_hvpn >= huge_tags_.size()) {
      break;
    }
  }
}

void Tlb::Flush() {
  for (auto& tag : base_tags_) {
    tag = 0;
  }
  for (auto& tag : huge_tags_) {
    tag = 0;
  }
}

}  // namespace memtis
