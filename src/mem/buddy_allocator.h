// Binary buddy allocator for physical frames within one memory tier.
//
// Orders 0..kHugeOrder (4 KiB .. 2 MiB). Huge pages are real order-9
// allocations, so fragmentation behaves like the kernel's: once a tier is
// fragmented by base-page churn, huge allocations can fail even with enough
// total free frames — exactly the situation THP-aware policies must handle.

#ifndef MEMTIS_SIM_SRC_MEM_BUDDY_ALLOCATOR_H_
#define MEMTIS_SIM_SRC_MEM_BUDDY_ALLOCATOR_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/mem/types.h"

namespace memtis {

class BuddyAllocator {
 public:
  static constexpr int kMaxOrder = static_cast<int>(kHugeOrder);

  // num_frames is rounded down to a multiple of the largest block size so the
  // frame array tiles cleanly into order-9 blocks.
  explicit BuddyAllocator(uint64_t num_frames);

  // Allocates a block of 2^order contiguous frames; returns the first frame.
  std::optional<FrameId> Allocate(int order);

  // Frees a block previously returned by Allocate with the same order.
  void Free(FrameId frame, int order);

  // True if an allocation of the given order would currently succeed.
  bool CanAllocate(int order) const;

  uint64_t total_frames() const { return total_frames_; }
  uint64_t free_frames() const { return free_frames_; }
  uint64_t used_frames() const { return total_frames_ - free_frames_; }

  // Fraction of free memory that sits in order-kMaxOrder blocks; 1.0 means the
  // free space is fully defragmented. Diagnostic only.
  double huge_block_ratio() const;

  // Internal-consistency audit used by tests and the runtime auditor: walks
  // all free lists and checks block alignment, no overlaps, and that
  // free_frames() matches. The diagnostic variant describes the first
  // inconsistency found in `error` (unchanged when consistent).
  bool CheckConsistency() const { return CheckConsistency(nullptr); }
  bool CheckConsistency(std::string* error) const;

  // Number of free blocks currently queued at each order (walks the free
  // lists; diagnostic/observability only).
  std::array<uint64_t, kMaxOrder + 1> FreeBlockCounts() const;

  // Checkpointing. Free-list *order* matters for determinism (Allocate pops
  // the head), so links_/state_/heads are serialized verbatim rather than
  // re-derived. total_frames_ is configuration — the loader cross-checks it
  // and rejects a mismatched snapshot.
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U64(total_frames_);
    w.U64(free_frames_);
    for (FrameId head : free_head_) w.U64(head);
    for (const Block& b : links_) {
      w.U64(b.next);
      w.U64(b.prev);
    }
    w.Bytes(state_.data(), state_.size());
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    if (r.U64() != total_frames_) {
      r.Fail();
      return;
    }
    free_frames_ = r.U64();
    for (FrameId& head : free_head_) head = r.U64();
    for (Block& b : links_) {
      b.next = r.U64();
      b.prev = r.U64();
    }
    r.Bytes(state_.data(), state_.size());
  }

 private:
  struct Block {
    FrameId next;
    FrameId prev;
  };

  static constexpr FrameId kNil = static_cast<FrameId>(-1);

  void PushFree(FrameId frame, int order);
  void RemoveFree(FrameId frame, int order);

  bool IsFreeHead(FrameId frame, int order) const;

  uint64_t total_frames_ = 0;
  uint64_t free_frames_ = 0;
  // head of free list per order
  FrameId free_head_[kMaxOrder + 1];
  // link storage per frame (only meaningful while the frame heads a free block)
  std::vector<Block> links_;
  // state_[f]: 0 = not a free-block head; otherwise order + 1 of the free block
  std::vector<uint8_t> state_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_MEM_BUDDY_ALLOCATOR_H_
