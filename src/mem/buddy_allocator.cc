#include "src/mem/buddy_allocator.h"

#include "src/common/check.h"

namespace memtis {

BuddyAllocator::BuddyAllocator(uint64_t num_frames) {
  const uint64_t block = 1ULL << kMaxOrder;
  total_frames_ = num_frames / block * block;
  SIM_CHECK_GT(total_frames_, 0u);
  links_.resize(total_frames_);
  state_.assign(total_frames_, 0);
  for (auto& head : free_head_) {
    head = kNil;
  }
  for (FrameId f = 0; f < total_frames_; f += block) {
    PushFree(f, kMaxOrder);
  }
  free_frames_ = total_frames_;
}

void BuddyAllocator::PushFree(FrameId frame, int order) {
  SIM_DCHECK(state_[frame] == 0);
  state_[frame] = static_cast<uint8_t>(order + 1);
  links_[frame].prev = kNil;
  links_[frame].next = free_head_[order];
  if (free_head_[order] != kNil) {
    links_[free_head_[order]].prev = frame;
  }
  free_head_[order] = frame;
}

void BuddyAllocator::RemoveFree(FrameId frame, int order) {
  SIM_DCHECK(IsFreeHead(frame, order));
  const FrameId prev = links_[frame].prev;
  const FrameId next = links_[frame].next;
  if (prev != kNil) {
    links_[prev].next = next;
  } else {
    free_head_[order] = next;
  }
  if (next != kNil) {
    links_[next].prev = prev;
  }
  state_[frame] = 0;
}

bool BuddyAllocator::IsFreeHead(FrameId frame, int order) const {
  return frame < total_frames_ && state_[frame] == static_cast<uint8_t>(order + 1);
}

std::optional<FrameId> BuddyAllocator::Allocate(int order) {
  SIM_CHECK(order >= 0 && order <= kMaxOrder);
  int found = -1;
  for (int o = order; o <= kMaxOrder; ++o) {
    if (free_head_[o] != kNil) {
      found = o;
      break;
    }
  }
  if (found < 0) {
    return std::nullopt;
  }
  FrameId frame = free_head_[found];
  RemoveFree(frame, found);
  // Split down to the requested order, returning the lower half each time.
  while (found > order) {
    --found;
    const FrameId upper = frame + (1ULL << found);
    PushFree(upper, found);
  }
  free_frames_ -= 1ULL << order;
  return frame;
}

void BuddyAllocator::Free(FrameId frame, int order) {
  SIM_CHECK(order >= 0 && order <= kMaxOrder);
  SIM_CHECK_LT(frame, total_frames_);
  SIM_CHECK_EQ(frame & ((1ULL << order) - 1), 0u);
  SIM_CHECK_EQ(state_[frame], 0);  // double-free guard (only exact for heads)
  free_frames_ += 1ULL << order;
  while (order < kMaxOrder) {
    const FrameId buddy = frame ^ (1ULL << order);
    if (!IsFreeHead(buddy, order)) {
      break;
    }
    RemoveFree(buddy, order);
    frame = frame < buddy ? frame : buddy;
    ++order;
  }
  PushFree(frame, order);
}

bool BuddyAllocator::CanAllocate(int order) const {
  SIM_CHECK(order >= 0 && order <= kMaxOrder);
  for (int o = order; o <= kMaxOrder; ++o) {
    if (free_head_[o] != kNil) {
      return true;
    }
  }
  return false;
}

double BuddyAllocator::huge_block_ratio() const {
  if (free_frames_ == 0) {
    return 1.0;
  }
  uint64_t huge_free = 0;
  for (FrameId f = free_head_[kMaxOrder]; f != kNil; f = links_[f].next) {
    huge_free += 1ULL << kMaxOrder;
  }
  return static_cast<double>(huge_free) / static_cast<double>(free_frames_);
}

bool BuddyAllocator::CheckConsistency(std::string* error) const {
  const auto fail = [error](std::string detail) {
    if (error != nullptr) {
      *error = std::move(detail);
    }
    return false;
  };
  std::vector<uint8_t> covered(total_frames_, 0);
  uint64_t counted = 0;
  for (int order = 0; order <= kMaxOrder; ++order) {
    for (FrameId f = free_head_[order]; f != kNil; f = links_[f].next) {
      if (!IsFreeHead(f, order)) {
        return fail("frame " + std::to_string(f) + " on order-" +
                    std::to_string(order) + " free list has state " +
                    std::to_string(state_[f]));
      }
      if ((f & ((1ULL << order) - 1)) != 0) {
        return fail("misaligned order-" + std::to_string(order) + " free block at " +
                    std::to_string(f));
      }
      for (uint64_t i = 0; i < (1ULL << order); ++i) {
        if (covered[f + i]) {
          return fail("frame " + std::to_string(f + i) +
                      " covered by two free blocks");
        }
        covered[f + i] = 1;
      }
      counted += 1ULL << order;
    }
  }
  if (counted != free_frames_) {
    return fail("free lists hold " + std::to_string(counted) +
                " frames but free_frames() is " + std::to_string(free_frames_));
  }
  return true;
}

std::array<uint64_t, BuddyAllocator::kMaxOrder + 1> BuddyAllocator::FreeBlockCounts()
    const {
  std::array<uint64_t, kMaxOrder + 1> counts{};
  for (int order = 0; order <= kMaxOrder; ++order) {
    for (FrameId f = free_head_[order]; f != kNil; f = links_[f].next) {
      ++counts[order];
    }
  }
  return counts;
}

}  // namespace memtis
