// FIFO page lists used for promotion/demotion queues.
//
// Entries are PageRefs; consumers must revalidate against the current page
// generation when popping, since pages can be freed or split while queued.

#ifndef MEMTIS_SIM_SRC_MEM_PAGE_LIST_H_
#define MEMTIS_SIM_SRC_MEM_PAGE_LIST_H_

#include <deque>

#include "src/mem/types.h"

namespace memtis {

class PageList {
 public:
  void Push(PageRef ref) { queue_.push_back(ref); }

  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }

  PageRef Pop() {
    PageRef front = queue_.front();
    queue_.pop_front();
    return front;
  }

  void Clear() { queue_.clear(); }

  // Checkpointing: queue order is consumption order, so the deque is
  // serialized front to back.
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U64(queue_.size());
    for (const PageRef& ref : queue_) {
      w.U64(ref.index);
      w.U64(ref.generation);
    }
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    queue_.clear();
    const uint64_t n = r.U64();
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
      PageRef ref;
      ref.index = static_cast<PageIndex>(r.U64());
      ref.generation = static_cast<uint32_t>(r.U64());
      queue_.push_back(ref);
    }
  }

 private:
  std::deque<PageRef> queue_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_MEM_PAGE_LIST_H_
