// FIFO page lists used for promotion/demotion queues.
//
// Entries are PageRefs; consumers must revalidate against the current page
// generation when popping, since pages can be freed or split while queued.

#ifndef MEMTIS_SIM_SRC_MEM_PAGE_LIST_H_
#define MEMTIS_SIM_SRC_MEM_PAGE_LIST_H_

#include <deque>

#include "src/mem/types.h"

namespace memtis {

class PageList {
 public:
  void Push(PageRef ref) { queue_.push_back(ref); }

  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }

  PageRef Pop() {
    PageRef front = queue_.front();
    queue_.pop_front();
    return front;
  }

  void Clear() { queue_.clear(); }

 private:
  std::deque<PageRef> queue_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_MEM_PAGE_LIST_H_
