// Core address/page types shared across the simulator.
//
// The simulated machine uses x86-64-like paging: 4 KiB base pages and 2 MiB
// huge pages (512 subpages). Virtual addresses are plain 64-bit offsets into a
// single simulated address space; physical frames are 4 KiB-frame indices
// within a tier.

#ifndef MEMTIS_SIM_SRC_MEM_TYPES_H_
#define MEMTIS_SIM_SRC_MEM_TYPES_H_

#include <cstdint>

namespace memtis {

using Vaddr = uint64_t;    // byte address in the simulated virtual address space
using Vpn = uint64_t;      // 4 KiB virtual page number (Vaddr >> 12)
using FrameId = uint64_t;  // 4 KiB physical frame index within a tier

inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kPageSize = 1ULL << kPageShift;             // 4 KiB
inline constexpr uint64_t kHugeOrder = 9;                             // 2^9 subpages
inline constexpr uint64_t kSubpagesPerHuge = 1ULL << kHugeOrder;      // 512
inline constexpr uint64_t kHugePageSize = kPageSize * kSubpagesPerHuge;  // 2 MiB

enum class TierId : uint8_t {
  kFast = 0,      // e.g. local DRAM
  kCapacity = 1,  // e.g. NVM or CXL-attached memory
};
inline constexpr int kNumTiers = 2;

inline constexpr TierId OtherTier(TierId t) {
  return t == TierId::kFast ? TierId::kCapacity : TierId::kFast;
}

enum class PageKind : uint8_t {
  kBase = 0,
  kHuge = 1,
};

// Tenant owning a region/page in the co-location plane (src/tenant/). Tenant 0
// is the default owner: a run that never registers tenants is, by
// construction, a single-tenant run of tenant 0 with an unlimited quota, so
// every legacy code path stays byte-identical.
using TenantId = uint16_t;
inline constexpr TenantId kDefaultTenant = 0;

// Index of a PageInfo inside MemorySystem. Indices are recycled, so any
// reference held across page lifetime must be a PageRef (index + generation).
using PageIndex = uint32_t;
inline constexpr PageIndex kInvalidPage = static_cast<PageIndex>(-1);

struct PageRef {
  PageIndex index = kInvalidPage;
  uint32_t generation = 0;

  bool operator==(const PageRef&) const = default;
};

// One memory access issued by a workload. In keeping with the paper's PEBS
// configuration (retired LLC load misses + retired stores), the simulated
// trace represents post-cache traffic: every event reaches memory.
struct Access {
  Vaddr addr = 0;
  bool is_write = false;
};

inline constexpr Vpn VpnOf(Vaddr addr) { return addr >> kPageShift; }
inline constexpr Vpn HugeBaseVpn(Vpn vpn) { return vpn & ~(kSubpagesPerHuge - 1); }
inline constexpr uint64_t SubpageIndexOf(Vpn vpn) { return vpn & (kSubpagesPerHuge - 1); }

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_MEM_TYPES_H_
