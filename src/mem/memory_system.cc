#include "src/mem/memory_system.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/snapshot/serializer.h"

namespace memtis {

MemorySystem::MemorySystem(const MemoryConfig& config)
    : tiers_{MemoryTier(TierId::kFast, "fast", config.fast_frames, config.fast_latency),
             MemoryTier(TierId::kCapacity, "capacity", config.capacity_frames,
                        config.capacity_latency)} {
  if (config.fragmentation > 0.0) {
    SIM_CHECK_LE(config.fragmentation, 1.0);
    Rng rng(config.fragmentation_seed);
    for (MemoryTier& tier : tiers_) {
      const uint64_t huge_blocks = tier.total_frames() / kSubpagesPerHuge;
      const uint64_t to_break = static_cast<uint64_t>(
          static_cast<double>(huge_blocks) * config.fragmentation);
      // Pin one base frame inside `to_break` random huge blocks: those blocks
      // can no longer serve order-9 allocations.
      for (uint64_t i = 0; i < to_break; ++i) {
        auto frame = tier.allocator().Allocate(BuddyAllocator::kMaxOrder);
        if (!frame.has_value()) {
          break;
        }
        const uint64_t keep = rng.NextBelow(kSubpagesPerHuge);
        // Give back everything except one scattered 4 KiB frame.
        for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
          if (j != keep) {
            tier.allocator().Free(*frame + j, 0);
          }
        }
        ++pinned_frames_;
        ++pinned_per_tier_[static_cast<int>(tier.id())];
      }
    }
  }
}

PageInfo* MemorySystem::Deref(PageRef ref) {
  if (ref.index == kInvalidPage || ref.index >= pages_.size()) {
    return nullptr;
  }
  PageInfo& p = pages_[ref.index];
  if (!p.live || p.generation != ref.generation) {
    return nullptr;
  }
  return &p;
}

PageIndex MemorySystem::NewPageSlot() {
  if (!free_slots_.empty()) {
    const PageIndex index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  pages_.emplace_back();
  const PageIndex index = static_cast<PageIndex>(pages_.size() - 1);
  hot_.Resize(pages_.size());
  pages_[index].hot = &hot_;
  pages_[index].self = index;
  return index;
}

void MemorySystem::ReleasePageSlot(PageIndex index) {
  PageInfo& p = pages_[index];
  SIM_DCHECK(p.huge == nullptr);  // huge deaths must have recycled the meta
  const uint32_t next_gen = p.generation + 1;
  p = PageInfo{};
  p.generation = next_gen;
  // Re-bind the SoA back-reference (the blanket reset above cleared it) and
  // reset the slot's hot fields to the dead-slot defaults the audit certifies.
  p.hot = &hot_;
  p.self = index;
  hot_.ResetSlot(index);
  free_slots_.push_back(index);
}

std::unique_ptr<HugePageMeta> MemorySystem::AcquireHugeMeta(bool zeroed) {
  if (huge_meta_pool_.empty()) {
    ++huge_meta_allocated_;
    return std::make_unique<HugePageMeta>();
  }
  std::unique_ptr<HugePageMeta> meta = std::move(huge_meta_pool_.back());
  huge_meta_pool_.pop_back();
  if (zeroed) {
    meta->subpage_count.fill(0);
    meta->accessed.reset();
    meta->written.reset();
    meta->nonzero_subpages = 0;
  }
  return meta;
}

void MemorySystem::RecycleHugeMeta(std::unique_ptr<HugePageMeta> meta) {
  SIM_DCHECK(meta != nullptr);
  huge_meta_pool_.push_back(std::move(meta));
}

void MemorySystem::EnsurePageTable(Vpn end_vpn) {
  if (end_vpn > page_table_.size()) {
    page_table_.resize(end_vpn, kInvalidPage);
  }
}

std::optional<std::pair<TierId, FrameId>> MemorySystem::AllocFrame(
    PageKind kind, const AllocOptions& options, TenantId tenant) {
  const int order = kind == PageKind::kHuge ? BuddyAllocator::kMaxOrder : 0;
  // kAllocFail blocks only the preferred-tier attempt: the fallback below is
  // never injected, so a sized machine degrades (wrong-tier placement) rather
  // than tripping the machine-exhausted aborts in AllocateRegion/DemandFault.
  const bool preferred_blocked =
      faults_ != nullptr && faults_->ShouldInject(FaultSite::kAllocFail, now());
  // A preferred-fast placement that would push the tenant past its fast-tier
  // limit is redirected to the capacity tier. The fallback INTO fast (when the
  // preferred capacity tier is exhausted) stays ungated: denying it would OOM
  // a machine with free memory — it opens a borrow window instead (MapPage).
  bool quota_blocked = false;
  if (options.preferred == TierId::kFast &&
      !FastQuotaAllows(tenant, kind == PageKind::kHuge ? kSubpagesPerHuge : 1)) {
    quota_blocked = true;
    ++tenants_[tenant].quota_denied_allocs;
  }
  if (!preferred_blocked && !quota_blocked) {
    if (auto frame = tier(options.preferred).allocator().Allocate(order)) {
      return std::make_pair(options.preferred, *frame);
    }
  }
  if (options.allow_other_tier) {
    const TierId other = OtherTier(options.preferred);
    if (auto frame = tier(other).allocator().Allocate(order)) {
      return std::make_pair(other, *frame);
    }
  }
  return std::nullopt;
}

void MemorySystem::MapPage(PageIndex index, Vpn vpn, PageKind kind, TierId tier_id,
                           FrameId frame, TenantId tenant) {
  PageInfo& p = pages_[index];
  SIM_DCHECK(!p.live);
  SIM_DCHECK(tenant < tenants_.size());
  p.base_vpn = vpn;
  p.kind() = kind;
  p.tier() = tier_id;
  p.frame() = frame;
  p.live = true;
  p.tenant = tenant;
  p.access_count() = 0;
  p.cooling_epoch = 0;
  p.histogram_bin = 0xff;
  p.in_promotion_list = false;
  p.in_demotion_list = false;
  p.split_queued = false;
  p.alloc_time_ns = now();
  p.policy_word0 = 0;
  p.policy_word1 = 0;
  SIM_DCHECK(p.huge == nullptr);
  if (kind == PageKind::kHuge) [[unlikely]] {
    p.huge = AcquireHugeMeta();
    ++huge_pages_;  // fresh meta is all-zero: no written_subpages_ change
  }
  const uint64_t n = p.size_pages();
  EnsurePageTable(vpn + n);
  for (uint64_t i = 0; i < n; ++i) {
    SIM_DCHECK(page_table_[vpn + i] == kInvalidPage);
    page_table_[vpn + i] = index;
  }
  ++live_pages_;
  mapped_4k_ += n;
  mapped_4k_tier_[static_cast<int>(tier_id)] += n;
  tenants_[tenant].mapped_4k_tier[static_cast<int>(tier_id)] += n;
  if (tier_id == TierId::kFast) {
    TenantBorrowExtend(tenant);
  }
}

void MemorySystem::UnmapAndFree(PageIndex index) {
  PageInfo& p = pages_[index];
  SIM_DCHECK(p.live);
  const uint64_t n = p.size_pages();
  for (uint64_t i = 0; i < n; ++i) {
    page_table_[p.base_vpn + i] = kInvalidPage;
  }
  const int order = p.kind() == PageKind::kHuge ? BuddyAllocator::kMaxOrder : 0;
  tier(p.tier()).allocator().Free(p.frame(), order);
  if (tlb_ != nullptr) {
    tlb_->Shootdown(p.base_vpn, n);
  }
  --live_pages_;
  mapped_4k_ -= n;
  mapped_4k_tier_[static_cast<int>(p.tier())] -= n;
  tenants_[p.tenant].mapped_4k_tier[static_cast<int>(p.tier())] -= n;
  if (p.tier() == TierId::kFast) {
    TenantBorrowRatchet(p.tenant);
  }
  if (p.kind() == PageKind::kHuge) [[unlikely]] {
    ReleaseHugeState(p);
  }
  p.live = false;
  ReleasePageSlot(index);
}

// Out-of-line huge-page death path: keeps UnmapAndFree small enough to stay
// inlined in the base-page loops (split/collapse free 512 pages at a time).
void MemorySystem::ReleaseHugeState(PageInfo& p) {
  --huge_pages_;
  written_subpages_ -= p.huge->written.count();
  RecycleHugeMeta(std::move(p.huge));
}

Vaddr MemorySystem::AllocateRegion(uint64_t bytes, const AllocOptions& options) {
  SIM_CHECK_GT(bytes, 0u);
  // Round regions to huge-page multiples so THP layout is deterministic and
  // regions never share a huge-page span.
  const uint64_t num_pages =
      (bytes + kHugePageSize - 1) / kHugePageSize * kSubpagesPerHuge;

  // Find vpn space: first-fit in the free list, else extend the bump pointer.
  // The walk is skipped when the request exceeds max_free_range_bound_ (an
  // upper bound on the largest range) — it provably cannot succeed, so
  // placement is unchanged. A fruitless walk re-tightens the bound, keeping
  // alloc-heavy workloads from re-walking the whole list every time.
  Vpn start = 0;
  bool found = false;
  if (num_pages <= max_free_range_bound_) {
    uint64_t largest_seen = 0;
    for (auto it = free_vpn_ranges_.begin(); it != free_vpn_ranges_.end(); ++it) {
      if (it->second >= num_pages) {
        start = it->first;
        const uint64_t remaining = it->second - num_pages;
        free_vpn_ranges_.erase(it);
        if (remaining > 0) {
          free_vpn_ranges_.emplace(start + num_pages, remaining);
        }
        found = true;
        break;
      }
      largest_seen = std::max(largest_seen, it->second);
    }
    if (!found) {
      max_free_range_bound_ = largest_seen;
    }
  }
  if (!found) {
    start = vpn_bump_;
    vpn_bump_ += num_pages;
  }

  const TenantId tenant = current_tenant_;
  for (uint64_t offset = 0; offset < num_pages; offset += kSubpagesPerHuge) {
    const Vpn vpn = start + offset;
    if (options.use_thp) {
      if (auto placed = AllocFrame(PageKind::kHuge, options, tenant)) {
        MapPage(NewPageSlot(), vpn, PageKind::kHuge, placed->first, placed->second,
                tenant);
        continue;
      }
    }
    // THP disabled or no huge frame available anywhere: fall back to base pages.
    for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
      auto placed = AllocFrame(PageKind::kBase, options, tenant);
      SIM_CHECK(placed.has_value());  // machine must be sized for the workload
      MapPage(NewPageSlot(), vpn + j, PageKind::kBase, placed->first, placed->second,
              tenant);
    }
  }

  regions_.emplace(start, Region{start, num_pages, tenant});
  return start << kPageShift;
}

void MemorySystem::FreeRegion(Vaddr start) {
  const Vpn start_vpn = VpnOf(start);
  auto it = regions_.find(start_vpn);
  SIM_CHECK(it != regions_.end());
  const uint64_t num_pages = it->second.num_pages;
  for (Vpn vpn = start_vpn; vpn < start_vpn + num_pages;) {
    const PageIndex index = Lookup(vpn);
    if (index == kInvalidPage) {
      ++vpn;  // demand-zero hole left by a split
      continue;
    }
    const uint64_t n = pages_[index].size_pages();
    UnmapAndFree(index);
    vpn += n;
  }
  regions_.erase(it);

  // Return vpn space, merging with adjacent free ranges.
  Vpn free_start = start_vpn;
  uint64_t free_len = num_pages;
  auto next = free_vpn_ranges_.lower_bound(free_start);
  if (next != free_vpn_ranges_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == free_start) {
      free_start = prev->first;
      free_len += prev->second;
      free_vpn_ranges_.erase(prev);
    }
  }
  next = free_vpn_ranges_.lower_bound(free_start + free_len);
  if (next != free_vpn_ranges_.end() && next->first == free_start + free_len) {
    free_len += next->second;
    free_vpn_ranges_.erase(next);
  }
  free_vpn_ranges_.emplace(free_start, free_len);
  max_free_range_bound_ = std::max(max_free_range_bound_, free_len);
}

bool MemorySystem::InRegion(Vaddr addr) const { return RegionAt(addr).has_value(); }

std::optional<std::pair<Vpn, uint64_t>> MemorySystem::RegionAt(Vaddr addr) const {
  const Vpn vpn = VpnOf(addr);
  auto it = regions_.upper_bound(vpn);
  if (it == regions_.begin()) {
    return std::nullopt;
  }
  --it;
  if (vpn >= it->second.start_vpn + it->second.num_pages) {
    return std::nullopt;
  }
  return std::make_pair(it->second.start_vpn, it->second.num_pages);
}

PageIndex MemorySystem::DemandFault(Vpn vpn, const AllocOptions& options) {
  SIM_CHECK_EQ(Lookup(vpn), kInvalidPage);
  const Region* region = RegionContaining(vpn);
  SIM_CHECK(region != nullptr);
  const TenantId tenant = region->tenant;  // owner, even if current changed
  auto placed = AllocFrame(PageKind::kBase, options, tenant);
  SIM_CHECK(placed.has_value());
  const PageIndex index = NewPageSlot();
  MapPage(index, vpn, PageKind::kBase, placed->first, placed->second, tenant);
  ++migration_stats_.demand_faults;
  return index;
}

bool MemorySystem::Migrate(PageIndex index, TierId dst) {
  PageInfo& p = pages_[index];
  SIM_DCHECK(p.live);
  if (p.tier() == dst) {
    return true;
  }
  const TenantId tenant = p.tenant;
  // Promotion gates (demotions are never gated; the steal path's inner
  // demotions are exempt via in_steal_). Order: quota, then self-steal, then
  // the tenant's weighted promotion-bandwidth bucket.
  if (dst == TierId::kFast && !in_steal_) {
    const uint64_t need = p.size_pages();
    if (!FastQuotaAllows(tenant, need)) {
      if (!StealForPromotion(tenant, need)) {
        ++tenants_[tenant].quota_denied_promotions;
        ++migration_stats_.failed_migrations;
        return false;
      }
      ++tenants_[tenant].quota_steals;
    }
    if (!tenants_[tenant].budget.Consume(now(), need)) {
      ++tenants_[tenant].budget_denied_promotions;
      ++migration_stats_.failed_migrations;
      return false;
    }
  }
  const int order = p.kind() == PageKind::kHuge ? BuddyAllocator::kMaxOrder : 0;
  auto frame = tier(dst).allocator().Allocate(order);
  if (!frame.has_value()) {
    ++migration_stats_.failed_migrations;
    return false;
  }
  if (faults_ != nullptr &&
      faults_->ShouldInject(FaultSite::kMigrateAbort, now())) {
    // Mid-copy abort: the reserved destination frame goes back and the page
    // is untouched — still mapped at its source tier/frame, no TLB shootdown
    // (the mapping never changed). See DESIGN.md, "rollback contract".
    tier(dst).allocator().Free(*frame, order);
    ++migration_stats_.aborted_migrations;
    return false;
  }
  tier(p.tier()).allocator().Free(p.frame(), order);
  if (tlb_ != nullptr) {
    tlb_->Shootdown(p.base_vpn, p.size_pages());
  }
  const bool promotion = dst == TierId::kFast;
  if (p.kind() == PageKind::kHuge) {
    (promotion ? migration_stats_.promoted_huge : migration_stats_.demoted_huge) += 1;
  } else {
    (promotion ? migration_stats_.promoted_base : migration_stats_.demoted_base) += 1;
  }
  const uint64_t n = p.size_pages();
  mapped_4k_tier_[static_cast<int>(p.tier())] -= n;
  mapped_4k_tier_[static_cast<int>(dst)] += n;
  tenants_[tenant].mapped_4k_tier[static_cast<int>(p.tier())] -= n;
  tenants_[tenant].mapped_4k_tier[static_cast<int>(dst)] += n;
  // A promotion passed the quota gate above, so it never needs to extend the
  // borrow window (the audit invariant would flag an enforcement bug if it
  // did); a demotion shrinks fast usage and ratchets the window.
  if (!promotion) {
    TenantBorrowRatchet(tenant);
  }
  p.tier() = dst;
  p.frame() = *frame;
  return true;
}

bool MemorySystem::ExchangePages(PageIndex hot, PageIndex cold) {
  if (hot == cold) {
    ++migration_stats_.failed_exchanges;
    return false;
  }
  PageInfo& h = pages_[hot];
  PageInfo& c = pages_[cold];
  // Strict direction and matching kinds: the swap reuses both frames in
  // place, so the orders must agree, and `hot` must be the capacity-tier side.
  if (!h.live || !c.live || h.kind() != c.kind() || h.tier() != TierId::kCapacity ||
      c.tier() != TierId::kFast) {
    ++migration_stats_.failed_exchanges;
    return false;
  }
  const uint64_t n = h.size_pages();
  const TenantId hot_tenant = h.tenant;
  const TenantId cold_tenant = c.tenant;
  // A same-tenant exchange is fast-tier-neutral for its owner and skips the
  // steal-or-deny path entirely. Across tenants the hot side's owner grows by
  // n fast pages and must fit under its quota as-is — no steal, because the
  // cold page already is the eviction.
  if (hot_tenant != cold_tenant && !FastQuotaAllows(hot_tenant, n)) {
    ++tenants_[hot_tenant].quota_denied_promotions;
    ++migration_stats_.failed_exchanges;
    return false;
  }
  // The hot side is still a promotion: it draws the owner's weighted
  // promotion-bandwidth tokens exactly like Migrate (not refunded on abort,
  // matching the mid-copy-abort semantics of plain migration).
  if (!tenants_[hot_tenant].budget.Consume(now(), n)) {
    ++tenants_[hot_tenant].budget_denied_promotions;
    ++migration_stats_.failed_exchanges;
    return false;
  }
  if (faults_ != nullptr &&
      faults_->ShouldInject(FaultSite::kExchangeAbort, now())) {
    // Mid-swap abort: nothing has moved yet, so the two-sided rollback is a
    // no-op — both pages stay mapped at their original tier/frame and no TLB
    // shootdown is issued. See DESIGN.md, "exchange contract".
    ++migration_stats_.aborted_exchanges;
    return false;
  }
  // Commit: both mappings change, so both vpn spans are shot down; the frames
  // trade owners without touching the buddy allocators.
  if (tlb_ != nullptr) {
    tlb_->Shootdown(h.base_vpn, n);
    tlb_->Shootdown(c.base_vpn, n);
  }
  std::swap(h.frame(), c.frame());
  h.tier() = TierId::kFast;
  c.tier() = TierId::kCapacity;
  // Global per-tier counters are unchanged (n pages enter and leave each
  // tier); per-tenant counters move only when the owners differ.
  if (hot_tenant != cold_tenant) {
    constexpr int kFastIdx = static_cast<int>(TierId::kFast);
    constexpr int kCapIdx = static_cast<int>(TierId::kCapacity);
    tenants_[hot_tenant].mapped_4k_tier[kFastIdx] += n;
    tenants_[hot_tenant].mapped_4k_tier[kCapIdx] -= n;
    tenants_[cold_tenant].mapped_4k_tier[kFastIdx] -= n;
    tenants_[cold_tenant].mapped_4k_tier[kCapIdx] += n;
    TenantBorrowRatchet(cold_tenant);
  }
  ++migration_stats_.exchanges;
  if (h.kind() == PageKind::kHuge) {
    ++migration_stats_.exchanged_huge;
  }
  return true;
}

bool MemorySystem::StealForPromotion(TenantId tenant, uint64_t frames) {
  SIM_DCHECK(!in_steal_);
  in_steal_ = true;
  bool ok = true;
  while (!FastQuotaAllows(tenant, frames)) {
    // Deterministic victim: the tenant's coldest live fast page, ties broken
    // by lowest page slot (ForEachLivePage visits slots in order).
    PageIndex victim = kInvalidPage;
    uint64_t coldest = UINT64_MAX;
    ForEachLivePage([&](PageIndex i, PageInfo& p) {
      if (p.tenant == tenant && p.tier() == TierId::kFast && p.hotness() < coldest) {
        coldest = p.hotness();
        victim = i;
      }
    });
    if (victim == kInvalidPage || !Migrate(victim, TierId::kCapacity)) {
      ok = false;  // no same-tenant fast victim, or capacity tier is full
      break;
    }
  }
  in_steal_ = false;
  return ok;
}

void MemorySystem::TenantBorrowExtend(TenantId tenant) {
  TenantFrameStats& t = tenants_[tenant];
  if (t.fast_pages() > t.quota_frames && t.fast_pages() > t.borrow_frames) {
    t.borrow_frames = t.fast_pages();
  }
}

void MemorySystem::TenantBorrowRatchet(TenantId tenant) {
  TenantFrameStats& t = tenants_[tenant];
  if (t.borrow_frames == 0) {
    return;
  }
  if (t.fast_pages() <= t.quota_frames) {
    t.borrow_frames = 0;  // back under quota: the window closes
  } else if (t.borrow_frames > t.fast_pages()) {
    t.borrow_frames = t.fast_pages();  // tighten to current usage
  }
}

const MemorySystem::Region* MemorySystem::RegionContaining(Vpn vpn) const {
  auto it = regions_.upper_bound(vpn);
  if (it == regions_.begin()) {
    return nullptr;
  }
  --it;
  if (vpn >= it->second.start_vpn + it->second.num_pages) {
    return nullptr;
  }
  return &it->second;
}

uint64_t MemorySystem::RecountTenantMapped4k(TenantId tenant, TierId tier) const {
  uint64_t mapped = 0;
  for (const PageInfo& p : pages_) {
    if (p.live && p.tenant == tenant && p.tier() == tier) {
      mapped += p.size_pages();
    }
  }
  return mapped;
}

std::vector<Vaddr> MemorySystem::TenantRegionStarts(TenantId tenant) const {
  std::vector<Vaddr> starts;
  for (const auto& [start_vpn, region] : regions_) {
    if (region.tenant == tenant) {
      starts.push_back(start_vpn << kPageShift);
    }
  }
  return starts;
}

uint64_t MemorySystem::ShrinkTier(TierId id, uint64_t frames) {
  MemoryTier& t = tier(id);
  uint64_t pinned = 0;
  while (pinned < frames) {
    if (!t.allocator().Allocate(0).has_value()) {
      break;  // tier has no free frame left; shrink as far as possible
    }
    ++pinned;
  }
  pinned_frames_ += pinned;
  pinned_per_tier_[static_cast<int>(id)] += pinned;
  return pinned;
}

uint64_t MemorySystem::SplitHugePage(PageIndex index,
                                     const std::function<TierId(uint32_t)>& subpage_tier) {
  PageInfo& p = pages_[index];
  SIM_CHECK(p.live);
  SIM_CHECK(p.kind() == PageKind::kHuge);
  SIM_CHECK(p.huge != nullptr);

  // Snapshot what we need; the huge PageInfo dies before subpages are mapped.
  // The meta is moved out (not copied) and recycled once the subpages exist.
  const Vpn base_vpn = p.base_vpn;
  const TierId old_tier = p.tier();
  const FrameId old_frame = p.frame();
  const uint32_t cooling_epoch = p.cooling_epoch;
  const uint64_t alloc_time = p.alloc_time_ns;
  const TenantId tenant = p.tenant;  // children inherit ownership
  std::unique_ptr<HugePageMeta> meta = std::move(p.huge);

  // Unmap the huge page: clear the span, free the order-9 frame, shoot down.
  for (uint64_t i = 0; i < kSubpagesPerHuge; ++i) {
    page_table_[base_vpn + i] = kInvalidPage;
  }
  tier(old_tier).allocator().Free(old_frame, BuddyAllocator::kMaxOrder);
  if (tlb_ != nullptr) {
    tlb_->Shootdown(base_vpn, kSubpagesPerHuge);
  }
  --live_pages_;
  mapped_4k_ -= kSubpagesPerHuge;
  mapped_4k_tier_[static_cast<int>(old_tier)] -= kSubpagesPerHuge;
  tenants_[tenant].mapped_4k_tier[static_cast<int>(old_tier)] -= kSubpagesPerHuge;
  if (old_tier == TierId::kFast) {
    TenantBorrowRatchet(tenant);
  }
  --huge_pages_;
  written_subpages_ -= meta->written.count();
  pages_[index].live = false;
  ReleasePageSlot(index);

  uint64_t created = 0;
  for (uint32_t j = 0; j < kSubpagesPerHuge; ++j) {
    if (!meta->written[j]) {
      // All-zero subpage: unmap and free (paper §4.3.3). A later write demand-
      // faults a fresh page.
      ++migration_stats_.freed_zero_subpages;
      continue;
    }
    AllocOptions opts;
    opts.preferred = subpage_tier(j);
    opts.allow_other_tier = true;
    auto placed = AllocFrame(PageKind::kBase, opts, tenant);
    SIM_CHECK(placed.has_value());  // we just freed 512 frames; cannot fail
    const PageIndex child = NewPageSlot();
    MapPage(child, base_vpn + j, PageKind::kBase, placed->first, placed->second,
            tenant);
    PageInfo& cp = pages_[child];
    cp.access_count() = meta->subpage_count[j];
    cp.cooling_epoch = cooling_epoch;
    cp.alloc_time_ns = alloc_time;
    ++created;
  }
  RecycleHugeMeta(std::move(meta));
  ++migration_stats_.splits;
  return created;
}

bool MemorySystem::CollapseToHuge(Vpn huge_vpn, TierId dst) {
  SIM_CHECK_EQ(SubpageIndexOf(huge_vpn), 0u);
  // Validate: all 512 vpns are live base pages. Regions never share a huge
  // span, so all 512 belong to one tenant — the collapse result inherits it.
  uint64_t fast_base = 0;
  for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
    const PageIndex index = Lookup(huge_vpn + j);
    if (index == kInvalidPage || pages_[index].kind() != PageKind::kBase) {
      return false;
    }
    fast_base += pages_[index].tier() == TierId::kFast ? 1 : 0;
  }
  const TenantId tenant = pages_[Lookup(huge_vpn)].tenant;
  // Quota gate on the net fast-tier growth: collapsing into fast replaces
  // `fast_base` fast frames with 512, which must still fit under the limit.
  if (dst == TierId::kFast && fast_base < kSubpagesPerHuge) {
    const TenantFrameStats& t = tenants_[tenant];
    if (t.fast_pages() - fast_base + kSubpagesPerHuge > t.effective_fast_limit()) {
      ++tenants_[tenant].quota_denied_promotions;
      return false;
    }
  }
  auto frame = tier(dst).allocator().Allocate(BuddyAllocator::kMaxOrder);
  if (!frame.has_value()) {
    return false;
  }

  // Fill a pooled meta while the base pages still exist (they die before the
  // huge page can be mapped), then install it without copying. The loop below
  // overwrites every field, so skip the acquire-time zeroing.
  std::unique_ptr<HugePageMeta> huge_meta = AcquireHugeMeta(/*zeroed=*/false);
  uint64_t total_count = 0;
  uint32_t cooling_epoch = 0;
  uint32_t nonzero = 0;
  for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
    const PageIndex index = Lookup(huge_vpn + j);
    PageInfo& bp = pages_[index];
    const uint32_t c =
        static_cast<uint32_t>(std::min<uint64_t>(bp.access_count(), UINT32_MAX));
    huge_meta->subpage_count[j] = c;  // fresh meta: maintain nonzero locally
    nonzero += c != 0;
    huge_meta->accessed[j] = bp.access_count() > 0;
    huge_meta->written[j] = true;  // collapse candidates were written base pages
    total_count += bp.access_count();
    cooling_epoch = std::max(cooling_epoch, bp.cooling_epoch);
    // Free the base page (clears page table span of 1).
    UnmapAndFree(index);
  }
  huge_meta->nonzero_subpages = nonzero;

  const PageIndex index = NewPageSlot();
  MapPage(index, huge_vpn, PageKind::kHuge, dst, *frame, tenant);
  PageInfo& hp = pages_[index];
  std::swap(hp.huge, huge_meta);
  RecycleHugeMeta(std::move(huge_meta));  // the zeroed meta MapPage installed
  written_subpages_ += hp.huge->written.count();
  hp.access_count() = total_count;
  hp.cooling_epoch = cooling_epoch;
  ++migration_stats_.collapses;
  return true;
}

void MemorySystem::ClearAccessedBits() {
  for (PageInfo& p : pages_) {
    if (p.live && p.kind() == PageKind::kHuge) {
      p.huge->accessed.reset();
    }
  }
}

uint64_t MemorySystem::bloat_pages() const {
  // Never-written subpages over live huge pages, from the incremental
  // counters (RecountBloatPages is the from-scratch equivalent).
  return huge_pages_ * kSubpagesPerHuge - written_subpages_;
}

double MemorySystem::huge_page_ratio() const {
  if (mapped_4k_ == 0) {
    return 0.0;
  }
  return static_cast<double>(huge_pages_ * kSubpagesPerHuge) /
         static_cast<double>(mapped_4k_);
}

uint64_t MemorySystem::RecountMapped4kInTier(TierId id) const {
  uint64_t mapped = 0;
  for (const PageInfo& p : pages_) {
    if (p.live && p.tier() == id) {
      mapped += p.size_pages();
    }
  }
  return mapped;
}

uint64_t MemorySystem::RecountLiveHugePages() const {
  uint64_t huge = 0;
  for (const PageInfo& p : pages_) {
    if (p.live && p.kind() == PageKind::kHuge) {
      ++huge;
    }
  }
  return huge;
}

uint64_t MemorySystem::RecountWrittenSubpages() const {
  uint64_t written = 0;
  for (const PageInfo& p : pages_) {
    if (p.live && p.kind() == PageKind::kHuge) {
      written += p.huge->written.count();
    }
  }
  return written;
}

uint64_t MemorySystem::RecountBloatPages() const {
  uint64_t bloat = 0;
  for (const PageInfo& p : pages_) {
    if (p.live && p.kind() == PageKind::kHuge) {
      bloat += kSubpagesPerHuge - p.huge->written.count();
    }
  }
  return bloat;
}

bool MemorySystem::CheckConsistency(std::string* error) const {
  const auto fail = [error](std::string detail) {
    if (error != nullptr) {
      *error = std::move(detail);
    }
    return false;
  };
  uint64_t mapped = 0;
  uint64_t live = 0;
  uint64_t huge = 0;
  uint64_t written = 0;
  uint64_t mapped_tier[kNumTiers] = {0, 0};
  std::vector<uint64_t> tenant_tier(tenants_.size() * kNumTiers, 0);
  // SoA coherence: the hot arrays are sized in lockstep with the page slots,
  // every slot's back-reference points here, and dead slots hold the
  // ResetSlot defaults (so stale hot state cannot leak into a recycled slot).
  if (hot_.size() != pages_.size()) {
    return fail("hot arrays sized " + std::to_string(hot_.size()) +
                " != page slots " + std::to_string(pages_.size()));
  }
  for (PageIndex i = 0; i < pages_.size(); ++i) {
    const PageInfo& p = pages_[i];
    if (p.hot != &hot_ || p.self != i) {
      return fail("page slot " + std::to_string(i) +
                  " hot-array back-reference broken");
    }
    if (!p.live) {
      if (hot_.kind[i] != PageKind::kBase || hot_.tier[i] != TierId::kCapacity ||
          hot_.frame[i] != 0 || hot_.access_count[i] != 0) {
        return fail("dead page slot " + std::to_string(i) +
                    " holds non-default hot fields");
      }
      continue;
    }
    ++live;
    const uint64_t n = p.size_pages();
    mapped += n;
    mapped_tier[static_cast<int>(p.tier())] += n;
    if (p.tenant >= tenants_.size()) {
      return fail("page " + std::to_string(i) + " owned by unregistered tenant " +
                  std::to_string(p.tenant));
    }
    tenant_tier[p.tenant * kNumTiers + static_cast<int>(p.tier())] += n;
    for (uint64_t j = 0; j < n; ++j) {
      if (p.base_vpn + j >= page_table_.size() || page_table_[p.base_vpn + j] != i) {
        return fail("page " + std::to_string(i) + " (vpn " +
                    std::to_string(p.base_vpn) + " + " + std::to_string(j) +
                    ") not mapped back by the page table");
      }
    }
    if (p.kind() == PageKind::kHuge) {
      if (p.huge == nullptr) {
        return fail("huge page " + std::to_string(i) + " has no HugePageMeta");
      }
      ++huge;
      written += p.huge->written.count();
    }
  }
  if (mapped != mapped_4k_) {
    return fail("recounted mapped 4k pages " + std::to_string(mapped) +
                " != tracked " + std::to_string(mapped_4k_));
  }
  if (live != live_pages_) {
    return fail("recounted live pages " + std::to_string(live) + " != tracked " +
                std::to_string(live_pages_));
  }
  if (huge != huge_pages_) {
    return fail("recounted huge pages " + std::to_string(huge) + " != tracked " +
                std::to_string(huge_pages_));
  }
  if (written != written_subpages_) {
    return fail("recounted written subpages " + std::to_string(written) +
                " != tracked " + std::to_string(written_subpages_));
  }
  for (int t = 0; t < kNumTiers; ++t) {
    if (mapped_tier[t] != mapped_4k_tier_[t]) {
      return fail("recounted mapped 4k in tier " + std::to_string(t) + " " +
                  std::to_string(mapped_tier[t]) + " != tracked " +
                  std::to_string(mapped_4k_tier_[t]));
    }
  }
  // Per-tenant conservation: tracked counters match a recount, sum back to the
  // global per-tier counters, and fast usage respects quota/borrow.
  for (size_t id = 0; id < tenants_.size(); ++id) {
    const TenantFrameStats& t = tenants_[id];
    for (int tier_i = 0; tier_i < kNumTiers; ++tier_i) {
      if (tenant_tier[id * kNumTiers + tier_i] != t.mapped_4k_tier[tier_i]) {
        return fail("tenant " + std::to_string(id) + " recounted mapped 4k in tier " +
                    std::to_string(tier_i) + " " +
                    std::to_string(tenant_tier[id * kNumTiers + tier_i]) +
                    " != tracked " + std::to_string(t.mapped_4k_tier[tier_i]));
      }
    }
    if (t.fast_pages() > t.effective_fast_limit()) {
      return fail("tenant " + std::to_string(id) + " fast usage " +
                  std::to_string(t.fast_pages()) + " exceeds limit " +
                  std::to_string(t.effective_fast_limit()) + " (quota " +
                  std::to_string(t.quota_frames) + ", borrow " +
                  std::to_string(t.borrow_frames) + ")");
    }
    if (t.budget.active &&
        (t.budget.burst + t.budget.credited_pages - t.budget.consumed_pages !=
             t.budget.tokens ||
         t.budget.tokens > t.budget.burst)) {
      return fail("tenant " + std::to_string(id) + " budget ledger broken: burst " +
                  std::to_string(t.budget.burst) + " + credited " +
                  std::to_string(t.budget.credited_pages) + " - consumed " +
                  std::to_string(t.budget.consumed_pages) + " != tokens " +
                  std::to_string(t.budget.tokens));
    }
  }
  for (int tier_i = 0; tier_i < kNumTiers; ++tier_i) {
    uint64_t sum = 0;
    for (size_t id = 0; id < tenants_.size(); ++id) {
      sum += tenants_[id].mapped_4k_tier[tier_i];
    }
    if (sum != mapped_4k_tier_[tier_i]) {
      return fail("per-tenant mapped 4k in tier " + std::to_string(tier_i) +
                  " sums to " + std::to_string(sum) + " != global " +
                  std::to_string(mapped_4k_tier_[tier_i]));
    }
  }
  if (huge_meta_allocated_ != huge_meta_pool_.size() + huge_pages_) {
    return fail("huge-meta pool leak: " + std::to_string(huge_meta_allocated_) +
                " allocated != " + std::to_string(huge_meta_pool_.size()) +
                " pooled + " + std::to_string(huge_pages_) + " live");
  }
  if (mapped + pinned_frames_ != tiers_[0].used_frames() + tiers_[1].used_frames()) {
    return fail("mapped " + std::to_string(mapped) + " + pinned " +
                std::to_string(pinned_frames_) + " != used frames " +
                std::to_string(tiers_[0].used_frames() + tiers_[1].used_frames()));
  }
  std::string buddy_error;
  for (const MemoryTier& tier : tiers_) {
    if (!tier.allocator().CheckConsistency(&buddy_error)) {
      return fail(tier.name() + " tier buddy allocator: " + buddy_error);
    }
  }
  return true;
}

namespace {
// Per-slot layout tags keep the writer and loader honest about which branch
// (live vs recycled) a slot took.
constexpr uint32_t kSectionMem = 0x4d454d53;  // "MEMS"
constexpr uint32_t kSectionTenants = 0x544e5453;

void SaveTenant(StateWriter& w, const TenantFrameStats& t) {
  w.U64(t.mapped_4k_tier[0]);
  w.U64(t.mapped_4k_tier[1]);
  w.U64(t.quota_frames);
  w.U64(t.borrow_frames);
  w.U64(t.quota_denied_allocs);
  w.U64(t.quota_denied_promotions);
  w.U64(t.quota_steals);
  w.U64(t.budget_denied_promotions);
  w.Bool(t.budget.active);
  w.U64(t.budget.rate_per_ms);
  w.U64(t.budget.burst);
  w.U64(t.budget.tokens);
  w.U64(t.budget.last_refill_ns);
  w.U64(t.budget.consumed_pages);
  w.U64(t.budget.credited_pages);
}

void LoadTenant(StateReader& r, TenantFrameStats& t) {
  t.mapped_4k_tier[0] = r.U64();
  t.mapped_4k_tier[1] = r.U64();
  t.quota_frames = r.U64();
  t.borrow_frames = r.U64();
  t.quota_denied_allocs = r.U64();
  t.quota_denied_promotions = r.U64();
  t.quota_steals = r.U64();
  t.budget_denied_promotions = r.U64();
  t.budget.active = r.Bool();
  t.budget.rate_per_ms = r.U64();
  t.budget.burst = r.U64();
  t.budget.tokens = r.U64();
  t.budget.last_refill_ns = r.U64();
  t.budget.consumed_pages = r.U64();
  t.budget.credited_pages = r.U64();
}
}  // namespace

void MemorySystem::SaveState(StateWriter& w) const {
  SIM_CHECK(!in_steal_);  // checkpoints only fire at engine-loop safe points
  w.Section(kSectionMem);
  for (const MemoryTier& tier : tiers_) {
    tier.allocator().SaveState(w);
  }

  w.U64(pages_.size());
  for (PageIndex i = 0; i < pages_.size(); ++i) {
    const PageInfo& p = pages_[i];
    w.U32(p.generation);
    w.Bool(p.live);
    if (!p.live) {
      continue;
    }
    w.U64(p.base_vpn);
    w.U32(p.tenant);
    w.U32(p.cooling_epoch);
    w.U8(p.histogram_bin);
    w.Bool(p.in_promotion_list);
    w.Bool(p.in_demotion_list);
    w.Bool(p.split_queued);
    w.U64(p.alloc_time_ns);
    w.U64(p.policy_word0);
    w.U64(p.policy_word1);
    w.U8(static_cast<uint8_t>(hot_.kind[i]));
    w.U8(static_cast<uint8_t>(hot_.tier[i]));
    w.U64(hot_.frame[i]);
    w.U64(hot_.access_count[i]);
    w.Bool(p.huge != nullptr);
    if (p.huge != nullptr) {
      for (uint32_t c : p.huge->subpage_count) w.U32(c);
      const std::string accessed = p.huge->accessed.to_string();
      const std::string written = p.huge->written.to_string();
      w.Str(accessed);
      w.Str(written);
      w.U32(p.huge->nonzero_subpages);
    }
  }

  w.U64(free_slots_.size());
  for (PageIndex slot : free_slots_) w.U32(slot);

  w.U64(page_table_.size());
  for (PageIndex e : page_table_) w.U32(e);

  w.U64(live_pages_);
  w.U64(mapped_4k_);
  w.U64(huge_pages_);
  w.U64(mapped_4k_tier_[0]);
  w.U64(mapped_4k_tier_[1]);
  w.U64(written_subpages_);
  w.U64(huge_meta_pool_.size());
  w.U64(huge_meta_allocated_);
  w.U64(pinned_frames_);
  w.U64(pinned_per_tier_[0]);
  w.U64(pinned_per_tier_[1]);

  w.U64(regions_.size());
  for (const auto& [vpn, region] : regions_) {
    w.U64(vpn);
    w.U64(region.start_vpn);
    w.U64(region.num_pages);
    w.U32(region.tenant);
  }
  w.U64(free_vpn_ranges_.size());
  for (const auto& [vpn, len] : free_vpn_ranges_) {
    w.U64(vpn);
    w.U64(len);
  }
  w.U64(vpn_bump_);
  w.U64(max_free_range_bound_);

  const MigrationStats& m = migration_stats_;
  w.U64(m.promoted_base);
  w.U64(m.promoted_huge);
  w.U64(m.demoted_base);
  w.U64(m.demoted_huge);
  w.U64(m.failed_migrations);
  w.U64(m.aborted_migrations);
  w.U64(m.splits);
  w.U64(m.collapses);
  w.U64(m.freed_zero_subpages);
  w.U64(m.demand_faults);
  w.U64(m.exchanges);
  w.U64(m.exchanged_huge);
  w.U64(m.failed_exchanges);
  w.U64(m.aborted_exchanges);

  w.Section(kSectionTenants);
  w.U64(tenants_.size());
  for (const TenantFrameStats& t : tenants_) SaveTenant(w, t);
  w.U32(current_tenant_);
}

void MemorySystem::LoadState(StateReader& r) {
  r.Section(kSectionMem);
  for (MemoryTier& tier : tiers_) {
    tier.allocator().LoadState(r);
  }

  const uint64_t slots = r.U64();
  if (!r.ok() || slots > (1ull << 32)) {
    r.Fail();
    return;
  }
  pages_.clear();
  pages_.resize(slots);
  hot_ = PageHotArrays{};
  hot_.Resize(slots);
  for (PageIndex i = 0; i < slots && r.ok(); ++i) {
    PageInfo& p = pages_[i];
    p.hot = &hot_;
    p.self = i;
    p.generation = r.U32();
    p.live = r.Bool();
    if (!p.live) {
      continue;
    }
    p.base_vpn = r.U64();
    p.tenant = static_cast<TenantId>(r.U32());
    p.cooling_epoch = r.U32();
    p.histogram_bin = r.U8();
    p.in_promotion_list = r.Bool();
    p.in_demotion_list = r.Bool();
    p.split_queued = r.Bool();
    p.alloc_time_ns = r.U64();
    p.policy_word0 = r.U64();
    p.policy_word1 = r.U64();
    hot_.kind[i] = static_cast<PageKind>(r.U8());
    hot_.tier[i] = static_cast<TierId>(r.U8());
    hot_.frame[i] = r.U64();
    hot_.access_count[i] = r.U64();
    if (r.Bool()) {
      p.huge = std::make_unique<HugePageMeta>();
      for (uint32_t& c : p.huge->subpage_count) c = r.U32();
      const std::string accessed = r.Str();
      const std::string written = r.Str();
      if (accessed.size() != kSubpagesPerHuge ||
          written.size() != kSubpagesPerHuge) {
        r.Fail();
        return;
      }
      p.huge->accessed = std::bitset<kSubpagesPerHuge>(accessed);
      p.huge->written = std::bitset<kSubpagesPerHuge>(written);
      p.huge->nonzero_subpages = r.U32();
    }
  }

  const uint64_t num_free = r.U64();
  if (!r.ok() || num_free > slots) {
    r.Fail();
    return;
  }
  free_slots_.clear();
  free_slots_.reserve(num_free);
  for (uint64_t i = 0; i < num_free; ++i) {
    free_slots_.push_back(static_cast<PageIndex>(r.U32()));
  }

  const uint64_t table = r.U64();
  if (!r.ok() || table > (1ull << 40)) {
    r.Fail();
    return;
  }
  page_table_.assign(table, kInvalidPage);
  for (uint64_t i = 0; i < table && r.ok(); ++i) {
    page_table_[i] = static_cast<PageIndex>(r.U32());
  }

  live_pages_ = r.U64();
  mapped_4k_ = r.U64();
  huge_pages_ = r.U64();
  mapped_4k_tier_[0] = r.U64();
  mapped_4k_tier_[1] = r.U64();
  written_subpages_ = r.U64();
  const uint64_t pooled = r.U64();
  huge_meta_allocated_ = r.U64();
  if (!r.ok() || pooled > huge_meta_allocated_) {
    r.Fail();
    return;
  }
  huge_meta_pool_.clear();
  for (uint64_t i = 0; i < pooled; ++i) {
    huge_meta_pool_.push_back(std::make_unique<HugePageMeta>());
  }
  pinned_frames_ = r.U64();
  pinned_per_tier_[0] = r.U64();
  pinned_per_tier_[1] = r.U64();

  const uint64_t num_regions = r.U64();
  if (!r.ok() || num_regions > (1ull << 32)) {
    r.Fail();
    return;
  }
  regions_.clear();
  for (uint64_t i = 0; i < num_regions && r.ok(); ++i) {
    const Vpn key = r.U64();
    Region region;
    region.start_vpn = r.U64();
    region.num_pages = r.U64();
    region.tenant = static_cast<TenantId>(r.U32());
    regions_.emplace(key, region);
  }
  const uint64_t num_ranges = r.U64();
  if (!r.ok() || num_ranges > (1ull << 32)) {
    r.Fail();
    return;
  }
  free_vpn_ranges_.clear();
  for (uint64_t i = 0; i < num_ranges && r.ok(); ++i) {
    const Vpn key = r.U64();
    free_vpn_ranges_[key] = r.U64();
  }
  vpn_bump_ = r.U64();
  max_free_range_bound_ = r.U64();

  MigrationStats& m = migration_stats_;
  m.promoted_base = r.U64();
  m.promoted_huge = r.U64();
  m.demoted_base = r.U64();
  m.demoted_huge = r.U64();
  m.failed_migrations = r.U64();
  m.aborted_migrations = r.U64();
  m.splits = r.U64();
  m.collapses = r.U64();
  m.freed_zero_subpages = r.U64();
  m.demand_faults = r.U64();
  m.exchanges = r.U64();
  m.exchanged_huge = r.U64();
  m.failed_exchanges = r.U64();
  m.aborted_exchanges = r.U64();

  r.Section(kSectionTenants);
  const uint64_t num_tenants = r.U64();
  if (!r.ok() || num_tenants == 0 || num_tenants > 65536) {
    r.Fail();
    return;
  }
  tenants_.assign(num_tenants, TenantFrameStats{});
  for (TenantFrameStats& t : tenants_) LoadTenant(r, t);
  current_tenant_ = static_cast<TenantId>(r.U32());
  in_steal_ = false;
}

}  // namespace memtis
