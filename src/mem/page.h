// Per-page metadata.
//
// Mirrors what MEMTIS keeps in (re-purposed) struct pages: an access counter
// per OS page, plus per-subpage counters and bitsets for huge pages. Baseline
// policies store their own per-page state in the two policy scratch words,
// matching the paper's observation that each system keeps small per-page
// hotness state (reference bits, history vectors, LRU links).

#ifndef MEMTIS_SIM_SRC_MEM_PAGE_H_
#define MEMTIS_SIM_SRC_MEM_PAGE_H_

#include <array>
#include <bitset>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/mem/types.h"

namespace memtis {

// Extra metadata carried only by huge pages (the kernel version stores this in
// the compound page's unused struct pages).
struct HugePageMeta {
  // Access count per 4 KiB subpage (C_ij in the paper); cooled together with
  // the page's main counter.
  std::array<uint32_t, kSubpagesPerHuge> subpage_count{};
  // Subpages ever touched / ever written. `written` drives memory-bloat
  // accounting: never-written subpages are freed on split (paper §4.3.3).
  std::bitset<kSubpagesPerHuge> accessed;
  std::bitset<kSubpagesPerHuge> written;
  // Number of nonzero subpage_count entries. Every mutation of subpage_count
  // must keep this in sync (use SetSubpageCount or adjust explicitly): the
  // cooling scan skips the 512-entry inner loop when it is 0, which is only
  // byte-identical while this summary is exact.
  uint32_t nonzero_subpages = 0;

  // Sets one subpage counter while maintaining nonzero_subpages.
  void SetSubpageCount(uint32_t j, uint32_t count) {
    if ((subpage_count[j] != 0) != (count != 0)) {
      nonzero_subpages += count != 0 ? 1 : -1;
    }
    subpage_count[j] = count;
  }

  uint32_t RecountNonzeroSubpages() const {
    uint32_t n = 0;
    for (uint32_t c : subpage_count) {
      n += c != 0 ? 1 : 0;
    }
    return n;
  }

  uint32_t accessed_count() const { return static_cast<uint32_t>(accessed.count()); }
};

// Structure-of-arrays storage for the fields the access hot path touches on
// every event (engine pipeline: kind -> TLB, tier -> latency, counters ->
// policy). Parallel arrays indexed by PageIndex keep them densely packed —
// one byte per page for kind/tier instead of a whole PageInfo cache line —
// while the cold metadata stays in PageInfo. MemorySystem owns one instance,
// resized in lockstep with its page slots; PageInfo carries a back-reference
// so existing call sites read/write the same storage through accessors.
struct PageHotArrays {
  std::vector<PageKind> kind;
  std::vector<TierId> tier;
  std::vector<FrameId> frame;
  // Hotness counter C_i. The hotness factor H_i is derived:
  // huge page -> C_i, base page -> C_i * kSubpagesPerHuge (paper §4.1.2).
  std::vector<uint64_t> access_count;

  void Resize(size_t n) {
    kind.resize(n, PageKind::kBase);
    tier.resize(n, TierId::kCapacity);
    frame.resize(n, 0);
    access_count.resize(n, 0);
  }
  size_t size() const { return kind.size(); }

  // Dead-slot convention: released slots are reset to the defaults below so
  // the audit layer can certify the SoA state of non-live slots.
  void ResetSlot(PageIndex i) {
    kind[i] = PageKind::kBase;
    tier[i] = TierId::kCapacity;
    frame[i] = 0;
    access_count[i] = 0;
  }
};

struct PageInfo {
  Vpn base_vpn = 0;
  bool live = false;
  uint32_t generation = 0;
  // Owning tenant (kDefaultTenant outside the co-location plane). Stamped at
  // MapPage time from the owning region; split/collapse children inherit it.
  TenantId tenant = kDefaultTenant;

  // Global cooling epoch already applied to access_count (lazy cooling).
  uint32_t cooling_epoch = 0;
  // Cached histogram bin (MEMTIS); 0xff = not tracked.
  uint8_t histogram_bin = 0xff;

  // Membership flags for promotion/demotion lists (avoid duplicate entries).
  bool in_promotion_list = false;
  bool in_demotion_list = false;
  bool split_queued = false;

  // Virtual time (ns) at allocation; used for short-lived-data analyses.
  uint64_t alloc_time_ns = 0;

  // Policy-private scratch (recency bits, history vectors, timestamps...).
  uint64_t policy_word0 = 0;
  uint64_t policy_word1 = 0;

  // Present only for huge pages.
  std::unique_ptr<HugePageMeta> huge;

  // Back-reference into the owning MemorySystem's hot arrays (set once at
  // slot creation and stable for the slot's lifetime). The hot fields are
  // read/written through the accessors below; the engine's batched path reads
  // the arrays directly by index.
  PageHotArrays* hot = nullptr;
  PageIndex self = kInvalidPage;

  PageKind& kind() { return hot->kind[self]; }
  PageKind kind() const { return hot->kind[self]; }
  TierId& tier() { return hot->tier[self]; }
  TierId tier() const { return hot->tier[self]; }
  FrameId& frame() { return hot->frame[self]; }
  FrameId frame() const { return hot->frame[self]; }
  uint64_t& access_count() { return hot->access_count[self]; }
  uint64_t access_count() const { return hot->access_count[self]; }

  uint64_t size_pages() const { return kind() == PageKind::kHuge ? kSubpagesPerHuge : 1; }
  uint64_t size_bytes() const { return size_pages() * kPageSize; }

  // Hotness factor H_i per paper §4.1.2.
  uint64_t hotness() const {
    return kind() == PageKind::kHuge ? access_count()
                                     : access_count() * kSubpagesPerHuge;
  }

  PageRef ref(PageIndex index) const { return PageRef{index, generation}; }
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_MEM_PAGE_H_
