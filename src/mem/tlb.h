// Split base/huge TLB model.
//
// Direct-mapped with per-entry vpn tags, which captures what matters for the
// paper's trade-off: huge pages give ~512x reach per entry, and splits cost
// shootdowns. Sizes default to a Xeon-like second-level TLB scaled to the
// simulated footprints.

#ifndef MEMTIS_SIM_SRC_MEM_TLB_H_
#define MEMTIS_SIM_SRC_MEM_TLB_H_

#include <cstdint>
#include <vector>

#include "src/mem/types.h"

namespace memtis {

struct TlbConfig {
  uint32_t base_entries = 1536;  // 4 KiB entries (power of two rounded internally)
  uint32_t huge_entries = 128;   // 2 MiB entries
};

struct TlbStats {
  uint64_t base_hits = 0;
  uint64_t base_misses = 0;
  uint64_t huge_hits = 0;
  uint64_t huge_misses = 0;
  uint64_t shootdowns = 0;            // invalidation events (split/migration)
  uint64_t invalidated_entries = 0;

  uint64_t hits() const { return base_hits + huge_hits; }
  uint64_t misses() const { return base_misses + huge_misses; }
  double miss_ratio() const {
    const uint64_t total = hits() + misses();
    return total == 0 ? 0.0 : static_cast<double>(misses()) / static_cast<double>(total);
  }
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config = {});

  // Looks up the translation for `vpn`, which is mapped with the given page
  // kind. Returns true on hit; on miss the entry is filled (the page walk cost
  // is charged by the engine's cost model).
  bool Access(Vpn vpn, PageKind kind);

  // Batched replay: records `n` guaranteed hits without re-probing. Only valid
  // when the caller has just accessed the same vpn (direct-mapped, so the
  // entry is resident and re-accessing it cannot evict anything) — the stats
  // end up exactly as n scalar Access calls would leave them.
  void CountRepeatHits(PageKind kind, uint64_t n) {
    if (kind == PageKind::kHuge) {
      stats_.huge_hits += n;
    } else {
      stats_.base_hits += n;
    }
  }

  // Removes any entry covering [vpn, vpn + num_pages) and counts one shootdown
  // event. Used on migration, split, collapse, and unmap.
  void Shootdown(Vpn vpn, uint64_t num_pages);

  void Flush();

  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats{}; }

  // Audit introspection: visits every currently valid entry as
  // fn(Vpn, PageKind). Base entries report the exact vpn; huge entries the
  // huge-aligned base vpn.
  template <typename Fn>
  void ForEachValidEntry(Fn&& fn) const {
    for (const Vpn tag : base_tags_) {
      if (tag != 0) {
        fn(tag - 1, PageKind::kBase);
      }
    }
    for (const Vpn tag : huge_tags_) {
      if (tag != 0) {
        // Huge tags store the huge-page number; report the base vpn.
        fn((tag - 1) << kHugeOrder, PageKind::kHuge);
      }
    }
  }

  uint32_t base_capacity() const { return base_mask_ + 1; }
  uint32_t huge_capacity() const { return huge_mask_ + 1; }

  // Checkpointing: tags + stats are the whole mutable state; the masks are
  // configuration and are cross-checked on load.
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U32(base_mask_);
    w.U32(huge_mask_);
    for (Vpn tag : base_tags_) w.U64(tag);
    for (Vpn tag : huge_tags_) w.U64(tag);
    w.U64(stats_.base_hits);
    w.U64(stats_.base_misses);
    w.U64(stats_.huge_hits);
    w.U64(stats_.huge_misses);
    w.U64(stats_.shootdowns);
    w.U64(stats_.invalidated_entries);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    if (r.U32() != base_mask_ || r.U32() != huge_mask_) {
      r.Fail();
      return;
    }
    for (Vpn& tag : base_tags_) tag = r.U64();
    for (Vpn& tag : huge_tags_) tag = r.U64();
    stats_.base_hits = r.U64();
    stats_.base_misses = r.U64();
    stats_.huge_hits = r.U64();
    stats_.huge_misses = r.U64();
    stats_.shootdowns = r.U64();
    stats_.invalidated_entries = r.U64();
  }

 private:
  static uint32_t RoundPow2(uint32_t v);

  std::vector<Vpn> base_tags_;  // tag = vpn + 1, 0 = invalid
  std::vector<Vpn> huge_tags_;  // tag = huge_vpn + 1
  uint32_t base_mask_;
  uint32_t huge_mask_;
  TlbStats stats_;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_MEM_TLB_H_
