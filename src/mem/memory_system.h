// MemorySystem: the simulated two-tier physical memory plus the virtual
// address-space bookkeeping on top of it (regions, page table, THP
// allocation, migration, huge-page split/collapse).
//
// This is the substrate every tiering policy operates on. It deliberately
// models the mechanisms the paper's evaluation depends on:
//   - real order-9 buddy allocations for huge pages (fragmentation exists),
//   - migration = frame copy between tiers + TLB shootdown,
//   - huge-page split frees never-written (all-zero) subpages, which is where
//     THP memory-bloat reduction comes from (paper §4.3.3, Btree analysis),
//   - demand faults for subpages unmapped by a split and touched later.

#ifndef MEMTIS_SIM_SRC_MEM_MEMORY_SYSTEM_H_
#define MEMTIS_SIM_SRC_MEM_MEMORY_SYSTEM_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/mem/page.h"
#include "src/mem/tier.h"
#include "src/mem/tlb.h"
#include "src/mem/types.h"

namespace memtis {

class StateWriter;
class StateReader;

struct MemoryConfig {
  uint64_t fast_frames = 0;      // 4 KiB frames in the fast tier
  uint64_t capacity_frames = 0;  // 4 KiB frames in the capacity tier
  TierLatency fast_latency = kDramLatency;
  TierLatency capacity_latency = kNvmLatency;
  // Physical fragmentation at start-up: this fraction of each tier's huge
  // blocks gets one permanently-pinned 4 KiB frame, so THP allocations can
  // fail there (long-lived machines are never unfragmented — this is where
  // Table 2's RHP < 100% comes from).
  double fragmentation = 0.0;
  uint64_t fragmentation_seed = 12345;
};

struct AllocOptions {
  TierId preferred = TierId::kFast;
  bool allow_other_tier = true;  // fall back to the other tier when full
  bool use_thp = true;           // huge pages for 2 MiB-aligned spans
};

struct MigrationStats {
  uint64_t promoted_base = 0;   // base pages moved capacity -> fast
  uint64_t promoted_huge = 0;   // huge pages moved capacity -> fast
  uint64_t demoted_base = 0;
  uint64_t demoted_huge = 0;
  uint64_t failed_migrations = 0;   // destination frame unavailable
  uint64_t aborted_migrations = 0;  // injected mid-copy abort, rolled back
  uint64_t splits = 0;
  uint64_t collapses = 0;
  uint64_t freed_zero_subpages = 0;  // bloat reclaimed by splits
  uint64_t demand_faults = 0;        // split-freed subpages touched later
  uint64_t exchanges = 0;            // successful two-page swaps (ExchangePages)
  uint64_t exchanged_huge = 0;       // subset of `exchanges` that swapped huge pages
  uint64_t failed_exchanges = 0;     // precondition, quota, or budget denials
  uint64_t aborted_exchanges = 0;    // injected mid-swap abort, both sides rolled back

  uint64_t promoted_4k() const { return promoted_base + promoted_huge * kSubpagesPerHuge; }
  uint64_t demoted_4k() const { return demoted_base + demoted_huge * kSubpagesPerHuge; }
  uint64_t migrated_4k() const { return promoted_4k() + demoted_4k(); }
  // 4 KiB pages repositioned by exchanges: each swap moves both sides.
  uint64_t exchanged_4k() const {
    return 2 * ((exchanges - exchanged_huge) + exchanged_huge * kSubpagesPerHuge);
  }
};

// Per-tenant promotion-bandwidth token bucket, arbitrating the machine's
// migration budget across tenants by weight. Integer scheme identical to
// MigrationBudget (src/sim/migration_budget.h) so the audited ledger invariant
// (burst + credited - consumed == tokens <= burst) carries over. Inactive by
// default: a bucket that was never configured admits every promotion.
struct TenantBudget {
  bool active = false;
  uint64_t rate_per_ms = 0;
  uint64_t burst = 0;
  uint64_t tokens = 0;
  uint64_t last_refill_ns = 0;
  uint64_t consumed_pages = 0;
  uint64_t credited_pages = 0;

  void Configure(uint64_t rate, uint64_t burst_pages) {
    active = true;
    rate_per_ms = rate;
    burst = burst_pages;
    tokens = burst_pages;
  }

  bool Consume(uint64_t now_ns, uint64_t pages) {
    if (!active) {
      return true;
    }
    Refill(now_ns);
    if (tokens < pages) {
      return false;
    }
    tokens -= pages;
    consumed_pages += pages;
    return true;
  }

  void Refill(uint64_t now_ns) {
    if (now_ns <= last_refill_ns) {
      return;
    }
    const uint64_t earned = (now_ns - last_refill_ns) * rate_per_ms / 1'000'000;
    if (earned > 0) {
      const uint64_t target = std::min(burst, tokens + earned);
      if (target > tokens) {
        credited_pages += target - tokens;
        tokens = target;
      }
      last_refill_ns = now_ns;
    }
  }
};

// Per-tenant frame accounting and fast-tier quota state. The audit layer
// (src/audit/, "tenant-conservation") certifies that these counters sum to the
// global per-tier counters, match a from-scratch recount, and that fast usage
// never exceeds max(quota_frames, borrow_frames) — the borrow window opened by
// SetTenantFastQuota lowering a quota below current usage (or by a
// capacity-exhausted allocation falling back to the fast tier) and ratcheted
// shut as the tenant's fast usage decreases.
struct TenantFrameStats {
  uint64_t mapped_4k_tier[kNumTiers] = {0, 0};
  uint64_t quota_frames = UINT64_MAX;  // fast-tier cap in 4 KiB frames
  uint64_t borrow_frames = 0;          // explicit borrow window (0 = closed)
  uint64_t quota_denied_allocs = 0;      // fast placements redirected by quota
  uint64_t quota_denied_promotions = 0;  // promotions denied (steal impossible)
  uint64_t quota_steals = 0;  // promotions satisfied by self-demotion first
  uint64_t budget_denied_promotions = 0;  // weighted-share bucket denials
  TenantBudget budget;

  uint64_t fast_pages() const {
    return mapped_4k_tier[static_cast<int>(TierId::kFast)];
  }
  uint64_t effective_fast_limit() const {
    return std::max(quota_frames, borrow_frames);
  }
};

class MemorySystem {
 public:
  explicit MemorySystem(const MemoryConfig& config);

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  MemoryTier& tier(TierId id) { return tiers_[static_cast<int>(id)]; }
  const MemoryTier& tier(TierId id) const { return tiers_[static_cast<int>(id)]; }

  // Optional TLB to shoot down on migration/split/unmap. Not owned.
  void AttachTlb(Tlb* tlb) { tlb_ = tlb; }
  // Clock source for PageInfo::alloc_time_ns. Not owned.
  void AttachClock(const uint64_t* now_ns) { now_ns_ = now_ns; }
  // Fault injector hosting the kAllocFail / kMigrateAbort sites. Not owned;
  // nullptr (the default) means those sites never fire.
  void AttachFaults(FaultInjector* faults) { faults_ = faults; }

  // --- Tenants ---------------------------------------------------------------
  //
  // The co-location plane (src/tenant/) registers N tenants; every region (and
  // the pages backing it) is owned by the tenant that was current when it was
  // allocated. Quotas are enforced here — at AllocFrame and Migrate time — so
  // no policy can promote a tenant past its fast-tier share, and the migration
  // budget is arbitrated per tenant by the optional TenantBudget buckets. A
  // run that never calls any of these behaves exactly as before: everything
  // belongs to kDefaultTenant, whose quota is unlimited and whose bucket is
  // inactive.

  // Sets the tenant that owns subsequently allocated regions (registering it
  // if needed). The scheduler calls this before each tenant's batch.
  void SetCurrentTenant(TenantId tenant) {
    EnsureTenant(tenant);
    current_tenant_ = tenant;
  }
  TenantId current_tenant() const { return current_tenant_; }

  // Registered tenants (ids 0 .. tenant_count()-1). Always >= 1: the default
  // tenant exists from construction.
  TenantId tenant_count() const { return static_cast<TenantId>(tenants_.size()); }

  // Caps `tenant`'s fast-tier usage at `frames` 4 KiB frames. Lowering the
  // quota below current usage opens a borrow window at the current usage:
  // the audit invariant tolerates the existing overage, but new fast growth is
  // denied and the window ratchets shut as the tenant's fast pages drain.
  void SetTenantFastQuota(TenantId tenant, uint64_t frames) {
    EnsureTenant(tenant);
    TenantFrameStats& t = tenants_[tenant];
    t.quota_frames = frames;
    t.borrow_frames = t.fast_pages() > frames ? t.fast_pages() : 0;
  }

  // Arms `tenant`'s promotion-bandwidth bucket (its weighted share of the
  // machine's migration budget). Promotions of the tenant's pages draw from it
  // in addition to the policy's global budget; demotions are exempt.
  void SetTenantPromotionBudget(TenantId tenant, uint64_t rate_per_ms,
                                uint64_t burst_pages) {
    EnsureTenant(tenant);
    tenants_[tenant].budget.Configure(rate_per_ms, burst_pages);
  }

  const TenantFrameStats& tenant_stats(TenantId tenant) const {
    return tenants_[tenant];
  }
  uint64_t tenant_mapped_4k(TenantId tenant, TierId tier) const {
    return tenants_[tenant].mapped_4k_tier[static_cast<int>(tier)];
  }

  // From-scratch recount of one tenant's mapped 4 KiB pages in `tier` (audit
  // use; hot paths read the counters).
  uint64_t RecountTenantMapped4k(TenantId tenant, TierId tier) const;

  // Start addresses of the live regions owned by `tenant`, in address order.
  // The scheduler frees these (via the engine, so policies observe the frees)
  // when a tenant departs mid-run.
  std::vector<Vaddr> TenantRegionStarts(TenantId tenant) const;

  // --- Regions ---------------------------------------------------------------

  // Allocates a region of `bytes` (rounded up to a huge-page multiple so THP
  // layout is deterministic) and eagerly populates pages per `options`.
  // Returns the start address. Aborts if physical memory is exhausted in both
  // tiers (the simulated machine is sized by the experiment).
  Vaddr AllocateRegion(uint64_t bytes, const AllocOptions& options);

  // Frees a region previously returned by AllocateRegion.
  void FreeRegion(Vaddr start);

  // True if addr lies within a live region (mapped or demand-zero).
  bool InRegion(Vaddr addr) const;

  // Extent (start vpn, num pages) of the region containing addr, if any.
  std::optional<std::pair<Vpn, uint64_t>> RegionAt(Vaddr addr) const;

  // --- Lookup ----------------------------------------------------------------

  PageIndex Lookup(Vpn vpn) const {
    if (vpn >= page_table_.size()) {
      return kInvalidPage;
    }
    return page_table_[vpn];
  }

  PageInfo& page(PageIndex index) { return pages_[index]; }
  const PageInfo& page(PageIndex index) const { return pages_[index]; }

  // --- Structure-of-arrays hot metadata ---------------------------------------
  //
  // The fields the per-access pipeline touches (kind -> TLB, tier -> latency,
  // frame, access counter) live in parallel arrays indexed by PageIndex (see
  // PageHotArrays); PageInfo's accessors alias the same storage. The direct
  // index accessors below are the hot-path entry points — they touch one
  // byte-dense array instead of a PageInfo cache line.
  PageKind kind_of(PageIndex index) const { return hot_.kind[index]; }
  TierId tier_of(PageIndex index) const { return hot_.tier[index]; }
  FrameId frame_of(PageIndex index) const { return hot_.frame[index]; }
  uint64_t access_count_of(PageIndex index) const { return hot_.access_count[index]; }
  uint64_t& access_count_of(PageIndex index) { return hot_.access_count[index]; }
  // Audit introspection: the arrays themselves (size == page_slots()).
  const PageHotArrays& hot_arrays() const { return hot_; }
  // Mutable view for bulk scans (e.g. the cooling pass halving every access
  // counter): no new capability — PageInfo's accessors already hand out
  // mutable references to the same storage — just no per-page indirection.
  PageHotArrays& hot_arrays() { return hot_; }

  // Resolves a PageRef; nullptr if the page was freed/split since.
  PageInfo* Deref(PageRef ref);

  PageIndex IndexOf(const PageInfo& p) const {
    return static_cast<PageIndex>(&p - pages_.data());
  }

  // Allocates a base page for a region vpn that is currently unmapped (only
  // possible after a split freed a zero subpage). Returns the new page.
  PageIndex DemandFault(Vpn vpn, const AllocOptions& options);

  // --- Migration / page-size conversion ---------------------------------------

  // Moves a page to `dst`. Returns false (and counts a failed migration) when
  // no destination frame of the required order is available.
  bool Migrate(PageIndex index, TierId dst);

  // Atomically swaps a capacity-tier page (`hot`) with a fast-tier page
  // (`cold`) of the same kind: both mappings change, no frame is allocated or
  // freed, and both vpn spans are shot down. This is AutoTiering's direct
  // page exchange — the path that removes the free-frame-reservation
  // bottleneck when the fast tier is full.
  //
  // The swap is fast-tier-neutral, so it bypasses the steal-or-deny promotion
  // path; ownership still matters: a cross-tenant exchange grows the hot
  // page's owner by n fast pages and must fit under that tenant's quota
  // (no steal — the cold page IS the eviction), and the hot side draws the
  // owner's promotion-budget tokens exactly like a promotion. Returns false
  // (counting failed_exchanges) on precondition/quota/budget denial, or
  // (counting aborted_exchanges) when the kExchangeAbort fault site fires —
  // in every failure case both pages keep their original tier/frame/mapping
  // and no shootdown is issued (two-sided rollback).
  bool ExchangePages(PageIndex hot, PageIndex cold);

  // Splits a huge page into base pages. `subpage_tier(j)` picks the
  // destination tier of subpage j (with fallback to the other tier when
  // full). Never-written subpages are unmapped and their backing freed.
  // Returns the number of base pages created. The huge PageInfo dies.
  uint64_t SplitHugePage(PageIndex index,
                         const std::function<TierId(uint32_t)>& subpage_tier);

  // Collapses 512 live base pages at a huge-aligned vpn into one huge page in
  // `tier`. Fails (returns false) unless all 512 are live base pages and a
  // huge frame is available.
  bool CollapseToHuge(Vpn huge_vpn, TierId tier);

  // Hot-shrinks a tier by pinning up to `frames` free 4 KiB frames (as if the
  // hardware or another tenant claimed them). Pins are permanent, accounted
  // like start-up fragmentation pins, and invisible to rss_pages(). Returns
  // the number actually pinned (less when the tier has fewer free frames).
  uint64_t ShrinkTier(TierId id, uint64_t frames);

  // --- Iteration / accounting -------------------------------------------------

  // Visits every live page. `fn` must not create or free pages: the loop
  // stops after visiting live_page_count() pages, so mutating the page
  // population mid-scan would skip (or double-visit) pages. All current
  // callers are scans that only read or update per-page state in place.
  template <typename Fn>  // Fn(PageIndex, PageInfo&)
  void ForEachLivePage(Fn&& fn) {
    uint64_t remaining = live_pages_;
    const PageIndex slots = static_cast<PageIndex>(pages_.size());
    for (PageIndex i = 0; i < slots && remaining > 0; ++i) {
      if (pages_[i].live) {
        --remaining;
        fn(i, pages_[i]);
      }
    }
  }

  // Slot-based access for resumable scan cursors (hint-fault arming, clock
  // hands). Slots may be dead; LivePageAt returns nullptr for those.
  PageIndex page_slots() const { return static_cast<PageIndex>(pages_.size()); }
  PageInfo* LivePageAt(PageIndex i) { return pages_[i].live ? &pages_[i] : nullptr; }

  uint64_t live_page_count() const { return live_pages_; }
  uint64_t mapped_4k_pages() const { return mapped_4k_; }

  // Records a ground-truth subpage touch on a huge page (the kernel knows
  // written pages exactly; splits free never-written subpages). All
  // accessed/written bit mutations MUST go through here so the incremental
  // written-subpage counter stays consistent with the bitsets.
  void NoteSubpageAccess(PageInfo& page, uint64_t subpage, bool is_write) {
    page.huge->accessed.set(subpage);
    if (is_write && !page.huge->written.test(subpage)) {
      page.huge->written.set(subpage);
      ++written_subpages_;
    }
  }

  // --- Incremental accounting -------------------------------------------------
  //
  // Maintained at MapPage/UnmapAndFree/Migrate/SplitHugePage/CollapseToHuge
  // so the per-snapshot metrics (huge_page_ratio, bloat_pages, per-tier
  // mapped-4k) are O(1) instead of O(page slots). The Recount* methods below
  // recompute each from the live page metadata; the audit layer
  // (src/audit/audit.cc, "incremental-counters") cross-checks them every tick.

  uint64_t live_huge_pages() const { return huge_pages_; }
  uint64_t written_subpages() const { return written_subpages_; }
  uint64_t mapped_4k_in_tier(TierId id) const {
    return mapped_4k_tier_[static_cast<int>(id)];
  }

  // HugePageMeta pool introspection (metas are recycled across
  // split/collapse churn instead of round-tripping through the heap).
  // Conservation: allocated == pooled + live huge pages.
  uint64_t huge_meta_allocated() const { return huge_meta_allocated_; }
  uint64_t huge_meta_pooled() const { return huge_meta_pool_.size(); }

  // --- Audit introspection ----------------------------------------------------

  // Frames permanently pinned by start-up fragmentation, per tier / total.
  uint64_t pinned_frames(TierId id) const {
    return pinned_per_tier_[static_cast<int>(id)];
  }
  uint64_t pinned_frames_total() const { return pinned_frames_; }

  // From-scratch recounts of the incremental counters above (O(page slots);
  // audit/diagnostic use only — hot paths read the counters).
  uint64_t RecountMapped4kInTier(TierId id) const;
  uint64_t RecountLiveHugePages() const;
  uint64_t RecountWrittenSubpages() const;
  uint64_t RecountBloatPages() const;

  // Number of live regions in the virtual address space.
  uint64_t region_count() const { return regions_.size(); }

  // Resident set size in 4 KiB frames (all app-allocated frames, both tiers;
  // excludes frames pinned by start-up fragmentation).
  uint64_t rss_pages() const {
    return tiers_[0].used_frames() + tiers_[1].used_frames() - pinned_frames_;
  }

  // 4 KiB pages mapped in the fast tier.
  uint64_t fast_tier_pages() const { return tiers_[0].used_frames(); }

  // Never-written subpages currently held inside live huge pages (THP bloat).
  uint64_t bloat_pages() const;

  // Clears the ground-truth per-subpage accessed bits (not the written bits).
  // Used by analyses that measure utilisation over a specific phase.
  void ClearAccessedBits();

  // Ratio of mapped memory backed by huge pages (Table 2's RHP).
  double huge_page_ratio() const;

  const MigrationStats& migration_stats() const { return migration_stats_; }
  MigrationStats& mutable_migration_stats() { return migration_stats_; }

  // Consistency audit for tests and the runtime auditor: page table <-> pages
  // <-> allocators agree. The diagnostic variant describes the first mismatch
  // in `error` (unchanged when consistent).
  bool CheckConsistency() const { return CheckConsistency(nullptr); }
  bool CheckConsistency(std::string* error) const;

  // --- Checkpointing (src/snapshot/) ------------------------------------------
  //
  // Serializes every mutable field — page slots (live metadata + hot SoA
  // twin + per-slot generations, so stale PageRefs stay stale), the buddy
  // allocators' free-list order, the page table, region maps, tenant
  // ownership/quota/borrow ratchets, and the migration ledger — against a
  // freshly constructed MemorySystem of the same MemoryConfig. LoadState
  // rebuilds the derived structure (hot/self back-references, pooled
  // HugePageMeta buffers) and latches the reader's error flag on any
  // configuration mismatch. Attached pointers (TLB, clock, faults) are not
  // serialized; the owner re-attaches them.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  struct Region {
    Vpn start_vpn;
    uint64_t num_pages;
    TenantId tenant = kDefaultTenant;  // owner; stamped onto every page mapped
  };

  uint64_t now() const { return now_ns_ != nullptr ? *now_ns_ : 0; }

  PageIndex NewPageSlot();
  void ReleasePageSlot(PageIndex index);

  // HugePageMeta pool: Acquire returns a zeroed meta (recycled if possible),
  // Recycle returns one for reuse. Every huge-page death must recycle.
  // zeroed=false skips re-zeroing a pooled buffer — only for callers that
  // overwrite every field before the meta becomes visible (collapse).
  std::unique_ptr<HugePageMeta> AcquireHugeMeta(bool zeroed = true);
  void RecycleHugeMeta(std::unique_ptr<HugePageMeta> meta);
  void ReleaseHugeState(PageInfo& p);

  // Allocates one page of `kind` honoring tier preference/fallback; returns
  // nullopt if no tier can hold it. A preferred-fast attempt that would push
  // `tenant` past its quota is redirected to the capacity tier (the
  // capacity-exhausted fallback INTO fast is still allowed and opens a borrow
  // window — denying it would OOM a machine with free memory).
  std::optional<std::pair<TierId, FrameId>> AllocFrame(PageKind kind,
                                                       const AllocOptions& options,
                                                       TenantId tenant);

  void MapPage(PageIndex index, Vpn vpn, PageKind kind, TierId tier, FrameId frame,
               TenantId tenant);
  void UnmapAndFree(PageIndex index);

  void EnsurePageTable(Vpn end_vpn);

  // Registers tenant ids 0..tenant (idempotent).
  void EnsureTenant(TenantId tenant) {
    if (tenant >= tenants_.size()) {
      tenants_.resize(static_cast<size_t>(tenant) + 1);
    }
  }

  // True when `tenant` may grow its fast-tier usage by `frames` pages.
  bool FastQuotaAllows(TenantId tenant, uint64_t frames) const {
    const TenantFrameStats& t = tenants_[tenant];
    const uint64_t limit = t.effective_fast_limit();
    return t.fast_pages() <= limit && frames <= limit - t.fast_pages();
  }

  // Demotes `tenant`'s coldest fast pages until `frames` fast frames fit under
  // the quota (deterministic victim order: min hotness, then lowest slot).
  // Returns false when not enough same-tenant victims exist.
  bool StealForPromotion(TenantId tenant, uint64_t frames);

  // Borrow-window maintenance, called after a tenant's fast usage changes.
  void TenantBorrowExtend(TenantId tenant);   // fast grew past quota (fallback)
  void TenantBorrowRatchet(TenantId tenant);  // fast shrank: tighten/close

  // The region containing vpn (the map key at or below vpn whose extent
  // covers it), or nullptr.
  const Region* RegionContaining(Vpn vpn) const;

  MemoryTier tiers_[kNumTiers];
  Tlb* tlb_ = nullptr;
  const uint64_t* now_ns_ = nullptr;
  FaultInjector* faults_ = nullptr;

  std::vector<PageInfo> pages_;
  PageHotArrays hot_;  // SoA twin of pages_, resized in lockstep (NewPageSlot)
  std::vector<PageIndex> free_slots_;
  std::vector<PageIndex> page_table_;  // vpn -> PageIndex
  uint64_t live_pages_ = 0;
  uint64_t mapped_4k_ = 0;

  // Incremental counters (see "Incremental accounting" above).
  uint64_t huge_pages_ = 0;                      // live huge pages
  uint64_t mapped_4k_tier_[kNumTiers] = {0, 0};  // mapped 4k per tier
  uint64_t written_subpages_ = 0;  // set written bits over live huge pages

  // Recycled HugePageMeta buffers + lifetime allocation count.
  std::vector<std::unique_ptr<HugePageMeta>> huge_meta_pool_;
  uint64_t huge_meta_allocated_ = 0;

  uint64_t pinned_frames_ = 0;  // start-up fragmentation pins (total)
  uint64_t pinned_per_tier_[kNumTiers] = {0, 0};

  std::map<Vpn, Region> regions_;         // live regions by start vpn
  std::map<Vpn, uint64_t> free_vpn_ranges_;  // start vpn -> num pages
  Vpn vpn_bump_ = 0;                      // next fresh vpn when free list empty
  // Upper bound on the largest free-range length: raised when FreeRegion
  // inserts a range, re-tightened when a first-fit walk comes up empty.
  // AllocateRegion skips the O(ranges) walk entirely when the request
  // provably cannot fit — the walk's outcome is unchanged otherwise, so
  // first-fit placement stays byte-identical.
  uint64_t max_free_range_bound_ = 0;

  MigrationStats migration_stats_;

  // Per-tenant accounting; index = TenantId. Slot 0 (the default tenant)
  // always exists, so legacy single-workload runs never branch differently.
  std::vector<TenantFrameStats> tenants_ = std::vector<TenantFrameStats>(1);
  TenantId current_tenant_ = kDefaultTenant;
  // Re-entrancy guard: StealForPromotion demotes via Migrate; those inner
  // demotions must not recurse into another steal or draw tenant budget.
  bool in_steal_ = false;
};

}  // namespace memtis

#endif  // MEMTIS_SIM_SRC_MEM_MEMORY_SYSTEM_H_
