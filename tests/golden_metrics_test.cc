// Golden-metrics regression tests: fault-free runs of three systems on two
// workloads, byte-compared against committed JSON. Any unintended behaviour
// change in the simulator — including one introduced by the fault plane,
// which must be inert when no site is active — shows up as a golden diff.
//
// Regenerate intentionally changed goldens with either of
//   build/tests/golden_metrics_test --regen
//   MEMTIS_GOLDEN_REGEN=1 build/tests/golden_metrics_test
// and review the diff like any other code change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

#include "src/runner/sweep.h"

namespace {
bool g_regen = false;
}  // namespace

namespace memtis {
namespace {

struct GoldenCell {
  const char* system;
  const char* benchmark;
};

// Three families of system (MEMTIS, userspace HeMem, kernel AutoNUMA) by two
// workloads with different page-size behaviour, plus AutoTiering — the one
// policy that uses ExchangePages natively — so the exchange path (counters,
// omit-when-zero schema, deterministic victim scan) is golden-pinned too.
constexpr GoldenCell kCells[] = {
    {"memtis", "btree"},   {"memtis", "silo"},   {"hemem", "btree"},
    {"hemem", "silo"},     {"autonuma", "btree"}, {"autonuma", "silo"},
    {"autotiering", "btree"}, {"autotiering", "silo"},
};

std::string GoldenPath(const GoldenCell& cell) {
  return std::string(GOLDEN_DIR) + "/" + cell.system + "_" + cell.benchmark +
         ".json";
}

std::string RenderCell(const GoldenCell& cell) {
  JobSpec spec;
  spec.system = cell.system;
  spec.benchmark = cell.benchmark;
  spec.accesses = 200'000;
  // Pin the sizing explicitly so the MEMTIS_BENCH_* env knobs cannot shift
  // golden output between machines.
  spec.footprint_scale = 0.25;
  const JobResult result = RunJob(spec);
  return result.metrics.ToJson(2) + "\n";
}

class GoldenMetricsTest : public ::testing::TestWithParam<int> {};

TEST_P(GoldenMetricsTest, MatchesCommittedJson) {
  const GoldenCell& cell = kCells[GetParam()];
  const std::string path = GoldenPath(cell);
  const std::string rendered = RenderCell(cell);

  if (g_regen) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    ASSERT_TRUE(out.good()) << "short write to " << path;
    return;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run golden_metrics_test --regen (and commit the result)";
  std::ostringstream expected;
  expected << in.rdbuf();
  // Byte-for-byte: Metrics::ToJson has stable field order and float
  // formatting, so any diff is a real behaviour or schema change.
  EXPECT_EQ(rendered, expected.str())
      << cell.system << "/" << cell.benchmark
      << " diverged from " << path
      << " — if intended, regen with --regen and commit the diff";
}

std::string CellName(const ::testing::TestParamInfo<int>& info) {
  std::string name = kCells[info.param].system;
  name += "_";
  name += kCells[info.param].benchmark;
  for (char& c : name) {
    if (c == '-' || c == '.') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Cells, GoldenMetricsTest,
                         ::testing::Range(0, static_cast<int>(std::size(kCells))),
                         CellName);

}  // namespace
}  // namespace memtis

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") {
      g_regen = true;
    }
  }
  const char* env = std::getenv("MEMTIS_GOLDEN_REGEN");
  if (env != nullptr && env[0] != '\0' && std::string(env) != "0") {
    g_regen = true;
  }
  return RUN_ALL_TESTS();
}
