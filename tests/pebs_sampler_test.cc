#include "src/access/pebs_sampler.h"

#include <gtest/gtest.h>

namespace memtis {
namespace {

TEST(PebsSampler, SamplesEveryPeriodEvents) {
  PebsConfig cfg;
  cfg.load_period = 10;
  cfg.store_period = 4;
  PebsSampler sampler(cfg);
  int load_samples = 0;
  for (int i = 0; i < 100; ++i) {
    load_samples += sampler.OnEvent(SampleType::kLlcLoadMiss, 0) ? 1 : 0;
  }
  EXPECT_EQ(load_samples, 10);
  int store_samples = 0;
  for (int i = 0; i < 100; ++i) {
    store_samples += sampler.OnEvent(SampleType::kStore, 0) ? 1 : 0;
  }
  EXPECT_EQ(store_samples, 25);
  EXPECT_EQ(sampler.stats().total_samples(), 35u);
}

TEST(PebsSampler, EventStreamsAreIndependent) {
  PebsConfig cfg;
  cfg.load_period = 5;
  cfg.store_period = 5;
  PebsSampler sampler(cfg);
  // Interleave: each stream keeps its own countdown.
  int samples = 0;
  for (int i = 0; i < 10; ++i) {
    samples += sampler.OnEvent(SampleType::kLlcLoadMiss, 0) ? 1 : 0;
    samples += sampler.OnEvent(SampleType::kStore, 0) ? 1 : 0;
  }
  EXPECT_EQ(samples, 4);
}

TEST(PebsSampler, RaisesPeriodWhenOverBudget) {
  PebsConfig cfg;
  cfg.load_period = 10;
  cfg.sample_cost_ns = 1'000'000;  // absurdly expensive samples
  cfg.adjust_interval_ns = 1'000'000;
  cfg.cpu_limit = 0.03;
  PebsSampler sampler(cfg);
  uint64_t now = 0;
  for (int i = 0; i < 1000; ++i) {
    now += 10'000;
    if (sampler.OnEvent(SampleType::kLlcLoadMiss, now)) {
      sampler.AccountSample(now);
    }
  }
  EXPECT_GT(sampler.period(SampleType::kLlcLoadMiss), cfg.load_period);
  EXPECT_GT(sampler.stats().period_raises, 0u);
  EXPECT_GT(sampler.cpu_usage(), cfg.cpu_limit);
}

TEST(PebsSampler, LowersPeriodWhenUnderBudget) {
  PebsConfig cfg;
  cfg.load_period = 1000;
  cfg.min_period = 2;
  cfg.sample_cost_ns = 1;  // nearly free samples
  cfg.adjust_interval_ns = 1'000;
  PebsSampler sampler(cfg);
  uint64_t now = 0;
  for (int i = 0; i < 100000; ++i) {
    now += 100;
    if (sampler.OnEvent(SampleType::kLlcLoadMiss, now)) {
      sampler.AccountSample(now);
    }
  }
  EXPECT_LT(sampler.period(SampleType::kLlcLoadMiss), cfg.load_period);
  EXPECT_GT(sampler.stats().period_drops, 0u);
}

TEST(PebsSampler, PeriodStaysWithinBounds) {
  PebsConfig cfg;
  cfg.load_period = 8;
  cfg.min_period = 4;
  cfg.max_period = 64;
  cfg.sample_cost_ns = 1'000'000;
  cfg.adjust_interval_ns = 1'000;
  PebsSampler sampler(cfg);
  uint64_t now = 0;
  for (int i = 0; i < 100000; ++i) {
    now += 10;
    if (sampler.OnEvent(SampleType::kLlcLoadMiss, now)) {
      sampler.AccountSample(now);
    }
  }
  EXPECT_LE(sampler.period(SampleType::kLlcLoadMiss), 64u);
  EXPECT_GE(sampler.period(SampleType::kLlcLoadMiss), 4u);
}

TEST(PebsSampler, HysteresisPreventsJitterInsideBand) {
  PebsConfig cfg;
  cfg.load_period = 100;
  cfg.sample_cost_ns = 300;
  cfg.adjust_interval_ns = 1'000'000;
  cfg.cpu_limit = 0.03;
  cfg.cpu_hysteresis = 0.5;  // giant band: nothing should ever adjust
  PebsSampler sampler(cfg);
  uint64_t now = 0;
  for (int i = 0; i < 200000; ++i) {
    now += 100;
    if (sampler.OnEvent(SampleType::kLlcLoadMiss, now)) {
      sampler.AccountSample(now);
    }
  }
  EXPECT_EQ(sampler.stats().period_raises, 0u);
  EXPECT_EQ(sampler.stats().period_drops, 0u);
  EXPECT_EQ(sampler.period(SampleType::kLlcLoadMiss), 100u);
}

TEST(PebsSampler, TinyBufferOverflowDropsAreCounted) {
  PebsConfig cfg;
  cfg.load_period = 1;
  cfg.min_period = 1;
  cfg.buffer_capacity = 4;
  cfg.drain_interval_ns = 1'000'000;  // never drained within this test
  PebsSampler sampler(cfg);
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    delivered += sampler.OnEvent(SampleType::kLlcLoadMiss, 100) ? 1 : 0;
  }
  // Only the first `buffer_capacity` records fit; the rest overflow.
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(sampler.stats().total_samples(), 4u);
  EXPECT_EQ(sampler.stats().total_dropped(), 6u);
  EXPECT_EQ(sampler.stats().overflow_drops, 6u);
  EXPECT_EQ(sampler.stats().fault_drops, 0u);
  EXPECT_EQ(sampler.stats().dropped[static_cast<int>(SampleType::kLlcLoadMiss)],
            6u);
}

TEST(PebsSampler, DrainEmptiesTheBuffer) {
  PebsConfig cfg;
  cfg.load_period = 1;
  cfg.min_period = 1;
  cfg.buffer_capacity = 2;
  cfg.drain_interval_ns = 1'000;
  PebsSampler sampler(cfg);
  // Fill the buffer at t=0, overflow once, then cross the drain interval:
  // capacity is available again.
  EXPECT_TRUE(sampler.OnEvent(SampleType::kLlcLoadMiss, 0));
  EXPECT_TRUE(sampler.OnEvent(SampleType::kLlcLoadMiss, 0));
  EXPECT_FALSE(sampler.OnEvent(SampleType::kLlcLoadMiss, 0));
  EXPECT_TRUE(sampler.OnEvent(SampleType::kLlcLoadMiss, 2'000));
  EXPECT_EQ(sampler.stats().total_samples(), 3u);
  EXPECT_EQ(sampler.stats().overflow_drops, 1u);
}

TEST(PebsSampler, OverflowDropsTrackPerTypeCounts) {
  PebsConfig cfg;
  cfg.load_period = 1;
  cfg.store_period = 1;
  cfg.min_period = 1;
  cfg.buffer_capacity = 1;
  cfg.drain_interval_ns = 1'000'000;
  PebsSampler sampler(cfg);
  EXPECT_TRUE(sampler.OnEvent(SampleType::kLlcLoadMiss, 5));
  EXPECT_FALSE(sampler.OnEvent(SampleType::kStore, 5));
  EXPECT_FALSE(sampler.OnEvent(SampleType::kLlcLoadMiss, 5));
  EXPECT_EQ(sampler.stats().dropped[static_cast<int>(SampleType::kStore)], 1u);
  EXPECT_EQ(sampler.stats().dropped[static_cast<int>(SampleType::kLlcLoadMiss)],
            1u);
}

TEST(PebsSampler, InjectedFaultDropsRecordsBeforeDelivery) {
  FaultPlan plan;
  plan.site(FaultSite::kSampleDrop).probability = 1.0;
  FaultInjector faults(plan, /*run_seed=*/7);
  PebsConfig cfg;
  cfg.load_period = 1;
  cfg.min_period = 1;
  PebsSampler sampler(cfg);
  sampler.AttachFaults(&faults);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(sampler.OnEvent(SampleType::kLlcLoadMiss, 10 * i));
  }
  EXPECT_EQ(sampler.stats().total_samples(), 0u);
  EXPECT_EQ(sampler.stats().fault_drops, 8u);
  EXPECT_EQ(faults.stats().by(FaultSite::kSampleDrop), 8u);
}

TEST(PebsSampler, PeriodCountersMoveUnderForcedLoadWithTinyBuffer) {
  // Over-budget adaptation must still work when most records overflow: the
  // controller only charges CPU for delivered samples.
  PebsConfig cfg;
  cfg.load_period = 2;
  cfg.min_period = 2;
  cfg.sample_cost_ns = 1'000'000;
  cfg.adjust_interval_ns = 1'000'000;
  cfg.cpu_limit = 0.03;
  cfg.buffer_capacity = 2;
  cfg.drain_interval_ns = 5'000;
  PebsSampler sampler(cfg);
  uint64_t now = 0;
  uint64_t delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    now += 10'000;
    // A burst of events lands between drains: some records must overflow.
    for (int j = 0; j < 8; ++j) {
      if (sampler.OnEvent(SampleType::kLlcLoadMiss, now)) {
        ++delivered;
        sampler.AccountSample(now);
      }
    }
  }
  EXPECT_GT(sampler.stats().period_raises, 0u);
  EXPECT_GT(sampler.stats().total_dropped(), 0u);
  EXPECT_EQ(sampler.stats().total_samples(), delivered);
  EXPECT_EQ(sampler.busy_ns(), delivered * cfg.sample_cost_ns);
}

TEST(PebsSampler, BusyTimeAccumulates) {
  PebsConfig cfg;
  cfg.load_period = 1;
  cfg.min_period = 1;
  cfg.sample_cost_ns = 400;
  PebsSampler sampler(cfg);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sampler.OnEvent(SampleType::kLlcLoadMiss, 1000ull * (i + 1)));
    sampler.AccountSample(1000 * (i + 1));
  }
  EXPECT_EQ(sampler.busy_ns(), 4000u);
}

}  // namespace
}  // namespace memtis
