#include "src/access/pebs_sampler.h"

#include <gtest/gtest.h>

namespace memtis {
namespace {

TEST(PebsSampler, SamplesEveryPeriodEvents) {
  PebsConfig cfg;
  cfg.load_period = 10;
  cfg.store_period = 4;
  PebsSampler sampler(cfg);
  int load_samples = 0;
  for (int i = 0; i < 100; ++i) {
    load_samples += sampler.OnEvent(SampleType::kLlcLoadMiss) ? 1 : 0;
  }
  EXPECT_EQ(load_samples, 10);
  int store_samples = 0;
  for (int i = 0; i < 100; ++i) {
    store_samples += sampler.OnEvent(SampleType::kStore) ? 1 : 0;
  }
  EXPECT_EQ(store_samples, 25);
  EXPECT_EQ(sampler.stats().total_samples(), 35u);
}

TEST(PebsSampler, EventStreamsAreIndependent) {
  PebsConfig cfg;
  cfg.load_period = 5;
  cfg.store_period = 5;
  PebsSampler sampler(cfg);
  // Interleave: each stream keeps its own countdown.
  int samples = 0;
  for (int i = 0; i < 10; ++i) {
    samples += sampler.OnEvent(SampleType::kLlcLoadMiss) ? 1 : 0;
    samples += sampler.OnEvent(SampleType::kStore) ? 1 : 0;
  }
  EXPECT_EQ(samples, 4);
}

TEST(PebsSampler, RaisesPeriodWhenOverBudget) {
  PebsConfig cfg;
  cfg.load_period = 10;
  cfg.sample_cost_ns = 1'000'000;  // absurdly expensive samples
  cfg.adjust_interval_ns = 1'000'000;
  cfg.cpu_limit = 0.03;
  PebsSampler sampler(cfg);
  uint64_t now = 0;
  for (int i = 0; i < 1000; ++i) {
    now += 10'000;
    if (sampler.OnEvent(SampleType::kLlcLoadMiss)) {
      sampler.AccountSample(now);
    }
  }
  EXPECT_GT(sampler.period(SampleType::kLlcLoadMiss), cfg.load_period);
  EXPECT_GT(sampler.stats().period_raises, 0u);
  EXPECT_GT(sampler.cpu_usage(), cfg.cpu_limit);
}

TEST(PebsSampler, LowersPeriodWhenUnderBudget) {
  PebsConfig cfg;
  cfg.load_period = 1000;
  cfg.min_period = 2;
  cfg.sample_cost_ns = 1;  // nearly free samples
  cfg.adjust_interval_ns = 1'000;
  PebsSampler sampler(cfg);
  uint64_t now = 0;
  for (int i = 0; i < 100000; ++i) {
    now += 100;
    if (sampler.OnEvent(SampleType::kLlcLoadMiss)) {
      sampler.AccountSample(now);
    }
  }
  EXPECT_LT(sampler.period(SampleType::kLlcLoadMiss), cfg.load_period);
  EXPECT_GT(sampler.stats().period_drops, 0u);
}

TEST(PebsSampler, PeriodStaysWithinBounds) {
  PebsConfig cfg;
  cfg.load_period = 8;
  cfg.min_period = 4;
  cfg.max_period = 64;
  cfg.sample_cost_ns = 1'000'000;
  cfg.adjust_interval_ns = 1'000;
  PebsSampler sampler(cfg);
  uint64_t now = 0;
  for (int i = 0; i < 100000; ++i) {
    now += 10;
    if (sampler.OnEvent(SampleType::kLlcLoadMiss)) {
      sampler.AccountSample(now);
    }
  }
  EXPECT_LE(sampler.period(SampleType::kLlcLoadMiss), 64u);
  EXPECT_GE(sampler.period(SampleType::kLlcLoadMiss), 4u);
}

TEST(PebsSampler, HysteresisPreventsJitterInsideBand) {
  PebsConfig cfg;
  cfg.load_period = 100;
  cfg.sample_cost_ns = 300;
  cfg.adjust_interval_ns = 1'000'000;
  cfg.cpu_limit = 0.03;
  cfg.cpu_hysteresis = 0.5;  // giant band: nothing should ever adjust
  PebsSampler sampler(cfg);
  uint64_t now = 0;
  for (int i = 0; i < 200000; ++i) {
    now += 100;
    if (sampler.OnEvent(SampleType::kLlcLoadMiss)) {
      sampler.AccountSample(now);
    }
  }
  EXPECT_EQ(sampler.stats().period_raises, 0u);
  EXPECT_EQ(sampler.stats().period_drops, 0u);
  EXPECT_EQ(sampler.period(SampleType::kLlcLoadMiss), 100u);
}

TEST(PebsSampler, BusyTimeAccumulates) {
  PebsConfig cfg;
  cfg.load_period = 1;
  cfg.min_period = 1;
  cfg.sample_cost_ns = 400;
  PebsSampler sampler(cfg);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sampler.OnEvent(SampleType::kLlcLoadMiss));
    sampler.AccountSample(1000 * (i + 1));
  }
  EXPECT_EQ(sampler.busy_ns(), 4000u);
}

}  // namespace
}  // namespace memtis
