// Tenant plane tests: quota enforcement at the memory system, lifecycle
// churn with reclamation, budget arbitration, the single-tenant byte-identity
// contract, the --colocate spec grammar, and per-tenant JSON round-trips.

#include "src/tenant/tenant.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/audit/audit_session.h"
#include "src/common/json_parse.h"
#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/tenant/colocate.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

// Builds a manager over `specs`, runs it under `system` with an
// always-on collect-mode audit session, and fails the test on any invariant
// violation. Returns the metrics with per_tenant filled.
struct TenantRun {
  Metrics metrics;
  AuditReport audit;
  uint64_t tenant_count = 0;
};

TenantRun RunTenants(TenantManager& manager, const std::string& system,
                     double fast_ratio, uint64_t accesses,
                     const std::string& faults = "") {
  auto policy = MakePolicy(system, manager.footprint_bytes(),
                           static_cast<uint64_t>(static_cast<double>(
                                                     manager.footprint_bytes()) *
                                                 fast_ratio));
  EngineOptions opts;
  opts.max_accesses = accesses;
  if (!faults.empty()) {
    std::string error;
    EXPECT_TRUE(FaultPlan::Parse(faults, &opts.faults, &error)) << error;
  }
  AuditSessionOptions audit_opts;
  audit_opts.record_epochs = false;
  AuditSession audit(audit_opts);
  opts.audit = &audit;
  Engine engine(MachineFor(manager, fast_ratio), *policy, opts);
  TenantRun run;
  run.metrics = engine.Run(manager);
  manager.ExportPerTenant(engine.mem(), &run.metrics);
  run.audit = audit.report();
  run.tenant_count = engine.mem().tenant_count();
  EXPECT_TRUE(engine.mem().CheckConsistency());
  return run;
}

// --- Quota enforcement -------------------------------------------------------

TEST(TenantQuota, ZeroQuotaTenantStaysOutOfFast) {
  TenantManager manager;
  TenantSpec pinned;
  pinned.name = "pinned";
  pinned.quota_fraction = 0.0;
  manager.AddTenant(pinned, MakeWorkload("silo", 0.05));
  TenantSpec open;
  open.quota_fraction = -1.0;
  manager.AddTenant(open, MakeWorkload("btree", 0.05, 1000));

  const TenantRun run = RunTenants(manager, "memtis", 1.0 / 3.0, 400'000);
  EXPECT_EQ(run.audit.violations_total, 0u) << run.audit.ToJson(2);
  ASSERT_EQ(run.metrics.per_tenant.size(), 2u);
  const TenantMetrics& t0 = run.metrics.per_tenant[0];
  EXPECT_EQ(t0.quota_frames, 0u);
  // The zero-quota tenant was pushed off the fast tier: allocations were
  // denied the preferred tier and promotions were refused outright.
  EXPECT_GT(t0.quota_denied_allocs + t0.quota_denied_promotions, 0u);
  // Outside a borrow window (none here: quota was set before any mapping)
  // usage must respect the quota exactly.
  EXPECT_EQ(t0.fast_pages, 0u);
  EXPECT_GT(t0.accesses, 0u);
}

TEST(TenantQuota, QuotaHoldsUnderTierShrinkFaults) {
  TenantManager manager;
  TenantSpec a;
  a.quota_fraction = 0.5;
  manager.AddTenant(a, MakeWorkload("silo", 0.05));
  TenantSpec b;
  b.quota_fraction = 0.4;
  manager.AddTenant(b, MakeWorkload("btree", 0.05, 1000));

  // tier-shrink removes fast frames mid-run; the per-tenant conservation
  // check (usage <= max(quota, borrow)) must hold through every shrink.
  const TenantRun run = RunTenants(manager, "memtis", 1.0 / 3.0, 400'000,
                                   "tier-shrink=0.002,seed=11");
  EXPECT_EQ(run.audit.violations_total, 0u) << run.audit.ToJson(2);
  EXPECT_GT(run.metrics.faults.total_injected(), 0u);
}

TEST(TenantQuota, StealsReplaceDenialsForOwnColdPages) {
  // A single quota'd tenant under memtis: once its quota fills, further
  // promotions must either steal from its own coldest fast pages or be
  // denied — never exceed the cap.
  TenantManager manager;
  TenantSpec t;
  t.quota_fraction = 0.2;
  manager.AddTenant(t, MakeWorkload("silo", 0.05));
  const TenantRun run = RunTenants(manager, "memtis", 1.0 / 3.0, 600'000);
  EXPECT_EQ(run.audit.violations_total, 0u) << run.audit.ToJson(2);
  const TenantMetrics& tm = run.metrics.per_tenant[0];
  EXPECT_GT(tm.quota_frames, 0u);
  EXPECT_LE(tm.fast_pages, tm.quota_frames);
  EXPECT_GT(tm.quota_steals + tm.quota_denied_promotions + tm.quota_denied_allocs,
            0u);
}

// --- Lifecycle churn ---------------------------------------------------------

TEST(TenantChurn, DepartureReclaimsFrames) {
  TenantManager manager;
  TenantSpec stay;
  manager.AddTenant(stay, MakeWorkload("silo", 0.05));
  TenantSpec churn;
  churn.name = "churner";
  churn.max_accesses = 50'000;  // forced departure with reclamation
  manager.AddTenant(churn, MakeWorkload("btree", 0.05, 1000));

  const TenantRun run = RunTenants(manager, "memtis", 1.0 / 3.0, 500'000);
  EXPECT_EQ(run.audit.violations_total, 0u) << run.audit.ToJson(2);
  EXPECT_TRUE(manager.tenant_departed(1));
  const TenantMetrics& churned = run.metrics.per_tenant[1];
  EXPECT_GT(churned.depart_ns, 0u);
  EXPECT_GE(churned.accesses, 50'000u);
  // fast_pages snapshots occupancy at departure; the stayer keeps running.
  EXPECT_FALSE(manager.tenant_departed(0));
  EXPECT_GT(run.metrics.per_tenant[0].accesses, churned.accesses);
}

TEST(TenantChurn, MidRunArrivalAndTimedDeparture) {
  TenantManager manager;
  TenantSpec base;
  manager.AddTenant(base, MakeWorkload("silo", 0.05));
  TenantSpec late;
  late.name = "late";
  late.arrive_ns = 2'000'000;
  late.depart_ns = 50'000'000;
  manager.AddTenant(late, MakeWorkload("btree", 0.05, 1000));

  const TenantRun run = RunTenants(manager, "memtis", 1.0 / 3.0, 600'000);
  EXPECT_EQ(run.audit.violations_total, 0u) << run.audit.ToJson(2);
  const TenantMetrics& tm = run.metrics.per_tenant[1];
  EXPECT_GE(tm.arrive_ns, 2'000'000u);
  if (manager.tenant_departed(1)) {
    EXPECT_GE(tm.depart_ns, 50'000'000u);
  }
  EXPECT_GT(tm.accesses, 0u);
}

TEST(TenantChurn, DiurnalPhaseScalingShiftsLoad) {
  TenantManager manager;
  TenantSpec steady;
  manager.AddTenant(steady, MakeWorkload("silo", 0.05));
  TenantSpec diurnal;
  diurnal.phase_period_ns = 10'000'000;
  diurnal.phase_low = 0.1;  // near-idle half the time
  manager.AddTenant(diurnal, MakeWorkload("silo", 0.05, 1000));

  const TenantRun run = RunTenants(manager, "memtis", 1.0 / 3.0, 500'000);
  EXPECT_EQ(run.audit.violations_total, 0u) << run.audit.ToJson(2);
  // The modulated tenant must fall measurably behind the steady one.
  EXPECT_LT(run.metrics.per_tenant[1].accesses * 3,
            run.metrics.per_tenant[0].accesses * 2);
}

// --- Determinism and the byte-identity contract ------------------------------

TEST(TenantDeterminism, SingleTenantMatchesLegacyRunByteForByte) {
  auto run_direct = [] {
    auto workload = MakeWorkload("silo", 0.05);
    auto policy = MakePolicy("memtis", workload->footprint_bytes(),
                             workload->footprint_bytes() / 3);
    EngineOptions opts;
    opts.max_accesses = 300'000;
    Engine engine(MachineFor(*workload, 1.0 / 3.0), *policy, opts);
    return engine.Run(*workload).ToJson(2);
  };
  auto run_tenant_plane = [] {
    TenantManager manager;
    manager.AddTenant(TenantSpec{}, MakeWorkload("silo", 0.05));
    auto policy = MakePolicy("memtis", manager.footprint_bytes(),
                             manager.footprint_bytes() / 3);
    EngineOptions opts;
    opts.max_accesses = 300'000;
    Engine engine(MachineFor(manager, 1.0 / 3.0), *policy, opts);
    // No ExportPerTenant: the wire document must match the legacy one.
    return engine.Run(manager).ToJson(2);
  };
  EXPECT_EQ(run_direct(), run_tenant_plane());
}

TEST(TenantDeterminism, MixedLengthTenantsReplayIdentically) {
  auto run_once = [] {
    TenantManager manager;
    TenantSpec churn;
    churn.max_accesses = 40'000;
    manager.AddTenant(churn, MakeWorkload("btree", 0.05));
    TenantSpec late;
    late.arrive_ns = 3'000'000;
    manager.AddTenant(late, MakeWorkload("silo", 0.05, 1000));
    manager.AddTenant(TenantSpec{}, MakeWorkload("pagerank", 0.05, 2000));
    TenantRun run = RunTenants(manager, "memtis", 1.0 / 3.0, 400'000);
    EXPECT_EQ(run.audit.violations_total, 0u);
    return run.metrics.ToJson(2);
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- Budget arbitration ------------------------------------------------------

TEST(TenantBudget, WeightedSharesArmPerTenantBuckets) {
  TenantManager manager;
  TenantSpec heavy;
  heavy.weight = 3.0;
  manager.AddTenant(heavy, MakeWorkload("silo", 0.05));
  TenantSpec light;
  light.weight = 1.0;
  manager.AddTenant(light, MakeWorkload("silo", 0.05, 1000));

  auto policy = MakePolicy("memtis", manager.footprint_bytes(),
                           manager.footprint_bytes() / 3);
  EngineOptions opts;
  opts.max_accesses = 300'000;
  Engine engine(MachineFor(manager, 1.0 / 3.0), *policy, opts);
  engine.Run(manager);
  const MemorySystem& mem = engine.mem();
  ASSERT_GE(mem.tenant_count(), 2u);
  const TenantBudget& b0 = mem.tenant_stats(0).budget;
  const TenantBudget& b1 = mem.tenant_stats(1).budget;
  ASSERT_TRUE(b0.active);
  ASSERT_TRUE(b1.active);
  // 3:1 weights -> 3:1 refill rates (integer-truncated from the machine rate).
  EXPECT_GT(b0.rate_per_ms, b1.rate_per_ms);
  EXPECT_EQ(b0.rate_per_ms, b1.rate_per_ms * 3);
  EXPECT_TRUE(engine.mem().CheckConsistency());
}

// --- Colocate spec grammar ---------------------------------------------------

TEST(ColocateSpecTest, ParsesFullGrammar) {
  ColocateSpec spec;
  std::string error;
  ASSERT_TRUE(ColocateSpec::Parse(
      "silo,name=kv,quota=0.5,weight=2,arrive=1000,depart=2000,accesses=500,"
      "phase-period=100,phase-low=0.5,scale=0.1;pagerank",
      &spec, &error))
      << error;
  ASSERT_EQ(spec.tenants.size(), 2u);
  const ColocateTenant& t = spec.tenants[0];
  EXPECT_EQ(t.workload, "silo");
  EXPECT_EQ(t.tenant.name, "kv");
  EXPECT_DOUBLE_EQ(t.tenant.quota_fraction, 0.5);
  EXPECT_DOUBLE_EQ(t.tenant.weight, 2.0);
  EXPECT_EQ(t.tenant.arrive_ns, 1000u);
  EXPECT_EQ(t.tenant.depart_ns, 2000u);
  EXPECT_EQ(t.tenant.max_accesses, 500u);
  EXPECT_EQ(t.tenant.phase_period_ns, 100u);
  EXPECT_DOUBLE_EQ(t.tenant.phase_low, 0.5);
  EXPECT_DOUBLE_EQ(t.scale, 0.1);
  EXPECT_EQ(spec.tenants[1].workload, "pagerank");
  EXPECT_LT(spec.tenants[1].tenant.quota_fraction, 0.0);

  // Canonical form re-parses to the same spec.
  ColocateSpec again;
  ASSERT_TRUE(ColocateSpec::Parse(spec.Canonical(), &again, &error)) << error;
  EXPECT_EQ(again.Canonical(), spec.Canonical());
}

TEST(ColocateSpecTest, RejectsMalformedSpecs) {
  ColocateSpec spec;
  std::string error;
  EXPECT_FALSE(ColocateSpec::Parse("", &spec, &error));
  EXPECT_FALSE(ColocateSpec::Parse("not-a-workload", &spec, &error));
  EXPECT_FALSE(ColocateSpec::Parse("silo,quota=1.5", &spec, &error));
  EXPECT_FALSE(ColocateSpec::Parse("silo,weight=-1", &spec, &error));
  EXPECT_FALSE(ColocateSpec::Parse("silo,phase-low=1.0", &spec, &error));
  EXPECT_FALSE(ColocateSpec::Parse("silo,bogus=1", &spec, &error));
  EXPECT_FALSE(ColocateSpec::Parse("silo,scale", &spec, &error));
}

// --- JSON round-trip ---------------------------------------------------------

TEST(TenantMetricsJson, PerTenantRoundTripsLosslessly) {
  TenantManager manager;
  TenantSpec a;
  a.name = "kv";
  a.quota_fraction = 0.5;
  manager.AddTenant(a, MakeWorkload("silo", 0.05));
  TenantSpec b;
  b.max_accesses = 30'000;
  manager.AddTenant(b, MakeWorkload("btree", 0.05, 1000));
  TenantRun run = RunTenants(manager, "memtis", 1.0 / 3.0, 300'000);
  ASSERT_EQ(run.metrics.per_tenant.size(), 2u);

  const std::string json = run.metrics.ToJson(2);
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(json, &parsed, &error)) << error;
  Metrics decoded;
  ASSERT_TRUE(Metrics::FromJson(parsed, &decoded));
  EXPECT_EQ(decoded.ToJson(2), json);
  ASSERT_EQ(decoded.per_tenant.size(), 2u);
  EXPECT_EQ(decoded.per_tenant[0].name, "kv");
  EXPECT_EQ(decoded.per_tenant[1].accesses, run.metrics.per_tenant[1].accesses);
}

TEST(TenantMetricsJson, LegacyMetricsOmitPerTenant) {
  Metrics m;
  m.accesses = 7;
  EXPECT_EQ(m.ToJson(0).find("per_tenant"), std::string::npos);
}

}  // namespace
}  // namespace memtis
