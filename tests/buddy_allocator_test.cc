#include "src/mem/buddy_allocator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"

namespace memtis {
namespace {

TEST(BuddyAllocator, StartsFullyFree) {
  BuddyAllocator buddy(1024);
  EXPECT_EQ(buddy.total_frames(), 1024u);
  EXPECT_EQ(buddy.free_frames(), 1024u);
  EXPECT_DOUBLE_EQ(buddy.huge_block_ratio(), 1.0);
  EXPECT_TRUE(buddy.CheckConsistency());
}

TEST(BuddyAllocator, RoundsDownToHugeMultiple) {
  BuddyAllocator buddy(1000);
  EXPECT_EQ(buddy.total_frames(), 512u);
}

TEST(BuddyAllocator, AllocateAndFreeBasePage) {
  BuddyAllocator buddy(1024);
  auto frame = buddy.Allocate(0);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(buddy.free_frames(), 1023u);
  EXPECT_TRUE(buddy.CheckConsistency());
  buddy.Free(*frame, 0);
  EXPECT_EQ(buddy.free_frames(), 1024u);
  EXPECT_TRUE(buddy.CheckConsistency());
  // After freeing everything, merging must restore a full huge block.
  EXPECT_DOUBLE_EQ(buddy.huge_block_ratio(), 1.0);
}

TEST(BuddyAllocator, HugeAllocationIsAligned) {
  BuddyAllocator buddy(4096);
  for (int i = 0; i < 8; ++i) {
    auto frame = buddy.Allocate(BuddyAllocator::kMaxOrder);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(*frame % 512, 0u);
  }
  EXPECT_FALSE(buddy.Allocate(BuddyAllocator::kMaxOrder).has_value());
  EXPECT_EQ(buddy.free_frames(), 0u);
}

TEST(BuddyAllocator, ExhaustionReturnsNullopt) {
  BuddyAllocator buddy(512);
  std::vector<FrameId> frames;
  for (int i = 0; i < 512; ++i) {
    auto frame = buddy.Allocate(0);
    ASSERT_TRUE(frame.has_value());
    frames.push_back(*frame);
  }
  EXPECT_FALSE(buddy.Allocate(0).has_value());
  // All frames must be distinct.
  std::sort(frames.begin(), frames.end());
  EXPECT_TRUE(std::adjacent_find(frames.begin(), frames.end()) == frames.end());
}

TEST(BuddyAllocator, FragmentationBlocksHugeAllocations) {
  BuddyAllocator buddy(1024);
  auto a = buddy.Allocate(0);
  ASSERT_TRUE(a.has_value());
  auto b = buddy.Allocate(BuddyAllocator::kMaxOrder);
  ASSERT_TRUE(b.has_value());
  // 511 frames free but scattered within one huge block: no huge allocation.
  EXPECT_EQ(buddy.free_frames(), 511u);
  EXPECT_FALSE(buddy.CanAllocate(BuddyAllocator::kMaxOrder));
  buddy.Free(*a, 0);
  EXPECT_TRUE(buddy.CanAllocate(BuddyAllocator::kMaxOrder));
}

TEST(BuddyAllocator, SplitAndMergeRestoresHugeBlocks) {
  BuddyAllocator buddy(512);
  std::vector<FrameId> frames;
  for (int i = 0; i < 512; ++i) {
    frames.push_back(*buddy.Allocate(0));
  }
  for (FrameId f : frames) {
    buddy.Free(f, 0);
  }
  EXPECT_TRUE(buddy.CanAllocate(BuddyAllocator::kMaxOrder));
  EXPECT_DOUBLE_EQ(buddy.huge_block_ratio(), 1.0);
  EXPECT_TRUE(buddy.CheckConsistency());
}

TEST(BuddyAllocator, MixedOrderStressStaysConsistent) {
  BuddyAllocator buddy(8192);
  Rng rng(123);
  std::vector<std::pair<FrameId, int>> held;
  for (int step = 0; step < 5000; ++step) {
    if (held.empty() || rng.NextBool(0.55)) {
      const int order = rng.NextBool(0.2) ? BuddyAllocator::kMaxOrder
                                          : static_cast<int>(rng.NextBelow(4));
      auto frame = buddy.Allocate(order);
      if (frame.has_value()) {
        held.emplace_back(*frame, order);
      }
    } else {
      const size_t pick = rng.NextBelow(held.size());
      buddy.Free(held[pick].first, held[pick].second);
      held[pick] = held.back();
      held.pop_back();
    }
  }
  EXPECT_TRUE(buddy.CheckConsistency());
  for (auto& [frame, order] : held) {
    buddy.Free(frame, order);
  }
  EXPECT_EQ(buddy.free_frames(), buddy.total_frames());
  EXPECT_TRUE(buddy.CheckConsistency());
  EXPECT_DOUBLE_EQ(buddy.huge_block_ratio(), 1.0);
}

class BuddyOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(BuddyOrderTest, AllocationIsAlignedToOrder) {
  const int order = GetParam();
  BuddyAllocator buddy(4096);
  auto frame = buddy.Allocate(order);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame & ((1ULL << order) - 1), 0u);
  EXPECT_EQ(buddy.free_frames(), 4096u - (1ULL << order));
  buddy.Free(*frame, order);
  EXPECT_EQ(buddy.free_frames(), 4096u);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, BuddyOrderTest,
                         ::testing::Range(0, BuddyAllocator::kMaxOrder + 1));

}  // namespace
}  // namespace memtis
