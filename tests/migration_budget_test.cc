#include "src/sim/migration_budget.h"

#include <gtest/gtest.h>

namespace memtis {
namespace {

TEST(MigrationBudget, StartsWithFullBurst) {
  MigrationBudget budget(/*pages_per_ms=*/100, /*burst=*/500);
  EXPECT_TRUE(budget.Consume(0, 500));
  EXPECT_FALSE(budget.Consume(0, 1));
}

TEST(MigrationBudget, RefillsOverTime) {
  MigrationBudget budget(100, 500);
  ASSERT_TRUE(budget.Consume(0, 500));
  EXPECT_FALSE(budget.Consume(500'000, 100));  // 0.5 ms -> only 50 earned
  EXPECT_TRUE(budget.Consume(1'000'000, 100));  // 1 ms -> 100 earned
}

TEST(MigrationBudget, RefillCapsAtBurst) {
  MigrationBudget budget(100, 500);
  ASSERT_TRUE(budget.Consume(0, 500));
  // A long idle period earns at most `burst` tokens.
  EXPECT_EQ(budget.tokens(1'000'000'000), 500u);
  EXPECT_TRUE(budget.Consume(1'000'000'000, 500));
  EXPECT_FALSE(budget.Consume(1'000'000'000, 1));
}

TEST(MigrationBudget, PartialConsumptionAccumulates) {
  MigrationBudget budget(1000, 2048);
  uint64_t granted = 0;
  for (uint64_t t = 0; t <= 10'000'000; t += 100'000) {  // 10 ms
    while (budget.Consume(t, 64)) {
      granted += 64;
    }
  }
  // Burst (2048) + ~10 ms * 1000/ms earned, within rounding.
  EXPECT_GE(granted, 2048u + 9'000u);
  EXPECT_LE(granted, 2048u + 10'100u);
}

TEST(MigrationBudget, HugePageSizedRequests) {
  MigrationBudget budget(128, 2048);
  // Four huge pages fit the initial burst; the fifth must wait ~4 ms.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(budget.Consume(0, 512));
  }
  EXPECT_FALSE(budget.Consume(1'000'000, 512));
  EXPECT_TRUE(budget.Consume(4'100'000, 512));
}

}  // namespace
}  // namespace memtis
