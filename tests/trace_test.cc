// Trace record/replay: format round trip and exact run reproduction.

#include "src/trace/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/trace/replay_workload.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

std::string TempTracePath(const char* tag) {
  return std::string(::testing::TempDir()) + "/memtis_trace_" + tag + ".bin";
}

TEST(Trace, RoundTripsAllEventKinds) {
  const std::string path = TempTracePath("roundtrip");
  {
    TraceWriter writer(path);
    writer.RecordAlloc(4 << 20, /*use_thp=*/true, /*returned=*/0x200000);
    writer.RecordAccess(0x200040, /*is_write=*/false);
    writer.RecordAccess(0x201048, /*is_write=*/true);
    writer.RecordFree(0x200000);
    writer.Finish();
  }
  TraceReader reader(path);
  EXPECT_EQ(reader.header().num_events, 4u);
  EXPECT_EQ(reader.header().footprint_bytes, 4u << 20);

  TraceReader::Event event;
  ASSERT_TRUE(reader.Next(event));
  EXPECT_EQ(event.kind, TraceReader::Event::Kind::kAlloc);
  EXPECT_EQ(event.bytes, 4u << 20);
  EXPECT_TRUE(event.use_thp);
  EXPECT_EQ(event.addr, 0x200000u);

  ASSERT_TRUE(reader.Next(event));
  EXPECT_EQ(event.kind, TraceReader::Event::Kind::kRead);
  EXPECT_EQ(event.addr, 0x200040u);

  ASSERT_TRUE(reader.Next(event));
  EXPECT_EQ(event.kind, TraceReader::Event::Kind::kWrite);
  EXPECT_EQ(event.addr, 0x201048u);

  ASSERT_TRUE(reader.Next(event));
  EXPECT_EQ(event.kind, TraceReader::Event::Kind::kFree);
  EXPECT_EQ(event.addr, 0x200000u);

  EXPECT_FALSE(reader.Next(event));
  std::remove(path.c_str());
}

TEST(Trace, FootprintTracksPeakLiveBytes) {
  const std::string path = TempTracePath("footprint");
  {
    TraceWriter writer(path);
    writer.RecordAlloc(2 << 20, true, 0);
    writer.RecordAlloc(2 << 20, true, 2 << 20);
    writer.RecordFree(0);
    writer.RecordAlloc(1 << 20, true, 0);  // peak stays 4 MiB
    writer.Finish();
  }
  TraceReader reader(path);
  EXPECT_EQ(reader.header().footprint_bytes, 4u << 20);
  std::remove(path.c_str());
}

TEST(Trace, ReplayReproducesRunExactly) {
  const std::string path = TempTracePath("replay");
  const double fast_ratio = 1.0 / 3.0;

  // Record a silo run under MEMTIS.
  Metrics recorded;
  {
    auto workload = MakeWorkload("silo", 0.15);
    auto policy = MakePolicy("memtis", workload->footprint_bytes(),
                             workload->footprint_bytes() / 3);
    TraceWriter writer(path);
    EngineOptions opts;
    opts.max_accesses = 400'000;
    opts.trace = &writer;
    Engine engine(MachineFor(*workload, fast_ratio), *policy, opts);
    recorded = engine.Run(*workload);
    writer.Finish();
  }

  // Replay the trace under the same policy/machine: identical results.
  {
    auto probe = MakeWorkload("silo", 0.15);  // for machine sizing only
    TraceReplayWorkload replay(path);
    auto policy = MakePolicy("memtis", probe->footprint_bytes(),
                             probe->footprint_bytes() / 3);
    EngineOptions opts;
    opts.max_accesses = 1ull << 40;  // replay runs to the trace's end
    Engine engine(MachineFor(*probe, fast_ratio), *policy, opts);
    const Metrics replayed = engine.Run(replay);

    EXPECT_EQ(replayed.accesses, recorded.accesses);
    EXPECT_EQ(replayed.fast_accesses, recorded.fast_accesses);
    EXPECT_EQ(replayed.app_ns, recorded.app_ns);
    EXPECT_EQ(replayed.migration.migrated_4k(), recorded.migration.migrated_4k());
    EXPECT_EQ(replayed.migration.splits, recorded.migration.splits);
  }

  // Replay under a different policy: same stream, different placement.
  {
    auto probe = MakeWorkload("silo", 0.15);
    TraceReplayWorkload replay(path);
    auto policy = MakePolicy("hemem", probe->footprint_bytes(),
                             probe->footprint_bytes() / 3);
    EngineOptions opts;
    opts.max_accesses = 1ull << 40;
    Engine engine(MachineFor(*probe, fast_ratio), *policy, opts);
    const Metrics other = engine.Run(replay);
    EXPECT_EQ(other.accesses, recorded.accesses);
    EXPECT_NE(other.fast_accesses, recorded.fast_accesses);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace memtis
