// Unit tests for the audit layer (src/audit/): every invariant passes on
// healthy state, every invariant fires on a seeded fault injection, the
// engine-driven auditor stamps violations with the right virtual-time
// context, and the epoch recorder's ring buffer behaves.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/audit/audit.h"
#include "src/audit/audit_session.h"
#include "src/audit/epoch_recorder.h"
#include "src/common/json.h"
#include "src/memtis/memtis_policy.h"
#include "src/memtis/policy_registry.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

// A small but real MEMTIS run whose post-run state the component checks audit.
struct MemtisRun {
  std::unique_ptr<Workload> workload;
  MemtisConfig config;
  MemtisPolicy policy;
  Engine engine;

  explicit MemtisRun(uint64_t accesses = 200'000, EngineObserver* audit = nullptr)
      : workload(MakeWorkload("btree", 0.12)),
        config(MemtisConfig::ScaledDefaults(workload->footprint_bytes(),
                                            workload->footprint_bytes() / 3)),
        policy(config),
        engine(MachineFor(*workload, 1.0 / 3.0), policy,
               [&] {
                 EngineOptions opts;
                 opts.max_accesses = accesses;
                 opts.audit = audit;
                 return opts;
               }()) {
    engine.Run(*workload);
  }
};

int ViolationsFor(const AuditReport& report, const std::string& invariant) {
  int n = 0;
  for (const AuditViolation& v : report.violations) {
    if (v.invariant == invariant) {
      ++n;
    }
  }
  return n;
}

TEST(AuditChecks, CleanRunPassesEveryInvariant) {
  MemtisRun run;
  AuditReport report;
  AuditCollector out(&report);
  CheckFrameConservation(run.engine.mem(), out);
  CheckPageTableMapping(run.engine.mem(), out);
  CheckHugePageAccounting(run.engine.mem(), out);
  CheckTlbCoherence(run.engine.tlb(), run.engine.mem(), out);
  CheckMigrationLedger(run.engine.ctx().migration_budget, out);
  CheckMemtisSampleLedger(run.policy, out);
  CheckMemtisHistogramMass(run.policy, run.engine.mem(), out);
  CheckMemtisHistogramsFull(run.policy, run.engine.mem(), out);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);
  EXPECT_GT(report.checks_run, 0u);
}

TEST(AuditChecks, FrameConservationCatchesLeakedFrame) {
  MemtisRun run;
  // Leak: allocate a frame directly from the buddy, bypassing the page table.
  // The capacity tier always has slack (MachineFor sizes it footprint * 1.5).
  ASSERT_TRUE(run.engine.mem()
                  .tier(TierId::kCapacity)
                  .allocator()
                  .Allocate(0)
                  .has_value());
  AuditReport report;
  AuditCollector out(&report);
  CheckFrameConservation(run.engine.mem(), out);
  EXPECT_GT(ViolationsFor(report, "frame-conservation"), 0) << report.ToJson(2);
}

TEST(AuditChecks, PageTableMappingCatchesCorruptedTranslation) {
  MemtisRun run;
  // Shift one live page's base_vpn: the page table no longer maps every 4k
  // slice of the page back to its index.
  bool corrupted = false;
  run.engine.mem().ForEachLivePage([&](PageIndex, PageInfo& page) {
    if (!corrupted) {
      page.base_vpn += 1;
      corrupted = true;
    }
  });
  ASSERT_TRUE(corrupted);
  AuditReport report;
  AuditCollector out(&report);
  CheckPageTableMapping(run.engine.mem(), out);
  EXPECT_GT(ViolationsFor(report, "page-table-mapping"), 0) << report.ToJson(2);
}

TEST(AuditChecks, FrameConservationCatchesTierFlip) {
  MemtisRun run;
  // Corrupt one live page's tier field: its frames are now accounted against
  // the wrong tier's allocator, skewing the per-tier recount.
  bool corrupted = false;
  run.engine.mem().ForEachLivePage([&](PageIndex, PageInfo& page) {
    if (!corrupted) {
      page.tier() = OtherTier(page.tier());
      corrupted = true;
    }
  });
  ASSERT_TRUE(corrupted);
  AuditReport report;
  AuditCollector out(&report);
  CheckFrameConservation(run.engine.mem(), out);
  EXPECT_GT(ViolationsFor(report, "frame-conservation"), 0) << report.ToJson(2);
}

TEST(AuditChecks, HugePageAccountingCatchesInflatedSubpageCounter) {
  MemtisRun run;
  bool corrupted = false;
  run.engine.mem().ForEachLivePage([&](PageIndex, PageInfo& page) {
    if (!corrupted && page.kind() == PageKind::kHuge) {
      page.huge->subpage_count[0] += 1'000'000;  // sum now exceeds C_i
      corrupted = true;
    }
  });
  ASSERT_TRUE(corrupted);
  AuditReport report;
  AuditCollector out(&report);
  CheckHugePageAccounting(run.engine.mem(), out);
  EXPECT_GT(ViolationsFor(report, "huge-page-accounting"), 0)
      << report.ToJson(2);
}

TEST(AuditChecks, TlbCoherenceCatchesStaleEntry) {
  MemtisRun run;
  // Fill a TLB entry for a vpn that is not mapped (far past every region).
  run.engine.tlb().Access(static_cast<Vpn>(1) << 40, PageKind::kBase);
  AuditReport report;
  AuditCollector out(&report);
  CheckTlbCoherence(run.engine.tlb(), run.engine.mem(), out);
  EXPECT_GT(ViolationsFor(report, "tlb-coherence"), 0) << report.ToJson(2);
}

TEST(AuditChecks, MigrationLedgerCatchesSkewedBalance) {
  MigrationBudget budget(/*pages_per_ms=*/100, /*burst_pages=*/500);
  ASSERT_TRUE(budget.Consume(0, 200));
  {
    AuditReport report;
    AuditCollector out(&report);
    CheckMigrationLedger(budget, out);
    ASSERT_TRUE(report.ok()) << report.ToJson(2);
  }
  budget.TestOnlyAdjustTokens(7);  // balance no longer matches the ledger
  AuditReport report;
  AuditCollector out(&report);
  CheckMigrationLedger(budget, out);
  EXPECT_GT(ViolationsFor(report, "migration-budget-ledger"), 0)
      << report.ToJson(2);
}

TEST(AuditChecks, MigrationLedgerCatchesBalanceAboveBurst) {
  MigrationBudget budget(/*pages_per_ms=*/100, /*burst_pages=*/500);
  budget.TestOnlyAdjustTokens(50);  // 550 > burst
  AuditReport report;
  AuditCollector out(&report);
  CheckMigrationLedger(budget, out);
  EXPECT_GT(ViolationsFor(report, "migration-budget-ledger"), 0);
}

TEST(AuditChecks, SampleLedgerCatchesPhantomSample) {
  MemtisRun run;
  run.policy.TestOnlyMutableSampler().TestOnlyRecordPhantomSample(
      SampleType::kLlcLoadMiss);
  AuditReport report;
  AuditCollector out(&report);
  CheckMemtisSampleLedger(run.policy, out);
  EXPECT_GT(ViolationsFor(report, "memtis-sample-ledger"), 0)
      << report.ToJson(2);
}

TEST(AuditChecks, HistogramMassCatchesUntrackedPage) {
  MemtisRun run;
  // Allocate directly on the memory system: the policy never sees the pages,
  // so histogram mass falls behind the mapped-page count.
  run.engine.mem().AllocateRegion(kHugePageSize, AllocOptions{});
  AuditReport report;
  AuditCollector out(&report);
  CheckMemtisHistogramMass(run.policy, run.engine.mem(), out);
  EXPECT_GT(ViolationsFor(report, "memtis-histogram-mass"), 0)
      << report.ToJson(2);
}

TEST(AuditChecks, HistogramFullCatchesCorruptedCounter) {
  MemtisRun run;
  bool corrupted = false;
  run.engine.mem().ForEachLivePage([&](PageIndex, PageInfo& page) {
    // Push one page's counter several bins up behind the policy's back.
    if (!corrupted && page.histogram_bin != 0xff) {
      page.access_count() += 1'000'000;
      corrupted = true;
    }
  });
  ASSERT_TRUE(corrupted);
  AuditReport report;
  AuditCollector out(&report);
  CheckMemtisHistogramsFull(run.policy, run.engine.mem(), out);
  EXPECT_GT(ViolationsFor(report, "memtis-histogram-full"), 0)
      << report.ToJson(2);
}

// --- Engine-driven auditor ----------------------------------------------------

TEST(InvariantAuditor, CleanRunAuditsEveryTickWithZeroViolations) {
  InvariantAuditor auditor;
  MemtisRun run(200'000, &auditor);
  const AuditReport& report = auditor.report();
  EXPECT_TRUE(report.ok()) << report.ToJson(2);
  EXPECT_GT(report.ticks_audited, 0u);
  EXPECT_GT(report.checks_run, report.ticks_audited);
  EXPECT_GT(auditor.ticks_seen(), 0u);
}

TEST(InvariantAuditor, ViolationCarriesVirtualTimeContext) {
  InvariantAuditor auditor;
  MemtisRun run(100'000, &auditor);
  ASSERT_TRUE(auditor.report().ok());
  // Inject a fault after the clean run, then audit once more.
  run.policy.TestOnlyMutableSampler().TestOnlyRecordPhantomSample(
      SampleType::kStore);
  auditor.AuditNow(run.engine, /*include_expensive=*/true);
  const AuditReport& report = auditor.report();
  ASSERT_FALSE(report.ok());
  ASSERT_GE(report.violations.size(), 1u);
  const AuditViolation& v = report.violations.front();
  EXPECT_EQ(v.invariant, "memtis-sample-ledger");
  EXPECT_EQ(v.t_ns, run.engine.now_ns());
  EXPECT_EQ(v.tick, auditor.ticks_seen());
  EXPECT_NE(v.detail.find("sample"), std::string::npos);
}

TEST(InvariantAuditor, CustomCheckRunsAndViolationCapHolds) {
  InvariantAuditor::Options options;
  options.max_recorded_violations = 3;
  InvariantAuditor auditor(options);
  int calls = 0;
  auditor.RegisterCheck("always-fails", /*expensive=*/false,
                        [&calls](Engine&, AuditCollector& out) {
                          ++calls;
                          out.BeginCheck();
                          out.Fail("always-fails", "fault injection");
                        });
  MemtisRun run(120'000, &auditor);
  const AuditReport& report = auditor.report();
  EXPECT_GT(calls, 3);
  EXPECT_EQ(report.violations.size(), 3u);  // capped
  EXPECT_EQ(report.violations_total, static_cast<uint64_t>(calls));
  EXPECT_GT(ViolationsFor(report, "always-fails"), 0);
}

TEST(InvariantAuditor, RunEndOnlyModeStillAudits) {
  InvariantAuditor::Options options;
  options.every_tick = false;
  InvariantAuditor auditor(options);
  MemtisRun run(60'000, &auditor);
  EXPECT_EQ(auditor.report().ticks_audited, 0u);
  EXPECT_GT(auditor.report().checks_run, 0u);  // the run-end audit
  EXPECT_TRUE(auditor.report().ok());
}

// --- EpochRecorder ------------------------------------------------------------

TEST(EpochRecorder, RecordsChronologicalEpochsWithConsistentDeltas) {
  EpochRecorder::Options options;
  options.interval_ns = 500'000;
  EpochRecorder recorder(options);
  MemtisRun run(250'000, &recorder);
  const auto samples = recorder.samples();
  ASSERT_GE(samples.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 0u);
  uint64_t access_sum = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(samples[i].t_ns, samples[i - 1].t_ns);
      EXPECT_EQ(samples[i].epoch, samples[i - 1].epoch + 1);
    }
    EXPECT_TRUE(samples[i].memtis);
    access_sum += samples[i].accesses;
  }
  // Deltas over all epochs add back up to the run totals (final sample is
  // recorded at run end).
  EXPECT_EQ(access_sum, run.engine.metrics().accesses);
}

TEST(EpochRecorder, RingBufferWrapsKeepingNewestSamples) {
  EpochRecorder::Options options;
  options.interval_ns = 100'000;
  options.capacity = 4;
  EpochRecorder recorder(options);
  MemtisRun run(250'000, &recorder);
  ASSERT_GT(recorder.recorded_total(), 4u);
  const auto samples = recorder.samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(recorder.dropped(), recorder.recorded_total() - 4);
  // The survivors are the newest four, in order.
  EXPECT_EQ(samples.back().epoch, recorder.recorded_total() - 1);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].epoch, samples[i - 1].epoch + 1);
  }
}

TEST(EpochRecorder, NonMemtisPolicyRecordsGenericFieldsOnly) {
  auto workload = MakeWorkload("btree", 0.1);
  auto policy = MakePolicy("autonuma", workload->footprint_bytes(),
                           workload->footprint_bytes() / 3);
  EpochRecorder recorder;
  EngineOptions opts;
  opts.max_accesses = 100'000;
  opts.audit = &recorder;
  Engine engine(MachineFor(*workload, 1.0 / 3.0), *policy, opts);
  engine.Run(*workload);
  const auto samples = recorder.samples();
  ASSERT_GE(samples.size(), 1u);
  for (const EpochSample& s : samples) {
    EXPECT_FALSE(s.memtis);
    EXPECT_EQ(s.hot_bin, -1);
  }
}

// --- AuditSession / env hook --------------------------------------------------

TEST(AuditSession, ComposesAuditorAndRecorderAndSerializes) {
  AuditSessionOptions options;
  options.epochs.interval_ns = 500'000;
  AuditSession session(options);
  MemtisRun run(150'000, &session);
  EXPECT_TRUE(session.report().ok());
  ASSERT_NE(session.recorder(), nullptr);
  EXPECT_GE(session.recorder()->recorded_total(), 1u);
  std::string json;
  JsonWriter w(&json, 0);
  session.WriteJson(w);
  EXPECT_NE(json.find("\"report\""), std::string::npos);
  EXPECT_NE(json.find("\"epochs\""), std::string::npos);
  EXPECT_NE(json.find("\"violations_total\":0"), std::string::npos);
}

TEST(AuditSession, EnvHookRespectsMemtisAuditVariable) {
  ASSERT_EQ(unsetenv("MEMTIS_AUDIT"), 0);
  EXPECT_FALSE(EnvAuditEnabled());
  EXPECT_EQ(MakeEnvAuditSession(), nullptr);
  ASSERT_EQ(setenv("MEMTIS_AUDIT", "0", 1), 0);
  EXPECT_FALSE(EnvAuditEnabled());
  ASSERT_EQ(setenv("MEMTIS_AUDIT", "1", 1), 0);
  EXPECT_TRUE(EnvAuditEnabled());
  auto session = MakeEnvAuditSession();
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->recorder(), nullptr);  // env mode is invariants-only
  ASSERT_EQ(unsetenv("MEMTIS_AUDIT"), 0);
}

}  // namespace
}  // namespace memtis
