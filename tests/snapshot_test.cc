// The checkpoint plane's acceptance tests: a run killed at any tick and
// restored from its snapshot must finish with byte-identical metrics, audit
// document, and sink bytes — uninterrupted or SIGKILLed, fault-free or under
// the storm preset, plain or audited, supervised-local or distributed across
// four workers. Plus unit coverage of the serializer, the CRC-guarded
// snapshot envelope, and the SnapshotStore's rotation/quarantine behaviour.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/runner/checkpoint_runner.h"
#include "src/runner/coordinator.h"
#include "src/runner/job_codec.h"
#include "src/runner/resilient.h"
#include "src/runner/result_sink.h"
#include "src/runner/supervisor.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"
#include "src/runner/work_queue.h"
#include "src/runner/worker.h"
#include "src/snapshot/serializer.h"
#include "src/snapshot/snapshot_file.h"

namespace memtis {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

std::string TempDirFor(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::string cmd = "rm -rf '" + dir + "'";
  std::system(cmd.c_str());
  mkdir(dir.c_str(), 0777);
  return dir;
}

// The acceptance bytes of one cell: the complete lossless JobResult JSON
// (metrics + audit report + epochs), exactly what every sink serializes.
std::string ResultBytes(const JobResult& result) {
  std::string out;
  JsonWriter w(&out, 0);
  WriteJobResultJson(w, result);
  return out;
}

JobSpec CheckpointableSpec(const std::string& system, uint64_t engine_seed,
                           const std::string& faults = "",
                           bool audit = false) {
  JobSpec spec;
  spec.system = system;
  spec.benchmark = "btree";
  spec.accesses = 30'000;
  spec.engine_seed = engine_seed;
  spec.faults = faults;
  spec.audit = audit;
  if (audit) {
    spec.audit_epoch_interval_ns = 500'000;
  }
  return spec;
}

// Snapshot cadence dense enough that a 30k-access run writes several
// snapshots, so "kill after the Nth" lands mid-run, not at the end.
constexpr uint64_t kIntervalNs = 200'000;

// ---------------------------------------------------------------------------
// Serializer.

TEST(Serializer, RoundTripsEveryType) {
  StateWriter w;
  w.Section(0x54455354);
  w.U8(0xAB);
  w.Bool(true);
  w.Bool(false);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.F64(3.141592653589793);
  w.F64(-0.0);
  w.Str("");
  w.Str(std::string("binary\0safe", 11));

  StateReader r(w.data());
  r.Section(0x54455354);
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.F64(), 3.141592653589793);
  const double neg_zero = r.F64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit pattern, not value, restored
  EXPECT_EQ(r.Str(), "");
  EXPECT_EQ(r.Str(), std::string("binary\0safe", 11));
  EXPECT_TRUE(r.Done());
}

TEST(Serializer, SectionMismatchLatchesError) {
  StateWriter w;
  w.Section(0x41414141);
  w.U64(7);
  StateReader r(w.data());
  r.Section(0x42424242);  // wrong tag: layout skew
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U64(), 0u);  // reads after the latch return zero values
  EXPECT_FALSE(r.Done());
}

TEST(Serializer, TrailingGarbageRejected) {
  StateWriter w;
  w.U32(1);
  std::string data = w.Take();
  data.push_back('\x00');
  StateReader r(data);
  EXPECT_EQ(r.U32(), 1u);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.Done());  // one unread byte = writer/reader disagree
}

TEST(Serializer, TruncatedStringLatchesError) {
  StateWriter w;
  w.Str("hello");
  std::string data = w.Take();
  data.resize(data.size() - 2);  // torn tail inside the string body
  StateReader r(data);
  EXPECT_EQ(r.Str(), "");
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Snapshot envelope + store.

SnapshotBlob TestBlob(uint64_t sequence = 1, uint32_t attempt = 0) {
  SnapshotBlob blob;
  blob.fingerprint = "0123456789abcdef";
  blob.attempt = attempt;
  blob.sequence = sequence;
  blob.payload = std::string(1000, '\x5A') + "payload";
  return blob;
}

TEST(SnapshotFile, EncodeDecodeRoundTrip) {
  const SnapshotBlob blob = TestBlob();
  const std::string image = EncodeSnapshot(blob);
  SnapshotBlob out;
  std::string error;
  ASSERT_TRUE(DecodeSnapshot(image, &out, &error)) << error;
  EXPECT_EQ(out.fingerprint, blob.fingerprint);
  EXPECT_EQ(out.attempt, blob.attempt);
  EXPECT_EQ(out.sequence, blob.sequence);
  EXPECT_EQ(out.payload, blob.payload);
}

TEST(SnapshotFile, RejectsEveryCorruptionClass) {
  const std::string image = EncodeSnapshot(TestBlob());
  SnapshotBlob out;
  std::string error;

  // Bad magic.
  std::string bad = image;
  bad[0] = 'X';
  EXPECT_FALSE(DecodeSnapshot(bad, &out, &error));

  // Version skew with a VALID checksum — a snapshot written by a future
  // build, not random damage. Bump the version field (bytes 4..7,
  // little-endian) and recompute the trailing CRC so only the version check
  // can reject it.
  bad = image;
  bad[4] = static_cast<char>(bad[4] + 1);
  {
    const uint32_t crc =
        Crc32(std::string_view(bad.data(), bad.size() - 4));
    for (int i = 0; i < 4; ++i) {
      bad[bad.size() - 4 + static_cast<size_t>(i)] =
          static_cast<char>((crc >> (8 * i)) & 0xFF);
    }
  }
  EXPECT_FALSE(DecodeSnapshot(bad, &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  // Torn tail: every strict prefix must be rejected (sampled for speed).
  for (size_t len = 0; len < image.size(); len += 97) {
    EXPECT_FALSE(DecodeSnapshot(image.substr(0, len), &out, &error))
        << "prefix of length " << len << " decoded";
  }
  EXPECT_FALSE(DecodeSnapshot(image.substr(0, image.size() - 1), &out, &error));

  // Single bit flips anywhere must be caught by the CRC (sampled).
  for (size_t pos = 0; pos < image.size(); pos += 13) {
    bad = image;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    EXPECT_FALSE(DecodeSnapshot(bad, &out, &error))
        << "bit flip at byte " << pos << " decoded";
  }

  // Appended garbage.
  EXPECT_FALSE(DecodeSnapshot(image + "trailing", &out, &error));
}

TEST(SnapshotStore, RotatesSlotsAndLoadsNewest) {
  const std::string dir = TempDirFor("snap_store");
  SnapshotStore store(dir + "/cell.ckpt");
  std::string error;
  ASSERT_TRUE(store.Write("fp", 0, "state-1", &error)) << error;
  ASSERT_TRUE(store.Write("fp", 0, "state-2", &error)) << error;
  ASSERT_TRUE(store.Write("fp", 0, "state-3", &error)) << error;

  SnapshotBlob blob;
  ASSERT_TRUE(store.LoadNewest("fp", 0, &blob));
  EXPECT_EQ(blob.payload, "state-3");

  // Stale identity: other fingerprint or attempt is skipped, not quarantined.
  EXPECT_FALSE(store.LoadNewest("other", 0, &blob));
  EXPECT_FALSE(store.LoadNewest("fp", 1, &blob));
  ASSERT_TRUE(store.LoadNewest("fp", 0, &blob));  // still intact

  // A fresh store on the same base continues the sequence past a restart.
  SnapshotStore reopened(dir + "/cell.ckpt");
  ASSERT_TRUE(reopened.Write("fp", 0, "state-4", &error)) << error;
  ASSERT_TRUE(reopened.LoadNewest("fp", 0, &blob));
  EXPECT_EQ(blob.payload, "state-4");
}

TEST(SnapshotStore, QuarantinesCorruptSlotAndFallsBack) {
  const std::string dir = TempDirFor("snap_quarantine");
  SnapshotStore store(dir + "/cell.ckpt");
  std::string error;
  ASSERT_TRUE(store.Write("fp", 0, "older", &error)) << error;
  ASSERT_TRUE(store.Write("fp", 0, "newer", &error)) << error;

  // Flip a byte in whichever slot holds "newer".
  SnapshotBlob probe;
  ASSERT_TRUE(store.LoadNewest("fp", 0, &probe));
  ASSERT_EQ(probe.payload, "newer");
  for (int slot = 0; slot < 2; ++slot) {
    const std::string path = SnapshotStore::SlotPath(dir + "/cell.ckpt", slot);
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      continue;
    }
    std::string image((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    SnapshotBlob blob;
    if (DecodeSnapshot(image, &blob, nullptr) && blob.payload == "newer") {
      image[image.size() / 2] ^= 0x40;
      std::ofstream(path, std::ios::binary).write(image.data(),
                                                  static_cast<long>(image.size()));
      // The corrupt slot is quarantined, the older snapshot still loads.
      SnapshotStore reader(dir + "/cell.ckpt");
      SnapshotBlob fallback;
      ASSERT_TRUE(reader.LoadNewest("fp", 0, &fallback));
      EXPECT_EQ(fallback.payload, "older");
      struct stat st;
      EXPECT_EQ(::stat((path + ".corrupt").c_str(), &st), 0)
          << "corrupt slot was not quarantined";
      return;
    }
  }
  FAIL() << "no slot held the newest snapshot";
}

// ---------------------------------------------------------------------------
// Checkpointed execution: in-process differentials.

TEST(Checkpoint, UninterruptedRunIsByteIdenticalToPlain) {
  for (const std::string system : {"memtis", "hemem", "autotiering"}) {
    for (const uint64_t seed : {42ull, 1337ull}) {
      const JobSpec spec = CheckpointableSpec(system, seed);
      const std::string reference = ResultBytes(RunJob(spec));

      const std::string dir = TempDirFor("ck_plain_" + system +
                                         std::to_string(seed));
      CheckpointContext ctx;
      ctx.interval_ns = kIntervalNs;
      ctx.snapshot_base = dir + "/cell.ckpt";
      ctx.fingerprint = JobFingerprint(spec);
      bool resumed = true;
      ctx.resumed = &resumed;
      EXPECT_EQ(ResultBytes(RunJobCheckpointed(spec, ctx)), reference)
          << system << " seed " << seed;
      EXPECT_FALSE(resumed);

      // Snapshots were actually written at this cadence.
      SnapshotStore store(ctx.snapshot_base);
      SnapshotBlob blob;
      EXPECT_TRUE(store.LoadNewest(ctx.fingerprint, 0, &blob));
    }
  }
}

TEST(Checkpoint, ResumeFromMidRunSnapshotIsByteIdentical) {
  // Audited + storm: the hardest state to restore (histograms, fault
  // cursors, audit counters, epoch ring all live).
  const JobSpec spec =
      CheckpointableSpec("memtis", 42, "storm", /*audit=*/true);
  const std::string reference = ResultBytes(RunJob(spec));

  const std::string dir = TempDirFor("ck_resume");
  CheckpointContext ctx;
  ctx.interval_ns = kIntervalNs;
  ctx.snapshot_base = dir + "/cell.ckpt";
  ctx.fingerprint = JobFingerprint(spec);
  ASSERT_EQ(ResultBytes(RunJobCheckpointed(spec, ctx)), reference);

  // Second invocation restores from the newest snapshot (mid-to-late run)
  // and replays only the tail — the result must not change by a byte.
  bool resumed = false;
  ctx.resumed = &resumed;
  EXPECT_EQ(ResultBytes(RunJobCheckpointed(spec, ctx)), reference);
  EXPECT_TRUE(resumed);
}

TEST(Checkpoint, StaleAttemptSnapshotIsIgnored) {
  const JobSpec spec = CheckpointableSpec("autotiering", 42);
  const std::string dir = TempDirFor("ck_stale");
  CheckpointContext ctx;
  ctx.interval_ns = kIntervalNs;
  ctx.snapshot_base = dir + "/cell.ckpt";
  ctx.fingerprint = JobFingerprint(spec);
  ctx.attempt = 0;
  RunJobCheckpointed(spec, ctx);

  // Attempt 1 (different derived seed) must not resume attempt 0's state.
  JobSpec retry = spec;
  retry.engine_seed = AttemptEngineSeed(spec.engine_seed, 1);
  CheckpointContext retry_ctx = ctx;
  retry_ctx.attempt = 1;
  bool resumed = true;
  retry_ctx.resumed = &resumed;
  EXPECT_EQ(ResultBytes(RunJobCheckpointed(retry, retry_ctx)),
            ResultBytes(RunJob(retry)));
  EXPECT_FALSE(resumed);
}

TEST(Checkpoint, UnsupportedSpecsRefuseWithReason) {
  std::string why;
  JobSpec spec = CheckpointableSpec("nimble", 42);
  EXPECT_FALSE(CheckpointSupported(spec, &why));
  EXPECT_NE(why.find("nimble"), std::string::npos) << why;

  spec = CheckpointableSpec("memtis", 42);
  spec.benchmark = "pagerank";
  EXPECT_FALSE(CheckpointSupported(spec, &why));
  EXPECT_NE(why.find("pagerank"), std::string::npos) << why;

  spec = CheckpointableSpec("memtis", 42);
  spec.benchmark = "stream";
  spec.shards = 4;
  EXPECT_FALSE(CheckpointSupported(spec, &why));

  spec = CheckpointableSpec("memtis", 42);
  spec.memtis_tweak = [](MemtisConfig c) { return c; };
  EXPECT_FALSE(CheckpointSupported(spec, &why));

  EXPECT_TRUE(CheckpointSupported(CheckpointableSpec("memtis", 42)));
  EXPECT_TRUE(CheckpointSupported(CheckpointableSpec("all-fast", 42)));
}

TEST(Checkpoint, SupervisedRefusalIsStructuredInvalidSpec) {
  SupervisorOptions sup;
  sup.checkpoint_ns = kIntervalNs;
  sup.checkpoint_dir = TempDirFor("ck_refuse");
  const SupervisedOutcome outcome =
      RunJobSupervised(CheckpointableSpec("nimble", 42), sup);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.failure.kind, FailureKind::kInvalidSpec);
  EXPECT_NE(outcome.failure.message.find("checkpoint"), std::string::npos)
      << outcome.failure.message;
}

// ---------------------------------------------------------------------------
// The kill-anywhere differential, supervised local: a child SIGKILLed after
// its Nth snapshot resumes the SAME attempt and finishes byte-identical to an
// uninterrupted run — across policies, seeds, kill points, fault storms, and
// auditing.

TEST(Checkpoint, KilledChildResumesByteIdentical) {
  for (const std::string system : {"memtis", "hemem", "autotiering"}) {
    for (const uint64_t seed : {42ull, 1337ull}) {
      const JobSpec spec = CheckpointableSpec(system, seed);
      const std::string reference = ResultBytes(RunJob(spec));
      for (const char* kill_after : {"1", "2"}) {
        SupervisorOptions sup;
        sup.checkpoint_ns = kIntervalNs;
        sup.checkpoint_dir = TempDirFor("ck_kill_" + system +
                                        std::to_string(seed) + kill_after);
        ScopedEnv kill("MEMTIS_KILL_AFTER_CHECKPOINTS", kill_after);
        const SupervisedOutcome outcome = RunJobSupervised(spec, sup);
        ASSERT_TRUE(outcome.ok)
            << system << " seed " << seed << " kill@" << kill_after << ": "
            << outcome.failure.message;
        EXPECT_EQ(outcome.attempts, 1);  // resumed, not retried
        EXPECT_EQ(ResultBytes(outcome.result), reference)
            << system << " seed " << seed << " kill@" << kill_after;
      }
    }
  }
}

TEST(Checkpoint, KilledChildResumesUnderStormAndAudit) {
  for (const std::string system : {"memtis", "hemem"}) {
    const JobSpec spec = CheckpointableSpec(system, 42, "storm", /*audit=*/true);
    const std::string reference = ResultBytes(RunJob(spec));
    SupervisorOptions sup;
    sup.checkpoint_ns = kIntervalNs;
    sup.checkpoint_dir = TempDirFor("ck_storm_" + system);
    ScopedEnv kill("MEMTIS_KILL_AFTER_CHECKPOINTS", "1");
    const SupervisedOutcome outcome = RunJobSupervised(spec, sup);
    ASSERT_TRUE(outcome.ok) << outcome.failure.message;
    // The full audit document and epoch telemetry ride in ResultBytes.
    EXPECT_EQ(ResultBytes(outcome.result), reference) << system;
  }
}

// ---------------------------------------------------------------------------
// The kill-anywhere differential, distributed: a 4-worker socket campaign
// where every child self-SIGKILLs after its first snapshot AND one worker
// soft-dies while holding a lease (re-issued to a peer, which resumes from
// the shared snapshot directory) must merge to the single-host bytes.

TEST(Checkpoint, FourWorkerCampaignWithKillsIsByteIdentical) {
  SweepSpec sweep;
  sweep.systems = {"memtis", "autotiering"};
  sweep.benchmarks = {"btree"};
  sweep.accesses = 30'000;
  sweep.seeds = 2;
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);

  ExecOptions exec;
  exec.supervise = true;
  ThreadPool pool(2);
  const std::vector<CellOutcome> reference = RunJobsResilient(jobs, pool, exec);

  const std::string ckpt_dir = TempDirFor("ck_dist");
  CampaignOptions options;
  options.checkpoint_ns = kIntervalNs;
  options.lease_timeout_ms = 4'000;

  std::vector<CellOutcome> outcomes;
  CampaignStats stats;
  std::string error;
  std::promise<uint16_t> port_promise;
  std::shared_future<uint16_t> port_future(port_promise.get_future());
  ScopedEnv kill("MEMTIS_KILL_AFTER_CHECKPOINTS", "1");

  std::thread coordinator([&] {
    outcomes = ServeSocketCampaign(
        jobs, options, /*port=*/0,
        [&](uint16_t bound) { port_promise.set_value(bound); }, {}, nullptr,
        &stats, &error);
  });
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([&, i] {
      WorkerOptions opts;
      opts.name = "ck" + std::to_string(i);
      opts.checkpoint_dir = ckpt_dir;  // shared: peers resume each other
      if (i == 0) {
        opts.kill_after_cells = 1;  // soft-die holding the second lease
      }
      if (i == 1) {
        opts.result_batch = 4;  // batched results merge identically
      }
      std::string queue_error;
      auto queue = MakeSocketWorkQueue(std::to_string(port_future.get()),
                                       opts.name, 5'000, &queue_error);
      ASSERT_NE(queue, nullptr) << queue_error;
      RunWorker(*queue, opts);
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  coordinator.join();

  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(outcomes.size(), reference.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << "cell " << i << ": "
                                << outcomes[i].failure.message;
    ASSERT_TRUE(reference[i].ok);
    EXPECT_EQ(ResultBytes(outcomes[i].result), ResultBytes(reference[i].result))
        << "cell " << i;
  }
  // The aggregate sink bytes — what a report consumer actually reads.
  SinkOptions sink;
  sink.indent = 0;
  EXPECT_EQ(SweepToJson(sweep, jobs, outcomes, sink),
            SweepToJson(sweep, jobs, reference, sink));
  EXPECT_EQ(SweepToCsv(jobs, outcomes), SweepToCsv(jobs, reference));
}

}  // namespace
}  // namespace memtis
