// Tests for the experiment-runner subsystem: thread pool, seed derivation,
// sweep expansion, aggregation, and — the load-bearing guarantee — that a
// sweep's serialized output is byte-identical for 1 thread and N threads.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/common/json_parse.h"
#include "src/common/status.h"
#include "src/runner/job_codec.h"
#include "src/runner/manifest.h"
#include "src/runner/resilient.h"
#include "src/runner/result_sink.h"
#include "src/runner/supervisor.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"

namespace memtis {
namespace {

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvOverride) {
  setenv("MEMTIS_RUNNER_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  setenv("MEMTIS_RUNNER_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 1);  // clamped to >= 1
  unsetenv("MEMTIS_RUNNER_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(SeedDerivation, SingleDocumentedScheme) {
  EXPECT_EQ(DeriveSeedOffset(0, 0), 0u);
  // Reproduces the historical index*1000 offsets at base_seed == 0.
  EXPECT_EQ(DeriveSeedOffset(0, 3), 3 * kSeedStride);
  EXPECT_EQ(DeriveSeedOffset(7, 2), 7 + 2 * kSeedStride);

  JobSpec spec;
  spec.base_seed = 5;
  spec.seed_index = 4;
  EXPECT_EQ(spec.workload_seed_offset(), 5 + 4 * kSeedStride);
}

TEST(Sweep, ExpandsCartesianProductInDeterministicOrder) {
  SweepSpec sweep;
  sweep.systems = {"memtis", "hemem"};
  sweep.benchmarks = {"btree", "silo"};
  sweep.fast_ratios = {0.5, 0.25};
  sweep.seeds = 3;
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  ASSERT_EQ(jobs.size(), 2u * 2u * 3u * 2u);
  // benchmark-major, then ratio, then seed, then system.
  EXPECT_EQ(jobs[0].benchmark, "btree");
  EXPECT_EQ(jobs[0].fast_ratio, 0.5);
  EXPECT_EQ(jobs[0].seed_index, 0u);
  EXPECT_EQ(jobs[0].system, "memtis");
  EXPECT_EQ(jobs[1].system, "hemem");
  EXPECT_EQ(jobs[2].seed_index, 1u);
  EXPECT_EQ(jobs[6].fast_ratio, 0.25);
  EXPECT_EQ(jobs[12].benchmark, "silo");

  sweep.include_baseline = true;
  const std::vector<JobSpec> with_baseline = ExpandJobs(sweep);
  ASSERT_EQ(with_baseline.size(), 2u * 2u * 3u * 3u);
  EXPECT_EQ(with_baseline[0].system, "all-capacity");
  EXPECT_EQ(with_baseline[1].system, "memtis");
}

TEST(Sweep, CellKeyGroupsSeedsAndSeparatesCells) {
  JobSpec a;
  a.system = "memtis";
  a.benchmark = "btree";
  JobSpec b = a;
  b.seed_index = 5;  // repetitions share a cell
  EXPECT_EQ(CellKey(a), CellKey(b));
  JobSpec c = a;
  c.fast_ratio = 0.5;
  EXPECT_NE(CellKey(a), CellKey(c));
  JobSpec d = a;
  d.cxl = true;
  EXPECT_NE(CellKey(a), CellKey(d));
}

TEST(SweepAggregator, MeanStddevGeomean) {
  SweepAggregator agg;
  agg.Add("cell", 2.0);
  agg.Add("cell", 8.0);
  agg.Add("other", 1.0);
  ASSERT_EQ(agg.cells().size(), 2u);
  EXPECT_TRUE(agg.Has("cell"));
  EXPECT_FALSE(agg.Has("missing"));
  EXPECT_DOUBLE_EQ(agg.Mean("cell"), 5.0);
  EXPECT_DOUBLE_EQ(agg.GeoMeanOf("cell"), 4.0);
  EXPECT_NEAR(agg.Stddev("cell"), 4.2426406871192848, 1e-12);
  EXPECT_DOUBLE_EQ(agg.Stddev("other"), 0.0);  // n < 2
  EXPECT_DOUBLE_EQ(agg.Mean("missing"), 0.0);
  agg.Add("zeros", 0.0);
  EXPECT_DOUBLE_EQ(agg.GeoMeanOf("zeros"), 0.0);  // undefined -> 0, no abort
}

// The tentpole guarantee: the same SweepSpec run with 1 thread and with N
// threads serializes to byte-identical JSON (and CSV).
TEST(Sweep, ParallelRunIsByteIdenticalToSerialRun) {
  SweepSpec sweep;
  sweep.systems = {"memtis", "autonuma", "hemem"};
  sweep.benchmarks = {"btree", "silo"};
  sweep.fast_ratios = {1.0 / 3.0, 1.0 / 9.0};
  sweep.seeds = 2;
  sweep.accesses = 30'000;  // tiny budget: 24 jobs stay test-sized
  sweep.include_baseline = false;

  ThreadPool serial(1);
  ThreadPool parallel(4);
  const SweepRun run1 = RunSweep(sweep, serial);
  const SweepRun run4 = RunSweep(sweep, parallel);
  ASSERT_EQ(run1.jobs.size(), 24u);
  ASSERT_EQ(run4.jobs.size(), 24u);

  SinkOptions options;
  options.indent = 0;
  const std::string json1 = SweepToJson(sweep, run1.jobs, run1.results, options);
  const std::string json4 = SweepToJson(sweep, run4.jobs, run4.results, options);
  EXPECT_EQ(json1, json4);
  EXPECT_EQ(SweepToCsv(run1.jobs, run1.results),
            SweepToCsv(run4.jobs, run4.results));

  // Sanity: the document actually carries distinct, nontrivial results.
  EXPECT_NE(json1.find("\"aggregates\""), std::string::npos);
  std::set<double> runtimes;
  for (const JobResult& result : run1.results) {
    EXPECT_GT(result.metrics.accesses, 0u);
    runtimes.insert(result.metrics.EffectiveRuntimeNs());
  }
  EXPECT_GT(runtimes.size(), 1u);
}

TEST(CsvEscape, PassesPlainFieldsThroughUnquoted) {
  EXPECT_EQ(CsvEscape("memtis"), "memtis");
  EXPECT_EQ(CsvEscape(""), "");
  EXPECT_EQ(CsvEscape("603.bwaves"), "603.bwaves");
  EXPECT_EQ(CsvEscape("a b c"), "a b c");  // spaces need no quoting
}

TEST(CsvEscape, QuotesSeparatorsAndDoublesEmbeddedQuotes) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(CsvEscape("cr\rlf"), "\"cr\rlf\"");
  EXPECT_EQ(CsvEscape("\""), "\"\"\"\"");
  EXPECT_EQ(CsvEscape(","), "\",\"");
}

TEST(SweepToCsv, EmptySweepEmitsHeaderOnly) {
  const std::string csv =
      SweepToCsv(std::vector<JobSpec>{}, std::vector<JobResult>{});
  ASSERT_FALSE(csv.empty());
  EXPECT_EQ(csv.back(), '\n');
  // Exactly one line: the header.
  EXPECT_EQ(csv.find('\n'), csv.size() - 1);
  EXPECT_EQ(csv.rfind("id,system,benchmark,", 0), 0u);
}

TEST(SweepToCsv, EscapesHostileSystemAndBenchmarkNames) {
  JobSpec spec;
  spec.system = "memtis,v2";          // embedded comma
  spec.benchmark = "bt\"ree\nnight";  // embedded quote + newline
  JobResult result;
  result.metrics.accesses = 7;
  const std::string csv = SweepToCsv({spec}, {result});

  EXPECT_NE(csv.find("\"memtis,v2\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"bt\"\"ree\nnight\""), std::string::npos) << csv;

  // RFC 4180 line accounting: header + data row + the one embedded newline.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(SweepToCsv, SingleJobRowMatchesHeaderArity) {
  JobSpec spec;
  spec.system = "autonuma";
  spec.benchmark = "btree";
  JobResult result;
  result.metrics.accesses = 42;
  const std::string csv = SweepToCsv({spec}, {result});

  const size_t header_end = csv.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const std::string header = csv.substr(0, header_end);
  const std::string row = csv.substr(header_end + 1);
  ASSERT_FALSE(row.empty());
  // Neither line contains quoted fields here, so commas count columns.
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
}

// RunJob must honour the seed derivation: different seed_index, different
// workload instantiation; same spec, same result.
TEST(Sweep, SeedIndexVariesWorkloadDeterministically) {
  JobSpec spec;
  spec.system = "autonuma";
  spec.benchmark = "btree";
  spec.accesses = 20'000;

  const JobResult base1 = RunJob(spec);
  const JobResult base2 = RunJob(spec);
  EXPECT_EQ(base1.metrics.app_ns, base2.metrics.app_ns);
  EXPECT_EQ(base1.metrics.fast_accesses, base2.metrics.fast_accesses);

  JobSpec other = spec;
  other.seed_index = 1;
  const JobResult varied = RunJob(other);
  EXPECT_NE(base1.metrics.app_ns, varied.metrics.app_ns);
}

// The sharded RunJob branch with the collect auditor and epoch telemetry on:
// the merged result must carry every shard's audit counters and at least one
// epoch sample per shard (OnRunEnd records a final sample), all clean. Pins
// the shard-audit merge path end to end (it once crashed on an iterator pair
// taken from two separate samples() temporaries).
TEST(Sweep, ShardedJobMergesAuditReportAndEpochs) {
  JobSpec spec;
  spec.system = "memtis";
  spec.benchmark = "stream";
  spec.accesses = 40'000;
  spec.shards = 4;
  spec.audit = true;
  spec.audit_epoch_interval_ns = 50'000'000;

  const JobResult merged = RunJob(spec);
  EXPECT_TRUE(merged.audited);
  EXPECT_EQ(merged.audit_report.violations_total, 0u);
  EXPECT_GT(merged.audit_report.ticks_audited, 0u);
  EXPECT_GE(merged.epochs.size(), 4u);
  EXPECT_EQ(merged.epochs_recorded_total, merged.epochs.size());
  EXPECT_EQ(merged.epoch_interval_ns, spec.audit_epoch_interval_ns);

  // Same spec, same merged bytes — the sharded branch is as deterministic as
  // the plain one, audit document included.
  std::string a, b;
  JsonWriter wa(&a, 0), wb(&b, 0);
  WriteJobResultJson(wa, merged);
  WriteJobResultJson(wb, RunJob(spec));
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Resilience plane: supervision, retries, manifests, resume.
// ---------------------------------------------------------------------------

// Sets an environment variable for the enclosing scope and restores the
// previous state on destruction (the MEMTIS_CRASH_CELL/MEMTIS_HANG_CELL
// injection hooks are read by supervised children via the environment).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

std::string SerializeResult(const JobResult& result) {
  std::string out;
  JsonWriter w(&out, 0);
  WriteJobResultJson(w, result);
  return out;
}

// A cheap cell that exercises the full codec surface (MEMTIS introspection +
// audit report + epoch telemetry).
JobSpec SmallSpec() {
  JobSpec spec;
  spec.system = "memtis";
  spec.benchmark = "btree";
  spec.accesses = 30'000;
  spec.audit = true;
  spec.audit_epoch_interval_ns = 50'000'000;
  return spec;
}

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(ThreadPool, RequestCancelDropsQueuedWorkAndIgnoresLateSubmits) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  pool.Submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
    ran.fetch_add(1);
  });
  // Make sure the single worker is inside the blocker, not still queued.
  while (!started.load()) std::this_thread::yield();
  // Queued behind the blocker; all dropped by the cancel below.
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { ran.fetch_add(1); });
  }
  pool.RequestCancel();
  EXPECT_TRUE(pool.cancel_requested());
  release.store(true);
  pool.Wait();
  // The in-flight task drains normally; the queued ones never run.
  EXPECT_EQ(ran.load(), 1);

  pool.Submit([&] { ran.fetch_add(1); });  // no-op after cancellation
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(Supervisor, SupervisedSuccessIsByteIdenticalToInProcessRun) {
  const JobSpec spec = SmallSpec();
  const JobResult in_process = RunJob(spec);

  const SupervisedOutcome out = RunJobSupervised(spec, SupervisorOptions{});
  ASSERT_TRUE(out.ok) << out.failure.message;
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(SerializeResult(out.result), SerializeResult(in_process));
}

TEST(Supervisor, InjectedCrashReportsKindAndCheckExprAndReproducer) {
  const JobSpec spec = SmallSpec();
  ScopedEnv crash("MEMTIS_CRASH_CELL", JobFingerprint(spec));

  const SupervisedOutcome out = RunJobSupervised(spec, SupervisorOptions{});
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.failure.kind, FailureKind::kCrash);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_NE(out.failure.check_expr.find("MEMTIS_CRASH_CELL"), std::string::npos)
      << out.failure.check_expr;
  EXPECT_NE(out.failure.reproducer_cmdline.find("--benchmarks=btree"),
            std::string::npos)
      << out.failure.reproducer_cmdline;
}

TEST(Supervisor, DeadlineOverrunReportsTimeoutWithReproducer) {
  const JobSpec spec = SmallSpec();
  ScopedEnv hang("MEMTIS_HANG_CELL", JobFingerprint(spec));

  SupervisorOptions options;
  options.job_timeout_ms = 300;
  const SupervisedOutcome out = RunJobSupervised(spec, options);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.failure.kind, FailureKind::kTimeout);
  EXPECT_EQ(out.failure.signal, SIGKILL);
  EXPECT_NE(out.failure.reproducer_cmdline.find("memtis_run --supervise"),
            std::string::npos)
      << out.failure.reproducer_cmdline;
  EXPECT_NE(out.failure.reproducer_cmdline.find("--benchmarks=btree"),
            std::string::npos)
      << out.failure.reproducer_cmdline;
}

// A cell that crashes on attempt 0 only must succeed on attempt 1 with the
// documented retry seed — byte-identical to running the spec in-process with
// that seed folded in by hand.
TEST(Supervisor, RetryAfterInjectedCrashIsDeterministic) {
  const JobSpec spec = SmallSpec();
  ScopedEnv crash("MEMTIS_CRASH_CELL", JobFingerprint(spec) + ":1");

  SupervisorOptions options;
  options.max_attempts = 2;
  options.backoff_base_ms = 0;
  const SupervisedOutcome out = RunJobSupervised(spec, options);
  ASSERT_TRUE(out.ok) << out.failure.message;
  EXPECT_EQ(out.attempts, 2);

  JobSpec retried = spec;
  retried.engine_seed = AttemptEngineSeed(spec.engine_seed, 1);
  EXPECT_EQ(SerializeResult(out.result), SerializeResult(RunJob(retried)));
}

// The retry-accounting contract distributed campaigns depend on: a retry
// split across processes (attempt 0 fails on worker A, attempt 1 runs on
// worker B via first_attempt) must report the same global attempt count,
// seed, reproducer, and bytes as a single-process max_attempts=2 retry.
TEST(Supervisor, FirstAttemptRunsAtGlobalAttemptNumber) {
  const JobSpec spec = SmallSpec();
  ScopedEnv crash("MEMTIS_CRASH_CELL", JobFingerprint(spec) + ":1");

  // Single-process reference: crash once, succeed on the folded seed.
  SupervisorOptions local;
  local.max_attempts = 2;
  local.backoff_base_ms = 0;
  const SupervisedOutcome reference = RunJobSupervised(spec, local);
  ASSERT_TRUE(reference.ok);
  ASSERT_EQ(reference.attempts, 2);

  // "Worker A": one attempt at global attempt 0 — crashes, counts 1 attempt,
  // and its reproducer names attempt 0.
  SupervisorOptions one_shot;
  one_shot.max_attempts = 1;
  one_shot.backoff_base_ms = 0;
  const SupervisedOutcome a0 = RunJobSupervised(spec, one_shot);
  ASSERT_FALSE(a0.ok);
  EXPECT_EQ(a0.attempts, 1);
  EXPECT_EQ(a0.failure.kind, FailureKind::kCrash);
  EXPECT_EQ(a0.failure.reproducer_cmdline, ReproducerCmdline(spec, 0));

  // "Worker B": one attempt at global attempt 1 — the crash hook (armed for
  // attempt 0 only) does not fire, the seed folds, and the global attempt
  // count lands at 2, exactly like the single-process retry.
  one_shot.first_attempt = 1;
  const SupervisedOutcome a1 = RunJobSupervised(spec, one_shot);
  ASSERT_TRUE(a1.ok) << a1.failure.message;
  EXPECT_EQ(a1.attempts, 2);
  EXPECT_EQ(SerializeResult(a1.result), SerializeResult(reference.result));
}

TEST(ResilientSweep, RetriedSweepIsByteIdenticalAcrossThreadCounts) {
  SweepSpec sweep;
  sweep.systems = {"memtis", "autonuma"};
  sweep.benchmarks = {"btree"};
  sweep.accesses = 30'000;
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  ASSERT_EQ(jobs.size(), 2u);
  ScopedEnv crash("MEMTIS_CRASH_CELL", JobFingerprint(jobs[0]) + ":1");

  ExecOptions exec;
  exec.supervise = true;
  exec.max_attempts = 2;
  exec.backoff_base_ms = 0;

  ThreadPool serial(1);
  const std::vector<CellOutcome> out1 = RunJobsResilient(jobs, serial, exec);
  ThreadPool parallel(4);
  const std::vector<CellOutcome> out4 = RunJobsResilient(jobs, parallel, exec);

  ASSERT_TRUE(out1[0].ok && out4[0].ok);
  EXPECT_EQ(out1[0].attempts, 2);
  EXPECT_EQ(out4[0].attempts, 2);
  SinkOptions opts;
  opts.indent = 0;
  EXPECT_EQ(SweepToJson(sweep, jobs, out1, opts),
            SweepToJson(sweep, jobs, out4, opts));
  EXPECT_EQ(SweepToCsv(jobs, out1), SweepToCsv(jobs, out4));
}

// The acceptance property: interrupt a sweep (one cell crashed), then resume
// from its manifest without injection — the resumed aggregate must serialize
// to exactly the bytes of the never-interrupted run.
TEST(ResilientSweep, ResumeReproducesUninterruptedBytes) {
  SweepSpec sweep;
  sweep.systems = {"memtis", "autonuma"};
  sweep.benchmarks = {"btree"};
  sweep.accesses = 30'000;
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  ASSERT_EQ(jobs.size(), 2u);

  ExecOptions exec;
  exec.supervise = true;
  exec.keep_going = true;
  exec.manifest_path = TempPath("memtis_resume_test.jsonl");

  SinkOptions opts;
  opts.indent = 0;

  ThreadPool pool(2);
  std::string reference;
  {
    ExecOptions plain;
    plain.supervise = true;
    const std::vector<CellOutcome> full = RunJobsResilient(jobs, pool, plain);
    ASSERT_TRUE(full[0].ok && full[1].ok);
    reference = SweepToJson(sweep, jobs, full, opts);
  }

  {  // Interrupted run: the memtis cell crashes, the other completes.
    ScopedEnv crash("MEMTIS_CRASH_CELL", JobFingerprint(jobs[0]));
    ThreadPool pool2(2);
    const std::vector<CellOutcome> partial =
        RunJobsResilient(jobs, pool2, exec);
    EXPECT_FALSE(partial[0].ok);
    EXPECT_EQ(partial[0].failure.kind, FailureKind::kCrash);
    ASSERT_TRUE(partial[1].ok);
    EXPECT_NE(SweepToJson(sweep, jobs, partial, opts), reference);
  }

  std::map<std::string, ManifestEntry> preloaded;
  ManifestLoadStats stats;
  ASSERT_TRUE(LoadManifest(exec.manifest_path, &preloaded, &stats));
  // Both cells were appended (the crash too); only the ok one is reused.
  EXPECT_EQ(stats.entries, 2u);

  ThreadPool pool3(2);
  const std::vector<CellOutcome> resumed =
      RunJobsResilient(jobs, pool3, exec, preloaded);
  ASSERT_TRUE(resumed[0].ok && resumed[1].ok);
  EXPECT_FALSE(resumed[0].from_manifest);  // failed entry re-ran
  EXPECT_TRUE(resumed[1].from_manifest);   // ok entry reloaded
  EXPECT_EQ(SweepToJson(sweep, jobs, resumed, opts), reference);
  std::remove(exec.manifest_path.c_str());
}

TEST(Manifest, MissingFileIsEmptySuccess) {
  std::map<std::string, ManifestEntry> entries;
  ManifestLoadStats stats;
  std::string error;
  EXPECT_TRUE(LoadManifest(TempPath("memtis_no_such_manifest.jsonl"), &entries,
                           &stats, &error));
  EXPECT_TRUE(entries.empty());
  EXPECT_EQ(stats.lines_total, 0u);
  EXPECT_TRUE(error.empty());
}

TEST(Manifest, ToleratesTruncatedTailAndDeduplicatesLastWins) {
  const std::string path = TempPath("memtis_manifest_tail.jsonl");
  const JobSpec spec_a = SmallSpec();
  JobSpec spec_b = SmallSpec();
  spec_b.system = "autonuma";
  spec_b.accesses = 20'000;

  SupervisedOutcome ok_a;
  ok_a.ok = true;
  ok_a.attempts = 1;
  ok_a.result = RunJob(spec_a);
  SupervisedOutcome failed_b;
  failed_b.attempts = 2;
  failed_b.failure.kind = FailureKind::kTimeout;
  failed_b.failure.signal = SIGKILL;
  failed_b.failure.message = "deadline exceeded";
  SupervisedOutcome ok_a_retried = ok_a;
  ok_a_retried.attempts = 3;

  {
    ManifestWriter writer;
    ASSERT_TRUE(writer.Open(path));
    writer.Append(JobFingerprint(spec_a), spec_a, ok_a);
    writer.Append(JobFingerprint(spec_b), spec_b, failed_b);
    writer.Append(JobFingerprint(spec_a), spec_a, ok_a_retried);
    writer.Close();
  }
  {  // Simulate a SIGKILL mid-append: a torn, unterminated final record.
    std::ofstream tail(path, std::ios::app);
    tail << "{\"v\":1,\"fingerprint\":\"dead";
  }

  std::map<std::string, ManifestEntry> entries;
  ManifestLoadStats stats;
  ASSERT_TRUE(LoadManifest(path, &entries, &stats));
  EXPECT_EQ(stats.lines_total, 4u);
  EXPECT_EQ(stats.lines_skipped, 1u);
  ASSERT_EQ(entries.size(), 2u);

  const ManifestEntry& a = entries.at(JobFingerprint(spec_a));
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.attempts, 3);  // last-wins
  EXPECT_EQ(SerializeResult(a.result), SerializeResult(ok_a.result));

  const ManifestEntry& b = entries.at(JobFingerprint(spec_b));
  EXPECT_FALSE(b.ok);
  EXPECT_EQ(b.failure.kind, FailureKind::kTimeout);
  EXPECT_EQ(b.failure.signal, SIGKILL);
  std::remove(path.c_str());
}

TEST(ResilientSweep, FailFastCancelsRemainingCellsWithReproducers) {
  SweepSpec sweep;
  sweep.systems = {"memtis", "autonuma", "hemem"};
  sweep.benchmarks = {"btree"};
  sweep.accesses = 30'000;
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  ASSERT_EQ(jobs.size(), 3u);
  ScopedEnv crash("MEMTIS_CRASH_CELL", JobFingerprint(jobs[0]));

  ExecOptions exec;
  exec.supervise = true;  // keep_going stays false: first failure cancels
  ThreadPool pool(1);
  const std::vector<CellOutcome> outcomes = RunJobsResilient(jobs, pool, exec);

  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_TRUE(outcomes[0].ran);
  size_t cancelled = 0;
  for (const CellOutcome& cell : outcomes) {
    if (!cell.ran) {
      EXPECT_EQ(cell.failure.kind, FailureKind::kCancelled);
      EXPECT_NE(cell.failure.reproducer_cmdline.find("memtis_run"),
                std::string::npos);
      ++cancelled;
    }
  }
  EXPECT_GE(cancelled, 1u);

  const std::string summary = FailureSummary(jobs, outcomes);
  EXPECT_NE(summary.find("repro: memtis_run"), std::string::npos) << summary;
  EXPECT_NE(summary.find("crash"), std::string::npos) << summary;
}

TEST(JobCodec, FailureRoundTripsThroughJson) {
  JobFailure failure;
  failure.kind = FailureKind::kCrash;
  failure.exit_status = 0;
  failure.signal = SIGABRT;
  failure.check_expr = "frames_used <= frames_total";
  failure.stderr_tail = "tail with \"quotes\" and\nnewlines";
  failure.reproducer_cmdline = "memtis_run --systems=memtis";
  failure.message = "child died";

  std::string json;
  JsonWriter w(&json, 0);
  WriteJobFailureJson(w, failure);

  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(json, &parsed));
  JobFailure back;
  ASSERT_TRUE(ReadJobFailureJson(parsed, &back));
  EXPECT_EQ(back.kind, failure.kind);
  EXPECT_EQ(back.signal, failure.signal);
  EXPECT_EQ(back.check_expr, failure.check_expr);
  EXPECT_EQ(back.stderr_tail, failure.stderr_tail);
  EXPECT_EQ(back.reproducer_cmdline, failure.reproducer_cmdline);
  EXPECT_EQ(back.message, failure.message);
}

}  // namespace
}  // namespace memtis
