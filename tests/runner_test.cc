// Tests for the experiment-runner subsystem: thread pool, seed derivation,
// sweep expansion, aggregation, and — the load-bearing guarantee — that a
// sweep's serialized output is byte-identical for 1 thread and N threads.

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/runner/result_sink.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"

namespace memtis {
namespace {

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvOverride) {
  setenv("MEMTIS_RUNNER_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  setenv("MEMTIS_RUNNER_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 1);  // clamped to >= 1
  unsetenv("MEMTIS_RUNNER_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(SeedDerivation, SingleDocumentedScheme) {
  EXPECT_EQ(DeriveSeedOffset(0, 0), 0u);
  // Reproduces the historical index*1000 offsets at base_seed == 0.
  EXPECT_EQ(DeriveSeedOffset(0, 3), 3 * kSeedStride);
  EXPECT_EQ(DeriveSeedOffset(7, 2), 7 + 2 * kSeedStride);

  JobSpec spec;
  spec.base_seed = 5;
  spec.seed_index = 4;
  EXPECT_EQ(spec.workload_seed_offset(), 5 + 4 * kSeedStride);
}

TEST(Sweep, ExpandsCartesianProductInDeterministicOrder) {
  SweepSpec sweep;
  sweep.systems = {"memtis", "hemem"};
  sweep.benchmarks = {"btree", "silo"};
  sweep.fast_ratios = {0.5, 0.25};
  sweep.seeds = 3;
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  ASSERT_EQ(jobs.size(), 2u * 2u * 3u * 2u);
  // benchmark-major, then ratio, then seed, then system.
  EXPECT_EQ(jobs[0].benchmark, "btree");
  EXPECT_EQ(jobs[0].fast_ratio, 0.5);
  EXPECT_EQ(jobs[0].seed_index, 0u);
  EXPECT_EQ(jobs[0].system, "memtis");
  EXPECT_EQ(jobs[1].system, "hemem");
  EXPECT_EQ(jobs[2].seed_index, 1u);
  EXPECT_EQ(jobs[6].fast_ratio, 0.25);
  EXPECT_EQ(jobs[12].benchmark, "silo");

  sweep.include_baseline = true;
  const std::vector<JobSpec> with_baseline = ExpandJobs(sweep);
  ASSERT_EQ(with_baseline.size(), 2u * 2u * 3u * 3u);
  EXPECT_EQ(with_baseline[0].system, "all-capacity");
  EXPECT_EQ(with_baseline[1].system, "memtis");
}

TEST(Sweep, CellKeyGroupsSeedsAndSeparatesCells) {
  JobSpec a;
  a.system = "memtis";
  a.benchmark = "btree";
  JobSpec b = a;
  b.seed_index = 5;  // repetitions share a cell
  EXPECT_EQ(CellKey(a), CellKey(b));
  JobSpec c = a;
  c.fast_ratio = 0.5;
  EXPECT_NE(CellKey(a), CellKey(c));
  JobSpec d = a;
  d.cxl = true;
  EXPECT_NE(CellKey(a), CellKey(d));
}

TEST(SweepAggregator, MeanStddevGeomean) {
  SweepAggregator agg;
  agg.Add("cell", 2.0);
  agg.Add("cell", 8.0);
  agg.Add("other", 1.0);
  ASSERT_EQ(agg.cells().size(), 2u);
  EXPECT_TRUE(agg.Has("cell"));
  EXPECT_FALSE(agg.Has("missing"));
  EXPECT_DOUBLE_EQ(agg.Mean("cell"), 5.0);
  EXPECT_DOUBLE_EQ(agg.GeoMeanOf("cell"), 4.0);
  EXPECT_NEAR(agg.Stddev("cell"), 4.2426406871192848, 1e-12);
  EXPECT_DOUBLE_EQ(agg.Stddev("other"), 0.0);  // n < 2
  EXPECT_DOUBLE_EQ(agg.Mean("missing"), 0.0);
  agg.Add("zeros", 0.0);
  EXPECT_DOUBLE_EQ(agg.GeoMeanOf("zeros"), 0.0);  // undefined -> 0, no abort
}

// The tentpole guarantee: the same SweepSpec run with 1 thread and with N
// threads serializes to byte-identical JSON (and CSV).
TEST(Sweep, ParallelRunIsByteIdenticalToSerialRun) {
  SweepSpec sweep;
  sweep.systems = {"memtis", "autonuma", "hemem"};
  sweep.benchmarks = {"btree", "silo"};
  sweep.fast_ratios = {1.0 / 3.0, 1.0 / 9.0};
  sweep.seeds = 2;
  sweep.accesses = 30'000;  // tiny budget: 24 jobs stay test-sized
  sweep.include_baseline = false;

  ThreadPool serial(1);
  ThreadPool parallel(4);
  const SweepRun run1 = RunSweep(sweep, serial);
  const SweepRun run4 = RunSweep(sweep, parallel);
  ASSERT_EQ(run1.jobs.size(), 24u);
  ASSERT_EQ(run4.jobs.size(), 24u);

  SinkOptions options;
  options.indent = 0;
  const std::string json1 = SweepToJson(sweep, run1.jobs, run1.results, options);
  const std::string json4 = SweepToJson(sweep, run4.jobs, run4.results, options);
  EXPECT_EQ(json1, json4);
  EXPECT_EQ(SweepToCsv(run1.jobs, run1.results),
            SweepToCsv(run4.jobs, run4.results));

  // Sanity: the document actually carries distinct, nontrivial results.
  EXPECT_NE(json1.find("\"aggregates\""), std::string::npos);
  std::set<double> runtimes;
  for (const JobResult& result : run1.results) {
    EXPECT_GT(result.metrics.accesses, 0u);
    runtimes.insert(result.metrics.EffectiveRuntimeNs());
  }
  EXPECT_GT(runtimes.size(), 1u);
}

TEST(CsvEscape, PassesPlainFieldsThroughUnquoted) {
  EXPECT_EQ(CsvEscape("memtis"), "memtis");
  EXPECT_EQ(CsvEscape(""), "");
  EXPECT_EQ(CsvEscape("603.bwaves"), "603.bwaves");
  EXPECT_EQ(CsvEscape("a b c"), "a b c");  // spaces need no quoting
}

TEST(CsvEscape, QuotesSeparatorsAndDoublesEmbeddedQuotes) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(CsvEscape("cr\rlf"), "\"cr\rlf\"");
  EXPECT_EQ(CsvEscape("\""), "\"\"\"\"");
  EXPECT_EQ(CsvEscape(","), "\",\"");
}

TEST(SweepToCsv, EmptySweepEmitsHeaderOnly) {
  const std::string csv = SweepToCsv({}, {});
  ASSERT_FALSE(csv.empty());
  EXPECT_EQ(csv.back(), '\n');
  // Exactly one line: the header.
  EXPECT_EQ(csv.find('\n'), csv.size() - 1);
  EXPECT_EQ(csv.rfind("id,system,benchmark,", 0), 0u);
}

TEST(SweepToCsv, EscapesHostileSystemAndBenchmarkNames) {
  JobSpec spec;
  spec.system = "memtis,v2";          // embedded comma
  spec.benchmark = "bt\"ree\nnight";  // embedded quote + newline
  JobResult result;
  result.metrics.accesses = 7;
  const std::string csv = SweepToCsv({spec}, {result});

  EXPECT_NE(csv.find("\"memtis,v2\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"bt\"\"ree\nnight\""), std::string::npos) << csv;

  // RFC 4180 line accounting: header + data row + the one embedded newline.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(SweepToCsv, SingleJobRowMatchesHeaderArity) {
  JobSpec spec;
  spec.system = "autonuma";
  spec.benchmark = "btree";
  JobResult result;
  result.metrics.accesses = 42;
  const std::string csv = SweepToCsv({spec}, {result});

  const size_t header_end = csv.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const std::string header = csv.substr(0, header_end);
  const std::string row = csv.substr(header_end + 1);
  ASSERT_FALSE(row.empty());
  // Neither line contains quoted fields here, so commas count columns.
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
}

// RunJob must honour the seed derivation: different seed_index, different
// workload instantiation; same spec, same result.
TEST(Sweep, SeedIndexVariesWorkloadDeterministically) {
  JobSpec spec;
  spec.system = "autonuma";
  spec.benchmark = "btree";
  spec.accesses = 20'000;

  const JobResult base1 = RunJob(spec);
  const JobResult base2 = RunJob(spec);
  EXPECT_EQ(base1.metrics.app_ns, base2.metrics.app_ns);
  EXPECT_EQ(base1.metrics.fast_accesses, base2.metrics.fast_accesses);

  JobSpec other = spec;
  other.seed_index = 1;
  const JobResult varied = RunJob(other);
  EXPECT_NE(base1.metrics.app_ns, varied.metrics.app_ns);
}

}  // namespace
}  // namespace memtis
