// The metric hot paths (huge_page_ratio, bloat_pages, per-tier mapped-4k)
// are O(1) counters maintained at every page-table mutation. These tests pin
// them to the from-scratch recounts the audit layer keeps around, across
// randomized mutation sequences and full engine runs, so any future mutation
// path that forgets to update a counter fails here rather than skewing
// published metrics.

#include <gtest/gtest.h>

#include <vector>

#include "src/audit/audit.h"
#include "src/common/rng.h"
#include "src/mem/memory_system.h"
#include "src/memtis/memtis_policy.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

// Asserts every incremental counter against its from-scratch recount.
void ExpectCountersMatchRecounts(MemorySystem& mem) {
  EXPECT_EQ(mem.live_huge_pages(), mem.RecountLiveHugePages());
  EXPECT_EQ(mem.written_subpages(), mem.RecountWrittenSubpages());
  EXPECT_EQ(mem.bloat_pages(), mem.RecountBloatPages());
  for (int t = 0; t < kNumTiers; ++t) {
    const TierId tier = static_cast<TierId>(t);
    EXPECT_EQ(mem.mapped_4k_in_tier(tier), mem.RecountMapped4kInTier(tier))
        << "tier " << t;
  }
  EXPECT_EQ(mem.huge_meta_allocated(),
            mem.huge_meta_pooled() + mem.live_huge_pages());
}

TEST(IncrementalCounters, MatchRecountsUnderRandomMutations) {
  Rng rng(12345);
  MemorySystem mem(MemoryConfig{.fast_frames = 8192, .capacity_frames = 16384});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  std::vector<Vaddr> regions;

  for (int step = 0; step < 2000; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 30 || regions.empty()) {
      if (mem.tier(TierId::kFast).free_frames() +
              mem.tier(TierId::kCapacity).free_frames() >
          4 * kSubpagesPerHuge) {
        AllocOptions opts;
        opts.preferred = rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
        opts.use_thp = rng.NextBool(0.7);
        regions.push_back(
            mem.AllocateRegion((1 + rng.NextBelow(3)) * kHugePageSize, opts));
      }
    } else if (op < 45) {
      const size_t pick = rng.NextBelow(regions.size());
      mem.FreeRegion(regions[pick]);
      regions[pick] = regions.back();
      regions.pop_back();
    } else if (op < 60) {
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const PageIndex index = mem.Lookup(VpnOf(base));
      if (index != kInvalidPage) {
        mem.Migrate(index,
                    rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity);
      }
    } else if (op < 75) {
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const PageIndex index = mem.Lookup(VpnOf(base));
      if (index != kInvalidPage && mem.page(index).kind() == PageKind::kHuge) {
        PageInfo& page = mem.page(index);
        for (int j = 0; j < 32; ++j) {
          mem.NoteSubpageAccess(page, rng.NextBelow(kSubpagesPerHuge),
                                /*is_write=*/rng.NextBool(0.7));
        }
        mem.SplitHugePage(index, [&](uint32_t) {
          return rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
        });
      }
    } else if (op < 85) {
      // Collapse the first region whose full 512-vpn span is live base pages.
      for (const Vaddr base : regions) {
        if (mem.CollapseToHuge(VpnOf(base),
                               rng.NextBool(0.5) ? TierId::kFast
                                                 : TierId::kCapacity)) {
          break;
        }
      }
    } else {
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const auto region = mem.RegionAt(base);
      ASSERT_TRUE(region.has_value());
      const Vpn vpn = region->first + rng.NextBelow(region->second);
      if (mem.Lookup(vpn) == kInvalidPage) {
        mem.DemandFault(vpn, AllocOptions{});
      }
    }
    if ((step & 31) == 0) {
      ExpectCountersMatchRecounts(mem);
      ASSERT_TRUE(mem.CheckConsistency()) << "step " << step;
    }
  }
  ExpectCountersMatchRecounts(mem);

  // Audit-layer view of the same contract.
  AuditReport report;
  AuditCollector out(&report);
  CheckIncrementalCounters(mem, out);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);

  // Drain everything: counters must return to zero exactly.
  while (!regions.empty()) {
    mem.FreeRegion(regions.back());
    regions.pop_back();
  }
  EXPECT_EQ(mem.live_huge_pages(), 0u);
  EXPECT_EQ(mem.written_subpages(), 0u);
  EXPECT_EQ(mem.bloat_pages(), 0u);
  for (int t = 0; t < kNumTiers; ++t) {
    EXPECT_EQ(mem.mapped_4k_in_tier(static_cast<TierId>(t)), 0u);
  }
  EXPECT_EQ(mem.huge_meta_allocated(), mem.huge_meta_pooled());
}

TEST(IncrementalCounters, MatchRecountsAfterEngineRun) {
  // Full MEMTIS run: every mutation path the engine exercises (demand faults,
  // migrations, splits, collapses, THP promotion) must keep counters in sync.
  auto workload = MakeWorkload("btree", 0.1);
  MemtisConfig cfg = MemtisConfig::ScaledDefaults(workload->footprint_bytes(),
                                                  workload->footprint_bytes() / 3);
  MemtisPolicy policy(cfg);
  EngineOptions opts;
  opts.max_accesses = 400'000;
  Engine engine(MachineFor(*workload, 1.0 / 3.0), policy, opts);
  engine.Run(*workload);

  MemorySystem& mem = engine.mem();
  ExpectCountersMatchRecounts(mem);
  EXPECT_GT(mem.live_huge_pages(), 0u);  // THP path actually exercised

  AuditReport report;
  AuditCollector out(&report);
  CheckIncrementalCounters(mem, out);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);
}

TEST(IncrementalCounters, HugePageRatioAndBloatMatchScans) {
  // The O(1) formulas behind the public metrics must be bit-identical to the
  // definition-level scans (ratio is a double: same numerator/denominator
  // means the same bits).
  MemorySystem mem(MemoryConfig{.fast_frames = 4096, .capacity_frames = 4096});
  AllocOptions huge_opts;
  huge_opts.use_thp = true;
  const Vaddr huge = mem.AllocateRegion(2 * kHugePageSize, huge_opts);
  AllocOptions base_opts;
  base_opts.use_thp = false;
  mem.AllocateRegion(64 * kPageSize, base_opts);

  PageInfo& hp = mem.page(mem.Lookup(VpnOf(huge)));
  ASSERT_EQ(hp.kind(), PageKind::kHuge);
  for (uint64_t j = 0; j < 100; ++j) {
    mem.NoteSubpageAccess(hp, j, /*is_write=*/j % 2 == 0);
  }
  EXPECT_EQ(mem.bloat_pages(), mem.RecountBloatPages());
  EXPECT_EQ(mem.bloat_pages(), 2 * kSubpagesPerHuge - 50);

  // Regions are huge-page-granular, so recount the denominator rather than
  // assuming the base region's mapped size.
  const uint64_t mapped = mem.RecountMapped4kInTier(TierId::kFast) +
                          mem.RecountMapped4kInTier(TierId::kCapacity);
  const double expect_ratio =
      static_cast<double>(mem.RecountLiveHugePages() * kSubpagesPerHuge) /
      static_cast<double>(mapped);
  EXPECT_EQ(mem.huge_page_ratio(), expect_ratio);
}

}  // namespace
}  // namespace memtis
