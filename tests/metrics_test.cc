// Metrics::ToJson + derived-quantity tests: empty/zero-access runs, the
// EffectiveRuntimeNs contention path, timelines, and formatting stability.

#include <string>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/sim/metrics.h"

namespace memtis {
namespace {

int Count(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(MetricsToJson, EmptyMetricsSerializeWithAllFieldsAndNoNans) {
  const Metrics metrics;
  const std::string json = metrics.ToJson(2);

  // Zero-access run: every derived ratio must degrade to 0, never NaN/inf.
  EXPECT_DOUBLE_EQ(metrics.fast_hit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.EffectiveRuntimeNs(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.Mops(), 0.0);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);

  for (const char* field :
       {"\"accesses\"", "\"loads\"", "\"stores\"", "\"fast_accesses\"",
        "\"capacity_accesses\"", "\"app_ns\"", "\"critical_path_ns\"",
        "\"cores\"", "\"cpu_contention\"", "\"cpu\"", "\"sampler_ns\"",
        "\"tlb\"", "\"miss_ratio\"", "\"migration\"", "\"promoted_4k\"",
        "\"fast_hit_ratio\"", "\"effective_runtime_ns\"", "\"mops\"",
        "\"timeline\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << "missing field " << field;
  }
  EXPECT_NE(json.find("\"timeline\": []"), std::string::npos);
}

TEST(MetricsToJson, StableFieldOrderingAndDeterminism) {
  Metrics metrics;
  metrics.accesses = 123;
  metrics.app_ns = 456;
  const std::string a = metrics.ToJson();
  const std::string b = metrics.ToJson();
  EXPECT_EQ(a, b);
  // Spec'd ordering: counters before cpu, cpu before tlb, tlb before
  // migration, derived fields before the timeline.
  EXPECT_LT(a.find("\"accesses\""), a.find("\"cpu\""));
  EXPECT_LT(a.find("\"cpu\""), a.find("\"tlb\""));
  EXPECT_LT(a.find("\"tlb\""), a.find("\"migration\""));
  EXPECT_LT(a.find("\"migration\""), a.find("\"effective_runtime_ns\""));
  EXPECT_LT(a.find("\"effective_runtime_ns\""), a.find("\"timeline\""));
}

TEST(MetricsToJson, ContentionPathInflatesEffectiveRuntime) {
  Metrics metrics;
  metrics.accesses = 1000;
  metrics.app_ns = 1'000'000;
  metrics.cores = 10;
  metrics.cpu.Charge(DaemonKind::kSampler, 2'000'000);
  metrics.cpu.Charge(DaemonKind::kMigrator, 3'000'000);

  // share = (2e6 + 3e6) / (1e6 * 10) = 0.5 -> runtime inflated by 1.5x.
  metrics.cpu_contention = true;
  EXPECT_DOUBLE_EQ(metrics.EffectiveRuntimeNs(), 1'500'000.0);
  std::string json = metrics.ToJson(2);
  EXPECT_NE(json.find("\"effective_runtime_ns\": 1500000"), std::string::npos);
  EXPECT_NE(json.find("\"total_busy_ns\": 5000000"), std::string::npos);

  // Contention off: no inflation, and the serialized value follows.
  metrics.cpu_contention = false;
  EXPECT_DOUBLE_EQ(metrics.EffectiveRuntimeNs(), 1'000'000.0);
  json = metrics.ToJson(2);
  EXPECT_NE(json.find("\"effective_runtime_ns\": 1000000"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_contention\": false"), std::string::npos);
}

TEST(MetricsToJson, TimelineEntriesRoundTripCountsAndFields) {
  Metrics metrics;
  for (int i = 0; i < 3; ++i) {
    TimelinePoint p;
    p.t_ns = static_cast<uint64_t>(i) * 1000;
    p.classified.hot_bytes = 42;
    p.window_fast_ratio = 0.25;
    metrics.timeline.push_back(p);
  }
  const std::string json = metrics.ToJson(2);
  EXPECT_EQ(Count(json, "\"t_ns\""), 3);
  EXPECT_EQ(Count(json, "\"hot_bytes\": 42"), 3);
  EXPECT_EQ(Count(json, "\"window_fast_ratio\": 0.25"), 3);

  // WriteJson without the timeline drops the array entirely.
  std::string compact;
  JsonWriter w(&compact, 0);
  metrics.WriteJson(w, /*include_timeline=*/false);
  EXPECT_EQ(compact.find("timeline"), std::string::npos);
  EXPECT_NE(compact.find("\"accesses\":0"), std::string::npos);
}

TEST(MetricsToJson, CompactAndPrettyCarrySameData) {
  Metrics metrics;
  metrics.accesses = 7;
  std::string pretty = metrics.ToJson(2);
  std::string compact = metrics.ToJson(0);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  // Strip whitespace from the pretty form; must equal the compact form.
  std::string stripped;
  bool in_string = false;
  for (char c : pretty) {
    if (c == '"') {
      in_string = !in_string;
    }
    if (in_string || (c != ' ' && c != '\n')) {
      stripped.push_back(c);
    }
  }
  EXPECT_EQ(stripped, compact);
}

}  // namespace
}  // namespace memtis
