// Assorted cross-module invariants not covered by the per-module suites.

#include <gtest/gtest.h>

#include "src/access/damon.h"
#include "src/common/rng.h"
#include "src/mem/memory_system.h"
#include "src/memtis/memtis_policy.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

TEST(MiscInvariants, SplitMix64KnownAnswer) {
  // Reference values from the SplitMix64 reference implementation (seed 0).
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(SplitMix64(state), 0x06c45d188009454fULL);
}

TEST(MiscInvariants, SplitThenCollapseRoundTrip) {
  MemorySystem mem(MemoryConfig{.fast_frames = 2048, .capacity_frames = 2048});
  const Vaddr start = mem.AllocateRegion(kHugePageSize, AllocOptions{});
  const Vpn vpn = VpnOf(start);
  PageInfo& huge = mem.page(mem.Lookup(vpn));
  for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
    mem.NoteSubpageAccess(huge, j, /*is_write=*/true);  // every subpage has data
    huge.huge->SetSubpageCount(static_cast<uint32_t>(j), static_cast<uint32_t>(j));
  }
  ASSERT_EQ(mem.SplitHugePage(mem.Lookup(vpn), [](uint32_t) { return TierId::kFast; }),
            kSubpagesPerHuge);
  // All 512 base pages live with carried hotness.
  EXPECT_EQ(mem.page(mem.Lookup(vpn + 37)).access_count(), 37u);
  ASSERT_TRUE(mem.CollapseToHuge(vpn, TierId::kFast));
  const PageInfo& rebuilt = mem.page(mem.Lookup(vpn));
  EXPECT_EQ(rebuilt.kind(), PageKind::kHuge);
  EXPECT_EQ(rebuilt.huge->subpage_count[37], 37u);
  EXPECT_EQ(rebuilt.access_count(),
            kSubpagesPerHuge * (kSubpagesPerHuge - 1) / 2);
  EXPECT_TRUE(mem.CheckConsistency());
}

TEST(MiscInvariants, DamonRegionsStayContiguousUnderChurn) {
  DamonConfig cfg;
  cfg.sampling_interval_ns = 1000;
  cfg.aggregation_interval_ns = 20'000;
  cfg.min_regions = 8;
  cfg.max_regions = 64;
  Damon damon(cfg, 0, 32ull << 20);
  Rng rng(9);
  uint64_t now = 0;
  for (int step = 0; step < 20000; ++step) {
    now += 400;
    damon.OnAccess(rng.NextBelow(32ull << 20));
    damon.Tick(now);
    if ((step & 1023) == 0) {
      const auto& regions = damon.regions();
      ASSERT_EQ(regions.front().start, 0u);
      ASSERT_EQ(regions.back().end, 32ull << 20);
      for (size_t i = 1; i < regions.size(); ++i) {
        ASSERT_EQ(regions[i].start, regions[i - 1].end) << "step " << step;
        ASSERT_LT(regions[i].start, regions[i].end);
      }
    }
  }
}

TEST(MiscInvariants, SnapshotWindowsAccountAllAccesses) {
  auto workload = MakeWorkload("liblinear", 0.1);
  MemtisPolicy policy(MemtisConfig::ScaledDefaults(workload->footprint_bytes(),
                                                   workload->footprint_bytes() / 3));
  EngineOptions opts;
  opts.max_accesses = 400'000;
  opts.snapshot_interval_ns = 1'000'000;
  Engine engine(MachineFor(*workload, 1.0 / 3.0), policy, opts);
  const Metrics m = engine.Run(*workload);
  ASSERT_GT(m.timeline.size(), 2u);
  for (const auto& point : m.timeline) {
    EXPECT_GE(point.window_fast_ratio, 0.0);
    EXPECT_LE(point.window_fast_ratio, 1.0);
    EXPECT_GE(point.window_mops, 0.0);
    EXPECT_LE(point.rss_pages, engine.mem().tier(TierId::kFast).total_frames() +
                                   engine.mem().tier(TierId::kCapacity).total_frames());
  }
}

TEST(MiscInvariants, HotnessFactorScalingMatchesPaper) {
  // H_i = C_i for huge pages, C_i * 512 for base pages (paper §4.1.2).
  // Standalone PageInfos (no owning MemorySystem) need their own hot arrays.
  PageHotArrays hot;
  hot.Resize(2);
  PageInfo base;
  base.hot = &hot;
  base.self = 0;
  base.kind() = PageKind::kBase;
  base.access_count() = 3;
  PageInfo huge;
  huge.hot = &hot;
  huge.self = 1;
  huge.kind() = PageKind::kHuge;
  huge.access_count() = 3;
  EXPECT_EQ(base.hotness(), 3 * kSubpagesPerHuge);
  EXPECT_EQ(huge.hotness(), 3u);
  // So a base page and a huge page with the same per-4KiB access density have
  // the same hotness factor:
  huge.access_count() = 3 * kSubpagesPerHuge;
  EXPECT_EQ(base.hotness(), huge.hotness());
}

TEST(MiscInvariants, EffectiveRuntimeMonotoneInDaemonLoad) {
  Metrics light;
  light.app_ns = 1'000'000;
  light.cores = 20;
  Metrics heavy = light;
  light.cpu.Charge(DaemonKind::kMigrator, 100'000);
  heavy.cpu.Charge(DaemonKind::kMigrator, 10'000'000);
  EXPECT_LT(light.EffectiveRuntimeNs(), heavy.EffectiveRuntimeNs());
}

}  // namespace
}  // namespace memtis
