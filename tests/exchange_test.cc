// Tests for MemorySystem::ExchangePages — the direct two-page swap primitive
// (AutoTiering's exchange_pages) — and the exchange-aware policies built on
// it. Covers the exchange contract (atomic swap, two shootdowns, frame
// conservation), the differential guarantee (same final placement as
// migrate+evict when a free frame exists; succeeds where Migrate is denied
// under zero free fast frames), tenant quota/budget semantics (fast-tier
// neutrality bypasses steal-or-deny, ownership still gates cross-tenant
// swaps), and the engine-level determinism acceptance criterion (exchange-
// enabled sweeps byte-identical at 1 vs 4 threads, audit-clean).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/common/json_parse.h"
#include "src/fault/fault.h"
#include "src/mem/memory_system.h"
#include "src/mem/tlb.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"
#include "src/sim/metrics.h"

namespace memtis {
namespace {

// Component-level audit sweep over a bare memory system + TLB, including the
// exchange-accounting invariant (injector-free: zero injected aborts must
// match zero counted aborts).
AuditReport AuditMem(MemorySystem& mem, const Tlb& tlb,
                     const FaultStats& faults = FaultStats{}) {
  AuditReport report;
  AuditCollector out(&report);
  CheckFrameConservation(mem, out);
  CheckPageTableMapping(mem, out);
  CheckHugePageAccounting(mem, out);
  CheckIncrementalCounters(mem, out);
  CheckTlbCoherence(tlb, mem, out);
  CheckTenantConservation(mem, out);
  CheckExchangeAccounting(mem, faults, out);
  return report;
}

// Base-page region helper: one 2 MiB span of 512 base pages in `tier`.
Vaddr AllocBaseRegion(MemorySystem& mem, TierId tier) {
  AllocOptions opts;
  opts.preferred = tier;
  opts.use_thp = false;
  return mem.AllocateRegion(kHugePageSize, opts);
}

TEST(Exchange, SwapsPlacementInPlaceAndConservesFrames) {
  MemorySystem mem(MemoryConfig{.fast_frames = 1024, .capacity_frames = 2048});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  const Vaddr fast_base = AllocBaseRegion(mem, TierId::kFast);
  const Vaddr cap_base = AllocBaseRegion(mem, TierId::kCapacity);
  const PageIndex cold = mem.Lookup(VpnOf(fast_base));
  const PageIndex hot = mem.Lookup(VpnOf(cap_base));
  ASSERT_NE(cold, kInvalidPage);
  ASSERT_NE(hot, kInvalidPage);
  const FrameId hot_frame = mem.page(hot).frame();
  const FrameId cold_frame = mem.page(cold).frame();
  const uint64_t fast_used = mem.tier(TierId::kFast).used_frames();
  const uint64_t cap_used = mem.tier(TierId::kCapacity).used_frames();
  const uint64_t fast_mapped = mem.mapped_4k_in_tier(TierId::kFast);
  const uint64_t shootdowns = tlb.stats().shootdowns;

  ASSERT_TRUE(mem.ExchangePages(hot, cold));

  // The pages traded tiers and frames; no frame was allocated or freed.
  EXPECT_EQ(mem.page(hot).tier(), TierId::kFast);
  EXPECT_EQ(mem.page(cold).tier(), TierId::kCapacity);
  EXPECT_EQ(mem.page(hot).frame(), cold_frame);
  EXPECT_EQ(mem.page(cold).frame(), hot_frame);
  EXPECT_EQ(mem.tier(TierId::kFast).used_frames(), fast_used);
  EXPECT_EQ(mem.tier(TierId::kCapacity).used_frames(), cap_used);
  EXPECT_EQ(mem.mapped_4k_in_tier(TierId::kFast), fast_mapped);
  // Both vpn spans were shot down — one IPI event per remapped side.
  EXPECT_EQ(tlb.stats().shootdowns, shootdowns + 2);
  EXPECT_EQ(mem.migration_stats().exchanges, 1u);
  EXPECT_EQ(mem.migration_stats().exchanged_huge, 0u);
  EXPECT_EQ(mem.migration_stats().exchanged_4k(), 2u);
  EXPECT_EQ(mem.migration_stats().failed_exchanges, 0u);
  // Exchanges are not migrations: the migrate counters never move.
  EXPECT_EQ(mem.migration_stats().promoted_4k(), 0u);
  EXPECT_EQ(mem.migration_stats().demoted_4k(), 0u);
  const AuditReport report = AuditMem(mem, tlb);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);
}

TEST(Exchange, SwapsHugePagesWholeSpan) {
  MemorySystem mem(MemoryConfig{.fast_frames = 1024, .capacity_frames = 2048});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  AllocOptions fast_opts;
  fast_opts.preferred = TierId::kFast;
  AllocOptions cap_opts;
  cap_opts.preferred = TierId::kCapacity;
  const Vaddr fast_base = mem.AllocateRegion(kHugePageSize, fast_opts);
  const Vaddr cap_base = mem.AllocateRegion(kHugePageSize, cap_opts);
  const PageIndex cold = mem.Lookup(VpnOf(fast_base));
  const PageIndex hot = mem.Lookup(VpnOf(cap_base));
  ASSERT_EQ(mem.page(hot).kind(), PageKind::kHuge);
  ASSERT_EQ(mem.page(cold).kind(), PageKind::kHuge);

  ASSERT_TRUE(mem.ExchangePages(hot, cold));
  EXPECT_EQ(mem.page(hot).tier(), TierId::kFast);
  EXPECT_EQ(mem.page(cold).tier(), TierId::kCapacity);
  EXPECT_EQ(mem.migration_stats().exchanges, 1u);
  EXPECT_EQ(mem.migration_stats().exchanged_huge, 1u);
  EXPECT_EQ(mem.migration_stats().exchanged_4k(), 2 * kSubpagesPerHuge);
  const AuditReport report = AuditMem(mem, tlb);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);
}

TEST(Exchange, RejectsInvalidPairsWithoutSideEffects) {
  MemorySystem mem(MemoryConfig{.fast_frames = 2048, .capacity_frames = 4096});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  const Vaddr fast_base = AllocBaseRegion(mem, TierId::kFast);
  const Vaddr cap_base = AllocBaseRegion(mem, TierId::kCapacity);
  AllocOptions huge_cap;
  huge_cap.preferred = TierId::kCapacity;
  const Vaddr huge_base = mem.AllocateRegion(kHugePageSize, huge_cap);
  const PageIndex fast_page = mem.Lookup(VpnOf(fast_base));
  const PageIndex fast_page2 = mem.Lookup(VpnOf(fast_base) + 1);
  const PageIndex cap_page = mem.Lookup(VpnOf(cap_base));
  const PageIndex cap_page2 = mem.Lookup(VpnOf(cap_base) + 1);
  const PageIndex huge_page = mem.Lookup(VpnOf(huge_base));
  const uint64_t shootdowns = tlb.stats().shootdowns;

  EXPECT_FALSE(mem.ExchangePages(cap_page, cap_page));    // same page
  EXPECT_FALSE(mem.ExchangePages(huge_page, fast_page));  // kind mismatch
  EXPECT_FALSE(mem.ExchangePages(cap_page, cap_page2));   // cold not fast
  EXPECT_FALSE(mem.ExchangePages(fast_page, fast_page2)); // hot not capacity
  EXPECT_EQ(mem.migration_stats().failed_exchanges, 4u);
  EXPECT_EQ(mem.migration_stats().exchanges, 0u);
  // Nothing moved, nothing was shot down.
  EXPECT_EQ(mem.page(cap_page).tier(), TierId::kCapacity);
  EXPECT_EQ(mem.page(fast_page).tier(), TierId::kFast);
  EXPECT_EQ(tlb.stats().shootdowns, shootdowns);
  const AuditReport report = AuditMem(mem, tlb);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);
}

// Differential: with a free fast frame available, one exchange and the
// classic migrate+evict pair must land every page on the same final tier.
TEST(Exchange, MatchesMigratePlusEvictPlacement) {
  const MemoryConfig config{.fast_frames = 1536, .capacity_frames = 4096};
  MemorySystem via_exchange(config);
  MemorySystem via_migrate(config);
  Tlb tlb_a;
  Tlb tlb_b;
  via_exchange.AttachTlb(&tlb_a);
  via_migrate.AttachTlb(&tlb_b);
  // Identical layouts: same alloc sequence on identical configs.
  const Vaddr fast_base = AllocBaseRegion(via_exchange, TierId::kFast);
  const Vaddr cap_base = AllocBaseRegion(via_exchange, TierId::kCapacity);
  ASSERT_EQ(AllocBaseRegion(via_migrate, TierId::kFast), fast_base);
  ASSERT_EQ(AllocBaseRegion(via_migrate, TierId::kCapacity), cap_base);
  const Vpn cold_vpn = VpnOf(fast_base) + 7;
  const Vpn hot_vpn = VpnOf(cap_base) + 3;

  ASSERT_TRUE(via_exchange.ExchangePages(via_exchange.Lookup(hot_vpn),
                                         via_exchange.Lookup(cold_vpn)));
  ASSERT_TRUE(via_migrate.Migrate(via_migrate.Lookup(cold_vpn), TierId::kCapacity));
  ASSERT_TRUE(via_migrate.Migrate(via_migrate.Lookup(hot_vpn), TierId::kFast));

  // Every vpn of both regions sits on the same tier in both systems (frames
  // may differ: the exchange swaps in place, migrate+evict reallocates).
  for (Vpn vpn = VpnOf(fast_base); vpn < VpnOf(fast_base) + kSubpagesPerHuge; ++vpn) {
    ASSERT_EQ(via_exchange.page(via_exchange.Lookup(vpn)).tier(),
              via_migrate.page(via_migrate.Lookup(vpn)).tier())
        << "vpn " << vpn;
  }
  for (Vpn vpn = VpnOf(cap_base); vpn < VpnOf(cap_base) + kSubpagesPerHuge; ++vpn) {
    ASSERT_EQ(via_exchange.page(via_exchange.Lookup(vpn)).tier(),
              via_migrate.page(via_migrate.Lookup(vpn)).tier())
        << "vpn " << vpn;
  }
  EXPECT_EQ(via_exchange.mapped_4k_in_tier(TierId::kFast),
            via_migrate.mapped_4k_in_tier(TierId::kFast));
  EXPECT_EQ(via_exchange.mapped_4k_in_tier(TierId::kCapacity),
            via_migrate.mapped_4k_in_tier(TierId::kCapacity));
  const AuditReport report_a = AuditMem(via_exchange, tlb_a);
  EXPECT_TRUE(report_a.ok()) << report_a.ToJson(2);
  const AuditReport report_b = AuditMem(via_migrate, tlb_b);
  EXPECT_TRUE(report_b.ok()) << report_b.ToJson(2);
}

// The reason the primitive exists: with zero free fast frames a promotion by
// Migrate is impossible (no frame to reserve), but an exchange goes through.
TEST(Exchange, SucceedsWhereMigrateIsDeniedUnderZeroFreeFrames) {
  MemorySystem mem(MemoryConfig{.fast_frames = 512, .capacity_frames = 2048});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  const Vaddr fast_base = AllocBaseRegion(mem, TierId::kFast);
  const Vaddr cap_base = AllocBaseRegion(mem, TierId::kCapacity);
  ASSERT_EQ(mem.tier(TierId::kFast).free_frames(), 0u);
  const PageIndex hot = mem.Lookup(VpnOf(cap_base));
  const PageIndex cold = mem.Lookup(VpnOf(fast_base));

  EXPECT_FALSE(mem.Migrate(hot, TierId::kFast));
  EXPECT_EQ(mem.migration_stats().failed_migrations, 1u);
  EXPECT_EQ(mem.page(hot).tier(), TierId::kCapacity);

  EXPECT_TRUE(mem.ExchangePages(hot, cold));
  EXPECT_EQ(mem.page(hot).tier(), TierId::kFast);
  EXPECT_EQ(mem.page(cold).tier(), TierId::kCapacity);
  EXPECT_EQ(mem.tier(TierId::kFast).free_frames(), 0u);
  EXPECT_EQ(mem.migration_stats().exchanges, 1u);
  const AuditReport report = AuditMem(mem, tlb);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);
}

// Tenant semantics: a same-tenant exchange is fast-tier-neutral and bypasses
// the steal-or-deny path entirely (it succeeds with the quota exactly full,
// and never self-demotes); a cross-tenant exchange grows the hot owner's
// fast usage and is denied — without stealing — when over quota.
TEST(Exchange, TenantQuotaNeutralityAndCrossTenantGate) {
  MemorySystem mem(MemoryConfig{.fast_frames = 1024, .capacity_frames = 4096});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  mem.SetCurrentTenant(1);
  const Vaddr t1_fast = AllocBaseRegion(mem, TierId::kFast);
  mem.SetCurrentTenant(2);
  const Vaddr t2_fast = AllocBaseRegion(mem, TierId::kFast);
  const Vaddr t2_cap = AllocBaseRegion(mem, TierId::kCapacity);
  ASSERT_EQ(mem.tier(TierId::kFast).free_frames(), 0u);
  // Tenant 2's quota is exactly its current usage: no growth allowed.
  mem.SetTenantFastQuota(2, mem.tenant_stats(2).fast_pages());

  // Same-tenant swap with the quota full: allowed (net fast change is zero).
  const PageIndex hot_same = mem.Lookup(VpnOf(t2_cap));
  const PageIndex cold_same = mem.Lookup(VpnOf(t2_fast));
  const uint64_t t2_fast_before = mem.tenant_mapped_4k(2, TierId::kFast);
  EXPECT_TRUE(mem.ExchangePages(hot_same, cold_same));
  EXPECT_EQ(mem.tenant_mapped_4k(2, TierId::kFast), t2_fast_before);
  EXPECT_EQ(mem.tenant_stats(2).quota_steals, 0u);
  EXPECT_EQ(mem.tenant_stats(2).quota_denied_promotions, 0u);

  // Cross-tenant swap would grow tenant 2 past its quota: denied, and —
  // unlike Migrate's steal-or-deny — no self-demotion is attempted.
  const PageIndex hot_cross = mem.Lookup(VpnOf(t2_cap) + 1);
  const PageIndex cold_cross = mem.Lookup(VpnOf(t1_fast));
  EXPECT_FALSE(mem.ExchangePages(hot_cross, cold_cross));
  EXPECT_EQ(mem.tenant_stats(2).quota_denied_promotions, 1u);
  EXPECT_EQ(mem.tenant_stats(2).quota_steals, 0u);
  EXPECT_EQ(mem.migration_stats().failed_exchanges, 1u);
  EXPECT_EQ(mem.page(hot_cross).tier(), TierId::kCapacity);

  // With headroom the cross-tenant swap goes through and both tenants'
  // per-tier counters move in lockstep (global counters are unchanged).
  mem.SetTenantFastQuota(2, mem.tenant_stats(2).fast_pages() + 1);
  const uint64_t t1_fast_before = mem.tenant_mapped_4k(1, TierId::kFast);
  EXPECT_TRUE(mem.ExchangePages(hot_cross, cold_cross));
  EXPECT_EQ(mem.tenant_mapped_4k(2, TierId::kFast), t2_fast_before + 1);
  EXPECT_EQ(mem.tenant_mapped_4k(1, TierId::kFast), t1_fast_before - 1);
  const AuditReport report = AuditMem(mem, tlb);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);
}

TEST(Exchange, DrawsTenantPromotionBudgetTokens) {
  MemorySystem mem(MemoryConfig{.fast_frames = 512, .capacity_frames = 2048});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  mem.SetCurrentTenant(1);
  const Vaddr fast_base = AllocBaseRegion(mem, TierId::kFast);
  const Vaddr cap_base = AllocBaseRegion(mem, TierId::kCapacity);
  // Two tokens, no refill: the hot side of each exchange draws one.
  mem.SetTenantPromotionBudget(1, /*rate_per_ms=*/0, /*burst_pages=*/2);

  const Vpn hot_vpn = VpnOf(cap_base);
  const Vpn cold_vpn = VpnOf(fast_base);
  EXPECT_TRUE(mem.ExchangePages(mem.Lookup(hot_vpn), mem.Lookup(cold_vpn)));
  EXPECT_TRUE(mem.ExchangePages(mem.Lookup(hot_vpn + 1), mem.Lookup(cold_vpn + 1)));
  // Tokens exhausted: the third exchange is denied and nothing moves.
  EXPECT_FALSE(mem.ExchangePages(mem.Lookup(hot_vpn + 2), mem.Lookup(cold_vpn + 2)));
  EXPECT_EQ(mem.tenant_stats(1).budget_denied_promotions, 1u);
  EXPECT_EQ(mem.migration_stats().exchanges, 2u);
  EXPECT_EQ(mem.migration_stats().failed_exchanges, 1u);
  EXPECT_EQ(mem.page(mem.Lookup(hot_vpn + 2)).tier(), TierId::kCapacity);
  const AuditReport report = AuditMem(mem, tlb);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);
}

// Acceptance criterion: an exchange-enabled sweep (native AutoTiering plus
// the MEMTIS/HeMem opt-in variants) under fast-tier pressure is audit-clean
// and serializes byte-identically at 1 and 4 threads.
TEST(ExchangeEngine, SweepByteIdenticalAcrossThreadsAndAuditClean) {
  SweepSpec sweep;
  sweep.systems = {"autotiering", "memtis-exchange", "hemem-exchange"};
  sweep.benchmarks = {"btree"};
  sweep.fast_ratios = {1.0 / 9.0};  // heavy pressure: promotions find no room
  sweep.seeds = 1;
  sweep.accesses = 60'000;
  sweep.include_baseline = false;
  sweep.audit = true;

  ThreadPool serial(1);
  ThreadPool parallel(4);
  const SweepRun run1 = RunSweep(sweep, serial);
  const SweepRun run4 = RunSweep(sweep, parallel);
  SinkOptions options;
  options.indent = 0;
  const std::string json1 = SweepToJson(sweep, run1.jobs, run1.results, options);
  const std::string json4 = SweepToJson(sweep, run4.jobs, run4.results, options);
  EXPECT_EQ(json1, json4);

  uint64_t total_exchanges = 0;
  for (size_t i = 0; i < run1.results.size(); ++i) {
    EXPECT_TRUE(run1.results[i].audit_report.ok())
        << run1.jobs[i].system << ": "
        << run1.results[i].audit_report.ToJson(2);
    total_exchanges += run1.results[i].metrics.migration.exchanges;
    if (run1.jobs[i].system == "autotiering") {
      // Native exchange: the fault-path promoter swaps when the tier is full.
      EXPECT_GT(run1.results[i].metrics.migration.exchanges, 0u);
    }
  }
  EXPECT_GT(total_exchanges, 0u);
  // The counters ride through the sinks' schema (omitted only when zero).
  EXPECT_NE(json1.find("\"exchanges\":"), std::string::npos);
}

// The counters round-trip the Metrics codec losslessly, and exchange-free
// documents omit them (schema compatibility with the committed goldens).
TEST(ExchangeMetrics, JsonOmittedWhenZeroAndLossless) {
  Metrics metrics;
  EXPECT_EQ(metrics.ToJson(0).find("\"exchanges\""), std::string::npos);

  metrics.migration.exchanges = 41;
  metrics.migration.exchanged_huge = 3;
  metrics.migration.failed_exchanges = 5;
  metrics.migration.aborted_exchanges = 2;
  const std::string json = metrics.ToJson(0);
  EXPECT_NE(json.find("\"exchanges\":41"), std::string::npos);

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(json, &parsed, &error)) << error;
  Metrics round;
  ASSERT_TRUE(Metrics::FromJson(parsed, &round));
  EXPECT_EQ(round.migration.exchanges, 41u);
  EXPECT_EQ(round.migration.exchanged_huge, 3u);
  EXPECT_EQ(round.migration.failed_exchanges, 5u);
  EXPECT_EQ(round.migration.aborted_exchanges, 2u);
  EXPECT_EQ(round.ToJson(0), json);
}

}  // namespace
}  // namespace memtis
