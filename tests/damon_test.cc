#include "src/access/damon.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace memtis {
namespace {

TEST(Damon, InitialRegionsCoverTarget) {
  DamonConfig cfg;
  cfg.min_regions = 10;
  Damon damon(cfg, 0, 100 << 20);
  const auto& regions = damon.regions();
  ASSERT_GE(regions.size(), cfg.min_regions);
  EXPECT_EQ(regions.front().start, 0u);
  EXPECT_EQ(regions.back().end, 100ull << 20);
  for (size_t i = 1; i < regions.size(); ++i) {
    EXPECT_EQ(regions[i].start, regions[i - 1].end);  // contiguous cover
  }
}

TEST(Damon, RegionCountStaysWithinBounds) {
  DamonConfig cfg;
  cfg.min_regions = 10;
  cfg.max_regions = 100;
  cfg.sampling_interval_ns = 1000;
  cfg.aggregation_interval_ns = 10000;
  Damon damon(cfg, 0, 64 << 20);
  Rng rng(3);
  uint64_t now = 0;
  for (int step = 0; step < 5000; ++step) {
    now += 500;
    damon.OnAccess(rng.NextBelow(64ull << 20));
    damon.Tick(now);
  }
  EXPECT_GE(damon.regions().size(), cfg.min_regions);
  EXPECT_LE(damon.regions().size(), cfg.max_regions);
}

TEST(Damon, HotRegionGetsHigherCounts) {
  DamonConfig cfg;
  cfg.min_regions = 16;
  cfg.max_regions = 64;
  cfg.sampling_interval_ns = 10'000;
  cfg.aggregation_interval_ns = 500'000;
  const uint64_t span = 64ull << 20;
  Damon damon(cfg, 0, span);
  Rng rng(5);
  uint64_t now = 0;
  // 90% of traffic in the first 1/16 of the address range; ~1000 accesses per
  // sampling interval (the PTE accessed bit integrates over the interval).
  for (int step = 0; step < 1'500'000; ++step) {
    now += 10;
    const Vaddr addr = rng.NextBool(0.9) ? rng.NextBelow(span / 16)
                                         : rng.NextBelow(span);
    damon.OnAccess(addr);
    if ((step & 63) == 0) {
      damon.Tick(now);
    }
  }
  // Access-weighted: counts in regions overlapping the hot 1/16 should beat
  // the cold region average decisively.
  double hot_score = 0.0;
  double cold_score = 0.0;
  uint64_t hot_bytes = 0;
  uint64_t cold_bytes = 0;
  for (const auto& r : damon.last_aggregation()) {
    // Overlap-weighted attribution: region boundaries drift, so split each
    // region's contribution between the hot 1/16 and the cold remainder.
    const uint64_t hot_overlap = r.start < span / 16
                                     ? std::min(r.end, span / 16) - r.start
                                     : 0;
    const uint64_t cold_overlap = (r.end - r.start) - hot_overlap;
    hot_score += static_cast<double>(r.nr_accesses) * static_cast<double>(hot_overlap);
    cold_score += static_cast<double>(r.nr_accesses) * static_cast<double>(cold_overlap);
    hot_bytes += hot_overlap;
    cold_bytes += cold_overlap;
  }
  ASSERT_GT(hot_bytes, 0u);
  ASSERT_GT(cold_bytes, 0u);
  EXPECT_GT(hot_score / static_cast<double>(hot_bytes),
            2.0 * cold_score / static_cast<double>(cold_bytes));
}

TEST(Damon, CpuCostGrowsWithRegionCount) {
  DamonConfig small_cfg;
  small_cfg.min_regions = 10;
  small_cfg.max_regions = 20;
  small_cfg.sampling_interval_ns = 1000;
  DamonConfig big_cfg = small_cfg;
  big_cfg.min_regions = 500;
  big_cfg.max_regions = 1000;

  Damon small(small_cfg, 0, 64 << 20);
  Damon big(big_cfg, 0, 64 << 20);
  for (uint64_t now = 0; now <= 100'000; now += 1000) {
    small.Tick(now);
    big.Tick(now);
  }
  EXPECT_GT(big.busy_ns(), 10 * small.busy_ns());
}

}  // namespace
}  // namespace memtis
