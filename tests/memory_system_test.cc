#include "src/mem/memory_system.h"

#include <gtest/gtest.h>

namespace memtis {
namespace {

MemoryConfig SmallConfig(uint64_t fast = 2048, uint64_t capacity = 8192) {
  return MemoryConfig{.fast_frames = fast, .capacity_frames = capacity};
}

TEST(MemorySystem, AllocateRegionWithThpUsesHugePages) {
  MemorySystem mem(SmallConfig());
  const Vaddr start = mem.AllocateRegion(4 * kHugePageSize, AllocOptions{});
  EXPECT_EQ(mem.live_page_count(), 4u);
  EXPECT_EQ(mem.mapped_4k_pages(), 4 * kSubpagesPerHuge);
  EXPECT_DOUBLE_EQ(mem.huge_page_ratio(), 1.0);
  const PageIndex index = mem.Lookup(VpnOf(start));
  ASSERT_NE(index, kInvalidPage);
  EXPECT_EQ(mem.page(index).kind(), PageKind::kHuge);
  EXPECT_TRUE(mem.CheckConsistency());
}

TEST(MemorySystem, AllocateRegionWithoutThpUsesBasePages) {
  MemorySystem mem(SmallConfig());
  AllocOptions opts;
  opts.use_thp = false;
  mem.AllocateRegion(kHugePageSize, opts);
  EXPECT_EQ(mem.live_page_count(), kSubpagesPerHuge);
  EXPECT_DOUBLE_EQ(mem.huge_page_ratio(), 0.0);
  EXPECT_TRUE(mem.CheckConsistency());
}

TEST(MemorySystem, AllocationPrefersRequestedTierThenSpills) {
  MemorySystem mem(SmallConfig(/*fast=*/1024, /*capacity=*/4096));
  // Fast holds 2 huge pages; ask for 3.
  const Vaddr start = mem.AllocateRegion(3 * kHugePageSize, AllocOptions{});
  int fast_pages = 0;
  int capacity_pages = 0;
  for (int i = 0; i < 3; ++i) {
    const PageInfo& p = mem.page(mem.Lookup(VpnOf(start) + i * kSubpagesPerHuge));
    (p.tier() == TierId::kFast ? fast_pages : capacity_pages) += 1;
  }
  EXPECT_EQ(fast_pages, 2);
  EXPECT_EQ(capacity_pages, 1);
}

TEST(MemorySystem, FreeRegionReturnsEverything) {
  MemorySystem mem(SmallConfig());
  const Vaddr a = mem.AllocateRegion(2 * kHugePageSize, AllocOptions{});
  const uint64_t used = mem.rss_pages();
  EXPECT_EQ(used, 2 * kSubpagesPerHuge);
  mem.FreeRegion(a);
  EXPECT_EQ(mem.rss_pages(), 0u);
  EXPECT_EQ(mem.live_page_count(), 0u);
  EXPECT_FALSE(mem.InRegion(a));
  EXPECT_TRUE(mem.CheckConsistency());
}

TEST(MemorySystem, VpnSpaceIsReusedAfterFree) {
  MemorySystem mem(SmallConfig());
  const Vaddr a = mem.AllocateRegion(kHugePageSize, AllocOptions{});
  mem.FreeRegion(a);
  const Vaddr b = mem.AllocateRegion(kHugePageSize, AllocOptions{});
  EXPECT_EQ(a, b);  // first-fit reuse keeps the vpn space bounded
}

TEST(MemorySystem, MigrateMovesBetweenTiers) {
  MemorySystem mem(SmallConfig());
  AllocOptions opts;
  opts.preferred = TierId::kCapacity;
  const Vaddr start = mem.AllocateRegion(kHugePageSize, opts);
  const PageIndex index = mem.Lookup(VpnOf(start));
  EXPECT_EQ(mem.page(index).tier(), TierId::kCapacity);
  ASSERT_TRUE(mem.Migrate(index, TierId::kFast));
  EXPECT_EQ(mem.page(index).tier(), TierId::kFast);
  EXPECT_EQ(mem.migration_stats().promoted_huge, 1u);
  EXPECT_EQ(mem.tier(TierId::kFast).used_frames(), kSubpagesPerHuge);
  EXPECT_EQ(mem.tier(TierId::kCapacity).used_frames(), 0u);
  EXPECT_TRUE(mem.CheckConsistency());
}

TEST(MemorySystem, MigrateFailsWhenDestinationFull) {
  MemorySystem mem(SmallConfig(/*fast=*/512, /*capacity=*/2048));
  mem.AllocateRegion(kHugePageSize, AllocOptions{});  // fills fast
  AllocOptions opts;
  opts.preferred = TierId::kCapacity;
  const Vaddr start = mem.AllocateRegion(kHugePageSize, opts);
  const PageIndex index = mem.Lookup(VpnOf(start));
  EXPECT_FALSE(mem.Migrate(index, TierId::kFast));
  EXPECT_EQ(mem.migration_stats().failed_migrations, 1u);
}

TEST(MemorySystem, MigrationShootsDownTlb) {
  MemorySystem mem(SmallConfig());
  Tlb tlb;
  mem.AttachTlb(&tlb);
  const Vaddr start = mem.AllocateRegion(kHugePageSize, AllocOptions{});
  const PageIndex index = mem.Lookup(VpnOf(start));
  tlb.Access(VpnOf(start), PageKind::kHuge);
  ASSERT_TRUE(mem.Migrate(index, TierId::kCapacity));
  EXPECT_FALSE(tlb.Access(VpnOf(start), PageKind::kHuge));
  EXPECT_GE(tlb.stats().shootdowns, 1u);
}

TEST(MemorySystem, SplitHugePageFreesZeroSubpages) {
  MemorySystem mem(SmallConfig());
  const Vaddr start = mem.AllocateRegion(kHugePageSize, AllocOptions{});
  const PageIndex index = mem.Lookup(VpnOf(start));
  PageInfo& page = mem.page(index);
  // Only 10 subpages were ever written.
  for (uint32_t j = 0; j < 10; ++j) {
    mem.NoteSubpageAccess(page, j, /*is_write=*/true);
    page.huge->SetSubpageCount(j, 100);
  }
  const uint64_t rss_before = mem.rss_pages();
  const uint64_t created = mem.SplitHugePage(
      index, [](uint32_t j) { return j < 5 ? TierId::kFast : TierId::kCapacity; });
  EXPECT_EQ(created, 10u);
  EXPECT_EQ(mem.migration_stats().freed_zero_subpages, kSubpagesPerHuge - 10);
  EXPECT_EQ(mem.rss_pages(), rss_before - (kSubpagesPerHuge - 10));
  // Hotness was carried into the subpages.
  const PageIndex child = mem.Lookup(VpnOf(start));
  ASSERT_NE(child, kInvalidPage);
  EXPECT_EQ(mem.page(child).kind(), PageKind::kBase);
  EXPECT_EQ(mem.page(child).access_count(), 100u);
  EXPECT_EQ(mem.page(child).tier(), TierId::kFast);
  // Unwritten subpages are unmapped.
  EXPECT_EQ(mem.Lookup(VpnOf(start) + 100), kInvalidPage);
  EXPECT_EQ(mem.migration_stats().splits, 1u);
  EXPECT_TRUE(mem.CheckConsistency());
}

TEST(MemorySystem, DemandFaultRepopulatesSplitHole) {
  MemorySystem mem(SmallConfig());
  const Vaddr start = mem.AllocateRegion(kHugePageSize, AllocOptions{});
  const PageIndex index = mem.Lookup(VpnOf(start));
  mem.NoteSubpageAccess(mem.page(index), 0, /*is_write=*/true);
  mem.SplitHugePage(mem.Lookup(VpnOf(start)),
                    [](uint32_t) { return TierId::kFast; });
  const Vpn hole = VpnOf(start) + 7;
  ASSERT_EQ(mem.Lookup(hole), kInvalidPage);
  ASSERT_TRUE(mem.InRegion(hole << kPageShift));
  const PageIndex fresh = mem.DemandFault(hole, AllocOptions{});
  EXPECT_EQ(mem.page(fresh).kind(), PageKind::kBase);
  EXPECT_EQ(mem.Lookup(hole), fresh);
  EXPECT_EQ(mem.migration_stats().demand_faults, 1u);
  EXPECT_TRUE(mem.CheckConsistency());
}

TEST(MemorySystem, StalePageRefIsRejectedAfterSplit) {
  MemorySystem mem(SmallConfig());
  const Vaddr start = mem.AllocateRegion(kHugePageSize, AllocOptions{});
  const PageIndex index = mem.Lookup(VpnOf(start));
  const PageRef ref = mem.page(index).ref(index);
  mem.NoteSubpageAccess(mem.page(index), 0, /*is_write=*/true);
  mem.SplitHugePage(index, [](uint32_t) { return TierId::kFast; });
  EXPECT_EQ(mem.Deref(ref), nullptr);
}

TEST(MemorySystem, CollapseRebuildsHugePage) {
  MemorySystem mem(SmallConfig());
  AllocOptions opts;
  opts.use_thp = false;
  const Vaddr start = mem.AllocateRegion(kHugePageSize, opts);
  const Vpn vpn = VpnOf(start);
  for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
    mem.page(mem.Lookup(vpn + j)).access_count() = j;
  }
  ASSERT_TRUE(mem.CollapseToHuge(vpn, TierId::kFast));
  const PageIndex index = mem.Lookup(vpn);
  const PageInfo& hp = mem.page(index);
  EXPECT_EQ(hp.kind(), PageKind::kHuge);
  EXPECT_EQ(hp.access_count(), kSubpagesPerHuge * (kSubpagesPerHuge - 1) / 2);
  EXPECT_EQ(hp.huge->subpage_count[5], 5u);
  EXPECT_EQ(mem.migration_stats().collapses, 1u);
  EXPECT_TRUE(mem.CheckConsistency());
}

TEST(MemorySystem, CollapseFailsOnHole) {
  MemorySystem mem(SmallConfig());
  AllocOptions opts;
  opts.use_thp = false;
  const Vaddr start = mem.AllocateRegion(kHugePageSize, opts);
  // Punch a hole by freeing... simulate via split path: just check a huge page
  // cannot collapse when one vpn is huge already.
  const Vaddr other = mem.AllocateRegion(kHugePageSize, AllocOptions{});
  EXPECT_FALSE(mem.CollapseToHuge(VpnOf(other), TierId::kFast));
  (void)start;
}

TEST(MemorySystem, BloatAccountsUnwrittenHugeSubpages) {
  MemorySystem mem(SmallConfig());
  const Vaddr start = mem.AllocateRegion(kHugePageSize, AllocOptions{});
  PageInfo& page = mem.page(mem.Lookup(VpnOf(start)));
  EXPECT_EQ(mem.bloat_pages(), kSubpagesPerHuge);
  mem.NoteSubpageAccess(page, 3, /*is_write=*/true);
  mem.NoteSubpageAccess(page, 4, /*is_write=*/true);
  mem.NoteSubpageAccess(page, 4, /*is_write=*/true);  // idempotent re-write
  EXPECT_EQ(mem.bloat_pages(), kSubpagesPerHuge - 2);
  EXPECT_EQ(mem.bloat_pages(), mem.RecountBloatPages());
}

TEST(MemorySystem, RegionAtFindsExtent) {
  MemorySystem mem(SmallConfig());
  const Vaddr start = mem.AllocateRegion(3 * kHugePageSize, AllocOptions{});
  auto region = mem.RegionAt(start + kHugePageSize);
  ASSERT_TRUE(region.has_value());
  EXPECT_EQ(region->first, VpnOf(start));
  EXPECT_EQ(region->second, 3 * kSubpagesPerHuge);
  EXPECT_FALSE(mem.RegionAt(start + 3 * kHugePageSize).has_value());
}

TEST(MemorySystem, ChurnKeepsConsistency) {
  MemorySystem mem(SmallConfig(4096, 16384));
  std::vector<Vaddr> regions;
  for (int round = 0; round < 50; ++round) {
    if (regions.size() < 6) {
      regions.push_back(
          mem.AllocateRegion((1 + round % 3) * kHugePageSize, AllocOptions{}));
    } else {
      mem.FreeRegion(regions.front());
      regions.erase(regions.begin());
    }
  }
  EXPECT_TRUE(mem.CheckConsistency());
  for (Vaddr r : regions) {
    mem.FreeRegion(r);
  }
  EXPECT_EQ(mem.rss_pages(), 0u);
  EXPECT_TRUE(mem.CheckConsistency());
}

}  // namespace
}  // namespace memtis
