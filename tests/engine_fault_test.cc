// Engine-level tests for the demand-fault path (split holes touched later)
// and end-to-end determinism of full MEMTIS runs.

#include <gtest/gtest.h>

#include "src/memtis/memtis_policy.h"
#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/workloads/kv_workloads.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

// Touches a huge page sparsely, lets MEMTIS split it, then writes into the
// freed (previously all-zero) subpages to exercise the demand-fault path.
class SplitHoleWorkload : public Workload {
 public:
  std::string_view name() const override { return "split-hole"; }
  uint64_t footprint_bytes() const override { return 32ull << 20; }

  void Setup(App& app, Rng&) override { base_ = app.Alloc(32ull << 20); }

  bool Step(App& app, Rng& rng) override {
    ++steps_;
    if (steps_ < 4000) {
      // Concentrate writes on 3 subpages of each huge page: highly skewed,
      // mostly-zero huge pages.
      for (int i = 0; i < 256; ++i) {
        const uint64_t block = rng.NextBelow(16);
        const uint64_t sub = rng.NextBelow(3);
        app.Write(base_ + block * kHugePageSize + (sub << kPageShift));
      }
      return true;
    }
    // Late phase: touch everything, including split-freed zero subpages.
    for (int i = 0; i < 256; ++i) {
      app.Write(base_ + rng.NextBelow(32ull << 20));
    }
    return steps_ < 8000;
  }

 private:
  Vaddr base_ = 0;
  uint64_t steps_ = 0;
};

TEST(EngineFaults, DemandFaultsRepopulateSplitHoles) {
  SplitHoleWorkload workload;
  MemtisConfig cfg = MemtisConfig::ScaledDefaults(workload.footprint_bytes(),
                                                  workload.footprint_bytes() / 9);
  cfg.enable_collapse = false;
  MemtisPolicy policy(cfg);
  EngineOptions opts;
  opts.max_accesses = 2'500'000;
  Engine engine(MachineFor(workload, 1.0 / 9.0), policy, opts);
  const Metrics m = engine.Run(workload);
  ASSERT_GT(policy.stats().splits_performed, 0u);
  ASSERT_GT(m.migration.freed_zero_subpages, 0u);
  // The late full-footprint phase must have faulted some holes back in.
  EXPECT_GT(m.migration.demand_faults, 0u);
  EXPECT_TRUE(engine.mem().CheckConsistency());
  // Histogram bookkeeping survived the whole split/fault churn.
  EXPECT_EQ(policy.page_histogram().total(), engine.mem().mapped_4k_pages());
  EXPECT_EQ(policy.base_histogram().total(), engine.mem().mapped_4k_pages());
}

class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, IdenticalRunsBitForBit) {
  auto run = [&] {
    auto workload = MakeWorkload("silo", 0.15);
    auto policy = MakePolicy(GetParam(), workload->footprint_bytes(),
                             workload->footprint_bytes() / 3);
    EngineOptions opts;
    opts.max_accesses = 400'000;
    Engine engine(MachineFor(*workload, 1.0 / 3.0), *policy, opts);
    return engine.Run(*workload);
  };
  const Metrics a = run();
  const Metrics b = run();
  EXPECT_EQ(a.app_ns, b.app_ns);
  EXPECT_EQ(a.fast_accesses, b.fast_accesses);
  EXPECT_EQ(a.migration.migrated_4k(), b.migration.migrated_4k());
  EXPECT_EQ(a.migration.splits, b.migration.splits);
  EXPECT_EQ(a.tlb.misses(), b.tlb.misses());
}

INSTANTIATE_TEST_SUITE_P(Systems, DeterminismTest,
                         ::testing::Values("memtis", "hemem", "tpp", "nimble",
                                           "tiering-0.8"));

}  // namespace
}  // namespace memtis
