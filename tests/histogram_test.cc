#include "src/memtis/histogram.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace memtis {
namespace {

TEST(Histogram, BinOfExponentialRanges) {
  EXPECT_EQ(AccessHistogram::BinOf(0), 0);
  EXPECT_EQ(AccessHistogram::BinOf(1), 0);
  EXPECT_EQ(AccessHistogram::BinOf(2), 1);
  EXPECT_EQ(AccessHistogram::BinOf(3), 1);
  EXPECT_EQ(AccessHistogram::BinOf(4), 2);
  EXPECT_EQ(AccessHistogram::BinOf(512), 9);
  EXPECT_EQ(AccessHistogram::BinOf(1023), 9);
  EXPECT_EQ(AccessHistogram::BinOf(1024), 10);
  // Last bin is unbounded.
  EXPECT_EQ(AccessHistogram::BinOf(1ULL << 15), 15);
  EXPECT_EQ(AccessHistogram::BinOf(1ULL << 40), 15);
}

TEST(Histogram, BinFloorInvertsBinOf) {
  for (int b = 1; b < AccessHistogram::kBins; ++b) {
    EXPECT_EQ(AccessHistogram::BinOf(AccessHistogram::BinFloor(b)), b);
    EXPECT_EQ(AccessHistogram::BinOf(AccessHistogram::BinFloor(b) - 1), b - 1);
  }
}

TEST(Histogram, AddRemoveMove) {
  AccessHistogram h;
  h.Add(3, 10);
  h.Add(5, 2);
  EXPECT_EQ(h.count(3), 10u);
  EXPECT_EQ(h.total(), 12u);
  h.Move(3, 4, 4);
  EXPECT_EQ(h.count(3), 6u);
  EXPECT_EQ(h.count(4), 4u);
  h.Remove(5, 2);
  EXPECT_EQ(h.count(5), 0u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, CoolShiftsLeftAndMergesBinZero) {
  AccessHistogram h;
  h.Add(0, 1);
  h.Add(1, 2);
  h.Add(2, 4);
  h.Add(15, 8);
  h.Cool();
  EXPECT_EQ(h.count(0), 3u);  // bin0 + bin1
  EXPECT_EQ(h.count(1), 4u);
  EXPECT_EQ(h.count(14), 8u);
  EXPECT_EQ(h.count(15), 0u);
  EXPECT_EQ(h.total(), 15u);
}

TEST(Histogram, CoolingMatchesHalvedHotness) {
  // Property: for any hotness H >= 2 below the top bin, halving H moves it
  // exactly one bin down — the invariant that makes Cool() a shift.
  for (uint64_t h = 2; h < (1ULL << 15); h = h * 3 / 2 + 1) {
    const int before = AccessHistogram::BinOf(h);
    const int after = AccessHistogram::BinOf(h / 2);
    if (before < 15) {
      EXPECT_EQ(after, before == 0 ? 0 : before - 1) << "H=" << h;
    }
  }
}

TEST(Histogram, ThresholdsFillFastTierFromTop) {
  AccessHistogram h;
  h.Add(15, 100);  // hottest
  h.Add(12, 100);
  h.Add(8, 1000);  // does not fit
  const auto t = h.ComputeThresholds(250, 0.9);
  EXPECT_EQ(t.hot, 9);  // bins 15..9 accumulate 200 <= 250; bin 8 overflows
  // 200 < 0.9 * 250 -> warm threshold opens one bin below hot.
  EXPECT_EQ(t.warm, 8);
  EXPECT_EQ(t.cold, 7);
}

TEST(Histogram, ThresholdsWarmEqualsHotWhenNearlyFull) {
  AccessHistogram h;
  h.Add(10, 240);
  h.Add(9, 100);
  const auto t = h.ComputeThresholds(250, 0.9);
  EXPECT_EQ(t.hot, 10);
  EXPECT_EQ(t.warm, 10);  // 240 >= 225 = 0.9 * 250
  EXPECT_EQ(t.cold, 9);
}

TEST(Histogram, ThresholdsEverythingFits) {
  AccessHistogram h;
  h.Add(4, 10);
  h.Add(2, 10);
  const auto t = h.ComputeThresholds(1000, 0.9);
  EXPECT_EQ(t.hot, 0);   // everything is hot
  EXPECT_EQ(t.warm, -1);  // far from filling the tier
  EXPECT_EQ(t.cold, -2);  // nothing is ever cold
}

TEST(Histogram, ThresholdsTopBinStaysHotWhenOversized) {
  AccessHistogram h;
  h.Add(15, 1000);
  // Even when the top bin exceeds the fast tier, it remains the hot set (a
  // subset of it will occupy the fast tier).
  const auto t = h.ComputeThresholds(100, 0.9);
  EXPECT_EQ(t.hot, 15);
}

TEST(Histogram, UnitsAtOrAbove) {
  AccessHistogram h;
  h.Add(3, 5);
  h.Add(10, 7);
  EXPECT_EQ(h.UnitsAtOrAbove(0), 12u);
  EXPECT_EQ(h.UnitsAtOrAbove(4), 7u);
  EXPECT_EQ(h.UnitsAtOrAbove(11), 0u);
  EXPECT_EQ(h.UnitsAtOrAbove(-3), 12u);
}

// Property sweep: thresholds always satisfy the Algorithm 1 invariants.
class HistogramPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramPropertyTest, Algorithm1Invariants) {
  const uint64_t seed = GetParam();
  uint64_t state = seed;
  AccessHistogram h;
  for (int b = 0; b < AccessHistogram::kBins; ++b) {
    h.Add(b, SplitMix64(state) % 1000);
  }
  const uint64_t capacity = 1 + SplitMix64(state) % 4000;
  const auto t = h.ComputeThresholds(capacity, 0.9);
  // (1) the chosen hot set fits the fast tier (except the degenerate case
  // where the oversized top bin stays hot);
  if (h.count(AccessHistogram::kBins - 1) <= capacity) {
    EXPECT_LE(h.UnitsAtOrAbove(t.hot), capacity);
  }
  // (2) the set is maximal: one more bin would overflow (unless all bins hot);
  if (t.hot > 0) {
    EXPECT_GT(h.UnitsAtOrAbove(t.hot - 1), capacity);
  }
  // (3) ordering of thresholds.
  EXPECT_LE(t.cold, t.warm);
  EXPECT_LE(t.warm, t.hot);
  EXPECT_GE(t.warm, t.hot - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace memtis
